// Package sstore is a single-node implementation of S-Store ("S-Store:
// Streaming Meets Transaction Processing", Meehan et al., VLDB 2015): a
// hybrid engine that runs streaming workflows and OLTP transactions in
// one in-memory, partitioned database with full ACID guarantees and
// streaming-aware ordering, triggers, windows, and recovery.
//
// # Model
//
// State comes in three kinds (§2): public shared tables, streams
// (time-varying tables of atomic batches), and windows (sliding-window
// tables private to their owning stored procedure). Transactions are
// predefined stored procedures — Go functions that issue SQL — invoked
// either by clients (OLTP, pull) or by arriving atomic batches
// (streaming, push). Workflows are DAGs of streaming procedures; the
// engine guarantees the paper's two ordering constraints: workflow
// order within each batch round and stream (batch) order per
// procedure.
//
// # Quick start
//
//	eng, _ := sstore.Open(sstore.Config{})
//	defer eng.Close()
//	eng.ExecDDL(`CREATE STREAM events (v BIGINT)`)
//	eng.ExecDDL(`CREATE TABLE totals (total BIGINT)`)
//	eng.ExecDDL(`INSERT INTO totals VALUES (0)`)
//	eng.RegisterProc("Count", func(ctx *sstore.ProcCtx) error {
//		_, err := ctx.Query(`UPDATE totals SET total = total + (SELECT ...)`)
//		return err
//	})
//	wf, _ := sstore.NewWorkflow("wf", []sstore.Node{{SP: "Count", Input: "events"}})
//	eng.DeployWorkflow(wf)
//	eng.Ingest("events", &sstore.Batch{ID: 1, Rows: []sstore.Row{{sstore.Int(1)}}})
//
// See examples/ for complete programs and DESIGN.md for the
// architecture.
package sstore

import (
	"errors"
	"time"

	"sstore/internal/cluster"
	"sstore/internal/ee"
	"sstore/internal/pe"
	"sstore/internal/recovery"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
	"sstore/internal/workflow"
)

// Value is a typed SQL value.
type Value = types.Value

// Row is a tuple of values.
type Row = types.Row

// Int returns an integer value.
func Int(v int64) Value { return types.NewInt(v) }

// Float returns a float value.
func Float(v float64) Value { return types.NewFloat(v) }

// Text returns a text value.
func Text(v string) Value { return types.NewText(v) }

// Bool returns a boolean value.
func Bool(v bool) Value { return types.NewBool(v) }

// Timestamp returns a timestamp value (microseconds since the epoch).
func Timestamp(micros int64) Value { return types.NewTimestamp(micros) }

// Null is the SQL NULL value.
var Null = types.Null

// ProcCtx is a stored procedure's execution context: parameters, batch
// identity, and transactional SQL execution.
type ProcCtx = pe.ProcCtx

// ProcFunc is a stored procedure body.
type ProcFunc = pe.ProcFunc

// Result is a transaction's client-visible outcome.
type Result = pe.Result

// QueryResult is the result set of one SQL statement.
type QueryResult = ee.Result

// Batch is an atomic batch of stream tuples.
type Batch = stream.Batch

// Assembler groups raw tuples into atomic batches.
type Assembler = stream.Assembler

// NewAssembler creates a batch assembler of the given batch size.
func NewAssembler(size int) (*Assembler, error) { return stream.NewAssembler(size) }

// Node is one stored procedure in a workflow DAG.
type Node = workflow.Node

// Workflow is a DAG of streaming stored procedures.
type Workflow = workflow.Workflow

// NewWorkflow validates nodes and builds a workflow.
func NewWorkflow(name string, nodes []Node) (*Workflow, error) { return workflow.New(name, nodes) }

// NestedCall names one child of a nested transaction.
type NestedCall = pe.NestedCall

// RecoveryMode selects the logging/recovery scheme.
type RecoveryMode = recovery.Mode

// Recovery modes (§2.4, §3.2.5).
const (
	// RecoveryNone disables command logging.
	RecoveryNone = recovery.ModeNone
	// RecoveryStrong logs every transaction execution; replay
	// reproduces the exact pre-crash state.
	RecoveryStrong = recovery.ModeStrong
	// RecoveryWeak logs only border (and OLTP) transactions and
	// re-derives interior work via upstream backup; replay produces
	// a legal state.
	RecoveryWeak = recovery.ModeWeak
)

// SyncPolicy selects commit durability for the command log.
type SyncPolicy = wal.SyncPolicy

// Command-log sync policies.
const (
	// SyncEachCommit makes every commit individually durable (no
	// group commit).
	SyncEachCommit = wal.SyncEachCommit
	// SyncGroup batches commits into group-commit windows.
	SyncGroup = wal.SyncGroup
	// SyncNone buffers log writes without fsync.
	SyncNone = wal.SyncNone
)

// Config configures an engine. The zero value is a single-partition,
// no-logging, no-network-simulation engine suitable for tests and
// embedded use.
type Config struct {
	// Partitions is the number of execution sites (default 1). Each
	// runs transactions serially on its slice of the data.
	Partitions int
	// ClientRTT simulates client↔engine network latency per Call.
	ClientRTT time.Duration
	// EEDispatch simulates the PE→EE boundary cost per SQL statement
	// issued from a stored procedure.
	EEDispatch time.Duration
	// Recovery selects the logging/recovery scheme; non-None
	// requires LogPath.
	Recovery RecoveryMode
	// LogPath locates the command log, which is sharded one file per
	// partition: an existing directory holds <dir>/cmd-p<N>.log, any
	// other path serves as a file-name prefix (<path>.p<N>). A legacy
	// unsharded log at exactly <path> is still replayed. See
	// DESIGN.md §5.
	LogPath string
	// LogPolicy selects commit durability (default SyncEachCommit).
	LogPolicy SyncPolicy
	// GroupWindow is the group-commit window under SyncGroup.
	GroupWindow time.Duration
	// LogSegmentBytes rotates each partition's log into sealed
	// segments of roughly this size (aged out O(1) at checkpoint
	// truncation); zero keeps one file per partition.
	LogSegmentBytes int64
	// SnapshotDir is where checkpoints live.
	SnapshotDir string
	// PartitionBy routes batches to partitions — both ingested
	// (border) batches and interior batches produced by committing
	// TEs, which relocate to their routed partition so workflows fan
	// out across partitions. Partition by a key every tuple of a
	// batch shares; the function must be pure. See DESIGN.md §3.
	PartitionBy func(streamName string, batch []Row) int
	// RouteCall routes OLTP calls to partitions.
	RouteCall func(sp string, params Row) int
	// MaxQueueDepth, when positive, bounds each partition's scheduler
	// queue at the border: Call and Ingest reject with an error
	// matching ErrOverloaded (carrying a retry-after hint, see
	// RetryAfter) once the target partition's queue is full. Interior
	// workflow dispatch is never blocked, so the bound cannot
	// deadlock. Zero means unbounded.
	MaxQueueDepth int
	// Workers, when > 1, arms each partition with a worker pool: the
	// partition loop becomes a conflict-aware dispatcher that runs
	// the bodies of queued non-conflicting stored procedures
	// concurrently (by declared access sets, see
	// RegisterProcAccess) while commits, logging, and triggers
	// retire in admission order — externally indistinguishable from
	// serial execution, including the command log and recovery.
	// Procedures without a declared access set always run serially.
	// See DESIGN.md §11.
	Workers int
	// Cluster, when set, makes this engine one node of a multi-node
	// deployment: the map fixes the cluster-wide partition space
	// (overriding Partitions), this node runs only the partitions the
	// map assigns to NodeID, and committing transactions hand
	// relocated interior batches to partitions on other nodes over
	// peer connections, exactly-once. Requests routed to a partition
	// another node owns fail with an error naming the owner, which
	// the server layer forwards transparently. Every node keeps its
	// own command log and snapshots, so recovery is node-local. See
	// DESIGN.md §13.
	Cluster *ClusterConfig
	// NodeID is this node's ID in the Cluster map.
	NodeID int
	// CheckpointEveryBytes, when positive, takes a checkpoint (and
	// compacts the command log) automatically after roughly this many
	// bytes of new log; requires SnapshotDir. Zero leaves
	// checkpointing manual.
	CheckpointEveryBytes int64
	// ArchiveDir is where archive tables (CREATE ARCHIVE TABLE) keep
	// their disk-backed page files. Empty auto-creates a temporary
	// directory removed on Close. The files are working state, not a
	// durability artifact: recovery rebuilds them from the latest
	// checkpoint generation plus the command log. See DESIGN.md §14.
	ArchiveDir string
	// ArchiveMemoryBudget caps the buffer-pool memory archive tables
	// share (bytes, split across partitions); rows beyond it spill to
	// disk and read back on demand. Zero picks a small default.
	ArchiveMemoryBudget int64
}

// ClusterConfig is a static cluster map: node ID → address → the
// partitions the node owns. Build one with ParseCluster (the textual
// form cmd/sstore-server -cluster takes) or literally; all nodes of a
// deployment must share the identical map.
type ClusterConfig = cluster.Config

// ClusterNode is one node of a ClusterConfig.
type ClusterNode = cluster.Node

// ParseCluster parses the textual cluster map format
// "id@host:port=p0,p1;id@host:port=p2,..." (ranges like "0-3" work).
func ParseCluster(spec string) (*ClusterConfig, error) { return cluster.Parse(spec) }

// ErrOverloaded is the sentinel matched by errors.Is when a Call or
// Ingest is rejected by MaxQueueDepth backpressure. The rejected
// request left no trace (an ingested batch's exactly-once admission is
// released), so retrying the identical request is legal as long as the
// injector retries before submitting later batch IDs on the same
// stream and partition — see DESIGN.md §7.
var ErrOverloaded = pe.ErrOverloaded

// OverloadedError is the concrete border-rejection error; it carries
// the partition, the observed queue depth, and a retry-after hint.
type OverloadedError = pe.OverloadedError

// RetryAfter extracts the backoff hint from an overload rejection, or
// 0 when err is not one.
func RetryAfter(err error) time.Duration {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// Engine is a running S-Store instance.
type Engine struct {
	pe *pe.Engine
}

// Stats aggregates engine counters.
type Stats = pe.Stats

// Open builds and starts an engine.
func Open(cfg Config) (*Engine, error) {
	inner, err := pe.NewEngine(pe.Options{
		Partitions:           cfg.Partitions,
		ClientRTT:            cfg.ClientRTT,
		EEDispatch:           cfg.EEDispatch,
		Recovery:             cfg.Recovery,
		LogPath:              cfg.LogPath,
		LogPolicy:            cfg.LogPolicy,
		GroupWindow:          cfg.GroupWindow,
		LogSegmentBytes:      cfg.LogSegmentBytes,
		SnapshotDir:          cfg.SnapshotDir,
		PartitionBy:          cfg.PartitionBy,
		RouteCall:            cfg.RouteCall,
		MaxQueueDepth:        cfg.MaxQueueDepth,
		Workers:              cfg.Workers,
		Cluster:              cfg.Cluster,
		NodeID:               cfg.NodeID,
		CheckpointEveryBytes: cfg.CheckpointEveryBytes,
		ArchiveDir:           cfg.ArchiveDir,
		ArchiveMemoryBudget:  cfg.ArchiveMemoryBudget,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{pe: inner}, nil
}

// Close drains and stops the engine.
func (e *Engine) Close() error { return e.pe.Close() }

// Partitions returns the partition count.
func (e *Engine) Partitions() int { return e.pe.Partitions() }

// ExecDDL runs a DDL statement (CREATE TABLE/STREAM/WINDOW/INDEX) on
// every partition.
func (e *Engine) ExecDDL(ddl string) error { return e.pe.ExecDDL(ddl) }

// ExecDDLOwned runs DDL attributed to a stored procedure; a CREATE
// WINDOW executed this way is private to that procedure (§3.2.2).
func (e *Engine) ExecDDLOwned(owner, ddl string) error { return e.pe.ExecDDLOwned(owner, ddl) }

// RegisterProc registers a stored procedure.
func (e *Engine) RegisterProc(name string, fn ProcFunc) error {
	return e.pe.RegisterProc(&pe.StoredProc{Name: name, Func: fn})
}

// RegisterProcAccess registers a stored procedure together with its
// declared table access footprint: the tables the body reads and
// writes (the procedure's workflow input stream, if any, is added to
// the writes automatically). The declaration is enforced — a
// statement touching an undeclared table fails with an error, under
// serial and parallel execution alike — and makes the procedure
// eligible for intra-partition parallelism (Config.Workers): calls
// whose declared sets don't conflict may run their bodies
// concurrently. See DESIGN.md §11.
func (e *Engine) RegisterProcAccess(name string, reads, writes []string, fn ProcFunc) error {
	return e.pe.RegisterProc(&pe.StoredProc{
		Name:   name,
		Access: &pe.ProcAccess{Reads: reads, Writes: writes},
		Func:   fn,
	})
}

// AddEETrigger attaches an execution-engine trigger: SQL statements
// that run, inside the firing transaction, whenever an atomic batch is
// inserted into the stream (or a window slides). Statements receive the
// batch ID as parameter ?1 (§3.2.3).
func (e *Engine) AddEETrigger(table string, stmts ...string) error {
	return e.pe.AddEETrigger(table, stmts...)
}

// MaintainWindowAggregate registers an incrementally maintained
// aggregate (count/sum/avg/min/max) over a window table's column ("*"
// for COUNT(*)): matching aggregate queries read the stored value
// instead of scanning the window. Re-issue at boot before Recover,
// like DDL.
func (e *Engine) MaintainWindowAggregate(table, fn, column string) error {
	return e.pe.MaintainWindowAggregate(table, fn, column)
}

// DeployWorkflow wires a workflow's edges into partition-engine
// triggers and marks its border procedures for logging.
func (e *Engine) DeployWorkflow(w *Workflow) error { return e.pe.DeployWorkflow(w) }

// Call invokes a stored procedure as an OLTP transaction and waits.
func (e *Engine) Call(sp string, params ...Value) (*Result, error) {
	return e.pe.Call(sp, Row(params))
}

// CallResult is the outcome delivered by CallAsync.
type CallResult = pe.CallResult

// CallAsync invokes a stored procedure without waiting; the returned
// channel receives the outcome. Pipelining calls this way is also what
// lets a Workers-armed engine form waves of concurrent non-conflicting
// procedures — a strictly synchronous caller never queues more than
// one task at a time.
func (e *Engine) CallAsync(sp string, params ...Value) <-chan CallResult {
	return e.pe.CallAsync(sp, Row(params))
}

// CallNested executes children as one nested transaction (§2.3).
func (e *Engine) CallNested(children []NestedCall) (*Result, error) {
	return e.pe.CallNested(children)
}

// Ingest pushes an atomic batch into a border stream asynchronously.
func (e *Engine) Ingest(streamName string, b *Batch) error { return e.pe.Ingest(streamName, b) }

// IngestSync pushes a batch and waits for the border transaction to
// commit.
func (e *Engine) IngestSync(streamName string, b *Batch) error {
	return e.pe.IngestSync(streamName, b)
}

// IngestAsync enqueues the batch like Ingest but returns a channel that
// receives the border transaction's commit outcome. The enqueue — and
// the exactly-once batch admission — happens synchronously in
// submission order before IngestAsync returns.
func (e *Engine) IngestAsync(streamName string, b *Batch) (<-chan error, error) {
	return e.pe.IngestAsync(streamName, b)
}

// Drain waits for all queued work, including trigger cascades, to
// finish.
func (e *Engine) Drain() error { return e.pe.Drain() }

// Query runs one ad-hoc SQL statement on a partition. Read-only
// statements are served from the snapshot read path — a consistent
// view pinned at the current commit boundary, off the partition
// scheduler queue — so inspection queries do not steal streaming
// throughput. Ad-hoc writes are rejected when command logging is
// enabled (they would not be logged and would vanish on recovery).
func (e *Engine) Query(partition int, sql string, params ...Value) (*QueryResult, error) {
	return e.pe.AdHoc(partition, sql, params...)
}

// ReadView is a pinned, transaction-consistent read-only snapshot of
// one partition, served off the partition loop.
type ReadView = pe.ReadView

// ReadView pins a read view on a partition at the current commit
// boundary without entering the partition's scheduler queue. The view
// never observes rows committed after the pin, nor any aborted
// transaction's rows. Close it when done.
func (e *Engine) ReadView(partition int) (*ReadView, error) { return e.pe.ReadView(partition) }

// Read pins a view, runs one read-only statement against it, and
// releases the view — the one-shot snapshot read.
func (e *Engine) Read(partition int, sql string, params ...Value) (*QueryResult, error) {
	return e.pe.Read(partition, sql, params...)
}

// Checkpoint writes a transaction-consistent snapshot of all
// partitions.
func (e *Engine) Checkpoint() error { return e.pe.Checkpoint() }

// Recover runs crash recovery per the configured mode; call before
// admitting traffic on a restarted engine.
func (e *Engine) Recover() error { return e.pe.Recover() }

// Stats returns engine counters.
func (e *Engine) Stats() Stats { return e.pe.Stats() }

// QueueDepth reports a partition's queued task count; an out-of-range
// partition is an error, not a panic.
func (e *Engine) QueueDepth(partition int) (int, error) { return e.pe.QueueDepth(partition) }

// TableInfo describes one catalog entry.
type TableInfo = pe.TableInfo

// Tables lists a partition's catalog (tables, streams, windows) in
// name order.
func (e *Engine) Tables(partition int) ([]TableInfo, error) { return e.pe.Tables(partition) }
