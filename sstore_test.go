package sstore_test

import (
	"path/filepath"
	"testing"

	"sstore"
)

// TestPublicAPIEndToEnd drives a hybrid workload purely through the
// public API: a two-step streaming workflow with a window, plus an
// OLTP procedure sharing a table with the workflow.
func TestPublicAPIEndToEnd(t *testing.T) {
	eng, err := sstore.Open(sstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ddl := []string{
		"CREATE STREAM readings (sensor BIGINT, v BIGINT)",
		"CREATE STREAM alerts (sensor BIGINT, v BIGINT)",
		"CREATE TABLE alert_log (sensor BIGINT, v BIGINT)",
		"CREATE TABLE thresholds (sensor BIGINT PRIMARY KEY, max BIGINT)",
	}
	for _, d := range ddl {
		if err := eng.ExecDDL(d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Query(0, "INSERT INTO thresholds VALUES (1, 50), (2, 90)"); err != nil {
		t.Fatal(err)
	}

	err = eng.RegisterProc("Detect", func(ctx *sstore.ProcCtx) error {
		_, err := ctx.Query(`INSERT INTO alerts
			SELECT r.sensor, r.v FROM readings r JOIN thresholds t ON r.sensor = t.sensor
			WHERE r.v > t.max`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = eng.RegisterProc("Record", func(ctx *sstore.ProcCtx) error {
		_, err := ctx.Query("INSERT INTO alert_log SELECT sensor, v FROM alerts")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := sstore.NewWorkflow("alerting", []sstore.Node{
		{SP: "Detect", Input: "readings", Outputs: []string{"alerts"}},
		{SP: "Record", Input: "alerts"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DeployWorkflow(wf); err != nil {
		t.Fatal(err)
	}

	// Sensor 1 exceeds its threshold twice; sensor 2 never does.
	batches := [][2]int64{{1, 60}, {2, 80}, {1, 40}, {1, 99}}
	for i, b := range batches {
		err := eng.IngestSync("readings", &sstore.Batch{
			ID:   int64(i + 1),
			Rows: []sstore.Row{{sstore.Int(b[0]), sstore.Int(b[1])}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(0, "SELECT sensor, v FROM alert_log ORDER BY v")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].Int() != 60 || res.Rows[1][1].Int() != 99 {
		t.Fatalf("alert_log = %v", res.Rows)
	}
	if got := eng.Stats().Executed; got < 6 {
		t.Errorf("executed = %d, want >= 6 TEs", got)
	}
}

// TestPublicAPIRecovery exercises checkpoint + weak recovery through
// the facade.
func TestPublicAPIRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := sstore.Config{
		Recovery:    sstore.RecoveryWeak,
		LogPath:     filepath.Join(dir, "cmd.log"),
		LogPolicy:   sstore.SyncEachCommit,
		SnapshotDir: dir,
	}
	build := func() *sstore.Engine {
		eng, err := sstore.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.ExecDDL("CREATE STREAM in_s (v BIGINT)"); err != nil {
			t.Fatal(err)
		}
		if err := eng.ExecDDL("CREATE TABLE total (n BIGINT)"); err != nil {
			t.Fatal(err)
		}
		// Seed rows are setup state re-issued at every boot, like DDL;
		// ad-hoc writes are rejected under command logging because they
		// would not be replayed.
		if err := eng.ExecDDL("INSERT INTO total VALUES (0)"); err != nil {
			t.Fatal(err)
		}
		err = eng.RegisterProc("Sum", func(ctx *sstore.ProcCtx) error {
			sum, err := ctx.Query("SELECT COALESCE(SUM(v), 0) FROM in_s")
			if err != nil {
				return err
			}
			_, err = ctx.Query("UPDATE total SET n = n + ?", sum.Rows[0][0])
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		wf, _ := sstore.NewWorkflow("sum", []sstore.Node{{SP: "Sum", Input: "in_s"}})
		if err := eng.DeployWorkflow(wf); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	e1 := build()
	for b := int64(1); b <= 5; b++ {
		if err := e1.IngestSync("in_s", &sstore.Batch{ID: b, Rows: []sstore.Row{{sstore.Int(b)}}}); err != nil {
			t.Fatal(err)
		}
	}
	e1.Drain()
	want, _ := e1.Query(0, "SELECT n FROM total")
	if want.Rows[0][0].Int() != 15 {
		t.Fatalf("total = %v", want.Rows[0][0])
	}
	e1.Close()

	e2 := build()
	defer e2.Close()
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := e2.Query(0, "SELECT n FROM total")
	if got.Rows[0][0].Int() != 15 {
		t.Errorf("recovered total = %v, want 15", got.Rows[0][0])
	}
}

// TestPublicAPITables checks catalog introspection via the facade.
func TestPublicAPITables(t *testing.T) {
	eng, err := sstore.Open(sstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.ExecDDL("CREATE TABLE zz (id BIGINT)")
	eng.ExecDDL("CREATE STREAM aa (v BIGINT)")
	eng.ExecDDLOwned("Own", "CREATE WINDOW mm (v BIGINT) SIZE 3 SLIDE 1")
	infos, err := eng.Tables(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("tables = %+v", infos)
	}
	// Name order: aa, mm, zz.
	if infos[0].Name != "aa" || infos[0].Kind != "STREAM" {
		t.Errorf("first = %+v", infos[0])
	}
	if infos[1].Kind != "WINDOW" || infos[2].Kind != "TABLE" {
		t.Errorf("kinds = %+v", infos)
	}
	if _, err := eng.Tables(9); err == nil {
		t.Error("bad partition should error")
	}
}

// TestPublicAPINested checks nested transactions via the facade.
func TestPublicAPINested(t *testing.T) {
	eng, err := sstore.Open(sstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.ExecDDL("CREATE TABLE t (v BIGINT)")
	eng.RegisterProc("Ins", func(ctx *sstore.ProcCtx) error {
		_, err := ctx.Query("INSERT INTO t VALUES (?)", ctx.Params()[0])
		return err
	})
	eng.RegisterProc("Boom", func(ctx *sstore.ProcCtx) error {
		return ctx.Abort("always")
	})
	if _, err := eng.CallNested([]sstore.NestedCall{
		{SP: "Ins", Params: sstore.Row{sstore.Int(1)}},
		{SP: "Boom"},
	}); err == nil {
		t.Fatal("nested should abort")
	}
	res, _ := eng.Query(0, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("count = %v, want 0", res.Rows[0][0])
	}
}
