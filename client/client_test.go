package client

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sstore"
	"sstore/internal/wire"
)

// overloadedServer is a minimal wire-speaking endpoint that rejects
// every ingest with StatusOverloaded and the given retry-after hint,
// counting attempts — the shape of a border pinned at MaxQueueDepth.
func overloadedServer(t *testing.T, hint time.Duration) (addr string, attempts *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	attempts = &atomic.Int64{}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				// Protocol handshake: both sides lead with magic+version.
				if _, err := c.Write(wire.AppendHello(nil)); err != nil {
					return
				}
				br := bufio.NewReader(c)
				if err := wire.ReadHello(br); err != nil {
					return
				}
				for {
					payload, err := wire.ReadFrame(br)
					if err != nil {
						return
					}
					req, err := wire.DecodeRequest(payload)
					if err != nil {
						return
					}
					attempts.Add(1)
					frame := wire.AppendResponse(nil, &wire.Response{
						ID: req.ID, Op: req.Op, Status: wire.StatusOverloaded,
						Partition:        0,
						Depth:            1,
						RetryAfterMicros: uint64(hint.Microseconds()),
					})
					if _, err := c.Write(frame); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), attempts
}

// TestIngestRetryBudget: the bounded retry option stops after
// MaxAttempts, returning an error that still matches ErrOverloaded.
func TestIngestRetryBudget(t *testing.T) {
	addr, attempts := overloadedServer(t, 100*time.Microsecond)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := &sstore.Batch{ID: 1, Rows: []sstore.Row{{sstore.Int(1)}}}
	err = c.IngestRetryOpts("s", b, RetryOptions{MaxAttempts: 3})
	if err == nil {
		t.Fatal("want error after exhausted budget")
	}
	if !errors.Is(err, sstore.ErrOverloaded) {
		t.Errorf("budget error should still match ErrOverloaded: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

// TestIngestRetryDeadline: a deadline in the near past stops the loop
// after the first rejection instead of sleeping.
func TestIngestRetryDeadline(t *testing.T) {
	addr, attempts := overloadedServer(t, time.Hour) // hint would sleep ~forever
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := &sstore.Batch{ID: 1, Rows: []sstore.Row{{sstore.Int(1)}}}
	start := time.Now()
	err = c.IngestRetryOpts("s", b, RetryOptions{Deadline: time.Now().Add(50 * time.Millisecond)})
	if err == nil {
		t.Fatal("want deadline error")
	}
	if !errors.Is(err, sstore.ErrOverloaded) {
		t.Errorf("deadline error should match ErrOverloaded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline loop slept %v despite a 50ms deadline and 1h hint", elapsed)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1", got)
	}
}

// TestJitterWaitSpreads: the backoff is jittered ±50% around the hint
// — never the exact synchronized hint for a whole cohort — and stays
// within (hint/2, hint*3/2).
func TestJitterWaitSpreads(t *testing.T) {
	const hint = 10 * time.Millisecond
	lo, hi := hint/2, hint*3/2
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		w := jitterWait(hint)
		if w < lo || w >= hi {
			t.Fatalf("jitterWait(%v) = %v outside [%v, %v)", hint, w, lo, hi)
		}
		seen[w] = true
	}
	if len(seen) < 50 {
		t.Errorf("jitter produced only %d distinct waits in 200 draws — cohort would stampede", len(seen))
	}
	if jitterWait(0) != 0 {
		t.Error("zero hint should not sleep")
	}
}
