// Cluster-aware client: one logical connection to an S-Store cluster.
// A ClusterClient holds the static cluster map (node → address →
// partition set) and routes every request to the node that owns its
// partition, falling back to server-side forwarding (the owning node
// serves the request one hop later) when the client cannot compute the
// partition itself — servers accept any request on any node.
package client

import (
	"fmt"
	"sync"
	"time"

	"sstore"
	"sstore/internal/cluster"
)

// ClusterClient fans requests out across the nodes of a cluster map.
// Connections are dialed lazily per node and redialed once per request
// after a transport failure, so a restarted node is picked back up
// transparently. Methods are safe for concurrent use.
type ClusterClient struct {
	cfg *cluster.Config

	// PartitionOf optionally mirrors the server application's
	// PartitionBy routing function (raw key, pre-wrap). When set,
	// Ingest routes each batch directly to the node owning its
	// partition; when nil, batches go to the first node and reach the
	// owner by server-side forwarding (one extra hop).
	PartitionOf func(stream string, rows []sstore.Row) int
	// RouteCallTo optionally mirrors the application's RouteCall
	// function; same contract as PartitionOf, for Call.
	RouteCallTo func(sp string, params sstore.Row) int

	mu    sync.Mutex
	conns map[int]*Client // by node ID
	rr    int             // round-robin cursor for unrouted Calls
}

// DialCluster builds a cluster client over a validated cluster map.
// Nothing is dialed until the first request needs a node.
func DialCluster(cfg *cluster.Config) (*ClusterClient, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ClusterClient{cfg: cfg, conns: make(map[int]*Client)}, nil
}

// DialClusterSpec is DialCluster over the textual cluster map format
// of cmd/sstore-server -cluster ("id=host:port:p0,p1;...").
func DialClusterSpec(spec string) (*ClusterClient, error) {
	cfg, err := cluster.Parse(spec)
	if err != nil {
		return nil, err
	}
	return DialCluster(cfg)
}

// Close closes every node connection.
func (cc *ClusterClient) Close() error {
	cc.mu.Lock()
	conns := cc.conns
	cc.conns = make(map[int]*Client)
	cc.mu.Unlock()
	var first error
	for _, c := range conns {
		if err := c.Close(); err != nil && first != nil {
			first = err
		}
	}
	return first
}

// Config returns the cluster map the client routes by.
func (cc *ClusterClient) Config() *cluster.Config { return cc.cfg }

// Node returns the (cached or freshly dialed) connection to one node,
// for callers that need per-connection features — pipelined
// IngestAsync, per-node Drain — the cluster-wide wrappers do not
// expose.
func (cc *ClusterClient) Node(id int) (*Client, error) { return cc.node(id) }

// node returns the (cached or freshly dialed) connection to a node.
func (cc *ClusterClient) node(id int) (*Client, error) {
	n, err := cc.cfg.NodeByID(id)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	if c, ok := cc.conns[id]; ok {
		cc.mu.Unlock()
		return c, nil
	}
	cc.mu.Unlock()
	c, err := Dial(n.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: node %d (%s): %w", id, n.Addr, err)
	}
	cc.mu.Lock()
	if prev, ok := cc.conns[id]; ok {
		// Lost a dial race; keep the established one.
		cc.mu.Unlock()
		c.Close()
		return prev, nil
	}
	cc.conns[id] = c
	cc.mu.Unlock()
	return c, nil
}

// invalidate drops a node's cached connection (if it is still the one
// that failed) so the next request redials.
func (cc *ClusterClient) invalidate(id int, c *Client) {
	cc.mu.Lock()
	if cc.conns[id] == c {
		delete(cc.conns, id)
	}
	cc.mu.Unlock()
	c.Close()
}

// onNode runs fn against a node's connection, redialing and retrying
// exactly once when the connection had died (sticky transport error) —
// the restarted-node path. Request-level errors pass through.
func (cc *ClusterClient) onNode(id int, fn func(c *Client) error) error {
	c, err := cc.node(id)
	if err != nil {
		return err
	}
	err = fn(c)
	if err != nil && c.Broken() {
		cc.invalidate(id, c)
		if c, err = cc.node(id); err != nil {
			return err
		}
		return fn(c)
	}
	return err
}

// wrap maps a raw routing key into the cluster-wide partition space,
// mirroring the engine's own wrap.
func (cc *ClusterClient) wrap(key int) int {
	n := cc.cfg.Partitions()
	return ((key % n) + n) % n
}

// ownerID returns the node owning a (wrapped) partition.
func (cc *ClusterClient) ownerID(pid int) (int, error) {
	n, err := cc.cfg.Owner(pid)
	if err != nil {
		return 0, err
	}
	return n.ID, nil
}

// nextNode picks a node round-robin for requests the client cannot
// route itself; the server forwards to the owner when needed.
func (cc *ClusterClient) nextNode() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	id := cc.cfg.Nodes[cc.rr%len(cc.cfg.Nodes)].ID
	cc.rr++
	return id
}

// Call invokes a stored procedure, on the owning node when RouteCallTo
// is set, else on a round-robin node (which forwards if it does not
// own the routed partition).
func (cc *ClusterClient) Call(sp string, params ...sstore.Value) (*Result, error) {
	id := 0
	if cc.RouteCallTo != nil {
		pid := cc.wrap(cc.RouteCallTo(sp, sstore.Row(params)))
		var err error
		if id, err = cc.ownerID(pid); err != nil {
			return nil, err
		}
	} else {
		id = cc.nextNode()
	}
	var res *Result
	err := cc.onNode(id, func(c *Client) error {
		var err error
		res, err = c.Call(sp, params...)
		return err
	})
	return res, err
}

// Query runs a read-only statement against a consistent snapshot of
// one partition, on the node that owns it.
func (cc *ClusterClient) Query(partition int, stmt string, params ...sstore.Value) (*Result, error) {
	id, err := cc.ownerID(partition)
	if err != nil {
		return nil, err
	}
	var res *Result
	err = cc.onNode(id, func(c *Client) error {
		var err error
		res, err = c.Query(partition, stmt, params...)
		return err
	})
	return res, err
}

// Ingest pushes an atomic batch into a border stream on the owning
// node (PartitionOf set) or the first node (server forwards). The
// exactly-once ledger lives on the owning node either way, so retrying
// an uncertain outcome — including after a node restart — is legal and
// duplicate-suppressed.
func (cc *ClusterClient) Ingest(streamName string, b *sstore.Batch) error {
	id := cc.cfg.Nodes[0].ID
	if cc.PartitionOf != nil {
		pid := cc.wrap(cc.PartitionOf(streamName, b.Rows))
		var err error
		if id, err = cc.ownerID(pid); err != nil {
			return err
		}
	}
	return cc.onNode(id, func(c *Client) error {
		return c.Ingest(streamName, b)
	})
}

// IngestRetry is Ingest with the overload-retry loop of
// Client.IngestRetry, against the routed node.
func (cc *ClusterClient) IngestRetry(streamName string, b *sstore.Batch) error {
	id := cc.cfg.Nodes[0].ID
	if cc.PartitionOf != nil {
		pid := cc.wrap(cc.PartitionOf(streamName, b.Rows))
		var err error
		if id, err = cc.ownerID(pid); err != nil {
			return err
		}
	}
	return cc.onNode(id, func(c *Client) error {
		return c.IngestRetry(streamName, b)
	})
}

// NodeStats fetches each node's counter snapshot, by node ID.
func (cc *ClusterClient) NodeStats() (map[int]Stats, error) {
	out := make(map[int]Stats, len(cc.cfg.Nodes))
	for i := range cc.cfg.Nodes {
		id := cc.cfg.Nodes[i].ID
		var st Stats
		err := cc.onNode(id, func(c *Client) error {
			var err error
			st, err = c.Stats()
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("client: stats from node %d: %w", id, err)
		}
		out[id] = st
	}
	return out, nil
}

// Stats sums the counters across all nodes into one cluster-wide
// snapshot.
func (cc *ClusterClient) Stats() (Stats, error) {
	per, err := cc.NodeStats()
	if err != nil {
		return Stats{}, err
	}
	var sum Stats
	for _, st := range per {
		sum.Executed += st.Executed
		sum.Aborted += st.Aborted
		sum.LogAppends += st.LogAppends
		sum.LogSyncs += st.LogSyncs
		sum.ClientTrips += st.ClientTrips
		sum.EECrossings += st.EECrossings
		sum.Overloaded += st.Overloaded
		sum.HandoffsSent += st.HandoffsSent
		sum.HandoffsRecv += st.HandoffsRecv
		sum.HandoffsDup += st.HandoffsDup
		sum.HandoffsPending += st.HandoffsPending
	}
	return sum, nil
}

// Drain blocks until the cluster is quiescent: every node drained AND
// zero unacknowledged hand-offs anywhere. A node's own Drain does not
// cover batches it handed to a peer, so the loop alternates drain
// rounds with cluster-wide pending checks until a drained round shows
// nothing in flight. Like Client.Drain, this is for tests and
// controlled benchmarks; under continuous ingestion from other clients
// it may block indefinitely.
func (cc *ClusterClient) Drain() error {
	for {
		for i := range cc.cfg.Nodes {
			id := cc.cfg.Nodes[i].ID
			if err := cc.onNode(id, func(c *Client) error { return c.Drain() }); err != nil {
				return err
			}
		}
		st, err := cc.Stats()
		if err != nil {
			return err
		}
		if st.HandoffsPending == 0 {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}
