// Package client is the Go client for an S-Store server
// (cmd/sstore-server): a TCP connection speaking the internal/wire
// protocol, with request pipelining — many Calls and Ingests may be in
// flight concurrently on one connection, and each completes when its
// transaction commits server-side.
//
// Backpressure is first-class: when the server rejects a request under
// queue-depth bounds, the returned error matches sstore.ErrOverloaded
// and carries the server's retry-after hint (sstore.RetryAfter). The
// rejected request left no server-side trace, so retrying the
// identical request — same batch ID included — is legal, provided the
// retry happens before later batch IDs are admitted on the same
// stream and partition (the server's exactly-once ledger is a
// high-water mark): resolve each batch before pipelining past it when
// the server may push back. IngestRetry packages that loop.
package client

import (
	"bufio"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"sstore"
	"sstore/internal/wire"
)

// Result is a Call's client-visible outcome, mirroring sstore.Result.
type Result struct {
	Columns         []string
	Rows            []sstore.Row
	LastInsertBatch int64
}

// Stats is the server engine's counter snapshot.
type Stats = wire.Stats

// Client is one pipelined connection to a server. Methods are safe for
// concurrent use; responses are matched to requests by ID, so
// concurrent in-flight requests complete independently.
type Client struct {
	conn net.Conn

	// wmu serializes request writes; each request is framed and
	// flushed as one unit.
	wmu sync.Mutex
	bw  *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Response
	err     error // sticky transport failure, fails all later requests
}

// Dial connects to a server at addr ("host:port") and completes the
// protocol handshake: both sides lead with magic + version bytes, and
// a peer that is not an sstore server of the same protocol version is
// rejected here with a precise error instead of failing obscurely on
// the first frame.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	//lint:allow errdrop -- deadline errors surface on the guarded handshake I/O
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)
	if _, err := conn.Write(wire.AppendHello(nil)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if err := wire.ReadHello(br); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: %w", err)
	}
	//lint:allow errdrop -- clearing a deadline on a live conn cannot fail meaningfully
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]chan *wire.Response),
	}
	// The handshake reader carries over: it may already have buffered
	// frame bytes past the hello.
	go c.readLoop(br)
	return c, nil
}

// Close tears down the connection; in-flight requests fail.
func (c *Client) Close() error {
	c.fail(fmt.Errorf("client: closed"))
	return c.conn.Close()
}

// readLoop delivers responses to their waiting requests until the
// connection dies, then fails everything still pending.
func (c *Client) readLoop(br *bufio.Reader) {
	// One grow-only frame buffer for the connection's lifetime:
	// DecodeResponse copies everything it keeps, so each frame may
	// overwrite the last.
	var scratch []byte
	for {
		payload, err := wire.ReadFrameBuf(br, scratch)
		scratch = payload
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			c.fail(fmt.Errorf("client: %w", err))
			c.conn.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// Broken reports whether the connection has died (sticky transport
// failure): every further request on this client fails, and the caller
// should redial. Request-level errors (abort, overload, routing) do
// not break a client.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// fail marks the client broken and releases every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan *wire.Response)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// send registers a pending slot and writes the framed request. The
// returned channel receives the response, or closes on transport
// failure.
func (c *Client) send(req *wire.Request) (chan *wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	frame := wire.AppendRequest(nil, req)
	if len(frame)-4 > wire.MaxFrame {
		// An oversize request (e.g. a huge batch) fails locally rather
		// than desynchronizing the server's frame reader.
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("client: request of %d bytes exceeds frame limit %d", len(frame)-4, wire.MaxFrame)
	}
	c.wmu.Lock()
	_, err := c.bw.Write(frame)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		err = fmt.Errorf("client: send: %w", err)
		c.fail(err)
		return nil, err
	}
	return ch, nil
}

// decodeErr converts a non-OK response into the matching Go error; an
// overloaded status becomes an sstore.OverloadedError so errors.Is
// against sstore.ErrOverloaded and sstore.RetryAfter work unchanged
// across the wire.
func decodeErr(resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusOverloaded:
		return &sstore.OverloadedError{
			Partition:  resp.Partition,
			Depth:      resp.Depth,
			RetryAfter: time.Duration(resp.RetryAfterMicros) * time.Microsecond,
		}
	case wire.StatusErr:
		return fmt.Errorf("server: %s", resp.Msg)
	default:
		return nil
	}
}

// await turns a response channel into (response, error), mapping a
// closed channel to the sticky transport error.
func (c *Client) await(ch chan *wire.Response) (*wire.Response, error) {
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("client: connection lost")
		}
		return nil, err
	}
	if err := decodeErr(resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Call invokes a stored procedure as an OLTP transaction and waits for
// its result.
func (c *Client) Call(sp string, params ...sstore.Value) (*Result, error) {
	ch, err := c.send(&wire.Request{Op: wire.OpCall, SP: sp, Params: sstore.Row(params)})
	if err != nil {
		return nil, err
	}
	resp, err := c.await(ch)
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns:         resp.Columns,
		Rows:            resp.Rows,
		LastInsertBatch: resp.LastInsertBatch,
	}, nil
}

// Query runs a read-only SQL statement against a consistent snapshot
// of one partition. Queries are served off the partition loop (the
// snapshot read path): they never occupy a scheduler slot, are never
// rejected by queue-depth backpressure, and observe a single commit
// boundary — committed state only, never a half-executed transaction.
func (c *Client) Query(partition int, stmt string, params ...sstore.Value) (*Result, error) {
	ch, err := c.send(&wire.Request{
		Op: wire.OpQuery, Partition: partition, SQL: stmt, Params: sstore.Row(params),
	})
	if err != nil {
		return nil, err
	}
	resp, err := c.await(ch)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: resp.Columns, Rows: resp.Rows}, nil
}

// Ingest pushes an atomic batch into a border stream and waits for the
// border transaction to commit (exactly-once: duplicate batch IDs are
// rejected server-side).
func (c *Client) Ingest(streamName string, b *sstore.Batch) error {
	ch, err := c.IngestAsync(streamName, b)
	if err != nil {
		return err
	}
	return <-ch
}

// IngestAsync submits the batch and returns a channel receiving the
// border transaction's commit outcome, enabling many in-flight batches
// per connection. The request is written before IngestAsync returns,
// so a single caller's batches are admitted in submission order.
// Submission-time rejections (duplicate, overload) arrive on the
// channel like commit outcomes.
func (c *Client) IngestAsync(streamName string, b *sstore.Batch) (<-chan error, error) {
	ch, err := c.send(&wire.Request{
		Op: wire.OpIngest, Stream: streamName, BatchID: b.ID, Rows: b.Rows,
	})
	if err != nil {
		return nil, err
	}
	out := make(chan error, 1)
	go func() {
		_, err := c.await(ch)
		out <- err
	}()
	return out, nil
}

// RetryOptions bounds an overload-retry loop. The zero value retries
// forever (with jitter), preserving IngestRetry's historical contract.
type RetryOptions struct {
	// MaxAttempts caps the total number of Ingest attempts (initial
	// attempt included); 0 means unlimited. When the budget is
	// exhausted the last overload error is returned (it still matches
	// sstore.ErrOverloaded).
	MaxAttempts int
	// Deadline, when non-zero, stops retrying once the next backoff
	// would end past it; the last overload error is returned.
	Deadline time.Time
}

// IngestRetry ingests a batch, retrying after the server's hinted
// backoff for as long as the server reports overload — the retryable
// ingestion loop a production client runs under backpressure. Other
// errors (duplicate, abort, transport) return immediately.
//
// Each backoff applies ±50% jitter to the server's hint: every
// rejected client sleeping exactly the hint would wake the whole
// cohort simultaneously and re-stampede the border the moment it
// drained. Use IngestRetryOpts to bound the attempts or set a
// deadline.
func (c *Client) IngestRetry(streamName string, b *sstore.Batch) error {
	return c.IngestRetryOpts(streamName, b, RetryOptions{})
}

// IngestRetryOpts is IngestRetry with a bounded retry budget.
func (c *Client) IngestRetryOpts(streamName string, b *sstore.Batch, opts RetryOptions) error {
	attempts := 0
	for {
		err := c.Ingest(streamName, b)
		if err == nil {
			return nil
		}
		hint := sstore.RetryAfter(err)
		if hint <= 0 {
			return err
		}
		attempts++
		if opts.MaxAttempts > 0 && attempts >= opts.MaxAttempts {
			return fmt.Errorf("client: retry budget exhausted after %d attempts: %w", attempts, err)
		}
		wait := jitterWait(hint)
		if !opts.Deadline.IsZero() && time.Now().Add(wait).After(opts.Deadline) {
			return fmt.Errorf("client: retry deadline exceeded after %d attempts: %w", attempts, err)
		}
		time.Sleep(wait)
	}
}

// jitterWait spreads a retry hint uniformly over [hint/2, hint*3/2) so
// a cohort of rejected clients does not thunder back in lockstep.
func jitterWait(hint time.Duration) time.Duration {
	if hint <= 0 {
		return 0
	}
	return hint/2 + time.Duration(rand.Int64N(int64(hint)))
}

// Stats fetches the server engine's counters.
func (c *Client) Stats() (Stats, error) {
	ch, err := c.send(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return Stats{}, err
	}
	resp, err := c.await(ch)
	if err != nil {
		return Stats{}, err
	}
	return resp.Stats, nil
}

// Drain blocks until the server engine is quiescent — all queued work,
// including trigger cascades, finished. Intended for tests and
// controlled benchmarks; under continuous ingestion from other clients
// it may block indefinitely.
func (c *Client) Drain() error {
	ch, err := c.send(&wire.Request{Op: wire.OpDrain})
	if err != nil {
		return err
	}
	_, err = c.await(ch)
	return err
}
