// Linear Road: the subset of the Linear Road stream benchmark used in
// the paper's scalability experiment (§4.7), on the public API —
// streaming position reports drive toll notification, accident
// detection, and per-minute toll/statistics rollups, partitioned by
// expressway across cores.
//
// Run with: go run ./examples/linearroad [-xways 4] [-cores 2] [-reports 20000]
package main

import (
	"flag"
	"fmt"
	"log"

	"sstore"
	"sstore/internal/linearroad"
)

func main() {
	xways := flag.Int("xways", 4, "number of expressways")
	cores := flag.Int("cores", 2, "number of partitions (cores)")
	reports := flag.Int("reports", 20000, "position reports to feed")
	flag.Parse()

	eng, err := sstore.Open(sstore.Config{
		Partitions:  *cores,
		PartitionBy: linearroad.PartitionByXWay(*cores),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	cfg := linearroad.Config{XWays: *xways}
	seed := func(xway int, stmt string) error {
		_, err := eng.Query(xway%*cores, stmt)
		return err
	}
	if err := linearroad.SetupSchema(eng, cfg, seed); err != nil {
		log.Fatal(err)
	}
	for _, sp := range linearroad.Procs(cfg) {
		if err := eng.RegisterProc(sp.Name, sp.Func); err != nil {
			log.Fatal(err)
		}
	}
	wf, err := linearroad.Workflow()
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.DeployWorkflow(wf); err != nil {
		log.Fatal(err)
	}

	gen := linearroad.NewGenerator(7, cfg)
	for b := 1; b <= *reports; b++ {
		r := gen.Next()
		if err := eng.Ingest(linearroad.StreamReports, &sstore.Batch{
			ID:   int64(b),
			Rows: []sstore.Row{r.Row()},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fed %d position reports for %d x-ways across %d cores\n\n", *reports, *xways, *cores)
	for pid := 0; pid < *cores; pid++ {
		vehicles, _ := eng.Query(pid, "SELECT COUNT(*) FROM vehicles")
		notifs, _ := eng.Query(pid, "SELECT COUNT(*) FROM notifications")
		accidents, _ := eng.Query(pid, "SELECT COUNT(*) FROM accidents WHERE active = true")
		minutes, _ := eng.Query(pid, "SELECT COALESCE(MAX(minute), 0) FROM stats_history")
		charged, _ := eng.Query(pid, "SELECT COALESCE(SUM(balance), 0) FROM vehicles")
		fmt.Printf("partition %d: %v vehicles, %v notifications, %v active accidents, "+
			"stats through minute %v, %v toll units charged\n",
			pid, vehicles.Rows[0][0], notifs.Rows[0][0], accidents.Rows[0][0],
			minutes.Rows[0][0], charged.Rows[0][0])
	}
}
