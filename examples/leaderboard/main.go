// Leaderboard: the paper's motivating application (§1.1, Figure 1) end
// to end — an American-Idol-style vote with validation, sliding-window
// trending statistics, and periodic elimination of the lowest
// contestant, run until a single winner remains.
//
// Run with: go run ./examples/leaderboard [-votes 5000]
package main

import (
	"flag"
	"fmt"
	"log"

	"sstore"
	"sstore/internal/leaderboard"
)

func main() {
	votes := flag.Int("votes", 5000, "number of votes to cast")
	flag.Parse()

	eng, err := sstore.Open(sstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	cfg := leaderboard.Config{
		Contestants:    6,
		TrendingWindow: 100,
		TrendingSlide:  1,
		DeleteEvery:    1000,
		TopK:           3,
	}
	seed := func(stmt string) error {
		_, err := eng.Query(0, stmt)
		return err
	}
	if err := leaderboard.SetupSchema(engAdapter{eng}, cfg, seed); err != nil {
		log.Fatal(err)
	}
	for _, sp := range leaderboard.Procs(cfg) {
		if err := eng.RegisterProc(sp.Name, sp.Func); err != nil {
			log.Fatal(err)
		}
	}
	wf, err := leaderboard.Workflow()
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.DeployWorkflow(wf); err != nil {
		log.Fatal(err)
	}

	// Cast the votes as a stream of single-vote atomic batches.
	gen := leaderboard.NewGenerator(42, cfg)
	for b := 1; b <= *votes; b++ {
		if err := eng.Ingest(leaderboard.StreamVotesIn, &sstore.Batch{
			ID:   int64(b),
			Rows: []sstore.Row{gen.Next()},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}

	// Show the state the workflow maintained.
	print := func(title, sql string) {
		res, err := eng.Query(0, sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(title)
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row)
		}
	}
	print("top contestants (id, total):",
		"SELECT contestant_id, total FROM leaderboard_top ORDER BY total DESC")
	print("bottom contestants (id, total):",
		"SELECT contestant_id, total FROM leaderboard_bottom ORDER BY total ASC")
	print("trending, last 100 votes (id, recent):",
		"SELECT contestant_id, recent FROM leaderboard_trend ORDER BY recent DESC")
	print("still in the running:",
		"SELECT id, name, total FROM contestants WHERE active = true ORDER BY total DESC")

	res, err := eng.Query(0, "SELECT n FROM vote_counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("valid votes processed: %v of %d cast\n", res.Rows[0][0], *votes)
}

// engAdapter exposes the facade's DDL methods under the interface the
// workload package expects.
type engAdapter struct{ *sstore.Engine }

func (a engAdapter) ExecDDL(ddl string) error { return a.Engine.ExecDDL(ddl) }
func (a engAdapter) ExecDDLOwned(owner, ddl string) error {
	return a.Engine.ExecDDLOwned(owner, ddl)
}
