// Dashboard: the hybrid-workload pattern the paper's introduction
// motivates (§1) — a streaming workflow continuously folds events into
// shared tables while OLTP transactions read consistent summaries of
// that state. A nested transaction (§2.3) groups the workflow's two
// steps into one isolation unit so a concurrent OLTP reader can never
// observe the orders table updated but the per-region rollup not yet.
//
// Run with: go run ./examples/dashboard
package main

import (
	"fmt"
	"log"

	"sstore"
)

func main() {
	eng, err := sstore.Open(sstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	for _, ddl := range []string{
		"CREATE STREAM orders_in (region VARCHAR, amount BIGINT)",
		"CREATE TABLE orders (region VARCHAR, amount BIGINT)",
		"CREATE TABLE region_totals (region VARCHAR, orders BIGINT, revenue BIGINT)",
		"CREATE INDEX region_totals_r ON region_totals (region)",
	} {
		if err := eng.ExecDDL(ddl); err != nil {
			log.Fatal(err)
		}
	}

	// RecordOrder appends the raw order; RollupRegion maintains the
	// summary. Both run against params so they can be composed into a
	// nested transaction per order.
	err = eng.RegisterProc("RecordOrder", func(ctx *sstore.ProcCtx) error {
		_, err := ctx.Query("INSERT INTO orders VALUES (?, ?)", ctx.Params()[0], ctx.Params()[1])
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	err = eng.RegisterProc("RollupRegion", func(ctx *sstore.ProcCtx) error {
		region, amount := ctx.Params()[0], ctx.Params()[1]
		existing, err := ctx.Query("SELECT orders FROM region_totals WHERE region = ?", region)
		if err != nil {
			return err
		}
		if len(existing.Rows) == 0 {
			_, err = ctx.Query("INSERT INTO region_totals VALUES (?, 1, ?)", region, amount)
			return err
		}
		_, err = ctx.Query(
			"UPDATE region_totals SET orders = orders + 1, revenue = revenue + ? WHERE region = ?",
			amount, region)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// The streaming border SP turns each arriving batch into a nested
	// pair of calls — executed here inline (same partition, same
	// isolation) by issuing both steps inside one TE.
	err = eng.RegisterProc("IngestOrders", func(ctx *sstore.ProcCtx) error {
		rows, err := ctx.Query("SELECT region, amount FROM orders_in")
		if err != nil {
			return err
		}
		for _, r := range rows.Rows {
			if _, err := ctx.Query("INSERT INTO orders VALUES (?, ?)", r[0], r[1]); err != nil {
				return err
			}
			existing, err := ctx.Query("SELECT orders FROM region_totals WHERE region = ?", r[0])
			if err != nil {
				return err
			}
			if len(existing.Rows) == 0 {
				if _, err := ctx.Query("INSERT INTO region_totals VALUES (?, 1, ?)", r[0], r[1]); err != nil {
					return err
				}
			} else if _, err := ctx.Query(
				"UPDATE region_totals SET orders = orders + 1, revenue = revenue + ? WHERE region = ?",
				r[1], r[0]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The OLTP dashboard read: one consistent snapshot of the summary.
	err = eng.RegisterProc("Dashboard", func(ctx *sstore.ProcCtx) error {
		res, err := ctx.Query(
			"SELECT region, orders, revenue FROM region_totals ORDER BY revenue DESC")
		if err != nil {
			return err
		}
		ctx.SetResult(res)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	wf, err := sstore.NewWorkflow("orders", []sstore.Node{
		{SP: "IngestOrders", Input: "orders_in"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.DeployWorkflow(wf); err != nil {
		log.Fatal(err)
	}

	// Stream orders in.
	orders := []struct {
		region string
		amount int64
	}{
		{"emea", 120}, {"amer", 340}, {"apac", 75}, {"amer", 90}, {"emea", 410}, {"apac", 300},
	}
	for i, o := range orders {
		if err := eng.IngestSync("orders_in", &sstore.Batch{
			ID:   int64(i + 1),
			Rows: []sstore.Row{{sstore.Text(o.region), sstore.Int(o.amount)}},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}

	// An OLTP write arrives out of band as a nested transaction:
	// record + rollup commit together or not at all.
	if _, err := eng.CallNested([]sstore.NestedCall{
		{SP: "RecordOrder", Params: sstore.Row{sstore.Text("emea"), sstore.Int(55)}},
		{SP: "RollupRegion", Params: sstore.Row{sstore.Text("emea"), sstore.Int(55)}},
	}); err != nil {
		log.Fatal(err)
	}

	res, err := eng.Call("Dashboard")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue dashboard (region, orders, revenue):")
	for _, row := range res.Rows {
		fmt.Printf("  %-5v %3v %6v\n", row[0], row[1], row[2])
	}
	// The raw table and the rollup must agree — the consistency the
	// hybrid model exists to provide.
	raw, _ := eng.Query(0, "SELECT COALESCE(SUM(amount), 0), COUNT(*) FROM orders")
	agg, _ := eng.Query(0, "SELECT COALESCE(SUM(revenue), 0), COALESCE(SUM(orders), 0) FROM region_totals")
	fmt.Printf("raw orders: %v rows / %v revenue; rollup: %v orders / %v revenue\n",
		raw.Rows[0][1], raw.Rows[0][0], agg.Rows[0][1], agg.Rows[0][0])
}
