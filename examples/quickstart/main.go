// Quickstart: a minimal hybrid S-Store application.
//
// A two-step streaming workflow (clean → aggregate) shares a table
// with an ordinary OLTP transaction: sensor readings stream in, are
// filtered and averaged per sensor, and a pull-style OLTP procedure
// reads the same state consistently at any time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sstore"
)

func main() {
	eng, err := sstore.Open(sstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// State: two streams, one shared public table (§2's state kinds).
	for _, ddl := range []string{
		"CREATE STREAM raw_readings (sensor BIGINT, value BIGINT)",
		"CREATE STREAM clean_readings (sensor BIGINT, value BIGINT)",
		"CREATE TABLE averages (sensor BIGINT PRIMARY KEY, n BIGINT, total BIGINT)",
	} {
		if err := eng.ExecDDL(ddl); err != nil {
			log.Fatal(err)
		}
	}

	// Streaming SP 1: drop readings outside the plausible range.
	err = eng.RegisterProc("Clean", func(ctx *sstore.ProcCtx) error {
		_, err := ctx.Query(
			"INSERT INTO clean_readings SELECT sensor, value FROM raw_readings WHERE value >= 0 AND value <= 1000")
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// Streaming SP 2: fold the clean readings into running averages.
	err = eng.RegisterProc("Aggregate", func(ctx *sstore.ProcCtx) error {
		rows, err := ctx.Query("SELECT sensor, value FROM clean_readings")
		if err != nil {
			return err
		}
		for _, r := range rows.Rows {
			existing, err := ctx.Query("SELECT n FROM averages WHERE sensor = ?", r[0])
			if err != nil {
				return err
			}
			if len(existing.Rows) == 0 {
				_, err = ctx.Query("INSERT INTO averages VALUES (?, 1, ?)", r[0], r[1])
			} else {
				_, err = ctx.Query(
					"UPDATE averages SET n = n + 1, total = total + ? WHERE sensor = ?", r[1], r[0])
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// OLTP SP: a client-invoked read of the shared state.
	err = eng.RegisterProc("Report", func(ctx *sstore.ProcCtx) error {
		res, err := ctx.Query(
			"SELECT sensor, total / n AS avg, n FROM averages ORDER BY sensor")
		if err != nil {
			return err
		}
		ctx.SetResult(res)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Wire the workflow: raw_readings → Clean → clean_readings →
	// Aggregate. The engine compiles the edge into a PE trigger.
	wf, err := sstore.NewWorkflow("pipeline", []sstore.Node{
		{SP: "Clean", Input: "raw_readings", Outputs: []string{"clean_readings"}},
		{SP: "Aggregate", Input: "clean_readings"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.DeployWorkflow(wf); err != nil {
		log.Fatal(err)
	}

	// Push atomic batches (the streaming half)...
	readings := [][2]int64{
		{1, 20}, {1, 22}, {2, 400}, {1, -5} /* dropped */, {2, 404}, {2, 9999} /* dropped */, {1, 24},
	}
	for i, r := range readings {
		err := eng.IngestSync("raw_readings", &sstore.Batch{
			ID:   int64(i + 1),
			Rows: []sstore.Row{{sstore.Int(r[0]), sstore.Int(r[1])}},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}

	// ...then query it with OLTP (the pull half).
	res, err := eng.Call("Report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sensor averages (sensor, avg, readings):")
	for _, row := range res.Rows {
		fmt.Printf("  sensor %v: avg %v over %v readings\n", row[0], row[1], row[2])
	}
}
