module sstore

go 1.24
