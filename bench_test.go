package sstore_test

// testing.B entry points, one per table/figure of the paper's
// evaluation (§4). Each wraps the same experiment code that
// cmd/sstore-bench runs, in Quick mode so `go test -bench=.` finishes
// in minutes; use the command for full sweeps. The reported metric is
// wall time per full experiment; the figures' own rows (throughput per
// configuration) are what EXPERIMENTS.md records.

import (
	"testing"

	"sstore/internal/benchutil"
	"sstore/internal/experiments"
)

func runFigure(b *testing.B, fn func(experiments.Options) (*benchutil.Table, error)) {
	b.Helper()
	opts := experiments.Options{Quick: true, Dir: b.TempDir()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5EETriggers regenerates Figure 5 (EE triggers vs
// PE-to-EE round trips).
func BenchmarkFig5EETriggers(b *testing.B) { runFigure(b, experiments.Fig5) }

// BenchmarkFig6PETriggers regenerates Figure 6 (PE triggers vs
// client-driven workflow chaining).
func BenchmarkFig6PETriggers(b *testing.B) { runFigure(b, experiments.Fig6) }

// BenchmarkFig7Windows regenerates Figure 7 (native vs manual sliding
// windows).
func BenchmarkFig7Windows(b *testing.B) { runFigure(b, experiments.Fig7) }

// BenchmarkFig8Leaderboard regenerates Figure 8 (leaderboard
// maintenance, S-Store vs H-Store, offered-rate sweep).
func BenchmarkFig8Leaderboard(b *testing.B) { runFigure(b, experiments.Fig8) }

// BenchmarkFig9Logging regenerates Figure 9a (logging overhead, strong
// vs weak recovery, no group commit).
func BenchmarkFig9Logging(b *testing.B) { runFigure(b, experiments.Fig9a) }

// BenchmarkFig9Recovery regenerates Figure 9b (recovery time, strong
// vs weak).
func BenchmarkFig9Recovery(b *testing.B) { runFigure(b, experiments.Fig9b) }

// BenchmarkFig10SDMS regenerates Figure 10 (voter with leaderboard on
// modern stream processors, with and without validation).
func BenchmarkFig10SDMS(b *testing.B) { runFigure(b, experiments.Fig10) }

// BenchmarkFig11LinearRoad regenerates Figure 11 (multi-core
// scalability on the Linear Road subset).
func BenchmarkFig11LinearRoad(b *testing.B) { runFigure(b, experiments.Fig11) }

// BenchmarkAblations runs the design-choice ablations (index-vs-scan
// validation, atomic-batch size, trigger mechanism cost).
func BenchmarkAblations(b *testing.B) { runFigure(b, experiments.Ablations) }

// BenchmarkScalePartitions runs the partition-scaling experiment:
// whole-workflow throughput at 1 vs N partitions with interior batches
// spread across partitions by PartitionBy, on a synthetic routed
// pipeline and an x-way-partitioned Linear Road run.
func BenchmarkScalePartitions(b *testing.B) { runFigure(b, experiments.Scale) }

// BenchmarkNetThroughput runs the client/server experiment: served
// workflow throughput vs concurrent connections over a real loopback
// TCP socket, against the in-process simulated-RTT reference.
func BenchmarkNetThroughput(b *testing.B) { runFigure(b, experiments.NetBench) }

// BenchmarkWindowEngine runs the incremental-window experiment: insert
// throughput and maintained- vs scan-aggregate trigger-TE throughput
// swept over window size at slide 1.
func BenchmarkWindowEngine(b *testing.B) { runFigure(b, experiments.Window) }

// BenchmarkReadPath runs the snapshot-read experiment: concurrent
// readers against sustained ingest, reads served off the partition
// loop (ISSUE 5).
func BenchmarkReadPath(b *testing.B) { runFigure(b, experiments.Read) }
