// Command sstore-shell is an interactive SQL shell over an embedded
// S-Store engine: each statement runs as its own OLTP transaction.
// Streams, windows, and indexes can be created with the engine's DDL
// dialect; \-commands inspect the catalog.
//
// Usage:
//
//	sstore-shell [-partitions n] [-f script.sql]
//
// Commands:
//
//	\tables          list tables, streams, and windows
//	\stats           engine counters
//	\quit            exit
//
// Anything else is parsed as SQL (single statement per line;
// semicolons optional).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sstore"
)

func main() {
	partitions := flag.Int("partitions", 1, "number of partitions")
	script := flag.String("f", "", "run statements from file, then exit")
	flag.Parse()

	eng, err := sstore.Open(sstore.Config{Partitions: *partitions})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sstore-shell:", err)
		os.Exit(1)
	}
	defer eng.Close()

	var in io.Reader = os.Stdin
	interactive := true
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sstore-shell:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		interactive = false
	}

	if interactive {
		fmt.Println("sstore shell — SQL per line, \\tables, \\stats, \\quit")
	}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if interactive {
			fmt.Print("sstore> ")
		}
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if !command(eng, line) {
				return
			}
			continue
		}
		run(eng, line)
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "sstore-shell:", err)
		os.Exit(1)
	}
}

// command handles \-commands; it returns false on \quit.
func command(eng *sstore.Engine, line string) bool {
	switch strings.Fields(line)[0] {
	case "\\quit", "\\q":
		return false
	case "\\stats":
		s := eng.Stats()
		fmt.Printf("executed=%d aborted=%d log_appends=%d log_syncs=%d\n",
			s.Executed, s.Aborted, s.LogAppends, s.LogSyncs)
	case "\\tables":
		infos, err := eng.Tables(0)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if len(infos) == 0 {
			fmt.Println("  (empty catalog)")
		}
		for _, t := range infos {
			fmt.Printf("  %-6s %-20s %6d rows  %s\n", t.Kind, t.Name, t.Rows, t.Schema)
		}
	default:
		fmt.Printf("unknown command %s\n", line)
	}
	return true
}

// run executes one statement on partition 0 (DDL goes to all
// partitions).
func run(eng *sstore.Engine, stmt string) {
	upper := strings.ToUpper(stmt)
	if strings.HasPrefix(upper, "CREATE") {
		if err := eng.ExecDDL(stmt); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("ok")
		return
	}
	res, err := eng.Query(0, stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
		return
	}
	fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
}
