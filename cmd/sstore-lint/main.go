// Command sstore-lint runs the engine's invariant suite — replaydet,
// lockorder, hotalloc, errdrop, allocgate — over the module and prints
// findings in the usual file:line:col form. It exits non-zero when any
// diagnostic survives suppression, so CI can gate on it:
//
//	go run ./cmd/sstore-lint ./...
//
// Flags:
//
//	-only a,b   run only the named analyzers
//	-list       print the analyzers and exit
//	-dir path   load the module rooted there (default ".")
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sstore/internal/analysis"
)

var suite = []*analysis.Analyzer{
	analysis.ReplayDet,
	analysis.LockOrder,
	analysis.HotAlloc,
	analysis.ErrDrop,
	analysis.AllocGate,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("dir", ".", "module directory to load")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sstore-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sstore-lint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sstore-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
