package main

import (
	"os/exec"
	"testing"
)

// TestLintCleanOnRepo is the CI contract: the shipped binary exits 0
// over the repository.
func TestLintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the linter over the whole module")
	}
	out, err := exec.Command("go", "run", ".", "-dir", "../..", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("sstore-lint not clean on the repo: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Fatalf("sstore-lint emitted findings:\n%s", out)
	}
}
