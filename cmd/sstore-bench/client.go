package main

import (
	"fmt"
	"sync"
	"time"

	"sstore"
	"sstore/client"
)

// runClientBench drives a running sstore-server (-app pipeline) over
// TCP: conns connections, one sensor per connection so each
// connection's batches land on their own exactly-once ledger shard,
// batches atomic batches each with up to window in flight. After every
// border commit is acknowledged it quiesces the server (Drain) and
// verifies exactly-once results through Report: each sensor must have
// aggregated exactly batches readings — a lost batch or a re-applied
// duplicate both fail the run.
func runClientBench(addr string, conns, batches, window, sensorBase int) error {
	if conns < 1 || batches < 1 || window < 1 {
		return fmt.Errorf("client mode needs -conns, -batches, -window >= 1")
	}
	fmt.Printf("driving %s: %d conns x %d batches, window %d\n", addr, conns, batches, window)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(sensor int) {
			defer wg.Done()
			if err := driveConn(addr, sensor, batches, window); err != nil {
				errs <- fmt.Errorf("sensor %d: %w", sensor, err)
			}
		}(sensorBase + i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)
	total := conns * batches
	fmt.Printf("ingested %d batches in %.2fs (%.0f batches/sec)\n",
		total, elapsed.Seconds(), float64(total)/elapsed.Seconds())

	// Verification pass: quiesce, then read back what the workflow
	// aggregated.
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Drain(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	for i := 0; i < conns; i++ {
		sensor := sensorBase + i
		res, err := c.Call("Report", sstore.Int(int64(sensor)))
		if err != nil {
			return fmt.Errorf("Report(%d): %w", sensor, err)
		}
		if len(res.Rows) != 1 {
			return fmt.Errorf("Report(%d): %d rows, want 1", sensor, len(res.Rows))
		}
		if n := res.Rows[0][2].Int(); n != int64(batches) {
			return fmt.Errorf("sensor %d: %d readings aggregated, want %d (exactly-once violated)", sensor, n, batches)
		}
	}
	st, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("verified: %d sensors x %d readings aggregated exactly once\n", conns, batches)
	fmt.Printf("server stats: executed=%d aborted=%d overloaded=%d\n",
		st.Executed, st.Aborted, st.Overloaded)
	return nil
}

// driveConn ingests one connection's feed. With window 1 each batch is
// sent synchronously and overload rejections are retried after the
// server's hint; with a larger window, up to window batches are in
// flight and an overload rejection is a hard error (a pipelined retry
// could be rejected as a duplicate once later batches were admitted —
// run window 1 against -max-queue servers).
func driveConn(addr string, sensor, batches, window int) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if window == 1 {
		for id := int64(1); id <= int64(batches); id++ {
			if err := c.IngestRetry("raw_readings", mkBatch(sensor, id)); err != nil {
				return fmt.Errorf("batch %d: %w", id, err)
			}
		}
		return nil
	}
	inflight := make([]<-chan error, 0, window)
	pendingID := make([]int64, 0, window)
	reap := func(keep int) error {
		for len(inflight) > keep {
			if err := <-inflight[0]; err != nil {
				return fmt.Errorf("batch %d: %w", pendingID[0], err)
			}
			inflight = inflight[1:]
			pendingID = pendingID[1:]
		}
		return nil
	}
	for id := int64(1); id <= int64(batches); id++ {
		ack, err := c.IngestAsync("raw_readings", mkBatch(sensor, id))
		if err != nil {
			return fmt.Errorf("batch %d: %w", id, err)
		}
		inflight = append(inflight, ack)
		pendingID = append(pendingID, id)
		if err := reap(window - 1); err != nil {
			return err
		}
	}
	return reap(0)
}

func mkBatch(sensor int, id int64) *sstore.Batch {
	return &sstore.Batch{
		ID:   id,
		Rows: []sstore.Row{{sstore.Int(int64(sensor)), sstore.Int(id % 1000)}},
	}
}
