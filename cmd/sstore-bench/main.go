// Command sstore-bench regenerates the paper's evaluation (§4): one
// table per figure, printed as aligned rows. Absolute numbers depend on
// the host; EXPERIMENTS.md records a reference run and compares shapes
// against the paper.
//
// Usage:
//
//	sstore-bench -exp fig5|fig6|fig7|fig8|fig9a|fig9b|fig10|fig11|ablation|scale|net|window|read|skew|alloc|cluster|spill|all [-quick] [-json]
//	sstore-bench -client host:port [-conns N] [-batches N] [-window N] [-sensor-base N]
//
// With -json, each experiment additionally writes BENCH_<exp>.json in
// the current directory: the result table's columns and raw row
// values plus the wall time, so the performance trajectory is
// machine-readable across runs.
//
// With -client, sstore-bench is a load driver for a running
// sstore-server (-app pipeline): it opens -conns connections, ingests
// -batches atomic batches per connection (one sensor per connection,
// up to -window in flight), waits for every border commit, then
// verifies exactly-once results through Report and exits non-zero on
// any mismatch. Overload rejections from a -max-queue server are
// retried after the server's hint when -window is 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/experiments"
)

var figures = []struct {
	name  string
	title string
	fn    func(experiments.Options) (*benchutil.Table, error)
}{
	{"fig5", "Figure 5: Execution Engine Triggers (transactions/sec)", experiments.Fig5},
	{"fig6", "Figure 6: Partition Engine Triggers (workflows/sec)", experiments.Fig6},
	{"fig7", "Figure 7: Native Windows (transactions/sec)", experiments.Fig7},
	{"fig8", "Figure 8: Leaderboard Maintenance, S-Store vs H-Store (workflows/sec)", experiments.Fig8},
	{"fig9a", "Figure 9a: Logging Overhead, Strong vs Weak (workflows/sec, no group commit)", experiments.Fig9a},
	{"fig9b", "Figure 9b: Recovery Time, Strong vs Weak (milliseconds)", experiments.Fig9b},
	{"fig10", "Figure 10: Voter w/ Leaderboard on Modern SDMSs (votes/sec)", experiments.Fig10},
	{"fig11", "Figure 11: Multi-core Scalability, Linear Road subset (max x-ways)", experiments.Fig11},
	{"ablation", "Ablations: index-vs-scan, batch size, trigger mechanism", experiments.Ablations},
	{"scale", "Partition scaling: workflow throughput with interior batches routed across partitions", experiments.Scale},
	{"net", "Client/server throughput vs connections over a real loopback socket", experiments.NetBench},
	{"window", "Incremental windows: insert and trigger-TE throughput vs window size (slide 1)", experiments.Window},
	{"read", "Snapshot read path: concurrent readers vs sustained ingest (reads off the partition loop)", experiments.Read},
	{"skew", "Skewed load: intra-partition parallelism on the hot partition (calls/sec, latency)", experiments.Skew},
	{"alloc", "Zero-allocation hot path: allocs/op on codec, framing, and WAL append; Mallocs/batch end to end", experiments.Alloc},
	{"cluster", "Cluster scale-out: Linear Road city scale across 2-4 server processes vs one 4-partition process", experiments.Cluster},
	{"spill", "Archive tables: history appends past the buffer-pool budget vs the in-memory heap (rows/sec)", experiments.Spill},
}

// benchReport is the machine-readable result of one experiment.
type benchReport struct {
	Experiment     string   `json:"experiment"`
	Title          string   `json:"title"`
	Quick          bool     `json:"quick"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
	Columns        []string `json:"columns"`
	Rows           [][]any  `json:"rows"`
}

func writeReport(name, title string, quick bool, table *benchutil.Table, elapsed time.Duration) error {
	rep := benchReport{
		Experiment:     name,
		Title:          title,
		Quick:          quick,
		ElapsedSeconds: elapsed.Seconds(),
		Columns:        table.Columns(),
		Rows:           table.Rows(),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(fmt.Sprintf("BENCH_%s.json", name), append(data, '\n'), 0o644)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig5..fig11, ablation, scale, net, window, read, skew, alloc, cluster, spill, or all")
	quick := flag.Bool("quick", false, "shrink sweeps and windows for a fast pass")
	jsonOut := flag.Bool("json", false, "also write BENCH_<exp>.json per experiment")
	clientAddr := flag.String("client", "", "drive a running sstore-server at this address instead of running experiments")
	conns := flag.Int("conns", 4, "client mode: number of connections (one sensor each)")
	batches := flag.Int("batches", 500, "client mode: batches per connection")
	window := flag.Int("window", 32, "client mode: max in-flight batches per connection (1 = sync with overload retry)")
	sensorBase := flag.Int("sensor-base", 0, "client mode: first sensor ID (offset reruns to fresh sensors)")
	flag.Parse()

	if *clientAddr != "" {
		if err := runClientBench(*clientAddr, *conns, *batches, *window, *sensorBase); err != nil {
			fmt.Fprintln(os.Stderr, "sstore-bench:", err)
			os.Exit(1)
		}
		return
	}

	dir, err := os.MkdirTemp("", "sstore-bench-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sstore-bench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	opts := experiments.Options{Quick: *quick, Dir: dir}

	ran := 0
	for _, f := range figures {
		if *exp != "all" && *exp != f.name {
			continue
		}
		ran++
		fmt.Printf("=== %s ===\n", f.title)
		start := time.Now()
		table, err := f.fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sstore-bench: %s: %v\n", f.name, err)
			os.Exit(1)
		}
		table.Print(os.Stdout)
		elapsed := time.Since(start)
		fmt.Printf("(%s in %.1fs)\n\n", f.name, elapsed.Seconds())
		if *jsonOut {
			if err := writeReport(f.name, f.title, *quick, table, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "sstore-bench: %s: write json: %v\n", f.name, err)
				os.Exit(1)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sstore-bench: unknown experiment %q (want fig5..fig11, ablation, scale, net, window, read, skew, alloc, cluster, spill, or all)\n", *exp)
		os.Exit(2)
	}
}
