// Command sstore-server serves an S-Store engine over TCP: the
// network front door that turns the in-process library into a
// client/server system. Clients speak the internal/wire protocol; the
// Go client lives in sstore/client and a load driver in
// cmd/sstore-bench (-client mode).
//
// Stored procedures are Go code, so the server deploys a compiled-in
// application selected with -app (see -list-apps). Example:
//
//	sstore-server -addr :7491 -app pipeline -partitions 4 -max-queue 1024
//
// With -recovery strong|weak and -log, the engine command-logs per the
// selected mode and replays the log before admitting traffic.
//
// A multi-node deployment passes every node the same cluster map and
// its own node ID:
//
//	sstore-server -cluster '0@127.0.0.1:7491=0,1;1@127.0.0.1:7492=2,3' -node 0 -addr 127.0.0.1:7491
//	sstore-server -cluster '0@127.0.0.1:7491=0,1;1@127.0.0.1:7492=2,3' -node 1 -addr 127.0.0.1:7492
//
// Each node runs only its partitions, keeps its own command log and
// snapshots, and hands relocated interior batches to partition owners
// over peer connections (DESIGN.md §13). -partitions is ignored under
// -cluster: the map fixes the cluster-wide partition space.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"sstore/internal/cluster"
	"sstore/internal/pe"
	"sstore/internal/recovery"
	"sstore/internal/server"
	"sstore/internal/wal"
)

func main() {
	addr := flag.String("addr", ":7491", "TCP listen address")
	app := flag.String("app", "pipeline", "built-in application to deploy (see -list-apps)")
	listApps := flag.Bool("list-apps", false, "list built-in applications and exit")
	partitions := flag.Int("partitions", 1, "number of partitions (execution sites)")
	maxQueue := flag.Int("max-queue", 0, "per-partition queue depth bound for border backpressure (0 = unbounded)")
	recoveryMode := flag.String("recovery", "none", "recovery mode: none, strong, or weak")
	logPath := flag.String("log", "", "command-log path (required for -recovery strong|weak)")
	snapshots := flag.String("snapshots", "", "checkpoint snapshot directory")
	group := flag.Bool("group-commit", false, "use group commit (SyncGroup) instead of per-commit fsync")
	clusterSpec := flag.String("cluster", "", "cluster map 'id@host:port=p0,p1;...' (all nodes get the same map)")
	nodeID := flag.Int("node", 0, "this node's ID in the -cluster map")
	ckptEvery := flag.Int64("checkpoint-every-bytes", 0, "take a checkpoint (and compact the log) after this many logged bytes (0 = manual)")
	archiveDir := flag.String("archive-dir", "", "directory for archive tables' page files (empty = auto temp dir)")
	archiveBudget := flag.Int64("archive-budget", 0, "buffer-pool bytes shared by archive tables across partitions (0 = small default)")
	flag.Parse()

	if *listApps {
		for _, a := range server.Apps() {
			fmt.Printf("%-12s %s\n", a.Name, a.Describe)
		}
		return
	}

	if err := run(*addr, *app, *partitions, *maxQueue, *recoveryMode, *logPath, *snapshots, *group, *clusterSpec, *nodeID, *ckptEvery, *archiveDir, *archiveBudget); err != nil {
		fmt.Fprintln(os.Stderr, "sstore-server:", err)
		os.Exit(1)
	}
}

func run(addr, appName string, partitions, maxQueue int, recoveryMode, logPath, snapshots string, group bool, clusterSpec string, nodeID int, ckptEvery int64, archiveDir string, archiveBudget int64) error {
	a, err := server.LookupApp(appName)
	if err != nil {
		return err
	}
	var mode recovery.Mode
	switch recoveryMode {
	case "none":
		mode = recovery.ModeNone
	case "strong":
		mode = recovery.ModeStrong
	case "weak":
		mode = recovery.ModeWeak
	default:
		return fmt.Errorf("unknown recovery mode %q (want none, strong, or weak)", recoveryMode)
	}
	opts := pe.Options{
		Partitions:           partitions,
		Recovery:             mode,
		LogPath:              logPath,
		SnapshotDir:          snapshots,
		PartitionBy:          a.PartitionBy,
		RouteCall:            a.RouteCall,
		MaxQueueDepth:        maxQueue,
		NodeID:               nodeID,
		CheckpointEveryBytes: ckptEvery,
		ArchiveDir:           archiveDir,
		ArchiveMemoryBudget:  archiveBudget,
	}
	if clusterSpec != "" {
		cfg, err := cluster.Parse(clusterSpec)
		if err != nil {
			return err
		}
		opts.Cluster = cfg
	}
	if group {
		opts.LogPolicy = wal.SyncGroup
	}
	eng, err := pe.NewEngine(opts)
	if err != nil {
		return err
	}
	defer eng.Close()
	if err := a.Setup(eng); err != nil {
		return err
	}
	if mode != recovery.ModeNone {
		if err := eng.Recover(); err != nil {
			return fmt.Errorf("recover: %w", err)
		}
	}
	if ps := eng.Peers(); ps != nil {
		// A (re)started node asks its peers to re-send unacknowledged
		// hand-offs addressed to it; the local ledger (rebuilt by
		// Recover) suppresses the ones that committed before the crash.
		ps.Pull()
	}

	srv := server.New(eng)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The "listening on" line is the readiness signal scripts (and the
	// CI smoke step) wait for; with -addr :0 it is also where the
	// chosen port is announced.
	if opts.Cluster != nil {
		fmt.Printf("sstore-server: app %s, node %d of cluster {%s}, recovery %s; listening on %s\n",
			a.Name, nodeID, opts.Cluster, mode, ln.Addr())
	} else {
		fmt.Printf("sstore-server: app %s, %d partition(s), recovery %s; listening on %s\n",
			a.Name, eng.Partitions(), mode, ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("sstore-server: shutting down")
		srv.Close()
	}()
	return srv.Serve(ln)
}
