// Package sql implements the lexer, parser, and AST for the engine's
// SQL dialect: the subset of SQL that stored procedures issue, plus the
// streaming DDL extensions (CREATE STREAM, CREATE WINDOW ... SIZE ...
// SLIDE ...) described in the paper (§3.2.1–3.2.2).
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or keyword (keywords are recognized
	// by the parser, case-insensitively).
	TokIdent
	// TokNumber is an integer or float literal.
	TokNumber
	// TokString is a single-quoted string literal.
	TokString
	// TokParam is a positional parameter placeholder '?'.
	TokParam
	// TokSymbol is punctuation or an operator.
	TokSymbol
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	// Text is the token's raw text (for TokString, the unquoted
	// value).
	Text string
	// Pos is the byte offset in the input, for error messages.
	Pos int
	// IsFloat marks numeric literals containing '.' or an exponent.
	IsFloat bool
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of statement"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	case TokParam:
		return "?"
	default:
		return t.Text
	}
}
