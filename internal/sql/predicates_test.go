package sql

import "testing"

func TestParseInList(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE a IN (1, 2, ?)").(*Select)
	in, ok := sel.Where.(*InList)
	if !ok || in.Negate || len(in.Items) != 3 {
		t.Fatalf("where = %+v", sel.Where)
	}
	if p, ok := in.Items[2].(*Param); !ok || p.Index != 0 {
		t.Errorf("third item = %+v", in.Items[2])
	}

	sel = mustParse(t, "SELECT a FROM t WHERE a NOT IN (1)").(*Select)
	in, ok = sel.Where.(*InList)
	if !ok || !in.Negate {
		t.Fatalf("where = %+v", sel.Where)
	}
}

func TestParseBetween(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE a BETWEEN 1 AND 10").(*Select)
	bw, ok := sel.Where.(*Between)
	if !ok || bw.Negate {
		t.Fatalf("where = %+v", sel.Where)
	}
	// BETWEEN binds its own AND; an outer AND still parses.
	sel = mustParse(t, "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b = 2").(*Select)
	outer, ok := sel.Where.(*Binary)
	if !ok || outer.Op != OpAnd {
		t.Fatalf("where = %+v", sel.Where)
	}
	if _, ok := outer.Left.(*Between); !ok {
		t.Errorf("left = %+v", outer.Left)
	}
	sel = mustParse(t, "SELECT a FROM t WHERE a NOT BETWEEN ? AND ?").(*Select)
	bw, ok = sel.Where.(*Between)
	if !ok || !bw.Negate {
		t.Fatalf("where = %+v", sel.Where)
	}
}

func TestParseLike(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE name LIKE 'al%'").(*Select)
	lk, ok := sel.Where.(*Like)
	if !ok || lk.Negate {
		t.Fatalf("where = %+v", sel.Where)
	}
	if lit, ok := lk.Pattern.(*Literal); !ok || lit.Value.Text() != "al%" {
		t.Errorf("pattern = %+v", lk.Pattern)
	}
	sel = mustParse(t, "SELECT a FROM t WHERE name NOT LIKE ?").(*Select)
	lk, ok = sel.Where.(*Like)
	if !ok || !lk.Negate {
		t.Fatalf("where = %+v", sel.Where)
	}
}

func TestPrefixNotStillWorks(t *testing.T) {
	// Prefix NOT (boolean negation) must not be confused with the
	// postfix NOT IN/BETWEEN/LIKE forms.
	sel := mustParse(t, "SELECT a FROM t WHERE NOT (a = 1)").(*Select)
	if u, ok := sel.Where.(*Unary); !ok || u.Neg {
		t.Fatalf("where = %+v", sel.Where)
	}
	// NOT applied to an IN expression.
	sel = mustParse(t, "SELECT a FROM t WHERE NOT a IN (1)").(*Select)
	u, ok := sel.Where.(*Unary)
	if !ok {
		t.Fatalf("where = %+v", sel.Where)
	}
	if _, ok := u.Operand.(*InList); !ok {
		t.Errorf("operand = %+v", u.Operand)
	}
}

func TestPredicateParseErrors(t *testing.T) {
	bad := []string{
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t WHERE a IN 1",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a BETWEEN 1, 2",
		"SELECT a FROM t WHERE a NOT = 1",
		"SELECT a FROM t WHERE a LIKE",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}
