package sql

import (
	"fmt"
	"strings"
)

// Lexer tokenizes a SQL statement. It is a straightforward hand-rolled
// scanner; statements are short, so it lexes eagerly into a slice that
// the parser indexes with lookahead.
type Lexer struct {
	input string
	pos   int
}

// Lex tokenizes the whole input, returning the token stream terminated
// by a TokEOF token.
func Lex(input string) ([]Token, error) {
	l := &Lexer{input: input}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.input) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.input[start:l.pos], Pos: start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	case c == '?':
		l.pos++
		return Token{Kind: TokParam, Pos: start}, nil
	default:
		return l.lexSymbol(start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '-':
			// Line comment to end of line.
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *Lexer) lexNumber(start int) (Token, error) {
	isFloat := false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !isFloat:
			isFloat = true
			l.pos++
		case (c == 'e' || c == 'E') && l.pos > start:
			isFloat = true
			l.pos++
			if l.pos < len(l.input) && (l.input[l.pos] == '+' || l.input[l.pos] == '-') {
				l.pos++
			}
		default:
			return Token{Kind: TokNumber, Text: l.input[start:l.pos], Pos: start, IsFloat: isFloat}, nil
		}
	}
	return Token{Kind: TokNumber, Text: l.input[start:l.pos], Pos: start, IsFloat: isFloat}, nil
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\'' {
			// '' is an escaped quote.
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

// twoCharSymbols are the multi-byte operators, checked before single
// bytes.
var twoCharSymbols = []string{"<=", ">=", "<>", "!=", "||"}

func (l *Lexer) lexSymbol(start int) (Token, error) {
	if l.pos+1 < len(l.input) {
		two := l.input[l.pos : l.pos+2]
		for _, s := range twoCharSymbols {
			if two == s {
				l.pos += 2
				return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
			}
		}
	}
	c := l.input[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
