package sql

import (
	"fmt"
	"strconv"

	"sstore/internal/types"
)

// Parser is a recursive-descent parser over the token stream produced
// by Lex.
type Parser struct {
	toks      []Token
	pos       int
	numParams int
}

// Parse parses a single SQL statement (a trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if p.peek().Kind != TokEOF {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// NumParams reports how many '?' placeholders the last Parse call saw.
// Exposed through ParseWithParams for plan caching.
func ParseWithParams(input string) (Statement, int, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, 0, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	p.acceptSymbol(";")
	if p.peek().Kind != TokEOF {
		return nil, 0, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, p.numParams, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: "+format+" (near offset %d)", append(args, p.peek().Pos)...)
}

// isKeyword reports whether the next token is the given keyword
// (case-insensitive) without consuming it.
func (p *Parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && lower(t.Text) == kw
}

// acceptKeyword consumes the keyword if present.
func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.Kind == TokSymbol && t.Text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, got %s", sym, p.peek())
	}
	return nil
}

// expectIdent consumes and returns an identifier.
func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, got %s", t)
	}
	p.advance()
	return t.Text, nil
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("select"):
		return p.parseSelect()
	case p.isKeyword("insert"):
		return p.parseInsert()
	case p.isKeyword("update"):
		return p.parseUpdate()
	case p.isKeyword("delete"):
		return p.parseDelete()
	case p.isKeyword("create"):
		return p.parseCreate()
	default:
		return nil, p.errorf("expected statement, got %s", p.peek())
	}
}

// --- SELECT ---

func (p *Parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1, LimitParam: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for p.acceptKeyword("join") || (p.isKeyword("inner") && p.lookaheadJoin()) {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, Join{Table: tr, On: on})
	}
	if p.acceptKeyword("where") {
		if sel.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		if sel.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		t := p.peek()
		switch {
		case t.Kind == TokParam:
			p.advance()
			sel.LimitParam = p.numParams
			p.numParams++
		case t.Kind == TokNumber && !t.IsFloat:
			p.advance()
			n, err := strconv.Atoi(t.Text)
			if err != nil || n < 0 {
				return nil, p.errorf("bad LIMIT %q", t.Text)
			}
			sel.Limit = n
		default:
			return nil, p.errorf("LIMIT expects an integer or ?, got %s", t)
		}
	}
	return sel, nil
}

// lookaheadJoin consumes "INNER" when followed by JOIN.
func (p *Parser) lookaheadJoin() bool {
	if p.pos+1 < len(p.toks) {
		next := p.toks[p.pos+1]
		if next.Kind == TokIdent && lower(next.Text) == "join" {
			p.advance() // INNER
			p.advance() // JOIN
			return true
		}
	}
	return false
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = lower(alias)
	} else if t := p.peek(); t.Kind == TokIdent && !p.reservedAfterItem() {
		item.Alias = lower(t.Text)
		p.advance()
	}
	return item, nil
}

// reservedAfterItem reports whether the upcoming identifier is a clause
// keyword rather than an implicit alias.
func (p *Parser) reservedAfterItem() bool {
	for _, kw := range []string{"from", "where", "group", "having", "order", "limit", "join", "inner", "on", "as", "values", "select"} {
		if p.isKeyword(kw) {
			return true
		}
	}
	return false
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: lower(name), Alias: lower(name)}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = lower(alias)
	} else if t := p.peek(); t.Kind == TokIdent && !p.reservedAfterItem() {
		tr.Alias = lower(t.Text)
		p.advance()
	}
	return tr, nil
}

// --- DML ---

func (p *Parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: lower(table)}
	if p.acceptSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, lower(col))
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.isKeyword("select") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (*Update, error) {
	if err := p.expectKeyword("update"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	upd := &Update{Table: lower(table)}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, SetClause{Column: lower(col), Value: val})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		if upd.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return upd, nil
}

func (p *Parser) parseDelete() (*Delete, error) {
	if err := p.expectKeyword("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: lower(table)}
	if p.acceptKeyword("where") {
		if del.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return del, nil
}

// --- DDL ---

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("create"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("table"):
		return p.parseCreateTable(false, false)
	case p.acceptKeyword("archive"):
		if err := p.expectKeyword("table"); err != nil {
			return nil, err
		}
		return p.parseCreateTable(false, true)
	case p.acceptKeyword("stream"):
		return p.parseCreateTable(true, false)
	case p.acceptKeyword("window"):
		return p.parseCreateWindow()
	case p.acceptKeyword("unique"):
		if err := p.expectKeyword("index"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(true)
	case p.acceptKeyword("index"):
		return p.parseCreateIndex(false)
	default:
		return nil, p.errorf("expected TABLE, ARCHIVE TABLE, STREAM, WINDOW, or INDEX after CREATE, got %s", p.peek())
	}
}

func (p *Parser) parseColumnDefs() ([]ColumnDef, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typeName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := types.KindFromName(typeName)
		if err != nil {
			return nil, p.errorf("column %s: %v", name, err)
		}
		// Swallow a parenthesized length, e.g. VARCHAR(64).
		if p.acceptSymbol("(") {
			if t := p.peek(); t.Kind == TokNumber {
				p.advance()
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		col := ColumnDef{Name: lower(name), Kind: kind}
		if p.acceptKeyword("primary") {
			if err := p.expectKeyword("key"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
		}
		p.acceptKeyword("not") // tolerate NOT NULL
		p.acceptKeyword("null")
		cols = append(cols, col)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *Parser) parseCreateTable(stream, archive bool) (*CreateTable, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseColumnDefs()
	if err != nil {
		return nil, err
	}
	return &CreateTable{Name: lower(name), Stream: stream, Archive: archive, Columns: cols}, nil
}

func (p *Parser) parseCreateWindow() (*CreateWindow, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseColumnDefs()
	if err != nil {
		return nil, err
	}
	w := &CreateWindow{Name: lower(name), Columns: cols}
	if err := p.expectKeyword("size"); err != nil {
		return nil, err
	}
	if w.Size, err = p.expectInt(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("slide"); err != nil {
		return nil, err
	}
	if w.Slide, err = p.expectInt(); err != nil {
		return nil, err
	}
	if p.acceptKeyword("on") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		w.TimeColumn = lower(col)
	}
	return w, nil
}

func (p *Parser) parseCreateIndex(unique bool) (*CreateIndex, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	idx := &CreateIndex{Name: lower(name), Table: lower(table), Unique: unique}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		idx.Columns = append(idx.Columns, lower(col))
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("using") {
		method, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch lower(method) {
		case "hash":
		case "btree":
			idx.BTree = true
		default:
			return nil, p.errorf("unknown index method %q", method)
		}
	}
	return idx, nil
}

func (p *Parser) expectInt() (int64, error) {
	t := p.peek()
	if t.Kind != TokNumber || t.IsFloat {
		return 0, p.errorf("expected integer, got %s", t)
	}
	p.advance()
	return strconv.ParseInt(t.Text, 10, 64)
}

// --- Expressions (precedence climbing) ---

// parseExpr parses a full boolean expression.
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Neg: false, Operand: operand}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL postfix.
	if p.acceptKeyword("is") {
		neg := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &IsNull{Operand: left, Negate: neg}, nil
	}
	// [NOT] IN / BETWEEN / LIKE postfixes.
	negate := false
	if p.isKeyword("not") && p.postfixFollowsNot() {
		p.advance()
		negate = true
	}
	switch {
	case p.acceptKeyword("in"):
		return p.parseInList(left, negate)
	case p.acceptKeyword("between"):
		return p.parseBetween(left, negate)
	case p.acceptKeyword("like"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Like{Operand: left, Pattern: pat, Negate: negate}, nil
	}
	if negate {
		return nil, p.errorf("expected IN, BETWEEN, or LIKE after NOT")
	}
	t := p.peek()
	if t.Kind == TokSymbol {
		if op, ok := comparisonOps[t.Text]; ok {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

// postfixFollowsNot reports whether the token after a pending NOT is
// IN, BETWEEN, or LIKE (so the NOT belongs to the postfix form rather
// than a prefix negation — which parseNot would already have
// consumed).
func (p *Parser) postfixFollowsNot() bool {
	if p.pos+1 >= len(p.toks) {
		return false
	}
	next := p.toks[p.pos+1]
	if next.Kind != TokIdent {
		return false
	}
	switch lower(next.Text) {
	case "in", "between", "like":
		return true
	default:
		return false
	}
}

func (p *Parser) parseInList(left Expr, negate bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	in := &InList{Operand: left, Negate: negate}
	for {
		item, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.Items = append(in.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *Parser) parseBetween(left Expr, negate bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("and"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Between{Operand: left, Lo: lo, Hi: hi, Negate: negate}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.acceptSymbol("+"):
			op = OpAdd
		case p.acceptSymbol("-"):
			op = OpSub
		case p.acceptSymbol("||"):
			op = OpConcat
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.acceptSymbol("*"):
			op = OpMul
		case p.acceptSymbol("/"):
			op = OpDiv
		case p.acceptSymbol("%"):
			op = OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Neg: true, Operand: operand}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if t.IsFloat {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad float literal %q", t.Text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.Text)
		}
		return &Literal{Value: types.NewInt(i)}, nil
	case TokString:
		p.advance()
		return &Literal{Value: types.NewText(t.Text)}, nil
	case TokParam:
		p.advance()
		idx := p.numParams
		p.numParams++
		return &Param{Index: idx}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case TokIdent:
		word := lower(t.Text)
		switch word {
		case "null":
			p.advance()
			return &Literal{Value: types.Null}, nil
		case "true":
			p.advance()
			return &Literal{Value: types.NewBool(true)}, nil
		case "false":
			p.advance()
			return &Literal{Value: types.NewBool(false)}, nil
		}
		p.advance()
		// Function call?
		if p.acceptSymbol("(") {
			return p.parseFuncCall(word)
		}
		// Qualified column?
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: word, Column: lower(col)}, nil
		}
		return &ColumnRef{Column: word}, nil
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

func (p *Parser) parseFuncCall(name string) (Expr, error) {
	call := &FuncCall{Name: name}
	if p.acceptSymbol("*") {
		call.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.acceptSymbol(")") {
		return call, nil
	}
	if p.acceptKeyword("distinct") {
		call.Distinct = true
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return call, nil
}
