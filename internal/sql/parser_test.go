package sql

import (
	"testing"

	"sstore/internal/types"
)

func mustParse(t *testing.T, input string) Statement {
	t.Helper()
	stmt, err := Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return stmt
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s', 3.5, ? FROM t -- comment\nWHERE x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	// SELECT a , 'it's' , 3.5 , ? FROM t WHERE x >= 2 EOF
	want := []TokenKind{TokIdent, TokIdent, TokSymbol, TokString, TokSymbol, TokNumber,
		TokSymbol, TokParam, TokIdent, TokIdent, TokIdent, TokIdent, TokSymbol, TokNumber, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("token kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[3].Text != "it's" {
		t.Errorf("string literal = %q", toks[3].Text)
	}
	if !toks[5].IsFloat {
		t.Error("3.5 should be float")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("invalid character should fail")
	}
}

func TestParseSelectFull(t *testing.T) {
	stmt := mustParse(t, `SELECT c.name, COUNT(*) AS n, SUM(v.amount)
		FROM votes v JOIN contestants c ON v.contestant_id = c.id
		WHERE v.amount > 10 AND c.active = true
		GROUP BY c.name HAVING COUNT(*) > 2
		ORDER BY n DESC, c.name LIMIT 5`)
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if len(sel.Items) != 3 {
		t.Errorf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "n" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	if sel.From.Name != "votes" || sel.From.Alias != "v" {
		t.Errorf("from = %+v", sel.From)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Table.Alias != "c" {
		t.Fatalf("joins = %+v", sel.Joins)
	}
	if sel.Where == nil || sel.Having == nil {
		t.Error("missing where/having")
	}
	if len(sel.GroupBy) != 1 || len(sel.OrderBy) != 2 {
		t.Errorf("groupBy=%d orderBy=%d", len(sel.GroupBy), len(sel.OrderBy))
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Error("order directions wrong")
	}
	if sel.Limit != 5 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t").(*Select)
	if len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Errorf("items = %+v", sel.Items)
	}
	if sel.Limit != -1 {
		t.Errorf("default limit = %d", sel.Limit)
	}
}

func TestParseInnerJoin(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t INNER JOIN u ON t.id = u.id").(*Select)
	if len(sel.Joins) != 1 {
		t.Fatalf("joins = %+v", sel.Joins)
	}
}

func TestParseInsertValues(t *testing.T) {
	ins := mustParse(t, "INSERT INTO votes (phone, cand) VALUES (?, ?), (1, 2)").(*Insert)
	if ins.Table != "votes" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if p, ok := ins.Rows[0][0].(*Param); !ok || p.Index != 0 {
		t.Errorf("first param = %+v", ins.Rows[0][0])
	}
	if p, ok := ins.Rows[0][1].(*Param); !ok || p.Index != 1 {
		t.Errorf("second param = %+v", ins.Rows[0][1])
	}
}

func TestParseInsertSelect(t *testing.T) {
	ins := mustParse(t, "INSERT INTO s2 SELECT a, b FROM s1 WHERE a > 0").(*Insert)
	if ins.Query == nil || ins.Rows != nil {
		t.Fatalf("insert = %+v", ins)
	}
}

func TestParseUpdate(t *testing.T) {
	upd := mustParse(t, "UPDATE contestants SET votes = votes + 1, name = 'x' WHERE id = ?").(*Update)
	if upd.Table != "contestants" || len(upd.Set) != 2 || upd.Where == nil {
		t.Fatalf("update = %+v", upd)
	}
	if upd.Set[0].Column != "votes" {
		t.Errorf("set column = %q", upd.Set[0].Column)
	}
}

func TestParseDelete(t *testing.T) {
	del := mustParse(t, "DELETE FROM votes WHERE contestant_id = 3").(*Delete)
	if del.Table != "votes" || del.Where == nil {
		t.Fatalf("delete = %+v", del)
	}
	del = mustParse(t, "DELETE FROM votes").(*Delete)
	if del.Where != nil {
		t.Error("bare delete should have nil where")
	}
}

func TestParseCreateTable(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE t (id BIGINT PRIMARY KEY, name VARCHAR(64) NOT NULL, score FLOAT)").(*CreateTable)
	if ct.Stream || ct.Name != "t" || len(ct.Columns) != 3 {
		t.Fatalf("create = %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[1].PrimaryKey {
		t.Error("primary key flags wrong")
	}
	if ct.Columns[2].Kind != types.KindFloat {
		t.Errorf("kind = %v", ct.Columns[2].Kind)
	}
}

func TestParseCreateArchiveTable(t *testing.T) {
	ct := mustParse(t, "CREATE ARCHIVE TABLE hist (id BIGINT PRIMARY KEY, v FLOAT)").(*CreateTable)
	if !ct.Archive || ct.Stream || ct.Name != "hist" || len(ct.Columns) != 2 {
		t.Fatalf("archive create = %+v", ct)
	}
	// ARCHIVE must be followed by TABLE.
	if _, err := Parse("CREATE ARCHIVE STREAM s (v BIGINT)"); err == nil {
		t.Error("CREATE ARCHIVE STREAM parsed")
	}
}

func TestParseCreateStream(t *testing.T) {
	ct := mustParse(t, "CREATE STREAM s1 (v BIGINT, ts TIMESTAMP)").(*CreateTable)
	if !ct.Stream {
		t.Error("stream flag missing")
	}
}

func TestParseCreateWindow(t *testing.T) {
	cw := mustParse(t, "CREATE WINDOW w (v BIGINT, ts TIMESTAMP) SIZE 100 SLIDE 10 ON ts").(*CreateWindow)
	if cw.Size != 100 || cw.Slide != 10 || cw.TimeColumn != "ts" {
		t.Fatalf("window = %+v", cw)
	}
	cw = mustParse(t, "CREATE WINDOW w (v BIGINT) SIZE 5 SLIDE 5").(*CreateWindow)
	if cw.TimeColumn != "" {
		t.Error("tuple window should have empty time column")
	}
}

func TestParseCreateIndex(t *testing.T) {
	ci := mustParse(t, "CREATE UNIQUE INDEX votes_pk ON votes (phone) USING HASH").(*CreateIndex)
	if !ci.Unique || ci.BTree || ci.Table != "votes" {
		t.Fatalf("index = %+v", ci)
	}
	ci = mustParse(t, "CREATE INDEX i ON t (a, b) USING BTREE").(*CreateIndex)
	if ci.Unique || !ci.BTree || len(ci.Columns) != 2 {
		t.Fatalf("index = %+v", ci)
	}
}

func TestExpressionPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT a + b * c FROM t").(*Select)
	b, ok := sel.Items[0].Expr.(*Binary)
	if !ok || b.Op != OpAdd {
		t.Fatalf("top op = %+v", sel.Items[0].Expr)
	}
	if inner, ok := b.Right.(*Binary); !ok || inner.Op != OpMul {
		t.Errorf("b*c should bind tighter: %+v", b.Right)
	}

	sel = mustParse(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").(*Select)
	or, ok := sel.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top should be OR: %+v", sel.Where)
	}
	if and, ok := or.Right.(*Binary); !ok || and.Op != OpAnd {
		t.Errorf("AND should bind tighter: %+v", or.Right)
	}
}

func TestExpressionForms(t *testing.T) {
	sel := mustParse(t, "SELECT -a, NOT b, c IS NULL, d IS NOT NULL, e <> 1, f || 'x' FROM t").(*Select)
	if u, ok := sel.Items[0].Expr.(*Unary); !ok || !u.Neg {
		t.Error("negation")
	}
	if u, ok := sel.Items[1].Expr.(*Unary); !ok || u.Neg {
		t.Error("NOT")
	}
	if n, ok := sel.Items[2].Expr.(*IsNull); !ok || n.Negate {
		t.Error("IS NULL")
	}
	if n, ok := sel.Items[3].Expr.(*IsNull); !ok || !n.Negate {
		t.Error("IS NOT NULL")
	}
	if b, ok := sel.Items[4].Expr.(*Binary); !ok || b.Op != OpNe {
		t.Error("<>")
	}
	if b, ok := sel.Items[5].Expr.(*Binary); !ok || b.Op != OpConcat {
		t.Error("||")
	}
}

func TestParamCounting(t *testing.T) {
	_, n, err := ParseWithParams("SELECT a FROM t WHERE x = ? AND y = ? AND z = ?")
	if err != nil || n != 3 {
		t.Errorf("params = %d, %v", n, err)
	}
}

func TestQualifiedColumns(t *testing.T) {
	sel := mustParse(t, "SELECT t.a FROM t WHERE t.b = 1").(*Select)
	ref, ok := sel.Items[0].Expr.(*ColumnRef)
	if !ok || ref.Table != "t" || ref.Column != "a" {
		t.Fatalf("ref = %+v", sel.Items[0].Expr)
	}
}

func TestCountVariants(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(*), COUNT(x), COUNT(DISTINCT y) FROM t").(*Select)
	c0 := sel.Items[0].Expr.(*FuncCall)
	if !c0.Star || !c0.IsAggregate() {
		t.Error("COUNT(*)")
	}
	c2 := sel.Items[2].Expr.(*FuncCall)
	if !c2.Distinct {
		t.Error("COUNT(DISTINCT)")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM t WHERE",
		"INSERT votes VALUES (1)",
		"INSERT INTO votes VALUES 1",
		"UPDATE t SET",
		"DELETE t",
		"CREATE TABLE t",
		"CREATE TABLE t (x BLOB)",
		"CREATE WINDOW w (v BIGINT) SIZE 5",
		"SELECT a FROM t LIMIT 1.5",
		"SELECT a FROM t extra garbage ,",
		"SELECT (a FROM t",
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) should fail", input)
		}
	}
}

func TestTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT a FROM t;")
}
