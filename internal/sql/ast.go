package sql

import (
	"strings"

	"sstore/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface{ expr() }

// --- Expressions ---

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// ColumnRef names a column, optionally qualified by a table or alias.
type ColumnRef struct {
	Table  string // optional qualifier, lower-cased
	Column string // lower-cased
}

// Param is a positional '?' placeholder; Index is zero-based in
// statement order.
type Param struct {
	Index int
}

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators, in no particular precedence order (precedence is
// resolved by the parser).
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpConcat
)

// String returns the SQL spelling of the operator.
func (op BinaryOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	default:
		return "?op"
	}
}

// Binary is a binary operation.
type Binary struct {
	Op          BinaryOp
	Left, Right Expr
}

// Unary is negation (-x) or logical NOT.
type Unary struct {
	Neg     bool // true: arithmetic negation, false: NOT
	Operand Expr
}

// IsNull tests an expression against NULL.
type IsNull struct {
	Operand Expr
	Negate  bool // IS NOT NULL
}

// FuncCall is a function or aggregate invocation. Star marks COUNT(*).
type FuncCall struct {
	Name     string // lower-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

// InList is `expr [NOT] IN (e1, e2, ...)`.
type InList struct {
	Operand Expr
	Items   []Expr
	Negate  bool
}

// Between is `expr [NOT] BETWEEN lo AND hi` (inclusive).
type Between struct {
	Operand Expr
	Lo, Hi  Expr
	Negate  bool
}

// Like is `expr [NOT] LIKE pattern` with % (any run) and _ (one
// character) wildcards.
type Like struct {
	Operand Expr
	Pattern Expr
	Negate  bool
}

// AggregateFuncs lists the recognized aggregate function names.
var AggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// IsAggregate reports whether the call is an aggregate function.
func (f *FuncCall) IsAggregate() bool { return AggregateFuncs[f.Name] }

func (*Literal) expr()   {}
func (*ColumnRef) expr() {}
func (*Param) expr()     {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*IsNull) expr()    {}
func (*FuncCall) expr()  {}
func (*InList) expr()    {}
func (*Between) expr()   {}
func (*Like) expr()      {}

// --- SELECT ---

// SelectItem is one projection: an expression with an optional alias,
// or a bare star.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string // defaults to Name
}

// Join is an inner equi-join clause.
type Join struct {
	Table TableRef
	On    Expr
}

// Select is a SELECT statement.
type Select struct {
	Items   []SelectItem
	From    TableRef
	Joins   []Join
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent or parameterized
	// LimitParam is the parameter index of a `LIMIT ?`, or -1.
	LimitParam int
}

// --- DML ---

// Insert is INSERT INTO ... VALUES (...)... or INSERT INTO ... SELECT.
type Insert struct {
	Table   string
	Columns []string // optional explicit column list
	Rows    [][]Expr // literal rows, nil when Query is set
	Query   *Select
}

// Update is UPDATE ... SET ... WHERE.
type Update struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM ... WHERE.
type Delete struct {
	Table string
	Where Expr
}

// --- DDL ---

// ColumnDef is one column definition in CREATE TABLE/STREAM/WINDOW.
type ColumnDef struct {
	Name       string
	Kind       types.Kind
	PrimaryKey bool
}

// CreateTable covers CREATE TABLE and CREATE STREAM (same shape,
// different Kind).
type CreateTable struct {
	Name   string
	Stream bool
	// Archive selects the disk-backed storage manager for the table
	// (CREATE ARCHIVE TABLE): its rows live in a page file behind the
	// partition's buffer pool instead of the in-memory heap.
	Archive bool
	Columns []ColumnDef
}

// CreateWindow is the streaming DDL extension:
//
//	CREATE WINDOW w (cols...) SIZE n SLIDE m [ON col]
//
// Without ON the window is tuple-based; with ON col it is time-based
// over that column.
type CreateWindow struct {
	Name       string
	Columns    []ColumnDef
	Size       int64
	Slide      int64
	TimeColumn string // empty for tuple-based
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols) [USING
// HASH|BTREE]. The default access method is HASH.
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	BTree   bool
}

func (*Select) stmt()       {}
func (*Insert) stmt()       {}
func (*Update) stmt()       {}
func (*Delete) stmt()       {}
func (*CreateTable) stmt()  {}
func (*CreateWindow) stmt() {}
func (*CreateIndex) stmt()  {}

// lower is strings.ToLower shared by parser and planner for identifier
// normalization.
func lower(s string) string { return strings.ToLower(s) }
