package index

import "sort"

// btreeOrder is the maximum number of keys per node. Nodes split at
// btreeOrder and are merged below btreeOrder/2.
const btreeOrder = 32

// BTree is an ordered index: a B+tree whose leaves hold (key, tupleIDs)
// entries and are linked for range scans. It supports exact lookups,
// bounded range scans, and min/max access in O(log n).
type BTree struct {
	name    string
	columns []int
	unique  bool
	root    btreeNode
	entries int
}

type btreeNode interface {
	// findLeaf descends to the leaf that would contain key.
	findLeaf(key Key) *leafNode
	// minLeaf returns the left-most leaf under the node.
	minLeaf() *leafNode
}

type innerNode struct {
	// keys[i] is the smallest key reachable under children[i+1];
	// len(children) == len(keys)+1.
	keys     []Key
	children []btreeNode
}

type leafNode struct {
	keys []Key
	tids [][]uint64
	next *leafNode
}

// NewBTree creates an empty B+tree index over the given column ordinals.
func NewBTree(name string, columns []int, unique bool) *BTree {
	return &BTree{
		name:    name,
		columns: append([]int(nil), columns...),
		unique:  unique,
		root:    &leafNode{},
	}
}

// Name implements Index.
func (t *BTree) Name() string { return t.name }

// Columns implements Index.
func (t *BTree) Columns() []int { return t.columns }

// Unique implements Index.
func (t *BTree) Unique() bool { return t.unique }

// Len implements Index.
func (t *BTree) Len() int { return t.entries }

func (n *innerNode) findLeaf(key Key) *leafNode {
	i := sort.Search(len(n.keys), func(i int) bool { return CompareKeys(n.keys[i], key) > 0 })
	return n.children[i].findLeaf(key)
}

func (n *innerNode) minLeaf() *leafNode { return n.children[0].minLeaf() }

func (n *leafNode) findLeaf(Key) *leafNode { return n }
func (n *leafNode) minLeaf() *leafNode     { return n }

// search returns the position of key in the leaf and whether it is
// present.
func (n *leafNode) search(key Key) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return CompareKeys(n.keys[i], key) >= 0 })
	return i, i < len(n.keys) && CompareKeys(n.keys[i], key) == 0
}

// Insert implements Index.
func (t *BTree) Insert(key Key, tid uint64) error {
	leaf := t.root.findLeaf(key)
	if i, found := leaf.search(key); found {
		if t.unique {
			return ErrDuplicateKey
		}
		leaf.tids[i] = append(leaf.tids[i], tid)
		t.entries++
		return nil
	}
	t.insertNew(key.Clone(), tid)
	t.entries++
	return nil
}

// insertNew inserts a key known to be absent, splitting on the way back
// up via recursion.
func (t *BTree) insertNew(key Key, tid uint64) {
	splitKey, right := insertRec(t.root, key, tid)
	if right != nil {
		t.root = &innerNode{keys: []Key{splitKey}, children: []btreeNode{t.root, right}}
	}
}

// insertRec inserts into the subtree rooted at n. When the child splits,
// it returns the separator key and new right sibling; otherwise
// (nil, nil).
func insertRec(n btreeNode, key Key, tid uint64) (Key, btreeNode) {
	switch n := n.(type) {
	case *leafNode:
		i, _ := n.search(key)
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.tids = append(n.tids, nil)
		copy(n.tids[i+1:], n.tids[i:])
		n.tids[i] = []uint64{tid}
		if len(n.keys) <= btreeOrder {
			return nil, nil
		}
		mid := len(n.keys) / 2
		right := &leafNode{
			keys: append([]Key(nil), n.keys[mid:]...),
			tids: append([][]uint64(nil), n.tids[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.tids = n.tids[:mid:mid]
		n.next = right
		return right.keys[0], right
	case *innerNode:
		i := sort.Search(len(n.keys), func(i int) bool { return CompareKeys(n.keys[i], key) > 0 })
		splitKey, right := insertRec(n.children[i], key, tid)
		if right == nil {
			return nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = splitKey
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
		if len(n.keys) <= btreeOrder {
			return nil, nil
		}
		mid := len(n.keys) / 2
		sep := n.keys[mid]
		newRight := &innerNode{
			keys:     append([]Key(nil), n.keys[mid+1:]...),
			children: append([]btreeNode(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid:mid]
		n.children = n.children[: mid+1 : mid+1]
		return sep, newRight
	default:
		panic("index: unknown btree node type")
	}
}

// Delete implements Index. Leaves may become under-full; the tree trades
// strict rebalancing for simplicity (deleted keys are removed, empty
// leaves persist until their parent collapses), which keeps scans
// correct and delete O(log n). Tables in this engine are churn-heavy
// stream/window state where keys are continuously re-inserted, so
// under-full leaves are transient.
func (t *BTree) Delete(key Key, tid uint64) {
	leaf := t.root.findLeaf(key)
	i, found := leaf.search(key)
	if !found {
		return
	}
	tids := leaf.tids[i]
	for j, x := range tids {
		if x == tid {
			tids[j] = tids[len(tids)-1]
			leaf.tids[i] = tids[:len(tids)-1]
			t.entries--
			break
		}
	}
	if len(leaf.tids[i]) == 0 {
		leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
		leaf.tids = append(leaf.tids[:i], leaf.tids[i+1:]...)
	}
}

// Lookup implements Index.
func (t *BTree) Lookup(key Key) []uint64 {
	leaf := t.root.findLeaf(key)
	if i, found := leaf.search(key); found {
		return leaf.tids[i]
	}
	return nil
}

// Range calls fn for each (key, tupleID) with lo <= key <= hi in
// ascending key order. A nil lo means unbounded below; a nil hi means
// unbounded above. fn returning false stops the scan.
func (t *BTree) Range(lo, hi Key, fn func(key Key, tid uint64) bool) {
	var leaf *leafNode
	var start int
	if lo == nil {
		leaf = t.root.minLeaf()
	} else {
		leaf = t.root.findLeaf(lo)
		start, _ = leaf.search(lo)
	}
	for leaf != nil {
		for i := start; i < len(leaf.keys); i++ {
			if hi != nil && CompareKeys(leaf.keys[i], hi) > 0 {
				return
			}
			for _, tid := range leaf.tids[i] {
				if !fn(leaf.keys[i], tid) {
					return
				}
			}
		}
		leaf = leaf.next
		start = 0
	}
}

// Min returns the smallest key and its tuple IDs, or ok=false when the
// tree is empty.
func (t *BTree) Min() (Key, []uint64, bool) {
	for leaf := t.root.minLeaf(); leaf != nil; leaf = leaf.next {
		if len(leaf.keys) > 0 {
			return leaf.keys[0], leaf.tids[0], true
		}
	}
	return nil, nil, false
}

// Max returns the largest key and its tuple IDs, or ok=false when the
// tree is empty.
func (t *BTree) Max() (Key, []uint64, bool) {
	var bestKey Key
	var bestTids []uint64
	for leaf := t.root.minLeaf(); leaf != nil; leaf = leaf.next {
		if len(leaf.keys) > 0 {
			bestKey = leaf.keys[len(leaf.keys)-1]
			bestTids = leaf.tids[len(leaf.tids)-1]
		}
	}
	if bestKey == nil {
		return nil, nil, false
	}
	return bestKey, bestTids, true
}

// Clone implements Index: nodes, leaf links, and tid slices are
// copied; key values are shared (immutable).
func (t *BTree) Clone() Index {
	c := &BTree{
		name:    t.name,
		columns: append([]int(nil), t.columns...),
		unique:  t.unique,
		entries: t.entries,
	}
	var prev *leafNode
	c.root = cloneNode(t.root, &prev)
	return c
}

// cloneNode deep-copies a subtree, re-linking leaves left to right via
// prev (leaves are visited in ascending key order).
func cloneNode(n btreeNode, prev **leafNode) btreeNode {
	switch n := n.(type) {
	case *leafNode:
		c := &leafNode{
			keys: append([]Key(nil), n.keys...),
			tids: make([][]uint64, len(n.tids)),
		}
		for i, tids := range n.tids {
			c.tids[i] = append([]uint64(nil), tids...)
		}
		if *prev != nil {
			(*prev).next = c
		}
		*prev = c
		return c
	case *innerNode:
		c := &innerNode{
			keys:     append([]Key(nil), n.keys...),
			children: make([]btreeNode, len(n.children)),
		}
		for i, child := range n.children {
			c.children[i] = cloneNode(child, prev)
		}
		return c
	default:
		panic("index: unknown btree node type")
	}
}
