// Package index provides the secondary-index structures used by tables:
// an equality hash index and an ordered B+tree. Indexes map composite
// keys (one or more column values) to tuple IDs; the table owns the
// actual rows.
package index

import (
	"fmt"

	"sstore/internal/types"
)

// Key is a composite index key: one value per indexed column.
type Key = types.Row

// Index is the interface shared by all index implementations.
type Index interface {
	// Name identifies the index within its table.
	Name() string
	// Columns returns the ordinals of the indexed columns in the
	// table schema.
	Columns() []int
	// Unique reports whether the index rejects duplicate keys.
	Unique() bool
	// Insert adds a (key, tupleID) entry. For unique indexes it
	// returns ErrDuplicateKey when the key is already present.
	Insert(key Key, tid uint64) error
	// Delete removes a (key, tupleID) entry if present.
	Delete(key Key, tid uint64)
	// Lookup returns the tuple IDs for an exact key match. The
	// returned slice must not be modified.
	Lookup(key Key) []uint64
	// Len returns the number of (key, tupleID) entries.
	Len() int
	// Clone returns an independent deep copy (key values are shared —
	// they are immutable); the snapshot read path detaches table
	// images with their indexes so index probes work against them.
	Clone() Index
}

// ErrDuplicateKey is returned by Insert on a unique index when the key
// already exists.
var ErrDuplicateKey = fmt.Errorf("index: duplicate key")

// CompareKeys orders composite keys lexicographically. Keys must have
// the same arity and pairwise-comparable kinds; the table layer
// guarantees this, so violations panic.
func CompareKeys(a, b Key) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("index: comparing keys of arity %d and %d", len(a), len(b)))
	}
	for i := range a {
		if c := a[i].MustCompare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// HashKey combines the hashes of the key's values.
func HashKey(k Key) uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, v := range k {
		h ^= v.Hash()
		h *= 1099511628211 // FNV-64 prime
	}
	return h
}

// KeysEqual reports whether two composite keys are pairwise equal.
func KeysEqual(a, b Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
