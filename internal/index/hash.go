package index

// HashIndex is an equality index built on Go's map with chained buckets
// for hash collisions. Lookups are O(1); it does not support range
// scans (use BTree for those).
type HashIndex struct {
	name    string
	columns []int
	unique  bool
	buckets map[uint64][]hashEntry
	entries int
}

type hashEntry struct {
	key  Key
	tids []uint64
}

// NewHashIndex creates an empty hash index over the given column
// ordinals.
func NewHashIndex(name string, columns []int, unique bool) *HashIndex {
	return &HashIndex{
		name:    name,
		columns: append([]int(nil), columns...),
		unique:  unique,
		buckets: make(map[uint64][]hashEntry),
	}
}

// Name implements Index.
func (h *HashIndex) Name() string { return h.name }

// Columns implements Index.
func (h *HashIndex) Columns() []int { return h.columns }

// Unique implements Index.
func (h *HashIndex) Unique() bool { return h.unique }

// Len implements Index.
func (h *HashIndex) Len() int { return h.entries }

// Insert implements Index.
func (h *HashIndex) Insert(key Key, tid uint64) error {
	hash := HashKey(key)
	bucket := h.buckets[hash]
	for i := range bucket {
		if KeysEqual(bucket[i].key, key) {
			if h.unique {
				return ErrDuplicateKey
			}
			bucket[i].tids = append(bucket[i].tids, tid)
			h.entries++
			return nil
		}
	}
	h.buckets[hash] = append(bucket, hashEntry{key: key.Clone(), tids: []uint64{tid}})
	h.entries++
	return nil
}

// Delete implements Index.
func (h *HashIndex) Delete(key Key, tid uint64) {
	hash := HashKey(key)
	bucket := h.buckets[hash]
	for i := range bucket {
		if !KeysEqual(bucket[i].key, key) {
			continue
		}
		tids := bucket[i].tids
		for j, t := range tids {
			if t == tid {
				tids[j] = tids[len(tids)-1]
				bucket[i].tids = tids[:len(tids)-1]
				h.entries--
				break
			}
		}
		if len(bucket[i].tids) == 0 {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			if len(bucket) == 0 {
				delete(h.buckets, hash)
			} else {
				h.buckets[hash] = bucket
			}
		}
		return
	}
}

// Lookup implements Index.
func (h *HashIndex) Lookup(key Key) []uint64 {
	for _, e := range h.buckets[HashKey(key)] {
		if KeysEqual(e.key, key) {
			return e.tids
		}
	}
	return nil
}

// Clone implements Index: buckets, entries, and tid slices are copied;
// key values are shared (immutable).
func (h *HashIndex) Clone() Index {
	c := &HashIndex{
		name:    h.name,
		columns: append([]int(nil), h.columns...),
		unique:  h.unique,
		buckets: make(map[uint64][]hashEntry, len(h.buckets)),
		entries: h.entries,
	}
	//lint:allow replaydet -- each iteration builds a fresh bucket keyed by the loop var; the output map is identical under any visit order
	for hash, bucket := range h.buckets {
		nb := make([]hashEntry, len(bucket))
		for i, e := range bucket {
			nb[i] = hashEntry{key: e.key, tids: append([]uint64(nil), e.tids...)}
		}
		c.buckets[hash] = nb
	}
	return c
}
