package index

import (
	"testing"

	"sstore/internal/types"
)

func benchKeys(n int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{types.NewInt(int64(i * 7 % n))}
	}
	return keys
}

func BenchmarkBTreeInsert(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ResetTimer()
	var bt *BTree
	for i := 0; i < b.N; i++ {
		if i&(1<<16-1) == 0 {
			bt = NewBTree("b", []int{0}, false)
		}
		_ = bt.Insert(keys[i&(1<<16-1)], uint64(i))
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	bt := NewBTree("b", []int{0}, false)
	keys := benchKeys(1 << 16)
	for i, k := range keys {
		_ = bt.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Lookup(keys[i&(1<<16-1)])
	}
}

func BenchmarkHashIndexInsert(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ResetTimer()
	var h *HashIndex
	for i := 0; i < b.N; i++ {
		if i&(1<<16-1) == 0 {
			h = NewHashIndex("h", []int{0}, false)
		}
		_ = h.Insert(keys[i&(1<<16-1)], uint64(i))
	}
}

func BenchmarkHashIndexLookup(b *testing.B) {
	h := NewHashIndex("h", []int{0}, false)
	keys := benchKeys(1 << 16)
	for i, k := range keys {
		_ = h.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lookup(keys[i&(1<<16-1)])
	}
}

func BenchmarkBTreeRangeScan(b *testing.B) {
	bt := NewBTree("b", []int{0}, false)
	for i := 0; i < 1<<14; i++ {
		_ = bt.Insert(Key{types.NewInt(int64(i))}, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		bt.Range(nil, nil, func(Key, uint64) bool {
			n++
			return true
		})
	}
}
