package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sstore/internal/types"
)

func intKey(vs ...int64) Key {
	k := make(Key, len(vs))
	for i, v := range vs {
		k[i] = types.NewInt(v)
	}
	return k
}

func TestCompareKeys(t *testing.T) {
	tests := []struct {
		a, b Key
		want int
	}{
		{intKey(1), intKey(2), -1},
		{intKey(2), intKey(2), 0},
		{intKey(3), intKey(2), 1},
		{intKey(1, 2), intKey(1, 3), -1},
		{intKey(1, 9), intKey(2, 0), -1},
		{Key{types.NewText("a"), types.NewInt(2)}, Key{types.NewText("a"), types.NewInt(1)}, 1},
	}
	for i, tt := range tests {
		if got := CompareKeys(tt.a, tt.b); got != tt.want {
			t.Errorf("case %d: CompareKeys(%v,%v) = %d, want %d", i, tt.a, tt.b, got, tt.want)
		}
	}
}

// indexContract exercises the Index interface behaviours shared by both
// implementations.
func indexContract(t *testing.T, mk func(unique bool) Index) {
	t.Helper()
	t.Run("insert lookup delete", func(t *testing.T) {
		idx := mk(false)
		for i := int64(0); i < 100; i++ {
			if err := idx.Insert(intKey(i%10), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if idx.Len() != 100 {
			t.Fatalf("Len = %d, want 100", idx.Len())
		}
		got := idx.Lookup(intKey(3))
		if len(got) != 10 {
			t.Fatalf("Lookup(3) returned %d tids, want 10", len(got))
		}
		idx.Delete(intKey(3), 3)
		if len(idx.Lookup(intKey(3))) != 9 {
			t.Error("delete did not remove the entry")
		}
		idx.Delete(intKey(3), 999) // absent tid: no-op
		if idx.Len() != 99 {
			t.Errorf("Len = %d, want 99", idx.Len())
		}
		if idx.Lookup(intKey(42)) != nil {
			t.Error("lookup of absent key should be nil")
		}
	})
	t.Run("unique rejects duplicates", func(t *testing.T) {
		idx := mk(true)
		if err := idx.Insert(intKey(1), 1); err != nil {
			t.Fatal(err)
		}
		if err := idx.Insert(intKey(1), 2); err != ErrDuplicateKey {
			t.Errorf("duplicate insert error = %v, want ErrDuplicateKey", err)
		}
		idx.Delete(intKey(1), 1)
		if err := idx.Insert(intKey(1), 2); err != nil {
			t.Errorf("insert after delete should succeed: %v", err)
		}
	})
	t.Run("composite keys", func(t *testing.T) {
		idx := mk(false)
		if err := idx.Insert(intKey(1, 2), 10); err != nil {
			t.Fatal(err)
		}
		if err := idx.Insert(intKey(1, 3), 11); err != nil {
			t.Fatal(err)
		}
		if got := idx.Lookup(intKey(1, 2)); len(got) != 1 || got[0] != 10 {
			t.Errorf("Lookup(1,2) = %v", got)
		}
	})
}

func TestHashIndexContract(t *testing.T) {
	indexContract(t, func(unique bool) Index {
		return NewHashIndex("h", []int{0}, unique)
	})
}

func TestBTreeContract(t *testing.T) {
	indexContract(t, func(unique bool) Index {
		return NewBTree("b", []int{0}, unique)
	})
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree("b", []int{0}, true)
	for i := int64(0); i < 1000; i += 2 {
		if err := bt.Insert(intKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	bt.Range(intKey(10), intKey(20), func(_ Key, tid uint64) bool {
		got = append(got, tid)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Range(10,20) = %v, want %v", got, want)
	}

	// Unbounded below.
	got = got[:0]
	bt.Range(nil, intKey(4), func(_ Key, tid uint64) bool {
		got = append(got, tid)
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint([]uint64{0, 2, 4}) {
		t.Errorf("Range(nil,4) = %v", got)
	}

	// Unbounded above, early stop.
	count := 0
	bt.Range(intKey(990), nil, func(_ Key, _ uint64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop scanned %d entries, want 3", count)
	}
}

func TestBTreeMinMax(t *testing.T) {
	bt := NewBTree("b", []int{0}, true)
	if _, _, ok := bt.Min(); ok {
		t.Error("Min on empty tree should report !ok")
	}
	if _, _, ok := bt.Max(); ok {
		t.Error("Max on empty tree should report !ok")
	}
	perm := rand.New(rand.NewSource(7)).Perm(500)
	for _, v := range perm {
		if err := bt.Insert(intKey(int64(v)), uint64(v)); err != nil {
			t.Fatal(err)
		}
	}
	k, _, ok := bt.Min()
	if !ok || k[0].Int() != 0 {
		t.Errorf("Min = %v, want 0", k)
	}
	k, _, ok = bt.Max()
	if !ok || k[0].Int() != 499 {
		t.Errorf("Max = %v, want 499", k)
	}
}

// TestBTreeVsReferenceModel drives the B+tree and a map-based reference
// with the same random operation stream and checks observable
// equivalence — the canonical property test for ordered indexes.
func TestBTreeVsReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bt := NewBTree("b", []int{0}, false)
	ref := make(map[int64][]uint64)
	refLen := 0

	for op := 0; op < 20000; op++ {
		k := int64(rng.Intn(300))
		switch rng.Intn(3) {
		case 0, 1: // insert twice as often as delete
			tid := uint64(op)
			if err := bt.Insert(intKey(k), tid); err != nil {
				t.Fatal(err)
			}
			ref[k] = append(ref[k], tid)
			refLen++
		case 2:
			if tids := ref[k]; len(tids) > 0 {
				victim := tids[rng.Intn(len(tids))]
				bt.Delete(intKey(k), victim)
				for i, x := range tids {
					if x == victim {
						ref[k] = append(tids[:i], tids[i+1:]...)
						break
					}
				}
				refLen--
			}
		}
	}
	if bt.Len() != refLen {
		t.Fatalf("Len = %d, want %d", bt.Len(), refLen)
	}
	for k, want := range ref {
		got := append([]uint64(nil), bt.Lookup(intKey(k))...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		w := append([]uint64(nil), want...)
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Fatalf("key %d: Lookup = %v, want %v", k, got, w)
		}
	}
	// Full scan must be in sorted order and cover exactly refLen
	// entries.
	var prev int64 = -1
	n := 0
	bt.Range(nil, nil, func(key Key, _ uint64) bool {
		if key[0].Int() < prev {
			t.Fatalf("range scan out of order: %d after %d", key[0].Int(), prev)
		}
		prev = key[0].Int()
		n++
		return true
	})
	if n != refLen {
		t.Fatalf("range scan visited %d entries, want %d", n, refLen)
	}
}

// TestBTreeSortedInsertScan checks ascending and descending bulk loads,
// which stress the split paths differently.
func TestBTreeSortedInsertScan(t *testing.T) {
	for name, gen := range map[string]func(i int) int64{
		"ascending":  func(i int) int64 { return int64(i) },
		"descending": func(i int) int64 { return int64(9999 - i) },
	} {
		t.Run(name, func(t *testing.T) {
			bt := NewBTree("b", []int{0}, true)
			for i := 0; i < 10000; i++ {
				if err := bt.Insert(intKey(gen(i)), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			var prev int64 = -1
			n := 0
			bt.Range(nil, nil, func(key Key, _ uint64) bool {
				if key[0].Int() != prev+1 {
					t.Fatalf("gap in scan: %d after %d", key[0].Int(), prev)
				}
				prev = key[0].Int()
				n++
				return true
			})
			if n != 10000 {
				t.Fatalf("scanned %d entries, want 10000", n)
			}
		})
	}
}

// TestHashKeyQuick: equal keys hash equal.
func TestHashKeyQuick(t *testing.T) {
	f := func(a, b int64) bool {
		k1, k2 := intKey(a, b), intKey(a, b)
		return HashKey(k1) == HashKey(k2) && KeysEqual(k1, k2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
