package linearroad

import (
	"fmt"
	"testing"

	"sstore/internal/pe"
	"sstore/internal/stream"
	"sstore/internal/types"
)

func newEngine(t *testing.T, cfg Config, partitions int) *pe.Engine {
	t.Helper()
	eng, err := pe.NewEngine(pe.Options{
		Partitions:  partitions,
		PartitionBy: PartitionByXWay(partitions),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	seed := func(xway int, stmt string) error {
		_, err := eng.AdHoc(xway%partitions, stmt)
		return err
	}
	if err := SetupSchema(eng, cfg, seed); err != nil {
		t.Fatal(err)
	}
	for _, sp := range Procs(cfg) {
		if err := eng.RegisterProc(sp); err != nil {
			t.Fatal(err)
		}
	}
	w, err := Workflow()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	return eng
}

func ingestReports(t *testing.T, eng *pe.Engine, gen *Generator, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r := gen.Next()
		if err := eng.IngestSync(StreamReports, &stream.Batch{ID: int64(i + 1), Rows: []types.Row{r.Row()}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := eng.TriggerErr(); err != nil {
		t.Fatal(err)
	}
}

func TestPositionReportsTracked(t *testing.T) {
	cfg := Config{XWays: 1, VehiclesPerXWay: 10}
	eng := newEngine(t, cfg, 1)
	gen := NewGenerator(1, cfg)
	ingestReports(t, eng, gen, 50)
	res, _ := eng.AdHoc(0, "SELECT COUNT(*) FROM vehicles")
	if res.Rows[0][0].Int() != 10 {
		t.Errorf("vehicles = %v, want 10", res.Rows[0][0])
	}
	res, _ = eng.AdHoc(0, "SELECT COUNT(*) FROM "+StreamReports)
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("reports stream not drained: %v", res.Rows[0][0])
	}
}

func TestMinuteRollupRuns(t *testing.T) {
	cfg := Config{XWays: 1, VehiclesPerXWay: 10}
	eng := newEngine(t, cfg, 1)
	gen := NewGenerator(2, cfg)
	// 10 vehicles × 30s cadence: ~20 reports cross each simulated
	// minute; 100 reports cross several.
	ingestReports(t, eng, gen, 100)
	res, _ := eng.AdHoc(0, "SELECT COUNT(*) FROM stats_history")
	if res.Rows[0][0].Int() == 0 {
		t.Error("rollup never archived statistics")
	}
	res, _ = eng.AdHoc(0, "SELECT minute FROM lr_clock WHERE xway = 0")
	if res.Rows[0][0].Int() == 0 {
		t.Error("x-way clock never advanced")
	}
}

func TestAccidentDetectionAndNotification(t *testing.T) {
	cfg := Config{XWays: 1, VehiclesPerXWay: 5}
	eng := newEngine(t, cfg, 1)
	b := int64(0)
	send := func(r Report) {
		b++
		if err := eng.IngestSync(StreamReports, &stream.Batch{ID: b, Rows: []types.Row{r.Row()}}); err != nil {
			t.Fatal(err)
		}
	}
	// Vehicle 1 stops in segment 5: 1 moving report + 4 stopped =
	// accident.
	send(Report{Time: 0, VID: 1, Speed: 50, XWay: 0, Lane: 1, Seg: 5})
	for i := 1; i <= 4; i++ {
		send(Report{Time: int64(i * 30), VID: 1, Speed: 0, XWay: 0, Lane: 1, Seg: 5})
	}
	eng.Drain()
	res, _ := eng.AdHoc(0, "SELECT active FROM accidents WHERE xway = 0 AND seg = 5")
	if len(res.Rows) != 1 || !res.Rows[0][0].Bool() {
		t.Fatalf("accident not recorded: %v", res.Rows)
	}
	// Vehicle 2 crosses from segment 3 into 4: segment ahead (5) has
	// the accident → notification.
	send(Report{Time: 200, VID: 2, Speed: 60, XWay: 0, Lane: 1, Seg: 3})
	send(Report{Time: 230, VID: 2, Speed: 60, XWay: 0, Lane: 1, Seg: 4})
	eng.Drain()
	res, _ = eng.AdHoc(0, "SELECT kind FROM notifications WHERE vid = 2")
	found := false
	for _, r := range res.Rows {
		if r[0].Text() == "accident_ahead" {
			found = true
		}
	}
	if !found {
		t.Errorf("no accident notification: %v", res.Rows)
	}
	if err := eng.TriggerErr(); err != nil {
		t.Fatal(err)
	}
}

func TestTollChargedOnCongestedSegment(t *testing.T) {
	cfg := Config{XWays: 1, VehiclesPerXWay: 5, CongestionThreshold: 2, SpeedLimit: 40}
	eng := newEngine(t, cfg, 1)
	b := int64(0)
	send := func(r Report) {
		b++
		if err := eng.IngestSync(StreamReports, &stream.Batch{ID: b, Rows: []types.Row{r.Row()}}); err != nil {
			t.Fatal(err)
		}
	}
	// Minute 0: 4 slow vehicles in segment 7 → congested (cnt=4 >
	// 2, avg 20 < 40). Toll = 2*(4-2)^2 = 8.
	for v := int64(1); v <= 4; v++ {
		send(Report{Time: v, VID: v, Speed: 20, XWay: 0, Lane: 1, Seg: 7})
	}
	// Cross the minute boundary to trigger the rollup.
	send(Report{Time: 65, VID: 5, Speed: 60, XWay: 0, Lane: 1, Seg: 1})
	eng.Drain()
	res, _ := eng.AdHoc(0, "SELECT toll FROM seg_tolls WHERE xway = 0 AND seg = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 8 {
		t.Fatalf("toll = %v, want 8", res.Rows)
	}
	// Vehicle 6 drives through segment 7 and leaves it: charged 8.
	send(Report{Time: 70, VID: 6, Speed: 60, XWay: 0, Lane: 1, Seg: 7})
	send(Report{Time: 100, VID: 6, Speed: 60, XWay: 0, Lane: 1, Seg: 8})
	eng.Drain()
	res, _ = eng.AdHoc(0, "SELECT balance FROM vehicles WHERE vid = 6")
	if res.Rows[0][0].Int() != 8 {
		t.Errorf("balance = %v, want 8", res.Rows[0][0])
	}
	res, _ = eng.AdHoc(0, "SELECT COUNT(*) FROM notifications WHERE vid = 6 AND kind = 'toll_charged'")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("toll notifications = %v", res.Rows[0][0])
	}
	if err := eng.TriggerErr(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPartitionXWays(t *testing.T) {
	cfg := Config{XWays: 4, VehiclesPerXWay: 5}
	eng := newEngine(t, cfg, 2)
	gen := NewGenerator(3, cfg)
	ingestReports(t, eng, gen, 200)
	// Every partition saw only its own x-ways.
	for pid := 0; pid < 2; pid++ {
		res, err := eng.AdHoc(pid, "SELECT COUNT(DISTINCT xway) FROM vehicles")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 2 {
			t.Errorf("partition %d has %v x-ways, want 2", pid, res.Rows[0][0])
		}
		res, _ = eng.AdHoc(pid, "SELECT COUNT(*) FROM vehicles")
		if res.Rows[0][0].Int() != 10 {
			t.Errorf("partition %d vehicles = %v", pid, res.Rows[0][0])
		}
	}
}

func TestGeneratorProperties(t *testing.T) {
	cfg := Config{XWays: 2, VehiclesPerXWay: 10}
	g1, g2 := NewGenerator(5, cfg), NewGenerator(5, cfg)
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		r1, r2 := g1.Next(), g2.Next()
		if r1 != r2 {
			t.Fatal("generator not deterministic")
		}
		if r1.Seg < 0 || r1.Seg >= Segments {
			t.Fatalf("segment out of range: %+v", r1)
		}
		if r1.XWay < 0 || r1.XWay >= 2 {
			t.Fatalf("x-way out of range: %+v", r1)
		}
		seen[r1.VID] = true
	}
	if len(seen) != 20 {
		t.Errorf("vehicles seen = %d, want 20", len(seen))
	}
	if rps := g1.ReportsPerSimSecond(); rps < 0.6 || rps > 0.7 {
		t.Errorf("reports/simsec = %v, want 20/30", rps)
	}
	if fmt.Sprint(PartitionByXWay(2)("x", []types.Row{NewGenerator(1, cfg).Next().Row()})) == "" {
		t.Error("unreachable")
	}
}
