// Package linearroad implements the subset of the Linear Road stream
// benchmark used in the paper's multi-core scalability experiment
// (§4.7): streaming position reports only (no historical queries),
// with toll notification, accident detection, per-minute toll
// computation, and statistics rollup. Traffic is partitioned by
// expressway ("x-way"), so the workload scales by assigning x-ways to
// partitions.
package linearroad

import (
	"fmt"
	"math/rand"

	"sstore/internal/pe"
	"sstore/internal/types"
	"sstore/internal/workflow"
)

// Stored procedure and stream names.
const (
	SPPosition = "UpdatePosition"
	SPRollup   = "MinuteRollup"

	StreamReports = "position_reports"
	StreamMinutes = "minute_marks"
)

// Segments per x-way (Linear Road uses 100).
const Segments = 100

// Config parameterizes the workload.
type Config struct {
	// XWays is the number of expressways.
	XWays int
	// VehiclesPerXWay controls traffic density (default 50).
	VehiclesPerXWay int
	// CongestionThreshold is the vehicle count per segment-minute
	// above which tolls apply (Linear Road uses 50; scaled down with
	// vehicle count).
	CongestionThreshold int64
	// SpeedLimit below which a segment is congested (LR: 40 mph).
	SpeedLimit int64
}

func (c Config) withDefaults() Config {
	if c.XWays <= 0 {
		c.XWays = 1
	}
	if c.VehiclesPerXWay <= 0 {
		c.VehiclesPerXWay = 50
	}
	if c.CongestionThreshold <= 0 {
		c.CongestionThreshold = 10
	}
	if c.SpeedLimit <= 0 {
		c.SpeedLimit = 40
	}
	return c
}

var ddl = []string{
	"CREATE STREAM " + StreamReports + " (time BIGINT, vid BIGINT, speed BIGINT, xway BIGINT, lane BIGINT, seg BIGINT)",
	"CREATE STREAM " + StreamMinutes + " (minute BIGINT, xway BIGINT)",
	"CREATE TABLE vehicles (vid BIGINT PRIMARY KEY, xway BIGINT, seg BIGINT, lane BIGINT, speed BIGINT, stops BIGINT, last_time BIGINT, balance BIGINT)",
	"CREATE TABLE seg_stats (xway BIGINT, seg BIGINT, cnt BIGINT, speed_sum BIGINT)",
	"CREATE INDEX seg_stats_idx ON seg_stats (xway, seg)",
	"CREATE TABLE seg_tolls (xway BIGINT, seg BIGINT, toll BIGINT)",
	"CREATE INDEX seg_tolls_idx ON seg_tolls (xway, seg)",
	"CREATE TABLE accidents (xway BIGINT, seg BIGINT, active BOOLEAN)",
	"CREATE INDEX accidents_idx ON accidents (xway, seg)",
	"CREATE TABLE notifications (vid BIGINT, time BIGINT, kind VARCHAR, amount BIGINT)",
	"CREATE TABLE stats_history (minute BIGINT, xway BIGINT, seg BIGINT, cnt BIGINT, speed_sum BIGINT)",
	"CREATE TABLE lr_clock (xway BIGINT, minute BIGINT)",
}

// SetupSchema creates the tables and streams and seeds the per-x-way
// minute clock. seed runs a statement on the partition owning each
// x-way.
func SetupSchema(eng interface {
	ExecDDL(string) error
}, cfg Config, seed func(xway int, stmt string) error) error {
	cfg = cfg.withDefaults()
	for _, d := range ddl {
		if err := eng.ExecDDL(d); err != nil {
			return err
		}
	}
	for x := 0; x < cfg.XWays; x++ {
		if err := seed(x, fmt.Sprintf("INSERT INTO lr_clock VALUES (%d, 0)", x)); err != nil {
			return err
		}
	}
	return nil
}

// Workflow is the two-step DAG of §4.7: SP1 handles every position
// report; at each minute boundary it triggers SP2.
func Workflow() (*workflow.Workflow, error) {
	return workflow.New("linearroad", []workflow.Node{
		{SP: SPPosition, Input: StreamReports, Outputs: []string{StreamMinutes}},
		{SP: SPRollup, Input: StreamMinutes},
	})
}

// Procs returns the two stored procedures.
func Procs(cfg Config) []*pe.StoredProc {
	cfg = cfg.withDefaults()
	return []*pe.StoredProc{
		{Name: SPPosition, Func: positionProc(cfg)},
		{Name: SPRollup, Func: rollupProc(cfg)},
	}
}

// positionProc is SP1: per position report it updates the vehicle,
// detects segment crossings (charging the previous segment's toll and
// notifying tolls/accidents ahead), detects stopped vehicles and
// accidents, accumulates segment statistics, and emits a minute marker
// when the report's minute advances the x-way clock.
func positionProc(cfg Config) pe.ProcFunc {
	return func(ctx *pe.ProcCtx) error {
		in, err := ctx.Query("SELECT time, vid, speed, xway, lane, seg FROM " + StreamReports)
		if err != nil {
			return err
		}
		for _, r := range in.Rows {
			tm, vid, speed, xway, lane, seg := r[0], r[1], r[2], r[3], r[4], r[5]
			prev, err := ctx.Query("SELECT seg, speed, stops, balance FROM vehicles WHERE vid = ?", vid)
			if err != nil {
				return err
			}
			if len(prev.Rows) == 0 {
				if _, err := ctx.Query("INSERT INTO vehicles VALUES (?, ?, ?, ?, ?, 0, ?, 0)",
					vid, xway, seg, lane, speed, tm); err != nil {
					return err
				}
			} else {
				prevSeg := prev.Rows[0][0].Int()
				stops := prev.Rows[0][2].Int()
				if speed.Int() == 0 {
					stops++
				} else {
					stops = 0
				}
				if _, err := ctx.Query(
					"UPDATE vehicles SET xway = ?, seg = ?, lane = ?, speed = ?, stops = ?, last_time = ? WHERE vid = ?",
					xway, seg, lane, speed, types.NewInt(stops), tm, vid); err != nil {
					return err
				}
				// A vehicle stopped for 4+ consecutive reports marks
				// an accident in its segment.
				if stops == 4 {
					if err := recordAccident(ctx, xway, seg); err != nil {
						return err
					}
				}
				if prevSeg != seg.Int() {
					if err := onSegmentCrossing(ctx, vid, tm, xway, types.NewInt(prevSeg), seg); err != nil {
						return err
					}
				}
			}
			// Segment statistics for the current minute.
			st, err := ctx.Query("SELECT cnt, speed_sum FROM seg_stats WHERE xway = ? AND seg = ?", xway, seg)
			if err != nil {
				return err
			}
			if len(st.Rows) == 0 {
				if _, err := ctx.Query("INSERT INTO seg_stats VALUES (?, ?, 1, ?)", xway, seg, speed); err != nil {
					return err
				}
			} else if _, err := ctx.Query(
				"UPDATE seg_stats SET cnt = cnt + 1, speed_sum = speed_sum + ? WHERE xway = ? AND seg = ?",
				speed, xway, seg); err != nil {
				return err
			}
			// Minute boundary? Advance the x-way clock and trigger
			// the rollup.
			minute := tm.Int() / 60
			clock, err := ctx.Query("SELECT minute FROM lr_clock WHERE xway = ?", xway)
			if err != nil {
				return err
			}
			if len(clock.Rows) > 0 && minute > clock.Rows[0][0].Int() {
				if _, err := ctx.Query("UPDATE lr_clock SET minute = ? WHERE xway = ?", types.NewInt(minute), xway); err != nil {
					return err
				}
				if _, err := ctx.Query("INSERT INTO "+StreamMinutes+" VALUES (?, ?)", types.NewInt(minute), xway); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func recordAccident(ctx *pe.ProcCtx, xway, seg types.Value) error {
	existing, err := ctx.Query("SELECT active FROM accidents WHERE xway = ? AND seg = ?", xway, seg)
	if err != nil {
		return err
	}
	if len(existing.Rows) > 0 {
		_, err = ctx.Query("UPDATE accidents SET active = true WHERE xway = ? AND seg = ?", xway, seg)
		return err
	}
	_, err = ctx.Query("INSERT INTO accidents VALUES (?, ?, true)", xway, seg)
	return err
}

// onSegmentCrossing charges the toll for the segment just left and
// notifies the vehicle of tolls and accidents in the segment ahead.
func onSegmentCrossing(ctx *pe.ProcCtx, vid, tm, xway, prevSeg, seg types.Value) error {
	toll, err := ctx.Query("SELECT toll FROM seg_tolls WHERE xway = ? AND seg = ?", xway, prevSeg)
	if err != nil {
		return err
	}
	if len(toll.Rows) > 0 && toll.Rows[0][0].Int() > 0 {
		amount := toll.Rows[0][0]
		if _, err := ctx.Query("UPDATE vehicles SET balance = balance + ? WHERE vid = ?", amount, vid); err != nil {
			return err
		}
		if _, err := ctx.Query("INSERT INTO notifications VALUES (?, ?, 'toll_charged', ?)", vid, tm, amount); err != nil {
			return err
		}
	}
	next := types.NewInt((seg.Int() + 1) % Segments)
	ahead, err := ctx.Query("SELECT toll FROM seg_tolls WHERE xway = ? AND seg = ?", xway, next)
	if err != nil {
		return err
	}
	if len(ahead.Rows) > 0 && ahead.Rows[0][0].Int() > 0 {
		if _, err := ctx.Query("INSERT INTO notifications VALUES (?, ?, 'toll_ahead', ?)", vid, tm, ahead.Rows[0][0]); err != nil {
			return err
		}
	}
	acc, err := ctx.Query("SELECT active FROM accidents WHERE xway = ? AND seg = ?", xway, next)
	if err != nil {
		return err
	}
	if len(acc.Rows) > 0 && acc.Rows[0][0].Bool() {
		if _, err := ctx.Query("INSERT INTO notifications VALUES (?, ?, 'accident_ahead', 0)", vid, tm); err != nil {
			return err
		}
	}
	return nil
}

// rollupProc is SP2: at each minute boundary it computes the previous
// minute's tolls per segment (the Linear Road formula: congested
// segments charge 2·(cars−threshold)²), archives the statistics, and
// clears accidents whose vehicles have moved on.
func rollupProc(cfg Config) pe.ProcFunc {
	return func(ctx *pe.ProcCtx) error {
		marks, err := ctx.Query("SELECT minute, xway FROM " + StreamMinutes)
		if err != nil {
			return err
		}
		for _, mark := range marks.Rows {
			minute, xway := mark[0], mark[1]
			stats, err := ctx.Query("SELECT seg, cnt, speed_sum FROM seg_stats WHERE xway = ?", xway)
			if err != nil {
				return err
			}
			if _, err := ctx.Query("DELETE FROM seg_tolls WHERE xway = ?", xway); err != nil {
				return err
			}
			for _, st := range stats.Rows {
				seg, cnt, speedSum := st[0], st[1].Int(), st[2].Int()
				if cnt == 0 {
					continue
				}
				avg := speedSum / cnt
				toll := int64(0)
				if avg < cfg.SpeedLimit && cnt > cfg.CongestionThreshold {
					over := cnt - cfg.CongestionThreshold
					toll = 2 * over * over
				}
				if toll > 0 {
					if _, err := ctx.Query("INSERT INTO seg_tolls VALUES (?, ?, ?)", xway, seg, types.NewInt(toll)); err != nil {
						return err
					}
				}
				if _, err := ctx.Query("INSERT INTO stats_history VALUES (?, ?, ?, ?, ?)",
					minute, xway, seg, st[1], st[2]); err != nil {
					return err
				}
			}
			if _, err := ctx.Query("DELETE FROM seg_stats WHERE xway = ?", xway); err != nil {
				return err
			}
			// Clear accidents with no stopped vehicle remaining.
			accs, err := ctx.Query("SELECT seg FROM accidents WHERE xway = ? AND active = true", xway)
			if err != nil {
				return err
			}
			for _, a := range accs.Rows {
				stopped, err := ctx.Query(
					"SELECT COUNT(*) FROM vehicles WHERE xway = ? AND seg = ? AND stops >= 4", xway, a[0])
				if err != nil {
					return err
				}
				if stopped.Rows[0][0].Int() == 0 {
					if _, err := ctx.Query("UPDATE accidents SET active = false WHERE xway = ? AND seg = ?", xway, a[0]); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}

// Report is one generated position report.
type Report struct {
	Time  int64 // simulated seconds
	VID   int64
	Speed int64
	XWay  int64
	Lane  int64
	Seg   int64
}

// Row converts the report to the stream's tuple layout.
func (r Report) Row() types.Row {
	return types.Row{
		types.NewInt(r.Time), types.NewInt(r.VID), types.NewInt(r.Speed),
		types.NewInt(r.XWay), types.NewInt(r.Lane), types.NewInt(r.Seg),
	}
}

// Generator produces deterministic synthetic traffic: each vehicle
// reports every 30 simulated seconds (as in Linear Road), advancing
// along its x-way at its speed; a small fraction stop for several
// reports, creating accidents, then resume.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	vehicles []*vehicle
	idx      int
	clock    int64 // simulated seconds
}

type vehicle struct {
	vid     int64
	xway    int64
	pos     int64 // absolute position in segment-units ×100
	speed   int64
	stopFor int
}

// NewGenerator creates a generator for the configured x-ways.
func NewGenerator(seed int64, cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	vid := int64(1)
	for x := 0; x < cfg.XWays; x++ {
		for v := 0; v < cfg.VehiclesPerXWay; v++ {
			g.vehicles = append(g.vehicles, &vehicle{
				vid:   vid,
				xway:  int64(x),
				pos:   g.rng.Int63n(Segments * 100),
				speed: 30 + g.rng.Int63n(70),
			})
			vid++
		}
	}
	return g
}

// ReportsPerSimSecond returns how many reports one simulated second
// carries (every vehicle reports each 30s).
func (g *Generator) ReportsPerSimSecond() float64 {
	return float64(len(g.vehicles)) / 30.0
}

// Next produces the next position report, advancing simulated time so
// each vehicle reports every 30 simulated seconds.
func (g *Generator) Next() Report {
	v := g.vehicles[g.idx]
	g.idx++
	if g.idx == len(g.vehicles) {
		g.idx = 0
		g.clock += 30
	}
	// Advance and maybe toggle stopping.
	if v.stopFor > 0 {
		v.stopFor--
		v.speed = 0
	} else {
		if v.speed == 0 {
			v.speed = 30 + g.rng.Int63n(40)
		}
		if g.rng.Float64() < 0.01 {
			v.stopFor = 5
			v.speed = 0
		}
	}
	v.pos = (v.pos + v.speed) % (Segments * 100)
	return Report{
		Time:  g.clock + int64(g.idx%30),
		VID:   v.vid,
		Speed: v.speed,
		XWay:  v.xway,
		Lane:  1 + v.vid%3,
		Seg:   v.pos / 100,
	}
}

// PartitionByXWay maps a batch to its x-way's partition. It routes
// both of the workflow's streams — position reports at the border and
// minute marks between SP1 and SP2 — so every TE for one x-way runs on
// the same partition, where that x-way's vehicles, segment statistics,
// and tolls live (§4.7).
func PartitionByXWay(partitions int) func(string, []types.Row) int {
	return func(streamName string, batch []types.Row) int {
		if len(batch) == 0 {
			return 0
		}
		col := 3 // position_reports: (time, vid, speed, xway, ...)
		if streamName == StreamMinutes {
			col = 1 // minute_marks: (minute, xway)
		}
		return int(batch[0][col].Int()) % partitions
	}
}
