// Package benchutil provides the measurement machinery shared by the
// experiment harness (cmd/sstore-bench) and the testing.B benchmarks:
// latency recording with percentiles, an open-loop rate-controlled
// driver, and aligned table printing for the paper-style result rows.
package benchutil

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// LatencyRecorder accumulates durations and reports percentiles. It is
// safe for concurrent Record calls.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Percentile returns the p-th percentile (0 < p <= 100), or 0 with no
// samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range r.samples {
		total += s
	}
	return total / time.Duration(len(r.samples))
}

// OpenLoopResult reports one open-loop run.
type OpenLoopResult struct {
	// Offered is the configured request rate (per second).
	Offered float64
	// Completed is the number of requests that finished within the
	// measurement window plus drain.
	Completed int
	// Throughput is completions per second of the measurement
	// window.
	Throughput float64
	// Latency holds per-request completion latencies.
	Latency *LatencyRecorder
}

// OpenLoop submits requests at a fixed rate for the given duration,
// without waiting for completions (an asynchronous client, as in §4).
// submit must arrange for done() to be called when the request
// completes; OpenLoop waits for all issued requests to finish after
// the window closes and reports throughput over the send window.
// Returning an error from submit stops the run.
func OpenLoop(rate float64, window time.Duration, submit func(done func()) error) (*OpenLoopResult, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("benchutil: rate must be positive")
	}
	res := &OpenLoopResult{Offered: rate, Latency: &LatencyRecorder{}}
	interval := time.Duration(float64(time.Second) / rate)
	var wg sync.WaitGroup
	var completedInWindow int64
	var mu sync.Mutex

	start := time.Now()
	next := start
	deadline := start.Add(window)
	for time.Now().Before(deadline) {
		if now := time.Now(); now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(interval)
		sent := time.Now()
		wg.Add(1)
		err := submit(func() {
			res.Latency.Record(time.Since(sent))
			mu.Lock()
			if time.Since(start) <= window {
				completedInWindow++
			}
			mu.Unlock()
			wg.Done()
		})
		if err != nil {
			wg.Done()
			return nil, err
		}
	}
	elapsed := time.Since(start)
	wg.Wait()
	mu.Lock()
	res.Completed = int(completedInWindow)
	mu.Unlock()
	res.Throughput = float64(res.Completed) / elapsed.Seconds()
	return res, nil
}

// MeasureRate runs fn repeatedly for the window and returns executions
// per second — the closed-loop throughput probe used by the
// micro-benchmarks.
func MeasureRate(window time.Duration, fn func() error) (float64, error) {
	start := time.Now()
	n := 0
	for time.Since(start) < window {
		if err := fn(); err != nil {
			return 0, err
		}
		n++
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// MeasureThroughput times n sequential submissions plus the settle
// step (typically the engine drain, so every asynchronous workflow the
// submissions started is counted) and returns operations per second
// over the whole run — the closed-workload throughput probe used by the
// partition-scaling benchmark.
func MeasureThroughput(n int, submit func(i int) error, settle func() error) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("benchutil: n must be positive")
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := submit(i); err != nil {
			return 0, err
		}
	}
	if settle != nil {
		if err := settle(); err != nil {
			return 0, err
		}
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// Table accumulates aligned rows for printing paper-style result
// tables; it keeps the raw values alongside the formatted cells so
// results can also be exported machine-readably (sstore-bench -json).
type Table struct {
	header []string
	rows   [][]string
	raw    [][]any
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch v := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	t.raw = append(t.raw, append([]any(nil), values...))
}

// Columns returns the column headers.
func (t *Table) Columns() []string { return t.header }

// Rows returns the rows' raw (unformatted) values, one slice per
// AddRow call.
func (t *Table) Rows() [][]any { return t.raw }

// Print writes the table, aligned, to w.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	fmt.Fprintln(w, line(t.header))
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
