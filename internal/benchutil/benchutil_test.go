package benchutil

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestLatencyRecorderPercentiles(t *testing.T) {
	r := &LatencyRecorder{}
	if r.Percentile(99) != 0 || r.Mean() != 0 {
		t.Error("empty recorder should report zero")
	}
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Errorf("count = %d", r.Count())
	}
	if got := r.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := r.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := r.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := r.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	r := &LatencyRecorder{}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				r.Record(time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if r.Count() != 4000 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestOpenLoopCompletesAll(t *testing.T) {
	var inflight atomic.Int64
	res, err := OpenLoop(2000, 100*time.Millisecond, func(done func()) error {
		inflight.Add(1)
		go func() {
			time.Sleep(time.Millisecond)
			inflight.Add(-1)
			done()
		}()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if inflight.Load() != 0 {
		t.Error("OpenLoop returned before all requests completed")
	}
	// ~200 expected at 2000/s over 100ms; allow generous slack for
	// scheduler jitter.
	if res.Completed < 100 || res.Completed > 260 {
		t.Errorf("completed = %d, want ≈200", res.Completed)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
	if res.Latency.Count() == 0 {
		t.Error("latencies not recorded")
	}
	if _, err := OpenLoop(0, time.Millisecond, func(func()) error { return nil }); err == nil {
		t.Error("zero rate should be rejected")
	}
}

func TestMeasureRate(t *testing.T) {
	n := 0
	rate, err := MeasureRate(50*time.Millisecond, func() error {
		n++
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rate < 300 || rate > 1100 {
		t.Errorf("rate = %v, want ≈1000 for 1ms ops", rate)
	}
	if n == 0 {
		t.Error("fn never ran")
	}
}

func TestTablePrint(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 2.5)
	var sb strings.Builder
	tb.Print(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "2.5") {
		t.Errorf("float row = %q", lines[3])
	}
	// Columns aligned: every line same display width for first column.
	if len(lines[1]) < len("a-much-longer-name") {
		t.Errorf("separator too short: %q", lines[1])
	}
}
