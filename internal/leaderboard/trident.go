package leaderboard

import (
	"fmt"
	"time"

	"sstore/internal/stormlike"
	"sstore/internal/types"
)

// TridentLeaderboard is the Storm+Trident deployment (§4.6.2): two
// logical bolts — validate and maintain-leaderboard — processed as
// Trident transactional batches. All state lives in an external
// key/value store (the Memcached stand-in), so validation is an
// indexed lookup (unlike Spark) but *every* state touch pays a network
// hop; and with no built-in windowing, the sliding trending window is
// managed by hand as a ring buffer in the store (§4.6.3: "the lack of
// built-in windowing functionality curbs its overall performance").
type TridentLeaderboard struct {
	cfg      Config
	trident  *stormlike.Trident
	topology *stormlike.Topology
	// Validation toggles the phone check, mirroring Figure 10's two
	// variants.
	Validation bool
	tops       []Standing
}

// Key layout in the external store.
func phoneKey(p int64) string   { return fmt.Sprintf("phone:%d", p) }
func totalKey(c int64) string   { return fmt.Sprintf("total:%d", c) }
func winSlotKey(i int64) string { return fmt.Sprintf("win:%d", i) }

const winHeadKey = "win:head"

// NewTridentLeaderboard builds the deployment with the given state-hop
// latency (use stormlike.DefaultKVHop for the realistic setting, 0 for
// tests).
func NewTridentLeaderboard(cfg Config, hop time.Duration, validation bool) *TridentLeaderboard {
	cfg = cfg.withDefaults()
	t := &TridentLeaderboard{cfg: cfg, Validation: validation}
	state := stormlike.NewKVStore(hop)
	t.trident = stormlike.NewTrident(state, t.processBatch)
	// The underlying Storm topology (used for its acking machinery in
	// the at-least-once path); Trident drives batches through it.
	t.topology = stormlike.NewTopology()
	return t
}

// ProcessBatch pushes one batch of votes (phone, contestant, ts)
// through the pipeline with exactly-once semantics.
func (t *TridentLeaderboard) ProcessBatch(rows []types.Row) error {
	return t.trident.ProcessBatch(rows)
}

func (t *TridentLeaderboard) processBatch(txid int64, rows []types.Row, s *stormlike.KVStore) error {
	// Validate bolt: one indexed store lookup per vote. Writes are
	// txid-tagged; a key written by *this* txid belongs to an earlier
	// attempt of the same batch and still counts as valid, which is
	// what makes replay exactly-once.
	var valid []types.Row
	seenLocal := make(map[int64]bool)
	for _, vote := range rows {
		phone, cand := vote[0].Int(), vote[1].Int()
		if cand < 1 || cand > int64(t.cfg.Contestants) {
			continue
		}
		if t.Validation {
			if seenLocal[phone] {
				continue // duplicate within this batch
			}
			if _, prevTxid, ok := s.GetWithTxid(phoneKey(phone)); ok && prevTxid != txid {
				continue // voted in an earlier batch
			}
			seenLocal[phone] = true
			s.PutIfNewTxid(txid, phoneKey(phone), types.Row{types.NewInt(cand)})
		}
		valid = append(valid, vote)
	}
	// Leaderboard bolt: aggregate the batch, then apply one
	// idempotent read-modify-write per touched key. (Aggregating
	// first is what real Trident persistentAggregate does; it is also
	// required for txid idempotence.)
	incr := make(map[int64]int64)
	for _, vote := range valid {
		incr[vote[1].Int()]++
	}
	for cand, n := range incr {
		cur, _, ok := s.GetWithTxid(totalKey(cand))
		base := int64(0)
		if ok {
			base = cur[0].Int()
		}
		s.PutIfNewTxid(txid, totalKey(cand), types.Row{types.NewInt(base + n)})
	}
	// Manual sliding window: ring buffer of the last TrendingWindow
	// contestants with a head pointer, all in the external store.
	head := int64(0)
	if h, headTxid, ok := s.GetWithTxid(winHeadKey); ok {
		head = h[0].Int()
		if headTxid == txid {
			// Replay of this batch: the head was already advanced;
			// rewind to the batch's starting position.
			head -= int64(len(valid))
		}
	}
	slots := make(map[int64]int64)
	for i, vote := range valid {
		slots[(head+int64(i))%t.cfg.TrendingWindow] = vote[1].Int()
	}
	for slot, cand := range slots {
		s.PutIfNewTxid(txid, winSlotKey(slot), types.Row{types.NewInt(cand)})
	}
	s.PutIfNewTxid(txid, winHeadKey, types.Row{types.NewInt(head + int64(len(valid)))})
	// Recompute the trending board from the ring buffer (one hop per
	// slot — the price of external, window-less state).
	counts := make(map[int64]int64)
	for i := int64(0); i < t.cfg.TrendingWindow; i++ {
		if v, ok := s.Get(winSlotKey(i)); ok {
			counts[v[0].Int()]++
		}
	}
	rowsOut := make([]types.Row, 0, len(counts))
	for c, n := range counts {
		rowsOut = append(rowsOut, types.Row{types.NewInt(c), types.NewInt(n)})
	}
	t.tops = topK(rowsOut, t.cfg.TopK)
	return nil
}

// Trending returns the current trending leaderboard.
func (t *TridentLeaderboard) Trending() []Standing { return append([]Standing(nil), t.tops...) }

// Total returns a contestant's vote total.
func (t *TridentLeaderboard) Total(contestant int64) int64 {
	if v, ok := t.trident.State().Get(totalKey(contestant)); ok {
		return v[0].Int()
	}
	return 0
}

// StateOps returns the number of external-store operations performed.
func (t *TridentLeaderboard) StateOps() uint64 { return t.trident.State().Ops() }

// Committed returns the number of committed batches.
func (t *TridentLeaderboard) Committed() uint64 { return t.trident.Committed() }
