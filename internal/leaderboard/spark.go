package leaderboard

import (
	"sort"
	"time"

	"sstore/internal/netsim"
	"sstore/internal/sparklike"
	"sstore/internal/types"
)

// SparkLeaderboard is the Spark-Streaming-style deployment (§4.6.1):
// the whole pipeline collapses into a single micro-batch computation —
// Spark has no transactions, so "a Spark batch is the proper analog to
// a transaction". Vote state and totals live in immutable RDDs; the
// trending leaderboard is a time window expressed as a union of
// retained micro-batches; and, critically, there is no index over
// state: with validation enabled, every vote scans all previously
// recorded votes, which is the bottleneck of Figure 10 (left).
type SparkLeaderboard struct {
	ctx *sparklike.Context
	cfg Config
	// votes is the recorded-votes RDD (phone, contestant); scanned
	// per validation.
	votes *sparklike.RDD
	// totals is the per-contestant totals RDD (contestant, total).
	totals *sparklike.RDD
	// Validation toggles the phone-number check — Figure 10 runs the
	// benchmark both with and without it.
	Validation bool
	// ScheduleOverhead models Spark's per-micro-batch job cost
	// (driver scheduling, task serialization, stage dispatch) that a
	// plain in-process loop would otherwise omit. Zero disables it.
	ScheduleOverhead time.Duration

	win  *winState
	tops []Standing
}

// winState retains recent micro-batches of valid votes for the
// time-windowed trending board.
type winState struct {
	retain  int
	history []*sparklike.RDD
}

// Standing is one leaderboard row.
type Standing struct {
	Contestant int64
	Count      int64
}

// NewSparkLeaderboard builds the deployment. retainBatches models the
// 10-second window sliding by one 1-second micro-batch (retain 10).
func NewSparkLeaderboard(cfg Config, parallelism, retainBatches int, validation bool) *SparkLeaderboard {
	ctx := sparklike.NewContext(parallelism)
	return &SparkLeaderboard{
		ctx:        ctx,
		cfg:        cfg.withDefaults(),
		votes:      ctx.Empty(),
		totals:     ctx.Empty(),
		Validation: validation,
		win:        &winState{retain: retainBatches},
	}
}

// ProcessBatch runs one micro-batch of votes (rows: phone, contestant,
// ts) atomically, returning the number of valid votes.
func (s *SparkLeaderboard) ProcessBatch(rows []types.Row) (int, error) {
	netsim.Delay(s.ScheduleOverhead)
	if s.Validation {
		// Batch-local duplicates are removed up front, as a real
		// Spark job would distinct() the batch before joining.
		seen := make(map[int64]bool)
		distinct := rows[:0:0]
		for _, r := range rows {
			if phone := r[0].Int(); !seen[phone] {
				seen[phone] = true
				distinct = append(distinct, r)
			}
		}
		rows = distinct
	}
	input := s.ctx.Parallelize(rows)
	valid := input
	if s.Validation {
		// No index over state: each vote's phone is checked by
		// scanning the whole votes RDD (§4.6.3) — the read-only
		// lookup is safe to run from parallel partitions.
		votes := s.votes
		valid = s.ctx.Filter(input, func(r types.Row) bool {
			return len(votes.Lookup(0, r[0])) == 0
		})
	}
	// Record valid votes: immutability means a new RDD per batch.
	s.votes = s.ctx.Union(s.votes, valid)
	// Update totals state (full copy-with-merge).
	s.totals = sparklike.UpdateStateByKey(s.ctx, s.totals,
		s.ctx.Map(valid, func(r types.Row) types.Row {
			return types.Row{r[1], types.NewInt(1)}
		}),
		0,
		func(existing, incoming types.Row) types.Row {
			if existing == nil {
				return types.Row{incoming[0], types.NewInt(1)}
			}
			return types.Row{existing[0], types.NewInt(existing[1].Int() + 1)}
		})
	// Window: retain this batch, build the trending counts over the
	// union of retained batches.
	s.win.history = append(s.win.history, valid)
	if len(s.win.history) > s.win.retain {
		s.win.history = s.win.history[1:]
	}
	windowed := s.ctx.Empty()
	for _, b := range s.win.history {
		windowed = s.ctx.Union(windowed, b)
	}
	counts := s.ctx.ReduceByKey(
		s.ctx.Map(windowed, func(r types.Row) types.Row {
			return types.Row{r[1], types.NewInt(1)}
		}),
		func(r types.Row) types.Value { return r[0] },
		func(a, b types.Row) types.Row {
			return types.Row{a[0], types.NewInt(a[1].Int() + b[1].Int())}
		})
	s.tops = topK(counts.Collect(), s.cfg.TopK)
	return valid.Count(), nil
}

// Trending returns the current trending leaderboard.
func (s *SparkLeaderboard) Trending() []Standing { return append([]Standing(nil), s.tops...) }

// Totals returns the current per-contestant totals, sorted descending.
func (s *SparkLeaderboard) Totals() []Standing {
	return topK(s.totals.Collect(), s.cfg.Contestants)
}

// VotesRecorded returns the size of the recorded-votes state.
func (s *SparkLeaderboard) VotesRecorded() int { return s.votes.Count() }

func topK(rows []types.Row, k int) []Standing {
	out := make([]Standing, 0, len(rows))
	for _, r := range rows {
		out = append(out, Standing{Contestant: r[0].Int(), Count: r[1].Int()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Contestant < out[j].Contestant
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
