package leaderboard

import (
	"fmt"

	"sstore/internal/pe"
	"sstore/internal/types"
)

// validateProc is SP1 (§1.1): check the contestant exists and is
// active and the phone has not voted, then record the vote and emit it
// downstream. An invalid vote commits without emitting (it is consumed
// and dropped, not an abort — aborting would be wrong: the batch was
// processed).
func validateProc(cfg Config) pe.ProcFunc {
	return func(ctx *pe.ProcCtx) error {
		in, err := ctx.Query("SELECT phone, contestant_id, ts FROM " + StreamVotesIn)
		if err != nil {
			return err
		}
		for _, vote := range in.Rows {
			phone, cand, ts := vote[0], vote[1], vote[2]
			ok, err := ctx.Query("SELECT active FROM contestants WHERE id = ?", cand)
			if err != nil {
				return err
			}
			if len(ok.Rows) == 0 || !ok.Rows[0][0].Bool() {
				continue // unknown or removed contestant
			}
			if !cfg.SkipValidation {
				dup, err := ctx.Query("SELECT phone FROM votes WHERE phone = ?", phone)
				if err != nil {
					return err
				}
				if len(dup.Rows) > 0 {
					continue // this viewer already voted
				}
			}
			if _, err := ctx.Query("INSERT INTO votes VALUES (?, ?, ?)", phone, cand, ts); err != nil {
				return err
			}
			if _, err := ctx.Query("INSERT INTO "+StreamValidVotes+" VALUES (?, ?, ?)", phone, cand, ts); err != nil {
				return err
			}
		}
		return nil
	}
}

// maintainProc is SP2: slide the trending window, bump the contestant
// total, refresh the three leaderboards, and every DeleteEvery valid
// votes emit a removal trigger downstream.
func maintainProc(cfg Config) pe.ProcFunc {
	topK := types.NewInt(int64(cfg.TopK))
	return func(ctx *pe.ProcCtx) error {
		in, err := ctx.Query("SELECT phone, contestant_id, ts FROM " + StreamValidVotes)
		if err != nil {
			return err
		}
		if len(in.Rows) == 0 {
			return nil
		}
		for _, vote := range in.Rows {
			cand, ts := vote[1], vote[2]
			if _, err := ctx.Query("INSERT INTO trending VALUES (?, ?)", cand, ts); err != nil {
				return err
			}
			if _, err := ctx.Query("UPDATE contestants SET total = total + 1 WHERE id = ?", cand); err != nil {
				return err
			}
		}
		if _, err := ctx.Query("UPDATE vote_counter SET n = n + ?", types.NewInt(int64(len(in.Rows)))); err != nil {
			return err
		}
		if err := refreshLeaderboards(ctx, topK); err != nil {
			return err
		}
		// Removal trigger: fires when the running count crosses a
		// DeleteEvery boundary.
		cnt, err := ctx.Query("SELECT n FROM vote_counter")
		if err != nil {
			return err
		}
		n := cnt.Rows[0][0].Int()
		prev := n - int64(len(in.Rows))
		if n/cfg.DeleteEvery > prev/cfg.DeleteEvery {
			if _, err := ctx.Query("INSERT INTO "+StreamRemovals+" VALUES (?)", types.NewInt(n)); err != nil {
				return err
			}
		}
		return nil
	}
}

// refreshLeaderboards rebuilds the three boards from current state.
func refreshLeaderboards(ctx *pe.ProcCtx, topK types.Value) error {
	stmts := []struct{ clear, fill string }{
		{
			"DELETE FROM leaderboard_top",
			"INSERT INTO leaderboard_top SELECT 0, id, total FROM contestants WHERE active = true ORDER BY total DESC, id LIMIT ?",
		},
		{
			"DELETE FROM leaderboard_bottom",
			"INSERT INTO leaderboard_bottom SELECT 0, id, total FROM contestants WHERE active = true ORDER BY total ASC, id LIMIT ?",
		},
		{
			"DELETE FROM leaderboard_trend",
			"INSERT INTO leaderboard_trend SELECT 0, contestant_id, COUNT(*) FROM trending GROUP BY contestant_id ORDER BY COUNT(*) DESC, contestant_id LIMIT ?",
		},
	}
	for _, s := range stmts {
		if _, err := ctx.Query(s.clear); err != nil {
			return err
		}
		if _, err := ctx.Query(s.fill, topK); err != nil {
			return err
		}
	}
	return nil
}

// deleteProc is SP3: remove the active contestant with the fewest
// votes, delete their recorded votes (returning those votes to the
// voters, who may vote again), and refresh the boards. readStream
// selects whether the removal trigger arrives via the removals stream
// (S-Store) or a direct client call (H-Store mode).
func deleteProc(cfg Config, readStream bool) pe.ProcFunc {
	topK := types.NewInt(int64(cfg.TopK))
	return func(ctx *pe.ProcCtx) error {
		if readStream {
			// Consume the trigger tuples (content is informational).
			if _, err := ctx.Query("SELECT n FROM " + StreamRemovals); err != nil {
				return err
			}
		}
		active, err := ctx.Query("SELECT COUNT(*) FROM contestants WHERE active = true")
		if err != nil {
			return err
		}
		if active.Rows[0][0].Int() <= 1 {
			return nil // a single winner remains
		}
		lowest, err := ctx.Query("SELECT id FROM contestants WHERE active = true ORDER BY total ASC, id LIMIT 1")
		if err != nil {
			return err
		}
		if len(lowest.Rows) == 0 {
			return nil
		}
		loser := lowest.Rows[0][0]
		if _, err := ctx.Query("UPDATE contestants SET active = false WHERE id = ?", loser); err != nil {
			return err
		}
		if _, err := ctx.Query("DELETE FROM votes WHERE contestant_id = ?", loser); err != nil {
			return err
		}
		if readStream {
			return refreshLeaderboards(ctx, topK)
		}
		return refreshHLeaderboards(ctx, topK)
	}
}

// Winner returns the final winner once a single active contestant
// remains; ok=false otherwise. Query runs ad-hoc statements (e.g.
// Engine.Query bound to one partition).
func Winner(query func(sql string, params ...types.Value) (*QueryRows, error)) (int64, bool, error) {
	res, err := query("SELECT id FROM contestants WHERE active = true")
	if err != nil {
		return 0, false, err
	}
	if len(res.Rows) != 1 {
		return 0, false, nil
	}
	return res.Rows[0][0].Int(), true, nil
}

// QueryRows is the minimal result shape Winner needs.
type QueryRows struct {
	Rows []types.Row
}

// Validate sanity-checks cross-table invariants after a run: totals
// match recorded votes per active contestant, and the counter is
// consistent. Used by integration tests.
func Validate(query func(sql string, params ...types.Value) (*QueryRows, error)) error {
	res, err := query(`SELECT c.id, c.total, COUNT(*) FROM votes v
		JOIN contestants c ON v.contestant_id = c.id
		WHERE c.active = true GROUP BY c.id, c.total`)
	if err != nil {
		return err
	}
	for _, r := range res.Rows {
		if r[1].Int() != r[2].Int() {
			return fmt.Errorf("leaderboard: contestant %d total %d but %d recorded votes", r[0].Int(), r[1].Int(), r[2].Int())
		}
	}
	return nil
}
