package leaderboard

import (
	"testing"

	"sstore/internal/pe"
	"sstore/internal/stream"
	"sstore/internal/types"
)

func testConfig() Config {
	return Config{Contestants: 4, TrendingWindow: 10, TrendingSlide: 1, DeleteEvery: 25, TopK: 3}
}

// newSStore builds a ready S-Store deployment of the workload.
func newSStore(t *testing.T, cfg Config) *pe.Engine {
	t.Helper()
	eng, err := pe.NewEngine(pe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	seed := func(stmt string) error {
		_, err := eng.AdHoc(0, stmt)
		return err
	}
	if err := SetupSchema(eng, cfg, seed); err != nil {
		t.Fatal(err)
	}
	for _, sp := range Procs(cfg) {
		if err := eng.RegisterProc(sp); err != nil {
			t.Fatal(err)
		}
	}
	w, err := Workflow()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	return eng
}

func adhocQuery(eng *pe.Engine) func(sql string, params ...types.Value) (*QueryRows, error) {
	return func(sql string, params ...types.Value) (*QueryRows, error) {
		res, err := eng.AdHoc(0, sql, params...)
		if err != nil {
			return nil, err
		}
		return &QueryRows{Rows: res.Rows}, nil
	}
}

func TestSStoreWorkflowProcessesVotes(t *testing.T) {
	cfg := testConfig()
	eng := newSStore(t, cfg)
	gen := NewGenerator(1, cfg)
	gen.DupRate = 0 // all valid
	for b := int64(1); b <= 60; b++ {
		if err := eng.IngestSync(StreamVotesIn, &stream.Batch{ID: b, Rows: []types.Row{gen.Next()}}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	// Two removals happened (at 25 and 50): two contestants gone.
	res, _ := eng.AdHoc(0, "SELECT COUNT(*) FROM contestants WHERE active = true")
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("active contestants = %v, want 2", res.Rows[0][0])
	}
	// The counter saw every *valid* vote: votes cast for an already
	// removed contestant fail validation, so the count is at most 60
	// but must have crossed the second removal boundary (50).
	res, _ = eng.AdHoc(0, "SELECT n FROM vote_counter")
	if n := res.Rows[0][0].Int(); n < 50 || n > 60 {
		t.Errorf("counter = %d, want in [50, 60]", n)
	}
	// Leaderboards populated and sized.
	res, _ = eng.AdHoc(0, "SELECT COUNT(*) FROM leaderboard_top")
	if res.Rows[0][0].Int() == 0 || res.Rows[0][0].Int() > int64(cfg.TopK) {
		t.Errorf("top board size = %v", res.Rows[0][0])
	}
	// Cross-table invariant: totals match recorded votes.
	if err := Validate(adhocQuery(eng)); err != nil {
		t.Error(err)
	}
	// Streams drained.
	for _, s := range []string{StreamVotesIn, StreamValidVotes, StreamRemovals} {
		res, _ = eng.AdHoc(0, "SELECT COUNT(*) FROM "+s)
		if res.Rows[0][0].Int() != 0 {
			t.Errorf("stream %s not drained", s)
		}
	}
}

func TestSStoreRejectsDuplicatePhones(t *testing.T) {
	cfg := testConfig()
	eng := newSStore(t, cfg)
	vote := types.Row{types.NewInt(555), types.NewInt(1), types.NewInt(1)}
	for b := int64(1); b <= 3; b++ {
		if err := eng.IngestSync(StreamVotesIn, &stream.Batch{ID: b, Rows: []types.Row{vote.Clone()}}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	res, _ := eng.AdHoc(0, "SELECT COUNT(*) FROM votes")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("votes = %v, want 1 (duplicates rejected)", res.Rows[0][0])
	}
	res, _ = eng.AdHoc(0, "SELECT total FROM contestants WHERE id = 1")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("total = %v, want 1", res.Rows[0][0])
	}
}

func TestSStoreRejectsUnknownContestant(t *testing.T) {
	cfg := testConfig()
	eng := newSStore(t, cfg)
	vote := types.Row{types.NewInt(1), types.NewInt(99), types.NewInt(1)}
	if err := eng.IngestSync(StreamVotesIn, &stream.Batch{ID: 1, Rows: []types.Row{vote}}); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	res, _ := eng.AdHoc(0, "SELECT COUNT(*) FROM votes")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("votes = %v, want 0", res.Rows[0][0])
	}
}

func TestVotesReturnedAfterRemoval(t *testing.T) {
	cfg := testConfig()
	cfg.DeleteEvery = 10
	eng := newSStore(t, cfg)
	// Vote only for contestants 1 and 2; contestant with fewer is
	// removed at vote 10, freeing its voters to vote again.
	b := int64(0)
	vote := func(phone, cand int64) {
		b++
		if err := eng.IngestSync(StreamVotesIn, &stream.Batch{ID: b, Rows: []types.Row{
			{types.NewInt(phone), types.NewInt(cand), types.NewInt(b)},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 7; i++ {
		vote(100+i, 1)
	}
	for i := int64(0); i < 3; i++ {
		vote(200+i, 2)
	}
	eng.Drain()
	// Contestants 3 and 4 (0 votes) tie as lowest; one was removed.
	res, _ := eng.AdHoc(0, "SELECT COUNT(*) FROM contestants WHERE active = true")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("active = %v", res.Rows[0][0])
	}
	// Push the valid-vote count to 30: the third removal takes
	// contestant 2 (3 votes vs contestant 1's pile), freeing phone
	// 200 to revote.
	for i := int64(0); i < 20; i++ {
		vote(300+i, 1)
	}
	eng.Drain()
	res, _ = eng.AdHoc(0, "SELECT active FROM contestants WHERE id = 2")
	if res.Rows[0][0].Bool() {
		t.Fatal("contestant 2 should have been removed by now")
	}
	vote(200, 1) // revote with a previously used phone
	eng.Drain()
	res, _ = eng.AdHoc(0, "SELECT contestant_id FROM votes WHERE phone = 200")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("revote = %v", res.Rows)
	}
	if err := Validate(adhocQuery(eng)); err != nil {
		t.Error(err)
	}
}

func newHStore(t *testing.T, cfg Config) *pe.Engine {
	t.Helper()
	eng, err := pe.NewEngine(pe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	seed := func(stmt string) error {
		_, err := eng.AdHoc(0, stmt)
		return err
	}
	if err := SetupHStoreSchema(eng, cfg, seed); err != nil {
		t.Fatal(err)
	}
	for _, sp := range HStoreProcs(cfg) {
		if err := eng.RegisterProc(sp); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func TestHStoreClientMatchesSStore(t *testing.T) {
	cfg := testConfig()
	sEng := newSStore(t, cfg)
	hEng := newHStore(t, cfg)
	call := func(sp string, params ...types.Value) (*pe.Result, error) {
		return hEng.Call(sp, params)
	}
	gen1 := NewGenerator(7, cfg)
	gen2 := NewGenerator(7, cfg) // same seed → same votes
	for i := int64(1); i <= 80; i++ {
		v1, v2 := gen1.Next(), gen2.Next()
		if err := sEng.IngestSync(StreamVotesIn, &stream.Batch{ID: i, Rows: []types.Row{v1}}); err != nil {
			t.Fatal(err)
		}
		if _, err := HStoreClient(call, cfg, v2); err != nil {
			t.Fatal(err)
		}
	}
	sEng.Drain()
	// Both deployments computed identical vote totals.
	q := "SELECT id, total, active FROM contestants ORDER BY id"
	sRes, _ := sEng.AdHoc(0, q)
	hRes, _ := hEng.AdHoc(0, q)
	for i := range sRes.Rows {
		if !sRes.Rows[i].Equal(hRes.Rows[i]) {
			t.Errorf("contestant %d: s-store %v, h-store %v", i+1, sRes.Rows[i], hRes.Rows[i])
		}
	}
	// Same trending boards.
	q = "SELECT contestant_id, recent FROM leaderboard_trend ORDER BY recent DESC, contestant_id"
	sRes, _ = sEng.AdHoc(0, q)
	hRes, _ = hEng.AdHoc(0, q)
	if len(sRes.Rows) != len(hRes.Rows) {
		t.Fatalf("trend sizes differ: %d vs %d", len(sRes.Rows), len(hRes.Rows))
	}
	for i := range sRes.Rows {
		if !sRes.Rows[i].Equal(hRes.Rows[i]) {
			t.Errorf("trend row %d: %v vs %v", i, sRes.Rows[i], hRes.Rows[i])
		}
	}
}

func TestSparkLeaderboardValidation(t *testing.T) {
	cfg := testConfig()
	s := NewSparkLeaderboard(cfg, 2, 10, true)
	// Batch with an internal duplicate and a repeat across batches.
	n, err := s.ProcessBatch([]types.Row{
		{types.NewInt(1), types.NewInt(1), types.NewInt(1)},
		{types.NewInt(1), types.NewInt(2), types.NewInt(2)}, // dup in batch
		{types.NewInt(2), types.NewInt(1), types.NewInt(3)},
	})
	if err != nil || n != 2 {
		t.Fatalf("valid = %d, %v", n, err)
	}
	n, err = s.ProcessBatch([]types.Row{
		{types.NewInt(2), types.NewInt(3), types.NewInt(4)}, // dup across batches
		{types.NewInt(3), types.NewInt(1), types.NewInt(5)},
	})
	if err != nil || n != 1 {
		t.Fatalf("valid = %d, %v", n, err)
	}
	if s.VotesRecorded() != 3 {
		t.Errorf("recorded = %d", s.VotesRecorded())
	}
	totals := s.Totals()
	if totals[0].Contestant != 1 || totals[0].Count != 3 {
		t.Errorf("totals = %v", totals)
	}
	trend := s.Trending()
	if len(trend) == 0 || trend[0].Contestant != 1 {
		t.Errorf("trending = %v", trend)
	}
}

func TestSparkWindowSlides(t *testing.T) {
	cfg := testConfig()
	s := NewSparkLeaderboard(cfg, 1, 2, false) // window = last 2 batches
	phone := int64(0)
	batchFor := func(cand int64) []types.Row {
		phone++
		return []types.Row{{types.NewInt(phone), types.NewInt(cand), types.NewInt(phone)}}
	}
	s.ProcessBatch(batchFor(1))
	s.ProcessBatch(batchFor(2))
	s.ProcessBatch(batchFor(2))
	// Batch 1 (candidate 1) has fallen out of the window.
	trend := s.Trending()
	if len(trend) != 1 || trend[0].Contestant != 2 || trend[0].Count != 2 {
		t.Errorf("trending = %v", trend)
	}
}

func TestTridentLeaderboard(t *testing.T) {
	cfg := testConfig()
	tr := NewTridentLeaderboard(cfg, 0, true)
	err := tr.ProcessBatch([]types.Row{
		{types.NewInt(1), types.NewInt(1), types.NewInt(1)},
		{types.NewInt(2), types.NewInt(1), types.NewInt(2)},
		{types.NewInt(1), types.NewInt(2), types.NewInt(3)}, // dup phone
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Total(1); got != 2 {
		t.Errorf("total(1) = %d", got)
	}
	if got := tr.Total(2); got != 0 {
		t.Errorf("total(2) = %d (dup should be rejected)", got)
	}
	trend := tr.Trending()
	if len(trend) == 0 || trend[0].Contestant != 1 || trend[0].Count != 2 {
		t.Errorf("trending = %v", trend)
	}
	if tr.StateOps() == 0 {
		t.Error("state ops not counted")
	}
	if tr.Committed() != 1 {
		t.Errorf("committed = %d", tr.Committed())
	}
}

func TestGeneratorDeterminismAndSkew(t *testing.T) {
	cfg := testConfig()
	g1, g2 := NewGenerator(3, cfg), NewGenerator(3, cfg)
	counts := make(map[int64]int)
	for i := 0; i < 1000; i++ {
		v1, v2 := g1.Next(), g2.Next()
		if !v1.Equal(v2) {
			t.Fatal("generator not deterministic")
		}
		counts[v1[1].Int()]++
	}
	if counts[4] <= counts[1] {
		t.Errorf("skew missing: counts = %v", counts)
	}
	for c := range counts {
		if c < 1 || c > 4 {
			t.Errorf("contestant out of range: %d", c)
		}
	}
}
