package leaderboard

import (
	"fmt"

	"sstore/internal/ee"
	"sstore/internal/pe"
	"sstore/internal/types"
)

// The H-Store-style deployment (§4.5): the same application without
// S-Store's streaming features. Streams become plain tables the client
// shepherds data through, the trending window becomes a manually
// managed table with a staging column and a metadata table (the
// paper's Figure 7 description), and the three steps are chained by
// the client — it must wait for each transaction's result before
// submitting the next, because only the client knows what to run next.

// H-Store-mode stored procedure names.
const (
	HSPValidate = "HValidate"
	HSPMaintain = "HMaintain"
	HSPDelete   = "HDeleteLowest"
)

var hstoreDDL = []string{
	// Manual window: ordering column + staging flag, plus the
	// bookkeeping the engine would otherwise keep in table metadata.
	"CREATE TABLE trend_win (seq BIGINT, contestant_id BIGINT, staged BOOLEAN)",
	"CREATE INDEX trend_win_seq ON trend_win (seq)",
	"CREATE TABLE trend_meta (next_seq BIGINT, staged_n BIGINT, active_n BIGINT)",
}

// SetupHStoreSchema creates the shared tables plus the manual-window
// scaffolding (no streams, no window table, no triggers).
func SetupHStoreSchema(eng Engine, cfg Config, seed func(stmt string) error) error {
	cfg = cfg.withDefaults()
	for _, d := range tableDDL(cfg) {
		if err := eng.ExecDDL(d); err != nil {
			return err
		}
	}
	for _, d := range hstoreDDL {
		if err := eng.ExecDDL(d); err != nil {
			return err
		}
	}
	for i := 1; i <= cfg.Contestants; i++ {
		stmt := fmt.Sprintf("INSERT INTO contestants VALUES (%d, 'contestant%d', true, 0)", i, i)
		if err := seed(stmt); err != nil {
			return err
		}
	}
	if err := seed("INSERT INTO vote_counter VALUES (0)"); err != nil {
		return err
	}
	return seed("INSERT INTO trend_meta VALUES (1, 0, 0)")
}

// HStoreProcs returns the client-chained procedures. HValidate returns
// a one-row result (1 valid / 0 invalid); HMaintain returns the
// running counter so the client can decide whether to invoke
// HDeleteLowest — the decision the paper notes forces synchronous
// client round trips.
func HStoreProcs(cfg Config) []*pe.StoredProc {
	cfg = cfg.withDefaults()
	return []*pe.StoredProc{
		{Name: HSPValidate, Func: hValidate()},
		{Name: HSPMaintain, Func: hMaintain(cfg)},
		{Name: HSPDelete, Func: deleteProc(cfg, false)}, // identical logic, no stream read
	}
}

func hValidate() pe.ProcFunc {
	return func(ctx *pe.ProcCtx) error {
		phone, cand := ctx.Params()[0], ctx.Params()[1]
		ts := ctx.Params()[2]
		valid := int64(0)
		ok, err := ctx.Query("SELECT active FROM contestants WHERE id = ?", cand)
		if err != nil {
			return err
		}
		if len(ok.Rows) > 0 && ok.Rows[0][0].Bool() {
			dup, err := ctx.Query("SELECT phone FROM votes WHERE phone = ?", phone)
			if err != nil {
				return err
			}
			if len(dup.Rows) == 0 {
				if _, err := ctx.Query("INSERT INTO votes VALUES (?, ?, ?)", phone, cand, ts); err != nil {
					return err
				}
				valid = 1
			}
		}
		ctx.SetResult(&ee.Result{Columns: []string{"valid"}, Rows: []types.Row{{types.NewInt(valid)}}})
		return nil
	}
}

// hMaintain is the manual-window version of SP2: a "two-staged stored
// procedure to manage the window state using a combination of SQL
// queries and Java logic" (§4.3) — here, SQL plus Go.
func hMaintain(cfg Config) pe.ProcFunc {
	topK := types.NewInt(int64(cfg.TopK))
	size, slide := cfg.TrendingWindow, cfg.TrendingSlide
	return func(ctx *pe.ProcCtx) error {
		cand := ctx.Params()[1]
		// Stage the incoming tuple.
		meta, err := ctx.Query("SELECT next_seq, staged_n, active_n FROM trend_meta")
		if err != nil {
			return err
		}
		seq, stagedN, activeN := meta.Rows[0][0].Int(), meta.Rows[0][1].Int(), meta.Rows[0][2].Int()
		if _, err := ctx.Query("INSERT INTO trend_win VALUES (?, ?, true)", types.NewInt(seq), cand); err != nil {
			return err
		}
		seq++
		stagedN++
		// Slide checks, mirroring native-window semantics.
		if activeN == 0 && stagedN >= size {
			if err := activateOldestStaged(ctx, size); err != nil {
				return err
			}
			stagedN -= size
			activeN = size
		}
		for activeN > 0 && stagedN >= slide {
			if err := expireOldestActive(ctx, slide); err != nil {
				return err
			}
			if err := activateOldestStaged(ctx, slide); err != nil {
				return err
			}
			stagedN -= slide
		}
		if _, err := ctx.Query("UPDATE trend_meta SET next_seq = ?, staged_n = ?, active_n = ?",
			types.NewInt(seq), types.NewInt(stagedN), types.NewInt(activeN)); err != nil {
			return err
		}
		// Totals, counter, leaderboards.
		if _, err := ctx.Query("UPDATE contestants SET total = total + 1 WHERE id = ?", cand); err != nil {
			return err
		}
		if _, err := ctx.Query("UPDATE vote_counter SET n = n + 1"); err != nil {
			return err
		}
		if err := refreshHLeaderboards(ctx, topK); err != nil {
			return err
		}
		cnt, err := ctx.Query("SELECT n FROM vote_counter")
		if err != nil {
			return err
		}
		ctx.SetResult(cnt)
		return nil
	}
}

func activateOldestStaged(ctx *pe.ProcCtx, n int64) error {
	rows, err := ctx.Query("SELECT seq FROM trend_win WHERE staged = true ORDER BY seq LIMIT ?", types.NewInt(n))
	if err != nil {
		return err
	}
	for _, r := range rows.Rows {
		if _, err := ctx.Query("UPDATE trend_win SET staged = false WHERE seq = ?", r[0]); err != nil {
			return err
		}
	}
	return nil
}

func expireOldestActive(ctx *pe.ProcCtx, n int64) error {
	rows, err := ctx.Query("SELECT seq FROM trend_win WHERE staged = false ORDER BY seq LIMIT ?", types.NewInt(n))
	if err != nil {
		return err
	}
	for _, r := range rows.Rows {
		if _, err := ctx.Query("DELETE FROM trend_win WHERE seq = ?", r[0]); err != nil {
			return err
		}
	}
	return nil
}

// refreshHLeaderboards mirrors refreshLeaderboards against the manual
// window.
func refreshHLeaderboards(ctx *pe.ProcCtx, topK types.Value) error {
	stmts := []struct{ clear, fill string }{
		{
			"DELETE FROM leaderboard_top",
			"INSERT INTO leaderboard_top SELECT 0, id, total FROM contestants WHERE active = true ORDER BY total DESC, id LIMIT ?",
		},
		{
			"DELETE FROM leaderboard_bottom",
			"INSERT INTO leaderboard_bottom SELECT 0, id, total FROM contestants WHERE active = true ORDER BY total ASC, id LIMIT ?",
		},
		{
			"DELETE FROM leaderboard_trend",
			"INSERT INTO leaderboard_trend SELECT 0, contestant_id, COUNT(*) FROM trend_win WHERE staged = false GROUP BY contestant_id ORDER BY COUNT(*) DESC, contestant_id LIMIT ?",
		},
	}
	for _, s := range stmts {
		if _, err := ctx.Query(s.clear); err != nil {
			return err
		}
		if _, err := ctx.Query(s.fill, topK); err != nil {
			return err
		}
	}
	return nil
}

// HStoreClient drives one vote through the client-chained pipeline,
// paying a full round trip per step: validate, then (if valid)
// maintain, then (if the counter crossed a boundary) delete. Returns
// whether the vote was valid.
func HStoreClient(call func(sp string, params ...types.Value) (*pe.Result, error), cfg Config, vote types.Row) (bool, error) {
	cfg = cfg.withDefaults()
	res, err := call(HSPValidate, vote...)
	if err != nil {
		return false, err
	}
	if len(res.Rows) == 0 || res.Rows[0][0].Int() == 0 {
		return false, nil
	}
	res, err = call(HSPMaintain, vote...)
	if err != nil {
		return true, err
	}
	n := res.Rows[0][0].Int()
	if n%cfg.DeleteEvery == 0 {
		if _, err := call(HSPDelete); err != nil {
			return true, err
		}
	}
	return true, nil
}
