// Package leaderboard implements the paper's motivating application
// (§1.1, Figure 1): an American-Idol-style voting pipeline with three
// transactional steps — validate and record each vote, maintain
// top/bottom/trending leaderboards over a sliding window, and every
// DeleteEvery votes remove the lowest contestant and return their
// votes. It provides the S-Store deployment (streams, window, PE/EE
// triggers), the client-driven H-Store-style deployment, and the
// Spark-Streaming-like and Trident-like deployments used in §4.5–4.6.
package leaderboard

import (
	"fmt"
	"math/rand"
	"strings"

	"sstore/internal/pe"
	"sstore/internal/types"
	"sstore/internal/workflow"
)

// Config parameterizes the workload.
type Config struct {
	// Contestants is the number of candidates (default 6).
	Contestants int
	// TrendingWindow is the sliding-window size in votes (default
	// 100, per §1.1).
	TrendingWindow int64
	// TrendingSlide is the window slide (default 1).
	TrendingSlide int64
	// DeleteEvery removes the lowest contestant every N valid votes
	// (default 1000).
	DeleteEvery int64
	// TopK is the leaderboard depth (default 3).
	TopK int
	// SkipValidation removes the phone-number check from the
	// validate step — the second benchmark variant of §4.6.3, built
	// "in order to better compare against Spark's strengths".
	SkipValidation bool
}

func (c Config) withDefaults() Config {
	if c.Contestants <= 0 {
		c.Contestants = 6
	}
	if c.TrendingWindow <= 0 {
		c.TrendingWindow = 100
	}
	if c.TrendingSlide <= 0 {
		c.TrendingSlide = 1
	}
	if c.DeleteEvery <= 0 {
		c.DeleteEvery = 1000
	}
	if c.TopK <= 0 {
		c.TopK = 3
	}
	return c
}

// Stored procedure and stream names.
const (
	SPValidate = "Validate"
	SPMaintain = "Maintain"
	SPDelete   = "DeleteLowest"

	StreamVotesIn    = "votes_in"
	StreamValidVotes = "valid_votes"
	StreamRemovals   = "removals_due"
)

// ddl is the shared schema: the three state categories of §2 — public
// tables, streams, and a window (created separately with its owner).
// tableDDL builds the shared table schema. The phone index is unique
// only when validation is on: the no-validation variant of §4.6.3
// records every vote, duplicates included.
func tableDDL(cfg Config) []string {
	phoneIdx := "CREATE UNIQUE INDEX votes_phone ON votes (phone)"
	if cfg.SkipValidation {
		phoneIdx = "CREATE INDEX votes_phone ON votes (phone)"
	}
	return []string{
		"CREATE TABLE contestants (id BIGINT PRIMARY KEY, name VARCHAR, active BOOLEAN, total BIGINT)",
		"CREATE TABLE votes (phone BIGINT, contestant_id BIGINT, ts BIGINT)",
		phoneIdx,
		"CREATE INDEX votes_by_cand ON votes (contestant_id)",
		"CREATE TABLE leaderboard_top (rank BIGINT, contestant_id BIGINT, total BIGINT)",
		"CREATE TABLE leaderboard_bottom (rank BIGINT, contestant_id BIGINT, total BIGINT)",
		"CREATE TABLE leaderboard_trend (rank BIGINT, contestant_id BIGINT, recent BIGINT)",
		"CREATE TABLE vote_counter (n BIGINT)",
	}
}

// streamDDL is the streaming-state half of the schema (S-Store only).
var streamDDL = []string{
	"CREATE STREAM " + StreamVotesIn + " (phone BIGINT, contestant_id BIGINT, ts BIGINT)",
	"CREATE STREAM " + StreamValidVotes + " (phone BIGINT, contestant_id BIGINT, ts BIGINT)",
	"CREATE STREAM " + StreamRemovals + " (n BIGINT)",
}

// Engine abstracts the setup surface shared by *pe.Engine and the
// public facade; it keeps this package usable from both benches and
// examples.
type Engine interface {
	ExecDDL(ddl string) error
	ExecDDLOwned(owner, ddl string) error
}

// SetupSchema creates tables, streams, the trending window (owned by
// SPMaintain), and seeds contestants and the counter. populate runs a
// statement on every partition.
func SetupSchema(eng Engine, cfg Config, seed func(stmt string) error) error {
	return setupSchema(eng, cfg, seed, true)
}

// SetupSchemaNoPhoneIndex is SetupSchema without any index on
// votes.phone, so validation degrades to a table scan; used by the
// index-vs-scan ablation.
func SetupSchemaNoPhoneIndex(eng Engine, cfg Config, seed func(stmt string) error) error {
	return setupSchema(eng, cfg, seed, false)
}

func setupSchema(eng Engine, cfg Config, seed func(stmt string) error, phoneIndex bool) error {
	cfg = cfg.withDefaults()
	for _, d := range append(tableDDL(cfg), streamDDL...) {
		if !phoneIndex && strings.Contains(d, "votes_phone") {
			continue
		}
		if err := eng.ExecDDL(d); err != nil {
			return err
		}
	}
	win := fmt.Sprintf(
		"CREATE WINDOW trending (contestant_id BIGINT, ts BIGINT) SIZE %d SLIDE %d",
		cfg.TrendingWindow, cfg.TrendingSlide,
	)
	if err := eng.ExecDDLOwned(SPMaintain, win); err != nil {
		return err
	}
	for i := 1; i <= cfg.Contestants; i++ {
		stmt := fmt.Sprintf("INSERT INTO contestants VALUES (%d, 'contestant%d', true, 0)", i, i)
		if err := seed(stmt); err != nil {
			return err
		}
	}
	return seed("INSERT INTO vote_counter VALUES (0)")
}

// Generator produces a stream of votes: mostly fresh phone numbers
// with a configurable duplicate rate (invalid re-votes), contestant
// choice Zipf-ish skewed so leaderboards are non-trivial.
type Generator struct {
	rng         *rand.Rand
	cfg         Config
	nextPhone   int64
	DupRate     float64 // probability a vote reuses a seen phone
	clockMicros int64
}

// NewGenerator creates a deterministic vote generator.
func NewGenerator(seed int64, cfg Config) *Generator {
	return &Generator{
		rng:       rand.New(rand.NewSource(seed)),
		cfg:       cfg.withDefaults(),
		nextPhone: 1_000_000,
		DupRate:   0.02,
	}
}

// Next returns one vote row (phone, contestant_id, ts).
func (g *Generator) Next() types.Row {
	var phone int64
	if g.rng.Float64() < g.DupRate && g.nextPhone > 1_000_000 {
		phone = 1_000_000 + g.rng.Int63n(g.nextPhone-1_000_000)
	} else {
		phone = g.nextPhone
		g.nextPhone++
	}
	// Skew: contestant i gets weight proportional to i+1.
	total := g.cfg.Contestants * (g.cfg.Contestants + 1) / 2
	pick := g.rng.Intn(total)
	cand := 1
	for w := 1; pick >= w; w++ {
		pick -= w
		cand++
	}
	g.clockMicros += 1000
	return types.Row{types.NewInt(phone), types.NewInt(int64(cand)), types.NewInt(g.clockMicros)}
}

// Workflow returns the three-step DAG of Figure 1.
func Workflow() (*workflow.Workflow, error) {
	return workflow.New("leaderboard", []workflow.Node{
		{SP: SPValidate, Input: StreamVotesIn, Outputs: []string{StreamValidVotes}},
		{SP: SPMaintain, Input: StreamValidVotes, Outputs: []string{StreamRemovals}},
		{SP: SPDelete, Input: StreamRemovals},
	})
}

// Procs returns the three stored procedures parameterized by cfg.
func Procs(cfg Config) []*pe.StoredProc {
	cfg = cfg.withDefaults()
	return []*pe.StoredProc{
		{Name: SPValidate, Func: validateProc(cfg)},
		{Name: SPMaintain, Func: maintainProc(cfg)},
		{Name: SPDelete, Func: deleteProc(cfg, true)},
	}
}
