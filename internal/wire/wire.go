// Package wire is the client↔server protocol of the network front
// door: a length-prefixed binary framing over TCP that reuses the
// repository's stable value encoding (internal/types, the same codec
// backing the command log and snapshots). The protocol is
// request/response with client-assigned request IDs, so a connection
// can pipeline many requests and receive their responses out of order
// — an ingest acknowledgement arrives when its border transaction
// commits, not when the server happens to read the next request.
//
// Handshake: each side writes a 5-byte hello — the 4-byte protocol
// magic "SSTR" plus a version byte — as its first bytes on a new
// connection, before any frame. A peer whose hello does not match is
// rejected with a descriptive error; the magic keeps frame parsing
// away from strangers probing the port, and the version byte lets
// mixed-version clusters fail fast instead of desynchronizing.
//
// Framing:
//
//	hello    := "SSTR", version:u8
//	frame    := u32-LE payload-len, payload
//	request  := uvarint req-id, op:u8, body
//	response := uvarint req-id, op:u8, status:u8, body
//
// Request bodies:
//
//	call        := uvarint sp-len, sp, row(params)
//	ingest      := uvarint stream-len, stream, varint batch-id,
//	               uvarint row-count, row*
//	query       := uvarint partition, uvarint sql-len, sql, row(params)
//	stats       := (empty)
//	drain       := (empty)
//	handoff     := uvarint from, uvarint target, flags:u8 (bit0=front),
//	               uvarint stream-len, stream, varint batch-id,
//	               uvarint row-count, row*
//	handoffpull := uvarint node-id
//
// Response bodies:
//
//	ok+call      := uvarint col-count, (uvarint len, name)*,
//	                uvarint row-count, row*, varint last-batch
//	ok+query     := uvarint col-count, (uvarint len, name)*,
//	                uvarint row-count, row*
//	ok+ingest    := varint batch-id
//	ok+stats     := uvarint field-count, uvarint* (see Stats)
//	ok+drain     := (empty)
//	ok+handoff   := varint batch-id, dup:u8
//	ok+handoffpull := (empty)
//	error        := uvarint msg-len, msg
//	overloaded   := uvarint partition, uvarint depth,
//	                uvarint retry-after-micros
//
// OpHandoff is the inter-node transport of a relocated interior batch
// (DESIGN.md §13): the sending node's committing TE produced a batch
// whose routed partition lives on the receiving node. The body carries
// the batch rows plus the dedup identity (target partition, stream,
// batch ID) so the receiver's exactly-once ledger suppresses duplicate
// deliveries after a reconnect or crash replay; the OK response is the
// receiver's commit acknowledgement (dup=1 when the ledger had already
// admitted the batch). OpHandoffPull is sent by a restarted node to
// each peer: "re-deliver every hand-off addressed to me that you still
// hold unacknowledged".
//
// The overloaded status carries the engine's backpressure verdict
// across the wire: the request was rejected without side effects (an
// ingested batch's exactly-once admission is released server-side), so
// the client may retry the identical request after the hinted backoff,
// as long as it retries before admitting later batch IDs on the same
// stream and partition (see client.IngestRetry).
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"sstore/internal/types"
)

// Ops identify the request kind; echoed in the response so responses
// decode without tracking per-request context.
const (
	OpCall uint8 = iota + 1
	OpIngest
	OpStats
	OpDrain
	// OpQuery runs a read-only statement against a consistent snapshot
	// of one partition, served off the partition loop (the snapshot
	// read path): it never occupies a scheduler slot, so read traffic
	// does not steal streaming throughput and is never rejected by
	// queue-depth backpressure.
	OpQuery
	// OpHandoff moves a relocated interior batch to the node owning its
	// routed partition; the response acknowledges the receiver's commit.
	OpHandoff
	// OpHandoffPull asks a peer to re-deliver every unacknowledged
	// hand-off addressed to the requesting node (recovery re-request).
	OpHandoffPull
)

// Handshake: the protocol magic and version exchanged as each side's
// first bytes on a new connection.
const (
	// Magic opens every connection; four bytes so a misdirected HTTP or
	// TLS client fails immediately instead of being parsed as a frame.
	Magic = "SSTR"
	// ProtocolVersion is bumped on any incompatible framing or op
	// change; peers reject a mismatch at connection open.
	ProtocolVersion uint8 = 1
	// HelloSize is the handshake's wire size: magic + version byte.
	HelloSize = len(Magic) + 1
)

// AppendHello appends the protocol hello (magic + version).
func AppendHello(buf []byte) []byte {
	return append(append(buf, Magic...), ProtocolVersion)
}

// ReadHello consumes and validates a peer's hello, returning a
// descriptive error on a foreign protocol or version mismatch.
func ReadHello(br *bufio.Reader) error {
	var hello [5]byte
	_ = hello[HelloSize-1]
	for i := 0; i < HelloSize; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("wire: handshake: %w", err)
		}
		hello[i] = b
	}
	if string(hello[:len(Magic)]) != Magic {
		return fmt.Errorf("wire: handshake: bad magic %q (want %q): peer is not speaking the sstore protocol", hello[:len(Magic)], Magic)
	}
	if v := hello[len(Magic)]; v != ProtocolVersion {
		return fmt.Errorf("wire: handshake: protocol version %d, want %d: mixed-version peers cannot interoperate", v, ProtocolVersion)
	}
	return nil
}

// Response statuses.
const (
	StatusOK uint8 = iota
	StatusErr
	StatusOverloaded
)

// MaxFrame bounds a frame's payload; a peer announcing more is treated
// as a protocol error rather than an allocation request.
const MaxFrame = 64 << 20

// Stats mirrors the engine's counter snapshot across the wire. Fields
// are encoded as a counted list of uvarints, so decoders tolerate
// servers with more (or fewer) counters.
type Stats struct {
	Executed    uint64
	Aborted     uint64
	LogAppends  uint64
	LogSyncs    uint64
	ClientTrips uint64
	EECrossings uint64
	Overloaded  uint64
	// Cross-node hand-off counters (zero on single-node deployments).
	// HandoffsPending counts sent batches not yet acknowledged by their
	// receiving node — the cluster-drain signal: a cluster is quiescent
	// when every node reports Drain complete and zero pending.
	HandoffsSent    uint64
	HandoffsRecv    uint64
	HandoffsDup     uint64
	HandoffsPending uint64
}

// Request is one decoded client request.
type Request struct {
	ID uint64
	Op uint8

	// OpCall
	SP     string
	Params types.Row

	// OpIngest
	Stream  string
	BatchID int64
	Rows    []types.Row

	// OpQuery; OpHandoff reuses Partition as the target partition
	Partition int
	SQL       string // params travel in Params

	// OpHandoff: the sending partition and front-of-queue flag (set on
	// recovery re-fire, which must outrank normally queued work). The
	// batch identity and rows travel in Stream/BatchID/Rows.
	From  int
	Front bool

	// OpHandoffPull: the requesting node's ID.
	Node int
}

// Response is one decoded server response.
type Response struct {
	ID     uint64
	Op     uint8
	Status uint8

	// StatusOK, OpCall
	Columns         []string
	Rows            []types.Row
	LastInsertBatch int64

	// StatusOK, OpIngest (and OpHandoff, which adds Duplicate)
	BatchID int64

	// StatusOK, OpHandoff: the receiver's dedup ledger had already
	// admitted this batch — the delivery was a replay, applied zero
	// times more (exactly-once held).
	Duplicate bool

	// StatusOK, OpStats
	Stats Stats

	// StatusErr
	Msg string

	// StatusOverloaded
	Partition        int
	Depth            int
	RetryAfterMicros uint64
}

// AppendRequest appends r's framed encoding to buf.
func AppendRequest(buf []byte, r *Request) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	p := len(buf)
	buf = binary.AppendUvarint(buf, r.ID)
	buf = append(buf, r.Op)
	switch r.Op {
	case OpCall:
		buf = appendString(buf, r.SP)
		buf = types.EncodeRow(buf, r.Params)
	case OpIngest:
		buf = appendString(buf, r.Stream)
		buf = binary.AppendVarint(buf, r.BatchID)
		buf = binary.AppendUvarint(buf, uint64(len(r.Rows)))
		for _, row := range r.Rows {
			buf = types.EncodeRow(buf, row)
		}
	case OpQuery:
		buf = binary.AppendUvarint(buf, uint64(r.Partition))
		buf = appendString(buf, r.SQL)
		buf = types.EncodeRow(buf, r.Params)
	case OpHandoff:
		buf = binary.AppendUvarint(buf, uint64(r.From))
		buf = binary.AppendUvarint(buf, uint64(r.Partition))
		var flags uint8
		if r.Front {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = appendString(buf, r.Stream)
		buf = binary.AppendVarint(buf, r.BatchID)
		buf = binary.AppendUvarint(buf, uint64(len(r.Rows)))
		for _, row := range r.Rows {
			buf = types.EncodeRow(buf, row)
		}
	case OpHandoffPull:
		buf = binary.AppendUvarint(buf, uint64(r.Node))
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-p))
	return buf
}

// AppendResponse appends r's framed encoding to buf.
func AppendResponse(buf []byte, r *Response) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	p := len(buf)
	buf = binary.AppendUvarint(buf, r.ID)
	buf = append(buf, r.Op, r.Status)
	switch r.Status {
	case StatusErr:
		buf = appendString(buf, r.Msg)
	case StatusOverloaded:
		buf = binary.AppendUvarint(buf, uint64(r.Partition))
		buf = binary.AppendUvarint(buf, uint64(r.Depth))
		buf = binary.AppendUvarint(buf, r.RetryAfterMicros)
	case StatusOK:
		switch r.Op {
		case OpCall:
			buf = binary.AppendUvarint(buf, uint64(len(r.Columns)))
			for _, c := range r.Columns {
				buf = appendString(buf, c)
			}
			buf = binary.AppendUvarint(buf, uint64(len(r.Rows)))
			for _, row := range r.Rows {
				buf = types.EncodeRow(buf, row)
			}
			buf = binary.AppendVarint(buf, r.LastInsertBatch)
		case OpQuery:
			buf = binary.AppendUvarint(buf, uint64(len(r.Columns)))
			for _, c := range r.Columns {
				buf = appendString(buf, c)
			}
			buf = binary.AppendUvarint(buf, uint64(len(r.Rows)))
			for _, row := range r.Rows {
				buf = types.EncodeRow(buf, row)
			}
		case OpIngest:
			buf = binary.AppendVarint(buf, r.BatchID)
		case OpHandoff:
			buf = binary.AppendVarint(buf, r.BatchID)
			var dup uint8
			if r.Duplicate {
				dup = 1
			}
			buf = append(buf, dup)
		case OpStats:
			fields := []uint64{
				r.Stats.Executed, r.Stats.Aborted,
				r.Stats.LogAppends, r.Stats.LogSyncs,
				r.Stats.ClientTrips, r.Stats.EECrossings,
				r.Stats.Overloaded,
				r.Stats.HandoffsSent, r.Stats.HandoffsRecv,
				r.Stats.HandoffsDup, r.Stats.HandoffsPending,
			}
			buf = binary.AppendUvarint(buf, uint64(len(fields)))
			for _, f := range fields {
				buf = binary.AppendUvarint(buf, f)
			}
		}
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-p))
	return buf
}

// ReadFrame reads one frame's payload into a fresh buffer. io.EOF on a
// clean connection close between frames; io.ErrUnexpectedEOF mid-frame.
// Connection loops should prefer ReadFrameBuf with a per-connection
// scratch buffer.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	payload, err := ReadFrameBuf(br, nil)
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// ReadFrameBuf reads one frame's payload into scratch, growing it only
// when the frame exceeds its capacity, and returns the (possibly
// re-grown) buffer sliced to the payload. The payload is valid until
// the next call reusing the same buffer; DecodeRequest and
// DecodeResponse copy everything they keep out of the payload, so a
// connection loop can thread one buffer through every frame and stop
// allocating once it reaches the connection's peak frame size.
//
//sstore:nomalloc
func ReadFrameBuf(br *bufio.Reader, scratch []byte) ([]byte, error) {
	// Header bytes come via ReadByte: handing a stack array to
	// io.ReadFull would make it escape through the io.Reader interface
	// and cost an allocation per frame.
	var hdr [4]byte
	for i := range hdr {
		b, err := br.ReadByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return scratch[:0], err
		}
		hdr[i] = b
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		//lint:allow hotalloc -- protocol error; the connection is about to die
		return scratch[:0], fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if uint64(cap(scratch)) < uint64(n) {
		//lint:allow hotalloc -- grow-only; amortized zero once scratch reaches the peak frame size
		scratch = make([]byte, n)
	}
	payload := scratch[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return scratch[:0], err
	}
	return payload, nil
}

// DecodeRequest decodes one request payload.
func DecodeRequest(payload []byte) (*Request, error) {
	d := decoder{buf: payload}
	r := &Request{}
	r.ID = d.uvarint()
	r.Op = d.byte()
	switch r.Op {
	case OpCall:
		r.SP = d.string()
		r.Params = d.row()
	case OpIngest:
		r.Stream = d.string()
		r.BatchID = d.varint()
		n := d.uvarint()
		if d.err == nil && n > uint64(len(payload)) {
			// More rows announced than the payload could possibly
			// hold: corrupt; refuse before allocating.
			d.fail("row count %d exceeds frame", n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			r.Rows = append(r.Rows, d.row())
		}
	case OpQuery:
		r.Partition = int(d.uvarint())
		r.SQL = d.string()
		r.Params = d.row()
	case OpHandoff:
		r.From = int(d.uvarint())
		r.Partition = int(d.uvarint())
		r.Front = d.byte()&1 != 0
		r.Stream = d.string()
		r.BatchID = d.varint()
		n := d.uvarint()
		if d.err == nil && n > uint64(len(payload)) {
			d.fail("row count %d exceeds frame", n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			r.Rows = append(r.Rows, d.row())
		}
	case OpHandoffPull:
		r.Node = int(d.uvarint())
	case OpStats, OpDrain:
	default:
		if d.err == nil {
			d.fail("unknown op %d", r.Op)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: request: %w", d.err)
	}
	return r, nil
}

// DecodeResponse decodes one response payload.
func DecodeResponse(payload []byte) (*Response, error) {
	d := decoder{buf: payload}
	r := &Response{}
	r.ID = d.uvarint()
	r.Op = d.byte()
	r.Status = d.byte()
	switch r.Status {
	case StatusErr:
		r.Msg = d.string()
	case StatusOverloaded:
		r.Partition = int(d.uvarint())
		r.Depth = int(d.uvarint())
		r.RetryAfterMicros = d.uvarint()
	case StatusOK:
		switch r.Op {
		case OpCall:
			ncols := d.uvarint()
			if d.err == nil && ncols > uint64(len(payload)) {
				d.fail("column count %d exceeds frame", ncols)
			}
			for i := uint64(0); i < ncols && d.err == nil; i++ {
				r.Columns = append(r.Columns, d.string())
			}
			nrows := d.uvarint()
			if d.err == nil && nrows > uint64(len(payload)) {
				d.fail("row count %d exceeds frame", nrows)
			}
			for i := uint64(0); i < nrows && d.err == nil; i++ {
				r.Rows = append(r.Rows, d.row())
			}
			r.LastInsertBatch = d.varint()
		case OpQuery:
			ncols := d.uvarint()
			if d.err == nil && ncols > uint64(len(payload)) {
				d.fail("column count %d exceeds frame", ncols)
			}
			for i := uint64(0); i < ncols && d.err == nil; i++ {
				r.Columns = append(r.Columns, d.string())
			}
			nrows := d.uvarint()
			if d.err == nil && nrows > uint64(len(payload)) {
				d.fail("row count %d exceeds frame", nrows)
			}
			for i := uint64(0); i < nrows && d.err == nil; i++ {
				r.Rows = append(r.Rows, d.row())
			}
		case OpIngest:
			r.BatchID = d.varint()
		case OpHandoff:
			r.BatchID = d.varint()
			r.Duplicate = d.byte()&1 != 0
		case OpStats:
			n := d.uvarint()
			fields := []*uint64{
				&r.Stats.Executed, &r.Stats.Aborted,
				&r.Stats.LogAppends, &r.Stats.LogSyncs,
				&r.Stats.ClientTrips, &r.Stats.EECrossings,
				&r.Stats.Overloaded,
				&r.Stats.HandoffsSent, &r.Stats.HandoffsRecv,
				&r.Stats.HandoffsDup, &r.Stats.HandoffsPending,
			}
			for i := uint64(0); i < n && d.err == nil; i++ {
				v := d.uvarint()
				if i < uint64(len(fields)) {
					*fields[i] = v
				}
			}
		}
	default:
		if d.err == nil {
			d.fail("unknown status %d", r.Status)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: response: %w", d.err)
	}
	return r, nil
}

// appendString is on the encode hot path of every request and response.
//
//sstore:nomalloc
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder is a cursor over one payload; the first failure sticks and
// every later read is a no-op, so call sites stay linear.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

//sstore:nomalloc
func (d *decoder) byte() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		//lint:allow hotalloc -- sticky-error construction; runs at most once per payload
		d.fail("truncated")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

//sstore:nomalloc
func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		//lint:allow hotalloc -- sticky-error construction; runs at most once per payload
		d.fail("truncated uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

//sstore:nomalloc
func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		//lint:allow hotalloc -- sticky-error construction; runs at most once per payload
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail("truncated string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) row() types.Row {
	if d.err != nil {
		return nil
	}
	row, n, err := types.DecodeRow(d.buf)
	if err != nil {
		d.fail("row: %v", err)
		return nil
	}
	d.buf = d.buf[n:]
	return row
}
