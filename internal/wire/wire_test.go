package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"sstore/internal/types"
)

// roundTripReq frames r, reads the frame back, and decodes it.
func roundTripReq(t *testing.T, r *Request) *Request {
	t.Helper()
	buf := AppendRequest(nil, r)
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return got
}

func roundTripResp(t *testing.T, r *Response) *Response {
	t.Helper()
	buf := AppendResponse(nil, r)
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	return got
}

func TestCallRequestRoundTrip(t *testing.T) {
	in := &Request{
		ID:     42,
		Op:     OpCall,
		SP:     "Report",
		Params: types.Row{types.NewInt(7), types.NewText("x"), types.Null},
	}
	got := roundTripReq(t, in)
	if got.ID != in.ID || got.Op != in.Op || got.SP != in.SP || !got.Params.Equal(in.Params) {
		t.Errorf("round trip mangled request: %+v → %+v", in, got)
	}
}

func TestIngestRequestRoundTrip(t *testing.T) {
	in := &Request{
		ID:      1,
		Op:      OpIngest,
		Stream:  "raw_readings",
		BatchID: 99,
		Rows: []types.Row{
			{types.NewInt(1), types.NewInt(20)},
			{types.NewInt(1), types.NewFloat(2.5)},
		},
	}
	got := roundTripReq(t, in)
	if got.Stream != in.Stream || got.BatchID != in.BatchID || len(got.Rows) != 2 {
		t.Fatalf("round trip mangled request: %+v → %+v", in, got)
	}
	for i := range in.Rows {
		if !got.Rows[i].Equal(in.Rows[i]) {
			t.Errorf("row %d: %v → %v", i, in.Rows[i], got.Rows[i])
		}
	}
}

func TestEmptyBodyRequests(t *testing.T) {
	for _, op := range []uint8{OpStats, OpDrain} {
		got := roundTripReq(t, &Request{ID: 5, Op: op})
		if got.ID != 5 || got.Op != op {
			t.Errorf("op %d: got %+v", op, got)
		}
	}
}

func TestCallResponseRoundTrip(t *testing.T) {
	in := &Response{
		ID:      42,
		Op:      OpCall,
		Status:  StatusOK,
		Columns: []string{"sensor", "avg"},
		Rows: []types.Row{
			{types.NewInt(1), types.NewInt(21)},
		},
		LastInsertBatch: 7,
	}
	got := roundTripResp(t, in)
	if got.ID != in.ID || got.Status != StatusOK || len(got.Columns) != 2 ||
		got.Columns[1] != "avg" || len(got.Rows) != 1 || !got.Rows[0].Equal(in.Rows[0]) ||
		got.LastInsertBatch != 7 {
		t.Errorf("round trip mangled response: %+v → %+v", in, got)
	}
}

func TestErrorAndOverloadedResponses(t *testing.T) {
	e := roundTripResp(t, &Response{ID: 9, Op: OpIngest, Status: StatusErr, Msg: "boom"})
	if e.Status != StatusErr || e.Msg != "boom" {
		t.Errorf("error response: %+v", e)
	}
	o := roundTripResp(t, &Response{
		ID: 10, Op: OpIngest, Status: StatusOverloaded,
		Partition: 3, Depth: 128, RetryAfterMicros: 2500,
	})
	if o.Partition != 3 || o.Depth != 128 || o.RetryAfterMicros != 2500 {
		t.Errorf("overloaded response: %+v", o)
	}
}

func TestStatsResponseRoundTrip(t *testing.T) {
	in := &Response{
		ID: 2, Op: OpStats, Status: StatusOK,
		Stats: Stats{Executed: 100, Aborted: 3, LogAppends: 50, Overloaded: 7},
	}
	got := roundTripResp(t, in)
	if got.Stats != in.Stats {
		t.Errorf("stats: %+v → %+v", in.Stats, got.Stats)
	}
}

func TestPipelinedFrames(t *testing.T) {
	var buf []byte
	for i := 1; i <= 3; i++ {
		buf = AppendRequest(buf, &Request{ID: uint64(i), Op: OpDrain})
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	for i := 1; i <= 3; i++ {
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if req.ID != uint64(i) {
			t.Errorf("frame %d: id %d", i, req.ID)
		}
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Errorf("after last frame: %v, want io.EOF", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	buf := AppendRequest(nil, &Request{ID: 1, Op: OpCall, SP: "X"})
	_, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf[:len(buf)-2])))
	if err != io.ErrUnexpectedEOF {
		t.Errorf("truncated frame: %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr))); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestCorruptPayloadRejected(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 99}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := DecodeRequest([]byte{}); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := DecodeResponse([]byte{1, byte(OpCall), 77}); err == nil {
		t.Error("unknown status accepted")
	}
}

func TestQueryRequestRoundTrip(t *testing.T) {
	in := &Request{
		ID:        9,
		Op:        OpQuery,
		Partition: 3,
		SQL:       "SELECT COUNT(*) FROM w WHERE v = ?",
		Params:    types.Row{types.NewInt(7)},
	}
	got := roundTripReq(t, in)
	if got.ID != in.ID || got.Op != in.Op || got.Partition != in.Partition ||
		got.SQL != in.SQL || !got.Params.Equal(in.Params) {
		t.Errorf("round trip mangled query request: %+v → %+v", in, got)
	}
}

func TestQueryResponseRoundTrip(t *testing.T) {
	in := &Response{
		ID:      9,
		Op:      OpQuery,
		Status:  StatusOK,
		Columns: []string{"count", "sum"},
		Rows:    []types.Row{{types.NewInt(4), types.NewFloat(2.5)}},
	}
	got := roundTripResp(t, in)
	if got.ID != in.ID || got.Op != in.Op || got.Status != in.Status {
		t.Errorf("header mangled: %+v", got)
	}
	if len(got.Columns) != 2 || got.Columns[0] != "count" || got.Columns[1] != "sum" {
		t.Errorf("columns mangled: %v", got.Columns)
	}
	if len(got.Rows) != 1 || !got.Rows[0].Equal(in.Rows[0]) {
		t.Errorf("rows mangled: %v", got.Rows)
	}
}

func TestQueryErrorResponseRoundTrip(t *testing.T) {
	in := &Response{ID: 2, Op: OpQuery, Status: StatusErr, Msg: "ee: statement is not read-only"}
	got := roundTripResp(t, in)
	if got.Status != StatusErr || got.Msg != in.Msg {
		t.Errorf("error response mangled: %+v", got)
	}
}

func TestHandoffRequestRoundTrip(t *testing.T) {
	in := &Request{
		ID:        77,
		Op:        OpHandoff,
		From:      1,
		Partition: 5,
		Front:     true,
		Stream:    "scale_jobs",
		BatchID:   1234,
		Rows: []types.Row{
			{types.NewInt(5), types.NewInt(10)},
			{types.NewInt(5), types.NewInt(11)},
		},
	}
	got := roundTripReq(t, in)
	if got.ID != in.ID || got.Op != in.Op || got.From != 1 || got.Partition != 5 ||
		!got.Front || got.Stream != in.Stream || got.BatchID != 1234 || len(got.Rows) != 2 {
		t.Fatalf("round trip mangled handoff: %+v → %+v", in, got)
	}
	for i := range in.Rows {
		if !got.Rows[i].Equal(in.Rows[i]) {
			t.Errorf("row %d: %v → %v", i, in.Rows[i], got.Rows[i])
		}
	}
	// Front=false must round-trip too (flag byte, not presence).
	in.Front = false
	if got := roundTripReq(t, in); got.Front {
		t.Error("Front=false came back true")
	}
}

func TestHandoffResponseRoundTrip(t *testing.T) {
	ok := roundTripResp(t, &Response{ID: 77, Op: OpHandoff, Status: StatusOK, BatchID: 1234})
	if ok.BatchID != 1234 || ok.Duplicate {
		t.Errorf("handoff ok: %+v", ok)
	}
	dup := roundTripResp(t, &Response{ID: 78, Op: OpHandoff, Status: StatusOK, BatchID: 1234, Duplicate: true})
	if !dup.Duplicate {
		t.Errorf("handoff dup flag lost: %+v", dup)
	}
}

func TestHandoffPullRoundTrip(t *testing.T) {
	got := roundTripReq(t, &Request{ID: 3, Op: OpHandoffPull, Node: 2})
	if got.Op != OpHandoffPull || got.Node != 2 {
		t.Errorf("handoff pull: %+v", got)
	}
	ok := roundTripResp(t, &Response{ID: 3, Op: OpHandoffPull, Status: StatusOK})
	if ok.Status != StatusOK {
		t.Errorf("handoff pull response: %+v", ok)
	}
}

func TestStatsHandoffFieldsRoundTrip(t *testing.T) {
	in := &Response{
		ID: 2, Op: OpStats, Status: StatusOK,
		Stats: Stats{Executed: 1, HandoffsSent: 10, HandoffsRecv: 9, HandoffsDup: 2, HandoffsPending: 1},
	}
	got := roundTripResp(t, in)
	if got.Stats != in.Stats {
		t.Errorf("stats: %+v → %+v", in.Stats, got.Stats)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	buf := AppendHello(nil)
	if len(buf) != HelloSize {
		t.Fatalf("hello size %d, want %d", len(buf), HelloSize)
	}
	if err := ReadHello(bufio.NewReader(bytes.NewReader(buf))); err != nil {
		t.Fatalf("ReadHello: %v", err)
	}
}

func TestHelloRejectsBadMagic(t *testing.T) {
	err := ReadHello(bufio.NewReader(bytes.NewReader([]byte("GET / HTTP/1.1\r\n"))))
	if err == nil {
		t.Fatal("foreign protocol accepted")
	}
}

func TestHelloRejectsVersionMismatch(t *testing.T) {
	buf := append([]byte(Magic), ProtocolVersion+1)
	err := ReadHello(bufio.NewReader(bytes.NewReader(buf)))
	if err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestHelloTruncated(t *testing.T) {
	if err := ReadHello(bufio.NewReader(bytes.NewReader([]byte("SS")))); err == nil {
		t.Fatal("truncated hello accepted")
	}
}
