package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// The //sstore:allocgate markers below pair with //sstore:nomalloc
// annotations; the allocgate analyzer fails the build if either side
// exists without the other.

//sstore:allocgate appendString
func TestAppendStringAllocFree(t *testing.T) {
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(1000, func() {
		buf = appendString(buf[:0], "sp_ingest")
	}); n != 0 {
		t.Fatalf("appendString allocates %v/op with spare capacity; it encodes every request and response", n)
	}
}

//sstore:allocgate ReadFrameBuf
func TestReadFrameBufAllocFree(t *testing.T) {
	frame := AppendRequest(nil, &Request{ID: 7, Op: OpStats})
	rd := bytes.NewReader(frame)
	br := bufio.NewReader(rd)
	scratch := make([]byte, 0, len(frame))
	if n := testing.AllocsPerRun(1000, func() {
		rd.Reset(frame)
		br.Reset(rd)
		payload, err := ReadFrameBuf(br, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = payload
	}); n != 0 {
		t.Fatalf("ReadFrameBuf allocates %v/op over a warm scratch buffer; the conn loops call it per frame", n)
	}
}

//sstore:allocgate decoder.byte
//sstore:allocgate decoder.uvarint
//sstore:allocgate decoder.varint
func TestDecoderPrimitivesAllocFree(t *testing.T) {
	var payload []byte
	payload = append(payload, 7)
	payload = binary.AppendUvarint(payload, 123456)
	payload = binary.AppendVarint(payload, -987654)
	if n := testing.AllocsPerRun(1000, func() {
		d := decoder{buf: payload}
		if d.byte() != 7 || d.uvarint() != 123456 || d.varint() != -987654 || d.err != nil {
			panic("decoder round-trip broke")
		}
	}); n != 0 {
		t.Fatalf("decoder primitives allocate %v/op on the valid path", n)
	}
}
