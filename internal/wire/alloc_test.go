package wire

import (
	"encoding/binary"
	"testing"
)

// The //sstore:allocgate markers below pair with //sstore:nomalloc
// annotations; the allocgate analyzer fails the build if either side
// exists without the other.

//sstore:allocgate appendString
func TestAppendStringAllocFree(t *testing.T) {
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(1000, func() {
		buf = appendString(buf[:0], "sp_ingest")
	}); n != 0 {
		t.Fatalf("appendString allocates %v/op with spare capacity; it encodes every request and response", n)
	}
}

//sstore:allocgate decoder.byte
//sstore:allocgate decoder.uvarint
//sstore:allocgate decoder.varint
func TestDecoderPrimitivesAllocFree(t *testing.T) {
	var payload []byte
	payload = append(payload, 7)
	payload = binary.AppendUvarint(payload, 123456)
	payload = binary.AppendVarint(payload, -987654)
	if n := testing.AllocsPerRun(1000, func() {
		d := decoder{buf: payload}
		if d.byte() != 7 || d.uvarint() != 123456 || d.varint() != -987654 || d.err != nil {
			panic("decoder round-trip broke")
		}
	}); n != 0 {
		t.Fatalf("decoder primitives allocate %v/op on the valid path", n)
	}
}
