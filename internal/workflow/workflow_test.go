package workflow

import (
	"fmt"
	"testing"
)

func chainNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		node := Node{SP: fmt.Sprintf("SP%d", i+1), Input: fmt.Sprintf("s%d", i+1)}
		if i < n-1 {
			node.Outputs = []string{fmt.Sprintf("s%d", i+2)}
		}
		nodes[i] = node
	}
	return nodes
}

func TestChainTopology(t *testing.T) {
	w, err := New("chain", chainNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	order := w.TopoOrder()
	want := []string{"SP1", "SP2", "SP3", "SP4"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if b := w.Border(); len(b) != 1 || b[0] != "SP1" {
		t.Errorf("border = %v", b)
	}
	if !w.IsBorder("SP1") || w.IsBorder("SP2") {
		t.Error("IsBorder wrong")
	}
	if got := w.Consumers("s2"); len(got) != 1 || got[0] != "SP2" {
		t.Errorf("consumers(s2) = %v", got)
	}
	if !w.Precedes("SP1", "SP4") {
		t.Error("SP1 should precede SP4")
	}
	if w.Precedes("SP4", "SP1") {
		t.Error("SP4 should not precede SP1")
	}
}

func TestDiamondTopology(t *testing.T) {
	// SP1 fans out to SP2 and SP3, which join at SP4 (via separate
	// input streams; SP4 consumes s4 fed by both).
	w, err := New("diamond", []Node{
		{SP: "SP1", Input: "in", Outputs: []string{"s2", "s3"}},
		{SP: "SP2", Input: "s2", Outputs: []string{"s4"}},
		{SP: "SP3", Input: "s3", Outputs: []string{"s4"}},
		{SP: "SP4", Input: "s4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	order := w.TopoOrder()
	pos := make(map[string]int)
	for i, sp := range order {
		pos[sp] = i
	}
	if pos["SP1"] != 0 || pos["SP4"] != 3 {
		t.Errorf("order = %v", order)
	}
	if got := w.Consumers("s4"); len(got) != 1 || got[0] != "SP4" {
		t.Errorf("consumers(s4) = %v", got)
	}
	if len(w.Border()) != 1 {
		t.Errorf("border = %v", w.Border())
	}
}

func TestFanOutConsumers(t *testing.T) {
	w, err := New("fan", []Node{
		{SP: "SP1", Input: "in", Outputs: []string{"mid"}},
		{SP: "SP2", Input: "mid"},
		{SP: "SP3", Input: "mid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Consumers("mid"); len(got) != 2 {
		t.Errorf("consumers = %v", got)
	}
}

func TestCycleRejected(t *testing.T) {
	_, err := New("cycle", []Node{
		{SP: "A", Input: "s1", Outputs: []string{"s2"}},
		{SP: "B", Input: "s2", Outputs: []string{"s1"}},
	})
	if err == nil {
		t.Fatal("cycle should be rejected")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
	}{
		{"empty sp", []Node{{SP: "", Input: "s"}}},
		{"no input", []Node{{SP: "A", Input: ""}}},
		{"duplicate sp", []Node{{SP: "A", Input: "s1"}, {SP: "A", Input: "s2"}}},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.nodes); err == nil {
			t.Errorf("%s should be rejected", c.name)
		}
	}
}

func TestNestedGroupValidate(t *testing.T) {
	w, _ := New("chain", chainNodes(3))
	good := &NestedGroup{Name: "g", SPs: []string{"SP1", "SP2"}}
	if err := good.Validate(w); err != nil {
		t.Errorf("valid group rejected: %v", err)
	}
	reversed := &NestedGroup{Name: "g", SPs: []string{"SP2", "SP1"}}
	if err := reversed.Validate(w); err == nil {
		t.Error("DAG-inconsistent order should be rejected")
	}
	unknown := &NestedGroup{Name: "g", SPs: []string{"SP1", "NOPE"}}
	if err := unknown.Validate(w); err == nil {
		t.Error("unknown SP should be rejected")
	}
	single := &NestedGroup{Name: "g", SPs: []string{"SP1"}}
	if err := single.Validate(w); err == nil {
		t.Error("single-SP group should be rejected")
	}
}

func TestMultipleTopoOrdersAccepted(t *testing.T) {
	// Two independent chains in one workflow: any interleaving is a
	// valid topological order; ours must at least respect each chain.
	w, err := New("two", []Node{
		{SP: "A1", Input: "a_in", Outputs: []string{"a_mid"}},
		{SP: "A2", Input: "a_mid"},
		{SP: "B1", Input: "b_in", Outputs: []string{"b_mid"}},
		{SP: "B2", Input: "b_mid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, sp := range w.TopoOrder() {
		pos[sp] = i
	}
	if pos["A1"] > pos["A2"] || pos["B1"] > pos["B2"] {
		t.Errorf("order violates chains: %v", w.TopoOrder())
	}
	if b := w.Border(); len(b) != 2 {
		t.Errorf("border = %v", b)
	}
}
