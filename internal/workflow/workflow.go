// Package workflow defines streaming workflows: directed acyclic graphs
// of stored procedures connected by streams (§2.1). A workflow
// definition is purely declarative; the partition engine compiles it
// into PE triggers and scheduling constraints.
package workflow

import (
	"fmt"
	"sort"
)

// Node is one stored procedure in a workflow.
type Node struct {
	// SP is the stored procedure name.
	SP string
	// Input is the stream table the SP consumes. Every streaming SP
	// has exactly one input stream in this implementation (the
	// paper's formalism allows several; one suffices for every
	// benchmark in §4).
	Input string
	// Outputs are the stream tables the SP may append to; each must
	// be the Input of a downstream node (or an engine-level sink).
	Outputs []string
}

// Workflow is a DAG of stored procedures. Edges are implied: node A
// precedes node B when one of A's outputs is B's input.
type Workflow struct {
	Name  string
	nodes []Node

	byInput map[string][]int // stream name → consumer node indexes
	order   []int            // topological order (node indexes)
}

// New validates the node set and computes a topological order. It
// rejects cyclic graphs, duplicate SPs, and streams with no producer
// path from a border input.
func New(name string, nodes []Node) (*Workflow, error) {
	w := &Workflow{Name: name, nodes: append([]Node(nil), nodes...), byInput: make(map[string][]int)}
	seen := make(map[string]bool)
	for i, n := range w.nodes {
		if n.SP == "" {
			return nil, fmt.Errorf("workflow %s: node %d has empty SP name", name, i)
		}
		if seen[n.SP] {
			return nil, fmt.Errorf("workflow %s: duplicate SP %s", name, n.SP)
		}
		seen[n.SP] = true
		if n.Input == "" {
			return nil, fmt.Errorf("workflow %s: SP %s has no input stream", name, n.SP)
		}
		w.byInput[n.Input] = append(w.byInput[n.Input], i)
	}
	order, err := w.topoSort()
	if err != nil {
		return nil, err
	}
	w.order = order
	return w, nil
}

// edges returns adjacency: for node i, the indexes of nodes consuming
// its outputs.
func (w *Workflow) edges(i int) []int {
	var out []int
	for _, s := range w.nodes[i].Outputs {
		out = append(out, w.byInput[s]...)
	}
	return out
}

// topoSort Kahn's algorithm; ties broken by node order for
// determinism.
func (w *Workflow) topoSort() ([]int, error) {
	indeg := make([]int, len(w.nodes))
	for i := range w.nodes {
		for _, j := range w.edges(i) {
			indeg[j]++
		}
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	var order []int
	for len(ready) > 0 {
		sort.Ints(ready)
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		for _, j := range w.edges(i) {
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if len(order) != len(w.nodes) {
		return nil, fmt.Errorf("workflow %s: cycle detected", w.Name)
	}
	return order, nil
}

// Nodes returns the nodes in their declared order.
func (w *Workflow) Nodes() []Node { return append([]Node(nil), w.nodes...) }

// TopoOrder returns the SP names in a valid topological order.
func (w *Workflow) TopoOrder() []string {
	out := make([]string, len(w.order))
	for i, idx := range w.order {
		out[i] = w.nodes[idx].SP
	}
	return out
}

// Border returns the border SPs: those whose input stream is produced
// by no node in the workflow, i.e. fed from outside (§2.1).
func (w *Workflow) Border() []string {
	produced := make(map[string]bool)
	for _, n := range w.nodes {
		for _, s := range n.Outputs {
			produced[s] = true
		}
	}
	var border []string
	for _, idx := range w.order {
		n := w.nodes[idx]
		if !produced[n.Input] {
			border = append(border, n.SP)
		}
	}
	return border
}

// IsBorder reports whether the named SP is a border SP.
func (w *Workflow) IsBorder(sp string) bool {
	for _, b := range w.Border() {
		if b == sp {
			return true
		}
	}
	return false
}

// Consumers returns the SPs that consume the given stream, in node
// order. The partition engine turns each (stream, consumer) pair into a
// PE trigger.
func (w *Workflow) Consumers(streamName string) []string {
	idxs := w.byInput[streamName]
	out := make([]string, len(idxs))
	for i, idx := range idxs {
		out[i] = w.nodes[idx].SP
	}
	return out
}

// Node returns the named node.
func (w *Workflow) Node(sp string) (Node, bool) {
	for _, n := range w.nodes {
		if n.SP == sp {
			return n, true
		}
	}
	return Node{}, false
}

// Precedes reports whether a must run before b for a given batch (a
// path exists from a to b).
func (w *Workflow) Precedes(a, b string) bool {
	var ai = -1
	for i, n := range w.nodes {
		if n.SP == a {
			ai = i
		}
	}
	if ai < 0 {
		return false
	}
	// BFS from a.
	queue := []int{ai}
	visited := make(map[int]bool)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if visited[i] {
			continue
		}
		visited[i] = true
		for _, j := range w.edges(i) {
			if w.nodes[j].SP == b {
				return true
			}
			queue = append(queue, j)
		}
	}
	return false
}

// NestedGroup declares a nested transaction (§2.3): a set of SPs in
// the workflow whose TEs for one batch must execute as a single
// isolation unit — no other streaming or OLTP transaction may
// interleave, and if any child aborts the whole group aborts.
type NestedGroup struct {
	Name string
	// SPs in execution (partial) order.
	SPs []string
}

// Validate checks the group against a workflow: members must exist and
// the listed order must be consistent with the workflow DAG.
func (g *NestedGroup) Validate(w *Workflow) error {
	if len(g.SPs) < 2 {
		return fmt.Errorf("workflow: nested group %s needs at least two SPs", g.Name)
	}
	for _, sp := range g.SPs {
		if _, ok := w.Node(sp); !ok {
			return fmt.Errorf("workflow: nested group %s references unknown SP %s", g.Name, sp)
		}
	}
	for i := 0; i < len(g.SPs); i++ {
		for j := i + 1; j < len(g.SPs); j++ {
			if w.Precedes(g.SPs[j], g.SPs[i]) {
				return fmt.Errorf("workflow: nested group %s lists %s before %s against DAG order", g.Name, g.SPs[i], g.SPs[j])
			}
		}
	}
	return nil
}
