// Package sparklike is a faithful miniature of Spark Streaming's
// D-Stream model (§4.6.1, §5 of the paper), built as a comparison
// baseline: computations are series of deterministic transformations
// over immutable, partitioned datasets (RDDs), state is carried between
// micro-batches as RDDs (so every fine-grained update pays a
// copy-on-write), lineage is tracked for fault tolerance and truncated
// by periodic checkpoints, and there is no indexing over state — the
// property that dominates the paper's Figure 10 comparison.
package sparklike

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sstore/internal/types"
)

// RDD is an immutable, partitioned collection of rows. Transformations
// return new RDDs and record lineage; they never mutate their input.
type RDD struct {
	id         int64
	partitions [][]types.Row
	lineage    *Lineage
}

// Lineage is one node in the dependency graph used for recomputation
// after failures. The paper notes the graph "gets bigger as each
// operation needs to be logged" — Context.LineageSize exposes that
// growth.
type Lineage struct {
	Op      string
	Parents []*Lineage
	RDDID   int64
}

// Context creates RDDs and runs jobs with fixed parallelism, standing
// in for a Spark driver plus its workers.
type Context struct {
	parallelism int
	nextID      atomic.Int64
	lineageSize atomic.Int64
}

// NewContext creates a context with the given worker parallelism
// (minimum 1).
func NewContext(parallelism int) *Context {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Context{parallelism: parallelism}
}

// LineageSize returns the number of lineage nodes created since the
// last checkpoint truncation.
func (c *Context) LineageSize() int64 { return c.lineageSize.Load() }

// TruncateLineage models checkpoint-driven lineage truncation.
func (c *Context) TruncateLineage() { c.lineageSize.Store(0) }

func (c *Context) newRDD(op string, parts [][]types.Row, parents ...*Lineage) *RDD {
	id := c.nextID.Add(1)
	c.lineageSize.Add(1)
	return &RDD{
		id:         id,
		partitions: parts,
		lineage:    &Lineage{Op: op, Parents: parents, RDDID: id},
	}
}

// Parallelize distributes rows round-robin over the context's
// partitions.
func (c *Context) Parallelize(rows []types.Row) *RDD {
	parts := make([][]types.Row, c.parallelism)
	for i, row := range rows {
		p := i % c.parallelism
		parts[p] = append(parts[p], row)
	}
	return c.newRDD("parallelize", parts)
}

// Empty returns an empty RDD.
func (c *Context) Empty() *RDD {
	return c.newRDD("empty", make([][]types.Row, c.parallelism))
}

// mapPartitions applies fn to each partition in parallel, producing a
// new RDD — the common core of all narrow transformations.
func (c *Context) mapPartitions(op string, r *RDD, fn func(rows []types.Row) []types.Row) *RDD {
	out := make([][]types.Row, len(r.partitions))
	var wg sync.WaitGroup
	for i, part := range r.partitions {
		wg.Add(1)
		go func(i int, part []types.Row) {
			defer wg.Done()
			out[i] = fn(part)
		}(i, part)
	}
	wg.Wait()
	return c.newRDD(op, out, r.lineage)
}

// Map applies fn to every row.
func (c *Context) Map(r *RDD, fn func(types.Row) types.Row) *RDD {
	return c.mapPartitions("map", r, func(rows []types.Row) []types.Row {
		out := make([]types.Row, len(rows))
		for i, row := range rows {
			out[i] = fn(row)
		}
		return out
	})
}

// Filter keeps rows for which fn returns true.
func (c *Context) Filter(r *RDD, fn func(types.Row) bool) *RDD {
	return c.mapPartitions("filter", r, func(rows []types.Row) []types.Row {
		var out []types.Row
		for _, row := range rows {
			if fn(row) {
				out = append(out, row)
			}
		}
		return out
	})
}

// FlatMap applies fn to every row and concatenates the results.
func (c *Context) FlatMap(r *RDD, fn func(types.Row) []types.Row) *RDD {
	return c.mapPartitions("flatmap", r, func(rows []types.Row) []types.Row {
		var out []types.Row
		for _, row := range rows {
			out = append(out, fn(row)...)
		}
		return out
	})
}

// Union concatenates two RDDs partition-wise.
func (c *Context) Union(a, b *RDD) *RDD {
	n := len(a.partitions)
	if len(b.partitions) > n {
		n = len(b.partitions)
	}
	out := make([][]types.Row, n)
	for i := range out {
		var part []types.Row
		if i < len(a.partitions) {
			part = append(part, a.partitions[i]...)
		}
		if i < len(b.partitions) {
			part = append(part, b.partitions[i]...)
		}
		out[i] = part
	}
	return c.newRDD("union", out, a.lineage, b.lineage)
}

// ReduceByKey groups rows by keyFn and folds each group with reduceFn
// (a shuffle: rows are re-partitioned by key hash).
func (c *Context) ReduceByKey(r *RDD, keyFn func(types.Row) types.Value, reduceFn func(a, b types.Row) types.Row) *RDD {
	// Shuffle phase: hash-partition every row by key.
	shuffled := make([]map[uint64][]types.Row, c.parallelism)
	for i := range shuffled {
		shuffled[i] = make(map[uint64][]types.Row)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, part := range r.partitions {
		wg.Add(1)
		go func(part []types.Row) {
			defer wg.Done()
			local := make(map[int]map[uint64][]types.Row)
			for _, row := range part {
				h := keyFn(row).Hash()
				p := int(h % uint64(c.parallelism))
				if local[p] == nil {
					local[p] = make(map[uint64][]types.Row)
				}
				local[p][h] = append(local[p][h], row)
			}
			mu.Lock()
			for p, groups := range local {
				for h, rows := range groups {
					shuffled[p][h] = append(shuffled[p][h], rows...)
				}
			}
			mu.Unlock()
		}(part)
	}
	wg.Wait()
	// Reduce phase.
	out := make([][]types.Row, c.parallelism)
	for i := range shuffled {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var part []types.Row
			for _, rows := range shuffled[i] {
				// Hash buckets can mix keys on collision; split by
				// exact key.
				for len(rows) > 0 {
					key := keyFn(rows[0])
					acc := rows[0]
					rest := rows[:0]
					for _, row := range rows[1:] {
						if keyFn(row).Equal(key) {
							acc = reduceFn(acc, row)
						} else {
							rest = append(rest, row)
						}
					}
					part = append(part, acc)
					rows = rest
				}
			}
			out[i] = part
		}(i)
	}
	wg.Wait()
	return c.newRDD("reduceByKey", out, r.lineage)
}

// Collect gathers all rows into one slice (partition order).
func (r *RDD) Collect() []types.Row {
	var out []types.Row
	for _, part := range r.partitions {
		out = append(out, part...)
	}
	return out
}

// Count returns the number of rows.
func (r *RDD) Count() int {
	n := 0
	for _, part := range r.partitions {
		n += len(part)
	}
	return n
}

// Lineage returns the RDD's lineage node.
func (r *RDD) Lineage() *Lineage { return r.lineage }

// Lookup scans the whole RDD for rows whose column col equals v. This
// is deliberately a full scan: "Spark Streaming provides no method of
// indexing over state" (§4.6.3), which is the bottleneck the paper's
// Figure 10 (left) exposes.
func (r *RDD) Lookup(col int, v types.Value) []types.Row {
	var out []types.Row
	for _, part := range r.partitions {
		for _, row := range part {
			if col < len(row) && row[col].Equal(v) {
				out = append(out, row)
			}
		}
	}
	return out
}

// Validate sanity-checks partition structure; used by tests.
func (r *RDD) Validate() error {
	if len(r.partitions) == 0 {
		return fmt.Errorf("sparklike: RDD %d has no partitions", r.id)
	}
	return nil
}
