package sparklike

import (
	"fmt"
	"sort"
	"testing"

	"sstore/internal/types"
)

func row(vs ...int64) types.Row {
	r := make(types.Row, len(vs))
	for i, v := range vs {
		r[i] = types.NewInt(v)
	}
	return r
}

func sortedInts(rows []types.Row, col int) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[col].Int()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestParallelizeCollect(t *testing.T) {
	ctx := NewContext(4)
	var rows []types.Row
	for i := int64(0); i < 10; i++ {
		rows = append(rows, row(i))
	}
	r := ctx.Parallelize(rows)
	if r.Count() != 10 {
		t.Fatalf("count = %d", r.Count())
	}
	got := sortedInts(r.Collect(), 0)
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("collect = %v", got)
		}
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext(3)
	var rows []types.Row
	for i := int64(0); i < 6; i++ {
		rows = append(rows, row(i))
	}
	r := ctx.Parallelize(rows)
	doubled := ctx.Map(r, func(x types.Row) types.Row { return row(x[0].Int() * 2) })
	if got := sortedInts(doubled.Collect(), 0); got[5] != 10 {
		t.Errorf("map = %v", got)
	}
	// Input untouched (immutability).
	if got := sortedInts(r.Collect(), 0); got[5] != 5 {
		t.Errorf("input mutated: %v", got)
	}
	even := ctx.Filter(r, func(x types.Row) bool { return x[0].Int()%2 == 0 })
	if even.Count() != 3 {
		t.Errorf("filter count = %d", even.Count())
	}
	dup := ctx.FlatMap(r, func(x types.Row) []types.Row { return []types.Row{x, x} })
	if dup.Count() != 12 {
		t.Errorf("flatmap count = %d", dup.Count())
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := NewContext(4)
	var rows []types.Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, row(i%5, 1)) // key, count
	}
	r := ctx.Parallelize(rows)
	counts := ctx.ReduceByKey(r,
		func(x types.Row) types.Value { return x[0] },
		func(a, b types.Row) types.Row { return row(a[0].Int(), a[1].Int()+b[1].Int()) },
	)
	if counts.Count() != 5 {
		t.Fatalf("groups = %d", counts.Count())
	}
	for _, g := range counts.Collect() {
		if g[1].Int() != 20 {
			t.Errorf("key %d count = %d, want 20", g[0].Int(), g[1].Int())
		}
	}
}

func TestUnionAndLookup(t *testing.T) {
	ctx := NewContext(2)
	a := ctx.Parallelize([]types.Row{row(1), row(2)})
	b := ctx.Parallelize([]types.Row{row(3)})
	u := ctx.Union(a, b)
	if u.Count() != 3 {
		t.Errorf("union count = %d", u.Count())
	}
	hits := u.Lookup(0, types.NewInt(2))
	if len(hits) != 1 {
		t.Errorf("lookup = %v", hits)
	}
}

func TestLineageGrowsAndTruncates(t *testing.T) {
	ctx := NewContext(2)
	r := ctx.Parallelize([]types.Row{row(1)})
	before := ctx.LineageSize()
	for i := 0; i < 10; i++ {
		r = ctx.Map(r, func(x types.Row) types.Row { return x })
	}
	if ctx.LineageSize() != before+10 {
		t.Errorf("lineage = %d, want %d", ctx.LineageSize(), before+10)
	}
	if r.Lineage() == nil || r.Lineage().Op != "map" {
		t.Error("lineage node missing")
	}
	ctx.TruncateLineage()
	if ctx.LineageSize() != 0 {
		t.Error("truncate failed")
	}
}

func TestDStreamStatefulCounting(t *testing.T) {
	ctx := NewContext(2)
	d := NewDStream(ctx, func(ctx *Context, input, state *RDD) (*RDD, *RDD, error) {
		newState := UpdateStateByKey(ctx, state, input, 0, func(existing, incoming types.Row) types.Row {
			if existing == nil {
				return row(incoming[0].Int(), 1)
			}
			return row(existing[0].Int(), existing[1].Int()+1)
		})
		return newState, newState, nil
	})
	for b := 0; b < 6; b++ {
		if _, err := d.ProcessBatch([]types.Row{row(int64(b % 2)), row(7)}); err != nil {
			t.Fatal(err)
		}
	}
	state := d.State().Collect()
	byKey := make(map[int64]int64)
	for _, r := range state {
		byKey[r[0].Int()] = r[1].Int()
	}
	if byKey[0] != 3 || byKey[1] != 3 || byKey[7] != 6 {
		t.Errorf("state = %v", byKey)
	}
	if d.Batches() != 6 {
		t.Errorf("batches = %d", d.Batches())
	}
}

func TestDStreamCheckpointAndRecover(t *testing.T) {
	ctx := NewContext(2)
	d := NewDStream(ctx, func(ctx *Context, input, state *RDD) (*RDD, *RDD, error) {
		return nil, ctx.Union(state, input), nil
	})
	d.CheckpointEvery = 2
	for b := int64(1); b <= 5; b++ {
		if _, err := d.ProcessBatch([]types.Row{row(b)}); err != nil {
			t.Fatal(err)
		}
	}
	if d.Checkpoints() != 2 {
		t.Errorf("checkpoints = %d", d.Checkpoints())
	}
	// Crash after batch 5: recover to the checkpoint at batch 4, then
	// replay batch 5.
	d.RecoverFromCheckpoint()
	if d.State().Count() != 4 {
		t.Fatalf("recovered state = %d rows, want 4", d.State().Count())
	}
	if _, err := d.ProcessBatch([]types.Row{row(5)}); err != nil {
		t.Fatal(err)
	}
	if got := sortedInts(d.State().Collect(), 0); fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Errorf("state after replay = %v", got)
	}
}

func TestDStreamFailedBatchLeavesState(t *testing.T) {
	ctx := NewContext(1)
	fail := false
	d := NewDStream(ctx, func(ctx *Context, input, state *RDD) (*RDD, *RDD, error) {
		if fail {
			return nil, nil, fmt.Errorf("injected")
		}
		return nil, ctx.Union(state, input), nil
	})
	d.ProcessBatch([]types.Row{row(1)})
	fail = true
	if _, err := d.ProcessBatch([]types.Row{row(2)}); err == nil {
		t.Fatal("expected failure")
	}
	if d.State().Count() != 1 {
		t.Errorf("failed batch mutated state: %d rows", d.State().Count())
	}
	if d.Batches() != 1 {
		t.Errorf("batches = %d", d.Batches())
	}
	// Retry succeeds (exactly-once at batch granularity).
	fail = false
	if _, err := d.ProcessBatch([]types.Row{row(2)}); err != nil {
		t.Fatal(err)
	}
	if d.State().Count() != 2 {
		t.Errorf("state = %d rows", d.State().Count())
	}
}

func TestDStreamWindow(t *testing.T) {
	ctx := NewContext(1)
	d := NewDStream(ctx, func(ctx *Context, input, state *RDD) (*RDD, *RDD, error) {
		return nil, state, nil
	})
	d.SetWindow(3)
	for b := int64(1); b <= 5; b++ {
		d.ProcessBatch([]types.Row{row(b)})
	}
	got := sortedInts(d.WindowRDD().Collect(), 0)
	if fmt.Sprint(got) != "[3 4 5]" {
		t.Errorf("window = %v", got)
	}
}
