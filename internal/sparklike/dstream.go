package sparklike

import (
	"fmt"

	"sstore/internal/types"
)

// BatchFunc is one micro-batch computation: it receives the input
// batch and the current state RDD and returns the batch's output and
// the *new* state RDD. State is immutable between batches — producing
// the new state means building a new RDD, which is exactly the
// "high overhead for transactional workloads that require many
// fine-grained update operations" the paper attributes to the
// RDD-based model (§5).
type BatchFunc func(ctx *Context, input *RDD, state *RDD) (output *RDD, newState *RDD, err error)

// DStream executes a discretized stream: arriving tuples are grouped
// into interval batches, each processed atomically by a BatchFunc. The
// engine checkpoints state every CheckpointEvery batches and truncates
// lineage, mirroring Spark Streaming's asynchronous checkpointing.
type DStream struct {
	ctx   *Context
	fn    BatchFunc
	state *RDD

	// CheckpointEvery is the checkpoint cadence in batches (default
	// 10).
	CheckpointEvery int

	batches     int64
	checkpoints int64
	checkpoint  []types.Row // last checkpointed state image

	// window of retained micro-batch inputs for interval-window
	// operators (D-Streams express windows as unions of recent
	// batches).
	retain  int
	history []*RDD
}

// NewDStream builds a D-Stream engine over a context.
func NewDStream(ctx *Context, fn BatchFunc) *DStream {
	return &DStream{ctx: ctx, fn: fn, state: ctx.Empty(), CheckpointEvery: 10}
}

// SetWindow retains the last n micro-batch inputs for WindowRDD; n=0
// disables retention.
func (d *DStream) SetWindow(n int) { d.retain = n }

// WindowRDD returns the union of the last n retained inputs — the
// D-Stream windowing construct (time-interval based, batch
// granularity; the model "hinders ... tuple-based windowing
// operations", §5).
func (d *DStream) WindowRDD() *RDD {
	if len(d.history) == 0 {
		return d.ctx.Empty()
	}
	out := d.history[0]
	for _, r := range d.history[1:] {
		out = d.ctx.Union(out, r)
	}
	return out
}

// State returns the current state RDD.
func (d *DStream) State() *RDD { return d.state }

// Batches returns the number of processed micro-batches.
func (d *DStream) Batches() int64 { return d.batches }

// Checkpoints returns the number of checkpoints taken.
func (d *DStream) Checkpoints() int64 { return d.checkpoints }

// ProcessBatch runs one micro-batch job to completion: the whole batch
// is processed atomically (the paper's closest analog to a
// transaction, §4.6.1), producing output rows and the next state.
func (d *DStream) ProcessBatch(rows []types.Row) ([]types.Row, error) {
	input := d.ctx.Parallelize(rows)
	if d.retain > 0 {
		d.history = append(d.history, input)
		if len(d.history) > d.retain {
			d.history = d.history[1:]
		}
	}
	out, newState, err := d.fn(d.ctx, input, d.state)
	if err != nil {
		// Deterministic recomputation: a failed batch leaves state
		// untouched and can be retried, giving exactly-once at batch
		// granularity.
		return nil, fmt.Errorf("sparklike: batch %d: %w", d.batches+1, err)
	}
	d.state = newState
	d.batches++
	if d.CheckpointEvery > 0 && d.batches%int64(d.CheckpointEvery) == 0 {
		d.doCheckpoint()
	}
	if out == nil {
		return nil, nil
	}
	return out.Collect(), nil
}

// doCheckpoint serializes state and truncates lineage.
func (d *DStream) doCheckpoint() {
	d.checkpoint = d.state.Collect()
	d.ctx.TruncateLineage()
	d.checkpoints++
}

// RecoverFromCheckpoint rebuilds state from the last checkpoint,
// discarding everything after it; callers then replay the input
// batches since that point (the replicated-input half of D-Stream
// recovery).
func (d *DStream) RecoverFromCheckpoint() {
	d.state = d.ctx.Parallelize(d.checkpoint)
	d.history = nil
}

// UpdateStateByKey is the standard Spark Streaming stateful operator:
// it merges the batch into keyed state by rebuilding the state RDD.
// keyCol identifies the key column in both state and batch rows;
// update folds a batch row into (possibly nil) existing state.
//
// Note the cost profile: the output state is a full copy of the old
// state plus changes — immutability forces it — so per-batch cost is
// O(|state|) even for one-row updates.
func UpdateStateByKey(ctx *Context, state, batch *RDD, keyCol int, update func(existing types.Row, incoming types.Row) types.Row) *RDD {
	// Build the change set from the batch.
	changed := make(map[uint64][]types.Row)
	for _, row := range batch.Collect() {
		h := row[keyCol].Hash()
		changed[h] = append(changed[h], row)
	}
	// Rebuild state: copy-with-merge (the full copy is the point).
	var next []types.Row
	for _, row := range state.Collect() {
		h := row[keyCol].Hash()
		rest := changed[h][:0]
		cur := row
		for _, inc := range changed[h] {
			if inc[keyCol].Equal(row[keyCol]) {
				cur = update(cur, inc)
			} else {
				rest = append(rest, inc)
			}
		}
		if len(rest) == 0 {
			delete(changed, h)
		} else {
			changed[h] = rest
		}
		next = append(next, cur)
	}
	// Remaining changes are new keys: fold all of a key's incoming
	// rows into one state row.
	for _, rows := range changed {
		for len(rows) > 0 {
			key := rows[0][keyCol]
			cur := update(nil, rows[0])
			rest := rows[:0]
			for _, inc := range rows[1:] {
				if inc[keyCol].Equal(key) {
					cur = update(cur, inc)
				} else {
					rest = append(rest, inc)
				}
			}
			next = append(next, cur)
			rows = rest
		}
	}
	return ctx.Parallelize(next)
}
