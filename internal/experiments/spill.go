package experiments

// The spill experiment is the storage-manager seam's headline number:
// an append-only history table declared ARCHIVE keeps only a bounded
// buffer pool in memory and spills the rest to its page file, and the
// claim under test is that ingest throughput stays close to the
// in-memory heap even when the archived state has grown far past the
// memory budget. The workload appends fixed-size rows through a stored
// procedure into either a plain table (the in-memory baseline) or an
// archive table with a deliberately small ArchiveMemoryBudget, then
// reports how many times over budget the page file grew and the
// throughput ratio. Append-mostly is the design point: a full fill
// page is evicted once, written back once, and never revisited, so the
// disk cost amortizes over a whole page of rows.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sstore/internal/benchutil"
	"sstore/internal/pe"
	"sstore/internal/types"
)

// spillPayload is the per-row text payload; with row overhead it puts
// roughly 70 rows on an 8 KiB page.
const spillPayload = 96

// spillRowsPerCall batches appends per stored-procedure call so the
// measurement weighs the storage path, not per-call dispatch.
const spillRowsPerCall = 8

// Spill compares history-append throughput on an in-memory table vs an
// archive table whose state grows several times past its buffer-pool
// budget.
func Spill(opts Options) (*benchutil.Table, error) {
	table := benchutil.NewTable("config", "rows", "budget_kb", "pagefile_kb",
		"spill_x", "rows_per_sec", "vs_memory")
	calls := opts.n(500, 2500)
	budget := int64(opts.n(64<<10, 256<<10))
	memTput, _, err := spillProbe(opts, false, budget, calls)
	if err != nil {
		return nil, fmt.Errorf("spill memory: %w", err)
	}
	archTput, pageBytes, err := spillProbe(opts, true, budget, calls)
	if err != nil {
		return nil, fmt.Errorf("spill archive: %w", err)
	}
	rows := calls * spillRowsPerCall
	table.AddRow("memory", rows, budget>>10, 0, 0.0, memTput, 1.0)
	table.AddRow("archive", rows, budget>>10, pageBytes>>10,
		float64(pageBytes)/float64(budget), archTput, archTput/memTput)
	return table, nil
}

// spillProbe appends calls*spillRowsPerCall rows and returns rows/sec
// plus (for the archive config) the final page-file size in bytes,
// measured after Close so every dirty frame has been written back.
func spillProbe(opts Options, archive bool, budget int64, calls int) (
	tput float64, pageBytes int64, err error) {
	dir, err := os.MkdirTemp(opts.Dir, "spill-")
	if err != nil {
		return 0, 0, err
	}
	eng, err := pe.NewEngine(pe.Options{
		ArchiveDir:          dir,
		ArchiveMemoryBudget: budget,
	})
	if err != nil {
		return 0, 0, err
	}
	closed := false
	defer func() {
		if !closed {
			eng.Close()
		}
	}()
	ddl := "CREATE TABLE hist (id BIGINT PRIMARY KEY, ts BIGINT, payload VARCHAR)"
	if archive {
		ddl = "CREATE ARCHIVE TABLE hist (id BIGINT PRIMARY KEY, ts BIGINT, payload VARCHAR)"
	}
	if err := eng.ExecDDL(ddl); err != nil {
		return 0, 0, err
	}
	payload := types.NewText(strings.Repeat("x", spillPayload))
	err = eng.RegisterProc(&pe.StoredProc{Name: "SpillPut", Func: func(ctx *pe.ProcCtx) error {
		base := ctx.Params()[0].Int()
		for k := int64(0); k < spillRowsPerCall; k++ {
			id := base*spillRowsPerCall + k
			if _, err := ctx.Query("INSERT INTO hist VALUES (?, ?, ?)",
				types.NewInt(id), types.NewInt(id*3), payload); err != nil {
				return err
			}
		}
		return nil
	}})
	if err != nil {
		return 0, 0, err
	}
	callTput, err := benchutil.MeasureThroughput(calls, func(i int) error {
		_, err := eng.Call("SpillPut", types.Row{types.NewInt(int64(i))})
		return err
	}, nil)
	if err != nil {
		return 0, 0, err
	}
	res, err := eng.AdHoc(0, "SELECT COUNT(*) FROM hist")
	if err != nil {
		return 0, 0, err
	}
	if got, want := res.Rows[0][0].Int(), int64(calls*spillRowsPerCall); got != want {
		return 0, 0, fmt.Errorf("spill: %d rows landed, want %d", got, want)
	}
	closed = true
	if err := eng.Close(); err != nil {
		return 0, 0, err
	}
	if archive {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return 0, 0, err
		}
		for _, ent := range ents {
			if !strings.HasSuffix(ent.Name(), ".pages") {
				continue
			}
			info, err := os.Stat(filepath.Join(dir, ent.Name()))
			if err != nil {
				return 0, 0, err
			}
			pageBytes += info.Size()
		}
	}
	return callTput * spillRowsPerCall, pageBytes, nil
}
