package experiments

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/linearroad"
	"sstore/internal/pe"
	"sstore/internal/stream"
	"sstore/internal/types"
)

// fig11Accel compresses simulated time: input is offered at accel×
// real time, so one core's capacity lands in the paper's ballpark of
// ~16 supported x-ways (calibrated on the reference host — see
// EXPERIMENTS.md). DESIGN.md documents this substitution (the paper
// ran 30 real minutes per configuration; this harness keeps each probe
// under a couple of seconds).
const fig11Accel = 1300.0

// fig11LatencyThreshold is the processing-latency bound a
// configuration must meet (the paper uses 1 second for its abbreviated
// benchmark).
const fig11LatencyThreshold = time.Second

// Fig11 reproduces Figure 11: multi-core scalability on the Linear
// Road subset. For each core count, traffic is partitioned by x-way
// and the harness searches for the maximum number of x-ways whose
// position reports are all processed under the latency threshold,
// expecting roughly linear growth with a 5–10% per-core drop-off
// (§4.7).
func Fig11(opts Options) (*benchutil.Table, error) {
	coreOptions := opts.pick([]int{1, 2}, []int{1, 2, 4, 8})
	table := benchutil.NewTable("partitions", "max_xways", "xways_per_partition", "note")
	for _, cores := range coreOptions {
		note := ""
		if cores > runtime.NumCPU() {
			// Partitions beyond the physical core count still run
			// (demonstrating the partitioned architecture) but share
			// CPUs, so they cannot add capacity; the row is labeled
			// rather than omitted.
			note = fmt.Sprintf("oversubscribed (%d CPUs)", runtime.NumCPU())
		}
		maxX, err := fig11Search(opts, cores)
		if err != nil {
			return nil, err
		}
		table.AddRow(cores, maxX, float64(maxX)/float64(cores), note)
	}
	return table, nil
}

// fig11Search grows the x-way count in steps of the core count until a
// probe misses the latency threshold, then refines by single x-ways —
// capturing the paper's observation that loads divisible by the core
// count fare best.
func fig11Search(opts Options, cores int) (int, error) {
	lastGood := 0
	x := cores
	for {
		ok, err := fig11Probe(opts, cores, x)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lastGood = x
		x += cores
		if x > 256 {
			break
		}
	}
	// Refine between lastGood and the failed point.
	for x = lastGood + 1; x < lastGood+cores; x++ {
		ok, err := fig11Probe(opts, cores, x)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lastGood = x
	}
	return lastGood, nil
}

// fig11Probe runs one (cores, xways) configuration: reports are
// offered open-loop at the accelerated natural rate, and the
// configuration passes when the p95 completion latency stays under the
// threshold and completions kept up with the offered load.
func fig11Probe(opts Options, cores, xways int) (bool, error) {
	cfg := linearroad.Config{XWays: xways}
	eng, err := pe.NewEngine(pe.Options{
		Partitions:  cores,
		PartitionBy: linearroad.PartitionByXWay(cores),
	})
	if err != nil {
		return false, err
	}
	defer eng.Close()
	seed := func(xway int, stmt string) error {
		_, err := eng.AdHoc(xway%cores, stmt)
		return err
	}
	if err := linearroad.SetupSchema(eng, cfg, seed); err != nil {
		return false, err
	}
	for _, sp := range linearroad.Procs(cfg) {
		if err := eng.RegisterProc(sp); err != nil {
			return false, err
		}
	}
	w, err := linearroad.Workflow()
	if err != nil {
		return false, err
	}
	if err := eng.DeployWorkflow(w); err != nil {
		return false, err
	}
	gen := linearroad.NewGenerator(17, cfg)
	rate := gen.ReportsPerSimSecond() * fig11Accel
	window := time.Duration(opts.n(250, 900)) * time.Millisecond
	var batchID atomic.Int64
	res, err := benchutil.OpenLoop(rate, window, func(done func()) error {
		r := gen.Next()
		b := &stream.Batch{ID: batchID.Add(1), Rows: []types.Row{r.Row()}}
		ch, err := eng.IngestAsync(linearroad.StreamReports, b)
		if err != nil {
			return err
		}
		go func() {
			<-ch
			done()
		}()
		return nil
	})
	if err != nil {
		return false, err
	}
	if err := eng.Drain(); err != nil {
		return false, err
	}
	if err := eng.TriggerErr(); err != nil {
		return false, err
	}
	p95 := res.Latency.Percentile(95)
	keptUp := float64(res.Completed) >= 0.95*rate*window.Seconds()
	return p95 < fig11LatencyThreshold && keptUp, nil
}
