package experiments

import (
	"strings"
	"testing"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/recovery"
)

// These tests run every experiment in Quick mode. Beyond smoke
// coverage, each asserts the qualitative *shape* the paper reports —
// who wins — without pinning fragile absolute numbers.

func quickOpts(t *testing.T) Options {
	t.Helper()
	return Options{Quick: true, Dir: t.TempDir()}
}

// tableCell parses a printed table for assertions via the row values
// the AddRow caller provided; instead we re-run with structured
// access. For simplicity the figures return *benchutil.Table, so shape
// checks below re-derive values from the raw runs where needed.

func render(t *testing.T, table *benchutil.Table) string {
	t.Helper()
	var sb strings.Builder
	table.Print(&sb)
	out := sb.String()
	if len(out) == 0 {
		t.Fatal("empty table")
	}
	return out
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	// Direct shape check on the underlying measurement: with 10 EE
	// trigger stages, S-Store must beat the round-trip-per-stage
	// H-Store implementation.
	ss, err := fig5Rate(10, true, 120e6)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := fig5Rate(10, false, 120e6)
	if err != nil {
		t.Fatal(err)
	}
	if ss <= hs {
		t.Errorf("EE triggers should win at 10 stages: s-store %.0f vs h-store %.0f tps", ss, hs)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	ss, err := fig6SStore(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := fig6HStore(5, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ss <= 2*hs {
		t.Errorf("PE triggers should win big at 4 triggers: s-store %.0f vs h-store %.0f wf/s", ss, hs)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	ss, err := fig7Native(100, 10, 120e6)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := fig7Manual(100, 10, 120e6)
	if err != nil {
		t.Fatal(err)
	}
	if ss <= hs {
		t.Errorf("native windows should win: s-store %.0f vs h-store %.0f tps", ss, hs)
	}
}

func TestFig9aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	dir := t.TempDir()
	strongTPS, strongRecs, err := fig9Run(dir, recovery.ModeStrong, 5, 60)
	if err != nil {
		t.Fatal(err)
	}
	weakTPS, weakRecs, err := fig9Run(dir, recovery.ModeWeak, 5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if weakRecs*5 != strongRecs {
		t.Errorf("log volume: strong %d, weak %d records (want 5x)", strongRecs, weakRecs)
	}
	if weakTPS <= strongTPS {
		t.Errorf("weak logging should be faster: %.0f vs %.0f wf/s", weakTPS, strongTPS)
	}
}

func TestFig9bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	dir := t.TempDir()
	strongMS, err := fig9Recover(dir, recovery.ModeStrong, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	weakMS, err := fig9Recover(dir, recovery.ModeWeak, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if weakMS >= strongMS {
		t.Errorf("weak recovery should be faster with 4 triggers: strong %.0fms vs weak %.0fms", strongMS, weakMS)
	}
}

func TestAllFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	opts := quickOpts(t)
	for name, fn := range map[string]func(Options) (*benchutil.Table, error){
		"fig5":     Fig5,
		"fig6":     Fig6,
		"fig7":     Fig7,
		"fig9a":    Fig9a,
		"fig9b":    Fig9b,
		"fig8":     Fig8,
		"fig10":    Fig10,
		"fig11":    Fig11,
		"ablation": Ablations,
		"net":      NetBench,
	} {
		t.Run(name, func(t *testing.T) {
			table, err := fn(opts)
			if err != nil {
				t.Fatal(err)
			}
			out := render(t, table)
			if !strings.Contains(out, "-") {
				t.Errorf("table lacks separator:\n%s", out)
			}
		})
	}
}

func TestScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	// The point of interior routing: with 4 partitions and a
	// PartitionBy that spreads interior batches, whole-workflow
	// throughput must beat the single-partition run of the identical
	// workload. The probe is boundary-wait dominated, so the speedup
	// holds even on a single-CPU host.
	opts := quickOpts(t)
	one, err := scaleRoutedProbe(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := scaleRoutedProbe(opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four <= one {
		t.Errorf("4 partitions should out-run 1: %.0f vs %.0f workflows/sec", four, one)
	}
}

func TestScaleLoggedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	// The point of sharding the command log: with durability on
	// (strong mode, group commit) each partition flushes its own log
	// file, so the logged workflow keeps scaling with partitions —
	// a shared log would flatline every commit on one fsync queue.
	// The 4-partition run typically lands near 3x the 1-partition
	// run; the assertion keeps head-room for loaded CI hosts.
	opts := quickOpts(t)
	one, err := scaleRoutedLoggedProbe(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := scaleRoutedLoggedProbe(opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	// CI runs this under -race on shared hosts, where the detector's
	// slowdown and noisy-neighbor fsync latency compress the margin;
	// assert only that sharded logging scales at all and leave the
	// >=2x demonstration to the sstore-bench scale smoke.
	t.Logf("logged scale: 1p=%.0f wf/s, 4p=%.0f wf/s (%.2fx)", one, four, four/one)
	if four <= one {
		t.Errorf("logged 4-partition run should out-run 1: %.0f vs %.0f workflows/sec", four, one)
	}
}

func TestReadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	// The snapshot read path's contract: reads never occupy scheduler
	// slots (queue depth stays 0 during a readers-only phase), read
	// throughput is real, and ingest is not starved by attached
	// readers. The ingest ratio is asserted loosely — CI hosts run
	// this under -race on one core, where scheduler noise dominates —
	// while the sstore-bench read smoke demonstrates the ~1.0x ratio.
	// On a loaded single-core host the Go scheduler can starve the
	// paced reader goroutines for a whole 250ms window (observed under
	// -race with noisy neighbors), so a zero-read sample is retried a
	// few times before it counts as a failure.
	window := 250 * time.Millisecond
	baseline, _, _, err := readProbe(0, window)
	if err != nil {
		t.Fatal(err)
	}
	var withReaders, readTPS float64
	var queued int
	for attempt := 1; ; attempt++ {
		withReaders, readTPS, queued, err = readProbe(2, window)
		if err != nil {
			t.Fatal(err)
		}
		if readTPS > 0 && withReaders >= baseline/2 {
			break
		}
		if attempt == 3 {
			if readTPS <= 0 {
				t.Error("readers made no progress in 3 attempts")
			}
			if withReaders < baseline/2 {
				t.Errorf("ingest collapsed with readers attached: %.0f vs baseline %.0f", withReaders, baseline)
			}
			break
		}
	}
	t.Logf("ingest: %.0f → %.0f batches/s with 2 readers (%.2fx); reads %.0f/s", baseline, withReaders, withReaders/baseline, readTPS)
	if queued != 0 {
		t.Errorf("read traffic appeared in the scheduler queue: depth %d", queued)
	}
}

func TestSkewShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	// The point of intra-partition parallelism: fully-skewed routing
	// (zipf s=8 puts ~99.6% of calls on partition 0) with disjoint
	// writes must run well ahead of the serial loop on 4 workers,
	// while a fully-conflicting workload — every adjacent pair shares
	// a table — must degrade to serial order at near-zero cost. Both
	// probes are boundary-wait dominated, so the shape holds on a
	// single-CPU host. Timing noise gets a bounded retry.
	routes := skewRoutes(8, 300)
	for attempt := 1; ; attempt++ {
		serial, _, _, _, err := skewProbe(false, 0, routes)
		if err != nil {
			t.Fatal(err)
		}
		par, _, _, parTasks, err := skewProbe(false, 4, routes)
		if err != nil {
			t.Fatal(err)
		}
		conSerial, _, _, _, err := skewProbe(true, 0, routes)
		if err != nil {
			t.Fatal(err)
		}
		conPar, _, _, _, err := skewProbe(true, 4, routes)
		if err != nil {
			t.Fatal(err)
		}
		if parTasks == 0 {
			t.Fatalf("disjoint workload formed no waves")
		}
		if par >= 2*serial && conPar >= 0.9*conSerial {
			t.Logf("disjoint %.0f → %.0f calls/s (%.1fx); conflicting %.0f → %.0f (%.2fx)",
				serial, par, par/serial, conSerial, conPar, conPar/conSerial)
			return
		}
		if attempt == 3 {
			t.Fatalf("skew shape off: disjoint %.0f → %.0f (want ≥2x), conflicting %.0f → %.0f (want ≥0.9x)",
				serial, par, conSerial, conPar)
		}
	}
}

func TestAllocShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	// Alloc itself fails if any gated hot path allocates; the shape
	// check here is the end-to-end row staying bounded — steady-state
	// ingest through pooled tasks and version chains should cost tens
	// of allocations per batch (scheduler + SQL layer), never hundreds.
	table, err := Alloc(quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, table)
	if !strings.Contains(out, "ingest_steady") {
		t.Fatalf("missing end-to-end row:\n%s", out)
	}
	for _, row := range table.Rows() {
		if row[0] == "ingest_steady" {
			if per, ok := row[1].(float64); !ok || per > 200 {
				t.Fatalf("ingest_steady = %v allocs/batch, want a bounded (< 200) number", row[1])
			}
		}
	}
}

func TestSpillShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	// The storage-manager seam's claim: an archive table whose page
	// file has grown several times past its buffer-pool budget still
	// ingests history appends at near in-memory throughput. The ratio
	// bound is loose (CI hosts are noisy); the reference run in
	// EXPERIMENTS.md records parity or better.
	opts := quickOpts(t)
	budget := int64(64 << 10)
	memTput, _, err := spillProbe(opts, false, budget, 500)
	if err != nil {
		t.Fatal(err)
	}
	archTput, pageBytes, err := spillProbe(opts, true, budget, 500)
	if err != nil {
		t.Fatal(err)
	}
	if pageBytes < 4*budget {
		t.Errorf("archive grew to %d bytes, want >= 4x the %d budget", pageBytes, budget)
	}
	if archTput < 0.5*memTput {
		t.Errorf("archive appends %.0f rows/s vs %.0f in memory (< 0.5x)", archTput, memTput)
	}
}
