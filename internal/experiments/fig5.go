package experiments

import (
	"fmt"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/netsim"
	"sstore/internal/pe"
	"sstore/internal/types"
)

// Fig5 reproduces Figure 5: execution-engine triggers. One stored
// procedure pushes a tuple through N query stages over streams. In
// S-Store the stages are EE triggers — everything after the first
// insert happens inside the EE, and stream GC is automatic. In H-Store
// the procedure submits each stage (an INSERT plus the DELETE that GC
// would have done) as separate execution batches from the PE to the
// EE, paying the boundary crossing every time (§4.1).
func Fig5(opts Options) (*benchutil.Table, error) {
	stages := opts.pick([]int{1, 4, 10}, []int{1, 2, 4, 6, 8, 10})
	window := time.Duration(opts.n(150, 600)) * time.Millisecond
	table := benchutil.NewTable("ee_triggers", "sstore_tps", "hstore_tps", "speedup")

	for _, n := range stages {
		ss, err := fig5Rate(n, true, window)
		if err != nil {
			return nil, err
		}
		hs, err := fig5Rate(n, false, window)
		if err != nil {
			return nil, err
		}
		table.AddRow(n, ss, hs, ss/hs)
	}
	return table, nil
}

// fig5Rate measures one configuration's closed-loop TPS.
func fig5Rate(stages int, eeTriggers bool, window time.Duration) (float64, error) {
	eng, err := pe.NewEngine(pe.Options{EEDispatch: netsim.DefaultEEDispatch})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	if err := eng.ExecDDL("CREATE TABLE f5_sink (v BIGINT)"); err != nil {
		return 0, err
	}
	for i := 1; i <= stages+1; i++ {
		if err := eng.ExecDDL(fmt.Sprintf("CREATE STREAM f5_s%d (v BIGINT)", i)); err != nil {
			return 0, err
		}
	}
	if eeTriggers {
		// Stage i: trigger on f5_s(i) inserting into f5_s(i+1); the
		// last stage lands in the sink table. GC is automatic.
		for i := 1; i <= stages; i++ {
			target := fmt.Sprintf("f5_s%d", i+1)
			if i == stages {
				target = "f5_sink"
			}
			stmt := fmt.Sprintf("INSERT INTO %s SELECT v FROM f5_s%d", target, i)
			if err := eng.AddEETrigger(fmt.Sprintf("f5_s%d", i), stmt); err != nil {
				return 0, err
			}
		}
		err = eng.RegisterProc(&pe.StoredProc{Name: "F5", Func: func(ctx *pe.ProcCtx) error {
			_, err := ctx.Query("INSERT INTO f5_s1 VALUES (?)", ctx.Params()[0])
			return err
		}})
	} else {
		// H-Store: one PE→EE batch per statement — an insert and a
		// delete per stage (§4.1: "the deletion statements are not
		// needed in S-Store").
		var stmts []string
		for i := 1; i <= stages; i++ {
			target := fmt.Sprintf("f5_s%d", i+1)
			if i == stages {
				target = "f5_sink"
			}
			stmts = append(stmts,
				fmt.Sprintf("INSERT INTO %s SELECT v FROM f5_s%d", target, i),
				fmt.Sprintf("DELETE FROM f5_s%d", i),
			)
		}
		err = eng.RegisterProc(&pe.StoredProc{Name: "F5", Func: func(ctx *pe.ProcCtx) error {
			if _, err := ctx.Query("INSERT INTO f5_s1 VALUES (?)", ctx.Params()[0]); err != nil {
				return err
			}
			for _, s := range stmts {
				if _, err := ctx.Query(s); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if err != nil {
		return 0, err
	}
	v := int64(0)
	return benchutil.MeasureRate(window, func() error {
		v++
		_, err := eng.Call("F5", types.Row{types.NewInt(v)})
		return err
	})
}
