package experiments

import (
	"fmt"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/stream"
	"sstore/internal/types"
)

// Fig6 reproduces Figure 6: partition-engine triggers. A workflow of
// N+1 identical stored procedures must run in exact sequence per input
// batch. S-Store chains them with PE triggers inside the engine and
// its streaming scheduler fast-tracks the downstream TEs, so the
// client can feed batches asynchronously. H-Store has no PE triggers:
// the client must invoke each step and wait for its result before
// submitting the next, paying a round trip per transaction — its
// throughput tapers early while S-Store's stays roughly flat
// (workflows/sec, log scale in the paper).
func Fig6(opts Options) (*benchutil.Table, error) {
	triggers := opts.pick([]int{1, 4}, []int{1, 2, 4, 8, 16})
	workflows := opts.n(300, 2000)
	table := benchutil.NewTable("pe_triggers", "sstore_wf_per_s", "hstore_wf_per_s", "speedup")

	window := time.Duration(opts.n(250, 1000)) * time.Millisecond
	for _, n := range triggers {
		spCount := n + 1
		ss, err := fig6SStore(spCount, workflows)
		if err != nil {
			return nil, err
		}
		hs, err := fig6HStore(spCount, window)
		if err != nil {
			return nil, err
		}
		table.AddRow(n, ss, hs, ss/hs)
	}
	return table, nil
}

// fig6SStore feeds k batches asynchronously through the deployed
// workflow and measures end-to-end workflows per second.
func fig6SStore(spCount, k int) (float64, error) {
	eng, err := chainEngine(spCount, true, microOpts())
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	start := time.Now()
	for b := 1; b <= k; b++ {
		if err := eng.Ingest("cs1", &stream.Batch{ID: int64(b), Rows: []types.Row{intRow(int64(b))}}); err != nil {
			return 0, err
		}
	}
	if err := eng.Drain(); err != nil {
		return 0, err
	}
	if err := eng.TriggerErr(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	// Sanity: every workflow ran to the last SP.
	last := eng.SPExecutions(fmt.Sprintf("ChainSP%d", spCount))
	if last != uint64(k) {
		return 0, fmt.Errorf("experiments: fig6: %d of %d workflows completed", last, k)
	}
	return float64(k) / elapsed.Seconds(), nil
}

// fig6HStore chains the calls from the client: each step is a
// synchronous Call over the simulated link, measured for a fixed wall
// window.
func fig6HStore(spCount int, window time.Duration) (float64, error) {
	eng, err := chainEngine(spCount, false, microOpts())
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	names := make([]string, spCount)
	for i := range names {
		names[i] = fmt.Sprintf("HChainSP%d", i+1)
	}
	b := int64(0)
	return benchutil.MeasureRate(window, func() error {
		b++
		if _, err := eng.Call("HChainFeed", types.Row{types.NewInt(b)}); err != nil {
			return err
		}
		for _, sp := range names {
			if _, err := eng.Call(sp, nil); err != nil {
				return err
			}
		}
		return nil
	})
}
