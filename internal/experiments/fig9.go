package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/netsim"
	"sstore/internal/pe"
	"sstore/internal/recovery"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
)

// Fig9a reproduces Figure 9a: logging overhead. The Figure 6 chain
// workflow runs with command logging enabled and group commit off —
// every logged commit fsyncs individually. Strong recovery logs every
// TE, so throughput falls as workflows grow; weak recovery logs only
// the border TE, one record per workflow regardless of length (§4.4).
func Fig9a(opts Options) (*benchutil.Table, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("experiments: Fig9a needs Options.Dir")
	}
	triggers := opts.pick([]int{1, 4}, []int{1, 2, 4, 8})
	workflows := opts.n(100, 500)
	table := benchutil.NewTable("pe_triggers", "strong_wf_per_s", "weak_wf_per_s", "weak_speedup", "strong_log_recs", "weak_log_recs")

	for _, n := range triggers {
		spCount := n + 1
		strongTPS, strongRecs, err := fig9Run(opts.Dir, recovery.ModeStrong, spCount, workflows)
		if err != nil {
			return nil, err
		}
		weakTPS, weakRecs, err := fig9Run(opts.Dir, recovery.ModeWeak, spCount, workflows)
		if err != nil {
			return nil, err
		}
		table.AddRow(n, strongTPS, weakTPS, weakTPS/strongTPS, int(strongRecs), int(weakRecs))
	}
	return table, nil
}

// fig9Run executes k workflows through the chain with logging and
// returns workflows/sec and log records written.
func fig9Run(dir string, mode recovery.Mode, spCount, k int) (float64, uint64, error) {
	scratch, err := os.MkdirTemp(dir, "fig9-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(scratch)
	eng, err := chainEngine(spCount, true, pe.Options{
		Recovery:    mode,
		LogPath:     filepath.Join(scratch, "cmd.log"),
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: scratch,
	})
	if err != nil {
		return 0, 0, err
	}
	defer eng.Close()
	start := time.Now()
	for b := 1; b <= k; b++ {
		if err := eng.Ingest("cs1", &stream.Batch{ID: int64(b), Rows: []types.Row{intRow(int64(b))}}); err != nil {
			return 0, 0, err
		}
	}
	if err := eng.Drain(); err != nil {
		return 0, 0, err
	}
	if err := eng.TriggerErr(); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	appends, _ := eng.Stats().LogAppends, 0
	return float64(k) / elapsed.Seconds(), appends, nil
}

// Fig9b reproduces Figure 9b: recovery time. After running R workflows
// under each mode, the engine "crashes" and a fresh engine replays the
// log. Strong recovery replays every TE through the client — one round
// trip per logged record — so its recovery time grows with workflow
// length; weak recovery replays only border records and re-derives the
// interior TEs inside the engine via PE triggers, staying roughly flat
// (§4.4).
func Fig9b(opts Options) (*benchutil.Table, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("experiments: Fig9b needs Options.Dir")
	}
	triggers := opts.pick([]int{1, 4}, []int{1, 2, 4, 8})
	workflows := opts.n(50, 200)
	table := benchutil.NewTable("pe_triggers", "strong_recovery_ms", "weak_recovery_ms", "strong_over_weak")

	for _, n := range triggers {
		spCount := n + 1
		strongMS, err := fig9Recover(opts.Dir, recovery.ModeStrong, spCount, workflows)
		if err != nil {
			return nil, err
		}
		weakMS, err := fig9Recover(opts.Dir, recovery.ModeWeak, spCount, workflows)
		if err != nil {
			return nil, err
		}
		table.AddRow(n, strongMS, weakMS, strongMS/weakMS)
	}
	return table, nil
}

func fig9Recover(dir string, mode recovery.Mode, spCount, k int) (float64, error) {
	scratch, err := os.MkdirTemp(dir, "fig9b-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(scratch)
	mk := func() (*pe.Engine, error) {
		return chainEngine(spCount, true, pe.Options{
			ClientRTT:   netsim.DefaultClientRTT, // recovery replay is client-driven
			Recovery:    mode,
			LogPath:     filepath.Join(scratch, "cmd.log"),
			LogPolicy:   wal.SyncEachCommit,
			SnapshotDir: scratch,
		})
	}
	eng, err := mk()
	if err != nil {
		return 0, err
	}
	for b := 1; b <= k; b++ {
		if err := eng.Ingest("cs1", &stream.Batch{ID: int64(b), Rows: []types.Row{intRow(int64(b))}}); err != nil {
			eng.Close()
			return 0, err
		}
	}
	if err := eng.Drain(); err != nil {
		eng.Close()
		return 0, err
	}
	if err := eng.Close(); err != nil { // crash: memory gone, log durable
		return 0, err
	}
	fresh, err := mk()
	if err != nil {
		return 0, err
	}
	defer fresh.Close()
	start := time.Now()
	if err := fresh.Recover(); err != nil {
		return 0, err
	}
	recoveryTime := time.Since(start)
	// Sanity: the last SP processed every workflow.
	if got := fresh.SPExecutions(fmt.Sprintf("ChainSP%d", spCount)); got != uint64(k) {
		return 0, fmt.Errorf("experiments: fig9b: recovered %d of %d workflows", got, k)
	}
	return float64(recoveryTime.Milliseconds()), nil
}
