package experiments

import (
	"fmt"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/leaderboard"
	"sstore/internal/pe"
	"sstore/internal/stream"
	"sstore/internal/types"
)

// Ablations isolates the contributions of individual design choices
// that the figures measure only in combination:
//
//   - index-vs-scan: the leaderboard workflow with and without the
//     phone index. This is S-Store's own version of the §4.6.3 Spark
//     analysis — validation by indexed lookup vs by table scan — and
//     quantifies why "providing a lookup rather than a table scan"
//     matters as state grows.
//   - batch-size: S-Store ingest with 1, 10, and 100 tuples per atomic
//     batch. Larger batches amortize per-TE overhead (§2.1's batching
//     primitive exists exactly for "bounding computation on streams").
//   - ee-triggers-off: the Figure 5 chain with triggers replaced by
//     in-procedure statements but *without* the simulated boundary
//     cost, separating the trigger mechanism's intrinsic overhead from
//     the crossing cost it avoids.
func Ablations(opts Options) (*benchutil.Table, error) {
	table := benchutil.NewTable("ablation", "config", "metric", "value")

	// --- index vs scan ---
	votes := opts.n(1500, 10000)
	for _, indexed := range []bool{true, false} {
		tps, err := ablationIndex(indexed, votes)
		if err != nil {
			return nil, err
		}
		cfg := "indexed"
		if !indexed {
			cfg = "scan"
		}
		table.AddRow("validation-lookup", cfg, "votes/s", tps)
	}

	// --- batch size ---
	tuples := opts.n(3000, 20000)
	for _, size := range []int{1, 10, 100} {
		tps, err := ablationBatchSize(size, tuples)
		if err != nil {
			return nil, err
		}
		table.AddRow("batch-size", fmt.Sprint(size), "tuples/s", tps)
	}

	// --- EE trigger mechanism cost without boundary simulation ---
	window := time.Duration(opts.n(150, 400)) * time.Millisecond
	for _, mode := range []string{"ee-triggers", "inline-sql"} {
		tps, err := ablationTriggerMechanism(mode == "ee-triggers", window)
		if err != nil {
			return nil, err
		}
		table.AddRow("trigger-mechanism", mode, "txn/s", tps)
	}
	return table, nil
}

// ablationIndex runs the S-Store leaderboard with or without the
// unique phone index (scan mode drops it, so validation scans the
// votes table per vote).
func ablationIndex(indexed bool, votes int) (float64, error) {
	cfg := leaderboard.Config{}
	eng, err := pe.NewEngine(pe.Options{})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	seed := func(stmt string) error {
		_, err := eng.AdHoc(0, stmt)
		return err
	}
	if indexed {
		err = leaderboard.SetupSchema(eng, cfg, seed)
	} else {
		err = leaderboard.SetupSchemaNoPhoneIndex(eng, cfg, seed)
	}
	if err != nil {
		return 0, err
	}
	for _, sp := range leaderboard.Procs(cfg) {
		if err := eng.RegisterProc(sp); err != nil {
			return 0, err
		}
	}
	w, err := leaderboard.Workflow()
	if err != nil {
		return 0, err
	}
	if err := eng.DeployWorkflow(w); err != nil {
		return 0, err
	}
	gen := leaderboard.NewGenerator(23, cfg)
	start := time.Now()
	for b := 1; b <= votes; b++ {
		if err := eng.Ingest(leaderboard.StreamVotesIn, &stream.Batch{ID: int64(b), Rows: []types.Row{gen.Next()}}); err != nil {
			return 0, err
		}
	}
	if err := eng.Drain(); err != nil {
		return 0, err
	}
	if err := eng.TriggerErr(); err != nil {
		return 0, err
	}
	return float64(votes) / time.Since(start).Seconds(), nil
}

// ablationBatchSize pushes the same tuple count through the chain
// workflow with different atomic-batch sizes.
func ablationBatchSize(batchSize, tuples int) (float64, error) {
	eng, err := chainEngine(2, true, pe.Options{})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	start := time.Now()
	batches := tuples / batchSize
	for b := 1; b <= batches; b++ {
		rows := make([]types.Row, batchSize)
		for i := range rows {
			rows[i] = intRow(int64(b*batchSize + i))
		}
		if err := eng.Ingest("cs1", &stream.Batch{ID: int64(b), Rows: rows}); err != nil {
			return 0, err
		}
	}
	if err := eng.Drain(); err != nil {
		return 0, err
	}
	if err := eng.TriggerErr(); err != nil {
		return 0, err
	}
	return float64(batches*batchSize) / time.Since(start).Seconds(), nil
}

// ablationTriggerMechanism compares the EE-trigger machinery to plain
// in-procedure statements with the boundary simulation off, exposing
// the trigger dispatch cost itself.
func ablationTriggerMechanism(triggers bool, window time.Duration) (float64, error) {
	eng, err := pe.NewEngine(pe.Options{})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	if err := eng.ExecDDL("CREATE TABLE ab_sink (v BIGINT)"); err != nil {
		return 0, err
	}
	for i := 1; i <= 4; i++ {
		if err := eng.ExecDDL(fmt.Sprintf("CREATE STREAM ab_s%d (v BIGINT)", i)); err != nil {
			return 0, err
		}
	}
	if triggers {
		for i := 1; i <= 3; i++ {
			target := fmt.Sprintf("ab_s%d", i+1)
			if i == 3 {
				target = "ab_sink"
			}
			if err := eng.AddEETrigger(fmt.Sprintf("ab_s%d", i),
				fmt.Sprintf("INSERT INTO %s SELECT v FROM ab_s%d", target, i)); err != nil {
				return 0, err
			}
		}
		err = eng.RegisterProc(&pe.StoredProc{Name: "AB", Func: func(ctx *pe.ProcCtx) error {
			_, err := ctx.Query("INSERT INTO ab_s1 VALUES (?)", ctx.Params()[0])
			return err
		}})
	} else {
		err = eng.RegisterProc(&pe.StoredProc{Name: "AB", Func: func(ctx *pe.ProcCtx) error {
			if _, err := ctx.Query("INSERT INTO ab_s1 VALUES (?)", ctx.Params()[0]); err != nil {
				return err
			}
			for i := 1; i <= 3; i++ {
				target := fmt.Sprintf("ab_s%d", i+1)
				if i == 3 {
					target = "ab_sink"
				}
				if _, err := ctx.Query(fmt.Sprintf("INSERT INTO %s SELECT v FROM ab_s%d", target, i)); err != nil {
					return err
				}
				if _, err := ctx.Query(fmt.Sprintf("DELETE FROM ab_s%d", i)); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if err != nil {
		return 0, err
	}
	v := int64(0)
	return benchutil.MeasureRate(window, func() error {
		v++
		_, err := eng.Call("AB", types.Row{types.NewInt(v)})
		return err
	})
}
