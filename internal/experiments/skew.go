package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/pe"
	"sstore/internal/types"
)

// The skew experiment measures what dependency-aware intra-partition
// parallelism (Options.Workers) buys when partitioning stops helping:
// client calls are routed by a zipfian draw over the partitions, so as
// the zipf exponent grows the load concentrates on partition 0 and
// adding partitions is useless — the only headroom left is running
// non-conflicting TEs of the hot partition concurrently. Two workloads
// bound the answer: "disjoint" spreads writes over skewTables tables
// (adjacent TEs rarely conflict, waves form), "conflicting" funnels
// every write into one table (every adjacent pair conflicts, the
// dispatcher must degrade to serial order — the interesting number is
// how little that degradation costs).

// skewDispatch is the simulated PE→EE crossing cost; like the scale
// experiment it is heavy enough that each TE body is dominated by a
// boundary wait workers can overlap, which keeps the experiment
// meaningful on single-CPU CI hosts.
const skewDispatch = 250 * time.Microsecond

// skewPartitions is the partition count; the zipf draw concentrates
// calls on partition 0 as s grows.
const skewPartitions = 4

// skewTables is how many disjoint tables the non-conflicting workload
// stripes writes over (round-robin), bounding wave width.
const skewTables = 16

// skewWorkers is the worker-pool size of the parallel configurations.
const skewWorkers = 4

// Skew sweeps the zipf exponent and the per-partition worker count and
// reports throughput, p50/p99 call latency, and the parallel speedup
// over the serial (workers=0) run of the identical call sequence.
// zipf_s=8 is effectively fully skewed (≈99.6% of calls on one
// partition).
func Skew(opts Options) (*benchutil.Table, error) {
	table := benchutil.NewTable("workload", "zipf_s", "workers",
		"calls_per_sec", "p50_ms", "p99_ms", "parallel_tasks", "speedup_vs_serial")
	sVals := []float64{1.1, 1.5, 3.0, 8.0}
	workers := []int{0, 2, skewWorkers}
	if opts.Quick {
		sVals = []float64{1.2, 8.0}
		workers = []int{0, skewWorkers}
	}
	n := opts.n(300, 1500)
	for _, workload := range []string{"disjoint", "conflicting"} {
		conflicting := workload == "conflicting"
		for _, s := range sVals {
			routes := skewRoutes(s, n)
			base := 0.0
			for _, w := range workers {
				tput, p50, p99, par, err := skewProbe(conflicting, w, routes)
				if err != nil {
					return nil, fmt.Errorf("skew %s s=%.1f w=%d: %w", workload, s, w, err)
				}
				if w == 0 {
					base = tput
				}
				speedup := 0.0
				if base > 0 {
					speedup = tput / base
				}
				table.AddRow(workload, s, w, tput,
					float64(p50)/1e6, float64(p99)/1e6, par, speedup)
			}
		}
	}
	return table, nil
}

// skewRoutes precomputes the zipfian partition of every call, so each
// worker configuration replays the identical sequence.
func skewRoutes(s float64, n int) []int {
	z := rand.NewZipf(rand.New(rand.NewSource(17)), s, 1, skewPartitions-1)
	routes := make([]int, n)
	for i := range routes {
		routes[i] = int(z.Uint64())
	}
	return routes
}

// skewEngine builds the engine: params[0] of every call is its
// precomputed partition. The disjoint workload registers one declared
// single-table writer per stripe; the conflicting workload registers a
// single declared writer so every adjacent pair of calls conflicts.
func skewEngine(conflicting bool, workers int) (*pe.Engine, error) {
	eng, err := pe.NewEngine(pe.Options{
		Partitions: skewPartitions,
		Workers:    workers,
		EEDispatch: skewDispatch,
		RouteCall: func(_ string, params types.Row) int {
			return int(params[0].Int())
		},
	})
	if err != nil {
		return nil, err
	}
	register := func(sp string, tbl string) error {
		if err := eng.ExecDDL(fmt.Sprintf("CREATE TABLE %s (k BIGINT, v BIGINT)", tbl)); err != nil {
			return err
		}
		stmt := fmt.Sprintf("INSERT INTO %s VALUES (?, ?)", tbl)
		return eng.RegisterProc(&pe.StoredProc{
			Name:   sp,
			Access: &pe.ProcAccess{Writes: []string{tbl}},
			Func: func(ctx *pe.ProcCtx) error {
				_, err := ctx.Query(stmt, ctx.Params()[1], ctx.Params()[0])
				return err
			},
		})
	}
	if conflicting {
		if err := register("SkewShared", "skew_shared"); err != nil {
			eng.Close()
			return nil, err
		}
		return eng, nil
	}
	for i := 0; i < skewTables; i++ {
		if err := register(fmt.Sprintf("Skew%d", i), fmt.Sprintf("skew_t%d", i)); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return eng, nil
}

// skewProbe floods the engine with the precomputed call sequence from
// one submitting goroutine (admission order is fixed), records each
// call's submit-to-reply latency, and reports calls/sec plus latency
// percentiles and how many tasks ran on the parallel path.
func skewProbe(conflicting bool, workers int, routes []int) (
	tput float64, p50, p99 time.Duration, parallelTasks uint64, err error) {
	eng, err := skewEngine(conflicting, workers)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer eng.Close()
	var lat benchutil.LatencyRecorder
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	tput, err = benchutil.MeasureThroughput(len(routes),
		func(i int) error {
			sp := "SkewShared"
			if !conflicting {
				sp = fmt.Sprintf("Skew%d", i%skewTables)
			}
			params := types.Row{types.NewInt(int64(routes[i])), types.NewInt(int64(i))}
			start := time.Now()
			ch := eng.CallAsync(sp, params)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if r := <-ch; r.Err != nil {
					select {
					case errc <- r.Err:
					default:
					}
					return
				}
				lat.Record(time.Since(start))
			}()
			return nil
		},
		func() error {
			wg.Wait()
			select {
			case err := <-errc:
				return err
			default:
			}
			return eng.Drain()
		},
	)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return tput, lat.Percentile(50), lat.Percentile(99), eng.Stats().TasksParallel, nil
}
