package experiments

import (
	"fmt"
	"os"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/linearroad"
	"sstore/internal/pe"
	"sstore/internal/recovery"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
	"sstore/internal/workflow"
)

// scaleDispatch is the simulated PE→EE crossing cost for the scaling
// probes. It is deliberately heavier than DefaultEEDispatch so each
// interior TE's cost is dominated by boundary waits the partitions can
// overlap — which is what makes the experiment meaningful on any host,
// including single-CPU CI runners where partitions cannot add raw
// compute. On real multi-core hardware the same benchmark additionally
// scales the compute itself.
const scaleDispatch = 250 * time.Microsecond

// scaleKeySpace is the number of distinct routing keys the synthetic
// workload spreads interior batches over; fixed so every partition
// count runs the identical workload.
const scaleKeySpace = 8

// scaleWorkQueries is how many statements the interior SP issues per
// batch (each paying one boundary crossing); the border SP issues one.
const scaleWorkQueries = 8

// Scale measures whole-workflow throughput as the partition count
// grows, with PartitionBy spreading *interior* batches across
// partitions: the border SP admits every batch on partition 0 and the
// heavy interior SP runs wherever the batch's key routes it. This is
// the generalization of the paper's §4.7 x-way scaling past the border
// — without interior routing, a workflow is pinned to the partition
// that ingested it and extra partitions add nothing. A Linear Road
// x-way run (border and minute-mark batches both routed by x-way)
// rides along as the realistic workload.
//
// The routed-pipeline-logged variant reruns the synthetic pipeline
// with strong command logging under group commit: every TE's commit
// blocks on its partition's log. With the sharded log set each
// partition flushes its own file, so the logged workflow still scales
// with partitions; a shared log would re-serialize on one mutex and
// one fsync queue exactly the work the routing spread out.
func Scale(opts Options) (*benchutil.Table, error) {
	table := benchutil.NewTable("workload", "partitions", "workflows_per_sec", "speedup_vs_1p")
	parts := opts.pick([]int{1, 4}, []int{1, 2, 4, 8})
	workloads := []struct {
		name  string
		probe func(Options, int) (float64, error)
	}{
		{"routed-pipeline", scaleRoutedProbe},
		{"routed-pipeline-logged", scaleRoutedLoggedProbe},
		{"linearroad-xway", scaleLinearRoadProbe},
	}
	for _, w := range workloads {
		var base float64
		for _, np := range parts {
			tput, err := w.probe(opts, np)
			if err != nil {
				return nil, fmt.Errorf("scale %s p=%d: %w", w.name, np, err)
			}
			if np == 1 {
				base = tput
			}
			speedup := 0.0
			if base > 0 {
				speedup = tput / base
			}
			table.AddRow(w.name, np, tput, speedup)
		}
	}
	return table, nil
}

// scaleRoutedEngine builds the synthetic pipeline: border SP "Admit"
// copies each batch from scale_in to scale_jobs; interior SP "Work"
// issues scaleWorkQueries statements against the batch and records the
// outcome. PartitionBy pins the border stream to partition 0 and routes
// scale_jobs by the key every tuple of a batch shares.
func scaleRoutedEngine(parts int, base pe.Options) (*pe.Engine, error) {
	base.Partitions = parts
	base.EEDispatch = scaleDispatch
	if base.PartitionBy == nil {
		base.PartitionBy = func(streamName string, batch []types.Row) int {
			if streamName != "scale_jobs" || len(batch) == 0 {
				return 0
			}
			return int(batch[0][0].Int()) % parts
		}
	}
	eng, err := pe.NewEngine(base)
	if err != nil {
		return nil, err
	}
	for _, ddl := range []string{
		"CREATE STREAM scale_in (k BIGINT, v BIGINT)",
		"CREATE STREAM scale_jobs (k BIGINT, v BIGINT)",
		"CREATE TABLE scale_results (k BIGINT, v BIGINT)",
	} {
		if err := eng.ExecDDL(ddl); err != nil {
			eng.Close()
			return nil, err
		}
	}
	err = eng.RegisterProc(&pe.StoredProc{Name: "Admit", Func: func(ctx *pe.ProcCtx) error {
		_, err := ctx.Query("INSERT INTO scale_jobs SELECT k, v FROM scale_in")
		return err
	}})
	if err != nil {
		eng.Close()
		return nil, err
	}
	err = eng.RegisterProc(&pe.StoredProc{Name: "Work", Func: func(ctx *pe.ProcCtx) error {
		for i := 0; i < scaleWorkQueries-1; i++ {
			if _, err := ctx.Query("SELECT COUNT(*) FROM scale_jobs"); err != nil {
				return err
			}
		}
		_, err := ctx.Query("INSERT INTO scale_results SELECT k, v FROM scale_jobs")
		return err
	}})
	if err != nil {
		eng.Close()
		return nil, err
	}
	w, err := workflow.New("scale", []workflow.Node{
		{SP: "Admit", Input: "scale_in", Outputs: []string{"scale_jobs"}},
		{SP: "Work", Input: "scale_jobs"},
	})
	if err != nil {
		eng.Close()
		return nil, err
	}
	if err := eng.DeployWorkflow(w); err != nil {
		eng.Close()
		return nil, err
	}
	return eng, nil
}

func scaleRoutedProbe(opts Options, parts int) (float64, error) {
	eng, err := scaleRoutedEngine(parts, pe.Options{})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	return driveScaleRouted(opts, eng)
}

// driveScaleRouted pushes the keyed batch stream through a routed
// pipeline engine and reports workflows per second.
func driveScaleRouted(opts Options, eng *pe.Engine) (float64, error) {
	n := opts.n(150, 600)
	tput, err := benchutil.MeasureThroughput(n,
		func(i int) error {
			b := &stream.Batch{
				ID:   int64(i + 1),
				Rows: []types.Row{{types.NewInt(int64(i % scaleKeySpace)), types.NewInt(int64(i))}},
			}
			return eng.Ingest("scale_in", b)
		},
		eng.Drain,
	)
	if err != nil {
		return 0, err
	}
	if err := eng.TriggerErr(); err != nil {
		return 0, err
	}
	return tput, nil
}

// scaleRoutedLoggedProbe is the routed pipeline with durability on:
// strong recovery (border and interior TEs logged) under group
// commit, the log sharded one file per partition in a scratch
// directory. Border batches route by key too, so commits — and their
// log appends — land on every partition's own log rather than
// funneling through one file.
func scaleRoutedLoggedProbe(opts Options, parts int) (float64, error) {
	scratch, err := os.MkdirTemp(opts.Dir, "scale-log-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(scratch)
	routeBoth := func(streamName string, batch []types.Row) int {
		if len(batch) == 0 {
			return 0
		}
		return int(batch[0][0].Int()) % parts
	}
	eng, err := scaleRoutedEngine(parts, pe.Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     scratch, // directory: one cmd-p<N>.log per partition
		LogPolicy:   wal.SyncGroup,
		SnapshotDir: scratch,
		PartitionBy: routeBoth,
	})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	return driveScaleRouted(opts, eng)
}

// scaleLinearRoadProbe drives the Linear Road workflow with a fixed
// x-way count, partitioned by x-way, under the same heavy boundary
// cost; throughput is position reports per second through the full
// workflow.
func scaleLinearRoadProbe(opts Options, parts int) (float64, error) {
	cfg := linearroad.Config{XWays: scaleKeySpace}
	eng, err := pe.NewEngine(pe.Options{
		Partitions:  parts,
		EEDispatch:  scaleDispatch,
		PartitionBy: linearroad.PartitionByXWay(parts),
	})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	seed := func(xway int, stmt string) error {
		_, err := eng.AdHoc(xway%parts, stmt)
		return err
	}
	if err := linearroad.SetupSchema(eng, cfg, seed); err != nil {
		return 0, err
	}
	for _, sp := range linearroad.Procs(cfg) {
		if err := eng.RegisterProc(sp); err != nil {
			return 0, err
		}
	}
	w, err := linearroad.Workflow()
	if err != nil {
		return 0, err
	}
	if err := eng.DeployWorkflow(w); err != nil {
		return 0, err
	}
	gen := linearroad.NewGenerator(23, cfg)
	n := opts.n(150, 600)
	tput, err := benchutil.MeasureThroughput(n,
		func(i int) error {
			r := gen.Next()
			return eng.Ingest(linearroad.StreamReports, &stream.Batch{ID: int64(i + 1), Rows: []types.Row{r.Row()}})
		},
		eng.Drain,
	)
	if err != nil {
		return 0, err
	}
	if err := eng.TriggerErr(); err != nil {
		return 0, err
	}
	return tput, nil
}
