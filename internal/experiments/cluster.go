package experiments

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sstore"
	"sstore/client"
	"sstore/internal/benchutil"
	"sstore/internal/linearroad"
	"sstore/internal/server"
	"sstore/internal/types"
)

// Cluster measures scale-out (DESIGN.md §13): Linear Road at city
// scale — LinearRoadXWays expressways — driven over real TCP against
// real sstore-server processes, comparing a single 4-partition process
// with the same four partitions split across 2 and 4 node processes.
// Both streams route by x-way, so the workload is shared-nothing: each
// node runs its expressways' full workflow on its own partitions, log,
// and ledger shards, and adding processes adds real OS-level
// parallelism (separate runtimes, separate allocators) at the price of
// per-node client connections.
//
// Exactly-once is verified per expressway: every position report
// increments exactly one seg_stats row, and the minute rollup moves
// those counts to stats_history verbatim — so for each x-way,
// Σ seg_stats.cnt + Σ stats_history.cnt must equal the reports
// ingested for it, whichever node served them.
func Cluster(opts Options) (*benchutil.Table, error) {
	table := benchutil.NewTable("config", "nodes", "reports_per_sec", "speedup_vs_1proc", "exactly_once")
	bin, err := buildServerBinary(opts.Dir)
	if err != nil {
		return nil, err
	}
	const parts = 4
	nodeCounts := opts.pick([]int{1, 2}, []int{1, 2, 4})
	nReports := opts.n(2000, 20000)
	var base float64
	for _, nodes := range nodeCounts {
		name := fmt.Sprintf("cluster-%dn", nodes)
		if nodes == 1 {
			name = "single-4p"
		}
		tput, exact, err := clusterRun(bin, nodes, parts, nReports, opts)
		if err != nil {
			return nil, fmt.Errorf("cluster %s: %w", name, err)
		}
		if nodes == 1 {
			base = tput
		}
		speedup := 0.0
		if base > 0 {
			speedup = tput / base
		}
		table.AddRow(name, nodes, tput, speedup, exact)
	}
	return table, nil
}

// clusterRun starts the server process(es) for one configuration,
// drives the workload, verifies exactly-once, and tears down.
func clusterRun(bin string, nodes, parts, nReports int, opts Options) (tput float64, exact bool, err error) {
	var procs []*serverProc
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	var spec string
	if nodes == 1 {
		p, err := startServer(bin, "-addr", "127.0.0.1:0", "-app", "linearroad",
			"-partitions", fmt.Sprint(parts))
		if err != nil {
			return 0, false, err
		}
		procs = append(procs, p)
		spec = fmt.Sprintf("0@%s=0-%d", p.Addr, parts-1)
	} else {
		addrs, err := reserveAddrs(nodes)
		if err != nil {
			return 0, false, err
		}
		spec = clusterSpec(addrs, parts)
		for id, addr := range addrs {
			p, err := startServer(bin, "-addr", addr, "-app", "linearroad",
				"-cluster", spec, "-node", fmt.Sprint(id))
			if err != nil {
				return 0, false, err
			}
			procs = append(procs, p)
		}
	}
	cc, err := client.DialClusterSpec(spec)
	if err != nil {
		return 0, false, err
	}
	defer cc.Close()
	return driveLinearRoad(cc, parts, nReports)
}

// clusterSpec splits partitions 0..parts-1 evenly across the node
// addresses in the textual -cluster format.
func clusterSpec(addrs []string, parts int) string {
	per := parts / len(addrs)
	var b strings.Builder
	for id, addr := range addrs {
		if id > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d@%s=%d-%d", id, addr, id*per, id*per+per-1)
	}
	return b.String()
}

// driveLinearRoad pushes city-scale traffic through the cluster — one
// pipelined ingest worker per partition, batch IDs sequential per
// partition as the exactly-once ledger requires — then checks the
// per-x-way report counts on whichever node owns each x-way.
func driveLinearRoad(cc *client.ClusterClient, parts, nReports int) (tput float64, exact bool, err error) {
	cfg := linearroad.Config{XWays: server.LinearRoadXWays}
	gen := linearroad.NewGenerator(23, cfg)
	perPart := make([][]types.Row, parts)
	counts := make([]int, server.LinearRoadXWays)
	for i := 0; i < nReports; i++ {
		r := gen.Next()
		pid := int(r.XWay) % parts
		perPart[pid] = append(perPart[pid], r.Row())
		counts[r.XWay]++
	}

	const window = 32
	errc := make(chan error, parts)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := range perPart {
		rows := perPart[pid]
		if len(rows) == 0 {
			continue
		}
		wg.Add(1)
		go func(pid int, rows []types.Row) {
			defer wg.Done()
			node, err := cc.Config().Owner(pid)
			if err != nil {
				errc <- err
				return
			}
			c, err := cc.Node(node.ID)
			if err != nil {
				errc <- err
				return
			}
			acks := make([]<-chan error, 0, window)
			flush := func(keep int) error {
				for len(acks) > keep {
					if err := <-acks[0]; err != nil {
						return err
					}
					acks = acks[1:]
				}
				return nil
			}
			for i, row := range rows {
				ack, err := c.IngestAsync(linearroad.StreamReports, &sstore.Batch{
					ID: int64(i + 1), Rows: []sstore.Row{row},
				})
				if err != nil {
					errc <- err
					return
				}
				acks = append(acks, ack)
				if err := flush(window - 1); err != nil {
					errc <- err
					return
				}
			}
			if err := flush(0); err != nil {
				errc <- err
			}
		}(pid, rows)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return 0, false, err
	default:
	}
	if err := cc.Drain(); err != nil {
		return 0, false, err
	}
	tput = float64(nReports) / time.Since(start).Seconds()

	exact = true
	for x := 0; x < server.LinearRoadXWays; x++ {
		got := 0
		for _, q := range []string{
			"SELECT cnt FROM seg_stats WHERE xway = ?",
			"SELECT cnt FROM stats_history WHERE xway = ?",
		} {
			res, err := cc.Query(x%parts, q, sstore.Int(int64(x)))
			if err != nil {
				return 0, false, err
			}
			for _, r := range res.Rows {
				got += int(r[0].Int())
			}
		}
		if got != counts[x] {
			exact = false
			return tput, false, fmt.Errorf(
				"x-way %d: %d reports counted, %d ingested (exactly-once violated)", x, got, counts[x])
		}
	}
	return tput, exact, nil
}

// buildServerBinary compiles cmd/sstore-server into dir once per
// experiment run.
func buildServerBinary(dir string) (string, error) {
	root, err := modRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "sstore-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sstore-server")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build ./cmd/sstore-server: %v\n%s", err, out)
	}
	return bin, nil
}

// modRoot walks up from the working directory to the go.mod.
func modRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above working directory")
		}
		dir = parent
	}
}

// reserveAddrs picks n distinct loopback addresses by briefly binding
// ephemeral ports. Cluster nodes need their addresses before they
// start (every process gets the same map), so unlike -addr :0 the
// ports are chosen first and rebound by the servers.
func reserveAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// serverProc is one running sstore-server process.
type serverProc struct {
	cmd *exec.Cmd
	// Addr is the announced listen address.
	Addr string
}

// startServer launches the binary and waits for its readiness line
// ("listening on <addr>"), returning the announced address.
func startServer(bin string, args ...string) (*serverProc, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &serverProc{cmd: cmd}
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				lineCh <- strings.TrimSpace(line[i+len("listening on "):])
				return
			}
		}
		close(lineCh)
	}()
	select {
	case addr, ok := <-lineCh:
		if !ok {
			p.Stop()
			return nil, fmt.Errorf("server exited before announcing its address")
		}
		p.Addr = addr
		return p, nil
	case <-time.After(30 * time.Second):
		p.Stop()
		return nil, fmt.Errorf("server never announced its listen address")
	}
}

// Stop terminates the process (kill; the experiment owns no state
// worth a graceful drain) and reaps it.
func (p *serverProc) Stop() {
	if p.cmd.Process != nil {
		//lint:allow errdrop -- best-effort teardown of a scratch process
		p.cmd.Process.Kill()
	}
	//lint:allow errdrop -- the exit status of a killed scratch process is noise
	p.cmd.Wait()
}
