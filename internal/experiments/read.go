package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/pe"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/workflow"
)

// readWorkflow wires the single border node.
func readWorkflow() (*workflow.Workflow, error) {
	return workflow.New("read-feed", []workflow.Node{{SP: "RdFeed", Input: "rd_in"}})
}

// readPollEvery paces each reader: one aggregate query per tick, the
// monitoring-dashboard shape.
const readPollEvery = 250 * time.Microsecond

// Read measures the snapshot read path (ISSUE 5): N concurrent readers
// run aggregate queries against a window that a sustained ingest
// workload keeps sliding. Reads execute against pinned per-partition
// views — never entering the partition scheduler queue — so the claims
// on trial are:
//
//   - ingest_vs_baseline: ingest throughput with N readers attached
//     stays within a few percent of the reader-free baseline (readers
//     steal no scheduler slots; maintained aggregates are captured at
//     pin time, so a read usually touches no live table at all);
//   - reads_per_sec: aggregate read throughput grows with the reader
//     count instead of serializing behind the write path;
//   - read_queue_tasks: the maximum partition queue depth observed
//     while ONLY readers run — 0, because the read path never queues.
//
// The workload: a border SP ingests batches into a stream and copies
// them into a size-512 window with maintained COUNT/SUM; readers loop
// `SELECT COUNT(v), SUM(v) FROM rd_win` through Engine.Read. Readers
// are paced (readPollEvery between queries, the dashboard-poll shape)
// rather than spinning: on small CI hosts an unpaced reader burns the
// core the single injector needs, which would measure CPU contention,
// not the read path. The per-read cost is a pin (one mutex + an O(#
// aggregates) capture) and an O(1) accumulator read — no scheduler
// slot, no table scan, no copy.
func Read(opts Options) (*benchutil.Table, error) {
	table := benchutil.NewTable("readers", "ingest_per_sec", "ingest_vs_baseline", "reads_per_sec", "read_queue_tasks")
	readers := opts.pick([]int{0, 1, 2}, []int{0, 1, 2, 4, 8})
	window := time.Duration(opts.n(150, 500)) * time.Millisecond
	var base float64
	for _, n := range readers {
		ingestTPS, readTPS, queued, err := readProbe(n, window)
		if err != nil {
			return nil, fmt.Errorf("read readers=%d: %w", n, err)
		}
		if n == readers[0] {
			base = ingestTPS
		}
		rel := 0.0
		if base > 0 {
			rel = ingestTPS / base
		}
		table.AddRow(n, ingestTPS, rel, readTPS, queued)
	}
	return table, nil
}

// readEngine builds the read-path workload: border stream → window
// with maintained aggregates.
func readEngine() (*pe.Engine, error) {
	eng, err := pe.NewEngine(pe.Options{})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*pe.Engine, error) {
		eng.Close()
		return nil, err
	}
	for _, ddl := range []string{
		"CREATE STREAM rd_in (v BIGINT)",
		"CREATE WINDOW rd_win (v BIGINT) SIZE 512 SLIDE 1",
	} {
		if err := eng.ExecDDL(ddl); err != nil {
			return fail(err)
		}
	}
	err = eng.RegisterProc(&pe.StoredProc{Name: "RdFeed", Func: func(ctx *pe.ProcCtx) error {
		_, err := ctx.Query("INSERT INTO rd_win SELECT v FROM rd_in")
		return err
	}})
	if err != nil {
		return fail(err)
	}
	w, err := readWorkflow()
	if err != nil {
		return fail(err)
	}
	if err := eng.DeployWorkflow(w); err != nil {
		return fail(err)
	}
	for _, fn := range []string{"count", "sum"} {
		if err := eng.MaintainWindowAggregate("rd_win", fn, "v"); err != nil {
			return fail(err)
		}
	}
	return eng, nil
}

// readProbe runs the mixed workload for the given duration: one
// injector sustaining ingest, n readers looping the aggregate query.
// It returns ingest batches/sec, reads/sec, and the maximum queue
// depth sampled during a trailing readers-only phase.
func readProbe(nReaders int, window time.Duration) (ingestTPS, readTPS float64, maxQueued int, err error) {
	eng, err := readEngine()
	if err != nil {
		return 0, 0, 0, err
	}
	defer eng.Close()

	const readStmt = "SELECT COUNT(v), SUM(v) FROM rd_win"
	stop := make(chan struct{})
	var reads atomic.Int64
	var readErr atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(readPollEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				if _, err := eng.Read(0, readStmt); err != nil {
					readErr.Store(err)
					return
				}
				reads.Add(1)
			}
		}()
	}

	// Warm up (fills the window and steadies allocator behavior), then
	// sustain ingest for the measurement window.
	ingest := func(first int64, dur time.Duration) (int64, time.Duration, error) {
		var n int64
		start := time.Now()
		for batch := first; time.Since(start) < dur; batch++ {
			b := &stream.Batch{ID: batch, Rows: []types.Row{{types.NewInt(batch)}, {types.NewInt(-batch)}}}
			if err := eng.IngestSync("rd_in", b); err != nil {
				return n, time.Since(start), err
			}
			n++
		}
		return n, time.Since(start), nil
	}
	warm, _, err := ingest(1, window/3)
	if err != nil {
		close(stop)
		wg.Wait()
		return 0, 0, 0, err
	}
	reads.Store(0)
	batches, elapsed, err := ingest(warm+1, window)
	nReadsMeasured := reads.Load()
	if err != nil {
		close(stop)
		wg.Wait()
		return 0, 0, 0, err
	}
	// Readers-only phase: with ingest stopped, any queue depth above
	// zero would mean read traffic occupies scheduler slots. It never
	// does — reads pin views off-queue.
	if nReaders > 0 {
		probeUntil := time.Now().Add(window / 4)
		for time.Now().Before(probeUntil) {
			d, err := eng.QueueDepth(0)
			if err != nil {
				close(stop)
				wg.Wait()
				return 0, 0, 0, err
			}
			if d > maxQueued {
				maxQueued = d
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if err, ok := readErr.Load().(error); ok && err != nil {
		return 0, 0, 0, err
	}
	if err := eng.Drain(); err != nil {
		return 0, 0, 0, err
	}
	return float64(batches) / elapsed.Seconds(), float64(nReadsMeasured) / elapsed.Seconds(), maxQueued, nil
}
