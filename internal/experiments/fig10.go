package experiments

import (
	"path/filepath"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/leaderboard"
	"sstore/internal/netsim"
	"sstore/internal/pe"
	"sstore/internal/recovery"
	"sstore/internal/stormlike"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
)

// Fig10 reproduces Figure 10: the leaderboard benchmark on modern
// stream processors, in two variants — the full workload with vote
// validation (left) and the simplified one without it (right).
// S-Store runs the transactional version with logging, one vote per
// batch. The Spark-Streaming-like engine needs micro-batches to
// perform at all, and with validation on it collapses: no index over
// state means every vote scans all recorded votes. The Trident-like
// engine keeps up with S-Store but pays an external-store hop per
// state access and manual windowing (§4.6).
// sparkScheduleOverhead is the per-micro-batch job cost charged to the
// Spark-like engine (driver scheduling, task serialization): a
// documented simulation parameter, conservative against Spark
// Streaming's observed per-batch overheads.
const sparkScheduleOverhead = 5 * time.Millisecond

func Fig10(opts Options) (*benchutil.Table, error) {
	votes := opts.n(2000, 50000)
	cfgVal := leaderboard.Config{}
	cfgNoVal := leaderboard.Config{SkipValidation: true}
	table := benchutil.NewTable("system", "variant", "votes_per_s")

	type run struct {
		system  string
		variant string
		fn      func() (float64, error)
	}
	runs := []run{
		{"s-store", "validation", func() (float64, error) { return fig10SStore(opts, cfgVal, votes) }},
		{"spark-like", "validation", func() (float64, error) { return fig10Spark(cfgVal, votes, true) }},
		{"trident-like", "validation", func() (float64, error) { return fig10Trident(cfgVal, votes, true) }},
		{"s-store", "no-validation", func() (float64, error) { return fig10SStore(opts, cfgNoVal, votes) }},
		{"spark-like", "no-validation", func() (float64, error) { return fig10Spark(cfgNoVal, votes, false) }},
		{"trident-like", "no-validation", func() (float64, error) { return fig10Trident(cfgNoVal, votes, false) }},
	}
	for _, r := range runs {
		tps, err := r.fn()
		if err != nil {
			return nil, err
		}
		table.AddRow(r.system, r.variant, tps)
	}
	return table, nil
}

// fig10SStore runs the transactional workflow, logging on (weak mode,
// per-commit sync), one vote per batch.
func fig10SStore(opts Options, cfg leaderboard.Config, votes int) (float64, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	scratch, err := filepath.Abs(dir)
	if err != nil {
		return 0, err
	}
	// Logging is on (weak mode) but buffered rather than fsync-per-
	// commit: the comparison systems log and checkpoint
	// asynchronously ("workflows are logged asynchronously using
	// Storm's logging capabilities", §4.6.2; Spark checkpoints
	// asynchronously), so synchronous durability here would compare
	// unlike guarantees.
	eng, err := pe.NewEngine(pe.Options{
		ClientRTT:   netsim.DefaultClientRTT,
		EEDispatch:  netsim.DefaultEEDispatch,
		Recovery:    recovery.ModeWeak,
		LogPath:     filepath.Join(scratch, "fig10-cmd.log"),
		LogPolicy:   wal.SyncNone,
		SnapshotDir: scratch,
	})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	// Seeds are setup state re-issued at boot, like DDL; ad-hoc writes
	// are rejected while command logging is on.
	seed := func(stmt string) error { return eng.ExecDDL(stmt) }
	if err := leaderboard.SetupSchema(eng, cfg, seed); err != nil {
		return 0, err
	}
	for _, sp := range leaderboard.Procs(cfg) {
		if err := eng.RegisterProc(sp); err != nil {
			return 0, err
		}
	}
	w, err := leaderboard.Workflow()
	if err != nil {
		return 0, err
	}
	if err := eng.DeployWorkflow(w); err != nil {
		return 0, err
	}
	gen := leaderboard.NewGenerator(13, cfg)
	start := time.Now()
	for b := 1; b <= votes; b++ {
		if err := eng.Ingest(leaderboard.StreamVotesIn, &stream.Batch{ID: int64(b), Rows: []types.Row{gen.Next()}}); err != nil {
			return 0, err
		}
	}
	if err := eng.Drain(); err != nil {
		return 0, err
	}
	if err := eng.TriggerErr(); err != nil {
		return 0, err
	}
	return float64(votes) / time.Since(start).Seconds(), nil
}

// fig10Spark drives the D-Stream deployment with 100-vote
// micro-batches (one vote per batch would be "extremely poor", §4.6.1,
// so the comparison grants Spark its batching).
func fig10Spark(cfg leaderboard.Config, votes int, validation bool) (float64, error) {
	const microBatch = 100
	s := leaderboard.NewSparkLeaderboard(cfg, 4, 10, validation)
	s.ScheduleOverhead = sparkScheduleOverhead
	gen := leaderboard.NewGenerator(13, cfg)
	start := time.Now()
	batch := make([]types.Row, 0, microBatch)
	for i := 0; i < votes; i++ {
		batch = append(batch, gen.Next())
		if len(batch) == microBatch {
			if _, err := s.ProcessBatch(batch); err != nil {
				return 0, err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if _, err := s.ProcessBatch(batch); err != nil {
			return 0, err
		}
	}
	return float64(votes) / time.Since(start).Seconds(), nil
}

// fig10Trident drives the Trident deployment with 50-vote transactional
// batches against the external store.
func fig10Trident(cfg leaderboard.Config, votes int, validation bool) (float64, error) {
	const batchSize = 50
	t := leaderboard.NewTridentLeaderboard(cfg, stormlike.DefaultKVHop, validation)
	gen := leaderboard.NewGenerator(13, cfg)
	start := time.Now()
	batch := make([]types.Row, 0, batchSize)
	for i := 0; i < votes; i++ {
		batch = append(batch, gen.Next())
		if len(batch) == batchSize {
			if err := t.ProcessBatch(batch); err != nil {
				return 0, err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := t.ProcessBatch(batch); err != nil {
			return 0, err
		}
	}
	return float64(votes) / time.Since(start).Seconds(), nil
}
