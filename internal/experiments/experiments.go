// Package experiments regenerates every table and figure of the
// paper's evaluation (§4). Each FigN function builds the systems under
// test from this repository's engines, runs the paper's workload
// shape, and returns the result rows; cmd/sstore-bench prints them and
// bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers will not match the paper (different hardware,
// language, and a simulated network — see DESIGN.md §3); the shapes
// are what these experiments reproduce: who wins, by roughly what
// factor, and where the crossovers fall.
package experiments

import (
	"fmt"

	"sstore/internal/netsim"
	"sstore/internal/pe"
	"sstore/internal/types"
	"sstore/internal/workflow"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks sweeps and windows for CI and testing.B use.
	Quick bool
	// Dir is a scratch directory for logs and snapshots (required by
	// Fig9a/Fig9b).
	Dir string
}

func (o Options) pick(quick, full []int) []int {
	if o.Quick {
		return quick
	}
	return full
}

func (o Options) n(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// chainEngine builds a micro-benchmark engine with an N-SP chain
// workflow (the Figure 6 shape): SP_i consumes s_i and inserts the
// batch into s_(i+1); the last SP inserts into a sink table. With
// deploy=false the SPs are registered but no workflow is wired — the
// H-Store configuration, where the client chains the calls itself.
func chainEngine(n int, deploy bool, opts pe.Options) (*pe.Engine, error) {
	eng, err := pe.NewEngine(opts)
	if err != nil {
		return nil, err
	}
	if err := eng.ExecDDL("CREATE TABLE chain_sink (v BIGINT)"); err != nil {
		eng.Close()
		return nil, err
	}
	var nodes []workflow.Node
	for i := 1; i <= n; i++ {
		if err := eng.ExecDDL(fmt.Sprintf("CREATE STREAM cs%d (v BIGINT)", i)); err != nil {
			eng.Close()
			return nil, err
		}
		sp := fmt.Sprintf("ChainSP%d", i)
		in := fmt.Sprintf("cs%d", i)
		out := fmt.Sprintf("cs%d", i+1)
		last := i == n
		node := workflow.Node{SP: sp, Input: in}
		if !last {
			node.Outputs = []string{out}
		}
		nodes = append(nodes, node)
		stmt := "INSERT INTO " + out + " SELECT v FROM " + in
		if last {
			stmt = "INSERT INTO chain_sink SELECT v FROM " + in
		}
		err := eng.RegisterProc(&pe.StoredProc{Name: sp, Func: func(ctx *pe.ProcCtx) error {
			_, err := ctx.Query(stmt)
			return err
		}})
		if err != nil {
			eng.Close()
			return nil, err
		}
	}
	if deploy {
		w, err := workflow.New("chain", nodes)
		if err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.DeployWorkflow(w); err != nil {
			eng.Close()
			return nil, err
		}
	} else {
		// H-Store mode: the "streams" are ordinary consumable tables;
		// each SP must clean its input itself (no automatic GC), and
		// the client invokes SPs in order. Re-register cleanup SPs.
		for i := 1; i <= n; i++ {
			sp := fmt.Sprintf("HChainSP%d", i)
			in := fmt.Sprintf("cs%d", i)
			out := fmt.Sprintf("cs%d", i+1)
			last := i == n
			stmt := "INSERT INTO " + out + " SELECT v FROM " + in
			if last {
				stmt = "INSERT INTO chain_sink SELECT v FROM " + in
			}
			del := "DELETE FROM " + in
			err := eng.RegisterProc(&pe.StoredProc{Name: sp, Func: func(ctx *pe.ProcCtx) error {
				if _, err := ctx.Query(stmt); err != nil {
					return err
				}
				_, err := ctx.Query(del)
				return err
			}})
			if err != nil {
				eng.Close()
				return nil, err
			}
		}
		// The first table still needs data pushed in; an insert SP
		// stands in for the border step.
		err := eng.RegisterProc(&pe.StoredProc{Name: "HChainFeed", Func: func(ctx *pe.ProcCtx) error {
			_, err := ctx.Query("INSERT INTO cs1 VALUES (?)", ctx.Params()[0])
			return err
		}})
		if err != nil {
			eng.Close()
			return nil, err
		}
	}
	return eng, nil
}

// microOpts is the engine configuration for the micro-benchmarks:
// simulated client RTT and PE→EE boundary on, logging off (§4:
// "logging was disabled unless otherwise specified").
func microOpts() pe.Options {
	return pe.Options{
		ClientRTT:  netsim.DefaultClientRTT,
		EEDispatch: netsim.DefaultEEDispatch,
	}
}

// intRow wraps one integer as a stream tuple.
func intRow(v int64) types.Row { return types.Row{types.NewInt(v)} }
