package experiments

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/netsim"
	"sstore/internal/pe"
	"sstore/internal/server"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wire"
)

// NetBench measures served workflow throughput as client connections
// grow — the client/server experiment the netsim package only
// simulated. Each sweep point builds a fresh pipeline-app engine with
// one partition per connection, serves it over a real loopback TCP
// socket (internal/server + the wire protocol), and drives it with N
// concurrent client connections, one sensor per connection, each
// acknowledging every batch's border commit before sending the next —
// so every batch pays a real socket round trip where the in-process
// reference pays netsim's simulated one. The inproc-simrtt rows are
// that reference: the identical workload driven through IngestSync
// with netsim.DefaultClientRTT charged per batch, which is what every
// experiment in this package did before the engine had a network front
// door.
func NetBench(opts Options) (*benchutil.Table, error) {
	table := benchutil.NewTable("transport", "connections", "batches_per_sec", "speedup_vs_1conn")
	conns := opts.pick([]int{1, 2}, []int{1, 2, 4, 8})
	n := opts.n(150, 1000) // batches per connection
	transports := []struct {
		name  string
		probe func(conns, n int) (float64, error)
	}{
		{"tcp-loopback", netServedProbe},
		{"inproc-simrtt", netSimRTTProbe},
	}
	for _, tr := range transports {
		var base float64
		for _, c := range conns {
			tput, err := tr.probe(c, n)
			if err != nil {
				return nil, fmt.Errorf("netbench %s conns=%d: %w", tr.name, c, err)
			}
			if c == conns[0] {
				base = tput
			}
			speedup := 0.0
			if base > 0 {
				speedup = tput / base
			}
			table.AddRow(tr.name, c, tput, speedup)
		}
	}
	return table, nil
}

// netPipelineEngine builds the served pipeline app with one partition
// per connection, so each connection's sensor routes to its own
// partition — and its own exactly-once ledger shard.
func netPipelineEngine(conns int) (*pe.Engine, error) {
	app := server.PipelineApp()
	eng, err := pe.NewEngine(pe.Options{
		Partitions:  conns,
		PartitionBy: app.PartitionBy,
		RouteCall:   app.RouteCall,
	})
	if err != nil {
		return nil, err
	}
	if err := app.Setup(eng); err != nil {
		eng.Close()
		return nil, err
	}
	return eng, nil
}

// netServedProbe serves the engine on a loopback socket and drives it
// with conns concurrent wire-protocol connections.
func netServedProbe(conns, n int) (float64, error) {
	eng, err := netPipelineEngine(conns)
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	srv := server.New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()
	addr := ln.Addr().String()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(sensor int) {
			defer wg.Done()
			if err := driveNetConn(addr, sensor, n); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	if err := eng.Drain(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if err := eng.TriggerErr(); err != nil {
		return 0, err
	}
	return float64(conns*n) / elapsed.Seconds(), nil
}

// driveNetConn is one benchmark client: a raw wire-protocol
// connection (the experiments package stays below sstore/client, which
// wraps exactly this loop) ingesting n batches for its sensor, each
// acknowledged before the next is sent.
func driveNetConn(addr string, sensor, n int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendHello(nil)); err != nil {
		return err
	}
	rbuf := newFrameReader(conn)
	if err := wire.ReadHello(rbuf.br); err != nil {
		return err
	}
	var buf []byte
	for id := int64(1); id <= int64(n); id++ {
		buf = wire.AppendRequest(buf[:0], &wire.Request{
			ID: uint64(id), Op: wire.OpIngest, Stream: "raw_readings", BatchID: id,
			Rows: []types.Row{{types.NewInt(int64(sensor)), types.NewInt(id % 1000)}},
		})
		if _, err := conn.Write(buf); err != nil {
			return err
		}
		resp, err := rbuf.next()
		if err != nil {
			return err
		}
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("batch %d: status %d: %s", id, resp.Status, resp.Msg)
		}
	}
	return nil
}

// netSimRTTProbe is the pre-network-front-door reference: the same
// workload in-process, with netsim's simulated client RTT charged per
// batch instead of a real socket round trip.
func netSimRTTProbe(conns, n int) (float64, error) {
	eng, err := netPipelineEngine(conns)
	if err != nil {
		return 0, err
	}
	defer eng.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(sensor int) {
			defer wg.Done()
			link := &netsim.Link{RTT: netsim.DefaultClientRTT}
			for id := int64(1); id <= int64(n); id++ {
				link.RoundTrip()
				err := eng.IngestSync("raw_readings", &stream.Batch{
					ID:   id,
					Rows: []types.Row{{types.NewInt(int64(sensor)), types.NewInt(id % 1000)}},
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	if err := eng.Drain(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if err := eng.TriggerErr(); err != nil {
		return 0, err
	}
	return float64(conns*n) / elapsed.Seconds(), nil
}

// frameReader decodes wire responses off a connection, reusing one
// grow-only frame buffer.
type frameReader struct {
	br      *bufio.Reader
	scratch []byte
}

func newFrameReader(conn net.Conn) *frameReader {
	return &frameReader{br: bufio.NewReader(conn)}
}

func (f *frameReader) next() (*wire.Response, error) {
	payload, err := wire.ReadFrameBuf(f.br, f.scratch)
	f.scratch = payload
	if err != nil {
		return nil, err
	}
	return wire.DecodeResponse(payload)
}
