package experiments

import (
	"bufio"
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"sstore/internal/benchutil"
	"sstore/internal/pe"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
	"sstore/internal/wire"
	"sstore/internal/workflow"
)

// Alloc audits the zero-allocation hot path (ISSUE 8): every codec and
// framing primitive a steady-state tuple passes through is measured
// with testing.AllocsPerRun over warm, grow-only buffers, and each
// gated row must come out at exactly 0 allocs/op:
//
//   - encode_row / decode_row: the types codec (unboxed Value fast
//     path; decode reuses the caller's Row scratch);
//   - wire_append / wire_read_frame: request framing and the
//     per-connection ReadFrameBuf scratch;
//   - wal_append: record framing into the logger's reused encode
//     buffer (SyncNone isolates the codec from fsync);
//
// plus one end-to-end row, ingest_steady: Mallocs per ingested batch
// through a live engine (border SP into a maintained window). That row
// is reported, not gated — the engine's scheduler, SQL layer, and the
// benchmark's own batch construction allocate by design; the pooling
// work (tasks, txn/proc contexts, version chains) shows up as this
// number staying flat and small rather than zero.
//
// The component gates are the same invariants the //sstore:allocgate
// tests enforce per package; this experiment exists so a perf run and
// CI see them end to end, in one table, next to the e2e number.
func Alloc(opts Options) (*benchutil.Table, error) {
	table := benchutil.NewTable("path", "allocs_per_op", "gate", "status")
	runs := opts.n(200, 2000)

	var failed []string
	gated := func(name string, fn func()) {
		n := testing.AllocsPerRun(runs, fn)
		status := "ok"
		if n != 0 {
			status = "FAIL"
			failed = append(failed, fmt.Sprintf("%s=%v", name, n))
		}
		table.AddRow(name, n, 0, status)
	}

	// types codec: one mixed row through the unboxed appenders.
	encRow := types.Row{types.NewInt(42), types.NewFloat(2.5), types.NewText("sensor-7")}
	buf := make([]byte, 0, 256)
	gated("encode_row", func() {
		buf = types.EncodeRow(buf[:0], encRow)
	})

	// Decode reuses the caller's scratch Row; the row is fixed-width
	// (text would retain a freshly copied string, which is the caller's
	// business, not the codec's).
	decEnc := types.EncodeRow(nil, types.Row{types.NewInt(7), types.NewFloat(1.5), types.NewBool(true)})
	scratchRow := make(types.Row, 0, 8)
	gated("decode_row", func() {
		r, _, err := types.DecodeRowAppend(scratchRow[:0], decEnc)
		if err != nil {
			panic(err)
		}
		scratchRow = r
	})

	// wire framing: append an ingest request into a warm buffer, then
	// read it back through the grow-only frame scratch.
	req := &wire.Request{ID: 9, Op: wire.OpIngest, Stream: "al_in", BatchID: 3,
		Rows: []types.Row{{types.NewInt(1)}, {types.NewInt(2)}}}
	frame := wire.AppendRequest(nil, req)
	wbuf := make([]byte, 0, len(frame))
	gated("wire_append", func() {
		wbuf = wire.AppendRequest(wbuf[:0], req)
	})
	rd := bytes.NewReader(frame)
	br := bufio.NewReader(rd)
	var scratch []byte
	warm := func() {
		rd.Reset(frame)
		br.Reset(rd)
		payload, err := wire.ReadFrameBuf(br, scratch)
		if err != nil {
			panic(err)
		}
		scratch = payload
	}
	warm()
	gated("wire_read_frame", warm)

	// wal append: record framing + buffered write, minus durability.
	log, err := wal.Open(wal.Options{Path: filepath.Join(opts.Dir, "alloc.log"), Policy: wal.SyncNone})
	if err != nil {
		return nil, fmt.Errorf("alloc: open wal: %w", err)
	}
	rec := &wal.Record{Kind: wal.KindOLTP, Partition: 0, SP: "AllocSP",
		Params: types.Row{types.NewInt(11), types.NewFloat(0.5)}}
	if _, err := log.Append(rec); err != nil {
		//lint:allow errdrop -- already failing; the append error wins
		log.Close()
		return nil, fmt.Errorf("alloc: warm wal append: %w", err)
	}
	gated("wal_append", func() {
		if _, err := log.Append(rec); err != nil {
			panic(err)
		}
	})
	if err := log.Close(); err != nil {
		return nil, fmt.Errorf("alloc: close wal: %w", err)
	}

	// End-to-end: Mallocs per batch through a live engine at steady
	// state. Reported, not gated — see the doc comment.
	perBatch, err := allocIngestProbe(opts.n(500, 5000))
	if err != nil {
		return nil, fmt.Errorf("alloc: ingest probe: %w", err)
	}
	table.AddRow("ingest_steady", perBatch, "-", "report")

	if failed != nil {
		return nil, fmt.Errorf("alloc: gated hot paths allocate: %v", failed)
	}
	return table, nil
}

// allocIngestProbe ingests warm-up batches, then measures heap Mallocs
// across n synchronous batches and returns allocations per batch.
func allocIngestProbe(n int) (float64, error) {
	eng, err := pe.NewEngine(pe.Options{})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	for _, ddl := range []string{
		"CREATE STREAM al_in (v BIGINT)",
		"CREATE WINDOW al_win (v BIGINT) SIZE 512 SLIDE 1",
	} {
		if err := eng.ExecDDL(ddl); err != nil {
			return 0, err
		}
	}
	err = eng.RegisterProc(&pe.StoredProc{Name: "AlFeed", Func: func(ctx *pe.ProcCtx) error {
		_, err := ctx.Query("INSERT INTO al_win SELECT v FROM al_in")
		return err
	}})
	if err != nil {
		return 0, err
	}
	w, err := workflow.New("alloc-feed", []workflow.Node{{SP: "AlFeed", Input: "al_in"}})
	if err != nil {
		return 0, err
	}
	if err := eng.DeployWorkflow(w); err != nil {
		return 0, err
	}

	rows := []types.Row{{types.NewInt(1)}, {types.NewInt(-1)}}
	ingest := func(first, count int64) error {
		for id := first; id < first+count; id++ {
			b := &stream.Batch{ID: id, Rows: rows}
			if err := eng.IngestSync("al_in", b); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm-up fills the window (so slides start evicting, the steady
	// state) and lets the pools reach their working set.
	warm := int64(n/2 + 600)
	if err := ingest(1, warm); err != nil {
		return 0, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := ingest(warm+1, int64(n)); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&m1)
	if err := eng.Drain(); err != nil {
		return 0, err
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(n), nil
}
