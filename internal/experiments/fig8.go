package experiments

import (
	"sync/atomic"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/leaderboard"
	"sstore/internal/netsim"
	"sstore/internal/pe"
	"sstore/internal/stream"
	"sstore/internal/types"
)

// Fig8 reproduces Figure 8: leaderboard maintenance, S-Store vs
// H-Store. Votes are offered at increasing rates. S-Store ingests
// asynchronously — PE triggers chain the three SPs in-engine and the
// streaming scheduler keeps the workflow ordered, so throughput tracks
// the offered rate until the engine saturates. The H-Store client must
// run the chain itself, synchronously deciding each next call from the
// previous result, so its throughput tapers as soon as the offered
// rate exceeds 1/(workflow round trips) (§4.5).
func Fig8(opts Options) (*benchutil.Table, error) {
	rateInts := opts.pick([]int{500, 2000}, []int{250, 500, 1000, 2000, 4000, 8000})
	rates := make([]float64, len(rateInts))
	for i, r := range rateInts {
		rates[i] = float64(r)
	}
	window := time.Duration(opts.n(400, 1500)) * time.Millisecond
	cfg := leaderboard.Config{}
	table := benchutil.NewTable("offered_votes_per_s", "sstore_wf_per_s", "hstore_wf_per_s")

	for _, rate := range rates {
		ss, err := fig8SStore(cfg, rate, window)
		if err != nil {
			return nil, err
		}
		hs, err := fig8HStore(cfg, rate, window)
		if err != nil {
			return nil, err
		}
		table.AddRow(int(rate), ss, hs)
	}
	return table, nil
}

func newLeaderboardSStore(cfg leaderboard.Config) (*pe.Engine, error) {
	eng, err := pe.NewEngine(pe.Options{
		ClientRTT:  netsim.DefaultClientRTT,
		EEDispatch: netsim.DefaultEEDispatch,
	})
	if err != nil {
		return nil, err
	}
	seed := func(stmt string) error {
		_, err := eng.AdHoc(0, stmt)
		return err
	}
	if err := leaderboard.SetupSchema(eng, cfg, seed); err != nil {
		eng.Close()
		return nil, err
	}
	for _, sp := range leaderboard.Procs(cfg) {
		if err := eng.RegisterProc(sp); err != nil {
			eng.Close()
			return nil, err
		}
	}
	w, err := leaderboard.Workflow()
	if err != nil {
		eng.Close()
		return nil, err
	}
	if err := eng.DeployWorkflow(w); err != nil {
		eng.Close()
		return nil, err
	}
	return eng, nil
}

func fig8SStore(cfg leaderboard.Config, rate float64, window time.Duration) (float64, error) {
	eng, err := newLeaderboardSStore(cfg)
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	gen := leaderboard.NewGenerator(11, cfg)
	var batchID atomic.Int64
	res, err := benchutil.OpenLoop(rate, window, func(done func()) error {
		b := &stream.Batch{ID: batchID.Add(1), Rows: []types.Row{gen.Next()}}
		// The border TE's commit marks the workflow underway; the
		// downstream TEs run immediately after via PE triggers.
		ch, err := eng.IngestAsync(leaderboard.StreamVotesIn, b)
		if err != nil {
			return err
		}
		go func() {
			<-ch
			done()
		}()
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := eng.Drain(); err != nil {
		return 0, err
	}
	if err := eng.TriggerErr(); err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

// fig8HStore offers votes at the target rate into a queue consumed by
// a single synchronous client — H-Store's ordering constraint means
// the chain cannot be pipelined, so the queue simply backs up beyond
// the client's capacity.
func fig8HStore(cfg leaderboard.Config, rate float64, window time.Duration) (float64, error) {
	eng, err := pe.NewEngine(pe.Options{
		ClientRTT:  netsim.DefaultClientRTT,
		EEDispatch: netsim.DefaultEEDispatch,
	})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	seed := func(stmt string) error {
		_, err := eng.AdHoc(0, stmt)
		return err
	}
	if err := leaderboard.SetupHStoreSchema(eng, cfg, seed); err != nil {
		return 0, err
	}
	for _, sp := range leaderboard.HStoreProcs(cfg) {
		if err := eng.RegisterProc(sp); err != nil {
			return 0, err
		}
	}
	call := func(sp string, params ...types.Value) (*pe.Result, error) {
		return eng.Call(sp, params)
	}
	gen := leaderboard.NewGenerator(11, cfg)
	queue := make(chan types.Row, int(rate*window.Seconds())+16)
	var processed atomic.Int64
	clientDone := make(chan error, 1)
	go func() {
		for vote := range queue {
			if _, err := leaderboard.HStoreClient(call, cfg, vote); err != nil {
				clientDone <- err
				return
			}
			processed.Add(1)
		}
		clientDone <- nil
	}()
	// Offer votes at the target rate.
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	next := start
	for time.Since(start) < window {
		if now := time.Now(); now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(interval)
		queue <- gen.Next()
	}
	elapsed := time.Since(start)
	close(queue)
	// Count only what completed within (approximately) the window.
	completed := processed.Load()
	if err := <-clientDone; err != nil {
		return 0, err
	}
	return float64(completed) / elapsed.Seconds(), nil
}
