package experiments

import (
	"fmt"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/pe"
	"sstore/internal/types"
)

// Window measures the incremental window engine across window sizes
// with a fixed slide of 1 — the worst case for scan-based upkeep,
// because every insert slides the window. Two claims are on trial
// (ISSUE 4, extending the paper's §4.3 native-window result):
//
//   - insert_tps: per-insert window upkeep is O(slide), not O(size) —
//     the column should be flat as the window grows;
//   - trig_maintained_tps: a trigger TE reading SUM/COUNT over the
//     window hits the maintained accumulators, so it is O(1) in the
//     window size and should also stay flat, while trig_scan_tps (the
//     same trigger without maintained aggregates, recomputing by scan)
//     degrades linearly — it is the H-Store-style baseline.
//
// No simulated network is applied: this experiment isolates the
// storage and execution layers the tentpole rebuilt.
func Window(opts Options) (*benchutil.Table, error) {
	sizes := opts.pick([]int{64, 512}, []int{100, 1000, 10000})
	window := time.Duration(opts.n(120, 400)) * time.Millisecond
	table := benchutil.NewTable("window_size", "insert_tps", "trig_maintained_tps", "trig_scan_tps", "maintained_speedup")
	for _, size := range sizes {
		ins, err := windowProbe(size, window, false, false)
		if err != nil {
			return nil, fmt.Errorf("window insert size=%d: %w", size, err)
		}
		maint, err := windowProbe(size, window, true, true)
		if err != nil {
			return nil, fmt.Errorf("window maintained size=%d: %w", size, err)
		}
		scan, err := windowProbe(size, window, false, true)
		if err != nil {
			return nil, fmt.Errorf("window scan size=%d: %w", size, err)
		}
		table.AddRow(size, ins, maint, scan, maint/scan)
	}
	return table, nil
}

// windowEngine builds an engine with one native window of the given
// size (slide 1) and an insert SP; the window is pre-filled so every
// measured insert runs the steady-state expire+activate path.
func windowEngine(size int, maintained bool, trigger bool) (*pe.Engine, error) {
	eng, err := pe.NewEngine(pe.Options{})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*pe.Engine, error) {
		eng.Close()
		return nil, err
	}
	ddl := fmt.Sprintf("CREATE WINDOW bw (v BIGINT) SIZE %d SLIDE 1", size)
	if err := eng.ExecDDL(ddl); err != nil {
		return fail(err)
	}
	err = eng.RegisterProc(&pe.StoredProc{Name: "WFeed", Func: func(ctx *pe.ProcCtx) error {
		_, err := ctx.Query("INSERT INTO bw VALUES (?)", ctx.Params()[0])
		return err
	}})
	if err != nil {
		return fail(err)
	}
	if trigger {
		if err := eng.ExecDDL("CREATE TABLE bw_out (total BIGINT, n BIGINT)"); err != nil {
			return fail(err)
		}
		// The trigger TE recomputes the window statistic on every
		// slide; keeping bw_out at one row bounds its own cost.
		err := eng.AddEETrigger("bw",
			"DELETE FROM bw_out",
			"INSERT INTO bw_out SELECT SUM(v), COUNT(*) FROM bw")
		if err != nil {
			return fail(err)
		}
	}
	if maintained {
		for _, fn := range []string{"sum", "count"} {
			if err := eng.MaintainWindowAggregate("bw", fn, "v"); err != nil {
				return fail(err)
			}
		}
		if err := eng.MaintainWindowAggregate("bw", "count", "*"); err != nil {
			return fail(err)
		}
	}
	for i := 0; i < size; i++ {
		if _, err := eng.Call("WFeed", types.Row{types.NewInt(int64(i))}); err != nil {
			return fail(err)
		}
	}
	return eng, nil
}

// windowProbe measures steady-state insert throughput against the
// configured engine variant (bare inserts, or a slide trigger reading
// the aggregate from maintained accumulators vs a scan).
func windowProbe(size int, window time.Duration, maintained, trigger bool) (float64, error) {
	eng, err := windowEngine(size, maintained, trigger)
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	v := int64(size)
	return benchutil.MeasureRate(window, func() error {
		v++
		_, err := eng.Call("WFeed", types.Row{types.NewInt(v)})
		return err
	})
}
