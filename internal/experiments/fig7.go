package experiments

import (
	"fmt"
	"time"

	"sstore/internal/benchutil"
	"sstore/internal/netsim"
	"sstore/internal/pe"
	"sstore/internal/types"
)

// Fig7 reproduces Figure 7: native windows. One stored procedure
// inserts tuples into a tuple-based sliding window. S-Store's native
// window keeps the slide bookkeeping in table metadata; the H-Store
// implementation maintains an ordering column, a staging flag, and a
// separate metadata table, sliding with a mix of SQL and host-language
// logic (§4.3). Throughput is swept over window size; slide is a fixed
// tenth of the size (the paper notes size dominates slide).
func Fig7(opts Options) (*benchutil.Table, error) {
	sizes := opts.pick([]int{10, 100}, []int{10, 50, 100, 500, 1000})
	window := time.Duration(opts.n(150, 600)) * time.Millisecond
	table := benchutil.NewTable("window_size", "sstore_tps", "hstore_tps", "speedup")

	for _, size := range sizes {
		slide := size / 10
		if slide < 1 {
			slide = 1
		}
		ss, err := fig7Native(size, slide, window)
		if err != nil {
			return nil, err
		}
		hs, err := fig7Manual(size, slide, window)
		if err != nil {
			return nil, err
		}
		table.AddRow(size, ss, hs, ss/hs)
	}
	return table, nil
}

func fig7Native(size, slide int, window time.Duration) (float64, error) {
	eng, err := pe.NewEngine(pe.Options{EEDispatch: netsim.DefaultEEDispatch})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	ddl := fmt.Sprintf("CREATE WINDOW f7_w (v BIGINT) SIZE %d SLIDE %d", size, slide)
	if err := eng.ExecDDLOwned("F7", ddl); err != nil {
		return 0, err
	}
	err = eng.RegisterProc(&pe.StoredProc{Name: "F7", Func: func(ctx *pe.ProcCtx) error {
		_, err := ctx.Query("INSERT INTO f7_w VALUES (?)", ctx.Params()[0])
		return err
	}})
	if err != nil {
		return 0, err
	}
	v := int64(0)
	return benchutil.MeasureRate(window, func() error {
		v++
		_, err := eng.Call("F7", types.Row{types.NewInt(v)})
		return err
	})
}

func fig7Manual(size, slide int, window time.Duration) (float64, error) {
	eng, err := pe.NewEngine(pe.Options{EEDispatch: netsim.DefaultEEDispatch})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	for _, ddl := range []string{
		"CREATE TABLE f7_w (seq BIGINT, v BIGINT, staged BOOLEAN)",
		"CREATE INDEX f7_w_seq ON f7_w (seq)",
		"CREATE TABLE f7_meta (next_seq BIGINT, staged_n BIGINT, active_n BIGINT)",
	} {
		if err := eng.ExecDDL(ddl); err != nil {
			return 0, err
		}
	}
	if _, err := eng.AdHoc(0, "INSERT INTO f7_meta VALUES (1, 0, 0)"); err != nil {
		return 0, err
	}
	sz, sl := int64(size), int64(slide)
	err = eng.RegisterProc(&pe.StoredProc{Name: "F7", Func: func(ctx *pe.ProcCtx) error {
		meta, err := ctx.Query("SELECT next_seq, staged_n, active_n FROM f7_meta")
		if err != nil {
			return err
		}
		seq, stagedN, activeN := meta.Rows[0][0].Int(), meta.Rows[0][1].Int(), meta.Rows[0][2].Int()
		if _, err := ctx.Query("INSERT INTO f7_w VALUES (?, ?, true)", types.NewInt(seq), ctx.Params()[0]); err != nil {
			return err
		}
		seq++
		stagedN++
		flip := func(n int64, from, to string) error {
			rows, err := ctx.Query("SELECT seq FROM f7_w WHERE staged = "+from+" ORDER BY seq LIMIT ?", types.NewInt(n))
			if err != nil {
				return err
			}
			for _, r := range rows.Rows {
				if to == "expired" {
					if _, err := ctx.Query("DELETE FROM f7_w WHERE seq = ?", r[0]); err != nil {
						return err
					}
				} else if _, err := ctx.Query("UPDATE f7_w SET staged = false WHERE seq = ?", r[0]); err != nil {
					return err
				}
			}
			return nil
		}
		if activeN == 0 && stagedN >= sz {
			if err := flip(sz, "true", "active"); err != nil {
				return err
			}
			stagedN -= sz
			activeN = sz
		}
		for activeN > 0 && stagedN >= sl {
			if err := flip(sl, "false", "expired"); err != nil {
				return err
			}
			if err := flip(sl, "true", "active"); err != nil {
				return err
			}
			stagedN -= sl
		}
		_, err = ctx.Query("UPDATE f7_meta SET next_seq = ?, staged_n = ?, active_n = ?",
			types.NewInt(seq), types.NewInt(stagedN), types.NewInt(activeN))
		return err
	}})
	if err != nil {
		return 0, err
	}
	v := int64(0)
	return benchutil.MeasureRate(window, func() error {
		v++
		_, err := eng.Call("F7", types.Row{types.NewInt(v)})
		return err
	})
}
