package types

import (
	"fmt"
	"strings"
)

// Column describes one column of a table or stream schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered set of named, typed columns.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Column names are
// case-insensitive and must be unique.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if key == "" {
			return nil, fmt.Errorf("types: column %d has empty name", i)
		}
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("types: duplicate column %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically-known schemas; it panics on error.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the ordinal of the named column (case-insensitive) and
// whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[strings.ToLower(name)]
	return i, ok
}

// Project returns a new schema with only the named columns, in the
// given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i, ok := s.Index(n)
		if !ok {
			return nil, fmt.Errorf("types: no column %q", n)
		}
		cols = append(cols, s.cols[i])
	}
	return NewSchema(cols...)
}

// Validate checks a row against the schema: correct arity, and each
// value either NULL or coercible to the column kind. It returns the
// (possibly coerced) row.
func (s *Schema) Validate(row Row) (Row, error) {
	if len(row) != len(s.cols) {
		return nil, fmt.Errorf("types: row has %d values, schema has %d columns", len(row), len(s.cols))
	}
	out := row
	copied := false
	for i, v := range row {
		if v.IsNull() || v.Kind() == s.cols[i].Kind {
			continue
		}
		cv, err := v.CoerceTo(s.cols[i].Kind)
		if err != nil {
			return nil, fmt.Errorf("types: column %q: %w", s.cols[i].Name, err)
		}
		if !copied {
			out = append(Row(nil), row...)
			copied = true
		}
		out[i] = cv
	}
	return out, nil
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple of values positionally matching a schema.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row { return append(Row(nil), r...) }

// String renders the row for debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Equal reports whether two rows are the same length and pairwise equal.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}
