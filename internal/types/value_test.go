package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"null", Null, KindNull, "NULL"},
		{"int", NewInt(-42), KindInt, "-42"},
		{"float", NewFloat(2.5), KindFloat, "2.5"},
		{"text", NewText("abc"), KindText, "abc"},
		{"bool", NewBool(true), KindBool, "true"},
		{"timestamp", NewTimestamp(7), KindTimestamp, "7µs"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
	if NewInt(3).Int() != 3 {
		t.Error("Int payload mismatch")
	}
	if NewFloat(1.5).Float() != 1.5 {
		t.Error("Float payload mismatch")
	}
	if NewText("x").Text() != "x" {
		t.Error("Text payload mismatch")
	}
	if !NewBool(true).Bool() {
		t.Error("Bool payload mismatch")
	}
	if NewTimestamp(9).Timestamp() != 9 {
		t.Error("Timestamp payload mismatch")
	}
	if NewInt(2).Float() != 2.0 {
		t.Error("int should coerce through Float()")
	}
}

func TestValuePanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Text() on int should panic")
		}
	}()
	_ = NewInt(1).Text()
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Value
		want    int
		wantErr bool
	}{
		{"int lt", NewInt(1), NewInt(2), -1, false},
		{"int eq", NewInt(5), NewInt(5), 0, false},
		{"int gt", NewInt(3), NewInt(2), 1, false},
		{"int float mixed", NewInt(1), NewFloat(1.5), -1, false},
		{"float int equal", NewFloat(2.0), NewInt(2), 0, false},
		{"text", NewText("a"), NewText("b"), -1, false},
		{"bool", NewBool(false), NewBool(true), -1, false},
		{"null lt int", Null, NewInt(0), -1, false},
		{"int gt null", NewInt(0), Null, 1, false},
		{"null eq null", Null, Null, 0, false},
		{"ts int", NewTimestamp(5), NewInt(6), -1, false},
		{"text int err", NewText("a"), NewInt(1), 0, true},
		{"bool int err", NewBool(true), NewInt(1), 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.a.Compare(tt.b)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Compare error = %v, wantErr %v", err, tt.wantErr)
			}
			if !tt.wantErr && got != tt.want {
				t.Errorf("Compare = %d, want %d", got, tt.want)
			}
		})
	}
}

// TestCompareTotalOrderInts checks antisymmetry and transitivity of the
// integer ordering via testing/quick.
func TestCompareTotalOrderInts(t *testing.T) {
	antisym := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		return x.MustCompare(y) == -y.MustCompare(x)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	trans := func(a, b, c int64) bool {
		vals := []Value{NewInt(a), NewInt(b), NewInt(c)}
		// If a<=b and b<=c then a<=c.
		if vals[0].MustCompare(vals[1]) <= 0 && vals[1].MustCompare(vals[2]) <= 0 {
			return vals[0].MustCompare(vals[2]) <= 0
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
}

// TestHashConsistentWithEqual: equal values hash equal, across numeric
// kinds.
func TestHashConsistentWithEqual(t *testing.T) {
	f := func(n int64) bool {
		iv, fv := NewInt(n), NewFloat(float64(n))
		if !iv.Equal(fv) {
			return true
		}
		return iv.Hash() == fv.Hash()
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	if NewText("a").Hash() == NewText("b").Hash() {
		t.Error("distinct texts should rarely collide; got equal hashes for a/b")
	}
}

func TestCoerceTo(t *testing.T) {
	v, err := NewInt(3).CoerceTo(KindFloat)
	if err != nil || v.Float() != 3.0 {
		t.Errorf("int→float = %v, %v", v, err)
	}
	v, err = NewFloat(4.0).CoerceTo(KindInt)
	if err != nil || v.Int() != 4 {
		t.Errorf("float→int = %v, %v", v, err)
	}
	if _, err = NewFloat(4.5).CoerceTo(KindInt); err == nil {
		t.Error("lossy float→int should fail")
	}
	if _, err = NewText("x").CoerceTo(KindInt); err == nil {
		t.Error("text→int should fail")
	}
	v, err = Null.CoerceTo(KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("null coercion = %v, %v", v, err)
	}
	v, err = NewInt(8).CoerceTo(KindTimestamp)
	if err != nil || v.Timestamp() != 8 {
		t.Errorf("int→timestamp = %v, %v", v, err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{Null},
		{NewInt(math.MaxInt64), NewInt(math.MinInt64)},
		{NewFloat(3.14159), NewFloat(math.Inf(1))},
		{NewText(""), NewText("héllo, wörld")},
		{NewBool(true), NewBool(false)},
		{NewTimestamp(1717000000000000)},
		{NewInt(1), NewFloat(2), NewText("3"), NewBool(true), NewTimestamp(5), Null},
	}
	for i, row := range rows {
		buf := EncodeRow(nil, row)
		got, n, err := DecodeRow(buf)
		if err != nil {
			t.Fatalf("row %d: decode: %v", i, err)
		}
		if n != len(buf) {
			t.Errorf("row %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !got.Equal(row) {
			t.Errorf("row %d: round trip = %v, want %v", i, got, row)
		}
	}
}

// TestEncodeDecodeQuick round-trips randomly generated rows.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		row := Row{NewInt(i), NewFloat(fl), NewText(s), NewBool(b)}
		got, _, err := DecodeRow(EncodeRow(nil, row))
		if err != nil {
			return false
		}
		if math.IsNaN(fl) {
			// NaN != NaN under SQL comparison; check the bits field
			// survived via kind only.
			return got[1].Kind() == KindFloat
		}
		return got.Equal(row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	row := Row{NewInt(77), NewText("hello")}
	buf := EncodeRow(nil, row)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRow(buf[:cut]); err == nil {
			t.Errorf("truncation at %d bytes should fail", cut)
		}
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := MustSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindText},
		Column{Name: "ts", Kind: KindTimestamp},
	)
	buf := EncodeSchema(nil, s)
	got, n, err := DecodeSchema(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode schema: %v (n=%d, len=%d)", err, n, len(buf))
	}
	if got.String() != s.String() {
		t.Errorf("schema round trip = %s, want %s", got, s)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := MustSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "score", Kind: KindFloat},
	)
	// Exact types pass through without copying.
	row := Row{NewInt(1), NewFloat(2)}
	got, err := s.Validate(row)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &row[0] {
		t.Error("validate should not copy an already-valid row")
	}
	// Coercion int→float.
	got, err = s.Validate(Row{NewInt(1), NewInt(2)})
	if err != nil || got[1].Kind() != KindFloat {
		t.Errorf("coercion failed: %v, %v", got, err)
	}
	// Arity mismatch.
	if _, err = s.Validate(Row{NewInt(1)}); err == nil {
		t.Error("short row should fail")
	}
	// Bad type.
	if _, err = s.Validate(Row{NewText("x"), NewFloat(0)}); err == nil {
		t.Error("text in int column should fail")
	}
}

func TestSchemaLookupAndProject(t *testing.T) {
	s := MustSchema(
		Column{Name: "A", Kind: KindInt},
		Column{Name: "b", Kind: KindText},
	)
	if i, ok := s.Index("a"); !ok || i != 0 {
		t.Errorf("case-insensitive lookup failed: %d %v", i, ok)
	}
	p, err := s.Project("b")
	if err != nil || p.Len() != 1 || p.Column(0).Name != "b" {
		t.Errorf("project = %v, %v", p, err)
	}
	if _, err = s.Project("missing"); err == nil {
		t.Error("projecting missing column should fail")
	}
	if _, err = NewSchema(Column{Name: "x", Kind: KindInt}, Column{Name: "X", Kind: KindInt}); err == nil {
		t.Error("duplicate (case-insensitive) columns should fail")
	}
}

func TestKindFromName(t *testing.T) {
	for name, want := range map[string]Kind{
		"int": KindInt, "BIGINT": KindInt, "Integer": KindInt,
		"float": KindFloat, "DOUBLE": KindFloat,
		"varchar": KindText, "TEXT": KindText, "string": KindText,
		"bool": KindBool, "BOOLEAN": KindBool,
		"timestamp": KindTimestamp,
	} {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromName("blob"); err == nil {
		t.Error("unknown type should fail")
	}
}
