package types

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary encoding of values, rows, and schemas. The format is
// self-describing and stable; it backs the command log, snapshot files,
// and the simulated PE/EE boundary, so changing it invalidates on-disk
// state.
//
//	value  := kind:u8 payload
//	payload(int|ts|bool) := varint
//	payload(float)       := u64 (IEEE-754 bits, little-endian)
//	payload(text)        := uvarint-len bytes
//	row    := uvarint-count value*
//	schema := uvarint-count (uvarint-len name-bytes kind:u8)*

// EncodeValue appends the binary encoding of v to buf. It is on the
// hot path of every log append and wire frame; with spare capacity in
// buf it does not touch the allocator.
//
//sstore:nomalloc
func EncodeValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt, KindTimestamp, KindBool:
		buf = binary.AppendVarint(buf, v.i)
	case KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
	case KindText:
		buf = binary.AppendUvarint(buf, uint64(len(v.s)))
		buf = append(buf, v.s...)
	}
	return buf
}

// DecodeValue decodes one value from b, returning it and the number of
// bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Null, 0, io.ErrUnexpectedEOF
	}
	kind := Kind(b[0])
	n := 1
	switch kind {
	case KindNull:
		return Null, n, nil
	case KindInt, KindTimestamp, KindBool:
		i, m := binary.Varint(b[n:])
		if m <= 0 {
			return Null, 0, fmt.Errorf("types: truncated %s value", kind)
		}
		return Value{kind: kind, i: i}, n + m, nil
	case KindFloat:
		if len(b) < n+8 {
			return Null, 0, fmt.Errorf("types: truncated float value")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(b[n:]))
		return NewFloat(f), n + 8, nil
	case KindText:
		l, m := binary.Uvarint(b[n:])
		if m <= 0 {
			return Null, 0, fmt.Errorf("types: truncated text length")
		}
		n += m
		if uint64(len(b)-n) < l {
			return Null, 0, fmt.Errorf("types: truncated text value")
		}
		return NewText(string(b[n : n+int(l)])), n + int(l), nil
	default:
		return Null, 0, fmt.Errorf("types: invalid value kind %d", b[0])
	}
}

// AppendInt64 appends an int64 value's encoding to buf without going
// through a Value — the codec fast path for the dominant column kind.
//
//sstore:nomalloc
func AppendInt64(buf []byte, i int64) []byte {
	buf = append(buf, byte(KindInt))
	return binary.AppendVarint(buf, i)
}

// AppendFloat64 appends a float64 value's encoding to buf.
//
//sstore:nomalloc
func AppendFloat64(buf []byte, f float64) []byte {
	buf = append(buf, byte(KindFloat))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// AppendString appends a text value's encoding to buf.
//
//sstore:nomalloc
func AppendString(buf []byte, s string) []byte {
	buf = append(buf, byte(KindText))
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// EncodeRow appends the binary encoding of row to buf.
//
//sstore:nomalloc
func EncodeRow(buf []byte, row Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = EncodeValue(buf, v)
	}
	return buf
}

// DecodeRow decodes one row from b, returning it and the bytes consumed.
func DecodeRow(b []byte) (Row, int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("types: truncated row count")
	}
	row := make(Row, 0, count)
	for i := uint64(0); i < count; i++ {
		v, m, err := DecodeValue(b[n:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: row value %d: %w", i, err)
		}
		row = append(row, v)
		n += m
	}
	return row, n, nil
}

// Fast-path decode errors are fixed values so DecodeRowAppend stays
// allocation-free on every outcome; callers wanting positional detail
// use DecodeRow.
var (
	errTruncatedRowCount = errors.New("types: truncated row count")
	errTruncatedRowValue = errors.New("types: truncated row value")
)

// DecodeRowAppend decodes one row from b into dst, reusing dst's
// capacity, and returns the extended row and the bytes consumed. It is
// the zero-allocation counterpart of DecodeRow for callers that own a
// reusable row buffer: int64, float64, bool, timestamp, and null
// values decode without touching the allocator; text values allocate
// exactly their string. On error dst is returned unchanged in length
// beyond what was already appended and must be re-sliced by the caller.
//
//sstore:nomalloc
func DecodeRowAppend(dst Row, b []byte) (Row, int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return dst, 0, errTruncatedRowCount
	}
	for i := uint64(0); i < count; i++ {
		if n >= len(b) {
			return dst, 0, errTruncatedRowValue
		}
		var v Value
		switch Kind(b[n]) {
		case KindInt, KindTimestamp, KindBool:
			x, m := binary.Varint(b[n+1:])
			if m <= 0 {
				return dst, 0, errTruncatedRowValue
			}
			v.kind = Kind(b[n])
			v.i = x
			n += 1 + m
		case KindFloat:
			if len(b) < n+9 {
				return dst, 0, errTruncatedRowValue
			}
			v.kind = KindFloat
			v.f = math.Float64frombits(binary.LittleEndian.Uint64(b[n+1:]))
			n += 9
		default:
			// Text (which owns its string) and malformed kinds take the
			// general decoder.
			//lint:allow hotalloc -- text decode inherently allocates its string; every fixed-width kind is handled above
			dv, m, err := DecodeValue(b[n:])
			if err != nil {
				return dst, 0, err
			}
			v = dv
			n += m
		}
		dst = append(dst, v)
	}
	return dst, n, nil
}

// EncodeSchema appends the binary encoding of s to buf.
func EncodeSchema(buf []byte, s *Schema) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s.cols)))
	for _, c := range s.cols {
		buf = binary.AppendUvarint(buf, uint64(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = append(buf, byte(c.Kind))
	}
	return buf
}

// DecodeSchema decodes a schema from b, returning it and the bytes
// consumed.
func DecodeSchema(b []byte) (*Schema, int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("types: truncated schema count")
	}
	cols := make([]Column, 0, count)
	for i := uint64(0); i < count; i++ {
		l, m := binary.Uvarint(b[n:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("types: truncated column name length")
		}
		n += m
		if uint64(len(b)-n) < l+1 {
			return nil, 0, fmt.Errorf("types: truncated column %d", i)
		}
		name := string(b[n : n+int(l)])
		n += int(l)
		kind := Kind(b[n])
		n++
		cols = append(cols, Column{Name: name, Kind: kind})
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, 0, err
	}
	return s, n, nil
}
