// Package types defines the typed value system shared by every layer of
// the engine: column types, runtime values, rows, schemas, and a stable
// binary encoding used by the command log, snapshots, and the simulated
// PE/EE boundary.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the column types supported by the engine.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL literal before coercion.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 float.
	KindFloat
	// KindText is a UTF-8 string.
	KindText
	// KindBool is a boolean.
	KindBool
	// KindTimestamp is microseconds since the Unix epoch.
	KindTimestamp
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindTimestamp:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromName parses a SQL type name into a Kind. It accepts the common
// aliases (INT, BIGINT, INTEGER, FLOAT, DOUBLE, VARCHAR, TEXT, STRING,
// BOOLEAN, BOOL, TIMESTAMP), case-insensitively.
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL":
		return KindFloat, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR":
		return KindText, nil
	case "BOOLEAN", "BOOL":
		return KindBool, nil
	case "TIMESTAMP":
		return KindTimestamp, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a single runtime value. The zero Value is NULL.
//
// Value is a small immutable struct passed by value throughout the
// engine; it holds at most one pointer (for text) so rows stay compact
// and comparison never allocates.
type Value struct {
	kind Kind
	i    int64 // int, bool (0/1), timestamp micros
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewText returns a text value.
func NewText(v string) Value { return Value{kind: KindText, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewTimestamp returns a timestamp value from microseconds since the
// Unix epoch.
func NewTimestamp(micros int64) Value { return Value{kind: KindTimestamp, i: micros} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if the value is not an
// integer or timestamp.
func (v Value) Int() int64 {
	if v.kind != KindInt && v.kind != KindTimestamp {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload, coercing integers. It panics for
// non-numeric kinds.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindTimestamp:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
}

// Text returns the string payload. It panics if the value is not text.
func (v Value) Text() string {
	if v.kind != KindText {
		panic(fmt.Sprintf("types: Text() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if the value is not a
// boolean.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// Timestamp returns the timestamp payload in microseconds since the
// Unix epoch. It panics if the value is not a timestamp.
func (v Value) Timestamp() int64 {
	if v.kind != KindTimestamp {
		panic(fmt.Sprintf("types: Timestamp() on %s value", v.kind))
	}
	return v.i
}

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool {
	return v.kind == KindInt || v.kind == KindFloat || v.kind == KindTimestamp
}

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindTimestamp:
		return strconv.FormatInt(v.i, 10) + "µs"
	default:
		return "<invalid>"
	}
}

// Compare totally orders two values of comparable kinds:
//
//	NULL < everything; int/float/timestamp compare numerically;
//	text compares lexicographically; false < true.
//
// It returns -1, 0, or +1, and an error when the kinds are not mutually
// comparable (e.g. text vs int).
func (v Value) Compare(o Value) (int, error) {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0, nil
		case v.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindFloat || o.kind == KindFloat {
			a, b := v.Float(), o.Float()
			switch {
			case a < b:
				return -1, nil
			case a > b:
				return 1, nil
			default:
				return 0, nil
			}
		}
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("types: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindText:
		return strings.Compare(v.s, o.s), nil
	case KindBool:
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("types: cannot compare %s values", v.kind)
	}
}

// MustCompare is Compare for callers that have already type-checked; it
// panics on incomparable kinds.
func (v Value) MustCompare(o Value) int {
	c, err := v.Compare(o)
	if err != nil {
		panic(err)
	}
	return c
}

// Equal reports whether two values are equal under Compare semantics.
// Incomparable kinds are unequal.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// Hash returns a 64-bit hash of the value, consistent with Equal: any
// two values that compare equal (including mixed int/float/timestamp
// comparisons, which Compare evaluates in float64) hash identically.
// All numerics therefore hash through their float64 image; distinct
// huge ints that collapse to one float64 merely share a hash bucket,
// and the bucket's exact-key check keeps them distinct.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.kind {
	case KindNull:
		h.Write([]byte{0})
	case KindBool:
		writeUint64(h, uint64(v.i))
	case KindInt, KindTimestamp:
		writeUint64(h, numericHashBits(float64(v.i)))
	case KindFloat:
		writeUint64(h, numericHashBits(v.f))
	case KindText:
		h.Write([]byte(v.s))
	}
	return h.Sum64()
}

// numericHashBits canonicalizes a float for hashing: +0 and -0 compare
// equal, so they must hash equal.
func numericHashBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	return math.Float64bits(f)
}

func writeUint64(h interface{ Write([]byte) (int, error) }, u uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
}

// CoerceTo converts the value to the requested kind when a lossless or
// conventional SQL coercion exists (int→float, int→timestamp, numeric
// widening). NULL coerces to any kind (stays NULL).
func (v Value) CoerceTo(k Kind) (Value, error) {
	if v.kind == k || v.kind == KindNull {
		return v, nil
	}
	switch {
	case k == KindFloat && (v.kind == KindInt || v.kind == KindTimestamp):
		return NewFloat(float64(v.i)), nil
	case k == KindInt && v.kind == KindFloat && v.f == math.Trunc(v.f):
		return NewInt(int64(v.f)), nil
	case k == KindTimestamp && v.kind == KindInt:
		return NewTimestamp(v.i), nil
	case k == KindInt && v.kind == KindTimestamp:
		return NewInt(v.i), nil
	}
	return Null, fmt.Errorf("types: cannot coerce %s to %s", v.kind, k)
}
