package types

import "testing"

// The //sstore:allocgate markers below pair with //sstore:nomalloc
// annotations; the allocgate analyzer fails the build if either side
// exists without the other.

//sstore:allocgate EncodeValue
//sstore:allocgate EncodeRow
//sstore:allocgate AppendInt64
//sstore:allocgate AppendFloat64
//sstore:allocgate AppendString
func TestEncodeAllocFree(t *testing.T) {
	row := Row{NewInt(42), NewFloat(3.5), NewText("hot"), Null, NewBool(true)}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(1000, func() {
		buf = EncodeRow(buf[:0], row)
		buf = AppendInt64(buf[:0], -77)
		buf = AppendFloat64(buf[:0], 2.25)
		buf = AppendString(buf[:0], "sp_ingest")
	}); n != 0 {
		t.Fatalf("encode path allocates %v/op with spare capacity; it backs every log append and wire frame", n)
	}
}

//sstore:allocgate DecodeRowAppend
func TestDecodeRowAppendAllocFree(t *testing.T) {
	// Fixed-width kinds only: a text value's string is the one
	// allocation the fast path is allowed to make.
	var enc []byte
	enc = EncodeRow(enc, Row{NewInt(7), NewFloat(1.5), NewBool(false), Null, NewTimestamp(99)})
	scratch := make(Row, 0, 8)
	if n := testing.AllocsPerRun(1000, func() {
		row, _, err := DecodeRowAppend(scratch[:0], enc)
		if err != nil || len(row) != 5 {
			t.Fatal("fast-path decode broke")
		}
		scratch = row
	}); n != 0 {
		t.Fatalf("DecodeRowAppend allocates %v/op on fixed-width values over a warm buffer", n)
	}
}

func TestDecodeRowAppendMatchesDecodeRow(t *testing.T) {
	rows := []Row{
		nil,
		{NewInt(-1)},
		{NewInt(1), NewFloat(2.5), NewText("abc"), Null, NewBool(true), NewTimestamp(12345)},
	}
	for _, want := range rows {
		enc := EncodeRow(nil, want)
		got, n, err := DecodeRowAppend(nil, enc)
		if err != nil {
			t.Fatalf("DecodeRowAppend(%v): %v", want, err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d values, want %d", len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("value %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
	// Truncated inputs fail without panicking.
	enc := EncodeRow(nil, Row{NewInt(1), NewText("abc")})
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeRowAppend(nil, enc[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}
