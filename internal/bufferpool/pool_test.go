package bufferpool

import (
	"fmt"
	"path/filepath"
	"testing"

	"sstore/internal/page"
)

func newFile(t *testing.T) *page.File {
	t.Helper()
	f, err := page.Create(filepath.Join(t.TempDir(), "t.pages"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// fillBlocks appends n blocks through the pool, one record each.
func fillBlocks(t *testing.T, p *Pool, f *page.File, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		b, fr, err := p.Append(f)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if _, err := fr.Page.InsertRecord([]byte(fmt.Sprintf("block-%d", int(b)))); err != nil {
			t.Fatal(err)
		}
		p.Unpin(fr, true)
	}
}

func TestPoolHitAvoidsRead(t *testing.T) {
	p := New(4)
	f := newFile(t)
	fillBlocks(t, p, f, 1)
	for i := 0; i < 10; i++ {
		fr, err := p.Pin(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		if string(fr.Page.Record(0)) != "block-0" {
			t.Fatalf("iteration %d: %q", i, fr.Page.Record(0))
		}
		p.Unpin(fr, false)
	}
	s := p.Stats()
	if s.Hits != 10 || s.Misses != 0 {
		t.Fatalf("hits=%d misses=%d", s.Hits, s.Misses)
	}
}

func TestPoolEvictsLRUAndWritesBack(t *testing.T) {
	p := New(4)
	f := newFile(t)
	// 8 blocks through a 4-frame pool: the early blocks must be
	// evicted (written back) and re-readable afterwards.
	fillBlocks(t, p, f, 8)
	for i := 0; i < 8; i++ {
		fr, err := p.Pin(f, page.BlockID(i))
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if got := string(fr.Page.Record(0)); got != fmt.Sprintf("block-%d", i) {
			t.Fatalf("block %d: %q", i, got)
		}
		p.Unpin(fr, false)
	}
	s := p.Stats()
	if s.Evictions == 0 || s.Writebacks == 0 {
		t.Fatalf("expected evictions and writebacks, got %+v", s)
	}
}

func TestPoolAllPinnedErrors(t *testing.T) {
	p := New(4)
	f := newFile(t)
	fillBlocks(t, p, f, 4)
	var frames []*Frame
	for i := 0; i < 4; i++ {
		fr, err := p.Pin(f, page.BlockID(i))
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr)
	}
	if _, _, err := p.Append(f); err != ErrNoFrames {
		t.Fatalf("got %v, want ErrNoFrames", err)
	}
	for _, fr := range frames {
		p.Unpin(fr, false)
	}
	if _, _, err := p.Append(f); err != nil {
		t.Fatalf("append after unpin: %v", err)
	}
}

func TestPoolFlushFileDurability(t *testing.T) {
	p := New(8)
	f := newFile(t)
	fillBlocks(t, p, f, 3)
	// Nothing evicted yet: the dirty pages live only in frames.
	if err := p.FlushFile(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Read the blocks straight off disk, bypassing the pool.
	for i := 0; i < 3; i++ {
		var q page.Page
		if err := f.ReadBlock(page.BlockID(i), &q); err != nil {
			t.Fatalf("block %d unreadable after flush: %v", i, err)
		}
		if got := string(q.Record(0)); got != fmt.Sprintf("block-%d", i) {
			t.Fatalf("block %d: %q", i, got)
		}
	}
}

func TestPoolInvalidateDropsFrames(t *testing.T) {
	p := New(4)
	f := newFile(t)
	fillBlocks(t, p, f, 2)
	p.Invalidate(f)
	if err := f.Truncate(); err != nil {
		t.Fatal(err)
	}
	fillBlocks(t, p, f, 1)
	fr, err := p.Pin(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Unpin(fr, false)
	if got := string(fr.Page.Record(0)); got != "block-0" {
		t.Fatalf("stale frame after invalidate: %q", got)
	}
	if f.Blocks() != 1 {
		t.Fatalf("blocks=%d after truncate+refill", f.Blocks())
	}
}
