// Package bufferpool implements the fixed-frame buffer pool archive
// tables read and write their pages through. The pool owns a bounded
// set of page frames (the table's memory budget); Pin fetches a block
// into a frame — reusing a resident frame on a hit, evicting the
// least-recently-used unpinned frame on a miss — and Unpin releases it,
// marking it dirty when the caller mutated the page. Dirty frames are
// written back on eviction and on FlushFile, so the disk image trails
// the pool by at most the dirty set.
//
// Locking: Pool.mu is a leaf in the engine's documented lock order,
// acquired after storage.Table.latch (the archive heap pins pages from
// inside a table's mutation bracket or read latch; see
// internal/analysis/lockorder.go). Pins are strictly call-scoped in the
// engine: every storage-layer operation unpins before it returns, so a
// frame is never held pinned across a task boundary or a read-view
// resolution.
package bufferpool

import (
	"errors"
	"fmt"
	"sync"

	"sstore/internal/page"
)

// Frame is one resident page. Callers may read and write the page only
// between Pin and Unpin.
type Frame struct {
	Page page.Page

	file    *page.File
	block   page.BlockID
	pins    int
	dirty   bool
	lastUse uint64
	valid   bool
}

// Block returns the block the frame currently holds.
func (fr *Frame) Block() page.BlockID { return fr.block }

// ErrNoFrames reports that every frame is pinned; with call-scoped
// pins this means the pool was sized below the handful of frames one
// operation touches.
var ErrNoFrames = errors.New("bufferpool: all frames pinned")

// MinFrames is the floor on pool capacity: a record rewrite pins the
// old record's page and the fill page at once, and restore/checkpoint
// paths want a little slack beyond that.
const MinFrames = 4

// Pool is a fixed-capacity buffer pool. Safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	frames []*Frame
	byKey  map[frameKey]*Frame
	clock  uint64

	hits       uint64
	misses     uint64
	evictions  uint64
	writebacks uint64
}

type frameKey struct {
	file  *page.File
	block page.BlockID
}

// New creates a pool of the given frame count, clamped to MinFrames.
func New(frames int) *Pool {
	if frames < MinFrames {
		frames = MinFrames
	}
	p := &Pool{byKey: make(map[frameKey]*Frame, frames)}
	for i := 0; i < frames; i++ {
		p.frames = append(p.frames, &Frame{})
	}
	return p
}

// NewBudget creates a pool sized to roughly budget bytes of page
// frames.
func NewBudget(budget int64) *Pool {
	return New(int(budget / page.Size))
}

// Frames returns the pool's capacity in frames.
func (p *Pool) Frames() int { return len(p.frames) }

// Pin fetches (file, block) into a frame and pins it. The caller must
// Unpin the frame when done, before its operation returns.
func (p *Pool) Pin(f *page.File, b page.BlockID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := frameKey{file: f, block: b}
	if fr, ok := p.byKey[key]; ok {
		p.hits++
		fr.pins++
		p.clock++
		fr.lastUse = p.clock
		return fr, nil
	}
	p.misses++
	fr, err := p.victim()
	if err != nil {
		return nil, err
	}
	if err := f.ReadBlock(b, &fr.Page); err != nil {
		p.retireFrame(fr)
		return nil, err
	}
	p.adoptFrame(fr, key)
	return fr, nil
}

// Append allocates a fresh block of f, pins a frame holding its empty
// page image, and marks it dirty. The block's first on-disk bytes are
// written when the frame is evicted or flushed.
func (p *Pool) Append(f *page.File) (page.BlockID, *Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, err := p.victim()
	if err != nil {
		return 0, nil, err
	}
	b := f.Allocate()
	fr.Page.Reset()
	p.adoptFrame(fr, frameKey{file: f, block: b})
	fr.dirty = true
	return b, fr, nil
}

// Unpin releases one pin; dirty records that the caller mutated the
// page.
func (p *Pool) Unpin(fr *Frame, dirty bool) {
	p.mu.Lock()
	if fr.pins > 0 {
		fr.pins--
	}
	if dirty {
		fr.dirty = true
	}
	p.mu.Unlock()
}

// victim returns an unpinned frame, writing back its dirty page and
// unmapping it. Caller holds mu.
func (p *Pool) victim() (*Frame, error) {
	var best *Frame
	for _, fr := range p.frames {
		if fr.pins > 0 {
			continue
		}
		if !fr.valid {
			return fr, nil
		}
		if best == nil || fr.lastUse < best.lastUse {
			best = fr
		}
	}
	if best == nil {
		return nil, ErrNoFrames
	}
	if err := p.writeBack(best); err != nil {
		return nil, err
	}
	p.evictions++
	p.retireFrame(best)
	return best, nil
}

// writeBack flushes a dirty frame to its file. Caller holds mu.
func (p *Pool) writeBack(fr *Frame) error {
	if !fr.valid || !fr.dirty {
		return nil
	}
	if err := fr.file.WriteBlock(fr.block, &fr.Page); err != nil {
		return fmt.Errorf("bufferpool: write-back: %w", err)
	}
	fr.dirty = false
	p.writebacks++
	return nil
}

// retireFrame unmaps a frame. Caller holds mu.
func (p *Pool) retireFrame(fr *Frame) {
	if fr.valid {
		delete(p.byKey, frameKey{file: fr.file, block: fr.block})
	}
	fr.valid = false
	fr.dirty = false
	fr.file = nil
}

// adoptFrame maps a frame to a key and pins it. Caller holds mu.
func (p *Pool) adoptFrame(fr *Frame, key frameKey) {
	fr.file = key.file
	fr.block = key.block
	fr.valid = true
	fr.dirty = false
	fr.pins = 1
	p.clock++
	fr.lastUse = p.clock
	p.byKey[key] = fr
}

// FlushFile writes back every dirty resident frame of f. Frames stay
// resident; pair with f.Sync() for durability.
func (p *Pool) FlushFile(f *page.File) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if fr.valid && fr.file == f {
			if err := p.writeBack(fr); err != nil {
				return err
			}
		}
	}
	return nil
}

// Invalidate drops every resident frame of f without write-back; used
// when the file's contents are being discarded (truncate, restore).
// Panics if any of f's frames is still pinned — a pin outliving the
// operation that took it is an engine bug.
func (p *Pool) Invalidate(f *page.File) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if fr.valid && fr.file == f {
			if fr.pins > 0 {
				panic("bufferpool: Invalidate with pinned frame")
			}
			p.retireFrame(fr)
		}
	}
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// Stats returns the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions, Writebacks: p.writebacks}
}
