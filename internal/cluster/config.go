// Package cluster implements the multi-node side of the partition
// transport seam (DESIGN.md §13): a static cluster map assigning
// partitions to nodes, and the per-peer connection machinery that
// moves relocated interior batches between nodes over the
// internal/wire protocol with exactly-once delivery (at-least-once
// sends suppressed by the receiving node's dedup ledger).
//
// The package sits between pe and wire: pe consults the map to decide
// whether a routed partition is local and hands remote batches to
// Peers; the server uses Peers to forward client requests to the
// owning node. It deliberately does not import pe or client, so the
// engine, the server, and the client can all build on it.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Node is one sstore-server process in the cluster map: its identity,
// its client/peer address (one listener serves both), and the global
// partition IDs it owns.
type Node struct {
	ID         int
	Addr       string
	Partitions []int
}

// Config is the static cluster map: every node, every partition,
// assigned once. All nodes of a cluster must run with an identical
// map (same -cluster string); the map is validated at startup, not
// negotiated.
type Config struct {
	Nodes []Node
	// owner[pid] is the owning node's index in Nodes; built by
	// Validate.
	owner []int
}

// Parse reads the -cluster flag syntax: semicolon-separated nodes,
// each "id@host:port=p0,p1,..." where the partition list accepts
// single IDs and "a-b" ranges.
//
//	0@127.0.0.1:7491=0,1;1@127.0.0.1:7492=2,3
func Parse(spec string) (*Config, error) {
	cfg := &Config{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		at := strings.Index(part, "@")
		eq := strings.LastIndex(part, "=")
		if at <= 0 || eq <= at {
			return nil, fmt.Errorf("cluster: bad node %q (want id@host:port=p0,p1,...)", part)
		}
		id, err := strconv.Atoi(part[:at])
		if err != nil {
			return nil, fmt.Errorf("cluster: bad node id in %q: %w", part, err)
		}
		n := Node{ID: id, Addr: part[at+1 : eq]}
		for _, tok := range strings.Split(part[eq+1:], ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			if lo, hi, ok := strings.Cut(tok, "-"); ok {
				a, err1 := strconv.Atoi(lo)
				b, err2 := strconv.Atoi(hi)
				if err1 != nil || err2 != nil || b < a {
					return nil, fmt.Errorf("cluster: bad partition range %q in %q", tok, part)
				}
				for p := a; p <= b; p++ {
					n.Partitions = append(n.Partitions, p)
				}
				continue
			}
			p, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad partition %q in %q: %w", tok, part, err)
			}
			n.Partitions = append(n.Partitions, p)
		}
		cfg.Nodes = append(cfg.Nodes, n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Validate checks the map — unique node IDs, non-empty addresses, and
// a partition assignment that covers 0..N-1 with each partition owned
// by exactly one node — and builds the owner index. Every other
// method assumes a validated config.
func (c *Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: empty cluster map")
	}
	seenNode := make(map[int]bool)
	owners := make(map[int]int)
	total := 0
	for _, n := range c.Nodes {
		if n.ID < 0 {
			return fmt.Errorf("cluster: negative node id %d", n.ID)
		}
		if seenNode[n.ID] {
			return fmt.Errorf("cluster: duplicate node id %d", n.ID)
		}
		seenNode[n.ID] = true
		if n.Addr == "" {
			return fmt.Errorf("cluster: node %d has no address", n.ID)
		}
		if len(n.Partitions) == 0 {
			return fmt.Errorf("cluster: node %d owns no partitions", n.ID)
		}
		for _, p := range n.Partitions {
			if p < 0 {
				return fmt.Errorf("cluster: node %d owns negative partition %d", n.ID, p)
			}
			if prev, dup := owners[p]; dup {
				return fmt.Errorf("cluster: partition %d owned by both node %d and node %d", p, prev, n.ID)
			}
			owners[p] = n.ID
			total++
		}
	}
	for p := 0; p < total; p++ {
		if _, ok := owners[p]; !ok {
			return fmt.Errorf("cluster: partition %d unassigned (map must cover 0..%d)", p, total-1)
		}
	}
	c.owner = make([]int, total)
	for i, n := range c.Nodes {
		for _, p := range n.Partitions {
			c.owner[p] = i
		}
	}
	return nil
}

// Partitions returns the cluster-wide partition count.
func (c *Config) Partitions() int { return len(c.owner) }

// Owner returns the node owning a global partition ID.
func (c *Config) Owner(pid int) (*Node, error) {
	if pid < 0 || pid >= len(c.owner) {
		return nil, fmt.Errorf("cluster: partition %d out of range [0,%d)", pid, len(c.owner))
	}
	return &c.Nodes[c.owner[pid]], nil
}

// NodeByID finds a node by its ID.
func (c *Config) NodeByID(id int) (*Node, error) {
	for i := range c.Nodes {
		if c.Nodes[i].ID == id {
			return &c.Nodes[i], nil
		}
	}
	return nil, fmt.Errorf("cluster: no node %d in cluster map", id)
}

// String re-renders the map in Parse's syntax, nodes in ID order.
func (c *Config) String() string {
	nodes := append([]Node(nil), c.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	var sb strings.Builder
	for i, n := range nodes {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%d@%s=", n.ID, n.Addr)
		for j, p := range n.Partitions {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(p))
		}
	}
	return sb.String()
}
