package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sstore/internal/types"
	"sstore/internal/wire"
)

// Peers manages one pipelined wire connection to every other node of
// the cluster map: dial with exponential backoff, the protocol
// handshake, and reconnect. Two kinds of traffic share each
// connection:
//
//   - Hand-offs (OpHandoff): relocated interior batches. Delivery is
//     at-least-once — a hand-off stays in the peer's pending queue
//     until the receiving node acknowledges its commit, and the whole
//     queue is re-sent in original order after every reconnect (and on
//     a peer's OpHandoffPull re-request). The receiver's dedup ledger
//     turns that into exactly-once.
//   - Forwards (OpCall/OpIngest/OpQuery relayed to the owning node):
//     request/response, failing fast when the peer is down — the
//     client owns the retry.
//
// Lock order (enforced by sstore-lint): Peers.mu (rank 6) → peer.mu
// (rank 7, leaf). Completion callbacks are always invoked with no
// cluster lock held.
type Peers struct {
	cfg  *Config
	self int

	mu     sync.Mutex
	peers  map[int]*peer // by node ID; static after NewPeers
	closed bool

	sent atomic.Uint64
}

// outstanding is one in-flight request on a peer connection. Hand-offs
// carry done and live in the peer's queue until acknowledged; forwards
// carry resp; pulls carry neither (fire-and-forget).
type outstanding struct {
	req  wire.Request
	done func(dup bool, err error)
	resp chan *wire.Response
}

// peer is the connection state for one remote node.
type peer struct {
	node Node
	ps   *Peers

	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	enc     []byte // grow-only frame scratch, reused under mu
	nextID  uint64
	pending map[uint64]*outstanding
	queue   []*outstanding // unacked hand-offs in send order
	closed  bool

	stopc chan struct{}
}

// NewPeers builds the peer set for self and starts a connection
// maintainer per remote node. Connections are dialed eagerly and
// redialed with backoff until Close.
func NewPeers(cfg *Config, self int) (*Peers, error) {
	if _, err := cfg.NodeByID(self); err != nil {
		return nil, err
	}
	ps := &Peers{cfg: cfg, self: self, peers: make(map[int]*peer)}
	for i := range cfg.Nodes {
		n := cfg.Nodes[i]
		if n.ID == self {
			continue
		}
		p := &peer{
			node:    n,
			ps:      ps,
			pending: make(map[uint64]*outstanding),
			stopc:   make(chan struct{}),
		}
		ps.peers[n.ID] = p
		go p.run()
	}
	return ps, nil
}

// Handoff queues a relocated interior batch for the owning node and
// returns immediately; done fires exactly once, when the receiving
// node acknowledges the batch's commit (dup reports that its ledger
// had already admitted the batch) or when the hand-off is permanently
// rejected. While unacknowledged the hand-off is re-sent after every
// reconnect; done never firing (peer dead for good) leaves the batch
// retained on the sender, visible as Pending.
func (ps *Peers) Handoff(node, from, target int, stream string, batchID int64, rows []types.Row, front bool, done func(dup bool, err error)) {
	p := ps.peers[node]
	if p == nil {
		done(false, fmt.Errorf("cluster: no peer connection for node %d", node))
		return
	}
	o := &outstanding{
		req: wire.Request{
			Op: wire.OpHandoff, From: from, Partition: target, Front: front,
			Stream: stream, BatchID: batchID, Rows: rows,
		},
		done: done,
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		done(false, fmt.Errorf("cluster: peers closed"))
		return
	}
	p.queue = append(p.queue, o)
	if p.conn != nil {
		// Write errors are not reported here: the connection dies, the
		// maintainer reconnects, and the queued hand-off is re-sent.
		//lint:allow errdrop -- resend-on-reconnect is the error path
		p.writeLocked(o)
	}
	p.mu.Unlock()
	ps.sent.Add(1)
}

// Forward relays a client request to the owning node and waits for its
// response. Unlike hand-offs, forwards are not queued across
// reconnects: a down peer fails the request immediately and the client
// retries against a live cluster.
func (ps *Peers) Forward(node int, req *wire.Request) (*wire.Response, error) {
	p := ps.peers[node]
	if p == nil {
		return nil, fmt.Errorf("cluster: no peer connection for node %d", node)
	}
	o := &outstanding{req: *req, resp: make(chan *wire.Response, 1)}
	p.mu.Lock()
	if p.conn == nil || p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("cluster: node %d (%s) unreachable", node, p.node.Addr)
	}
	err := p.writeLocked(o)
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	resp, ok := <-o.resp
	if !ok {
		return nil, fmt.Errorf("cluster: connection to node %d lost", node)
	}
	return resp, nil
}

// Redeliver re-sends every unacknowledged hand-off to node on the
// current connection — the response to the node's OpHandoffPull after
// it restarted and lost its queued (undispatched) deliveries. Re-sends
// preserve original order; the receiver's ledger suppresses any the
// node had in fact committed.
func (ps *Peers) Redeliver(node int) {
	p := ps.peers[node]
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil || p.closed {
		return // reconnect re-sends the queue anyway
	}
	// Drop the stale pending entries of queued hand-offs (their old
	// request IDs may still get responses; unmatched IDs are ignored)
	// and write the queue afresh.
	for id, o := range p.pending {
		if o.done != nil {
			delete(p.pending, id)
		}
	}
	for _, o := range p.queue {
		//lint:allow errdrop -- resend-on-reconnect is the error path
		p.writeLocked(o)
	}
}

// Pull asks every live peer to re-deliver unacknowledged hand-offs
// addressed to this node: the restarted node's re-request. Peers that
// are down re-send automatically when their maintainers reconnect, so
// the pull is best-effort.
func (ps *Peers) Pull() {
	for _, id := range ps.peerIDs() {
		p := ps.peers[id]
		o := &outstanding{req: wire.Request{Op: wire.OpHandoffPull, Node: ps.self}}
		p.mu.Lock()
		if p.conn != nil && !p.closed {
			//lint:allow errdrop -- best-effort; reconnect re-requests implicitly
			p.writeLocked(o)
		}
		p.mu.Unlock()
	}
}

// peerIDs returns the remote node IDs in ascending order.
func (ps *Peers) peerIDs() []int {
	ids := make([]int, 0, len(ps.peers))
	for i := range ps.cfg.Nodes {
		if id := ps.cfg.Nodes[i].ID; id != ps.self {
			if _, ok := ps.peers[id]; ok {
				ids = append(ids, id)
			}
		}
	}
	return ids
}

// Pending counts hand-offs not yet acknowledged by their receiving
// node, across all peers. A cluster is quiescent only when every node
// is drained and reports zero pending.
func (ps *Peers) Pending() int {
	total := 0
	for _, id := range ps.peerIDs() {
		p := ps.peers[id]
		p.mu.Lock()
		total += len(p.queue)
		p.mu.Unlock()
	}
	return total
}

// Sent counts hand-offs submitted since start.
func (ps *Peers) Sent() uint64 { return ps.sent.Load() }

// Close stops every connection maintainer and closes the connections.
// Unacknowledged hand-offs are dropped — their batches remain retained
// in the engine's stream tables, exactly the state recovery re-fires
// from.
func (ps *Peers) Close() error {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return nil
	}
	ps.closed = true
	ps.mu.Unlock()
	for _, id := range ps.peerIDs() {
		p := ps.peers[id]
		p.mu.Lock()
		p.closed = true
		conn := p.conn
		p.mu.Unlock()
		close(p.stopc)
		if conn != nil {
			conn.Close()
		}
	}
	return nil
}

// writeLocked assigns the next request ID, registers the outstanding,
// and writes its frame; called with p.mu held and p.conn non-nil. On a
// write error the connection is closed (waking the maintainer into
// reconnect) and the error returned for forwards to fail fast.
func (p *peer) writeLocked(o *outstanding) error {
	p.nextID++
	o.req.ID = p.nextID
	p.pending[o.req.ID] = o
	p.enc = wire.AppendRequest(p.enc[:0], &o.req)
	_, err := p.bw.Write(p.enc)
	if err == nil {
		err = p.bw.Flush()
	}
	if err != nil {
		delete(p.pending, o.req.ID)
		p.conn.Close()
		return fmt.Errorf("cluster: send to node %d: %w", p.node.ID, err)
	}
	return nil
}

// run is the connection maintainer: dial, handshake, re-send the
// unacknowledged queue, then read responses until the connection dies;
// repeat with backoff until Close.
func (p *peer) run() {
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-p.stopc:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", p.node.Addr, 2*time.Second)
		if err == nil {
			err = handshake(conn)
			if err != nil {
				conn.Close()
			}
		}
		if err != nil {
			select {
			case <-p.stopc:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		backoff = 50 * time.Millisecond
		br := bufio.NewReader(conn)
		p.attach(conn)
		p.readLoop(br)
		p.detach()
		conn.Close()
	}
}

// handshake exchanges protocol hellos on a fresh connection, bounded
// by a deadline so a silent peer cannot wedge the maintainer.
func handshake(conn net.Conn) error {
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	if _, err := conn.Write(wire.AppendHello(nil)); err != nil {
		return fmt.Errorf("cluster: handshake: %w", err)
	}
	if err := wire.ReadHello(bufio.NewReaderSize(conn, wire.HelloSize)); err != nil {
		return err
	}
	return conn.SetDeadline(time.Time{})
}

// attach installs the new connection and re-sends the unacknowledged
// hand-off queue in order. Holding p.mu across the re-send serializes
// it against concurrent Handoff calls, so per-stream batch order — the
// receiver ledger's admission requirement — survives the reconnect.
func (p *peer) attach(conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn = conn
	p.bw = bufio.NewWriter(conn)
	for _, o := range p.queue {
		//lint:allow errdrop -- a failed re-send kills the conn; next reconnect retries
		p.writeLocked(o)
	}
}

// readLoop delivers responses until the connection fails.
func (p *peer) readLoop(br *bufio.Reader) {
	var scratch []byte
	for {
		payload, err := wire.ReadFrameBuf(br, scratch)
		scratch = payload
		if err != nil {
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			return
		}
		p.handleResp(resp)
	}
}

// handleResp matches a response to its outstanding request and
// completes it: hand-offs leave the queue and fire done, forwards get
// their response. Callbacks run with no lock held.
func (p *peer) handleResp(resp *wire.Response) {
	p.mu.Lock()
	o := p.pending[resp.ID]
	delete(p.pending, resp.ID)
	if o != nil && o.done != nil {
		for i := range p.queue {
			if p.queue[i] == o {
				p.queue = append(p.queue[:i], p.queue[i+1:]...)
				break
			}
		}
	}
	p.mu.Unlock()
	if o == nil {
		return // stale ID from before a Redeliver; the fresh send owns the ack
	}
	switch {
	case o.resp != nil:
		o.resp <- resp
	case o.done != nil:
		if resp.Status == wire.StatusOK {
			o.done(resp.Duplicate, nil)
		} else {
			o.done(false, fmt.Errorf("cluster: hand-off rejected by node %d: %s", p.node.ID, resp.Msg))
		}
	}
}

// detach clears the dead connection: queued hand-offs stay for the
// next attach, forwards fail (closed channel), pulls evaporate.
func (p *peer) detach() {
	p.mu.Lock()
	p.conn = nil
	p.bw = nil
	var failed []*outstanding
	for id, o := range p.pending {
		if o.resp != nil {
			failed = append(failed, o)
		}
		delete(p.pending, id)
	}
	p.mu.Unlock()
	for _, o := range failed {
		close(o.resp)
	}
}
