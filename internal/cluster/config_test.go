package cluster

import (
	"strings"
	"testing"
)

func TestParseAndValidate(t *testing.T) {
	cfg, err := Parse("0@127.0.0.1:7491=0,1;1@127.0.0.1:7492=2-3")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Partitions() != 4 {
		t.Fatalf("Partitions() = %d, want 4", cfg.Partitions())
	}
	for pid, want := range map[int]int{0: 0, 1: 0, 2: 1, 3: 1} {
		n, err := cfg.Owner(pid)
		if err != nil {
			t.Fatalf("Owner(%d): %v", pid, err)
		}
		if n.ID != want {
			t.Errorf("Owner(%d) = node %d, want %d", pid, n.ID, want)
		}
	}
	n, err := cfg.NodeByID(1)
	if err != nil || n.Addr != "127.0.0.1:7492" {
		t.Errorf("NodeByID(1) = %+v, %v", n, err)
	}
	if _, err := cfg.Owner(4); err == nil {
		t.Error("Owner(4) accepted out-of-range partition")
	}
	if _, err := cfg.NodeByID(9); err == nil {
		t.Error("NodeByID(9) accepted unknown node")
	}
}

func TestParseRoundTripString(t *testing.T) {
	spec := "0@a:1=0,1;1@b:2=2,3"
	cfg, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(cfg.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", cfg.String(), err)
	}
	if again.String() != cfg.String() {
		t.Errorf("String() unstable: %q vs %q", cfg.String(), again.String())
	}
}

func TestParseRejectsBadMaps(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"syntax":              "0=0,1",
		"bad id":              "x@a:1=0",
		"bad partition":       "0@a:1=zero",
		"bad range":           "0@a:1=3-1",
		"duplicate node":      "0@a:1=0;0@b:2=1",
		"duplicate partition": "0@a:1=0,1;1@b:2=1",
		"gap in partitions":   "0@a:1=0;1@b:2=2",
		"no partitions":       "0@a:1=;1@b:2=0",
		"no address":          "0@=0",
	}
	for name, spec := range cases {
		if _, err := Parse(spec); err == nil {
			t.Errorf("%s: Parse(%q) accepted", name, spec)
		} else if !strings.HasPrefix(err.Error(), "cluster:") {
			t.Errorf("%s: error %q lacks package prefix", name, err)
		}
	}
}
