package stream

import (
	"sync"
	"testing"

	"sstore/internal/types"
)

func row(v int64) types.Row { return types.Row{types.NewInt(v)} }

func TestAssemblerBatching(t *testing.T) {
	a, err := NewAssembler(3)
	if err != nil {
		t.Fatal(err)
	}
	var batches []*Batch
	for i := int64(0); i < 7; i++ {
		if b := a.Push(row(i)); b != nil {
			batches = append(batches, b)
		}
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d", len(batches))
	}
	if batches[0].ID != 1 || batches[1].ID != 2 {
		t.Errorf("ids = %d, %d", batches[0].ID, batches[1].ID)
	}
	if len(batches[0].Rows) != 3 || batches[0].Rows[0][0].Int() != 0 {
		t.Errorf("batch 1 = %v", batches[0].Rows)
	}
	tail := a.Flush()
	if tail == nil || tail.ID != 3 || len(tail.Rows) != 1 {
		t.Fatalf("flush = %+v", tail)
	}
	if a.Flush() != nil {
		t.Error("second flush should be nil")
	}
}

func TestAssemblerSizeOne(t *testing.T) {
	a, _ := NewAssembler(1)
	for i := int64(1); i <= 3; i++ {
		b := a.Push(row(i))
		if b == nil || b.ID != i || len(b.Rows) != 1 {
			t.Fatalf("push %d = %+v", i, b)
		}
	}
}

func TestAssemblerRejectsBadSize(t *testing.T) {
	if _, err := NewAssembler(0); err == nil {
		t.Error("size 0 should be rejected")
	}
	if _, err := NewAssembler(-1); err == nil {
		t.Error("negative size should be rejected")
	}
}

func TestDedup(t *testing.T) {
	d := NewDedup()
	if !d.Admit("s", 1) {
		t.Error("first batch rejected")
	}
	if d.Admit("s", 1) {
		t.Error("duplicate admitted")
	}
	if !d.Admit("s", 2) {
		t.Error("next batch rejected")
	}
	if d.Admit("s", 1) {
		t.Error("old batch admitted")
	}
	if !d.Admit("other", 1) {
		t.Error("streams must be independent")
	}
	if d.High("s") != 2 {
		t.Errorf("high = %d", d.High("s"))
	}
	d.Reset("s")
	if !d.Admit("s", 1) {
		t.Error("reset should allow replay")
	}
}

func TestDedupConcurrent(t *testing.T) {
	d := NewDedup()
	var wg sync.WaitGroup
	admitted := make([]int64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var n int64
			for i := int64(1); i <= 1000; i++ {
				if d.Admit("s", i) {
					n++
				}
			}
			admitted[g] = n
		}(g)
	}
	wg.Wait()
	var total int64
	for _, n := range admitted {
		total += n
	}
	if total != 1000 {
		t.Errorf("total admissions = %d, want exactly 1000", total)
	}
}

func TestDedupRelease(t *testing.T) {
	d := NewDedup()
	if !d.Admit("s", 1) || !d.Admit("s", 2) {
		t.Fatal("admissions rejected")
	}
	// Releasing the most recent admission restores the previous high.
	d.Release("s", 2)
	if d.High("s") != 1 {
		t.Errorf("high after release = %d, want 1", d.High("s"))
	}
	if !d.Admit("s", 2) {
		t.Error("released batch should be admittable again")
	}
	// Releasing a non-latest ID is a no-op: the ledger cannot regress
	// below a later admission.
	d.Release("s", 1)
	if d.High("s") != 2 {
		t.Errorf("high after stale release = %d, want 2", d.High("s"))
	}
	// Releasing an unknown stream is a no-op.
	d.Release("other", 7)
	if d.High("other") != 0 {
		t.Errorf("high on untouched stream = %d", d.High("other"))
	}
}

func TestShardedDedup(t *testing.T) {
	s := NewShardedDedup(4)
	if s.Shards() != 4 {
		t.Fatalf("shards = %d", s.Shards())
	}
	// Shards are independent ledgers: the same (stream, ID) admits on
	// each shard exactly once.
	for shard := 0; shard < 4; shard++ {
		if !s.Admit(shard, "s", 1) {
			t.Errorf("shard %d rejected first admission", shard)
		}
		if s.Admit(shard, "s", 1) {
			t.Errorf("shard %d admitted duplicate", shard)
		}
	}
	// Release and Reset are per shard.
	if !s.Admit(1, "s", 5) {
		t.Fatal("shard 1 rejected batch 5")
	}
	s.Release(1, "s", 5)
	if s.High(1, "s") != 1 {
		t.Errorf("shard 1 high = %d, want 1", s.High(1, "s"))
	}
	s.Reset(2, "s")
	if !s.Admit(2, "s", 1) {
		t.Error("reset shard should re-admit")
	}
	if s.High(3, "s") != 1 {
		t.Errorf("shard 3 high = %d, want 1", s.High(3, "s"))
	}
	// Out-of-range shard indexes wrap instead of panicking.
	if !s.Admit(6, "t", 1) { // shard 2
		t.Error("wrapped shard rejected admission")
	}
	if s.High(-2, "t") != 1 { // also shard 2
		t.Errorf("negative shard index should wrap: high = %d", s.High(-2, "t"))
	}
}

// TestShardedDedupConcurrentShards hammers admit/release/reset from
// one goroutine per shard plus cross-shard readers, so the race
// detector proves shards are safely independent: a full admit →
// release → re-admit → reset cycle on one shard never corrupts
// another's high-water mark.
func TestShardedDedupConcurrentShards(t *testing.T) {
	const shards, rounds = 8, 500
	s := NewShardedDedup(shards)
	var wg sync.WaitGroup
	for shard := 0; shard < shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			id := int64(1)
			for r := 0; r < rounds; r++ {
				if !s.Admit(shard, "s", id) {
					t.Errorf("shard %d rejected fresh batch %d", shard, id)
					return
				}
				if s.Admit(shard, "s", id) {
					t.Errorf("shard %d admitted duplicate %d", shard, id)
					return
				}
				if r%3 == 0 {
					// Simulate a failed enqueue: release and re-admit
					// the same ID.
					s.Release(shard, "s", id)
					if !s.Admit(shard, "s", id) {
						t.Errorf("shard %d rejected re-admission of released %d", shard, id)
						return
					}
				}
				if r%100 == 99 {
					s.Reset(shard, "s")
					id = 0
				}
				id++
			}
		}(shard)
	}
	// Cross-shard readers racing the writers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for shard := 0; shard < shards; shard++ {
					_ = s.High(shard, "s")
				}
			}
		}()
	}
	wg.Wait()
}

func TestShardedDedupSingleShard(t *testing.T) {
	s := NewShardedDedup(0) // clamped to 1
	if s.Shards() != 1 {
		t.Fatalf("shards = %d, want 1", s.Shards())
	}
	if !s.Admit(0, "s", 1) || s.Admit(5, "s", 1) {
		t.Error("single shard must behave as one ledger")
	}
}
