// Package stream implements the stream injection side of the paper's
// architecture (§3.2): atomic batches, batch assembly from a raw tuple
// feed, and the exactly-once ingestion bookkeeping that rejects
// duplicate batches on re-send (e.g. after a client retry or during
// recovery replay).
package stream

import (
	"fmt"
	"sync"

	"sstore/internal/types"
)

// Batch is one atomic batch: a finite, contiguous subsequence of a
// stream that must be processed as a unit (§2.1).
type Batch struct {
	// ID is the batch identifier; batches of one stream carry
	// strictly increasing IDs.
	ID int64
	// Rows are the batch's tuples in arrival order.
	Rows []types.Row
}

// Assembler groups a raw tuple feed into fixed-size atomic batches,
// assigning consecutive batch IDs. This is the "stream injection
// module ... responsible for preparing the atomic batches" of Figure 4.
// The zero Assembler is not usable; use NewAssembler.
type Assembler struct {
	size   int
	nextID int64
	buf    []types.Row
}

// NewAssembler creates an assembler producing batches of the given
// tuple count (the paper's experiments mostly use size 1).
func NewAssembler(size int) (*Assembler, error) {
	if size <= 0 {
		return nil, fmt.Errorf("stream: batch size must be positive, got %d", size)
	}
	return &Assembler{size: size, nextID: 1}, nil
}

// Push adds a tuple to the assembler, returning a completed batch when
// the size threshold is reached, or nil.
func (a *Assembler) Push(row types.Row) *Batch {
	a.buf = append(a.buf, row)
	if len(a.buf) < a.size {
		return nil
	}
	return a.flush()
}

// Flush emits any buffered tuples as a final short batch, or nil when
// the buffer is empty. Use at end of input.
func (a *Assembler) Flush() *Batch {
	if len(a.buf) == 0 {
		return nil
	}
	return a.flush()
}

func (a *Assembler) flush() *Batch {
	b := &Batch{ID: a.nextID, Rows: a.buf}
	a.nextID++
	a.buf = nil
	return b
}

// Dedup tracks the highest batch ID admitted per stream so duplicate
// deliveries are ingested exactly once. It is safe for concurrent use:
// injection and recovery may race on different streams.
type Dedup struct {
	mu   sync.Mutex
	high map[string]mark
}

// mark remembers the current high-water batch ID and the one it
// replaced, so the most recent admission can be released if the batch
// never actually entered the engine (e.g. its enqueue failed).
type mark struct {
	high, prev int64
}

// NewDedup creates an empty tracker.
func NewDedup() *Dedup {
	return &Dedup{high: make(map[string]mark)}
}

// Admit reports whether the batch is new for the stream and records it.
// Batches must arrive in increasing ID order per stream; an old or
// repeated ID is rejected.
func (d *Dedup) Admit(stream string, batchID int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := d.high[stream]
	if batchID <= m.high {
		return false
	}
	d.high[stream] = mark{high: batchID, prev: m.high}
	return true
}

// Release undoes an admission that never took effect, so the client can
// retry the batch. Only the stream's most recent admission can be
// released; releasing any other ID is a no-op (a later batch has been
// admitted since, and the ledger cannot regress below it).
func (d *Dedup) Release(stream string, batchID int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.high[stream]; ok && m.high == batchID {
		d.high[stream] = mark{high: m.prev, prev: m.prev}
	}
}

// High returns the highest admitted batch ID for a stream (0 when none).
func (d *Dedup) High(stream string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.high[stream].high
}

// Reset forgets a stream's history; recovery uses this before replaying
// a log so the replayed border TEs are admitted again.
func (d *Dedup) Reset(stream string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.high, stream)
}

// ShardedDedup is a Dedup partitioned into independent shards — one per
// execution site — so the exactly-once ledger for a batch lives on the
// partition the batch is routed to, and concurrent ingestion to
// different partitions never contends on one mutex. Batch IDs must be
// increasing per (stream, shard); a partitioning function that routes
// by a key every tuple of a batch shares yields exactly that, since
// each shard then sees an increasing subsequence of the stream's IDs.
type ShardedDedup struct {
	shards []*Dedup
}

// NewShardedDedup creates a ledger with n independent shards (n >= 1).
func NewShardedDedup(n int) *ShardedDedup {
	if n < 1 {
		n = 1
	}
	s := &ShardedDedup{shards: make([]*Dedup, n)}
	for i := range s.shards {
		s.shards[i] = NewDedup()
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedDedup) Shards() int { return len(s.shards) }

func (s *ShardedDedup) shard(i int) *Dedup {
	return s.shards[((i%len(s.shards))+len(s.shards))%len(s.shards)]
}

// Admit records the batch on the shard's ledger; see Dedup.Admit.
func (s *ShardedDedup) Admit(shard int, stream string, batchID int64) bool {
	return s.shard(shard).Admit(stream, batchID)
}

// Release undoes the shard's most recent admission; see Dedup.Release.
func (s *ShardedDedup) Release(shard int, stream string, batchID int64) {
	s.shard(shard).Release(stream, batchID)
}

// High returns the shard's highest admitted batch ID for a stream.
func (s *ShardedDedup) High(shard int, stream string) int64 {
	return s.shard(shard).High(stream)
}

// Reset forgets a stream's history on one shard.
func (s *ShardedDedup) Reset(shard int, stream string) {
	s.shard(shard).Reset(stream)
}
