// Package stream implements the stream injection side of the paper's
// architecture (§3.2): atomic batches, batch assembly from a raw tuple
// feed, and the exactly-once ingestion bookkeeping that rejects
// duplicate batches on re-send (e.g. after a client retry or during
// recovery replay).
package stream

import (
	"fmt"
	"sync"

	"sstore/internal/types"
)

// Batch is one atomic batch: a finite, contiguous subsequence of a
// stream that must be processed as a unit (§2.1).
type Batch struct {
	// ID is the batch identifier; batches of one stream carry
	// strictly increasing IDs.
	ID int64
	// Rows are the batch's tuples in arrival order.
	Rows []types.Row
}

// Assembler groups a raw tuple feed into fixed-size atomic batches,
// assigning consecutive batch IDs. This is the "stream injection
// module ... responsible for preparing the atomic batches" of Figure 4.
// The zero Assembler is not usable; use NewAssembler.
type Assembler struct {
	size   int
	nextID int64
	buf    []types.Row
}

// NewAssembler creates an assembler producing batches of the given
// tuple count (the paper's experiments mostly use size 1).
func NewAssembler(size int) (*Assembler, error) {
	if size <= 0 {
		return nil, fmt.Errorf("stream: batch size must be positive, got %d", size)
	}
	return &Assembler{size: size, nextID: 1}, nil
}

// Push adds a tuple to the assembler, returning a completed batch when
// the size threshold is reached, or nil.
func (a *Assembler) Push(row types.Row) *Batch {
	a.buf = append(a.buf, row)
	if len(a.buf) < a.size {
		return nil
	}
	return a.flush()
}

// Flush emits any buffered tuples as a final short batch, or nil when
// the buffer is empty. Use at end of input.
func (a *Assembler) Flush() *Batch {
	if len(a.buf) == 0 {
		return nil
	}
	return a.flush()
}

func (a *Assembler) flush() *Batch {
	b := &Batch{ID: a.nextID, Rows: a.buf}
	a.nextID++
	a.buf = nil
	return b
}

// Dedup tracks the highest batch ID admitted per stream so duplicate
// deliveries are ingested exactly once. It is safe for concurrent use:
// injection and recovery may race on different streams.
type Dedup struct {
	mu   sync.Mutex
	high map[string]int64
}

// NewDedup creates an empty tracker.
func NewDedup() *Dedup {
	return &Dedup{high: make(map[string]int64)}
}

// Admit reports whether the batch is new for the stream and records it.
// Batches must arrive in increasing ID order per stream; an old or
// repeated ID is rejected.
func (d *Dedup) Admit(stream string, batchID int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if batchID <= d.high[stream] {
		return false
	}
	d.high[stream] = batchID
	return true
}

// High returns the highest admitted batch ID for a stream (0 when none).
func (d *Dedup) High(stream string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.high[stream]
}

// Reset forgets a stream's history; recovery uses this before replaying
// a log so the replayed border TEs are admitted again.
func (d *Dedup) Reset(stream string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.high, stream)
}
