package stormlike

import (
	"fmt"
	"sync"
	"time"

	"sstore/internal/netsim"
	"sstore/internal/types"
)

// KVStore is the external state server Trident topologies keep their
// state in — the stand-in for the Memcached deployment of §4.6.2.
// Every operation pays a simulated network hop, which is the
// structural cost that separates Trident from S-Store's in-engine
// state in Figure 10.
type KVStore struct {
	mu   sync.Mutex
	data map[string]kvEntry
	hop  time.Duration
	ops  uint64
}

type kvEntry struct {
	value types.Row
	txid  int64 // last transaction that wrote the key
}

// DefaultKVHop approximates a localhost Memcached round trip (the
// paper's §4.6 comparison is single-node, so the state store shares
// the machine).
const DefaultKVHop = 25 * time.Microsecond

// NewKVStore creates a store with the given per-operation hop latency.
func NewKVStore(hop time.Duration) *KVStore {
	return &KVStore{data: make(map[string]kvEntry), hop: hop}
}

// Ops returns the number of store operations performed.
func (s *KVStore) Ops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Get fetches a key (one network hop). ok=false when absent.
func (s *KVStore) Get(key string) (types.Row, bool) {
	netsim.Delay(s.hop)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	e, ok := s.data[key]
	return e.value, ok
}

// GetWithTxid fetches a key and the txid that last wrote it.
func (s *KVStore) GetWithTxid(key string) (types.Row, int64, bool) {
	netsim.Delay(s.hop)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	e, ok := s.data[key]
	return e.value, e.txid, ok
}

// PutIfNewTxid writes a key tagged with the writing transaction. The
// write is skipped when the key was already written by this txid —
// Trident's idempotent-state trick that upgrades at-least-once replay
// to exactly-once updates.
func (s *KVStore) PutIfNewTxid(txid int64, key string, value types.Row) bool {
	netsim.Delay(s.hop)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	if e, ok := s.data[key]; ok && e.txid == txid {
		return false
	}
	s.data[key] = kvEntry{value: value, txid: txid}
	return true
}

// Len returns the number of stored keys.
func (s *KVStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// TridentBatchFunc processes one batch against external state.
type TridentBatchFunc func(txid int64, rows []types.Row, state *KVStore) error

// Trident runs batches with exactly-once semantics over a Storm-style
// substrate: each batch gets a transaction ID; batches commit in txid
// order; a failed batch is retried with the *same* txid, and the
// txid-tagged state writes make the retry idempotent (§5).
type Trident struct {
	state    *KVStore
	fn       TridentBatchFunc
	nextTxid int64

	attempts  uint64
	committed uint64
}

// NewTrident creates a Trident pipeline over a state store.
func NewTrident(state *KVStore, fn TridentBatchFunc) *Trident {
	return &Trident{state: state, fn: fn, nextTxid: 1}
}

// State returns the external state store.
func (t *Trident) State() *KVStore { return t.state }

// Committed returns the number of committed batches.
func (t *Trident) Committed() uint64 { return t.committed }

// Attempts returns total batch attempts including retries.
func (t *Trident) Attempts() uint64 { return t.attempts }

// ProcessBatch runs one batch to commit, retrying with the same txid
// on failure (exactly-once).
func (t *Trident) ProcessBatch(rows []types.Row) error {
	txid := t.nextTxid
	const maxAttempts = 10
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		t.attempts++
		if err := t.fn(txid, rows, t.state); err != nil {
			lastErr = err
			continue
		}
		t.nextTxid++
		t.committed++
		return nil
	}
	return fmt.Errorf("stormlike: batch txid %d failed after %d attempts: %w", txid, maxAttempts, lastErr)
}
