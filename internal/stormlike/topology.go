// Package stormlike is a miniature of Storm and its Trident layer
// (§4.6.2, §5), built as a comparison baseline: topologies of spouts
// and bolts over channels, Storm's XOR-ledger acker giving
// at-least-once delivery with replay on timeout, and a Trident-style
// transactional layer giving exactly-once batch processing against an
// external key/value state store (the Memcached stand-in) reached
// through a simulated network hop.
package stormlike

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sstore/internal/types"
)

// Tuple is one message flowing through a topology. Every tuple carries
// the ID of its root (spout) tuple so the acker can track the tree.
type Tuple struct {
	// ID is this tuple's unique message ID.
	ID uint64
	// Root is the spout tuple this one descends from.
	Root uint64
	// Values is the payload.
	Values types.Row
}

// BoltFunc processes one tuple, emitting zero or more downstream rows
// via emit. Returning an error fails the tuple's tree (the root will
// be replayed).
type BoltFunc func(t *Tuple, emit func(types.Row)) error

// acker implements Storm's XOR ledger: for each root tuple it keeps
// the XOR of every (emitted ⊕ acked) tuple ID in the tree; when the
// ledger hits zero the tree is fully processed.
type acker struct {
	mu     sync.Mutex
	ledger map[uint64]uint64
	done   map[uint64]bool
}

func newAcker() *acker {
	return &acker{ledger: make(map[uint64]uint64), done: make(map[uint64]bool)}
}

// emit registers a tuple in its root's tree.
func (a *acker) emit(root, id uint64) {
	a.mu.Lock()
	a.ledger[root] ^= id
	a.mu.Unlock()
}

// ack marks a tuple processed; it returns true when the root's whole
// tree has completed.
func (a *acker) ack(root, id uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ledger[root] ^= id
	if a.ledger[root] == 0 {
		delete(a.ledger, root)
		a.done[root] = true
		return true
	}
	return false
}

// completed reports and clears a root's completion flag.
func (a *acker) completed(root uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done[root] {
		delete(a.done, root)
		return true
	}
	return false
}

// Topology is a linear chain of bolts (the shape of every §4
// benchmark): spout → bolt1 → ... → boltN. Tuples are processed with
// at-least-once semantics: the spout holds each root tuple until its
// tree is fully acked, replaying it on timeout.
type Topology struct {
	bolts    []BoltFunc
	acker    *acker
	nextID   uint64
	idRand   *rand.Rand
	idMu     sync.Mutex
	replayTO time.Duration

	pending   map[uint64]types.Row // in-flight root tuples for replay
	pendMu    sync.Mutex
	replays   uint64
	processed uint64
}

// NewTopology builds a chain topology over the bolt functions. Tuple
// IDs draw from a topology-owned generator seeded to a fixed default,
// so two runs over the same input produce the same ID stream; use
// SeedIDs to vary (or reproduce) a particular run.
func NewTopology(bolts ...BoltFunc) *Topology {
	return &Topology{
		bolts:    bolts,
		acker:    newAcker(),
		idRand:   rand.New(rand.NewSource(1)),
		replayTO: 100 * time.Millisecond,
		pending:  make(map[uint64]types.Row),
	}
}

// SeedIDs re-seeds the topology's tuple-ID generator. Call before
// Run: a topology replayed with the same seed and input emits the
// same tuple IDs, which makes ack-tree failures reproducible.
func (t *Topology) SeedIDs(seed int64) {
	t.idMu.Lock()
	defer t.idMu.Unlock()
	t.idRand = rand.New(rand.NewSource(seed))
}

func (t *Topology) newID() uint64 {
	t.idMu.Lock()
	defer t.idMu.Unlock()
	t.nextID++
	// Storm uses random 64-bit IDs; mix in randomness so XORs of
	// sequential IDs don't accidentally cancel. The randomness comes
	// from the topology's seeded generator, never the global source:
	// a fixed seed must reproduce a run exactly.
	return t.nextID<<20 ^ t.idRand.Uint64()>>44 | t.nextID
}

// Replays returns how many root tuples were replayed after failures.
func (t *Topology) Replays() uint64 { return t.replays }

// Processed returns how many root tuples completed.
func (t *Topology) Processed() uint64 { return t.processed }

// EmitAndWait pushes one root tuple through the whole chain
// synchronously, replaying from the spout on failure until the tree
// acks (at-least-once). It returns the rows emitted by the final bolt.
func (t *Topology) EmitAndWait(row types.Row) ([]types.Row, error) {
	const maxAttempts = 10
	for attempt := 0; attempt < maxAttempts; attempt++ {
		root := t.newID()
		t.pendMu.Lock()
		t.pending[root] = row
		t.pendMu.Unlock()
		t.acker.emit(root, root)

		out, err := t.runTree(root, row)
		t.acker.ack(root, root)
		if err == nil && t.acker.completed(root) {
			t.pendMu.Lock()
			delete(t.pending, root)
			t.pendMu.Unlock()
			t.processed++
			return out, nil
		}
		// Failure: replay the root (at-least-once).
		t.replays++
	}
	return nil, fmt.Errorf("stormlike: tuple failed after %d replays", maxAttempts)
}

// runTree walks the tuple tree depth-first through the bolt chain,
// doing the emit/ack bookkeeping the acker needs.
func (t *Topology) runTree(root uint64, row types.Row) ([]types.Row, error) {
	level := []types.Row{row}
	for _, bolt := range t.bolts {
		var next []types.Row
		for _, r := range level {
			tup := &Tuple{ID: t.newID(), Root: root, Values: r}
			t.acker.emit(root, tup.ID)
			err := bolt(tup, func(out types.Row) {
				next = append(next, out)
			})
			if err != nil {
				return nil, err
			}
			t.acker.ack(root, tup.ID)
		}
		level = next
	}
	return level, nil
}
