package stormlike

import (
	"fmt"
	"testing"

	"sstore/internal/types"
)

func row(vs ...int64) types.Row {
	r := make(types.Row, len(vs))
	for i, v := range vs {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestTopologyChain(t *testing.T) {
	double := func(tp *Tuple, emit func(types.Row)) error {
		emit(row(tp.Values[0].Int() * 2))
		return nil
	}
	addOne := func(tp *Tuple, emit func(types.Row)) error {
		emit(row(tp.Values[0].Int() + 1))
		return nil
	}
	topo := NewTopology(double, addOne)
	out, err := topo.EmitAndWait(row(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0].Int() != 11 {
		t.Fatalf("out = %v", out)
	}
	if topo.Processed() != 1 || topo.Replays() != 0 {
		t.Errorf("processed=%d replays=%d", topo.Processed(), topo.Replays())
	}
}

func TestTopologyFanOutAcking(t *testing.T) {
	split := func(tp *Tuple, emit func(types.Row)) error {
		for i := int64(0); i < 3; i++ {
			emit(row(tp.Values[0].Int() + i))
		}
		return nil
	}
	count := 0
	sink := func(tp *Tuple, emit func(types.Row)) error {
		count++
		emit(tp.Values)
		return nil
	}
	topo := NewTopology(split, sink)
	out, err := topo.EmitAndWait(row(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || count != 3 {
		t.Fatalf("out = %v, count = %d", out, count)
	}
}

func TestAtLeastOnceReplay(t *testing.T) {
	attempts := 0
	flaky := func(tp *Tuple, emit func(types.Row)) error {
		attempts++
		if attempts < 3 {
			return fmt.Errorf("transient failure %d", attempts)
		}
		emit(tp.Values)
		return nil
	}
	topo := NewTopology(flaky)
	out, err := topo.EmitAndWait(row(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if topo.Replays() != 2 {
		t.Errorf("replays = %d, want 2 (at-least-once)", topo.Replays())
	}
}

func TestPermanentFailureGivesUp(t *testing.T) {
	dead := func(tp *Tuple, emit func(types.Row)) error {
		return fmt.Errorf("permanent")
	}
	topo := NewTopology(dead)
	if _, err := topo.EmitAndWait(row(1)); err == nil {
		t.Fatal("permanently failing tuple should error out")
	}
}

func TestAckerLedger(t *testing.T) {
	a := newAcker()
	a.emit(100, 100)
	a.emit(100, 7)
	a.emit(100, 9)
	if a.ack(100, 7) {
		t.Error("tree incomplete after one ack")
	}
	if a.ack(100, 9) {
		t.Error("tree incomplete: root outstanding")
	}
	if !a.ack(100, 100) {
		t.Error("tree should complete when ledger reaches zero")
	}
	if !a.completed(100) {
		t.Error("completion flag missing")
	}
	if a.completed(100) {
		t.Error("completion flag should clear")
	}
}

func TestKVStoreTxidIdempotence(t *testing.T) {
	s := NewKVStore(0)
	if !s.PutIfNewTxid(1, "k", row(10)) {
		t.Fatal("first write rejected")
	}
	if s.PutIfNewTxid(1, "k", row(20)) {
		t.Error("same-txid rewrite should be skipped (idempotent replay)")
	}
	v, txid, ok := s.GetWithTxid("k")
	if !ok || v[0].Int() != 10 || txid != 1 {
		t.Fatalf("get = %v, %d, %v", v, txid, ok)
	}
	if !s.PutIfNewTxid(2, "k", row(20)) {
		t.Error("new txid write rejected")
	}
	v, _ = s.Get("k")
	if v[0].Int() != 20 {
		t.Errorf("v = %v", v)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("missing key reported present")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	if s.Ops() == 0 {
		t.Error("ops not counted")
	}
}

func TestTridentExactlyOnce(t *testing.T) {
	state := NewKVStore(0)
	failNext := 0
	tr := NewTrident(state, func(txid int64, rows []types.Row, s *KVStore) error {
		for _, r := range rows {
			key := fmt.Sprint(r[0].Int())
			cur, _, ok := s.GetWithTxid(key)
			n := int64(0)
			if ok {
				n = cur[0].Int()
			}
			s.PutIfNewTxid(txid, key, row(n+1))
		}
		if failNext > 0 {
			failNext--
			return fmt.Errorf("injected failure")
		}
		return nil
	})
	// Batch 1 fails twice mid-flight, then succeeds: counts must not
	// double-apply thanks to txid-tagged writes.
	failNext = 2
	if err := tr.ProcessBatch([]types.Row{row(1), row(2)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.ProcessBatch([]types.Row{row(1)}); err != nil {
		t.Fatal(err)
	}
	v, _ := state.Get("1")
	if v[0].Int() != 2 {
		t.Errorf("key 1 = %v, want 2 (exactly-once)", v[0])
	}
	v, _ = state.Get("2")
	if v[0].Int() != 1 {
		t.Errorf("key 2 = %v, want 1", v[0])
	}
	if tr.Committed() != 2 {
		t.Errorf("committed = %d", tr.Committed())
	}
	if tr.Attempts() != 4 {
		t.Errorf("attempts = %d, want 4 (2 failures + 2 commits)", tr.Attempts())
	}
}
