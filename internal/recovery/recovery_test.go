package recovery

import (
	"path/filepath"
	"testing"

	"sstore/internal/types"
	"sstore/internal/wal"
)

// fakeEngine records the driver's call sequence.
type fakeEngine struct {
	events   []string
	snapLSN  uint64
	replayed []*wal.Record
	trigOn   bool
}

func (f *fakeEngine) LoadSnapshot() (uint64, error) {
	f.events = append(f.events, "snapshot")
	return f.snapLSN, nil
}

func (f *fakeEngine) SetPETriggersEnabled(on bool) {
	f.trigOn = on
	if on {
		f.events = append(f.events, "triggers-on")
	} else {
		f.events = append(f.events, "triggers-off")
	}
}

func (f *fakeEngine) ReplayRecord(rec *wal.Record) error {
	f.replayed = append(f.replayed, rec)
	f.events = append(f.events, "replay-"+rec.SP)
	return nil
}

func (f *fakeEngine) FirePendingStreamTriggers() error {
	f.events = append(f.events, "fire-pending")
	return nil
}

func writeLog(t *testing.T, dir string, recs []*wal.Record) string {
	t.Helper()
	path := filepath.Join(dir, "cmd.log")
	l, err := wal.Open(wal.Options{Path: path, Policy: wal.SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	return path
}

func TestShouldLog(t *testing.T) {
	cases := []struct {
		mode Mode
		kind wal.RecordKind
		want bool
	}{
		{ModeNone, wal.KindBorder, false},
		{ModeNone, wal.KindOLTP, false},
		{ModeStrong, wal.KindBorder, true},
		{ModeStrong, wal.KindInterior, true},
		{ModeStrong, wal.KindOLTP, true},
		{ModeWeak, wal.KindBorder, true},
		{ModeWeak, wal.KindInterior, false},
		{ModeWeak, wal.KindOLTP, true},
	}
	for _, c := range cases {
		if got := c.mode.ShouldLog(c.kind); got != c.want {
			t.Errorf("%v.ShouldLog(%v) = %v, want %v", c.mode, c.kind, got, c.want)
		}
	}
}

func TestStrongOrderAndFiltering(t *testing.T) {
	recs := []*wal.Record{
		{Kind: wal.KindBorder, SP: "B1", BatchID: 1},
		{Kind: wal.KindInterior, SP: "I1", BatchID: 1},
		{Kind: wal.KindBorder, SP: "B2", BatchID: 2},
	}
	path := writeLog(t, t.TempDir(), recs)
	f := &fakeEngine{snapLSN: 1} // first record already in snapshot
	if _, err := Recover(ModeStrong, path, f); err != nil {
		t.Fatal(err)
	}
	want := []string{"triggers-off", "snapshot", "replay-I1", "replay-B2", "triggers-on", "fire-pending", "triggers-on"}
	if len(f.events) != len(want) {
		t.Fatalf("events = %v", f.events)
	}
	for i := range want {
		if f.events[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (all: %v)", i, f.events[i], want[i], f.events)
		}
	}
}

func TestWeakSkipsInteriorAndFiresFirst(t *testing.T) {
	recs := []*wal.Record{
		{Kind: wal.KindBorder, SP: "B1", BatchID: 1, Batch: []types.Row{{types.NewInt(1)}}},
		{Kind: wal.KindInterior, SP: "I1", BatchID: 1},
		{Kind: wal.KindOLTP, SP: "O1"},
	}
	path := writeLog(t, t.TempDir(), recs)
	f := &fakeEngine{}
	if _, err := Recover(ModeWeak, path, f); err != nil {
		t.Fatal(err)
	}
	want := []string{"snapshot", "triggers-on", "fire-pending", "replay-B1", "replay-O1"}
	if len(f.events) != len(want) {
		t.Fatalf("events = %v", f.events)
	}
	for i := range want {
		if f.events[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (all: %v)", i, f.events[i], want[i], f.events)
		}
	}
	if len(f.replayed) != 2 {
		t.Errorf("interior record must be skipped under weak replay")
	}
	if len(f.replayed[0].Batch) != 1 {
		t.Errorf("border record should carry its batch (upstream backup)")
	}
}

func TestModeNoneOnlyLoadsSnapshot(t *testing.T) {
	f := &fakeEngine{}
	if _, err := Recover(ModeNone, "/nonexistent", f); err != nil {
		t.Fatal(err)
	}
	if len(f.events) != 1 || f.events[0] != "snapshot" {
		t.Errorf("events = %v", f.events)
	}
}

func TestMissingLogIsEmptyReplay(t *testing.T) {
	f := &fakeEngine{}
	if _, err := Recover(ModeStrong, filepath.Join(t.TempDir(), "none.log"), f); err != nil {
		t.Fatal(err)
	}
	if len(f.replayed) != 0 {
		t.Errorf("replayed = %v", f.replayed)
	}
}
