// Package recovery implements the paper's two crash-recovery schemes
// (§2.4, §3.2.5) as drivers over an abstract engine:
//
//   - Strong recovery: every committed TE (OLTP, border, interior) is
//     in the command log. Replay applies the snapshot, disables PE
//     triggers so interior TEs are not re-triggered redundantly,
//     re-executes the log in commit order, re-enables PE triggers, and
//     finally fires triggers for any stream tables left non-empty.
//     The result is exactly the pre-crash state.
//
//   - Weak recovery (upstream backup): only border and OLTP TEs are
//     logged. Replay applies the snapshot, first fires PE triggers for
//     stream tables the snapshot recovered non-empty (their interior
//     consumers committed after the snapshot but were never logged),
//     then re-executes the log with PE triggers enabled so interior
//     TEs are re-derived. The result is a legal state — identical to
//     some correct execution, though not necessarily the one that was
//     interrupted.
package recovery

import (
	"fmt"

	"sstore/internal/wal"
)

// Mode selects the recovery scheme, which also dictates what the
// engine logs during normal operation.
type Mode uint8

const (
	// ModeNone disables command logging (the paper's throughput
	// experiments run with logging off unless stated).
	ModeNone Mode = iota
	// ModeStrong logs every TE.
	ModeStrong
	// ModeWeak logs only border and OLTP TEs.
	ModeWeak
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeStrong:
		return "strong"
	case ModeWeak:
		return "weak"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ShouldLog reports whether a TE of the given kind is recorded in the
// command log under this mode.
func (m Mode) ShouldLog(kind wal.RecordKind) bool {
	switch m {
	case ModeStrong:
		return true
	case ModeWeak:
		return kind != wal.KindInterior
	default:
		return false
	}
}

// Engine is the replay surface the drivers need. *pe.Engine implements
// it; tests use fakes.
type Engine interface {
	// LoadSnapshot restores the latest checkpoint into the catalog,
	// returning the LSN of the last log record it reflects (0 when
	// no checkpoint exists).
	LoadSnapshot() (uint64, error)
	// SetPETriggersEnabled toggles PE-trigger firing engine-wide.
	SetPETriggersEnabled(enabled bool)
	// ReplayRecord re-executes one logged TE synchronously,
	// including (when PE triggers are enabled) everything it
	// triggers downstream.
	ReplayRecord(rec *wal.Record) error
	// FirePendingStreamTriggers fires PE triggers for every stream
	// table that currently holds tuples, running the triggered TEs
	// to completion.
	FirePendingStreamTriggers() error
}

// Recover runs the selected scheme against the engine, reading the
// command log at logPath. The engine must be quiesced (no client
// traffic) for the duration.
func Recover(mode Mode, logPath string, eng Engine) error {
	switch mode {
	case ModeNone:
		_, err := eng.LoadSnapshot()
		return err
	case ModeStrong:
		return recoverStrong(logPath, eng)
	case ModeWeak:
		return recoverWeak(logPath, eng)
	default:
		return fmt.Errorf("recovery: unknown mode %v", mode)
	}
}

func recoverStrong(logPath string, eng Engine) error {
	// Disable triggers before touching state: replaying an interior
	// TE's upstream must not re-trigger it (§3.2.5).
	eng.SetPETriggersEnabled(false)
	defer eng.SetPETriggersEnabled(true)

	lastLSN, err := eng.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("recovery(strong): snapshot: %w", err)
	}
	recs, err := wal.ReadAll(logPath)
	if err != nil {
		return fmt.Errorf("recovery(strong): log: %w", err)
	}
	for _, rec := range recs {
		if rec.LSN <= lastLSN {
			continue // already reflected in the snapshot
		}
		if err := eng.ReplayRecord(rec); err != nil {
			return fmt.Errorf("recovery(strong): replay LSN %d (%s): %w", rec.LSN, rec.SP, err)
		}
	}
	// Triggers back on, then drain streams that still hold batches:
	// their downstream TEs had not committed before the crash.
	eng.SetPETriggersEnabled(true)
	if err := eng.FirePendingStreamTriggers(); err != nil {
		return fmt.Errorf("recovery(strong): pending triggers: %w", err)
	}
	return nil
}

func recoverWeak(logPath string, eng Engine) error {
	lastLSN, err := eng.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("recovery(weak): snapshot: %w", err)
	}
	// Interior work recovered inside the snapshot's stream tables is
	// re-derived by firing their triggers before replaying the log
	// (§3.2.5).
	eng.SetPETriggersEnabled(true)
	if err := eng.FirePendingStreamTriggers(); err != nil {
		return fmt.Errorf("recovery(weak): pending triggers: %w", err)
	}
	recs, err := wal.ReadAll(logPath)
	if err != nil {
		return fmt.Errorf("recovery(weak): log: %w", err)
	}
	for _, rec := range recs {
		if rec.LSN <= lastLSN {
			continue
		}
		if rec.Kind == wal.KindInterior {
			// A weak-mode log contains no interior records; tolerate
			// them (e.g. a log written under strong mode) by
			// skipping — the border replay re-derives their work.
			continue
		}
		if err := eng.ReplayRecord(rec); err != nil {
			return fmt.Errorf("recovery(weak): replay LSN %d (%s): %w", rec.LSN, rec.SP, err)
		}
	}
	return nil
}
