// Package recovery implements the paper's two crash-recovery schemes
// (§2.4, §3.2.5) as drivers over an abstract engine:
//
//   - Strong recovery: every committed TE (OLTP, border, interior) is
//     in the command log. Replay applies the snapshot, disables PE
//     triggers so interior TEs are not re-triggered redundantly,
//     merge-reads every partition's log in global commit-sequence
//     order and re-executes that merged sequence, re-enables PE
//     triggers, and finally fires triggers for any stream tables left
//     non-empty. The result is exactly the pre-crash state.
//
//   - Weak recovery (upstream backup): only border and OLTP TEs are
//     logged. Replay applies the snapshot, first fires PE triggers for
//     stream tables the snapshot recovered non-empty (their interior
//     consumers committed after the snapshot but were never logged),
//     then re-executes each partition's log independently with PE
//     triggers enabled so interior TEs are re-derived. Partitions'
//     border TEs are mutually independent, so per-partition order is
//     all that replay needs; the result is a legal state — identical
//     to some correct execution, though not necessarily the one that
//     was interrupted.
//
// The command log is sharded one file per partition (wal.LogSet); both
// drivers handle a torn tail independently per log, and both accept a
// legacy unsharded log at the base path.
package recovery

import (
	"fmt"
	"io"

	"sstore/internal/wal"
)

// Mode selects the recovery scheme, which also dictates what the
// engine logs during normal operation.
type Mode uint8

const (
	// ModeNone disables command logging (the paper's throughput
	// experiments run with logging off unless stated).
	ModeNone Mode = iota
	// ModeStrong logs every TE.
	ModeStrong
	// ModeWeak logs only border and OLTP TEs.
	ModeWeak
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeStrong:
		return "strong"
	case ModeWeak:
		return "weak"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ShouldLog reports whether a TE of the given kind is recorded in the
// command log under this mode.
func (m Mode) ShouldLog(kind wal.RecordKind) bool {
	switch m {
	case ModeStrong:
		return true
	case ModeWeak:
		return kind != wal.KindInterior
	default:
		return false
	}
}

// Engine is the replay surface the drivers need. *pe.Engine implements
// it; tests use fakes.
type Engine interface {
	// LoadSnapshot restores the latest checkpoint into the catalog,
	// returning the LSN of the last log record it reflects (0 when
	// no checkpoint exists).
	LoadSnapshot() (uint64, error)
	// SetPETriggersEnabled toggles PE-trigger firing engine-wide.
	SetPETriggersEnabled(enabled bool)
	// ReplayRecord re-executes one logged TE synchronously,
	// including (when PE triggers are enabled) everything it
	// triggers downstream.
	ReplayRecord(rec *wal.Record) error
	// FirePendingStreamTriggers fires PE triggers for every stream
	// table that currently holds tuples, running the triggered TEs
	// to completion.
	FirePendingStreamTriggers() error
}

// Recover runs the selected scheme against the engine, reading the
// per-partition command logs under logPath (a directory or file
// prefix; see wal.SetOptions). The engine must be quiesced (no client
// traffic) for the duration. It returns the highest log sequence
// number observed across every record read — including records the
// replay filtered out — so the caller can re-arm its commit sequence
// without re-reading the logs.
func Recover(mode Mode, logPath string, eng Engine) (uint64, error) {
	switch mode {
	case ModeNone:
		_, err := eng.LoadSnapshot()
		return 0, err
	case ModeStrong:
		return recoverStrong(logPath, eng)
	case ModeWeak:
		return recoverWeak(logPath, eng)
	default:
		return 0, fmt.Errorf("recovery: unknown mode %v", mode)
	}
}

func recoverStrong(logPath string, eng Engine) (uint64, error) {
	// Disable triggers before touching state: replaying an interior
	// TE's upstream must not re-trigger it (§3.2.5).
	eng.SetPETriggersEnabled(false)
	defer eng.SetPETriggersEnabled(true)

	lastLSN, err := eng.LoadSnapshot()
	if err != nil {
		return 0, fmt.Errorf("recovery(strong): snapshot: %w", err)
	}
	// Merge-stream the partition logs in global-sequence order; one
	// record per shard is in memory at a time.
	r, err := wal.OpenSetReader(logPath)
	if err != nil {
		return 0, fmt.Errorf("recovery(strong): log: %w", err)
	}
	defer r.Close()
	var maxLSN uint64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return maxLSN, fmt.Errorf("recovery(strong): log: %w", err)
		}
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
		if rec.LSN <= lastLSN {
			continue // already reflected in the snapshot
		}
		if err := eng.ReplayRecord(rec); err != nil {
			return maxLSN, fmt.Errorf("recovery(strong): replay LSN %d (%s): %w", rec.LSN, rec.SP, err)
		}
	}
	// Triggers back on, then drain streams that still hold batches:
	// their downstream TEs had not committed before the crash.
	eng.SetPETriggersEnabled(true)
	if err := eng.FirePendingStreamTriggers(); err != nil {
		return maxLSN, fmt.Errorf("recovery(strong): pending triggers: %w", err)
	}
	return maxLSN, nil
}

func recoverWeak(logPath string, eng Engine) (uint64, error) {
	lastLSN, err := eng.LoadSnapshot()
	if err != nil {
		return 0, fmt.Errorf("recovery(weak): snapshot: %w", err)
	}
	// Interior work recovered inside the snapshot's stream tables is
	// re-derived by firing their triggers before replaying the log
	// (§3.2.5).
	eng.SetPETriggersEnabled(true)
	if err := eng.FirePendingStreamTriggers(); err != nil {
		return 0, fmt.Errorf("recovery(weak): pending triggers: %w", err)
	}
	// Each partition's log replays independently, in its own append
	// order: border batches on different partitions are mutually
	// independent, and PE triggers re-derive the interior work —
	// including cross-partition routing — as the replay runs. Each
	// shard is streamed record by record.
	paths, err := wal.SetPaths(logPath)
	if err != nil {
		return 0, fmt.Errorf("recovery(weak): log: %w", err)
	}
	var maxLSN uint64
	for _, path := range paths {
		shardMax, err := replayWeakShard(path, lastLSN, eng)
		if shardMax > maxLSN {
			maxLSN = shardMax
		}
		if err != nil {
			return maxLSN, err
		}
	}
	return maxLSN, nil
}

func replayWeakShard(path string, lastLSN uint64, eng Engine) (uint64, error) {
	r, err := wal.OpenReader(path)
	if err != nil {
		return 0, fmt.Errorf("recovery(weak): log: %w", err)
	}
	defer r.Close()
	var maxLSN uint64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return maxLSN, nil
		}
		if err != nil {
			return maxLSN, fmt.Errorf("recovery(weak): log: %w", err)
		}
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
		if rec.LSN <= lastLSN {
			continue
		}
		if rec.Kind == wal.KindInterior {
			// A weak-mode log contains no interior records; tolerate
			// them (e.g. a log written under strong mode) by
			// skipping — the border replay re-derives their work.
			continue
		}
		if err := eng.ReplayRecord(rec); err != nil {
			return maxLSN, fmt.Errorf("recovery(weak): replay LSN %d (%s): %w", rec.LSN, rec.SP, err)
		}
	}
}
