package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openSegmented opens a logger rotating at a deliberately tiny segment
// size, so a handful of records spans several files.
func openSegmented(t *testing.T, path string) *Logger {
	t.Helper()
	l, err := Open(Options{Path: path, Policy: SyncEachCommit, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendN(t *testing.T, l *Logger, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		if _, err := l.Append(testRecord(KindBorder, "SP1", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
}

func segCount(t *testing.T, base string) int {
	t.Helper()
	segs, err := logSegments(base)
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}

func TestSegmentRotationRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l := openSegmented(t, path)
	appendN(t, l, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := segCount(t, path); n < 3 {
		t.Fatalf("expected several segments at 128-byte rotation, got %d", n)
	}
	recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("read %d records across segments, want 20", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d: LSN %d, want %d — segment chaining broke order", i, r.LSN, i+1)
		}
	}
}

func TestSegmentReopenContinuesHighest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l := openSegmented(t, path)
	appendN(t, l, 10)
	l.Close()
	before := segCount(t, path)

	// Reopen — even with rotation off — and keep appending: records
	// must land in the highest existing segment, never back in an
	// earlier file, or segment order would stop matching LSN order.
	l2, err := Open(Options{Path: path, Policy: SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	l2.SetNextSeqForTest(11)
	if _, err := l2.Append(testRecord(KindOLTP, "SP2", 0)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if after := segCount(t, path); after != before {
		t.Fatalf("reopen changed segment count %d -> %d", before, after)
	}
	recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := recs[len(recs)-1]; got.SP != "SP2" || got.LSN != 11 {
		t.Fatalf("last record = %+v, want SP2 at LSN 11", got)
	}
}

func TestCompactDropsSealedSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l := openSegmented(t, path)
	appendN(t, l, 20)

	// Checkpoint covers the first 15 records: early sealed segments
	// are dropped whole, a straddler is rewritten, and the rest
	// survive untouched.
	if err := l.CompactBefore(15); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("kept %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(16+i) {
			t.Fatalf("kept record %d has LSN %d, want %d", i, r.LSN, 16+i)
		}
	}
	// Fully covered sealed segments must be gone as files, not merely
	// emptied: aging out is an O(1) delete.
	segs, err := logSegments(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs[:len(segs)-1] {
		first, last, err := segmentLSNRange(s.path)
		if err != nil {
			t.Fatal(err)
		}
		if last != 0 && last <= 15 {
			t.Fatalf("segment %s (LSNs %d-%d) should have been dropped", s.path, first, last)
		}
	}

	// The log keeps working after compaction.
	if _, err := l.Append(testRecord(KindOLTP, "after", 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err = ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || recs[5].SP != "after" {
		t.Fatalf("post-compact append lost: %d records", len(recs))
	}
}

func TestSealedSegmentCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l := openSegmented(t, path)
	appendN(t, l, 20)
	l.Close()
	segs, err := logSegments(path)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need >= 2 segments: %d, %v", len(segs), err)
	}

	// Flip one byte in the middle of the FIRST (sealed) segment.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Replay must fail loudly: a sealed segment was complete when it
	// sealed, so a bad record there is corruption, never a torn tail.
	if _, err := ReadAll(path); err == nil || !strings.Contains(err.Error(), "sealed segment") {
		t.Fatalf("corrupt sealed segment read as %v, want sealed-segment corruption error", err)
	}
}

func TestFinalSegmentTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l := openSegmented(t, path)
	appendN(t, l, 20)
	l.Close()
	segs, err := logSegments(path)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need >= 2 segments: %d, %v", len(segs), err)
	}
	whole, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the FINAL (active) segment mid-record: the classic
	// crash-mid-write state, which must read as a clean end-of-log.
	last := segs[len(segs)-1].path
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(whole)-1 {
		t.Fatalf("torn final segment: read %d records, want %d", len(recs), len(whole)-1)
	}
}

func TestSetPathsRecognizesSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSet(SetOptions{Path: dir, Partitions: 2, Policy: SyncEachCommit, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 40; i++ {
		if _, err := s.Append(int(i%2), testRecord(KindBorder, "SP1", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	paths, err := SetPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("SetPaths returned %d shards, want 2 bases: %v", len(paths), paths)
	}
	if n := segCount(t, filepath.Join(dir, "cmd-p0.log")); n < 2 {
		t.Fatalf("shard 0 never rotated (%d segment); the aging-out check below needs .s files", n)
	}

	// Age shard 0's base file out entirely; the shard must still be
	// listed (by its base path) thanks to its .s<k> segment files, and
	// the merged read must still deliver its surviving records.
	if err := os.Remove(filepath.Join(dir, "cmd-p0.log")); err != nil {
		t.Fatal(err)
	}
	paths, err = SetPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("SetPaths after aging out a base file: %d shards, want 2: %v", len(paths), paths)
	}
	recs, err := ReadSetMerged(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("merged stream out of order at %d: %d then %d", i, recs[i-1].LSN, recs[i].LSN)
		}
	}
}

//sstore:allocgate Reader.readFrame
func TestReaderFrameAllocFree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l, err := Open(Options{Path: path, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1101; i++ {
		if _, err := l.Append(testRecord(KindOLTP, "SP1", 0)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.readFrame(); err != nil { // warm the scratch buffer
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		payload, err := r.readFrame()
		if err != nil || len(payload) == 0 {
			t.Fatal("frame read broke")
		}
	}); n != 0 {
		t.Fatalf("readFrame allocates %v/op over a warm scratch buffer; replay reads every record through it", n)
	}
}

// SetNextSeqForTest positions a standalone logger's sequence counter;
// tests reopening a log use it to continue past replayed records the
// way recovery does.
func (l *Logger) SetNextSeqForTest(next uint64) { l.seq.Store(next - 1) }
