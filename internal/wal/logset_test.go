package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestLogSetGlobalSequence(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSet(SetOptions{Path: dir, Partitions: 3, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent appenders on different partitions draw from one
	// sequence: LSNs are unique and every record lands in its own
	// partition's file.
	const perPart = 20
	var wg sync.WaitGroup
	for pid := 0; pid < 3; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perPart; i++ {
				if _, err := s.Append(pid, testRecord(KindOLTP, "SP", int64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	if got := s.LastSeq(); got != 3*perPart {
		t.Errorf("LastSeq = %d, want %d", got, 3*perPart)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	merged, err := ReadSetMerged(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3*perPart {
		t.Fatalf("merged records = %d", len(merged))
	}
	for i, r := range merged {
		if r.LSN != uint64(i+1) {
			t.Fatalf("merged[%d].LSN = %d: global order broken", i, r.LSN)
		}
	}
	// Per-partition files each hold their own perPart records, in
	// ascending LSN order.
	for pid := 0; pid < 3; pid++ {
		recs, err := ReadAll(PartitionPath(dir, pid))
		if err != nil || len(recs) != perPart {
			t.Fatalf("partition %d: %d records (%v)", pid, len(recs), err)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].LSN <= recs[i-1].LSN {
				t.Fatalf("partition %d log not monotonic", pid)
			}
		}
	}
}

func TestLogSetPrefixLayout(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cmd.log")
	s, err := OpenSet(SetOptions{Path: base, Partitions: 2, Policy: SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	s.Append(0, testRecord(KindOLTP, "A", 1))
	s.Append(1, testRecord(KindOLTP, "B", 2))
	s.Close()
	for pid := 0; pid < 2; pid++ {
		if _, err := os.Stat(base + ".p" + string(rune('0'+pid))); err != nil {
			t.Errorf("missing shard %d: %v", pid, err)
		}
	}
	merged, err := ReadSetMerged(base)
	if err != nil || len(merged) != 2 {
		t.Fatalf("merged = %d records (%v)", len(merged), err)
	}
}

func TestReadSetLegacySingleFile(t *testing.T) {
	// A pre-shard log written at exactly the base path is still
	// replayable alongside (or without) shards.
	base := filepath.Join(t.TempDir(), "cmd.log")
	l, err := Open(Options{Path: base, Policy: SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		l.Append(testRecord(KindBorder, "Old", i))
	}
	l.Close()
	merged, err := ReadSetMerged(base)
	if err != nil || len(merged) != 4 {
		t.Fatalf("legacy merged = %d records (%v)", len(merged), err)
	}
	paths, err := SetPaths(base)
	if err != nil || len(paths) != 1 || paths[0] != base {
		t.Fatalf("legacy paths = %v (%v)", paths, err)
	}
}

func TestLogSetTornTailsIndependent(t *testing.T) {
	// Torn tails on two different partition logs are dropped
	// independently: each log loses only its own tail.
	dir := t.TempDir()
	s, err := OpenSet(SetOptions{Path: dir, Partitions: 2, Policy: SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		s.Append(0, testRecord(KindOLTP, "P0", i))
		s.Append(1, testRecord(KindOLTP, "P1", i))
	}
	s.Close()
	for pid := 0; pid < 2; pid++ {
		path := PartitionPath(dir, pid)
		data, _ := os.ReadFile(path)
		// Partition 0 gets trailing garbage; partition 1 loses half
		// its final record.
		if pid == 0 {
			data = append(data, 0xde, 0xad)
		} else {
			data = data[:len(data)-7]
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := ReadSetMerged(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 5 { // 3 intact on p0 + 2 on p1
		t.Fatalf("merged after torn tails = %d records", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].LSN <= merged[i-1].LSN {
			t.Fatalf("merge order broken at %d", i)
		}
	}
}

func TestLogSetCompactBefore(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSet(SetOptions{Path: dir, Partitions: 2, Policy: SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		s.Append(0, testRecord(KindOLTP, "P0", i))
		s.Append(1, testRecord(KindOLTP, "P1", i))
	}
	cut := s.LastSeq() - 2 // keep the last two commits (one per log)
	if err := s.CompactBefore(cut); err != nil {
		t.Fatal(err)
	}
	merged, err := ReadSetMerged(dir)
	if err != nil || len(merged) != 2 {
		t.Fatalf("after compaction: %d records (%v)", len(merged), err)
	}
	for _, r := range merged {
		if r.LSN <= cut {
			t.Errorf("record %d survived compaction below %d", r.LSN, cut)
		}
	}
	// Appends continue past the compacted tail.
	lsn, err := s.Append(0, testRecord(KindOLTP, "P0", 9))
	if err != nil || lsn != 9 {
		t.Fatalf("post-compaction append LSN = %d (%v), want 9", lsn, err)
	}
	merged, err = ReadSetMerged(dir)
	if err != nil || merged[len(merged)-1].LSN != 9 {
		t.Fatalf("post-append merged tail = %v (%v), want LSN 9", merged, err)
	}
	s.Close()
}

func TestGroupCommitFlushesImmediatelyWhenDue(t *testing.T) {
	// A waiter arriving after the log has been idle longer than the
	// group window must not sleep another full window: the sync is
	// already due, so it flushes immediately.
	path := filepath.Join(t.TempDir(), "cmd.log")
	const window = 300 * time.Millisecond
	l, err := Open(Options{Path: path, Policy: SyncGroup, GroupWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// First append pays up to one window (the timer arms at open).
	if _, err := l.Append(testRecord(KindOLTP, "A", 1)); err != nil {
		t.Fatal(err)
	}
	// Idle past the window, then append: the flush must come well
	// under a full window.
	time.Sleep(window + 50*time.Millisecond)
	start := time.Now()
	if _, err := l.Append(testRecord(KindOLTP, "B", 2)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > window/2 {
		t.Errorf("overdue sync took %v, want immediate (window %v)", d, window)
	}
}

func TestCompactBeforePrunesLegacyLog(t *testing.T) {
	// A pre-shard log at the base path is read-only to the set, but a
	// checkpoint must still prune it: once the stamp covers its
	// records they would otherwise be re-read and filtered on every
	// recovery forever.
	base := filepath.Join(t.TempDir(), "cmd.log")
	l, err := Open(Options{Path: base, Policy: SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		l.Append(testRecord(KindOLTP, "Old", i))
	}
	l.Close()

	s, err := OpenSet(SetOptions{Path: base, Partitions: 2, Policy: SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetNextSeq(4) // continue past the legacy records
	s.Append(0, testRecord(KindOLTP, "New", 4))
	s.Append(1, testRecord(KindOLTP, "New", 5))

	// Stamp covers the legacy records and one shard record.
	if err := s.CompactBefore(4); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(base); !os.IsNotExist(err) {
		t.Errorf("fully-obsolete legacy log should be deleted, stat err = %v", err)
	}
	merged, err := ReadSetMerged(base)
	if err != nil || len(merged) != 1 || merged[0].LSN != 5 {
		t.Fatalf("after compaction: %v (%v), want only LSN 5", merged, err)
	}
}

func TestLogSetPartitionSubset(t *testing.T) {
	dir := t.TempDir()
	// A cluster node owning global partitions {1, 3} of a 4-partition
	// map opens logs only for those IDs, under their global names.
	s, err := OpenSet(SetOptions{Path: dir, PartitionIDs: []int{1, 3}, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if s.Partitions() != 2 {
		t.Fatalf("Partitions() = %d, want 2", s.Partitions())
	}
	for _, pid := range []int{1, 3} {
		if _, err := s.Append(pid, testRecord(KindBorder, "SP", int64(pid))); err != nil {
			t.Fatalf("append pid %d: %v", pid, err)
		}
	}
	// Appending to a partition the node does not own must fail — that
	// record belongs on another node's log.
	if _, err := s.Append(0, testRecord(KindOLTP, "SP", 1)); err == nil {
		t.Fatal("append to unowned partition 0 succeeded")
	}
	if _, err := s.Append(2, testRecord(KindOLTP, "SP", 1)); err == nil {
		t.Fatal("append to unowned partition 2 succeeded")
	}
	if s.Bytes() == 0 {
		t.Fatal("Bytes() = 0 after appends")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Shard files carry the global partition IDs.
	for _, pid := range []int{1, 3} {
		if _, err := os.Stat(PartitionPath(dir, pid)); err != nil {
			t.Errorf("missing shard for global pid %d: %v", pid, err)
		}
	}
	for _, pid := range []int{0, 2} {
		if _, err := os.Stat(PartitionPath(dir, pid)); err == nil {
			t.Errorf("unexpected shard for unowned pid %d", pid)
		}
	}
	// The node replays exactly its own shards.
	merged, err := ReadSetMerged(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("merged records = %d, want 2", len(merged))
	}
}

func TestLogSetBytesMonotonic(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSet(SetOptions{Path: dir, Partitions: 1, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var last uint64
	for i := 0; i < 5; i++ {
		if _, err := s.Append(0, testRecord(KindOLTP, "SP", int64(i))); err != nil {
			t.Fatal(err)
		}
		b := s.Bytes()
		if b <= last {
			t.Fatalf("Bytes() not monotonic: %d then %d", last, b)
		}
		last = b
	}
}
