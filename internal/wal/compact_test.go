package wal

import (
	"path/filepath"
	"testing"
)

func TestCompactBefore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l, err := Open(Options{Path: path, Policy: SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if _, err := l.Append(testRecord(KindBorder, "SP", i)); err != nil {
			t.Fatal(err)
		}
	}
	// A checkpoint reflected LSNs ≤ 6.
	if err := l.CompactBefore(6); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].LSN != 7 || recs[3].LSN != 10 {
		t.Fatalf("after compaction: %d records, first LSN %d", len(recs), recs[0].LSN)
	}
	// Appends keep working on the compacted log with continuous LSNs.
	lsn, err := l.Append(testRecord(KindBorder, "SP", 11))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Errorf("post-compaction LSN = %d, want 11", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ = ReadAll(path)
	if len(recs) != 5 || recs[4].LSN != 11 {
		t.Fatalf("final log: %d records, last LSN %d", len(recs), recs[len(recs)-1].LSN)
	}
}

func TestCompactBeforeAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l, _ := Open(Options{Path: path, Policy: SyncEachCommit})
	for i := int64(1); i <= 3; i++ {
		l.Append(testRecord(KindOLTP, "SP", i))
	}
	if err := l.CompactBefore(100); err != nil {
		t.Fatal(err)
	}
	recs, _ := ReadAll(path)
	if len(recs) != 0 {
		t.Errorf("full compaction left %d records", len(recs))
	}
	l.Close()
}
