package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"sstore/internal/storage"
	"sstore/internal/types"
)

func testRecord(kind RecordKind, sp string, batch int64) *Record {
	return &Record{
		Kind:    kind,
		SP:      sp,
		BatchID: batch,
		Params:  types.Row{types.NewInt(42), types.NewText("x")},
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l, err := Open(Options{Path: path, Policy: SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		lsn, err := l.Append(testRecord(KindBorder, "SP1", i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Errorf("lsn = %d, want %d", lsn, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.SP != "SP1" || r.BatchID != int64(i+1) {
			t.Errorf("record %d = %+v", i, r)
		}
		if len(r.Params) != 2 || r.Params[0].Int() != 42 {
			t.Errorf("params %d = %v", i, r.Params)
		}
	}
}

func TestReadMissingLog(t *testing.T) {
	recs, err := ReadAll(filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || recs != nil {
		t.Errorf("missing log: %v, %v", recs, err)
	}
}

func TestTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l, _ := Open(Options{Path: path, Policy: SyncEachCommit})
	l.Append(testRecord(KindOLTP, "A", 0))
	l.Append(testRecord(KindOLTP, "B", 0))
	l.Close()
	// Simulate a crash mid-write: append garbage, then truncate the
	// last intact record's tail.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append(data, 0xde, 0xad, 0xbe), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("torn tail: %d records, %v", len(recs), err)
	}
	// Corrupt a byte inside the second record: it and everything
	// after must be dropped, the first survives.
	if err := os.WriteFile(path, append(append([]byte{}, data[:len(data)-6]...), 0xff), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = ReadAll(path)
	if err != nil || len(recs) != 1 || recs[0].SP != "A" {
		t.Fatalf("corrupt record: %d records, %v", len(recs), err)
	}
}

func TestGroupCommitReleasesWaiters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l, err := Open(Options{Path: path, Policy: SyncGroup, GroupWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 10)
	for i := 0; i < 10; i++ {
		go func(i int64) {
			_, err := l.Append(testRecord(KindOLTP, "G", i))
			done <- err
		}(int64(i))
	}
	for i := 0; i < 10; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("group commit did not release waiters")
		}
	}
	appends, syncs := l.Stats()
	if appends != 10 {
		t.Errorf("appends = %d", appends)
	}
	if syncs >= appends {
		t.Errorf("group commit should batch: %d syncs for %d appends", syncs, appends)
	}
	l.Close()
	recs, _ := ReadAll(path)
	if len(recs) != 10 {
		t.Errorf("records = %d", len(recs))
	}
}

func TestSyncNoneFlushedOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l, _ := Open(Options{Path: path, Policy: SyncNone})
	l.Append(testRecord(KindOLTP, "N", 0))
	l.Close()
	recs, _ := ReadAll(path)
	if len(recs) != 1 {
		t.Errorf("records = %d", len(recs))
	}
}

func TestSyncCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmd.log")
	l, _ := Open(Options{Path: path, Policy: SyncEachCommit})
	for i := 0; i < 4; i++ {
		l.Append(testRecord(KindOLTP, "S", 0))
	}
	appends, syncs := l.Stats()
	if appends != 4 || syncs != 4 {
		t.Errorf("appends=%d syncs=%d, want 4/4", appends, syncs)
	}
	l.Close()
}

func snapshotSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindText},
	)
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")

	tbl := storage.NewTable("t", storage.KindTable, snapshotSchema())
	strm := storage.NewTable("s", storage.KindStream, snapshotSchema())
	win, _ := storage.NewWindowTable("w", snapshotSchema(), storage.WindowSpec{Size: 2, Slide: 1})
	for i := int64(1); i <= 3; i++ {
		tbl.Insert(types.Row{types.NewInt(i), types.NewText("t")}, 0, nil)
		strm.Insert(types.Row{types.NewInt(i), types.NewText("s")}, i, nil)
		win.Insert(types.Row{types.NewInt(i), types.NewText("w")}, 0, nil)
	}
	winSlides := win.Window().Slides()

	if err := WriteSnapshot(path, 77, []*storage.Table{tbl, strm, win}); err != nil {
		t.Fatal(err)
	}

	// Fresh catalog with same DDL.
	tbl2 := storage.NewTable("t", storage.KindTable, snapshotSchema())
	strm2 := storage.NewTable("s", storage.KindStream, snapshotSchema())
	win2, _ := storage.NewWindowTable("w", snapshotSchema(), storage.WindowSpec{Size: 2, Slide: 1})
	byName := map[string]*storage.Table{"t": tbl2, "s": strm2, "w": win2}
	lastLSN, err := LoadSnapshot(path, func(n string) (*storage.Table, bool) {
		t, ok := byName[n]
		return t, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastLSN != 77 {
		t.Errorf("lastLSN = %d", lastLSN)
	}
	if tbl2.Len() != 3 || strm2.Len() != 3 || win2.Len() != win.Len() {
		t.Fatalf("lens = %d %d %d (want 3, 3, %d)", tbl2.Len(), strm2.Len(), win2.Len(), win.Len())
	}
	if got := storage.PendingBatches(strm2); len(got) != 3 {
		t.Errorf("stream batches = %v", got)
	}
	if win2.Window().Slides() != winSlides {
		t.Errorf("window slides = %d, want %d", win2.Window().Slides(), winSlides)
	}
	if win2.ActiveLen() != win.ActiveLen() {
		t.Errorf("window active = %d, want %d", win2.ActiveLen(), win.ActiveLen())
	}
	// Restored window keeps sliding correctly.
	res, err := win2.Insert(types.Row{types.NewInt(9), types.NewText("w")}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Slid {
		t.Error("restored window should slide on next insert (slide=1)")
	}
}

func TestSnapshotMissingFile(t *testing.T) {
	lsn, err := LoadSnapshot(filepath.Join(t.TempDir(), "none"), func(string) (*storage.Table, bool) { return nil, false })
	if err != nil || lsn != 0 {
		t.Errorf("missing snapshot: %d, %v", lsn, err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	tbl := storage.NewTable("t", storage.KindTable, snapshotSchema())
	tbl.Insert(types.Row{types.NewInt(1), types.NewText("x")}, 0, nil)
	if err := WriteSnapshot(path, 1, []*storage.Table{tbl}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, err := LoadSnapshot(path, func(n string) (*storage.Table, bool) { return tbl, true }); err == nil {
		t.Error("corrupt snapshot should fail to load")
	}
}

func TestSnapshotUnknownTableRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	tbl := storage.NewTable("t", storage.KindTable, snapshotSchema())
	WriteSnapshot(path, 1, []*storage.Table{tbl})
	if _, err := LoadSnapshot(path, func(string) (*storage.Table, bool) { return nil, false }); err == nil {
		t.Error("snapshot of unknown table should fail")
	}
}
