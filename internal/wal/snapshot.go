package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"sstore/internal/storage"
)

// Snapshot files persist a transaction-consistent checkpoint of every
// table (§3.1). Because partitions run transactions serially and the
// snapshot is taken between transactions, the image never contains
// uncommitted changes, so recovery needs no undo log — matching the
// paper's description of H-Store checkpoints.
//
// Layout: magic "SSSN" | u64 lastLSN | uvarint tableCount | per-table
// [uvarint len | image] ... | u32 crc32c(everything after magic).

const snapshotMagic = "SSSN"

// WriteSnapshot atomically writes a checkpoint of the given tables,
// recording the LSN of the last command-log record already reflected
// in it. It writes to a temp file and renames, so a crash mid-snapshot
// leaves the previous checkpoint intact.
func WriteSnapshot(path string, lastLSN uint64, tables []*storage.Table) error {
	buf := []byte(snapshotMagic)
	buf = binary.LittleEndian.AppendUint64(buf, lastLSN)
	buf = binary.AppendUvarint(buf, uint64(len(tables)))
	for _, t := range tables {
		img := storage.EncodeTable(nil, t)
		buf = binary.AppendUvarint(buf, uint64(len(img)))
		buf = append(buf, img...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[len(snapshotMagic):], crcTable))

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshot restores a checkpoint into the catalog's existing
// tables (matched by name) and returns the checkpoint's lastLSN.
// A missing file is not an error: it returns lastLSN 0, meaning
// "replay the whole log".
func LoadSnapshot(path string, lookup func(name string) (*storage.Table, bool)) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: snapshot read: %w", err)
	}
	if len(data) < len(snapshotMagic)+8+4 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return 0, fmt.Errorf("wal: %s is not a snapshot file", path)
	}
	body := data[len(snapshotMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != wantCRC {
		return 0, fmt.Errorf("wal: snapshot %s is corrupt", path)
	}
	lastLSN := binary.LittleEndian.Uint64(body)
	b := body[8:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("wal: snapshot %s: bad table count", path)
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return 0, fmt.Errorf("wal: snapshot %s: truncated table %d", path, i)
		}
		img := b[n : n+int(l)]
		b = b[n+int(l):]
		name, err := storage.DecodeTableName(img)
		if err != nil {
			return 0, err
		}
		t, ok := lookup(name)
		if !ok {
			return 0, fmt.Errorf("wal: snapshot table %q does not exist in catalog", name)
		}
		if _, err := storage.RestoreTable(t, img); err != nil {
			return 0, err
		}
	}
	return lastLSN, nil
}
