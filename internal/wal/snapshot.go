package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sstore/internal/storage"
)

// Snapshot files persist a transaction-consistent checkpoint of every
// table (§3.1). Because partitions run transactions serially and the
// snapshot is taken between transactions, the image never contains
// uncommitted changes, so recovery needs no undo log — matching the
// paper's description of H-Store checkpoints.
//
// Layout: magic "SSSN" | u64 lastLSN | uvarint tableCount | per-table
// [uvarint len | image] ... | u32 crc32c(everything after magic).

const snapshotMagic = "SSSN"

// WriteSnapshot atomically writes a checkpoint of the given tables,
// recording the LSN of the last command-log record already reflected
// in it. It writes to a temp file and renames, so a crash mid-snapshot
// leaves the previous checkpoint intact.
func WriteSnapshot(path string, lastLSN uint64, tables []*storage.Table) error {
	buf := []byte(snapshotMagic)
	buf = binary.LittleEndian.AppendUint64(buf, lastLSN)
	buf = binary.AppendUvarint(buf, uint64(len(tables)))
	for _, t := range tables {
		img := storage.EncodeTable(nil, t)
		buf = binary.AppendUvarint(buf, uint64(len(img)))
		buf = append(buf, img...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[len(snapshotMagic):], crcTable))

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshot restores a checkpoint into the catalog's existing
// tables (matched by name) and returns the checkpoint's lastLSN.
// A missing file is not an error: it returns lastLSN 0, meaning
// "replay the whole log".
func LoadSnapshot(path string, lookup func(name string) (*storage.Table, bool)) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: snapshot read: %w", err)
	}
	if len(data) < len(snapshotMagic)+8+4 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return 0, fmt.Errorf("wal: %s is not a snapshot file", path)
	}
	body := data[len(snapshotMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != wantCRC {
		return 0, fmt.Errorf("wal: snapshot %s is corrupt", path)
	}
	lastLSN := binary.LittleEndian.Uint64(body)
	b := body[8:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("wal: snapshot %s: bad table count", path)
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return 0, fmt.Errorf("wal: snapshot %s: truncated table %d", path, i)
		}
		img := b[n : n+int(l)]
		b = b[n+int(l):]
		name, err := storage.DecodeTableName(img)
		if err != nil {
			return 0, err
		}
		t, ok := lookup(name)
		if !ok {
			return 0, fmt.Errorf("wal: snapshot table %q does not exist in catalog", name)
		}
		if _, err := storage.RestoreTable(t, img); err != nil {
			return 0, err
		}
	}
	return lastLSN, nil
}

// A multi-partition checkpoint is committed by a manifest: the
// per-partition snapshot files of one checkpoint are written under
// generation names (snapshot.p<N>.g<stamp>) and the manifest records
// the committed generation last, atomically. Recovery loads only the
// generation the manifest names, so a crash between per-partition
// snapshot writes can never mix stamps — without the manifest, a
// torn checkpoint would leave some partitions at the new stamp and
// others at the old one, and a max-stamp replay filter would skip
// records the older partitions still need.

const manifestName = "snapshot.manifest"
const manifestMagic = "SSMF"

// WriteSnapshotManifest atomically and durably commits stamp as the
// snapshot generation in dir.
func WriteSnapshotManifest(dir string, stamp uint64) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%s %d\n", manifestMagic, stamp); err != nil {
		f.Close()
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	return nil
}

// ReadSnapshotManifest returns the committed generation stamp;
// ok=false means no manifest exists (pre-manifest checkpoints, loaded
// from the legacy plain snapshot files).
func ReadSnapshotManifest(dir string) (stamp uint64, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("wal: manifest: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) != 2 || fields[0] != manifestMagic {
		return 0, false, fmt.Errorf("wal: manifest: malformed %q", string(data))
	}
	stamp, perr := strconv.ParseUint(fields[1], 10, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("wal: manifest: %w", perr)
	}
	return stamp, true, nil
}
