package wal

import (
	"bufio"
	"fmt"
	"os"
	"sync"
	"time"
)

// SyncPolicy controls when appended records become durable.
type SyncPolicy uint8

const (
	// SyncEachCommit fsyncs after every append: every commit is
	// individually durable before it is acknowledged. This is the
	// "no group commit" configuration of the paper's Figure 9a.
	SyncEachCommit SyncPolicy = iota
	// SyncGroup batches appends and fsyncs once per group window,
	// releasing all waiting commits together (H-Store's group
	// commit, §3.1).
	SyncGroup
	// SyncNone buffers writes and never fsyncs explicitly (flush on
	// close); used when durability is disabled for throughput
	// experiments ("logging disabled unless otherwise specified",
	// §4).
	SyncNone
)

// Options configures a Logger.
type Options struct {
	// Path is the log file location.
	Path string
	// Policy selects the durability mode.
	Policy SyncPolicy
	// GroupWindow is the flush interval under SyncGroup; it defaults
	// to 2ms, a typical group-commit window.
	GroupWindow time.Duration
}

// Logger is an append-only command log shared by all partitions of an
// engine. Appends are serialized internally; partitions block in
// Append until their record is durable per the sync policy, which is
// exactly the commit-time behavior the recovery experiments measure.
type Logger struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	nextLSN uint64
	opts    Options

	// Group-commit state.
	waiters []chan error
	stop    chan struct{}
	done    chan struct{}

	appends uint64
	syncs   uint64
}

// Open creates or truncates the log file. An existing log should be
// read with ReadAll before opening for writes.
func Open(opts Options) (*Logger, error) {
	if opts.GroupWindow <= 0 {
		opts.GroupWindow = 2 * time.Millisecond
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Logger{
		f:       f,
		w:       bufio.NewWriterSize(f, 1<<16),
		nextLSN: 1,
		opts:    opts,
	}
	if opts.Policy == SyncGroup {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.groupFlusher()
	}
	return l, nil
}

// SetNextLSN positions the LSN counter; used when appending to a log
// that already contains records.
func (l *Logger) SetNextLSN(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextLSN = lsn
}

// Append assigns the record an LSN, writes it, and blocks until it is
// durable per the sync policy. It returns the assigned LSN.
func (l *Logger) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	rec.LSN = l.nextLSN
	l.nextLSN++
	l.appends++
	buf := rec.encode(nil)
	if _, err := l.w.Write(buf); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	switch l.opts.Policy {
	case SyncEachCommit:
		err := l.flushAndSyncLocked()
		l.mu.Unlock()
		return rec.LSN, err
	case SyncNone:
		l.mu.Unlock()
		return rec.LSN, nil
	default: // SyncGroup
		ch := make(chan error, 1)
		l.waiters = append(l.waiters, ch)
		l.mu.Unlock()
		return rec.LSN, <-ch
	}
}

func (l *Logger) flushAndSyncLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	l.syncs++
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// groupFlusher periodically flushes and releases group-commit waiters.
func (l *Logger) groupFlusher() {
	defer close(l.done)
	ticker := time.NewTicker(l.opts.GroupWindow)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.flushGroup()
		case <-l.stop:
			l.flushGroup()
			return
		}
	}
}

func (l *Logger) flushGroup() {
	l.mu.Lock()
	waiters := l.waiters
	l.waiters = nil
	var err error
	if len(waiters) > 0 {
		err = l.flushAndSyncLocked()
	}
	l.mu.Unlock()
	for _, ch := range waiters {
		ch <- err
	}
}

// LastLSN returns the LSN of the most recently appended record (0 when
// none).
func (l *Logger) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Stats reports the number of appended records and fsync calls; the
// Figure 9a experiment compares these across recovery modes.
func (l *Logger) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// Close flushes buffered records and closes the file.
func (l *Logger) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// CompactBefore rewrites the log keeping only records with LSN >
// keepAfter — everything at or below is already reflected in a
// checkpoint and never replays. The caller must hold the engine
// quiesced (no concurrent Appends); the rewrite is atomic
// (write-temp-then-rename) so a crash mid-compaction leaves the old
// log intact.
func (l *Logger) CompactBefore(keepAfter uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: compact flush: %w", err)
	}
	recs, err := ReadAll(l.opts.Path)
	if err != nil {
		return err
	}
	var buf []byte
	for _, r := range recs {
		if r.LSN > keepAfter {
			buf = r.encode(buf)
		}
	}
	tmp := l.opts.Path + ".compact"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("wal: compact write: %w", err)
	}
	if err := os.Rename(tmp, l.opts.Path); err != nil {
		return fmt.Errorf("wal: compact rename: %w", err)
	}
	// Reopen the (renamed-over) file for appends.
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: compact close: %w", err)
	}
	f, err := os.OpenFile(l.opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact reopen: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// ReadAll reads every intact record from a log file, stopping cleanly
// at a torn tail (the expected state after a crash).
func ReadAll(path string) ([]*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	var recs []*Record
	for len(data) > 0 {
		rec, n, err := decodeRecord(data)
		if err != nil {
			break // torn tail
		}
		recs = append(recs, rec)
		data = data[n:]
	}
	return recs, nil
}
