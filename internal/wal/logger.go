package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy controls when appended records become durable.
type SyncPolicy uint8

const (
	// SyncEachCommit fsyncs after every append: every commit is
	// individually durable before it is acknowledged. This is the
	// "no group commit" configuration of the paper's Figure 9a.
	SyncEachCommit SyncPolicy = iota
	// SyncGroup batches appends and fsyncs once per group window,
	// releasing all waiting commits together (H-Store's group
	// commit, §3.1).
	SyncGroup
	// SyncNone buffers writes and never fsyncs explicitly (flush on
	// close); used when durability is disabled for throughput
	// experiments ("logging disabled unless otherwise specified",
	// §4).
	SyncNone
)

// Options configures a Logger.
type Options struct {
	// Path is the log file location.
	Path string
	// Policy selects the durability mode.
	Policy SyncPolicy
	// GroupWindow is the flush interval under SyncGroup; it defaults
	// to 2ms, a typical group-commit window.
	GroupWindow time.Duration
	// Seq, when non-nil, is a sequence counter shared with other
	// loggers (a LogSet): records appended to any of them draw LSNs
	// from one lock-free global commit sequence, so total commit
	// order survives sharding the log. Nil gives the logger a private
	// counter (a standalone, unsharded log).
	Seq *atomic.Uint64
}

// Logger is an append-only command log for one partition (execution
// site). Appends are serialized internally; the partition blocks in
// Append until its record is durable per the sync policy, which is
// exactly the commit-time behavior the recovery experiments measure.
// Loggers of one engine share a global sequence counter through a
// LogSet, so their files merge back into total commit order.
type Logger struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	seq  *atomic.Uint64
	opts Options

	// Group-commit state. The flusher sleeps until kicked by the
	// first waiter of a group, then syncs once the group window
	// (measured from the previous sync) has elapsed — so an idle log
	// never ticks and a waiter arriving after an idle period longer
	// than the window is synced immediately.
	waiters  []chan error
	kick     chan struct{}
	lastSync time.Time
	stop     chan struct{}
	done     chan struct{}

	appends uint64
	syncs   uint64
}

// Open creates or appends to the log file. An existing log should be
// read with ReadAll before opening for writes.
func Open(opts Options) (*Logger, error) {
	if opts.GroupWindow <= 0 {
		opts.GroupWindow = 2 * time.Millisecond
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	seq := opts.Seq
	if seq == nil {
		seq = new(atomic.Uint64)
	}
	l := &Logger{
		f:        f,
		w:        bufio.NewWriterSize(f, 1<<16),
		seq:      seq,
		opts:     opts,
		lastSync: time.Now(),
	}
	if opts.Policy == SyncGroup {
		l.kick = make(chan struct{}, 1)
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.groupFlusher()
	}
	return l, nil
}

// Append assigns the record the next sequence number, writes it, and
// blocks until it is durable per the sync policy. It returns the
// assigned LSN.
func (l *Logger) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	// The stamp is lock-free with respect to the other partitions'
	// logs: only this logger's own mutex is held, never a cross-log
	// lock. Taking it under the local mutex keeps LSNs monotonic
	// within the file, which the merge reader relies on.
	rec.LSN = l.seq.Add(1)
	l.appends++
	buf := rec.encode(nil)
	if _, err := l.w.Write(buf); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	switch l.opts.Policy {
	case SyncEachCommit:
		err := l.flushAndSyncLocked()
		l.mu.Unlock()
		return rec.LSN, err
	case SyncNone:
		l.mu.Unlock()
		return rec.LSN, nil
	default: // SyncGroup
		ch := make(chan error, 1)
		l.waiters = append(l.waiters, ch)
		first := len(l.waiters) == 1
		l.mu.Unlock()
		if first {
			select {
			case l.kick <- struct{}{}:
			default:
			}
		}
		return rec.LSN, <-ch
	}
}

func (l *Logger) flushAndSyncLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	l.syncs++
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	//lint:allow replaydet -- group-commit pacing stamp; affects flush batching, never logged state
	l.lastSync = time.Now()
	return nil
}

// groupFlusher releases group-commit waiters. It is kicked by the
// first waiter of each group and syncs once the group window has
// elapsed since the previous sync — immediately, when the log has been
// idle past the window, rather than making every group sleep the full
// window.
func (l *Logger) groupFlusher() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			l.flushGroup()
			return
		case <-l.kick:
			l.mu.Lock()
			wait := l.opts.GroupWindow - time.Since(l.lastSync)
			l.mu.Unlock()
			if wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-l.stop:
					timer.Stop()
					l.flushGroup()
					return
				}
			}
			l.flushGroup()
		}
	}
}

func (l *Logger) flushGroup() {
	l.mu.Lock()
	waiters := l.waiters
	l.waiters = nil
	var err error
	if len(waiters) > 0 {
		err = l.flushAndSyncLocked()
	}
	l.mu.Unlock()
	for _, ch := range waiters {
		ch <- err
	}
}

// Stats reports the number of appended records and fsync calls; the
// Figure 9a experiment compares these across recovery modes.
func (l *Logger) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// Close flushes buffered records and closes the file.
func (l *Logger) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// CompactBefore rewrites the log keeping only records with LSN >
// keepAfter — everything at or below is already reflected in a
// checkpoint and never replays. The caller must hold the engine
// quiesced (no concurrent Appends); the rewrite streams record by
// record and is atomic (write-temp-then-rename), so a crash
// mid-compaction leaves the old log intact.
func (l *Logger) CompactBefore(keepAfter uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: compact flush: %w", err)
	}
	if _, err := compactFile(l.opts.Path, keepAfter); err != nil {
		return err
	}
	// Reopen the (renamed-over) file for appends.
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: compact close: %w", err)
	}
	f, err := os.OpenFile(l.opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact reopen: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// compactFile rewrites one log file keeping only records with LSN >
// keepAfter, streaming record by record. The rewrite is atomic and
// durable (write-temp, sync, rename) — the kept records are committed
// transactions not covered by any checkpoint, so a crash around the
// rename must never lose them. It returns how many records were kept.
func compactFile(path string, keepAfter uint64) (int, error) {
	r, err := OpenReader(path)
	if err != nil {
		return 0, fmt.Errorf("wal: compact read: %w", err)
	}
	tmp := path + ".compact"
	out, err := os.Create(tmp)
	if err != nil {
		r.Close()
		return 0, fmt.Errorf("wal: compact write: %w", err)
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	var scratch []byte
	kept := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			r.Close()
			out.Close()
			return 0, fmt.Errorf("wal: compact read: %w", err)
		}
		if rec.LSN <= keepAfter {
			continue
		}
		scratch = rec.encode(scratch[:0])
		if _, err := bw.Write(scratch); err != nil {
			r.Close()
			out.Close()
			return 0, fmt.Errorf("wal: compact write: %w", err)
		}
		kept++
	}
	r.Close()
	if err := bw.Flush(); err != nil {
		out.Close()
		return 0, fmt.Errorf("wal: compact flush: %w", err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return 0, fmt.Errorf("wal: compact sync: %w", err)
	}
	if err := out.Close(); err != nil {
		return 0, fmt.Errorf("wal: compact close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("wal: compact rename: %w", err)
	}
	return kept, nil
}

// Reader streams records out of a log file one frame at a time, so
// replay and compaction never need a file-sized allocation. A torn or
// corrupt tail (the expected state after a crash) reads as a clean
// end-of-log.
type Reader struct {
	f         *os.File
	br        *bufio.Reader
	remaining int64
	lenbuf    [4]byte
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// OpenReader opens a log file for streaming record reads. The caller
// should treat os.IsNotExist errors as an empty log.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Reader{f: f, br: bufio.NewReaderSize(f, 1<<16), remaining: st.Size()}, nil
}

// Next returns the next intact record, or io.EOF at the end of the log
// — including a torn tail, which ends the log cleanly. A genuine read
// failure (an I/O error rather than a short or corrupt frame) is
// reported as an error, not as end-of-log, so replay never silently
// truncates on a failing disk.
func (r *Reader) Next() (*Record, error) {
	if r.remaining < 4+1+4 { // too short for any frame: clean end or torn tail
		r.remaining = 0
		return nil, io.EOF
	}
	if _, err := io.ReadFull(r.br, r.lenbuf[:]); err != nil {
		r.remaining = 0
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	plen := int64(binary.LittleEndian.Uint32(r.lenbuf[:]))
	if plen <= 0 || plen+8 > r.remaining {
		// Garbage length or a frame that claims more bytes than the
		// file holds: torn tail.
		r.remaining = 0
		return nil, io.EOF
	}
	buf := make([]byte, plen+4)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		r.remaining = 0
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	payload := buf[:plen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[plen:]) {
		r.remaining = 0
		return nil, io.EOF
	}
	rec, err := decodePayload(payload)
	if err != nil {
		r.remaining = 0
		return nil, io.EOF
	}
	r.remaining -= 4 + plen + 4
	return rec, nil
}

// ReadAll streams every intact record from a log file, stopping
// cleanly at a torn tail (the expected state after a crash).
func ReadAll(path string) ([]*Record, error) {
	r, err := OpenReader(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	defer r.Close()
	var recs []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("wal: read: %w", err)
		}
		recs = append(recs, rec)
	}
}
