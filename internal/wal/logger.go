package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy controls when appended records become durable.
type SyncPolicy uint8

const (
	// SyncEachCommit fsyncs after every append: every commit is
	// individually durable before it is acknowledged. This is the
	// "no group commit" configuration of the paper's Figure 9a.
	SyncEachCommit SyncPolicy = iota
	// SyncGroup batches appends and fsyncs once per group window,
	// releasing all waiting commits together (H-Store's group
	// commit, §3.1).
	SyncGroup
	// SyncNone buffers writes and never fsyncs explicitly (flush on
	// close); used when durability is disabled for throughput
	// experiments ("logging disabled unless otherwise specified",
	// §4).
	SyncNone
)

// Options configures a Logger.
type Options struct {
	// Path is the log file location.
	Path string
	// Policy selects the durability mode.
	Policy SyncPolicy
	// GroupWindow is the flush interval under SyncGroup; it defaults
	// to 2ms, a typical group-commit window.
	GroupWindow time.Duration
	// Seq, when non-nil, is a sequence counter shared with other
	// loggers (a LogSet): records appended to any of them draw LSNs
	// from one lock-free global commit sequence, so total commit
	// order survives sharding the log. Nil gives the logger a private
	// counter (a standalone, unsharded log).
	Seq *atomic.Uint64
	// SegmentBytes, when positive, rotates the log into bounded
	// segments: once the active segment reaches this many bytes it is
	// sealed — flushed, synced, closed — and appends move to the next
	// segment file (<Path> is segment 0, <Path>.s<k> thereafter).
	// Sealed segments are immutable, so CompactBefore ages fully
	// checkpointed ones out by deleting whole files instead of
	// rewriting, and replay treats any malformed record in a sealed
	// segment as corruption — a torn tail is legal only in the final
	// (active) segment. Zero keeps the log in one file.
	SegmentBytes int64
}

// segPath names segment k of a log: the base path itself for segment
// 0, <base>.s<k> for every later segment.
func segPath(base string, k int) string {
	if k == 0 {
		return base
	}
	return base + ".s" + strconv.Itoa(k)
}

// segFile is one existing on-disk segment of a log.
type segFile struct {
	k    int
	path string
}

// logSegments lists the log's existing segment files in index order:
// the base file (segment 0) if present, then every <base>.s<k>.
// Aged-out segments leave gaps, which is fine — segment indexes only
// ever grow, so the surviving files still sort into LSN order.
func logSegments(base string) ([]segFile, error) {
	var segs []segFile
	if st, err := os.Stat(base); err == nil && st.Mode().IsRegular() {
		segs = append(segs, segFile{k: 0, path: base})
	}
	dir, name := filepath.Split(base)
	if dir == "" {
		dir = "."
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return segs, nil
		}
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	prefix := name + ".s"
	for _, ent := range ents {
		rest, ok := strings.CutPrefix(ent.Name(), prefix)
		if !ok {
			continue
		}
		k, err := strconv.Atoi(rest)
		if err != nil || k <= 0 {
			continue
		}
		segs = append(segs, segFile{k: k, path: filepath.Join(dir, ent.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].k < segs[j].k })
	return segs, nil
}

// Logger is an append-only command log for one partition (execution
// site). Appends are serialized internally; the partition blocks in
// Append until its record is durable per the sync policy, which is
// exactly the commit-time behavior the recovery experiments measure.
// Loggers of one engine share a global sequence counter through a
// LogSet, so their files merge back into total commit order.
type Logger struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	seq  *atomic.Uint64
	opts Options

	// Active-segment state: segIdx is the index of the file currently
	// appended to (always the highest existing index), segSize its
	// byte length. Rotation is checked after every append.
	segIdx  int
	segSize int64

	// enc is the grow-only encode scratch: records frame themselves
	// into it under mu, and the bytes are handed to the buffered writer
	// before the mutex releases, so one buffer serves every append.
	enc []byte

	// Group-commit state. The flusher sleeps until kicked by the
	// first waiter of a group, then syncs once the group window
	// (measured from the previous sync) has elapsed — so an idle log
	// never ticks and a waiter arriving after an idle period longer
	// than the window is synced immediately.
	waiters  []chan error
	kick     chan struct{}
	lastSync time.Time
	stop     chan struct{}
	done     chan struct{}

	appends uint64
	syncs   uint64
	// bytes counts appended bytes since open, monotonically (rotation
	// and compaction never rewind it); LogSet.Bytes sums it across
	// shards to drive the automatic-checkpoint policy.
	bytes uint64
}

// Open creates or appends to the log file. An existing log should be
// read with ReadAll before opening for writes.
func Open(opts Options) (*Logger, error) {
	if opts.GroupWindow <= 0 {
		opts.GroupWindow = 2 * time.Millisecond
	}
	// Appends always continue in the highest existing segment — even
	// when rotation is now off — so segment order keeps matching LSN
	// order for readers.
	segIdx := 0
	if segs, err := logSegments(opts.Path); err != nil {
		return nil, err
	} else if len(segs) > 0 {
		segIdx = segs[len(segs)-1].k
	}
	f, err := os.OpenFile(segPath(opts.Path, segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	seq := opts.Seq
	if seq == nil {
		seq = new(atomic.Uint64)
	}
	l := &Logger{
		f:        f,
		w:        bufio.NewWriterSize(f, 1<<16),
		seq:      seq,
		opts:     opts,
		segIdx:   segIdx,
		segSize:  st.Size(),
		lastSync: time.Now(),
	}
	if opts.Policy == SyncGroup {
		l.kick = make(chan struct{}, 1)
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.groupFlusher()
	}
	return l, nil
}

// Append assigns the record the next sequence number, writes it, and
// blocks until it is durable per the sync policy. It returns the
// assigned LSN.
func (l *Logger) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	// The stamp is lock-free with respect to the other partitions'
	// logs: only this logger's own mutex is held, never a cross-log
	// lock. Taking it under the local mutex keeps LSNs monotonic
	// within the file, which the merge reader relies on.
	rec.LSN = l.seq.Add(1)
	l.appends++
	buf := rec.encode(l.enc[:0])
	l.enc = buf
	if _, err := l.w.Write(buf); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += int64(len(buf))
	l.bytes += uint64(len(buf))
	if l.opts.SegmentBytes > 0 && l.segSize >= l.opts.SegmentBytes {
		// Seal before acknowledging: the seal syncs the segment, so the
		// record is durable regardless of the policy branch below.
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	switch l.opts.Policy {
	case SyncEachCommit:
		err := l.flushAndSyncLocked()
		l.mu.Unlock()
		return rec.LSN, err
	case SyncNone:
		l.mu.Unlock()
		return rec.LSN, nil
	default: // SyncGroup
		ch := make(chan error, 1)
		l.waiters = append(l.waiters, ch)
		first := len(l.waiters) == 1
		l.mu.Unlock()
		if first {
			select {
			case l.kick <- struct{}{}:
			default:
			}
		}
		return rec.LSN, <-ch
	}
}

func (l *Logger) flushAndSyncLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	l.syncs++
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	//lint:allow replaydet -- group-commit pacing stamp; affects flush batching, never logged state
	l.lastSync = time.Now()
	return nil
}

// rotateLocked seals the active segment — flush, sync, close, so a
// sealed file is always complete and durable — and opens the next one.
// Readers treat sealed segments strictly: after this point a malformed
// record in the old file is corruption, never a tolerable torn tail.
func (l *Logger) rotateLocked() error {
	if err := l.flushAndSyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	l.segIdx++
	f, err := os.OpenFile(segPath(l.opts.Path, l.segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.f = f
	l.w.Reset(f)
	l.segSize = 0
	return nil
}

// groupFlusher releases group-commit waiters. It is kicked by the
// first waiter of each group and syncs once the group window has
// elapsed since the previous sync — immediately, when the log has been
// idle past the window, rather than making every group sleep the full
// window.
func (l *Logger) groupFlusher() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			l.flushGroup()
			return
		case <-l.kick:
			l.mu.Lock()
			wait := l.opts.GroupWindow - time.Since(l.lastSync)
			l.mu.Unlock()
			if wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-l.stop:
					timer.Stop()
					l.flushGroup()
					return
				}
			}
			l.flushGroup()
		}
	}
}

func (l *Logger) flushGroup() {
	l.mu.Lock()
	waiters := l.waiters
	l.waiters = nil
	var err error
	if len(waiters) > 0 {
		err = l.flushAndSyncLocked()
	}
	l.mu.Unlock()
	for _, ch := range waiters {
		ch <- err
	}
}

// Stats reports the number of appended records and fsync calls; the
// Figure 9a experiment compares these across recovery modes.
func (l *Logger) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// Bytes reports the bytes appended since open (monotonic).
func (l *Logger) Bytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Close flushes buffered records and closes the file.
func (l *Logger) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// CompactBefore discards records with LSN <= keepAfter — everything at
// or below is already reflected in a checkpoint and never replays. The
// caller must hold the engine quiesced (no concurrent Appends).
//
// Sealed segments age out without a rewrite: one fully covered by the
// stamp is deleted whole (O(1) per segment — this is how a segmented
// log stays bounded), one straddling the stamp is rewritten in place,
// and one entirely above it is untouched. The active segment is always
// rewritten; each rewrite streams record by record and is atomic
// (write-temp-then-rename), so a crash mid-compaction leaves the old
// log intact.
func (l *Logger) CompactBefore(keepAfter uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: compact flush: %w", err)
	}
	segs, err := logSegments(l.opts.Path)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.k >= l.segIdx {
			continue // the active segment is handled below
		}
		first, last, err := segmentLSNRange(s.path)
		if err != nil {
			return err
		}
		switch {
		case last <= keepAfter:
			// Fully covered (or empty): drop the whole file.
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: drop segment: %w", err)
			}
		case first <= keepAfter:
			if _, err := compactFile(s.path, keepAfter, true); err != nil {
				return err
			}
		}
	}
	active := segPath(l.opts.Path, l.segIdx)
	if _, err := compactFile(active, keepAfter, false); err != nil {
		return err
	}
	// Reopen the (renamed-over) active file for appends.
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: compact close: %w", err)
	}
	f, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact reopen: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: compact reopen: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.segSize = st.Size()
	return nil
}

// segmentLSNRange reports the first and last LSN in a sealed segment
// (both zero when it is empty). The read is strict: a sealed segment
// with a malformed record is corruption, and compaction must surface
// it rather than quietly dropping the file's tail.
func segmentLSNRange(path string) (first, last uint64, err error) {
	r, err := openSegment(path, true)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: compact read: %w", err)
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return first, last, nil
		}
		if err != nil {
			return first, last, err
		}
		if first == 0 {
			first = rec.LSN
		}
		last = rec.LSN
	}
}

// compactFile rewrites one log file keeping only records with LSN >
// keepAfter, streaming record by record. The rewrite is atomic and
// durable (write-temp, sync, rename) — the kept records are committed
// transactions not covered by any checkpoint, so a crash around the
// rename must never lose them. It returns how many records were kept.
// sealed selects the strict read mode: rewriting a sealed segment must
// fail on a malformed record instead of truncating at it.
func compactFile(path string, keepAfter uint64, sealed bool) (int, error) {
	r, err := openSegment(path, sealed)
	if err != nil {
		return 0, fmt.Errorf("wal: compact read: %w", err)
	}
	tmp := path + ".compact"
	out, err := os.Create(tmp)
	if err != nil {
		r.Close()
		return 0, fmt.Errorf("wal: compact write: %w", err)
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	var scratch []byte
	kept := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			r.Close()
			out.Close()
			return 0, fmt.Errorf("wal: compact read: %w", err)
		}
		if rec.LSN <= keepAfter {
			continue
		}
		scratch = rec.encode(scratch[:0])
		if _, err := bw.Write(scratch); err != nil {
			r.Close()
			out.Close()
			return 0, fmt.Errorf("wal: compact write: %w", err)
		}
		kept++
	}
	r.Close()
	if err := bw.Flush(); err != nil {
		out.Close()
		return 0, fmt.Errorf("wal: compact flush: %w", err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return 0, fmt.Errorf("wal: compact sync: %w", err)
	}
	if err := out.Close(); err != nil {
		return 0, fmt.Errorf("wal: compact close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("wal: compact rename: %w", err)
	}
	return kept, nil
}

// Reader streams records out of a log one frame at a time, so replay
// and compaction never need a file-sized allocation. A segmented log
// reads as one stream: the reader chains through the base file and
// every <base>.s<k> in index order. All segments but the last are
// sealed, where a malformed record is reported as corruption; only the
// final (active) segment tolerates a torn or corrupt tail — the
// expected state after a crash — as a clean end-of-log.
type Reader struct {
	f         *os.File
	br        *bufio.Reader
	remaining int64
	lenbuf    [4]byte
	// scratch is the grow-only frame buffer: each frame overwrites the
	// last (decodePayload copies everything it keeps), so a replay
	// stops allocating per record once scratch reaches the log's
	// largest frame.
	scratch []byte
	path    string
	sealed  bool
	pending []string
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// openSegment opens a single segment file, without chaining. sealed
// picks the strict read mode.
func openSegment(path string, sealed bool) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Reader{
		f:         f,
		br:        bufio.NewReaderSize(f, 1<<16),
		remaining: st.Size(),
		path:      path,
		sealed:    sealed,
	}, nil
}

// OpenReader opens a log for streaming record reads, chaining the
// base file and any <base>.s<k> segments into one stream. The caller
// should treat os.IsNotExist errors as an empty log.
func OpenReader(path string) (*Reader, error) {
	segs, err := logSegments(path)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		// Preserve the not-exist contract of a plain open.
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		f.Close()
		return nil, fmt.Errorf("wal: open reader: %s is not a log file", path)
	}
	r, err := openSegment(segs[0].path, len(segs) > 1)
	if err != nil {
		return nil, err
	}
	for _, s := range segs[1:] {
		r.pending = append(r.pending, s.path)
	}
	return r, nil
}

// advance moves the reader to the next pending segment.
func (r *Reader) advance() error {
	r.f.Close()
	path := r.pending[0]
	r.pending = r.pending[1:]
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: read segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: read segment: %w", err)
	}
	r.f = f
	r.br.Reset(f)
	r.remaining = st.Size()
	r.path = path
	r.sealed = len(r.pending) > 0
	return nil
}

// corruptf reports a malformed record in a sealed segment — replay
// must fail loudly here, because unlike the active tail the data was
// known complete when the segment sealed.
func (r *Reader) corruptf(what string) error {
	return fmt.Errorf("wal: sealed segment %s: corrupt record (%s)", r.path, what)
}

// readFrame reads and CRC-verifies the next frame of the current
// segment into the grow-only scratch buffer, returning its payload.
// io.EOF means the current file is exhausted — cleanly, or at a
// tolerated torn tail when the segment is not sealed.
//
//sstore:nomalloc
func (r *Reader) readFrame() ([]byte, error) {
	if r.remaining == 0 {
		return nil, io.EOF
	}
	if r.remaining < 4+1+4 { // too short for any frame
		r.remaining = 0
		if r.sealed {
			//lint:allow hotalloc -- corruption report; terminal
			return nil, r.corruptf("trailing bytes shorter than a frame")
		}
		return nil, io.EOF // torn tail
	}
	if _, err := io.ReadFull(r.br, r.lenbuf[:]); err != nil {
		r.remaining = 0
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if r.sealed {
				//lint:allow hotalloc -- corruption report; terminal
				return nil, r.corruptf("short read")
			}
			return nil, io.EOF
		}
		//lint:allow hotalloc -- I/O failure report; terminal
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	plen := int64(binary.LittleEndian.Uint32(r.lenbuf[:]))
	if plen <= 0 || plen+8 > r.remaining {
		// Garbage length or a frame claiming more bytes than the file
		// holds.
		r.remaining = 0
		if r.sealed {
			//lint:allow hotalloc -- corruption report; terminal
			return nil, r.corruptf("invalid frame length")
		}
		return nil, io.EOF
	}
	if int64(cap(r.scratch)) < plen+4 {
		//lint:allow hotalloc -- grow-only scratch; amortized zero across a replay
		r.scratch = make([]byte, plen+4)
	}
	buf := r.scratch[:plen+4]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		r.remaining = 0
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if r.sealed {
				//lint:allow hotalloc -- corruption report; terminal
				return nil, r.corruptf("short read")
			}
			return nil, io.EOF
		}
		//lint:allow hotalloc -- I/O failure report; terminal
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	payload := buf[:plen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[plen:]) {
		r.remaining = 0
		if r.sealed {
			//lint:allow hotalloc -- corruption report; terminal
			return nil, r.corruptf("CRC mismatch")
		}
		return nil, io.EOF
	}
	r.remaining -= 4 + plen + 4
	return payload, nil
}

// Next returns the next intact record, or io.EOF at the end of the log
// — including a torn tail in the final segment, which ends the log
// cleanly. A malformed record in a sealed segment and a genuine I/O
// failure are reported as errors, not end-of-log, so replay never
// silently truncates on a failing disk or a corrupted sealed file.
func (r *Reader) Next() (*Record, error) {
	for {
		payload, err := r.readFrame()
		if err == io.EOF {
			if len(r.pending) == 0 {
				return nil, io.EOF
			}
			if err := r.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		rec, err := decodePayload(payload)
		if err != nil {
			if r.sealed {
				return nil, r.corruptf(err.Error())
			}
			r.remaining = 0
			return nil, io.EOF
		}
		return rec, nil
	}
}

// ReadAll streams every intact record from a log file, stopping
// cleanly at a torn tail (the expected state after a crash).
func ReadAll(path string) ([]*Record, error) {
	r, err := OpenReader(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	defer r.Close()
	var recs []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("wal: read: %w", err)
		}
		recs = append(recs, rec)
	}
}
