package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// LogSet shards the command log one file per partition, the way
// H-Store logs per execution site (§3.1): each partition appends to
// its own Logger — its own file, its own mutex, its own group-commit
// flusher — so durability-on configurations scale with partitions
// instead of serializing on one fsync queue. Every record is stamped
// from one lock-free global commit sequence, so the per-partition
// files merge back into total commit order for strong recovery.
type LogSet struct {
	base    string
	loggers []*Logger
	// byPid maps a global partition ID to its logger; on a cluster
	// node the set covers only the node's own partitions (the sparse
	// case), so durability and recovery stay node-local.
	byPid map[int]*Logger
	seq   atomic.Uint64
}

// SetOptions configures a LogSet.
type SetOptions struct {
	// Path is the log location: an existing directory (partition logs
	// become <dir>/cmd-p<N>.log) or a file-name prefix (partition
	// logs become <path>.p<N>). A legacy unsharded log at exactly
	// <path> is still read by the set readers below, so pre-shard
	// logs remain replayable.
	Path string
	// Partitions is the number of per-partition logs.
	Partitions int
	// Policy selects the durability mode, per Logger.
	Policy SyncPolicy
	// GroupWindow is the flush interval under SyncGroup.
	GroupWindow time.Duration
	// SegmentBytes rotates each partition's log into bounded segments,
	// per Logger.Options: sealed segments age out whole during
	// compaction instead of being rewritten. Zero keeps one file per
	// partition.
	SegmentBytes int64
	// PartitionIDs, when non-nil, opens logs for exactly these global
	// partition IDs instead of the dense 0..Partitions-1 range: a
	// cluster node logs only the partitions it owns, under their
	// global IDs, so shard files stay addressable cluster-wide while
	// each node's recovery replays only local state.
	PartitionIDs []int
}

// PartitionPath maps (base, partition) to the partition's log file:
// under a directory base the file is <base>/cmd-p<N>.log, under a
// prefix base it is <base>.p<N>.
func PartitionPath(base string, pid int) string {
	if st, err := os.Stat(base); err == nil && st.IsDir() {
		return filepath.Join(base, fmt.Sprintf("cmd-p%d.log", pid))
	}
	return fmt.Sprintf("%s.p%d", base, pid)
}

// OpenSet opens one Logger per partition under the base path, all
// drawing LSNs from the set's shared commit sequence.
func OpenSet(opts SetOptions) (*LogSet, error) {
	pids := opts.PartitionIDs
	if pids == nil {
		if opts.Partitions <= 0 {
			opts.Partitions = 1
		}
		pids = make([]int, opts.Partitions)
		for i := range pids {
			pids[i] = i
		}
	}
	s := &LogSet{base: opts.Path, byPid: make(map[int]*Logger, len(pids))}
	for _, pid := range pids {
		l, err := Open(Options{
			Path:         PartitionPath(opts.Path, pid),
			Policy:       opts.Policy,
			GroupWindow:  opts.GroupWindow,
			Seq:          &s.seq,
			SegmentBytes: opts.SegmentBytes,
		})
		if err != nil {
			//lint:allow errdrop -- best-effort cleanup; the open error is what the caller needs
			s.Close()
			return nil, err
		}
		s.loggers = append(s.loggers, l)
		s.byPid[pid] = l
	}
	return s, nil
}

// Partitions returns the number of per-partition logs.
func (s *LogSet) Partitions() int { return len(s.loggers) }

// Append stamps the record with the next global sequence number and
// appends it to the partition's log, blocking until durable per the
// sync policy. Appends to different partitions proceed in parallel —
// no shared lock, no shared fsync queue.
func (s *LogSet) Append(pid int, rec *Record) (uint64, error) {
	l, ok := s.byPid[pid]
	if !ok {
		return 0, fmt.Errorf("wal: no log for partition %d", pid)
	}
	return l.Append(rec)
}

// LastSeq returns the most recently assigned global sequence number
// (0 when none).
func (s *LogSet) LastSeq() uint64 { return s.seq.Load() }

// SetNextSeq positions the global sequence counter; used after replay
// so new commits continue past everything already logged.
func (s *LogSet) SetNextSeq(seq uint64) { s.seq.Store(seq - 1) }

// Stats sums appended records and fsync calls across all partition
// logs.
func (s *LogSet) Stats() (appends, syncs uint64) {
	for _, l := range s.loggers {
		a, y := l.Stats()
		appends += a
		syncs += y
	}
	return appends, syncs
}

// Bytes sums the bytes appended across all partition logs since open —
// a monotonic counter (compaction does not rewind it) that drives the
// automatic-checkpoint policy: checkpoint once the log has grown by a
// configured amount since the last one.
func (s *LogSet) Bytes() uint64 {
	var total uint64
	for _, l := range s.loggers {
		total += l.Bytes()
	}
	return total
}

// CompactBefore truncates every partition's log against the snapshot
// sequence stamp: records at or below keepAfter are reflected in that
// partition's checkpoint and never replay. Each log is rewritten
// independently and atomically; the caller must hold the engine
// quiesced.
func (s *LogSet) CompactBefore(keepAfter uint64) error {
	for _, l := range s.loggers {
		if err := l.CompactBefore(keepAfter); err != nil {
			return err
		}
	}
	return compactLegacy(s.base, keepAfter)
}

// compactLegacy prunes a pre-shard unsharded log sitting at exactly
// the base path: the set never writes to it, but its records are
// re-read (and filtered) by every recovery until a checkpoint renders
// them obsolete. Fully-obsolete legacy logs are deleted outright.
func compactLegacy(base string, keepAfter uint64) error {
	st, err := os.Stat(base)
	if err != nil || !st.Mode().IsRegular() {
		return nil // no legacy log (or base is the shard directory)
	}
	kept, err := compactFile(base, keepAfter, false)
	if err != nil {
		return err
	}
	if kept == 0 {
		// Fully obsolete: the stamp covers every legacy record.
		if err := os.Remove(base); err != nil {
			return fmt.Errorf("wal: compact legacy: %w", err)
		}
	}
	return nil
}

// Close closes every partition's log, flushing buffered records.
func (s *LogSet) Close() error {
	var first error
	for _, l := range s.loggers {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shardSeg splits a shard file suffix into its partition id, accepting
// both a plain shard ("3") and a rotation segment of one ("3.s2" —
// segment files count as evidence the shard exists even when its base
// file aged out during compaction). ok is false for unrelated names.
func shardSeg(rest string) (pid int, ok bool) {
	if pid, err := strconv.Atoi(rest); err == nil {
		return pid, true
	}
	i := strings.Index(rest, ".s")
	if i <= 0 {
		return 0, false
	}
	pid, err := strconv.Atoi(rest[:i])
	if err != nil {
		return 0, false
	}
	k, err := strconv.Atoi(rest[i+2:])
	if err != nil || k <= 0 {
		return 0, false
	}
	return pid, true
}

// SetPaths lists the per-shard log base paths under base in partition
// order: a legacy unsharded log at exactly base (if present) first,
// then every cmd-p<N>.log / <base>.p<N> shard. A shard rotated into
// segments is recognized by its <shard>.s<k> files and listed once, by
// its base path — OpenReader chains the segments back into one stream,
// even when the base file itself aged out. Shards that were never
// created are simply absent. Names are matched literally (directory
// listing plus prefix check), so a base containing glob metacharacters
// lists its shards correctly.
func SetPaths(base string) ([]string, error) {
	var paths []string
	pids := make(map[int]bool)
	shardBase := func(pid int) string { return fmt.Sprintf("%s.p%d", base, pid) }
	if st, err := os.Stat(base); err == nil && st.IsDir() {
		ents, err := os.ReadDir(base)
		if err != nil {
			return nil, fmt.Errorf("wal: list logs: %w", err)
		}
		for _, ent := range ents {
			rest, ok := strings.CutPrefix(ent.Name(), "cmd-p")
			if !ok {
				continue
			}
			// rest is "<pid>.log" or "<pid>.log.s<k>".
			if plain, ok := strings.CutSuffix(rest, ".log"); ok {
				if pid, err := strconv.Atoi(plain); err == nil {
					pids[pid] = true
				}
				continue
			}
			i := strings.Index(rest, ".log.s")
			if i <= 0 {
				continue
			}
			pid, err1 := strconv.Atoi(rest[:i])
			k, err2 := strconv.Atoi(rest[i+len(".log.s"):])
			if err1 == nil && err2 == nil && k > 0 {
				pids[pid] = true
			}
		}
		shardBase = func(pid int) string {
			return filepath.Join(base, fmt.Sprintf("cmd-p%d.log", pid))
		}
	} else {
		legacy := err == nil && st.Mode().IsRegular()
		ents, err := os.ReadDir(filepath.Dir(base))
		if err != nil {
			if os.IsNotExist(err) {
				if legacy {
					paths = append(paths, base)
				}
				return paths, nil
			}
			return nil, fmt.Errorf("wal: list logs: %w", err)
		}
		name := filepath.Base(base)
		for _, ent := range ents {
			// A rotation segment of the legacy unsharded log.
			if rest, ok := strings.CutPrefix(ent.Name(), name+".s"); ok {
				if k, err := strconv.Atoi(rest); err == nil && k > 0 {
					legacy = true
				}
				continue
			}
			rest, ok := strings.CutPrefix(ent.Name(), name+".p")
			if !ok {
				continue
			}
			if pid, ok := shardSeg(rest); ok {
				pids[pid] = true
			}
		}
		if legacy {
			paths = append(paths, base)
		}
	}
	order := make([]int, 0, len(pids))
	for pid := range pids {
		order = append(order, pid)
	}
	sort.Ints(order)
	for _, pid := range order {
		paths = append(paths, shardBase(pid))
	}
	return paths, nil
}

// SetReader k-way merge-streams every log under base by global
// sequence number, reconstructing total commit order across
// partitions while holding only one record per shard in memory.
// Strong recovery replays this merged stream.
type SetReader struct {
	readers []*Reader
	heads   []*Record
	err     error
}

// OpenSetReader opens every log under base for a merged streaming
// read. Empty and absent logs are skipped.
func OpenSetReader(base string) (*SetReader, error) {
	paths, err := SetPaths(base)
	if err != nil {
		return nil, err
	}
	s := &SetReader{}
	for _, p := range paths {
		r, err := OpenReader(p)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			s.Close()
			return nil, fmt.Errorf("wal: read: %w", err)
		}
		rec, rerr := r.Next()
		if rerr == io.EOF {
			r.Close() // empty log (or torn from the first frame)
			continue
		}
		if rerr != nil {
			r.Close()
			s.Close()
			return nil, rerr
		}
		s.readers = append(s.readers, r)
		s.heads = append(s.heads, rec)
	}
	return s, nil
}

// Next returns the record with the lowest sequence number across all
// shards, or io.EOF when every shard is exhausted. A genuine read
// failure on any shard is reported (after the records already merged
// are delivered) rather than read as end-of-log, so a failing disk
// never silently truncates the merged stream.
func (s *SetReader) Next() (*Record, error) {
	best := -1
	for i, h := range s.heads {
		if h == nil {
			continue
		}
		if best < 0 || h.LSN < s.heads[best].LSN {
			best = i
		}
	}
	if best < 0 {
		if s.err != nil {
			return nil, s.err
		}
		return nil, io.EOF
	}
	rec := s.heads[best]
	nxt, err := s.readers[best].Next()
	if err != nil {
		if err != io.EOF && s.err == nil {
			s.err = err
		}
		s.heads[best] = nil
		s.readers[best].Close()
		s.readers[best] = nil
	} else {
		s.heads[best] = nxt
	}
	return rec, nil
}

// Close releases any shards not yet exhausted.
func (s *SetReader) Close() error {
	for i, r := range s.readers {
		if r != nil {
			r.Close()
			s.readers[i] = nil
		}
	}
	return nil
}

// ReadSetMerged reads every log under base into memory in merged
// global-sequence order; replay paths should prefer streaming with
// OpenSetReader.
func ReadSetMerged(base string) ([]*Record, error) {
	r, err := OpenSetReader(base)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var recs []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}
