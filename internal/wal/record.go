// Package wal implements the durability substrate the paper inherits
// from H-Store (§3.1) and extends for streaming (§3.2.5): a command log
// that records committed stored-procedure invocations (name plus input
// parameters, not data pages), with optional group commit, plus
// snapshot checkpoint files. The log is sharded one file per partition
// (LogSet): each execution site logs to its own file with its own
// group-commit flusher, and a shared lock-free commit sequence stamps
// every record so the shards merge back into total commit order.
//
// The streaming recovery modes differ only in *which* transactions get
// logged: strong recovery logs every TE, weak recovery logs border TEs
// only (upstream backup). That choice lives in the recovery package;
// the log itself just persists what it is given.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"sstore/internal/types"
)

// RecordKind classifies logged transactions for recovery replay.
type RecordKind uint8

const (
	// KindOLTP is an ordinary client-invoked transaction.
	KindOLTP RecordKind = iota
	// KindBorder is a streaming TE that ingests a batch from outside
	// the system (§2.1).
	KindBorder
	// KindInterior is a streaming TE triggered by an upstream TE.
	// Interior records exist only under strong recovery.
	KindInterior
	// KindHandoff is a streaming TE whose input batch arrived from
	// another node (a cross-node interior hand-off). Unlike KindInterior
	// it carries the batch rows — the sending node's stream table, the
	// usual upstream backup, lives in a different failure domain — so
	// hand-off records are logged under weak recovery too, and replay
	// re-ingests the batch locally like a border record.
	KindHandoff
)

// String names the kind.
func (k RecordKind) String() string {
	switch k {
	case KindOLTP:
		return "oltp"
	case KindBorder:
		return "border"
	case KindInterior:
		return "interior"
	case KindHandoff:
		return "handoff"
	default:
		return fmt.Sprintf("RecordKind(%d)", uint8(k))
	}
}

// Record is one command-log entry: a committed transaction execution
// identified by its stored procedure and input parameters, exactly the
// information needed to re-execute it (§3.1).
type Record struct {
	// LSN is the log sequence number, assigned at append time from
	// the engine-wide commit sequence (shared by every partition's
	// log through a LogSet): records replay in LSN order, which is
	// total commit order even when the log is sharded one file per
	// partition.
	LSN uint64
	// Kind classifies the TE for recovery-mode filtering.
	Kind RecordKind
	// Partition is the partition that executed the TE.
	Partition int
	// SP is the stored procedure name.
	SP string
	// BatchID is the atomic batch processed by a streaming TE, or
	// zero for OLTP.
	BatchID int64
	// Params are the invocation's input parameters.
	Params types.Row
	// Batch holds the atomic batch's tuples for border and hand-off
	// TEs: the upstream-backup data needed to re-ingest the batch on
	// replay (§3.2.5). Empty for interior and OLTP records.
	Batch []types.Row
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encode appends the record's framed encoding to buf:
// [u32 payload-len][payload][u32 crc32c(payload)].
func (r *Record) encode(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	p := len(buf)
	buf = binary.AppendUvarint(buf, r.LSN)
	buf = append(buf, byte(r.Kind))
	buf = binary.AppendUvarint(buf, uint64(r.Partition))
	buf = binary.AppendVarint(buf, r.BatchID)
	buf = binary.AppendUvarint(buf, uint64(len(r.SP)))
	buf = append(buf, r.SP...)
	buf = types.EncodeRow(buf, r.Params)
	buf = binary.AppendUvarint(buf, uint64(len(r.Batch)))
	for _, row := range r.Batch {
		buf = types.EncodeRow(buf, row)
	}
	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
}

// decodePayload decodes one record's payload (the bytes between the
// length prefix and the CRC, which the caller has already verified).
// A malformed payload returns errTorn, which readers treat as
// end-of-log (torn tail after a crash).
var errTorn = fmt.Errorf("wal: torn or corrupt record")

func decodePayload(payload []byte) (*Record, error) {
	r := &Record{}
	n := 0
	lsn, m := binary.Uvarint(payload[n:])
	if m <= 0 {
		return nil, errTorn
	}
	n += m
	r.LSN = lsn
	if n >= len(payload) {
		return nil, errTorn
	}
	r.Kind = RecordKind(payload[n])
	n++
	part, m := binary.Uvarint(payload[n:])
	if m <= 0 {
		return nil, errTorn
	}
	n += m
	r.Partition = int(part)
	batch, m := binary.Varint(payload[n:])
	if m <= 0 {
		return nil, errTorn
	}
	n += m
	r.BatchID = batch
	splen, m := binary.Uvarint(payload[n:])
	if m <= 0 || uint64(len(payload)-n-m) < splen {
		return nil, errTorn
	}
	n += m
	r.SP = string(payload[n : n+int(splen)])
	n += int(splen)
	params, m, err := types.DecodeRow(payload[n:])
	if err != nil {
		return nil, errTorn
	}
	n += m
	r.Params = params
	count, m := binary.Uvarint(payload[n:])
	if m <= 0 {
		return nil, errTorn
	}
	n += m
	for i := uint64(0); i < count; i++ {
		row, m, err := types.DecodeRow(payload[n:])
		if err != nil {
			return nil, errTorn
		}
		n += m
		r.Batch = append(r.Batch, row)
	}
	return r, nil
}
