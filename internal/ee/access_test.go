package ee

import (
	"reflect"
	"testing"

	"sstore/internal/storage"
)

func accessExec(t *testing.T) *Executor {
	t.Helper()
	e := NewExecutor(storage.NewCatalog())
	for _, ddl := range []string{
		"CREATE TABLE acct (id INT PRIMARY KEY, bal INT)",
		"CREATE TABLE audit (id INT, note STRING)",
		"CREATE STREAM sin (id INT, v INT)",
		"CREATE WINDOW w (v BIGINT) SIZE 3 SLIDE 1",
	} {
		if _, err := e.Execute(ddl, nil, &ExecCtx{}); err != nil {
			t.Fatalf("setup %q: %v", ddl, err)
		}
	}
	return e
}

func mustAccess(t *testing.T, e *Executor, stmt string) *AccessSet {
	t.Helper()
	acc, err := e.StatementAccess(stmt)
	if err != nil {
		t.Fatalf("StatementAccess(%q): %v", stmt, err)
	}
	if acc == nil {
		t.Fatalf("StatementAccess(%q) = nil for non-DDL", stmt)
	}
	return acc
}

func TestStatementAccessEmission(t *testing.T) {
	e := accessExec(t)
	cases := []struct {
		stmt   string
		reads  []string
		writes []string
	}{
		{"SELECT bal FROM acct WHERE id = ?", []string{"acct"}, nil},
		{"SELECT a.bal, b.note FROM acct a JOIN audit b ON b.id = a.id", []string{"acct", "audit"}, nil},
		{"INSERT INTO audit VALUES (?, ?)", nil, []string{"audit"}},
		{"INSERT INTO audit SELECT id, 'x' FROM acct", []string{"acct"}, []string{"audit"}},
		{"UPDATE acct SET bal = bal + 1 WHERE id = ?", nil, []string{"acct"}},
		{"DELETE FROM audit WHERE id = ?", nil, []string{"audit"}},
		// Window tables are writes even for reads: maintained-aggregate
		// reads mutate lazily.
		{"SELECT COUNT(*) FROM w", nil, []string{"w"}},
		{"INSERT INTO sin VALUES (?, ?)", nil, []string{"sin"}},
	}
	for _, c := range cases {
		acc := mustAccess(t, e, c.stmt)
		if !reflect.DeepEqual(acc.Reads, c.reads) || !reflect.DeepEqual(acc.Writes, c.writes) {
			t.Errorf("%q: got reads=%v writes=%v, want reads=%v writes=%v",
				c.stmt, acc.Reads, acc.Writes, c.reads, c.writes)
		}
	}
	// DDL has no bounded footprint.
	if acc, err := e.StatementAccess("CREATE TABLE zz (id INT)"); err != nil || acc != nil {
		t.Fatalf("DDL access = %v, %v; want nil, nil", acc, err)
	}
}

func TestAccessSetOps(t *testing.T) {
	ab := NewAccessSet([]string{"B", "a", "a"}, []string{"C"})
	if got := ab.Reads; !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("normalize reads = %v", got)
	}
	cd := NewAccessSet(nil, []string{"d"})
	if ab.ConflictsWith(cd) || cd.ConflictsWith(ab) {
		t.Fatal("disjoint sets conflict")
	}
	ww := NewAccessSet(nil, []string{"c"})
	if !ab.ConflictsWith(ww) {
		t.Fatal("write-write overlap not a conflict")
	}
	rw := NewAccessSet([]string{"c"}, nil)
	if !ab.ConflictsWith(rw) || !rw.ConflictsWith(ab) {
		t.Fatal("read-write overlap not a conflict")
	}
	rr := NewAccessSet([]string{"a", "b"}, nil)
	if ab.ConflictsWith(rr) {
		t.Fatal("read-read overlap is not a conflict")
	}

	decl := NewAccessSet([]string{"a"}, []string{"b"})
	if !decl.Covers(NewAccessSet([]string{"a", "b"}, []string{"b"})) {
		t.Fatal("declared set should cover reads of its own writes")
	}
	if decl.Covers(NewAccessSet(nil, []string{"a"})) {
		t.Fatal("write to a read-only table covered")
	}
	if decl.Covers(NewAccessSet([]string{"z"}, nil)) {
		t.Fatal("undeclared read covered")
	}
	if err := decl.Check(nil); err == nil {
		t.Fatal("nil statement access (DDL) passed Check")
	}
	if err := decl.Check(NewAccessSet(nil, []string{"z"})); err == nil {
		t.Fatal("out-of-set write passed Check")
	}
	if err := decl.Check(NewAccessSet([]string{"a"}, []string{"b"})); err != nil {
		t.Fatalf("in-set access failed Check: %v", err)
	}
}

func TestExecCtxAllowedEnforced(t *testing.T) {
	e := accessExec(t)
	if _, err := e.Execute("INSERT INTO acct VALUES (1, 10)", nil, &ExecCtx{}); err != nil {
		t.Fatal(err)
	}
	ok := &ExecCtx{Allowed: NewAccessSet(nil, []string{"acct"})}
	if _, err := e.Execute("UPDATE acct SET bal = bal + 1 WHERE id = 1", nil, ok); err != nil {
		t.Fatalf("in-set statement rejected: %v", err)
	}
	bad := &ExecCtx{Allowed: NewAccessSet(nil, []string{"audit"})}
	if _, err := e.Execute("UPDATE acct SET bal = bal + 1 WHERE id = 1", nil, bad); err == nil {
		t.Fatal("out-of-set statement ran")
	}
	if _, err := e.Execute("CREATE TABLE zz (id INT)", nil, bad); err == nil {
		t.Fatal("DDL ran under a declared access set")
	}
	// Trigger statements are checked against the same ctx: a declared
	// set that misses the trigger's target rejects the insert.
	if err := e.AddTrigger(&Trigger{Table: "sin", Stmts: []string{"INSERT INTO audit SELECT id, 'seen' FROM sin"}}); err != nil {
		t.Fatal(err)
	}
	sinOnly := &ExecCtx{BatchID: 1, Allowed: NewAccessSet(nil, []string{"sin"})}
	if _, err := e.Execute("INSERT INTO sin VALUES (1, 2)", nil, sinOnly); err == nil {
		t.Fatal("trigger statement escaped the declared access set")
	}
	full := &ExecCtx{BatchID: 2, Allowed: NewAccessSet(nil, []string{"sin", "audit"})}
	if _, err := e.Execute("INSERT INTO sin VALUES (2, 3)", nil, full); err != nil {
		t.Fatalf("covered trigger rejected: %v", err)
	}
}

// The //sstore:allocgate markers pair with //sstore:nomalloc
// annotations in access.go; the allocgate analyzer enforces parity.

//sstore:allocgate overlapSorted
//sstore:allocgate containsSorted
//sstore:allocgate AccessSet.ConflictsWith
//sstore:allocgate AccessSet.Covers
func TestAccessSetOpsAllocFree(t *testing.T) {
	a := NewAccessSet([]string{"alpha", "beta"}, []string{"gamma"})
	b := NewAccessSet([]string{"delta"}, []string{"beta"})
	c := NewAccessSet([]string{"alpha"}, nil)
	if n := testing.AllocsPerRun(1000, func() {
		if !a.ConflictsWith(b) || a.ConflictsWith(c) {
			t.Fatal("conflict answers changed")
		}
		if !a.Covers(c) || a.Covers(b) {
			t.Fatal("covers answers changed")
		}
		if !overlapSorted(a.Reads, c.Reads) || !containsSorted(a.Reads, "beta") {
			t.Fatal("set op answers changed")
		}
	}); n != 0 {
		t.Fatalf("access-set ops allocate %v/op; the dispatcher runs them per queued task", n)
	}
}
