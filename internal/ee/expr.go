// Package ee is the execution engine: it compiles parsed SQL statements
// into physical plans and runs them against a partition's catalog. It
// also owns the streaming features that live at the EE layer in the
// paper's architecture (§3.2): native sliding windows and EE triggers.
package ee

import (
	"fmt"
	"strings"

	"sstore/internal/sql"
	"sstore/internal/types"
)

// evalEnv is the runtime environment for compiled expressions: the
// current (possibly concatenated, for joins) input row and the
// statement parameters.
type evalEnv struct {
	row    types.Row
	params []types.Value
}

// compiledExpr evaluates to a value in an environment.
type compiledExpr func(*evalEnv) (types.Value, error)

// scope resolves column references to slots in the runtime row. Slots
// are registered under both their bare name (when unambiguous) and
// their qualified "alias.name" form.
type scope struct {
	slots     map[string]int
	ambiguous map[string]bool
	width     int
}

func newScope() *scope {
	return &scope{slots: make(map[string]int), ambiguous: make(map[string]bool)}
}

// addTable registers a table's columns at the current end of the row.
func (s *scope) addTable(alias string, schema *types.Schema) {
	for i := 0; i < schema.Len(); i++ {
		name := strings.ToLower(schema.Column(i).Name)
		slot := s.width + i
		s.slots[alias+"."+name] = slot
		if _, dup := s.slots[name]; dup {
			s.ambiguous[name] = true
		} else {
			s.slots[name] = slot
		}
	}
	s.width += schema.Len()
}

// resolve maps a column reference to its slot.
func (s *scope) resolve(ref *sql.ColumnRef) (int, error) {
	if ref.Table != "" {
		slot, ok := s.slots[ref.Table+"."+ref.Column]
		if !ok {
			return 0, fmt.Errorf("ee: unknown column %s.%s", ref.Table, ref.Column)
		}
		return slot, nil
	}
	if s.ambiguous[ref.Column] {
		return 0, fmt.Errorf("ee: ambiguous column %s", ref.Column)
	}
	slot, ok := s.slots[ref.Column]
	if !ok {
		return 0, fmt.Errorf("ee: unknown column %s", ref.Column)
	}
	return slot, nil
}

// compileExpr compiles an AST expression against a scope. aggSlots maps
// aggregate FuncCall nodes to their slot in the (synthetic) aggregate
// output row and is nil outside aggregate queries.
func compileExpr(e sql.Expr, sc *scope, aggSlots map[*sql.FuncCall]int) (compiledExpr, error) {
	switch e := e.(type) {
	case *sql.Literal:
		v := e.Value
		return func(*evalEnv) (types.Value, error) { return v, nil }, nil
	case *sql.ColumnRef:
		slot, err := sc.resolve(e)
		if err != nil {
			return nil, err
		}
		return func(env *evalEnv) (types.Value, error) {
			if slot >= len(env.row) {
				return types.Null, fmt.Errorf("ee: row too short for slot %d", slot)
			}
			return env.row[slot], nil
		}, nil
	case *sql.Param:
		idx := e.Index
		return func(env *evalEnv) (types.Value, error) {
			if idx >= len(env.params) {
				return types.Null, fmt.Errorf("ee: missing parameter %d", idx+1)
			}
			return env.params[idx], nil
		}, nil
	case *sql.Unary:
		operand, err := compileExpr(e.Operand, sc, aggSlots)
		if err != nil {
			return nil, err
		}
		if e.Neg {
			return func(env *evalEnv) (types.Value, error) {
				v, err := operand(env)
				if err != nil || v.IsNull() {
					return v, err
				}
				switch v.Kind() {
				case types.KindInt:
					return types.NewInt(-v.Int()), nil
				case types.KindFloat:
					return types.NewFloat(-v.Float()), nil
				default:
					return types.Null, fmt.Errorf("ee: cannot negate %s", v.Kind())
				}
			}, nil
		}
		return func(env *evalEnv) (types.Value, error) {
			v, err := operand(env)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindBool {
				return types.Null, fmt.Errorf("ee: NOT of %s", v.Kind())
			}
			return types.NewBool(!v.Bool()), nil
		}, nil
	case *sql.IsNull:
		operand, err := compileExpr(e.Operand, sc, aggSlots)
		if err != nil {
			return nil, err
		}
		negate := e.Negate
		return func(env *evalEnv) (types.Value, error) {
			v, err := operand(env)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(v.IsNull() != negate), nil
		}, nil
	case *sql.Binary:
		return compileBinary(e, sc, aggSlots)
	case *sql.InList:
		return compileInList(e, sc, aggSlots)
	case *sql.Between:
		return compileBetween(e, sc, aggSlots)
	case *sql.Like:
		return compileLike(e, sc, aggSlots)
	case *sql.FuncCall:
		if slot, ok := aggSlots[e]; ok {
			return func(env *evalEnv) (types.Value, error) {
				return env.row[slot], nil
			}, nil
		}
		if e.IsAggregate() {
			return nil, fmt.Errorf("ee: aggregate %s not allowed here", e.Name)
		}
		return compileScalarFunc(e, sc, aggSlots)
	default:
		return nil, fmt.Errorf("ee: unsupported expression %T", e)
	}
}

func compileBinary(e *sql.Binary, sc *scope, aggSlots map[*sql.FuncCall]int) (compiledExpr, error) {
	left, err := compileExpr(e.Left, sc, aggSlots)
	if err != nil {
		return nil, err
	}
	right, err := compileExpr(e.Right, sc, aggSlots)
	if err != nil {
		return nil, err
	}
	op := e.Op
	switch op {
	case sql.OpAnd:
		return func(env *evalEnv) (types.Value, error) {
			l, err := boolOf(left, env)
			if err != nil {
				return types.Null, err
			}
			if !l {
				return types.NewBool(false), nil
			}
			r, err := boolOf(right, env)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(r), nil
		}, nil
	case sql.OpOr:
		return func(env *evalEnv) (types.Value, error) {
			l, err := boolOf(left, env)
			if err != nil {
				return types.Null, err
			}
			if l {
				return types.NewBool(true), nil
			}
			r, err := boolOf(right, env)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(r), nil
		}, nil
	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		return func(env *evalEnv) (types.Value, error) {
			l, err := left(env)
			if err != nil {
				return types.Null, err
			}
			r, err := right(env)
			if err != nil {
				return types.Null, err
			}
			// SQL three-valued logic collapsed to two: comparisons
			// against NULL are false.
			if l.IsNull() || r.IsNull() {
				return types.NewBool(false), nil
			}
			c, err := l.Compare(r)
			if err != nil {
				return types.Null, fmt.Errorf("ee: %v", err)
			}
			var res bool
			switch op {
			case sql.OpEq:
				res = c == 0
			case sql.OpNe:
				res = c != 0
			case sql.OpLt:
				res = c < 0
			case sql.OpLe:
				res = c <= 0
			case sql.OpGt:
				res = c > 0
			case sql.OpGe:
				res = c >= 0
			}
			return types.NewBool(res), nil
		}, nil
	case sql.OpConcat:
		return func(env *evalEnv) (types.Value, error) {
			l, err := left(env)
			if err != nil {
				return types.Null, err
			}
			r, err := right(env)
			if err != nil {
				return types.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return types.Null, nil
			}
			return types.NewText(l.String() + r.String()), nil
		}, nil
	default: // arithmetic
		return func(env *evalEnv) (types.Value, error) {
			l, err := left(env)
			if err != nil {
				return types.Null, err
			}
			r, err := right(env)
			if err != nil {
				return types.Null, err
			}
			return arith(op, l, r)
		}, nil
	}
}

func compileInList(e *sql.InList, sc *scope, aggSlots map[*sql.FuncCall]int) (compiledExpr, error) {
	operand, err := compileExpr(e.Operand, sc, aggSlots)
	if err != nil {
		return nil, err
	}
	items := make([]compiledExpr, len(e.Items))
	for i, it := range e.Items {
		ce, err := compileExpr(it, sc, aggSlots)
		if err != nil {
			return nil, err
		}
		items[i] = ce
	}
	negate := e.Negate
	return func(env *evalEnv) (types.Value, error) {
		v, err := operand(env)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			return types.NewBool(false), nil
		}
		for _, item := range items {
			iv, err := item(env)
			if err != nil {
				return types.Null, err
			}
			if v.Equal(iv) {
				return types.NewBool(!negate), nil
			}
		}
		return types.NewBool(negate), nil
	}, nil
}

func compileBetween(e *sql.Between, sc *scope, aggSlots map[*sql.FuncCall]int) (compiledExpr, error) {
	operand, err := compileExpr(e.Operand, sc, aggSlots)
	if err != nil {
		return nil, err
	}
	lo, err := compileExpr(e.Lo, sc, aggSlots)
	if err != nil {
		return nil, err
	}
	hi, err := compileExpr(e.Hi, sc, aggSlots)
	if err != nil {
		return nil, err
	}
	negate := e.Negate
	return func(env *evalEnv) (types.Value, error) {
		v, err := operand(env)
		if err != nil {
			return types.Null, err
		}
		lv, err := lo(env)
		if err != nil {
			return types.Null, err
		}
		hv, err := hi(env)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() || lv.IsNull() || hv.IsNull() {
			return types.NewBool(false), nil
		}
		cl, err := v.Compare(lv)
		if err != nil {
			return types.Null, fmt.Errorf("ee: BETWEEN: %v", err)
		}
		ch, err := v.Compare(hv)
		if err != nil {
			return types.Null, fmt.Errorf("ee: BETWEEN: %v", err)
		}
		return types.NewBool((cl >= 0 && ch <= 0) != negate), nil
	}, nil
}

func compileLike(e *sql.Like, sc *scope, aggSlots map[*sql.FuncCall]int) (compiledExpr, error) {
	operand, err := compileExpr(e.Operand, sc, aggSlots)
	if err != nil {
		return nil, err
	}
	pattern, err := compileExpr(e.Pattern, sc, aggSlots)
	if err != nil {
		return nil, err
	}
	negate := e.Negate
	return func(env *evalEnv) (types.Value, error) {
		v, err := operand(env)
		if err != nil {
			return types.Null, err
		}
		p, err := pattern(env)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() || p.IsNull() {
			return types.NewBool(false), nil
		}
		if v.Kind() != types.KindText || p.Kind() != types.KindText {
			return types.Null, fmt.Errorf("ee: LIKE requires text operands")
		}
		return types.NewBool(likeMatch(v.Text(), p.Text()) != negate), nil
	}, nil
}

// likeMatch implements SQL LIKE: % matches any run (including empty),
// _ matches exactly one byte. Matching is case-sensitive and
// byte-oriented, sufficient for the ASCII identifiers the workloads
// use.
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer matching with backtracking on the last %.
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func boolOf(ce compiledExpr, env *evalEnv) (bool, error) {
	v, err := ce(env)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Kind() != types.KindBool {
		return false, fmt.Errorf("ee: expected boolean, got %s", v.Kind())
	}
	return v.Bool(), nil
}

// arith evaluates +,-,*,/,% with int/float promotion.
func arith(op sql.BinaryOp, l, r types.Value) (types.Value, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return types.Null, fmt.Errorf("ee: %s on %s and %s", op, l.Kind(), r.Kind())
	}
	if l.Kind() == types.KindFloat || r.Kind() == types.KindFloat {
		a, b := l.Float(), r.Float()
		switch op {
		case sql.OpAdd:
			return types.NewFloat(a + b), nil
		case sql.OpSub:
			return types.NewFloat(a - b), nil
		case sql.OpMul:
			return types.NewFloat(a * b), nil
		case sql.OpDiv:
			if b == 0 {
				return types.Null, fmt.Errorf("ee: division by zero")
			}
			return types.NewFloat(a / b), nil
		case sql.OpMod:
			return types.Null, fmt.Errorf("ee: %% requires integers")
		}
	}
	a, b := l.Int(), r.Int()
	switch op {
	case sql.OpAdd:
		return types.NewInt(a + b), nil
	case sql.OpSub:
		return types.NewInt(a - b), nil
	case sql.OpMul:
		return types.NewInt(a * b), nil
	case sql.OpDiv:
		if b == 0 {
			return types.Null, fmt.Errorf("ee: division by zero")
		}
		return types.NewInt(a / b), nil
	case sql.OpMod:
		if b == 0 {
			return types.Null, fmt.Errorf("ee: modulo by zero")
		}
		return types.NewInt(a % b), nil
	}
	return types.Null, fmt.Errorf("ee: unknown arithmetic op %s", op)
}

// compileScalarFunc compiles the supported scalar functions.
func compileScalarFunc(e *sql.FuncCall, sc *scope, aggSlots map[*sql.FuncCall]int) (compiledExpr, error) {
	args := make([]compiledExpr, len(e.Args))
	for i, a := range e.Args {
		ce, err := compileExpr(a, sc, aggSlots)
		if err != nil {
			return nil, err
		}
		args[i] = ce
	}
	argc := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("ee: %s expects %d argument(s), got %d", e.Name, n, len(args))
		}
		return nil
	}
	switch e.Name {
	case "abs":
		if err := argc(1); err != nil {
			return nil, err
		}
		return func(env *evalEnv) (types.Value, error) {
			v, err := args[0](env)
			if err != nil || v.IsNull() {
				return v, err
			}
			switch v.Kind() {
			case types.KindInt:
				if v.Int() < 0 {
					return types.NewInt(-v.Int()), nil
				}
				return v, nil
			case types.KindFloat:
				if v.Float() < 0 {
					return types.NewFloat(-v.Float()), nil
				}
				return v, nil
			default:
				return types.Null, fmt.Errorf("ee: abs of %s", v.Kind())
			}
		}, nil
	case "coalesce":
		if len(args) == 0 {
			return nil, fmt.Errorf("ee: coalesce needs at least one argument")
		}
		return func(env *evalEnv) (types.Value, error) {
			for _, a := range args {
				v, err := a(env)
				if err != nil {
					return types.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return types.Null, nil
		}, nil
	case "length":
		if err := argc(1); err != nil {
			return nil, err
		}
		return func(env *evalEnv) (types.Value, error) {
			v, err := args[0](env)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindText {
				return types.Null, fmt.Errorf("ee: length of %s", v.Kind())
			}
			return types.NewInt(int64(len(v.Text()))), nil
		}, nil
	case "floor":
		if err := argc(1); err != nil {
			return nil, err
		}
		return func(env *evalEnv) (types.Value, error) {
			v, err := args[0](env)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() == types.KindInt {
				return v, nil
			}
			f := v.Float()
			i := int64(f)
			if f < 0 && float64(i) != f {
				i--
			}
			return types.NewInt(i), nil
		}, nil
	default:
		return nil, fmt.Errorf("ee: unknown function %s", e.Name)
	}
}
