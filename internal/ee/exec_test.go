package ee

import (
	"fmt"
	"testing"

	"sstore/internal/storage"
	"sstore/internal/types"
)

// newTestExec builds an executor with an empty catalog.
func newTestExec(t *testing.T) *Executor {
	t.Helper()
	return NewExecutor(storage.NewCatalog())
}

// mustExec runs a statement, failing the test on error.
func mustExec(t *testing.T, e *Executor, stmt string, params ...types.Value) *Result {
	t.Helper()
	res, err := e.Execute(stmt, params, &ExecCtx{})
	if err != nil {
		t.Fatalf("Execute(%q): %v", stmt, err)
	}
	return res
}

func setupVotes(t *testing.T, e *Executor) {
	t.Helper()
	mustExec(t, e, "CREATE TABLE contestants (id BIGINT PRIMARY KEY, name VARCHAR)")
	mustExec(t, e, "CREATE TABLE votes (phone BIGINT, contestant_id BIGINT)")
	mustExec(t, e, "CREATE UNIQUE INDEX votes_phone ON votes (phone)")
	mustExec(t, e, "CREATE INDEX votes_cand ON votes (contestant_id)")
	for i := 1; i <= 3; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO contestants VALUES (%d, 'cand%d')", i, i))
	}
	// 6 votes: cand1 gets 3, cand2 gets 2, cand3 gets 1.
	for i, cand := range []int{1, 1, 1, 2, 2, 3} {
		mustExec(t, e, fmt.Sprintf("INSERT INTO votes VALUES (%d, %d)", 100+i, cand))
	}
}

func TestInsertSelectBasic(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	res := mustExec(t, e, "SELECT phone, contestant_id FROM votes WHERE contestant_id = 1")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Columns[0] != "phone" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	res := mustExec(t, e, "SELECT * FROM contestants ORDER BY id")
	if len(res.Rows) != 3 || len(res.Rows[0]) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].Text() != "cand1" {
		t.Errorf("first row = %v", res.Rows[0])
	}
}

func TestWhereFilters(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	tests := []struct {
		where string
		want  int
	}{
		{"contestant_id = 2", 2},
		{"contestant_id <> 2", 4},
		{"contestant_id > 1 AND contestant_id < 3", 2},
		{"contestant_id = 1 OR contestant_id = 3", 4},
		{"NOT (contestant_id = 1)", 3},
		{"phone >= 103", 3},
		{"contestant_id % 2 = 0", 2},
		{"contestant_id + 1 = 4", 1},
		{"phone IS NULL", 0},
		{"phone IS NOT NULL", 6},
	}
	for _, tt := range tests {
		res := mustExec(t, e, "SELECT phone FROM votes WHERE "+tt.where)
		if len(res.Rows) != tt.want {
			t.Errorf("WHERE %s: rows = %d, want %d", tt.where, len(res.Rows), tt.want)
		}
	}
}

func TestParams(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	res := mustExec(t, e, "SELECT phone FROM votes WHERE contestant_id = ?", types.NewInt(2))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Missing param should error.
	if _, err := e.Execute("SELECT phone FROM votes WHERE contestant_id = ?", nil, &ExecCtx{}); err == nil {
		t.Error("missing parameter should fail")
	}
}

func TestIndexProbeUsed(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	p, err := e.Prepare("SELECT phone FROM votes WHERE phone = ?")
	if err != nil {
		t.Fatal(err)
	}
	if p.sel.probe == nil {
		t.Error("unique-index equality should compile to a probe")
	}
	p, err = e.Prepare("SELECT phone FROM votes WHERE contestant_id = ? AND phone > 100")
	if err != nil {
		t.Fatal(err)
	}
	if p.sel.probe == nil || p.sel.filter == nil {
		t.Error("want probe on contestant_id plus residual filter")
	}
	p, err = e.Prepare("SELECT phone FROM votes WHERE phone > 100")
	if err != nil {
		t.Fatal(err)
	}
	if p.sel.probe != nil {
		t.Error("range predicate must not use a hash probe")
	}
}

func TestAggregates(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	res := mustExec(t, e, "SELECT COUNT(*), SUM(contestant_id), AVG(contestant_id), MIN(phone), MAX(phone) FROM votes")
	row := res.Rows[0]
	if row[0].Int() != 6 {
		t.Errorf("count = %v", row[0])
	}
	if row[1].Int() != 10 {
		t.Errorf("sum = %v", row[1])
	}
	if row[2].Float() < 1.66 || row[2].Float() > 1.67 {
		t.Errorf("avg = %v", row[2])
	}
	if row[3].Int() != 100 || row[4].Int() != 105 {
		t.Errorf("min/max = %v %v", row[3], row[4])
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	res := mustExec(t, e, `SELECT contestant_id, COUNT(*) AS n FROM votes
		GROUP BY contestant_id HAVING COUNT(*) >= 2 ORDER BY n DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int() != 1 || res.Rows[0][1].Int() != 3 {
		t.Errorf("top group = %v", res.Rows[0])
	}
	if res.Rows[1][0].Int() != 2 {
		t.Errorf("second group = %v", res.Rows[1])
	}
}

func TestCountEmptyTable(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE empty (x BIGINT)")
	res := mustExec(t, e, "SELECT COUNT(*) FROM empty")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 {
		t.Errorf("COUNT over empty = %v", res.Rows)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM empty GROUP BY x")
	if len(res.Rows) != 0 {
		t.Errorf("grouped COUNT over empty = %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	res := mustExec(t, e, "SELECT COUNT(DISTINCT contestant_id) FROM votes")
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("distinct = %v", res.Rows[0][0])
	}
}

func TestJoin(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	res := mustExec(t, e, `SELECT c.name, COUNT(*) AS n FROM votes v
		JOIN contestants c ON v.contestant_id = c.id
		GROUP BY c.name ORDER BY n DESC, c.name`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Text() != "cand1" || res.Rows[0][1].Int() != 3 {
		t.Errorf("top = %v", res.Rows[0])
	}
}

func TestJoinUsesIndexProbe(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	p, err := e.Prepare("SELECT c.name FROM votes v JOIN contestants c ON c.id = v.contestant_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.sel.joins) != 1 || p.sel.joins[0].probe == nil {
		t.Error("join on contestants.id (pk) should compile to an index probe")
	}
}

func TestOrderByLimit(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	res := mustExec(t, e, "SELECT phone FROM votes ORDER BY phone DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 105 || res.Rows[1][0].Int() != 104 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, e, "SELECT phone FROM votes LIMIT 0")
	if len(res.Rows) != 0 {
		t.Errorf("LIMIT 0 = %v", res.Rows)
	}
}

func TestUpdateAndDelete(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	res := mustExec(t, e, "UPDATE votes SET contestant_id = 9 WHERE contestant_id = 2")
	if res.RowsAffected != 2 {
		t.Fatalf("updated %d, want 2", res.RowsAffected)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM votes WHERE contestant_id = 9")
	if res.Rows[0][0].Int() != 2 {
		t.Error("update did not apply")
	}
	// Index maintained: probe by new value.
	res = mustExec(t, e, "SELECT phone FROM votes WHERE contestant_id = ?", types.NewInt(9))
	if len(res.Rows) != 2 {
		t.Error("index stale after update")
	}
	res = mustExec(t, e, "DELETE FROM votes WHERE contestant_id = 9")
	if res.RowsAffected != 2 {
		t.Fatalf("deleted %d, want 2", res.RowsAffected)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM votes")
	if res.Rows[0][0].Int() != 4 {
		t.Error("delete did not apply")
	}
}

func TestUpdateSelfReference(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE counters (id BIGINT PRIMARY KEY, n BIGINT)")
	mustExec(t, e, "INSERT INTO counters VALUES (1, 0)")
	for i := 0; i < 5; i++ {
		mustExec(t, e, "UPDATE counters SET n = n + 1 WHERE id = 1")
	}
	res := mustExec(t, e, "SELECT n FROM counters WHERE id = 1")
	if res.Rows[0][0].Int() != 5 {
		t.Errorf("n = %v", res.Rows[0][0])
	}
}

func TestUniqueViolation(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	if _, err := e.Execute("INSERT INTO votes VALUES (100, 2)", nil, &ExecCtx{}); err == nil {
		t.Error("duplicate phone should fail")
	}
}

func TestInsertExplicitColumns(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (a BIGINT, b VARCHAR, c FLOAT)")
	mustExec(t, e, "INSERT INTO t (c, a) VALUES (1.5, 7)")
	res := mustExec(t, e, "SELECT a, b, c FROM t")
	row := res.Rows[0]
	if row[0].Int() != 7 || !row[1].IsNull() || row[2].Float() != 1.5 {
		t.Errorf("row = %v", row)
	}
}

func TestInsertFromSelect(t *testing.T) {
	e := newTestExec(t)
	setupVotes(t, e)
	mustExec(t, e, "CREATE TABLE top (contestant_id BIGINT, n BIGINT)")
	mustExec(t, e, `INSERT INTO top SELECT contestant_id, COUNT(*) FROM votes GROUP BY contestant_id`)
	res := mustExec(t, e, "SELECT COUNT(*) FROM top")
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("top rows = %v", res.Rows[0][0])
	}
}

func TestStreamEETriggerChain(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE STREAM s1 (v BIGINT)")
	mustExec(t, e, "CREATE STREAM s2 (v BIGINT)")
	mustExec(t, e, "CREATE TABLE sink (v BIGINT)")
	// s1 → s2 → sink, all within the EE (the paper's Figure 5 shape).
	if err := e.AddTrigger(&Trigger{Table: "s1", Stmts: []string{"INSERT INTO s2 SELECT v FROM s1"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrigger(&Trigger{Table: "s2", Stmts: []string{"INSERT INTO sink SELECT v FROM s2"}}); err != nil {
		t.Fatal(err)
	}
	ctx := &ExecCtx{BatchID: 1}
	if _, err := e.Execute("INSERT INTO s1 VALUES (42)", nil, ctx); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SELECT v FROM sink")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("sink = %v", res.Rows)
	}
	// Automatic GC: both stream tables drained.
	for _, s := range []string{"s1", "s2"} {
		res := mustExec(t, e, "SELECT COUNT(*) FROM "+s)
		if res.Rows[0][0].Int() != 0 {
			t.Errorf("%s not garbage collected", s)
		}
	}
}

func TestTriggerOnPlainTableRejected(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (v BIGINT)")
	if err := e.AddTrigger(&Trigger{Table: "t", Stmts: []string{"DELETE FROM t"}}); err == nil {
		t.Error("EE trigger on plain table should be rejected")
	}
}

func TestWindowTriggerFiresOnSlide(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE STREAM s1 (v BIGINT)")
	mustExec(t, e, "CREATE WINDOW w (v BIGINT) SIZE 3 SLIDE 3")
	mustExec(t, e, "CREATE TABLE agg (total BIGINT)")
	if err := e.AddTrigger(&Trigger{Table: "w", Stmts: []string{"INSERT INTO agg SELECT SUM(v) FROM w"}}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO w VALUES (%d)", i))
	}
	// Window tumbles at 3 (sum 6) and 6 (sum 15); 7th insert stays
	// staged.
	res := mustExec(t, e, "SELECT total FROM agg")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 6 || res.Rows[1][0].Int() != 15 {
		t.Fatalf("agg = %v", res.Rows)
	}
}

func TestStagedRowsInvisible(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE WINDOW w (v BIGINT) SIZE 3 SLIDE 1")
	mustExec(t, e, "INSERT INTO w VALUES (1)")
	mustExec(t, e, "INSERT INTO w VALUES (2)")
	res := mustExec(t, e, "SELECT COUNT(*) FROM w")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("staged tuples visible: count = %v", res.Rows[0][0])
	}
	mustExec(t, e, "INSERT INTO w VALUES (3)")
	res = mustExec(t, e, "SELECT COUNT(*) FROM w")
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("window not visible after fill: %v", res.Rows[0][0])
	}
}

func TestWindowScoping(t *testing.T) {
	e := newTestExec(t)
	// SP1 creates a private window.
	if _, err := e.Execute("CREATE WINDOW w (v BIGINT) SIZE 2 SLIDE 1", nil, &ExecCtx{SP: "SP1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("INSERT INTO w VALUES (1)", nil, &ExecCtx{SP: "SP1"}); err != nil {
		t.Errorf("owner access should succeed: %v", err)
	}
	if _, err := e.Execute("SELECT * FROM w", nil, &ExecCtx{SP: "SP2"}); err == nil {
		t.Error("foreign SP access to window should fail")
	}
	if _, err := e.Execute("INSERT INTO w VALUES (2)", nil, &ExecCtx{SP: ""}); err == nil {
		t.Error("ad-hoc access to window should fail")
	}
}

func TestStreamAppendsRecorded(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE STREAM s1 (v BIGINT)")
	ctx := &ExecCtx{BatchID: 7}
	if _, err := e.Execute("INSERT INTO s1 VALUES (1)", nil, ctx); err != nil {
		t.Fatal(err)
	}
	if len(ctx.Appends) != 1 || ctx.Appends[0].Table != "s1" || ctx.Appends[0].BatchID != 7 {
		t.Fatalf("appends = %+v", ctx.Appends)
	}
}

func TestPEConsumedSkipsGC(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE STREAM s1 (v BIGINT)")
	mustExec(t, e, "CREATE TABLE sink (v BIGINT)")
	if err := e.AddTrigger(&Trigger{Table: "s1", Stmts: []string{"INSERT INTO sink SELECT v FROM s1"}}); err != nil {
		t.Fatal(err)
	}
	e.SetPEConsumed("s1")
	ctx := &ExecCtx{BatchID: 1}
	if _, err := e.Execute("INSERT INTO s1 VALUES (5)", nil, ctx); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SELECT COUNT(*) FROM s1")
	if res.Rows[0][0].Int() != 1 {
		t.Error("PE-consumed stream must not be GC'd by the EE")
	}
}

func TestScalarFunctions(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (a BIGINT, s VARCHAR)")
	mustExec(t, e, "INSERT INTO t VALUES (-5, 'hello')")
	res := mustExec(t, e, "SELECT ABS(a), LENGTH(s), COALESCE(NULL, a, 1), FLOOR(2.7) FROM t")
	row := res.Rows[0]
	if row[0].Int() != 5 || row[1].Int() != 5 || row[2].Int() != -5 || row[3].Int() != 2 {
		t.Errorf("row = %v", row)
	}
}

func TestArithmeticErrors(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (a BIGINT)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	if _, err := e.Execute("SELECT a / 0 FROM t", nil, &ExecCtx{}); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := e.Execute("SELECT a + 'x' FROM t", nil, &ExecCtx{}); err == nil {
		t.Error("adding text should fail")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE a (id BIGINT)")
	mustExec(t, e, "CREATE TABLE b (id BIGINT)")
	if _, err := e.Execute("SELECT id FROM a JOIN b ON a.id = b.id", nil, &ExecCtx{}); err == nil {
		t.Error("ambiguous column should fail")
	}
}

func TestUnknownEntities(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (a BIGINT)")
	for _, q := range []string{
		"SELECT a FROM missing",
		"SELECT missing FROM t",
		"INSERT INTO t (missing) VALUES (1)",
		"UPDATE t SET missing = 1",
		"SELECT NOSUCHFUNC(a) FROM t",
	} {
		if _, err := e.Execute(q, nil, &ExecCtx{}); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}
