package ee

import (
	"fmt"
	"sort"

	"sstore/internal/index"
	"sstore/internal/sql"
	"sstore/internal/storage"
	"sstore/internal/types"
)

// selectPlan is a compiled SELECT: an access path for the base table,
// optional index nested-loop joins, a residual filter, and either a
// plain projection or an aggregation, followed by sort and limit.
type selectPlan struct {
	baseTable string
	probe     *indexProbe // nil → full scan

	joins []joinStep

	filter compiledExpr // nil → no residual predicate

	agg *aggPlan // nil → plain projection

	// maintained, when non-nil, maps every aggregate call to a
	// maintained window aggregate (§4.3): run() reads the stored
	// accumulators instead of scanning, making trigger TEs O(1) in the
	// window size. Parallel to agg.calls.
	maintained []maintainedAggRef

	items    []compiledExpr // projection (over input or agg scope)
	colNames []string

	orderBy    []orderKey
	limit      int
	limitParam int // parameter index for LIMIT ?, or -1
}

// indexProbe is an equality probe of a base-table index whose key is
// computable before scanning (literals and parameters only).
type indexProbe struct {
	indexName string
	cols      []int
	keyExprs  []compiledExpr
}

// joinStep is one inner join executed as a nested loop, with an
// optional index probe on the inner table keyed by the rows built so
// far.
type joinStep struct {
	table string
	on    compiledExpr // residual join predicate (may be nil)
	// Optional index acceleration: probe inner index with keys
	// computed from the outer row.
	probe *joinProbe
	width int // inner schema width
}

type joinProbe struct {
	indexName string
	cols      []int
	keyExprs  []compiledExpr // evaluated against the outer row env
}

// aggPlan describes grouping and aggregate accumulation.
type aggPlan struct {
	groupBy  []compiledExpr
	calls    []*sql.FuncCall
	argExprs []compiledExpr // one per call; nil for COUNT(*)
	having   compiledExpr   // over the agg output scope; may be nil
}

// maintainedAggRef names one maintained window aggregate of the base
// table.
type maintainedAggRef struct {
	fn  storage.AggFunc
	col int
}

type orderKey struct {
	expr compiledExpr
	desc bool
	// preProjection marks keys evaluated against the input scope
	// (non-agg mode); otherwise the key runs over the agg output row.
	preProjection bool
}

// compileSelect builds a selectPlan against the catalog's current
// schemas.
func compileSelect(stmt *sql.Select, cat *storage.Catalog) (*selectPlan, error) {
	base, err := cat.Get(stmt.From.Name)
	if err != nil {
		return nil, err
	}
	sc := newScope()
	sc.addTable(stmt.From.Alias, base.Schema())

	p := &selectPlan{baseTable: stmt.From.Name, limit: stmt.Limit, limitParam: stmt.LimitParam}

	// Joins extend the scope left to right.
	for _, j := range stmt.Joins {
		inner, err := cat.Get(j.Table.Name)
		if err != nil {
			return nil, err
		}
		outerWidth := sc.width
		sc.addTable(j.Table.Alias, inner.Schema())
		step := joinStep{table: j.Table.Name, width: inner.Schema().Len()}
		probe, residual := extractJoinProbe(j.On, j.Table.Alias, inner, sc, outerWidth)
		step.probe = probe
		if residual != nil {
			on, err := compileExpr(residual, sc, nil)
			if err != nil {
				return nil, err
			}
			step.on = on
		}
		p.joins = append(p.joins, step)
	}

	// WHERE: peel off an index probe on the base table, compile the
	// rest as a filter.
	if stmt.Where != nil {
		probe, residual, err := extractIndexProbe(stmt.Where, stmt.From.Alias, base, sc)
		if err != nil {
			return nil, err
		}
		p.probe = probe
		if residual != nil {
			f, err := compileExpr(residual, sc, nil)
			if err != nil {
				return nil, err
			}
			p.filter = f
		}
	}

	// Expand stars.
	items := make([]sql.SelectItem, 0, len(stmt.Items))
	for _, it := range stmt.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		items = append(items, expandStar(stmt, cat)...)
	}

	// Aggregate mode?
	var aggCalls []*sql.FuncCall
	for _, it := range items {
		collectAggregates(it.Expr, &aggCalls)
	}
	if stmt.Having != nil {
		collectAggregates(stmt.Having, &aggCalls)
	}
	for _, ob := range stmt.OrderBy {
		collectAggregates(ob.Expr, &aggCalls)
	}
	if len(aggCalls) > 0 || len(stmt.GroupBy) > 0 {
		if err := p.compileAggregate(stmt, items, aggCalls, sc); err != nil {
			return nil, err
		}
		p.detectMaintained(stmt, base)
		return p, nil
	}

	// Plain projection.
	for _, it := range items {
		ce, err := compileExpr(it.Expr, sc, nil)
		if err != nil {
			return nil, err
		}
		p.items = append(p.items, ce)
		p.colNames = append(p.colNames, itemName(it))
	}
	for _, ob := range stmt.OrderBy {
		ce, err := compileOrderKey(ob.Expr, sc, items, p.items)
		if err != nil {
			return nil, err
		}
		p.orderBy = append(p.orderBy, orderKey{expr: ce, desc: ob.Desc, preProjection: true})
	}
	return p, nil
}

// expandStar lists all columns of the FROM and JOIN tables as items.
func expandStar(stmt *sql.Select, cat *storage.Catalog) []sql.SelectItem {
	var items []sql.SelectItem
	add := func(alias string, t *storage.Table) {
		for i := 0; i < t.Schema().Len(); i++ {
			name := t.Schema().Column(i).Name
			items = append(items, sql.SelectItem{
				Expr:  &sql.ColumnRef{Table: alias, Column: name},
				Alias: name,
			})
		}
	}
	if t, ok := cat.Lookup(stmt.From.Name); ok {
		add(stmt.From.Alias, t)
	}
	for _, j := range stmt.Joins {
		if t, ok := cat.Lookup(j.Table.Name); ok {
			add(j.Table.Alias, t)
		}
	}
	return items
}

// compileOrderKey compiles an ORDER BY expression; a bare column that
// matches a select alias refers to that item.
func compileOrderKey(e sql.Expr, sc *scope, items []sql.SelectItem, compiled []compiledExpr) (compiledExpr, error) {
	if ref, ok := e.(*sql.ColumnRef); ok && ref.Table == "" {
		if _, err := sc.resolve(ref); err != nil {
			for i, it := range items {
				if it.Alias == ref.Column {
					return compiled[i], nil
				}
			}
		}
	}
	return compileExpr(e, sc, nil)
}

// compileAggregate sets up aggregation: group-by keys and aggregate
// accumulators over the input scope, then items/having/order-by over a
// synthetic output scope of [groupVals..., aggVals...].
func (p *selectPlan) compileAggregate(stmt *sql.Select, items []sql.SelectItem, calls []*sql.FuncCall, sc *scope) error {
	agg := &aggPlan{}
	// Dedup aggregate calls by pointer.
	seen := make(map[*sql.FuncCall]bool)
	for _, c := range calls {
		if !seen[c] {
			seen[c] = true
			agg.calls = append(agg.calls, c)
		}
	}
	aggScope := newScope()
	aggSlots := make(map[*sql.FuncCall]int)

	for i, g := range stmt.GroupBy {
		ce, err := compileExpr(g, sc, nil)
		if err != nil {
			return err
		}
		agg.groupBy = append(agg.groupBy, ce)
		// Register the group-by column's names in the output scope.
		if ref, ok := g.(*sql.ColumnRef); ok {
			aggScope.slots[ref.Column] = i
			if ref.Table != "" {
				aggScope.slots[ref.Table+"."+ref.Column] = i
			}
		}
	}
	aggScope.width = len(stmt.GroupBy)
	for i, c := range agg.calls {
		aggSlots[c] = len(stmt.GroupBy) + i
		if c.Star {
			agg.argExprs = append(agg.argExprs, nil)
			continue
		}
		if len(c.Args) != 1 {
			return fmt.Errorf("ee: aggregate %s expects one argument", c.Name)
		}
		ce, err := compileExpr(c.Args[0], sc, nil)
		if err != nil {
			return err
		}
		agg.argExprs = append(agg.argExprs, ce)
	}
	aggScope.width += len(agg.calls)

	for _, it := range items {
		ce, err := compileExpr(it.Expr, aggScope, aggSlots)
		if err != nil {
			return err
		}
		p.items = append(p.items, ce)
		p.colNames = append(p.colNames, itemName(it))
	}
	if stmt.Having != nil {
		h, err := compileExpr(stmt.Having, aggScope, aggSlots)
		if err != nil {
			return err
		}
		agg.having = h
	}
	for _, ob := range stmt.OrderBy {
		ce, err := compileOrderKey(ob.Expr, aggScope, items, p.items)
		if err != nil {
			// Retry via aggSlots-aware compilation (aggregates in
			// ORDER BY).
			ce2, err2 := compileExpr(ob.Expr, aggScope, aggSlots)
			if err2 != nil {
				return err
			}
			ce = ce2
		}
		p.orderBy = append(p.orderBy, orderKey{expr: ce, desc: ob.Desc})
	}
	p.agg = agg
	return nil
}

// detectMaintained checks whether an aggregate plan can be served from
// the base window's maintained aggregates: an ungrouped, unfiltered,
// join-free aggregate over a window table whose every call is
// registered as maintained. Registration invalidates plan caches, so a
// compile-time check stays correct for the plan's lifetime.
func (p *selectPlan) detectMaintained(stmt *sql.Select, base *storage.Table) {
	if base.Kind() != storage.KindWindow || base.Window() == nil {
		return
	}
	if p.probe != nil || p.filter != nil || len(p.joins) > 0 || len(p.agg.groupBy) > 0 {
		return
	}
	refs := make([]maintainedAggRef, 0, len(p.agg.calls))
	for _, c := range p.agg.calls {
		if c.Distinct {
			return
		}
		fn, err := storage.ParseAggFunc(c.Name)
		if err != nil {
			return
		}
		col := storage.AggStar
		if c.Star {
			if fn != storage.AggCount {
				return
			}
		} else {
			if len(c.Args) != 1 {
				return
			}
			ref, ok := c.Args[0].(*sql.ColumnRef)
			if !ok || (ref.Table != "" && lowerName(ref.Table) != lowerName(stmt.From.Alias)) {
				return
			}
			ord, ok := base.Schema().Index(ref.Column)
			if !ok {
				return
			}
			col = ord
		}
		if !base.MaintainsAggregate(fn, col) {
			return
		}
		refs = append(refs, maintainedAggRef{fn: fn, col: col})
	}
	p.maintained = refs
}

func itemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if ref, ok := it.Expr.(*sql.ColumnRef); ok {
		return ref.Column
	}
	if call, ok := it.Expr.(*sql.FuncCall); ok {
		return call.Name
	}
	return "expr"
}

// --- Index probe extraction ---

// conjuncts flattens an AND tree.
func conjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []sql.Expr{e}
}

func joinConjuncts(parts []sql.Expr) sql.Expr {
	if len(parts) == 0 {
		return nil
	}
	e := parts[0]
	for _, p := range parts[1:] {
		e = &sql.Binary{Op: sql.OpAnd, Left: e, Right: p}
	}
	return e
}

// columnFree reports whether the expression references no columns, so
// its value is computable before the scan (literals, params,
// arithmetic over them).
func columnFree(e sql.Expr) bool {
	switch e := e.(type) {
	case *sql.Literal, *sql.Param:
		return true
	case *sql.Binary:
		return columnFree(e.Left) && columnFree(e.Right)
	case *sql.Unary:
		return columnFree(e.Operand)
	case *sql.FuncCall:
		for _, a := range e.Args {
			if !columnFree(a) {
				return false
			}
		}
		return !e.IsAggregate()
	default:
		return false
	}
}

// extractIndexProbe looks for `col = <column-free expr>` conjuncts that
// together cover an index of the base table, returning the probe and
// the residual predicate.
func extractIndexProbe(where sql.Expr, baseAlias string, t *storage.Table, sc *scope) (*indexProbe, sql.Expr, error) {
	parts := conjuncts(where)
	// Map column ordinal → (conjunct index, key expr).
	type candidate struct {
		part int
		expr sql.Expr
	}
	cands := make(map[int]candidate)
	for i, part := range parts {
		b, ok := part.(*sql.Binary)
		if !ok || b.Op != sql.OpEq {
			continue
		}
		ref, val := asColEq(b, baseAlias)
		if ref == nil {
			continue
		}
		ord, ok := t.Schema().Index(ref.Column)
		if !ok {
			continue
		}
		if _, dup := cands[ord]; !dup {
			cands[ord] = candidate{part: i, expr: val}
		}
	}
	if len(cands) == 0 {
		return nil, where, nil
	}
	// Find an index fully covered by candidate columns.
	for _, idx := range t.Indexes() {
		cols := idx.Columns()
		covered := true
		for _, c := range cols {
			if _, ok := cands[c]; !ok {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		probe := &indexProbe{indexName: idx.Name(), cols: cols}
		used := make(map[int]bool)
		for _, c := range cols {
			cand := cands[c]
			ce, err := compileExpr(cand.expr, newScope(), nil)
			if err != nil {
				return nil, nil, err
			}
			probe.keyExprs = append(probe.keyExprs, ce)
			used[cand.part] = true
		}
		var residual []sql.Expr
		for i, part := range parts {
			if !used[i] {
				residual = append(residual, part)
			}
		}
		return probe, joinConjuncts(residual), nil
	}
	return nil, where, nil
}

// asColEq matches `alias.col = expr` (either side) where expr is
// column-free, returning the column ref and the key expression.
func asColEq(b *sql.Binary, alias string) (*sql.ColumnRef, sql.Expr) {
	try := func(l, r sql.Expr) (*sql.ColumnRef, sql.Expr) {
		ref, ok := l.(*sql.ColumnRef)
		if !ok || (ref.Table != "" && ref.Table != alias) {
			return nil, nil
		}
		if !columnFree(r) {
			return nil, nil
		}
		return ref, r
	}
	if ref, val := try(b.Left, b.Right); ref != nil {
		return ref, val
	}
	return try(b.Right, b.Left)
}

// extractJoinProbe matches `inner.col = <expr over outer row>` equality
// conjuncts covering an inner-table index; key expressions are compiled
// against the combined scope but only read outer slots, so they can run
// per outer row.
func extractJoinProbe(on sql.Expr, innerAlias string, inner *storage.Table, sc *scope, outerWidth int) (*joinProbe, sql.Expr) {
	parts := conjuncts(on)
	type candidate struct {
		part int
		expr sql.Expr
	}
	cands := make(map[int]candidate)
	for i, part := range parts {
		b, ok := part.(*sql.Binary)
		if !ok || b.Op != sql.OpEq {
			continue
		}
		for _, ord := range []struct{ l, r sql.Expr }{{b.Left, b.Right}, {b.Right, b.Left}} {
			ref, ok := ord.l.(*sql.ColumnRef)
			if !ok || ref.Table != innerAlias {
				continue
			}
			colOrd, ok := inner.Schema().Index(ref.Column)
			if !ok {
				continue
			}
			if refsOnlyOuter(ord.r, innerAlias) {
				if _, dup := cands[colOrd]; !dup {
					cands[colOrd] = candidate{part: i, expr: ord.r}
				}
				break
			}
		}
	}
	if len(cands) == 0 {
		return nil, on
	}
	for _, idx := range inner.Indexes() {
		cols := idx.Columns()
		covered := true
		for _, c := range cols {
			if _, ok := cands[c]; !ok {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		probe := &joinProbe{indexName: idx.Name(), cols: cols}
		used := make(map[int]bool)
		ok := true
		for _, c := range cols {
			cand := cands[c]
			ce, err := compileExpr(cand.expr, sc, nil)
			if err != nil {
				ok = false
				break
			}
			probe.keyExprs = append(probe.keyExprs, ce)
			used[cand.part] = true
		}
		if !ok {
			continue
		}
		var residual []sql.Expr
		for i, part := range parts {
			if !used[i] {
				residual = append(residual, part)
			}
		}
		return probe, joinConjuncts(residual)
	}
	return nil, on
}

// refsOnlyOuter reports whether the expression references no columns of
// the inner alias (it may reference outer columns).
func refsOnlyOuter(e sql.Expr, innerAlias string) bool {
	switch e := e.(type) {
	case *sql.Literal, *sql.Param:
		return true
	case *sql.ColumnRef:
		return e.Table != "" && e.Table != innerAlias
	case *sql.Binary:
		return refsOnlyOuter(e.Left, innerAlias) && refsOnlyOuter(e.Right, innerAlias)
	case *sql.Unary:
		return refsOnlyOuter(e.Operand, innerAlias)
	case *sql.FuncCall:
		for _, a := range e.Args {
			if !refsOnlyOuter(a, innerAlias) {
				return false
			}
		}
		return !e.IsAggregate()
	default:
		return false
	}
}

// --- Execution ---

// run executes the plan. Result rows are freshly allocated and safe to
// retain.
func (p *selectPlan) run(cat *storage.Catalog, params []types.Value) (*Result, error) {
	base, err := cat.Get(p.baseTable)
	if err != nil {
		return nil, err
	}
	if p.maintained != nil {
		return p.runMaintained(base, params)
	}
	env := &evalEnv{params: params}

	var inputErr error
	process, finish, err := p.newSink(params)
	if err != nil {
		return nil, err
	}

	emit := func(row types.Row) bool {
		env.row = row
		ok, err := p.applyJoins(cat, env, 0, row, process)
		if err != nil {
			if err != errLimitReached {
				inputErr = err
			}
			return false
		}
		return ok
	}

	if p.probe != nil {
		key := make(index.Key, len(p.probe.keyExprs))
		for i, ke := range p.probe.keyExprs {
			v, err := ke(env)
			if err != nil {
				return nil, err
			}
			key[i] = v
		}
		if idx := findIndex(base, p.probe.indexName); idx != nil {
			for _, tid := range idx.Lookup(key) {
				meta, row, ok := base.Get(tid)
				if !ok || meta.Staged {
					continue
				}
				if !emit(row) {
					break
				}
			}
		} else {
			// Versioned shims carry no indexes: re-apply the probe's key
			// equalities (lifted out of the residual filter at plan time)
			// over a scan instead.
			base.Scan(func(_ storage.TupleMeta, row types.Row) bool {
				for i, c := range p.probe.cols {
					if !row[c].Equal(key[i]) {
						return true
					}
				}
				return emit(row)
			})
		}
	} else {
		base.Scan(func(_ storage.TupleMeta, row types.Row) bool {
			return emit(row)
		})
	}
	if inputErr != nil {
		return nil, inputErr
	}
	return finish()
}

func findIndex(t *storage.Table, name string) index.Index {
	for _, idx := range t.Indexes() {
		if idx.Name() == name {
			return idx
		}
	}
	return nil
}

// applyJoins recursively extends row through each join step, invoking
// process on fully joined rows. It returns false to stop the outer
// scan (limit reached in non-sorted plans is not short-circuited; this
// path only reports errors).
func (p *selectPlan) applyJoins(cat *storage.Catalog, env *evalEnv, step int, row types.Row, process func(*evalEnv) error) (bool, error) {
	if step == len(p.joins) {
		env.row = row
		if p.filter != nil {
			ok, err := boolOf(p.filter, env)
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil
			}
		}
		if err := process(env); err != nil {
			return false, err
		}
		return true, nil
	}
	js := p.joins[step]
	inner, err := cat.Get(js.table)
	if err != nil {
		return false, err
	}
	tryRow := func(innerRow types.Row) (bool, error) {
		combined := make(types.Row, 0, len(row)+len(innerRow))
		combined = append(combined, row...)
		combined = append(combined, innerRow...)
		if js.on != nil {
			env.row = combined
			ok, err := boolOf(js.on, env)
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil
			}
		}
		return p.applyJoins(cat, env, step+1, combined, process)
	}
	if js.probe != nil {
		env.row = row
		key := make(index.Key, len(js.probe.keyExprs))
		for i, ke := range js.probe.keyExprs {
			v, err := ke(env)
			if err != nil {
				return false, err
			}
			key[i] = v
		}
		idx := findIndex(inner, js.probe.indexName)
		if idx == nil {
			// Versioned shim: filtered scan re-applying the probe keys.
			var loopErr error
			cont := true
			inner.Scan(func(_ storage.TupleMeta, innerRow types.Row) bool {
				for i, c := range js.probe.cols {
					if !innerRow[c].Equal(key[i]) {
						return true
					}
				}
				cont, loopErr = tryRow(innerRow)
				return cont && loopErr == nil
			})
			return cont, loopErr
		}
		for _, tid := range idx.Lookup(key) {
			meta, innerRow, ok := inner.Get(tid)
			if !ok || meta.Staged {
				continue
			}
			cont, err := tryRow(innerRow)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	var loopErr error
	cont := true
	inner.Scan(func(_ storage.TupleMeta, innerRow types.Row) bool {
		cont, loopErr = tryRow(innerRow)
		return cont && loopErr == nil
	})
	return cont, loopErr
}

// runMaintained serves an aggregate plan from the window's maintained
// accumulators: no scan, one synthetic output row (the single global
// group), then HAVING/projection/limit as usual. The read is O(1)
// regardless of window size — the §4.3 point that window statistics
// live in table metadata, now extended to the aggregates themselves.
func (p *selectPlan) runMaintained(base *storage.Table, params []types.Value) (*Result, error) {
	synthetic := make(types.Row, 0, len(p.maintained))
	for _, m := range p.maintained {
		v, ok := base.MaintainedAggregate(m.fn, m.col)
		if !ok {
			return nil, fmt.Errorf("ee: window %s no longer maintains %s", base.Name(), m.fn)
		}
		synthetic = append(synthetic, v)
	}
	return p.serveMaintainedRow(synthetic, params)
}

// serveMaintainedRow applies HAVING/projection/limit to the single
// global group's accumulator values — shared by live-table maintained
// reads and the snapshot read path's pin-captured values.
func (p *selectPlan) serveMaintainedRow(synthetic types.Row, params []types.Value) (*Result, error) {
	res := &Result{Columns: append([]string(nil), p.colNames...)}
	limit, err := p.resolveLimit(params)
	if err != nil {
		return nil, err
	}
	env := &evalEnv{params: params, row: synthetic}
	if p.agg.having != nil {
		ok, err := boolOf(p.agg.having, env)
		if err != nil {
			return nil, err
		}
		if !ok {
			return res, nil
		}
	}
	if limit == 0 {
		return res, nil
	}
	out := make(types.Row, len(p.items))
	for i, item := range p.items {
		v, err := item(env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	res.Rows = append(res.Rows, out)
	return res, nil
}

// resolveLimit returns the effective LIMIT (-1 = none), reading the
// parameter slot if the statement used LIMIT ?.
func (p *selectPlan) resolveLimit(params []types.Value) (int, error) {
	limit := p.limit
	if p.limitParam >= 0 {
		if p.limitParam >= len(params) {
			return 0, fmt.Errorf("ee: missing parameter %d for LIMIT", p.limitParam+1)
		}
		v := params[p.limitParam]
		if v.Kind() != types.KindInt || v.Int() < 0 {
			return 0, fmt.Errorf("ee: LIMIT parameter must be a non-negative integer, got %s", v)
		}
		limit = int(v.Int())
	}
	return limit, nil
}

// newSink builds the row consumer (projection or aggregation) and the
// finisher that applies sort/limit and produces the Result.
func (p *selectPlan) newSink(params []types.Value) (func(*evalEnv) error, func() (*Result, error), error) {
	res := &Result{Columns: append([]string(nil), p.colNames...)}

	limit, err := p.resolveLimit(params)
	if err != nil {
		return nil, nil, err
	}

	if p.agg == nil {
		type sortable struct {
			row  types.Row
			keys types.Row
		}
		var rows []sortable
		process := func(env *evalEnv) error {
			out := make(types.Row, len(p.items))
			for i, item := range p.items {
				v, err := item(env)
				if err != nil {
					return err
				}
				out[i] = v
			}
			var keys types.Row
			if len(p.orderBy) > 0 {
				keys = make(types.Row, len(p.orderBy))
				for i, ob := range p.orderBy {
					v, err := ob.expr(env)
					if err != nil {
						return err
					}
					keys[i] = v
				}
			}
			rows = append(rows, sortable{row: out, keys: keys})
			// Fast-path limit without ORDER BY: rows arrive in scan
			// order.
			if len(p.orderBy) == 0 && limit >= 0 && len(rows) >= limit {
				return errLimitReached
			}
			return nil
		}
		finish := func() (*Result, error) {
			if len(p.orderBy) > 0 {
				ordErr := sortRows(rows, p.orderBy, func(s *sortable) types.Row { return s.keys })
				if ordErr != nil {
					return nil, ordErr
				}
			}
			if limit >= 0 && len(rows) > limit {
				rows = rows[:limit]
			}
			for _, r := range rows {
				res.Rows = append(res.Rows, r.row)
			}
			return res, nil
		}
		return process, finish, nil
	}

	// Aggregation sink.
	type group struct {
		key  types.Row
		accs []aggregator
	}
	groups := make(map[uint64][]*group)
	var order []*group
	newGroup := func(key types.Row) (*group, error) {
		g := &group{key: key}
		for _, c := range p.agg.calls {
			acc, err := newAggregator(c)
			if err != nil {
				return nil, err
			}
			g.accs = append(g.accs, acc)
		}
		return g, nil
	}
	process := func(env *evalEnv) error {
		key := make(types.Row, len(p.agg.groupBy))
		for i, ge := range p.agg.groupBy {
			v, err := ge(env)
			if err != nil {
				return err
			}
			key[i] = v
		}
		h := index.HashKey(index.Key(key))
		var g *group
		for _, cand := range groups[h] {
			if cand.key.Equal(key) {
				g = cand
				break
			}
		}
		if g == nil {
			var err error
			g, err = newGroup(key)
			if err != nil {
				return err
			}
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		for i, acc := range g.accs {
			var v types.Value
			if p.agg.argExprs[i] == nil {
				v = types.NewInt(1) // COUNT(*): any non-null marker
			} else {
				var err error
				v, err = p.agg.argExprs[i](env)
				if err != nil {
					return err
				}
			}
			if err := acc.add(v); err != nil {
				return err
			}
		}
		return nil
	}
	finish := func() (*Result, error) {
		// Global aggregate over zero rows still yields one group.
		if len(order) == 0 && len(p.agg.groupBy) == 0 {
			g, err := newGroup(types.Row{})
			if err != nil {
				return nil, err
			}
			order = append(order, g)
		}
		type sortable struct {
			row  types.Row
			keys types.Row
		}
		var rows []sortable
		env := &evalEnv{params: params}
		for _, g := range order {
			synthetic := make(types.Row, 0, len(g.key)+len(g.accs))
			synthetic = append(synthetic, g.key...)
			for _, acc := range g.accs {
				synthetic = append(synthetic, acc.result())
			}
			env.row = synthetic
			if p.agg.having != nil {
				ok, err := boolOf(p.agg.having, env)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out := make(types.Row, len(p.items))
			for i, item := range p.items {
				v, err := item(env)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			var keys types.Row
			if len(p.orderBy) > 0 {
				keys = make(types.Row, len(p.orderBy))
				for i, ob := range p.orderBy {
					v, err := ob.expr(env)
					if err != nil {
						return nil, err
					}
					keys[i] = v
				}
			}
			rows = append(rows, sortable{row: out, keys: keys})
		}
		if len(p.orderBy) > 0 {
			if err := sortRows(rows, p.orderBy, func(s *sortable) types.Row { return s.keys }); err != nil {
				return nil, err
			}
		}
		if limit >= 0 && len(rows) > limit {
			rows = rows[:limit]
		}
		for _, r := range rows {
			res.Rows = append(res.Rows, r.row)
		}
		return res, nil
	}
	return process, finish, nil
}

// errLimitReached is an internal sentinel that stops the scan early; it
// is not surfaced to callers.
var errLimitReached = fmt.Errorf("ee: limit reached")

// sortRows sorts by the precomputed keys with the requested directions.
func sortRows[T any](rows []T, keys []orderKey, keyFn func(*T) types.Row) error {
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		if sortErr != nil {
			return false
		}
		ki, kj := keyFn(&rows[i]), keyFn(&rows[j])
		for k := range keys {
			c, err := ki[k].Compare(kj[k])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if keys[k].desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}
