package ee

import (
	"fmt"

	"sstore/internal/sql"
	"sstore/internal/types"
)

// aggregator accumulates one aggregate function over the rows of one
// group.
type aggregator interface {
	add(v types.Value) error
	result() types.Value
}

// newAggregator builds an accumulator for the named aggregate.
func newAggregator(call *sql.FuncCall) (aggregator, error) {
	switch call.Name {
	case "count":
		if call.Distinct {
			return &countDistinctAgg{seen: make(map[uint64][]types.Value)}, nil
		}
		return &countAgg{}, nil
	case "sum":
		return &sumAgg{}, nil
	case "avg":
		return &avgAgg{}, nil
	case "min":
		return &minMaxAgg{min: true}, nil
	case "max":
		return &minMaxAgg{}, nil
	default:
		return nil, fmt.Errorf("ee: unknown aggregate %s", call.Name)
	}
}

// countAgg implements COUNT(x) and COUNT(*). NULLs are skipped for
// COUNT(x); the caller feeds a non-null marker for COUNT(*).
type countAgg struct{ n int64 }

func (a *countAgg) add(v types.Value) error {
	if !v.IsNull() {
		a.n++
	}
	return nil
}
func (a *countAgg) result() types.Value { return types.NewInt(a.n) }

// countDistinctAgg implements COUNT(DISTINCT x) with hash buckets and
// exact-equality chains.
type countDistinctAgg struct {
	seen map[uint64][]types.Value
	n    int64
}

func (a *countDistinctAgg) add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	h := v.Hash()
	for _, prev := range a.seen[h] {
		if prev.Equal(v) {
			return nil
		}
	}
	a.seen[h] = append(a.seen[h], v)
	a.n++
	return nil
}
func (a *countDistinctAgg) result() types.Value { return types.NewInt(a.n) }

// sumAgg sums ints exactly and floats in float64; mixing promotes to
// float.
type sumAgg struct {
	i       int64
	f       float64
	isFloat bool
	any     bool
}

func (a *sumAgg) add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if !v.IsNumeric() {
		return fmt.Errorf("ee: SUM of %s", v.Kind())
	}
	a.any = true
	if v.Kind() == types.KindFloat || a.isFloat {
		if !a.isFloat {
			a.f = float64(a.i)
			a.isFloat = true
		}
		a.f += v.Float()
		return nil
	}
	a.i += v.Int()
	return nil
}

func (a *sumAgg) result() types.Value {
	if !a.any {
		return types.Null
	}
	if a.isFloat {
		return types.NewFloat(a.f)
	}
	return types.NewInt(a.i)
}

// avgAgg averages numerics, always returning a float.
type avgAgg struct {
	sum sumAgg
	n   int64
}

func (a *avgAgg) add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if err := a.sum.add(v); err != nil {
		return fmt.Errorf("ee: AVG: %w", err)
	}
	a.n++
	return nil
}

func (a *avgAgg) result() types.Value {
	if a.n == 0 {
		return types.Null
	}
	return types.NewFloat(a.sum.result().Float() / float64(a.n))
}

// minMaxAgg tracks the extremum under Value.Compare.
type minMaxAgg struct {
	min  bool
	best types.Value
	any  bool
}

func (a *minMaxAgg) add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if !a.any {
		a.best, a.any = v, true
		return nil
	}
	c, err := v.Compare(a.best)
	if err != nil {
		return fmt.Errorf("ee: MIN/MAX: %w", err)
	}
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = v
	}
	return nil
}

func (a *minMaxAgg) result() types.Value {
	if !a.any {
		return types.Null
	}
	return a.best
}

// collectAggregates walks an expression tree appending every aggregate
// FuncCall (deduplicated by pointer) to calls.
func collectAggregates(e sql.Expr, calls *[]*sql.FuncCall) {
	switch e := e.(type) {
	case *sql.FuncCall:
		if e.IsAggregate() {
			*calls = append(*calls, e)
			return
		}
		for _, a := range e.Args {
			collectAggregates(a, calls)
		}
	case *sql.Binary:
		collectAggregates(e.Left, calls)
		collectAggregates(e.Right, calls)
	case *sql.Unary:
		collectAggregates(e.Operand, calls)
	case *sql.IsNull:
		collectAggregates(e.Operand, calls)
	case *sql.InList:
		collectAggregates(e.Operand, calls)
		for _, it := range e.Items {
			collectAggregates(it, calls)
		}
	case *sql.Between:
		collectAggregates(e.Operand, calls)
		collectAggregates(e.Lo, calls)
		collectAggregates(e.Hi, calls)
	case *sql.Like:
		collectAggregates(e.Operand, calls)
		collectAggregates(e.Pattern, calls)
	}
}
