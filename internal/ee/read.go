package ee

import (
	"errors"
	"fmt"
	"sort"

	"sstore/internal/sql"
	"sstore/internal/storage"
	"sstore/internal/types"
)

// This file is the snapshot read path's planner surface: statements
// classified as read-only compile into a ReadPlan that executes
// against any catalog — in particular the per-view resolved catalogs
// the partition engine builds from live tables and copy-on-write
// images — without touching an Executor's partition-confined state.

// ErrNotReadOnly is returned (wrapped) by CompileReadOnly for any
// statement that is not a SELECT; match with errors.Is.
var ErrNotReadOnly = errors.New("ee: statement is not read-only")

// Classify parses a statement and reports its coarse class: a
// read-only SELECT, DDL (CREATE ...), or neither (a write).
func Classify(text string) (readOnly, ddl bool, err error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return false, false, err
	}
	switch stmt.(type) {
	case *sql.Select:
		return true, false, nil
	case *sql.CreateTable, *sql.CreateWindow, *sql.CreateIndex:
		return false, true, nil
	default:
		return false, false, nil
	}
}

// MaintainedRef names one maintained window aggregate a ReadPlan is
// served from.
type MaintainedRef struct {
	Fn  storage.AggFunc
	Col int // column ordinal, or storage.AggStar
}

// ReadPlan is a compiled read-only statement. Plans are immutable
// after compilation and safe for concurrent Run calls.
type ReadPlan struct {
	sel    *selectPlan
	tables []string // referenced tables, lower-case, base first, deduped
	sorted []string // same set in sorted order — the latch acquisition order
}

// CompileReadOnly parses and plans a read-only statement against the
// catalog's current schemas. Non-SELECT statements fail with an error
// matching ErrNotReadOnly.
func CompileReadOnly(text string, cat *storage.Catalog) (*ReadPlan, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	s, ok := stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("%w (%T)", ErrNotReadOnly, stmt)
	}
	plan, err := compileSelect(s, cat)
	if err != nil {
		return nil, err
	}
	rp := &ReadPlan{sel: plan}
	seen := map[string]bool{}
	add := func(name string) {
		key := lowerName(name)
		if !seen[key] {
			seen[key] = true
			rp.tables = append(rp.tables, key)
		}
	}
	add(plan.baseTable)
	for _, j := range plan.joins {
		add(j.table)
	}
	rp.sorted = append([]string(nil), rp.tables...)
	sort.Strings(rp.sorted)
	return rp, nil
}

// Tables returns the referenced table names (lower-case, base table
// first).
func (p *ReadPlan) Tables() []string { return p.tables }

// TablesSorted returns the same names in sorted order. Callers that
// acquire per-table read latches while resolving a view MUST do so in
// this order: concurrent readers of overlapping table sets would
// otherwise form an acquisition cycle with the writer latches queued
// between them (an RWMutex with a pending writer blocks new readers).
func (p *ReadPlan) TablesSorted() []string { return p.sorted }

// Maintained reports whether the plan is served entirely from
// maintained window aggregates (detectMaintained matched at compile
// time), returning the window's name and the aggregate references in
// accumulator order.
func (p *ReadPlan) Maintained() (table string, refs []MaintainedRef, ok bool) {
	if p.sel.maintained == nil {
		return "", nil, false
	}
	refs = make([]MaintainedRef, len(p.sel.maintained))
	for i, m := range p.sel.maintained {
		refs[i] = MaintainedRef{Fn: m.fn, Col: m.col}
	}
	return lowerName(p.sel.baseTable), refs, true
}

// Run executes the plan against cat — typically a per-view catalog of
// resolved tables. Reads run with no owning stored procedure, so
// private windows are rejected like any ad-hoc access (§3.2.2). Plans
// served from maintained aggregates must use RunMaintained instead:
// reading accumulators off a shared table is not latch-safe.
func (p *ReadPlan) Run(cat *storage.Catalog, params []types.Value) (*Result, error) {
	if p.sel.maintained != nil {
		return nil, fmt.Errorf("ee: maintained-aggregate plan requires RunMaintained")
	}
	for _, name := range p.tables {
		t, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		if t.Kind() == storage.KindWindow && t.OwnerSP != "" {
			return nil, fmt.Errorf("ee: window %s is private to stored procedure %s (accessed from read view)", name, t.OwnerSP)
		}
	}
	return p.sel.run(cat, params)
}

// RunMaintained serves a maintained-aggregate plan from captured
// accumulator values, one per Maintained() reference in order; the
// caller supplies the values a pinned view captured at its commit
// boundary.
func (p *ReadPlan) RunMaintained(vals []types.Value, params []types.Value) (*Result, error) {
	if p.sel.maintained == nil {
		return nil, fmt.Errorf("ee: plan is not served from maintained aggregates")
	}
	if len(vals) != len(p.sel.maintained) {
		return nil, fmt.Errorf("ee: maintained plan wants %d values, got %d", len(p.sel.maintained), len(vals))
	}
	return p.sel.serveMaintainedRow(types.Row(vals), params)
}
