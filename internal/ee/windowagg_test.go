package ee

import (
	"fmt"
	"testing"

	"sstore/internal/storage"
	"sstore/internal/types"
)

// maintainTestAggs registers the standard aggregate set over column v
// of window w and drops cached plans, as pe.MaintainWindowAggregate
// does.
func maintainTestAggs(t *testing.T, e *Executor, table string) {
	t.Helper()
	tbl, err := e.Catalog().Get(table)
	if err != nil {
		t.Fatal(err)
	}
	ord, ok := tbl.Schema().Index("v")
	if !ok {
		t.Fatalf("no column v in %s", table)
	}
	for _, fn := range []storage.AggFunc{storage.AggCount, storage.AggSum, storage.AggAvg, storage.AggMin, storage.AggMax} {
		if err := tbl.MaintainAggregate(fn, ord); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.MaintainAggregate(storage.AggCount, storage.AggStar); err != nil {
		t.Fatal(err)
	}
	e.InvalidatePlans()
}

// TestMaintainedAggregateSelect: an aggregate query over a window with
// maintained aggregates plans as a stored-value read and returns the
// same results as the scanning plan.
func TestMaintainedAggregateSelect(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE WINDOW w (v BIGINT) SIZE 4 SLIDE 2")
	for _, v := range []int64{5, 1, 9, 2, 7, 3} {
		mustExec(t, e, fmt.Sprintf("INSERT INTO w VALUES (%d)", v))
	}
	const q = "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM w"
	scan := mustExec(t, e, q)

	maintainTestAggs(t, e, "w")
	p, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.sel.maintained == nil {
		t.Fatal("plan did not pick the maintained aggregates")
	}
	stored := mustExec(t, e, q)
	if len(stored.Rows) != 1 || len(scan.Rows) != 1 {
		t.Fatalf("rows: stored %v, scan %v", stored.Rows, scan.Rows)
	}
	for i := range scan.Rows[0] {
		if !stored.Rows[0][i].Equal(scan.Rows[0][i]) {
			t.Errorf("col %d (%s): stored %v, scan %v", i, stored.Columns[i], stored.Rows[0][i], scan.Rows[0][i])
		}
	}

	// The stored values track further slides.
	for _, v := range []int64{100, -6} {
		mustExec(t, e, fmt.Sprintf("INSERT INTO w VALUES (%d)", v))
	}
	stored = mustExec(t, e, q)
	// A residual filter forces the scanning plan for reference.
	ref := mustExec(t, e, "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM w WHERE v > -999999")
	for i := range ref.Rows[0] {
		if !stored.Rows[0][i].Equal(ref.Rows[0][i]) {
			t.Errorf("after slide, col %d: stored %v, scan %v", i, stored.Rows[0][i], ref.Rows[0][i])
		}
	}
}

// TestMaintainedAggregateExpressions: HAVING and expressions over the
// aggregates still work on the stored-value path.
func TestMaintainedAggregateExpressions(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE WINDOW w (v BIGINT) SIZE 2 SLIDE 1")
	maintainTestAggs(t, e, "w")
	for _, v := range []int64{10, 20, 30} {
		mustExec(t, e, fmt.Sprintf("INSERT INTO w VALUES (%d)", v))
	}
	res := mustExec(t, e, "SELECT SUM(v) + COUNT(*) FROM w")
	if got := res.Rows[0][0].Int(); got != 52 { // 20+30 active, +2
		t.Errorf("SUM+COUNT = %d, want 52", got)
	}
	res = mustExec(t, e, "SELECT SUM(v) FROM w HAVING SUM(v) > 1000")
	if len(res.Rows) != 0 {
		t.Errorf("HAVING should filter the group, got %v", res.Rows)
	}
}

// TestMaintainedAggregateNotUsedWhenIneligible: filters, grouping, and
// unregistered calls must keep the scanning plan.
func TestMaintainedAggregateNotUsedWhenIneligible(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE WINDOW w (k BIGINT, v BIGINT) SIZE 4 SLIDE 2")
	tbl, _ := e.Catalog().Get("w")
	if err := tbl.MaintainAggregate(storage.AggSum, 1); err != nil {
		t.Fatal(err)
	}
	e.InvalidatePlans()
	for i := int64(0); i < 6; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO w VALUES (%d, %d)", i%2, i*10))
	}
	for _, q := range []string{
		"SELECT SUM(v) FROM w WHERE k = 1",
		"SELECT k, SUM(v) FROM w GROUP BY k",
		"SELECT SUM(k) FROM w",            // not registered
		"SELECT COUNT(DISTINCT v) FROM w", // not maintainable
	} {
		p, err := e.Prepare(q)
		if err != nil {
			t.Fatalf("Prepare(%q): %v", q, err)
		}
		if p.sel.maintained != nil {
			t.Errorf("%q wrongly planned as maintained", q)
		}
	}
	// And the filtered query still answers correctly.
	res := mustExec(t, e, "SELECT SUM(v) FROM w WHERE k = 1")
	var want int64
	tbl.Scan(func(_ storage.TupleMeta, r types.Row) bool {
		if r[0].Int() == 1 {
			want += r[1].Int()
		}
		return true
	})
	if res.Rows[0][0].Int() != want {
		t.Errorf("filtered SUM = %v, want %d", res.Rows[0][0], want)
	}
}

// TestMaintainedAggregateAbortThroughExecutor: an EE-level abort of a
// TE that slid a maintained window restores stored aggregates exactly.
func TestMaintainedAggregateAbortThroughExecutor(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE WINDOW w (v BIGINT) SIZE 3 SLIDE 1")
	maintainTestAggs(t, e, "w")
	for _, v := range []int64{4, 8, 15} {
		mustExec(t, e, fmt.Sprintf("INSERT INTO w VALUES (%d)", v))
	}
	const q = "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM w"
	before := mustExec(t, e, q)

	tx := &recordingTxn{}
	ctx := &ExecCtx{Txn: tx}
	if _, err := e.Execute("INSERT INTO w VALUES (16)", nil, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("INSERT INTO w VALUES (23)", nil, ctx); err != nil {
		t.Fatal(err)
	}
	tx.rollback(t)
	after := mustExec(t, e, q)
	for i := range before.Rows[0] {
		if !after.Rows[0][i].Equal(before.Rows[0][i]) {
			t.Errorf("col %d (%s): %v after abort, want %v", i, before.Columns[i], after.Rows[0][i], before.Rows[0][i])
		}
	}
}

// recordingTxn is a minimal TxnState for executor-level abort tests:
// physical undo in reverse order plus window marks, mirroring txn.Txn
// without importing it (ee cannot depend on txn).
type recordingTxn struct {
	ops   []func() error
	marks []func()
}

func (r *recordingTxn) RecordInsert(t *storage.Table, tid uint64) {
	r.ops = append(r.ops, func() error { _, err := t.Delete(tid, nil); return err })
}

func (r *recordingTxn) RecordDelete(t *storage.Table, meta storage.TupleMeta, row types.Row) {
	row = row.Clone()
	r.ops = append(r.ops, func() error { return t.RestoreRow(meta, row) })
}

func (r *recordingTxn) RecordStage(t *storage.Table, tid uint64, prev bool) {
	r.ops = append(r.ops, func() error { t.RestoreStaged(tid, prev); return nil })
}

func (r *recordingTxn) MarkWindow(t *storage.Table) {
	if len(r.marks) == 0 { // one window per test; capture once, pre-TE
		mark := t.Window().Mark()
		r.marks = append(r.marks, func() { t.Window().Reset(mark) })
	}
}

func (r *recordingTxn) rollback(t *testing.T) {
	t.Helper()
	for i := len(r.ops) - 1; i >= 0; i-- {
		if err := r.ops[i](); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range r.marks {
		m()
	}
}
