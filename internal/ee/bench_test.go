package ee

import (
	"fmt"
	"testing"

	"sstore/internal/storage"
	"sstore/internal/types"
)

func benchExecutor(b *testing.B) *Executor {
	b.Helper()
	e := NewExecutor(storage.NewCatalog())
	ctx := &ExecCtx{}
	stmts := []string{
		"CREATE TABLE bt (id BIGINT PRIMARY KEY, v BIGINT)",
	}
	for _, s := range stmts {
		if _, err := e.Execute(s, nil, ctx); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 10000; i++ {
		if _, err := e.Execute("INSERT INTO bt VALUES (?, ?)",
			[]types.Value{types.NewInt(int64(i)), types.NewInt(int64(i * 3))}, ctx); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

func BenchmarkExecutorIndexProbe(b *testing.B) {
	e := benchExecutor(b)
	ctx := &ExecCtx{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute("SELECT v FROM bt WHERE id = ?",
			[]types.Value{types.NewInt(int64(i % 10000))}, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorInsert(b *testing.B) {
	e := NewExecutor(storage.NewCatalog())
	ctx := &ExecCtx{}
	if _, err := e.Execute("CREATE TABLE ins (v BIGINT)", nil, ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute("INSERT INTO ins VALUES (?)",
			[]types.Value{types.NewInt(int64(i))}, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorAggregate(b *testing.B) {
	e := benchExecutor(b)
	ctx := &ExecCtx{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute("SELECT COUNT(*), SUM(v) FROM bt WHERE v % 2 = 0", nil, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowSlideInsert(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			e := NewExecutor(storage.NewCatalog())
			ctx := &ExecCtx{}
			ddl := fmt.Sprintf("CREATE WINDOW bw (v BIGINT) SIZE %d SLIDE %d", size, size/10+1)
			if _, err := e.Execute(ddl, nil, ctx); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Execute("INSERT INTO bw VALUES (?)",
					[]types.Value{types.NewInt(int64(i))}, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEETriggerChain(b *testing.B) {
	e := NewExecutor(storage.NewCatalog())
	ctx := &ExecCtx{}
	for i := 1; i <= 4; i++ {
		if _, err := e.Execute(fmt.Sprintf("CREATE STREAM bs%d (v BIGINT)", i), nil, ctx); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := e.Execute("CREATE TABLE bsink (v BIGINT)", nil, ctx); err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		target := fmt.Sprintf("bs%d", i+1)
		if i == 3 {
			target = "bsink"
		}
		if err := e.AddTrigger(&Trigger{
			Table: fmt.Sprintf("bs%d", i),
			Stmts: []string{fmt.Sprintf("INSERT INTO %s SELECT v FROM bs%d", target, i)},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &ExecCtx{BatchID: int64(i + 1)}
		if _, err := e.Execute("INSERT INTO bs1 VALUES (?)",
			[]types.Value{types.NewInt(int64(i))}, c); err != nil {
			b.Fatal(err)
		}
	}
}
