package ee

import (
	"fmt"
	"sync"

	"sstore/internal/index"
	"sstore/internal/sql"
	"sstore/internal/storage"
	"sstore/internal/types"
)

// maxTriggerDepth bounds EE-trigger cascades to catch accidental
// cycles; workflows in practice are shallow DAGs.
const maxTriggerDepth = 64

// Result is the outcome of executing one statement.
type Result struct {
	// Columns names the result columns of a SELECT.
	Columns []string
	// Rows holds SELECT output rows.
	Rows []types.Row
	// RowsAffected counts rows written by INSERT/UPDATE/DELETE.
	RowsAffected int
}

// TxnState is what the executor needs from the enclosing transaction:
// physical undo recording plus one-shot window-state capture so aborts
// restore window bookkeeping (§2.4).
type TxnState interface {
	storage.Undo
	// MarkWindow captures the window's scalar state the first time
	// the transaction touches it.
	MarkWindow(t *storage.Table)
}

// StreamAppend records that a statement appended an atomic batch to a
// stream table; the partition engine turns these into PE-trigger
// invocations at commit (§3.2.3).
type StreamAppend struct {
	Table   string
	BatchID int64
}

// ExecCtx is the per-transaction-execution context threaded through
// statement execution.
type ExecCtx struct {
	// SP is the executing stored procedure's name; empty for ad-hoc
	// OLTP statements. Window tables may only be touched by their
	// owning SP.
	SP string
	// BatchID is the atomic batch being processed; inserts into
	// stream tables tag tuples with it.
	BatchID int64
	// Txn records undo information; nil disables rollback support
	// (used only by tests and recovery internals).
	Txn TxnState
	// Allowed, when non-nil, is the enclosing stored procedure's
	// declared access set: every statement's compiled access must be
	// covered by it or the statement fails before touching any table.
	// The partition engine sets it for procedures with declared
	// accesses (in both serial and parallel execution, so behavior
	// does not depend on the worker count); nil disables enforcement.
	Allowed *AccessSet
	// Appends accumulates stream appends for PE-trigger dispatch.
	Appends []StreamAppend
	depth   int
}

func (ctx *ExecCtx) undo() storage.Undo {
	if ctx.Txn == nil {
		return nil
	}
	return ctx.Txn
}

// Reset re-arms a recycled context for a new transaction execution,
// keeping the appends buffer's capacity. The partition engine pools
// contexts per partition so steady-state TEs allocate none.
func (ctx *ExecCtx) Reset(sp string, batchID int64, tx TxnState, allowed *AccessSet) {
	*ctx = ExecCtx{SP: sp, BatchID: batchID, Txn: tx, Allowed: allowed, Appends: ctx.Appends[:0]}
}

// Trigger is an EE trigger (§3.2.3): SQL statements attached to a
// stream or window table, executed in the same transaction as the
// insert that fired them. For stream tables the trigger fires on every
// atomic-batch insert; for window tables it fires when an insert causes
// the window to slide. Statements receive the current batch ID as
// parameter ?1.
type Trigger struct {
	Table string
	Stmts []string
}

// Executor runs SQL statements against one partition's catalog.
// Statement execution runs on the partition's goroutine or, for
// non-conflicting transactions, on its worker pool; the plan cache is
// the one piece of state those goroutines share, guarded by mu.
// Triggers and peConsumed are registered at setup time and read-only
// afterwards.
type Executor struct {
	cat *storage.Catalog
	// mu guards plans: worker goroutines executing a parallel wave
	// prepare statements concurrently. Compilation happens outside
	// the lock; the critical sections are map operations only.
	mu         sync.RWMutex
	plans      map[string]*prepared
	triggers   map[string][]*Trigger
	peConsumed map[string]bool // streams consumed by PE triggers: no EE-level GC
}

// NewExecutor creates an executor over a catalog.
func NewExecutor(cat *storage.Catalog) *Executor {
	return &Executor{
		cat:        cat,
		plans:      make(map[string]*prepared),
		triggers:   make(map[string][]*Trigger),
		peConsumed: make(map[string]bool),
	}
}

// Catalog returns the underlying catalog.
func (e *Executor) Catalog() *storage.Catalog { return e.cat }

// AddTrigger attaches an EE trigger to its table. Windows accept EE
// triggers; streams accept EE triggers; plain tables do not (§3.2.3).
func (e *Executor) AddTrigger(tr *Trigger) error {
	t, err := e.cat.Get(tr.Table)
	if err != nil {
		return err
	}
	if t.Kind() == storage.KindTable {
		return fmt.Errorf("ee: EE triggers attach to streams or windows, not table %s", tr.Table)
	}
	// Validate the statements parse now; they are planned lazily
	// because downstream tables may not exist yet.
	for _, s := range tr.Stmts {
		if _, err := sql.Parse(s); err != nil {
			return fmt.Errorf("ee: trigger on %s: %w", tr.Table, err)
		}
	}
	key := lowerName(tr.Table)
	e.triggers[key] = append(e.triggers[key], tr)
	return nil
}

// SetPEConsumed marks a stream as consumed by a PE trigger, disabling
// the EE layer's automatic batch GC for it (the partition engine
// garbage-collects after the downstream TE commits).
func (e *Executor) SetPEConsumed(table string) {
	e.peConsumed[lowerName(table)] = true
}

// InvalidatePlans drops the plan cache; call after DDL.
func (e *Executor) InvalidatePlans() {
	e.mu.Lock()
	e.plans = make(map[string]*prepared)
	e.mu.Unlock()
}

func lowerName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// prepared is a compiled statement.
type prepared struct {
	sel *selectPlan
	ins *insertPlan
	upd *updatePlan
	del *deletePlan
	ddl sql.Statement
	// access is the statement's table-granularity read/write
	// footprint, emitted at compile time; nil for DDL (unbounded).
	access *AccessSet
}

type insertPlan struct {
	table    string
	colMap   []int // target ordinal for each value position
	rows     [][]compiledExpr
	query    *selectPlan
	querySel *sql.Select
}

type updatePlan struct {
	table  string
	probe  *indexProbe
	filter compiledExpr
	sets   []struct {
		ord  int
		expr compiledExpr
	}
}

type deletePlan struct {
	table  string
	probe  *indexProbe
	filter compiledExpr
}

// Prepare parses and plans a statement, caching by text. Safe for
// concurrent use: on a cache miss the statement compiles outside the
// lock and the first finished compilation wins.
func (e *Executor) Prepare(text string) (*prepared, error) {
	e.mu.RLock()
	p, ok := e.plans[text]
	e.mu.RUnlock()
	if ok {
		return p, nil
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	p, err = e.compile(stmt)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prev, ok := e.plans[text]; ok {
		e.mu.Unlock()
		return prev, nil
	}
	e.plans[text] = p
	e.mu.Unlock()
	return p, nil
}

// StatementAccess compiles a statement (caching its plan) and returns
// its table-granularity access set; nil for DDL, whose footprint the
// planner does not bound.
func (e *Executor) StatementAccess(text string) (*AccessSet, error) {
	p, err := e.Prepare(text)
	if err != nil {
		return nil, err
	}
	return p.access, nil
}

// accessSet builds a statement's access set, reclassifying window
// tables as writes (maintained-aggregate reads mutate lazily; see
// AccessSet).
func (e *Executor) accessSet(readTables, writeTables []string) *AccessSet {
	var reads, writes []string
	for _, n := range readTables {
		if t, err := e.cat.Get(n); err == nil && t.Kind() == storage.KindWindow {
			writes = append(writes, n)
		} else {
			reads = append(reads, n)
		}
	}
	writes = append(writes, writeTables...)
	return NewAccessSet(reads, writes)
}

// selTables lists every table a select plan touches.
func selTables(p *selectPlan) []string {
	tbls := []string{p.baseTable}
	for _, j := range p.joins {
		tbls = append(tbls, j.table)
	}
	return tbls
}

func (e *Executor) compile(stmt sql.Statement) (*prepared, error) {
	switch s := stmt.(type) {
	case *sql.Select:
		plan, err := compileSelect(s, e.cat)
		if err != nil {
			return nil, err
		}
		return &prepared{sel: plan, access: e.accessSet(selTables(plan), nil)}, nil
	case *sql.Insert:
		plan, err := e.compileInsert(s)
		if err != nil {
			return nil, err
		}
		var queryReads []string
		if plan.query != nil {
			queryReads = selTables(plan.query)
		}
		return &prepared{ins: plan, access: e.accessSet(queryReads, []string{plan.table})}, nil
	case *sql.Update:
		plan, err := e.compileUpdate(s)
		if err != nil {
			return nil, err
		}
		return &prepared{upd: plan, access: e.accessSet(nil, []string{plan.table})}, nil
	case *sql.Delete:
		plan, err := e.compileDelete(s)
		if err != nil {
			return nil, err
		}
		return &prepared{del: plan, access: e.accessSet(nil, []string{plan.table})}, nil
	case *sql.CreateTable, *sql.CreateWindow, *sql.CreateIndex:
		// DDL's footprint is unbounded at plan time: access stays nil,
		// which Check rejects for declared procedures.
		return &prepared{ddl: stmt}, nil
	default:
		return nil, fmt.Errorf("ee: unsupported statement %T", stmt)
	}
}

func (e *Executor) compileInsert(s *sql.Insert) (*insertPlan, error) {
	t, err := e.cat.Get(s.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	plan := &insertPlan{table: s.Table}
	if len(s.Columns) > 0 {
		plan.colMap = make([]int, len(s.Columns))
		for i, c := range s.Columns {
			ord, ok := schema.Index(c)
			if !ok {
				return nil, fmt.Errorf("ee: table %s has no column %s", s.Table, c)
			}
			plan.colMap[i] = ord
		}
	}
	width := schema.Len()
	if plan.colMap != nil {
		width = len(plan.colMap)
	}
	if s.Query != nil {
		qp, err := compileSelect(s.Query, e.cat)
		if err != nil {
			return nil, err
		}
		if len(qp.colNames) != width {
			return nil, fmt.Errorf("ee: INSERT SELECT arity %d, target %d", len(qp.colNames), width)
		}
		plan.query = qp
		plan.querySel = s.Query
		return plan, nil
	}
	for _, row := range s.Rows {
		if len(row) != width {
			return nil, fmt.Errorf("ee: INSERT row arity %d, target %d", len(row), width)
		}
		var compiled []compiledExpr
		for _, ex := range row {
			ce, err := compileExpr(ex, newScope(), nil)
			if err != nil {
				return nil, err
			}
			compiled = append(compiled, ce)
		}
		plan.rows = append(plan.rows, compiled)
	}
	return plan, nil
}

func (e *Executor) compileUpdate(s *sql.Update) (*updatePlan, error) {
	t, err := e.cat.Get(s.Table)
	if err != nil {
		return nil, err
	}
	sc := newScope()
	sc.addTable(lowerName(s.Table), t.Schema())
	plan := &updatePlan{table: s.Table}
	if s.Where != nil {
		probe, residual, err := extractIndexProbe(s.Where, lowerName(s.Table), t, sc)
		if err != nil {
			return nil, err
		}
		plan.probe = probe
		if residual != nil {
			f, err := compileExpr(residual, sc, nil)
			if err != nil {
				return nil, err
			}
			plan.filter = f
		}
	}
	for _, set := range s.Set {
		ord, ok := t.Schema().Index(set.Column)
		if !ok {
			return nil, fmt.Errorf("ee: table %s has no column %s", s.Table, set.Column)
		}
		ce, err := compileExpr(set.Value, sc, nil)
		if err != nil {
			return nil, err
		}
		plan.sets = append(plan.sets, struct {
			ord  int
			expr compiledExpr
		}{ord, ce})
	}
	return plan, nil
}

func (e *Executor) compileDelete(s *sql.Delete) (*deletePlan, error) {
	t, err := e.cat.Get(s.Table)
	if err != nil {
		return nil, err
	}
	sc := newScope()
	sc.addTable(lowerName(s.Table), t.Schema())
	plan := &deletePlan{table: s.Table}
	if s.Where != nil {
		probe, residual, err := extractIndexProbe(s.Where, lowerName(s.Table), t, sc)
		if err != nil {
			return nil, err
		}
		plan.probe = probe
		if residual != nil {
			f, err := compileExpr(residual, sc, nil)
			if err != nil {
				return nil, err
			}
			plan.filter = f
		}
	}
	return plan, nil
}

// Execute runs one SQL statement with parameters under the given
// execution context.
func (e *Executor) Execute(text string, params []types.Value, ctx *ExecCtx) (*Result, error) {
	p, err := e.Prepare(text)
	if err != nil {
		return nil, err
	}
	return e.run(p, params, ctx)
}

func (e *Executor) run(p *prepared, params []types.Value, ctx *ExecCtx) (*Result, error) {
	// Declared-access enforcement: every statement — the body's and any
	// EE trigger's, which recurses through Execute with the same ctx —
	// must stay inside the procedure's declared footprint. The check
	// runs before the statement touches any table, so a wrong
	// declaration aborts the TE instead of racing a concurrent one.
	if ctx.Allowed != nil {
		if err := ctx.Allowed.Check(p.access); err != nil {
			return nil, err
		}
	}
	switch {
	case p.sel != nil:
		if err := e.checkWindowAccess(p.sel.baseTable, ctx); err != nil {
			return nil, err
		}
		for _, j := range p.sel.joins {
			if err := e.checkWindowAccess(j.table, ctx); err != nil {
				return nil, err
			}
		}
		return p.sel.run(e.cat, params)
	case p.ins != nil:
		return e.runInsert(p.ins, params, ctx)
	case p.upd != nil:
		return e.runUpdate(p.upd, params, ctx)
	case p.del != nil:
		return e.runDelete(p.del, params, ctx)
	case p.ddl != nil:
		return e.runDDL(p.ddl, ctx)
	default:
		return nil, fmt.Errorf("ee: empty plan")
	}
}

// checkWindowAccess enforces the paper's window scoping rule (§3.2.2):
// a window table is only visible to transaction executions of its
// owning stored procedure.
func (e *Executor) checkWindowAccess(table string, ctx *ExecCtx) error {
	t, err := e.cat.Get(table)
	if err != nil {
		return err
	}
	if t.Kind() == storage.KindWindow && t.OwnerSP != "" && t.OwnerSP != ctx.SP {
		return fmt.Errorf("ee: window %s is private to stored procedure %s (accessed from %q)", table, t.OwnerSP, ctx.SP)
	}
	return nil
}

func (e *Executor) runInsert(p *insertPlan, params []types.Value, ctx *ExecCtx) (*Result, error) {
	if err := e.checkWindowAccess(p.table, ctx); err != nil {
		return nil, err
	}
	t, err := e.cat.Get(p.table)
	if err != nil {
		return nil, err
	}
	var rows []types.Row
	if p.query != nil {
		qres, err := p.query.run(e.cat, params)
		if err != nil {
			return nil, err
		}
		rows = qres.Rows
	} else {
		env := &evalEnv{params: params}
		for _, compiled := range p.rows {
			row := make(types.Row, len(compiled))
			for i, ce := range compiled {
				v, err := ce(env)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			rows = append(rows, row)
		}
	}
	if t.Kind() == storage.KindWindow && ctx.Txn != nil {
		ctx.Txn.MarkWindow(t)
	}
	slid := false
	for _, row := range rows {
		full := row
		if p.colMap != nil {
			full = make(types.Row, t.Schema().Len())
			for i, ord := range p.colMap {
				full[ord] = row[i]
			}
		}
		res, err := t.Insert(full, ctx.BatchID, ctx.undo())
		if err != nil {
			return nil, err
		}
		slid = slid || res.Slid
	}
	result := &Result{RowsAffected: len(rows)}
	if len(rows) == 0 {
		return result, nil
	}
	switch t.Kind() {
	case storage.KindStream:
		ctx.Appends = append(ctx.Appends, StreamAppend{Table: lowerName(p.table), BatchID: ctx.BatchID})
		if err := e.fireTriggers(t, ctx); err != nil {
			return nil, err
		}
	case storage.KindWindow:
		if slid {
			if err := e.fireTriggers(t, ctx); err != nil {
				return nil, err
			}
		}
	}
	return result, nil
}

// fireTriggers runs the EE triggers attached to a table, then
// garbage-collects the consumed batch for streams not owned by a PE
// trigger (§3.2.3).
func (e *Executor) fireTriggers(t *storage.Table, ctx *ExecCtx) error {
	key := lowerName(t.Name())
	trs := e.triggers[key]
	if len(trs) > 0 {
		if ctx.depth >= maxTriggerDepth {
			return fmt.Errorf("ee: trigger cascade deeper than %d on %s", maxTriggerDepth, t.Name())
		}
		ctx.depth++
		batchParam := []types.Value{types.NewInt(ctx.BatchID)}
		for _, tr := range trs {
			for _, stmt := range tr.Stmts {
				if _, err := e.Execute(stmt, batchParam, ctx); err != nil {
					ctx.depth--
					return fmt.Errorf("ee: trigger on %s: %w", t.Name(), err)
				}
			}
		}
		ctx.depth--
	}
	if t.Kind() == storage.KindStream && len(trs) > 0 && !e.peConsumed[key] {
		storage.DeleteBatch(t, ctx.BatchID, ctx.undo())
	}
	return nil
}

func (e *Executor) runUpdate(p *updatePlan, params []types.Value, ctx *ExecCtx) (*Result, error) {
	if err := e.checkWindowAccess(p.table, ctx); err != nil {
		return nil, err
	}
	t, err := e.cat.Get(p.table)
	if err != nil {
		return nil, err
	}
	if t.Kind() == storage.KindWindow && ctx.Txn != nil {
		ctx.Txn.MarkWindow(t)
	}
	tids, err := e.matchTIDs(t, p.probe, p.filter, params)
	if err != nil {
		return nil, err
	}
	env := &evalEnv{params: params}
	for _, tid := range tids {
		_, old, ok := t.Get(tid)
		if !ok {
			continue
		}
		env.row = old
		newRow := old.Clone()
		for _, set := range p.sets {
			v, err := set.expr(env)
			if err != nil {
				return nil, err
			}
			newRow[set.ord] = v
		}
		if err := t.Update(tid, newRow, ctx.undo()); err != nil {
			return nil, err
		}
	}
	return &Result{RowsAffected: len(tids)}, nil
}

func (e *Executor) runDelete(p *deletePlan, params []types.Value, ctx *ExecCtx) (*Result, error) {
	if err := e.checkWindowAccess(p.table, ctx); err != nil {
		return nil, err
	}
	t, err := e.cat.Get(p.table)
	if err != nil {
		return nil, err
	}
	if t.Kind() == storage.KindWindow && ctx.Txn != nil {
		ctx.Txn.MarkWindow(t)
	}
	tids, err := e.matchTIDs(t, p.probe, p.filter, params)
	if err != nil {
		return nil, err
	}
	for _, tid := range tids {
		if _, err := t.Delete(tid, ctx.undo()); err != nil {
			return nil, err
		}
	}
	return &Result{RowsAffected: len(tids)}, nil
}

// matchTIDs evaluates the access path of UPDATE/DELETE, returning the
// matching tuple IDs before any mutation happens.
func (e *Executor) matchTIDs(t *storage.Table, probe *indexProbe, filter compiledExpr, params []types.Value) ([]uint64, error) {
	env := &evalEnv{params: params}
	var tids []uint64
	consider := func(meta storage.TupleMeta, row types.Row) (bool, error) {
		if meta.Staged {
			return false, nil
		}
		if filter != nil {
			env.row = row
			ok, err := boolOf(filter, env)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}
	if probe != nil {
		key := make(index.Key, len(probe.keyExprs))
		for i, ke := range probe.keyExprs {
			v, err := ke(env)
			if err != nil {
				return nil, err
			}
			key[i] = v
		}
		idx := findIndex(t, probe.indexName)
		if idx == nil {
			return nil, fmt.Errorf("ee: plan references missing index %s", probe.indexName)
		}
		for _, tid := range idx.Lookup(key) {
			meta, row, ok := t.Get(tid)
			if !ok {
				continue
			}
			match, err := consider(meta, row)
			if err != nil {
				return nil, err
			}
			if match {
				tids = append(tids, tid)
			}
		}
		return tids, nil
	}
	var scanErr error
	t.Scan(func(meta storage.TupleMeta, row types.Row) bool {
		match, err := consider(meta, row)
		if err != nil {
			scanErr = err
			return false
		}
		if match {
			tids = append(tids, meta.TID)
		}
		return true
	})
	return tids, scanErr
}

// runDDL executes CREATE TABLE/STREAM/WINDOW/INDEX. DDL is not
// transactional; it is intended for setup time.
func (e *Executor) runDDL(stmt sql.Statement, ctx *ExecCtx) (*Result, error) {
	defer e.InvalidatePlans()
	switch s := stmt.(type) {
	case *sql.CreateTable:
		cols := make([]types.Column, len(s.Columns))
		var pk []int
		for i, c := range s.Columns {
			cols[i] = types.Column{Name: c.Name, Kind: c.Kind}
			if c.PrimaryKey {
				pk = append(pk, i)
			}
		}
		schema, err := types.NewSchema(cols...)
		if err != nil {
			return nil, err
		}
		kind := storage.KindTable
		if s.Stream {
			kind = storage.KindStream
		}
		var t *storage.Table
		if s.Archive {
			site, err := e.cat.ArchiveSite()
			if err != nil {
				return nil, err
			}
			if t, err = storage.NewArchiveTable(s.Name, schema, site); err != nil {
				return nil, err
			}
		} else {
			t = storage.NewTable(s.Name, kind, schema)
		}
		if len(pk) > 0 {
			if err := t.AddIndex(index.NewHashIndex(s.Name+"_pk", pk, true)); err != nil {
				return nil, err
			}
		}
		if err := e.cat.Create(t); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CreateWindow:
		cols := make([]types.Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = types.Column{Name: c.Name, Kind: c.Kind}
		}
		schema, err := types.NewSchema(cols...)
		if err != nil {
			return nil, err
		}
		spec := storage.WindowSpec{Size: s.Size, Slide: s.Slide}
		if s.TimeColumn != "" {
			ord, ok := schema.Index(s.TimeColumn)
			if !ok {
				return nil, fmt.Errorf("ee: window %s: no column %s", s.Name, s.TimeColumn)
			}
			spec.TimeBased = true
			spec.TimeColumn = ord
		}
		t, err := storage.NewWindowTable(s.Name, schema, spec)
		if err != nil {
			return nil, err
		}
		t.OwnerSP = ctx.SP
		if err := e.cat.Create(t); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CreateIndex:
		t, err := e.cat.Get(s.Table)
		if err != nil {
			return nil, err
		}
		cols := make([]int, len(s.Columns))
		for i, c := range s.Columns {
			ord, ok := t.Schema().Index(c)
			if !ok {
				return nil, fmt.Errorf("ee: table %s has no column %s", s.Table, c)
			}
			cols[i] = ord
		}
		var idx index.Index
		if s.BTree {
			idx = index.NewBTree(s.Name, cols, s.Unique)
		} else {
			idx = index.NewHashIndex(s.Name, cols, s.Unique)
		}
		return &Result{}, t.AddIndex(idx)
	default:
		return nil, fmt.Errorf("ee: unsupported DDL %T", stmt)
	}
}
