package ee

import (
	"testing"
	"testing/quick"

	"sstore/internal/types"
)

func TestInListBetweenLike(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (v BIGINT, name VARCHAR)")
	mustExec(t, e, `INSERT INTO t VALUES
		(1, 'alice'), (2, 'bob'), (3, 'carol'), (4, 'alan'), (5, 'bo')`)
	tests := []struct {
		where string
		want  int
	}{
		{"v IN (1, 3, 5)", 3},
		{"v NOT IN (1, 3, 5)", 2},
		{"v IN (99)", 0},
		{"v IN (?, ?)", -1}, // filled below
		{"v BETWEEN 2 AND 4", 3},
		{"v NOT BETWEEN 2 AND 4", 2},
		{"v BETWEEN 5 AND 2", 0},
		{"name LIKE 'al%'", 2},
		{"name LIKE '%o%'", 3},
		{"name LIKE 'b_'", 1},
		{"name LIKE '_____'", 2}, // alice, carol
		{"name NOT LIKE 'a%'", 3},
		{"name LIKE 'alice'", 1},
		{"name LIKE '%'", 5},
	}
	for _, tt := range tests {
		var params []types.Value
		want := tt.want
		if tt.want == -1 {
			params = []types.Value{types.NewInt(2), types.NewInt(4)}
			want = 2
		}
		res, err := e.Execute("SELECT v FROM t WHERE "+tt.where, params, &ExecCtx{})
		if err != nil {
			t.Fatalf("WHERE %s: %v", tt.where, err)
		}
		if len(res.Rows) != want {
			t.Errorf("WHERE %s: rows = %d, want %d", tt.where, len(res.Rows), want)
		}
	}
	// LIKE on a non-text operand errors.
	if _, err := e.Execute("SELECT v FROM t WHERE v LIKE 'x'", nil, &ExecCtx{}); err == nil {
		t.Error("LIKE on integer should fail")
	}
	// BETWEEN over incomparable kinds errors.
	if _, err := e.Execute("SELECT v FROM t WHERE name BETWEEN 1 AND 2", nil, &ExecCtx{}); err == nil {
		t.Error("BETWEEN text/int should fail")
	}
}

func TestLikeMatch(t *testing.T) {
	tests := []struct {
		s, pattern string
		want       bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"abc", "____", false},
		{"abc", "___", true},
		{"aXbYc", "a%b%c", true},
		{"aXbYc", "a%c%b", false},
		{"aaa", "%a", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ippi%", true},
		{"abc", "%%%", true},
	}
	for _, tt := range tests {
		if got := likeMatch(tt.s, tt.pattern); got != tt.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tt.s, tt.pattern, got, tt.want)
		}
	}
}

// TestLikeMatchProperties: %s% always matches strings containing s;
// the exact string always matches itself; _ repeated len times matches.
func TestLikeMatchProperties(t *testing.T) {
	sanitize := func(s string) string {
		out := []byte(s)
		for i, c := range out {
			if c == '%' || c == '_' {
				out[i] = 'x'
			}
		}
		return string(out)
	}
	f := func(raw string) bool {
		s := sanitize(raw)
		if !likeMatch(s, s) {
			return false
		}
		if !likeMatch(s, "%") {
			return false
		}
		under := make([]byte, len(s))
		for i := range under {
			under[i] = '_'
		}
		return likeMatch(s, string(under))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInBetweenInsideTriggers(t *testing.T) {
	// The new predicates work in EE-trigger statements too.
	e := newTestExec(t)
	mustExec(t, e, "CREATE STREAM s (v BIGINT)")
	mustExec(t, e, "CREATE TABLE keep (v BIGINT)")
	if err := e.AddTrigger(&Trigger{Table: "s", Stmts: []string{
		"INSERT INTO keep SELECT v FROM s WHERE v BETWEEN 10 AND 20 AND v NOT IN (13)",
	}}); err != nil {
		t.Fatal(err)
	}
	ctx := &ExecCtx{BatchID: 1}
	for _, v := range []int64{5, 12, 13, 20, 25} {
		if _, err := e.Execute("INSERT INTO s VALUES (?)", []types.Value{types.NewInt(v)}, ctx); err != nil {
			t.Fatal(err)
		}
		ctx.BatchID++
	}
	res := mustExec(t, e, "SELECT v FROM keep ORDER BY v")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 12 || res.Rows[1][0].Int() != 20 {
		t.Fatalf("keep = %v", res.Rows)
	}
}
