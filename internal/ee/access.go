package ee

import (
	"fmt"
	"sort"
)

// AccessSet is a table-granularity read/write footprint: the tables a
// statement (or a stored procedure) may read and may write. Names are
// lower-case, sorted, and deduplicated, so set operations are merge
// scans over sorted slices — allocation-free on the dispatcher's
// conflict-check fast path.
//
// Window tables always appear in Writes, even for pure SELECTs: a
// maintained-aggregate read lazily rescans a dirty MIN/MAX
// accumulator, mutating the table, so two "readers" of one window are
// not safe to run concurrently.
type AccessSet struct {
	Reads  []string
	Writes []string
}

// NewAccessSet builds a normalized access set from raw table-name
// lists (any case, duplicates allowed).
func NewAccessSet(reads, writes []string) *AccessSet {
	return &AccessSet{Reads: normalizeNames(reads), Writes: normalizeNames(writes)}
}

// normalizeNames lower-cases, sorts, and dedups a name list.
func normalizeNames(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, lowerName(n))
	}
	sort.Strings(out)
	w := 0
	for i, n := range out {
		if i == 0 || n != out[w-1] {
			out[w] = n
			w++
		}
	}
	return out[:w]
}

// overlapSorted reports whether two sorted string slices share an
// element (merge scan).
//
//sstore:nomalloc
func overlapSorted(a, b []string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// containsSorted reports whether a sorted string slice contains x
// (binary search).
//
//sstore:nomalloc
func containsSorted(set []string, x string) bool {
	lo, hi := 0, len(set)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if set[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(set) && set[lo] == x
}

// ConflictsWith reports whether two access sets conflict: write-write
// or read-write overlap on any table. Non-conflicting sets commute, so
// the dispatcher may run their transactions concurrently.
//
//sstore:nomalloc
func (a *AccessSet) ConflictsWith(b *AccessSet) bool {
	return overlapSorted(a.Writes, b.Writes) ||
		overlapSorted(a.Writes, b.Reads) ||
		overlapSorted(a.Reads, b.Writes)
}

// Covers reports whether this (declared) set covers every access of b:
// b's writes within a's writes, b's reads within a's reads or writes.
//
//sstore:nomalloc
func (a *AccessSet) Covers(b *AccessSet) bool {
	for _, w := range b.Writes {
		if !containsSorted(a.Writes, w) {
			return false
		}
	}
	for _, r := range b.Reads {
		if !containsSorted(a.Reads, r) && !containsSorted(a.Writes, r) {
			return false
		}
	}
	return true
}

// Check validates a statement's compiled access against this declared
// set; stmt == nil means the planner could not bound the statement's
// accesses (DDL), which a declared procedure may not run. A violation
// aborts the transaction before the statement touches any table, so a
// wrong declaration fails loudly instead of racing.
func (a *AccessSet) Check(stmt *AccessSet) error {
	if stmt == nil {
		return fmt.Errorf("ee: statement access unknown; not allowed in a procedure with a declared access set")
	}
	if !a.Covers(stmt) {
		return fmt.Errorf("ee: statement accesses reads=%v writes=%v outside the procedure's declared set reads=%v writes=%v",
			stmt.Reads, stmt.Writes, a.Reads, a.Writes)
	}
	return nil
}
