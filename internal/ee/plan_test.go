package ee

import (
	"fmt"
	"math/rand"
	"testing"

	"sstore/internal/storage"
	"sstore/internal/types"
)

func TestLimitParam(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (v BIGINT)")
	for i := 0; i < 10; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	res := mustExec(t, e, "SELECT v FROM t ORDER BY v DESC LIMIT ?", types.NewInt(3))
	if len(res.Rows) != 3 || res.Rows[0][0].Int() != 9 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// LIMIT ? combined with other params: positions must line up.
	res = mustExec(t, e, "SELECT v FROM t WHERE v > ? ORDER BY v LIMIT ?", types.NewInt(5), types.NewInt(2))
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 6 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Bad limit values.
	if _, err := e.Execute("SELECT v FROM t LIMIT ?", []types.Value{types.NewInt(-1)}, &ExecCtx{}); err == nil {
		t.Error("negative LIMIT param should fail")
	}
	if _, err := e.Execute("SELECT v FROM t LIMIT ?", []types.Value{types.NewText("x")}, &ExecCtx{}); err == nil {
		t.Error("text LIMIT param should fail")
	}
	if _, err := e.Execute("SELECT v FROM t LIMIT ?", nil, &ExecCtx{}); err == nil {
		t.Error("missing LIMIT param should fail")
	}
}

func TestOrderByAlias(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (a BIGINT, b BIGINT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 30), (2, 10), (3, 20)")
	res := mustExec(t, e, "SELECT a, b * 2 AS doubled FROM t ORDER BY doubled")
	if res.Rows[0][0].Int() != 2 || res.Rows[2][0].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByExpressionNotInProjection(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (a BIGINT, b BIGINT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 3), (2, 1), (3, 2)")
	res := mustExec(t, e, "SELECT a FROM t ORDER BY b DESC")
	if res.Rows[0][0].Int() != 1 || res.Rows[2][0].Int() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregateExpressionOverAggregates(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (g BIGINT, v BIGINT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 10), (1, 20), (2, 5)")
	res := mustExec(t, e, "SELECT g, SUM(v) / COUNT(*) FROM t GROUP BY g ORDER BY g")
	if res.Rows[0][1].Int() != 15 || res.Rows[1][1].Int() != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestMultiColumnIndexProbe(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (a BIGINT, b BIGINT, v BIGINT)")
	mustExec(t, e, "CREATE INDEX t_ab ON t (a, b)")
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %d)", a, b, a*10+b))
		}
	}
	p, err := e.Prepare("SELECT v FROM t WHERE a = ? AND b = ?")
	if err != nil {
		t.Fatal(err)
	}
	if p.sel.probe == nil {
		t.Fatal("composite equality should use the (a,b) index")
	}
	res := mustExec(t, e, "SELECT v FROM t WHERE a = ? AND b = ?", types.NewInt(3), types.NewInt(7))
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 37 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Partial match (only b) cannot use the composite index.
	p, _ = e.Prepare("SELECT v FROM t WHERE b = 1")
	if p.sel.probe != nil {
		t.Error("partial composite match must not probe")
	}
}

func TestBTreeIndexProbeViaSQL(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (k BIGINT, v BIGINT)")
	mustExec(t, e, "CREATE INDEX t_k ON t (k) USING BTREE")
	mustExec(t, e, "INSERT INTO t VALUES (1, 10), (2, 20), (2, 21)")
	res := mustExec(t, e, "SELECT v FROM t WHERE k = 2 ORDER BY v")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 20 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestSelectVsReferenceModel cross-checks SQL filters and aggregates
// against a plain-Go evaluation over random data.
func TestSelectVsReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (g BIGINT, v BIGINT)")
	type rec struct{ g, v int64 }
	var data []rec
	for i := 0; i < 500; i++ {
		r := rec{g: int64(rng.Intn(7)), v: int64(rng.Intn(1000)) - 500}
		data = append(data, r)
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", r.g, r.v))
	}
	for trial := 0; trial < 20; trial++ {
		threshold := int64(rng.Intn(1000)) - 500
		res := mustExec(t, e,
			"SELECT COUNT(*), COALESCE(SUM(v), 0) FROM t WHERE v > ?", types.NewInt(threshold))
		var wantN, wantSum int64
		for _, r := range data {
			if r.v > threshold {
				wantN++
				wantSum += r.v
			}
		}
		if res.Rows[0][0].Int() != wantN || res.Rows[0][1].Int() != wantSum {
			t.Fatalf("threshold %d: got (%v, %v), want (%d, %d)",
				threshold, res.Rows[0][0], res.Rows[0][1], wantN, wantSum)
		}
	}
	// Grouped aggregates match too.
	res := mustExec(t, e, "SELECT g, COUNT(*), MIN(v), MAX(v) FROM t GROUP BY g ORDER BY g")
	byG := make(map[int64][3]int64)
	for _, r := range data {
		cur, ok := byG[r.g]
		if !ok {
			byG[r.g] = [3]int64{1, r.v, r.v}
			continue
		}
		cur[0]++
		if r.v < cur[1] {
			cur[1] = r.v
		}
		if r.v > cur[2] {
			cur[2] = r.v
		}
		byG[r.g] = cur
	}
	for _, row := range res.Rows {
		want := byG[row[0].Int()]
		if row[1].Int() != want[0] || row[2].Int() != want[1] || row[3].Int() != want[2] {
			t.Fatalf("group %v = %v, want %v", row[0], row, want)
		}
	}
}

func TestJoinThreeTables(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE a (id BIGINT PRIMARY KEY, bid BIGINT)")
	mustExec(t, e, "CREATE TABLE b (id BIGINT PRIMARY KEY, cid BIGINT)")
	mustExec(t, e, "CREATE TABLE c (id BIGINT PRIMARY KEY, name VARCHAR)")
	mustExec(t, e, "INSERT INTO a VALUES (1, 10), (2, 20)")
	mustExec(t, e, "INSERT INTO b VALUES (10, 100), (20, 200)")
	mustExec(t, e, "INSERT INTO c VALUES (100, 'x'), (200, 'y')")
	res := mustExec(t, e, `SELECT a.id, c.name FROM a
		JOIN b ON b.id = a.bid
		JOIN c ON c.id = b.cid
		ORDER BY a.id`)
	if len(res.Rows) != 2 || res.Rows[0][1].Text() != "x" || res.Rows[1][1].Text() != "y" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestStagedRowsInvisibleToIndexProbes(t *testing.T) {
	cat := storage.NewCatalog()
	e := NewExecutor(cat)
	mustExec(t, e, "CREATE WINDOW w (v BIGINT) SIZE 3 SLIDE 1")
	mustExec(t, e, "CREATE INDEX w_v ON w (v)")
	mustExec(t, e, "INSERT INTO w VALUES (1)")
	// Row 1 is staged; a probe by v = 1 must not see it.
	res := mustExec(t, e, "SELECT v FROM w WHERE v = 1")
	if len(res.Rows) != 0 {
		t.Errorf("staged row visible through index probe: %v", res.Rows)
	}
	mustExec(t, e, "INSERT INTO w VALUES (2)")
	mustExec(t, e, "INSERT INTO w VALUES (3)")
	res = mustExec(t, e, "SELECT v FROM w WHERE v = 1")
	if len(res.Rows) != 1 {
		t.Errorf("active row missing from probe: %v", res.Rows)
	}
}

func TestUpdateDeleteViaIndexProbe(t *testing.T) {
	e := newTestExec(t)
	mustExec(t, e, "CREATE TABLE t (k BIGINT, v BIGINT)")
	mustExec(t, e, "CREATE INDEX t_k ON t (k)")
	for i := int64(0); i < 100; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, 0)", i%10))
	}
	p, _ := e.Prepare("UPDATE t SET v = 1 WHERE k = ?")
	if p.upd.probe == nil {
		t.Error("update should compile to an index probe")
	}
	res := mustExec(t, e, "UPDATE t SET v = 1 WHERE k = ?", types.NewInt(3))
	if res.RowsAffected != 10 {
		t.Errorf("updated %d, want 10", res.RowsAffected)
	}
	p, _ = e.Prepare("DELETE FROM t WHERE k = ?")
	if p.del.probe == nil {
		t.Error("delete should compile to an index probe")
	}
	res = mustExec(t, e, "DELETE FROM t WHERE k = ?", types.NewInt(3))
	if res.RowsAffected != 10 {
		t.Errorf("deleted %d, want 10", res.RowsAffected)
	}
}
