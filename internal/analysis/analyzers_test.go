package analysis

import (
	"strings"
	"testing"
)

func TestReplayDetFixture(t *testing.T) {
	RunFixture(t, "testdata/replaydet", ReplayDet)
}

// TestReplayDetFixtureHasTeeth runs the same fixture tree with the
// analyzer disabled and demands that the expectations go unmatched —
// in particular the border package, which reproduces the PR-5
// nondeterministic-border-consumer bug. A fixture that still "passes"
// without its analyzer proves nothing.
func TestReplayDetFixtureHasTeeth(t *testing.T) {
	unmatched, unexpected, err := CheckFixture("testdata/replaydet", nil)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(unexpected) != 0 {
		t.Fatalf("no analyzers ran, yet diagnostics appeared: %v", unexpected)
	}
	if len(unmatched) == 0 {
		t.Fatalf("disabling replaydet left no unmatched expectations; the fixture is vacuous")
	}
	borderCaught := false
	for _, u := range unmatched {
		if strings.Contains(u, "border") && strings.Contains(u, "map iteration order escapes") {
			borderCaught = true
		}
	}
	if !borderCaught {
		t.Errorf("border-consumer regression fixture carries no map-iteration expectation; got %v", unmatched)
	}
}

func TestLockOrderFixture(t *testing.T) {
	RunFixture(t, "testdata/lockorder", NewLockOrder(LockOrderConfig{
		Ranks: map[string]int{
			"locks.engine.ddlMu":  1,
			"locks.engine.readMu": 2,
			"locks.store.latch":   3,
		},
		Leaf:     map[int]bool{3: true},
		OrderDoc: "ddlMu → readMu → latch",
	}))
}

func TestHotAllocFixture(t *testing.T) {
	RunFixture(t, "testdata/hotalloc", NewHotAlloc(HotAllocConfig{
		BoxedTypes: map[string]bool{"hot.value": true},
	}))
}

func TestAllocGateFixture(t *testing.T) {
	RunFixture(t, "testdata/allocgate", AllocGate)
}

func TestErrDropFixture(t *testing.T) {
	RunFixture(t, "testdata/errdrop", NewErrDrop(ErrDropConfig{
		MustUse: map[string]string{
			"errs.Txn.Commit": "a swallowed commit error leaves state diverged",
			"errs.Log.Append": "an unchecked log append breaks write-ahead durability",
		},
	}))
}
