package analysis

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is the fixture harness (the analysistest equivalent):
// fixture packages under <root>/src/<importpath>/ carry expectations as
//
//	code() // want "regexp" "second regexp"
//
// comments. CheckFixture runs analyzers over the tree and matches every
// diagnostic against the want on its line; unmatched wants and
// unexpected diagnostics are both failures — so a fixture whose
// analyzer is disabled fails loudly instead of passing vacuously.

type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// CheckFixture loads the fixture tree rooted at root and runs the
// analyzers, returning mismatches.
func CheckFixture(root string, analyzers []*Analyzer) (unmatchedWants []string, unexpected []Diagnostic, err error) {
	prog, err := LoadFixtureTree(root)
	if err != nil {
		return nil, nil, err
	}
	var wants []*wantExpectation
	for _, pkg := range prog.Pkgs {
		for _, f := range append(append([]*ast.File(nil), pkg.Syntax...), pkg.TestSyntax...) {
			ws, werr := collectWants(prog, f)
			if werr != nil {
				return nil, nil, werr
			}
			wants = append(wants, ws...)
		}
	}
	diags := Run(prog, analyzers)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			unmatchedWants = append(unmatchedWants, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw))
		}
	}
	return unmatchedWants, unexpected, nil
}

// RunFixture is the testing wrapper: any mismatch fails the test.
func RunFixture(t *testing.T, root string, analyzers ...*Analyzer) {
	t.Helper()
	unmatched, unexpected, err := CheckFixture(root, analyzers)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", root, err)
	}
	for _, u := range unmatched {
		t.Errorf("%s", u)
	}
	for _, d := range unexpected {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func collectWants(prog *Program, f *ast.File) ([]*wantExpectation, error) {
	var wants []*wantExpectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "want ")
			if idx < 0 || !strings.HasPrefix(c.Text, "//") {
				continue
			}
			rest := strings.TrimSpace(c.Text[idx+len("want "):])
			pos := prog.Fset.Position(c.Pos())
			for rest != "" {
				if rest[0] != '"' {
					return nil, fmt.Errorf("%s:%d: malformed want expectation %q", pos.Filename, pos.Line, c.Text)
				}
				str, remainder, err := cutQuoted(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v in %q", pos.Filename, pos.Line, err, c.Text)
				}
				re, err := regexp.Compile(str)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
				}
				wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re, raw: str})
				rest = strings.TrimSpace(remainder)
			}
		}
	}
	return wants, nil
}

// cutQuoted splits one leading Go-quoted string off rest.
func cutQuoted(rest string) (string, string, error) {
	for i := 1; i < len(rest); i++ {
		if rest[i] == '"' && rest[i-1] != '\\' {
			s, err := strconv.Unquote(rest[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("unquoting %s: %v", rest[:i+1], err)
			}
			return s, rest[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated want string")
}
