// Package analysis is the engine's invariant suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (the container image builds offline, so the x/tools module is
// unavailable) plus four engine-specific analyzers that lock down the
// invariants S-Store's recovery guarantee rests on:
//
//   - replaydet: code reachable from the replay/commit/trigger entry
//     points must be deterministic — re-execution of the command log
//     only reproduces state if the live schedule computed it
//     deterministically in the first place (PAPER.md §4).
//   - lockorder: the documented ddlMu → readMu → views.mu → table-latch
//     acquisition order, with the latch as a leaf lock.
//   - hotalloc: functions annotated //sstore:nomalloc must not contain
//     constructs that force heap allocations.
//   - errdrop: engine APIs whose dropped errors were past bugs must
//     have their error results consumed.
//   - allocgate: every //sstore:nomalloc function must be covered by an
//     //sstore:allocgate-marked testing.AllocsPerRun gate (and vice
//     versa), so the static annotation and the runtime budget can't
//     drift apart.
//
// Annotation conventions (documented in DESIGN.md §10):
//
//	//sstore:deterministic   — marks a replay-determinism entry point.
//	//sstore:nomalloc        — marks a zero-allocation hot-path function.
//	//sstore:allocgate Name  — in a _test.go file, marks the AllocsPerRun
//	                           gate covering nomalloc function Name.
//	//lint:allow <analyzer> -- <reason>
//	                         — suppresses that analyzer's diagnostics on
//	                           the same or the following source line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Unlike x/tools analyzers, Run sees
// the whole program at once: whole-program call graphs are the natural
// shape for replay-reachability and lock-order summaries, and the repo
// is small enough that per-package fact plumbing would be pure ceremony.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands an analyzer the loaded program and a diagnostic sink.
type Pass struct {
	Fset *token.FileSet
	// Pkgs are the packages under analysis (the module's packages, or a
	// fixture tree), in a stable order.
	Pkgs []*Package
	// Graph is the static call graph over Pkgs (see callgraph.go).
	Graph *CallGraph
	// Ann indexes //sstore: annotations and //lint:allow suppressions.
	Ann *Annotations

	analyzer string
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Types   *types.Package
	Info    *types.Info
	Syntax  []*ast.File
	// TestSyntax holds the package's _test.go files, parsed but not
	// type-checked; the allocgate analyzer scans them for gate markers.
	TestSyntax []*ast.File
	// Module reports whether the package belongs to the module under
	// analysis (false for dependencies, which are loaded API-only).
	Module bool
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run executes the analyzers over a loaded program, returning the
// surviving diagnostics sorted by position. Diagnostics on a line (or
// the line immediately after) a matching //lint:allow comment are
// dropped.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     prog.Fset,
			Pkgs:     prog.Pkgs,
			Graph:    prog.Graph,
			Ann:      prog.Ann,
			analyzer: a.Name,
			report: func(d Diagnostic) {
				diags = append(diags, d)
			},
		}
		a.Run(pass)
	}
	kept := diags[:0]
	for _, d := range diags {
		if prog.Ann.Suppressed(d.Analyzer, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return kept
}

// Program is a loaded module (or fixture tree) ready for analysis.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Graph *CallGraph
	Ann   *Annotations
}

// funcDisplayName renders a *types.Func as pkg.Name or pkg.(Recv).Name
// relative to the module, for diagnostics.
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		if i := strings.LastIndex(fn.Pkg().Path(), "/"); i >= 0 {
			return fn.Pkg().Path()[i+1:] + "." + name
		}
		return fn.Pkg().Path() + "." + name
	}
	return name
}
