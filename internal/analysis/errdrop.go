package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDropConfig lists APIs whose error results must be consumed —
// engine-specific errcheck, scoped to calls whose dropped errors were
// (or would repeat) real shipped bugs rather than to every error in
// the tree.
type ErrDropConfig struct {
	// MustUse maps "pkgpath.Func" / "pkgpath.Type.Func" to the reason
	// shown when the error is dropped.
	MustUse map[string]string
}

// EngineErrDrop covers the repo's history: PR 1 fixed nested-txn
// commit errors swallowed on the partition loop; PR 5 gave QueueDepth
// an error it would be a regression to ignore; a wal append that
// "fails silently" breaks the write-ahead contract.
var EngineErrDrop = ErrDropConfig{
	MustUse: map[string]string{
		"sstore/internal/txn.Txn.Commit":           "a swallowed commit error leaves the partition state diverged from the caller's view (PR-1 bug class)",
		"sstore/internal/pe.Engine.QueueDepth":     "QueueDepth's error reports an out-of-range partition; ignoring it reads a bogus depth",
		"sstore.Engine.QueueDepth":                 "QueueDepth's error reports an out-of-range partition; ignoring it reads a bogus depth",
		"sstore/internal/wal.Logger.Append":        "an unchecked command-log append breaks write-ahead durability",
		"sstore/internal/wal.LogSet.Append":        "an unchecked command-log append breaks write-ahead durability",
		"sstore/internal/wal.Logger.Close":         "a dropped close error can hide a failed final flush",
		"sstore/internal/wal.LogSet.Close":         "a dropped close error can hide a failed final flush",
		"sstore/internal/wal.Logger.CompactBefore": "compaction errors can silently truncate recoverable history",
		"sstore/internal/wal.LogSet.CompactBefore": "compaction errors can silently truncate recoverable history",
	},
}

// ErrDrop enforces EngineErrDrop over the module.
var ErrDrop = NewErrDrop(EngineErrDrop)

// NewErrDrop builds the analyzer for a config (fixtures use their own
// API list).
func NewErrDrop(cfg ErrDropConfig) *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "reports dropped errors from engine APIs whose ignored errors were past bugs",
		Run:  func(pass *Pass) { runErrDrop(pass, cfg) },
	}
}

func runErrDrop(pass *Pass, cfg ErrDropConfig) {
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Syntax {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
						if key, why, ok := mustUseCall(info, call, cfg); ok {
							pass.Reportf(call.Lparen, "result of %s dropped: %s", key, why)
						}
					}
					return true
				case *ast.AssignStmt:
					checkErrDropAssign(pass, info, n, cfg)
					return true
				case *ast.GoStmt:
					if key, why, ok := mustUseCall(info, n.Call, cfg); ok {
						pass.Reportf(n.Call.Lparen, "result of %s dropped by go statement: %s", key, why)
					}
				case *ast.DeferStmt:
					if key, why, ok := mustUseCall(info, n.Call, cfg); ok {
						pass.Reportf(n.Call.Lparen, "result of %s dropped by defer: %s", key, why)
					}
				}
				return true
			})
		}
	}
}

// checkErrDropAssign flags assignments that blank out the error result
// of a must-use call: `_ = x.Commit()` and `seq, _ := log.Append(...)`.
func checkErrDropAssign(pass *Pass, info *types.Info, as *ast.AssignStmt, cfg ErrDropConfig) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	key, why, ok := mustUseCall(info, call, cfg)
	if !ok {
		return
	}
	// The error is the last result by convention in every listed API.
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(), "error result of %s assigned to _: %s", key, why)
	}
}

// mustUseCall resolves a call against the config.
func mustUseCall(info *types.Info, call *ast.CallExpr, cfg ErrDropConfig) (key, why string, ok bool) {
	callee, _ := resolveCallee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return "", "", false
	}
	key = callee.Pkg().Path() + "." + gateName(callee)
	why, ok = cfg.MustUse[key]
	return key, why, ok
}
