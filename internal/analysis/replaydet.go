package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ReplayDet reports nondeterminism in code reachable from the engine's
// replay, commit, and trigger entry points (the functions annotated
// //sstore:deterministic). S-Store's strong recovery guarantee re-runs
// the command log and must land bit-for-bit on the pre-crash state;
// anything schedule- or clock-dependent in that call graph breaks it.
// Two shipped bugs motivated each check (see DESIGN.md §10): the PR-5
// border consumer chosen by map-iteration order, and PR-2's
// replay-order pollution.
//
// Reported in the deterministic call graph:
//   - range over a map whose iteration order escapes the loop (stored,
//     returned, dispatched, or passed to a call). Loops whose bodies
//     are provably order-insensitive — commutative accumulation,
//     unique-key map writes, existence flags — are allowed.
//   - time.Now / time.Since / time.Until.
//   - package-level math/rand and math/rand/v2 functions (seeded
//     *rand.Rand methods are fine: a replayed run can re-seed).
//   - select with two or more communication cases: the runtime picks
//     among ready cases pseudo-randomly.
//
// Calls through function-typed values (stored procedures, control
// thunks) are outside the static graph; SP bodies are application code
// and carry their own determinism obligation.
var ReplayDet = &Analyzer{
	Name: "replaydet",
	Doc:  "reports nondeterminism reachable from replay/commit/trigger entry points",
	Run:  runReplayDet,
}

func runReplayDet(pass *Pass) {
	var entries []*types.Func
	for fn := range pass.Ann.Deterministic {
		entries = append(entries, fn)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].FullName() < entries[j].FullName() })
	from := pass.Graph.Reachable(entries)

	var fns []*types.Func
	for fn := range from {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	for _, fn := range fns {
		node := pass.Graph.Nodes[fn]
		info := node.Pkg.Info
		chain := Chain(from, fn)
		sinks := sortSinks(info, node.Decl.Body)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !sinks[n] && !orderInsensitiveBody(info, n) {
						pass.Reportf(n.For, "map iteration order escapes this loop on the replay-deterministic path %s; iterate in a sorted order", chain)
					}
				}
			case *ast.SelectStmt:
				comm := 0
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Select, "select with %d communication cases chooses pseudo-randomly when several are ready, on the replay-deterministic path %s", comm, chain)
				}
			case *ast.CallExpr:
				callee, _ := resolveCallee(info, n)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				switch callee.Pkg().Path() {
				case "time":
					if callee.Signature().Recv() == nil {
						switch callee.Name() {
						case "Now", "Since", "Until":
							pass.Reportf(n.Lparen, "time.%s on the replay-deterministic path %s; thread a logged timestamp instead", callee.Name(), chain)
						}
					}
				case "math/rand", "math/rand/v2":
					if callee.Signature().Recv() == nil && callee.Name() != "New" && callee.Name() != "NewSource" && callee.Name() != "NewPCG" && callee.Name() != "NewZipf" && callee.Name() != "NewChaCha8" {
						pass.Reportf(n.Lparen, "global rand.%s on the replay-deterministic path %s; use a seeded *rand.Rand owned by the replayable component", callee.Name(), chain)
					}
				}
			}
			return true
		})
	}
}

// sortSinks maps map-range loops to true when a later statement in the
// same block sorts a slice the loop appends to — the canonical
// "collect keys, sort, iterate" determinism fix. The loop's arbitrary
// iteration order is erased by the sort, so the loop is fine.
func sortSinks(info *types.Info, body *ast.BlockStmt) map[*ast.RangeStmt]bool {
	sinks := make(map[*ast.RangeStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, st := range list {
			rng, ok := st.(*ast.RangeStmt)
			if !ok {
				continue
			}
			targets := appendTargets(info, rng.Body)
			if len(targets) == 0 {
				continue
			}
			for _, later := range list[i+1:] {
				if sortsAny(info, later, targets) {
					sinks[rng] = true
					break
				}
			}
		}
		return true
	})
	return sinks
}

// appendTargets collects the objects o self-appended (o = append(o, …))
// inside a loop body.
func appendTargets(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	targets := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isBuiltin(info, call, "append") {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && arg.Name == id.Name {
			if obj := info.Uses[id]; obj != nil {
				targets[obj] = true
			}
		}
		return true
	})
	return targets
}

// sortsAny reports whether a statement sorts one of the target slices
// (a sort or slices package call naming the object).
func sortsAny(info *types.Info, st ast.Stmt, targets map[types.Object]bool) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		callee, _ := resolveCallee(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && targets[info.Uses[id]] {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// orderInsensitiveBody reports whether a map-range body cannot observe
// iteration order: every statement is commutative accumulation
// (x += v, x++, …), a unique-key map write (m[k] = v with k derived
// from the loop variable), delete(m, k), an idempotent flag set
// (x = <literal>), purely local computation, or control flow composed
// of the same. Anything else — calls, appends, sends, returns, plain
// stores to outer variables — lets the order escape.
func orderInsensitiveBody(info *types.Info, rng *ast.RangeStmt) bool {
	loopVars := make(map[types.Object]bool)
	locals := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := info.Uses[id]; obj != nil && rng.Tok == token.ASSIGN {
				// for k = range m: the outer variable holds an arbitrary
				// element after the loop.
				return false
			}
		}
	}
	c := &insensitivity{info: info, loopVars: loopVars, locals: locals}
	for _, s := range rng.Body.List {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

type insensitivity struct {
	info     *types.Info
	loopVars map[types.Object]bool
	locals   map[types.Object]bool
}

func (c *insensitivity) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if !c.stmtOK(inner) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if c.hasCall(s.Cond) {
			return false
		}
		return c.stmtOK(s.Body) && c.stmtOK(s.Else)
	case *ast.IncDecStmt:
		return !c.hasCall(s.X)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, name := range vs.Names {
				if obj := c.info.Defs[name]; obj != nil {
					c.locals[obj] = true
				}
			}
			for _, v := range vs.Values {
				if c.hasCall(v) {
					return false
				}
			}
		}
		return true
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.ExprStmt:
		// Only delete(m, k) — the one builtin with an effect whose
		// result cannot depend on visit order.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := c.info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				for _, a := range call.Args {
					if c.hasCall(a) {
						return false
					}
				}
				return true
			}
		}
		return false
	default:
		return false
	}
}

func (c *insensitivity) assignOK(s *ast.AssignStmt) bool {
	for _, r := range s.Rhs {
		if c.hasCall(r) {
			return false
		}
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative/associative accumulation: any interleaving of the
		// iterations produces the same final value.
		for _, l := range s.Lhs {
			if c.hasCall(l) {
				return false
			}
		}
		return true
	case token.DEFINE:
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := c.info.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return true
	case token.ASSIGN:
		for i, l := range s.Lhs {
			if !c.storeOK(l, rhsFor(s, i)) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func rhsFor(s *ast.AssignStmt, i int) ast.Expr {
	if len(s.Rhs) == len(s.Lhs) {
		return s.Rhs[i]
	}
	return nil
}

// storeOK reports whether one plain-assignment target cannot leak
// iteration order: a loop-local, a map entry keyed by a loop variable
// (unique per iteration), or an idempotent literal store.
func (c *insensitivity) storeOK(lhs, rhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return true
		}
		if obj := c.info.Uses[l]; obj != nil && c.locals[obj] {
			return true
		}
		return rhs != nil && isIdempotentLiteral(rhs)
	case *ast.IndexExpr:
		if t := c.info.TypeOf(l.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap && c.usesLoopVar(l.Index) && !c.hasCall(l.Index) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// isIdempotentLiteral reports whether an expression stores the same
// value no matter which (or how many) iterations execute it.
func isIdempotentLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return e.Name == "true" || e.Name == "false" || e.Name == "nil"
	default:
		return false
	}
}

func (c *insensitivity) usesLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.loopVars[c.info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func (c *insensitivity) hasCall(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			// Type conversions and len/cap are pure; anything else may
			// carry order-dependent effects.
			if c.info.Types[call.Fun].IsType() {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := c.info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
					return true
				}
			}
			found = true
		}
		return !found
	})
	return found
}
