package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader builds a type-checked program without x/tools: package
// metadata comes from `go list -json -deps` (works offline — the whole
// dependency closure is the standard library), sources are parsed with
// go/parser, and packages are type-checked bottom-up with go/types.
// Dependency packages are checked with IgnoreFuncBodies (only their API
// matters); module packages keep full types.Info for the analyzers.

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath  string
	Dir         string
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	Standard    bool
	Error       *struct{ Err string }
}

// Load lists patterns (e.g. "./...") in dir, then parses and
// type-checks the closure. Only non-Standard packages become Module
// packages with bodies and full Info.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld := newLoader()
	ld.listDir = dir
	order, err := ld.list(patterns...)
	if err != nil {
		return nil, err
	}
	// `go list -deps` emits dependencies before dependents; checking in
	// that order means every import is already loaded.
	for _, path := range order {
		if _, err := ld.check(path); err != nil {
			return nil, err
		}
	}
	return ld.finish()
}

// LoadFixtureTree loads an analysistest-style fixture layout: every
// directory under root/src holding .go files is a package whose import
// path is its path relative to root/src. Standard-library imports are
// resolved lazily through `go list` (API only); fixture-local imports
// resolve within the tree.
func LoadFixtureTree(root string) (*Program, error) {
	src := filepath.Join(root, "src")
	ld := newLoader()
	ld.lazyStd = true
	ld.listDir = root
	var paths []string
	err := filepath.Walk(src, func(path string, fi os.FileInfo, err error) error {
		if err != nil || !fi.IsDir() {
			return err
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var goFiles, testFiles []string
		for _, e := range ents {
			switch {
			case !strings.HasSuffix(e.Name(), ".go"):
			case strings.HasSuffix(e.Name(), "_test.go"):
				testFiles = append(testFiles, e.Name())
			default:
				goFiles = append(goFiles, e.Name())
			}
		}
		if len(goFiles) == 0 && len(testFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		importPath := filepath.ToSlash(rel)
		ld.meta[importPath] = &pkgMeta{dir: path, goFiles: goFiles, testFiles: testFiles, module: true}
		paths = append(paths, importPath)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	for _, path := range paths {
		if _, err := ld.check(path); err != nil {
			return nil, err
		}
	}
	return ld.finish()
}

type pkgMeta struct {
	dir       string
	goFiles   []string
	testFiles []string
	imports   []string
	module    bool
}

type loader struct {
	fset    *token.FileSet
	meta    map[string]*pkgMeta
	checked map[string]*types.Package
	pkgs    []*Package
	// lazyStd, in fixture mode, resolves imports with no metadata entry
	// by go-listing them (standard library); in module mode every
	// import is already in meta.
	lazyStd  bool
	listDir  string
	checking []string // cycle guard
}

func newLoader() *loader {
	return &loader{
		fset:    token.NewFileSet(),
		meta:    make(map[string]*pkgMeta),
		checked: make(map[string]*types.Package),
	}
}

// list go-lists patterns (with -deps) into the loader's metadata,
// returning the dependency-ordered import paths it added. Packages
// outside metadata are new; already-known paths keep their entry.
func (l *loader) list(patterns ...string) ([]string, error) {
	args := append([]string{"list", "-e", "-json=ImportPath,Dir,GoFiles,TestGoFiles,Imports,Standard,Error", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.listDir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v: %s", err, errBuf.String())
	}
	var order []string
	dec := json.NewDecoder(&out)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if _, dup := l.meta[lp.ImportPath]; dup {
			continue
		}
		l.meta[lp.ImportPath] = &pkgMeta{
			dir:       lp.Dir,
			goFiles:   lp.GoFiles,
			testFiles: lp.TestGoFiles,
			imports:   lp.Imports,
			module:    !lp.Standard,
		}
		order = append(order, lp.ImportPath)
	}
	return order, nil
}

// listInto resolves one standard-library import path lazily (fixture
// mode), forcing module=false: fixture analysis must never treat the
// standard library as code under analysis.
func (l *loader) listInto(path string) error {
	added, err := l.list(path)
	if err != nil {
		return err
	}
	for _, p := range added {
		l.meta[p].module = false
	}
	return nil
}

// Import implements types.Importer over the loader's cache, so packages
// under check resolve their imports recursively.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.check(path)
}

func (l *loader) check(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.checked[path]; ok {
		return tp, nil
	}
	m, ok := l.meta[path]
	if !ok {
		if l.lazyStd {
			if err := l.listInto(path); err != nil {
				return nil, err
			}
			m, ok = l.meta[path]
		}
		if !ok {
			return nil, fmt.Errorf("analysis: import %q not in go list closure", path)
		}
	}
	for _, active := range l.checking {
		if active == path {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
	}
	l.checking = append(l.checking, path)
	defer func() { l.checking = l.checking[:len(l.checking)-1] }()

	files := make([]*ast.File, 0, len(m.goFiles))
	for _, name := range m.goFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	cfg := &types.Config{
		Importer:         l,
		IgnoreFuncBodies: !m.module,
		// Dependency sources may trip go/types on compiler intrinsics;
		// module packages must check clean (the repo builds), so only
		// tolerate errors outside the module.
		Error: func(err error) {},
	}
	if m.module {
		cfg.Error = nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tp, err := cfg.Check(path, l.fset, files, infoFor(m.module, info))
	if err != nil && m.module {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	if tp == nil {
		return nil, fmt.Errorf("analysis: type-checking %s produced no package", path)
	}
	l.checked[path] = tp
	pkg := &Package{PkgPath: path, Dir: m.dir, Types: tp, Syntax: files, Module: m.module}
	if m.module {
		pkg.Info = info
		for _, name := range m.testFiles {
			// Test files are parsed for annotation markers only; they
			// are not type-checked (their extra dependencies may fall
			// outside the closure).
			f, err := parser.ParseFile(l.fset, filepath.Join(m.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			pkg.TestSyntax = append(pkg.TestSyntax, f)
		}
	}
	l.pkgs = append(l.pkgs, pkg)
	return tp, nil
}

// infoFor returns info for module packages and nil for dependencies
// (whose bodies are skipped; recording their info would only burn
// memory).
func infoFor(module bool, info *types.Info) *types.Info {
	if module {
		return info
	}
	return nil
}

func (l *loader) finish() (*Program, error) {
	var modPkgs []*Package
	for _, p := range l.pkgs {
		if p.Module {
			modPkgs = append(modPkgs, p)
		}
	}
	sort.Slice(modPkgs, func(i, j int) bool { return modPkgs[i].PkgPath < modPkgs[j].PkgPath })
	prog := &Program{Fset: l.fset, Pkgs: modPkgs}
	prog.Ann = indexAnnotations(prog)
	prog.Graph = buildCallGraph(prog)
	return prog, nil
}
