package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation directives recognized in function doc comments.
const (
	AnnDeterministic = "//sstore:deterministic"
	AnnNoMalloc      = "//sstore:nomalloc"
	AnnAllocGate     = "//sstore:allocgate"
	AnnPooled        = "//sstore:pooled"
	annSuppress      = "//lint:allow"
)

// Annotations indexes the //sstore: directives and //lint:allow
// suppressions of a loaded program.
type Annotations struct {
	// Deterministic and NoMalloc map annotated function objects.
	Deterministic map[*types.Func]bool
	NoMalloc      map[*types.Func]bool
	// Pooled marks free-list constructors and recyclers (pe.getTask /
	// pe.putTask style): functions that hand out recycled structs and
	// so are legal to call from //sstore:nomalloc code even though a
	// cold pool may allocate inside them.
	Pooled map[*types.Func]bool
	// AllocGates maps gate-marker target names ("Table.beginMutate")
	// to the position of their //sstore:allocgate marker in a test file.
	AllocGates map[string]token.Position

	// suppress maps file → line → analyzer names allowed there.
	suppress map[string]map[int]map[string]bool
}

// Suppressed reports whether a diagnostic at pos from the named
// analyzer is covered by a //lint:allow comment on the same line or the
// line above.
func (a *Annotations) Suppressed(analyzer string, pos token.Position) bool {
	lines := a.suppress[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

func indexAnnotations(prog *Program) *Annotations {
	ann := &Annotations{
		Deterministic: make(map[*types.Func]bool),
		NoMalloc:      make(map[*types.Func]bool),
		Pooled:        make(map[*types.Func]bool),
		AllocGates:    make(map[string]token.Position),
		suppress:      make(map[string]map[int]map[string]bool),
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					switch directiveOf(c.Text) {
					case AnnDeterministic:
						ann.Deterministic[obj] = true
					case AnnNoMalloc:
						ann.NoMalloc[obj] = true
					case AnnPooled:
						ann.Pooled[obj] = true
					}
				}
			}
			ann.indexSuppressions(prog.Fset, f)
		}
		for _, f := range pkg.TestSyntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if directiveOf(c.Text) != AnnAllocGate {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, AnnAllocGate))
					if name, _, _ := strings.Cut(rest, " "); name != "" {
						// Keys are package-scoped: the gate must live in
						// the annotated function's own package.
						ann.AllocGates[pkg.PkgPath+"."+name] = prog.Fset.Position(c.Pos())
					}
				}
			}
			ann.indexSuppressions(prog.Fset, f)
		}
	}
	return ann
}

func (a *Annotations) indexSuppressions(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if directiveOf(c.Text) != annSuppress {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, annSuppress))
			// Everything after "--" is the (mandatory by convention,
			// unenforced) human reason.
			names, _, _ := strings.Cut(rest, "--")
			pos := fset.Position(c.Pos())
			lines := a.suppress[pos.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				a.suppress[pos.Filename] = lines
			}
			set := lines[pos.Line]
			if set == nil {
				set = make(map[string]bool)
				lines[pos.Line] = set
			}
			for _, n := range strings.Split(names, ",") {
				if n = strings.TrimSpace(n); n != "" {
					set[n] = true
				}
			}
		}
	}
}

// directiveOf returns the leading directive of a comment ("//sstore:…"
// or "//lint:allow"), or "".
func directiveOf(text string) string {
	for _, d := range [5]string{AnnDeterministic, AnnNoMalloc, AnnAllocGate, AnnPooled, annSuppress} {
		if text == d || strings.HasPrefix(text, d+" ") {
			return d
		}
	}
	return ""
}
