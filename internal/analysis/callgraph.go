package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallGraph is the static call graph over the module's function
// declarations. Resolution covers direct calls, concrete method calls,
// and interface method calls (linked to every module method that
// implements the interface). Function literals are not separate nodes:
// their bodies are attributed to the enclosing declaration, which
// matches how the engine uses closures (onPartition thunks, scheduler
// callbacks — invoked synchronously by the callee). Calls through
// function-typed values and fields (e.g. a stored procedure's Func)
// are invisible to the graph; the analyzers document that boundary.
type CallGraph struct {
	Nodes map[*types.Func]*CallNode
}

// CallNode is one declared module function.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Callees holds one edge per distinct callee, with the position of
	// the first call site (for diagnostics that explain reachability).
	Callees []CallEdge
	seen    map[*types.Func]bool
}

// CallEdge is a call from a node to a resolved callee.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
}

type ifaceCall struct {
	method *types.Func
	pos    token.Pos
	from   *CallNode
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CallNode)}
	var ifaceCalls []ifaceCall
	var namedTypes []types.Type

	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
					namedTypes = append(namedTypes, named)
				}
			}
		}
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.Nodes[fn] = &CallNode{Fn: fn, Decl: fd, Pkg: pkg, seen: make(map[*types.Func]bool)}
			}
		}
	}

	for _, node := range g.Nodes {
		info := node.Pkg.Info
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, iface := resolveCallee(info, call)
			if callee == nil {
				return true
			}
			if iface {
				ifaceCalls = append(ifaceCalls, ifaceCall{method: callee, pos: call.Lparen, from: node})
				return true
			}
			node.addEdge(callee, call.Lparen)
			return true
		})
	}

	// Link each interface call to every module method implementing it.
	for _, ic := range ifaceCalls {
		ifaceType, ok := ic.method.Signature().Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, t := range namedTypes {
			impl := types.Implements(t, ifaceType) || types.Implements(types.NewPointer(t), ifaceType)
			if !impl {
				continue
			}
			sel := types.NewMethodSet(types.NewPointer(t)).Lookup(ic.method.Pkg(), ic.method.Name())
			if sel == nil {
				continue
			}
			if m, ok := sel.Obj().(*types.Func); ok && g.Nodes[m] != nil {
				ic.from.addEdge(m, ic.pos)
			}
		}
	}
	return g
}

func (n *CallNode) addEdge(callee *types.Func, pos token.Pos) {
	if n.seen[callee] {
		return
	}
	n.seen[callee] = true
	n.Callees = append(n.Callees, CallEdge{Callee: callee, Pos: pos})
}

// resolveCallee returns the called *types.Func (or nil for dynamic
// calls, builtins, and conversions) and whether the call goes through
// an interface method.
func resolveCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, iface bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
		return fn, false
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil, false
			}
			m, _ := sel.Obj().(*types.Func)
			if m == nil {
				return nil, false
			}
			if recv := m.Signature().Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return m, true
			}
			return m, false
		}
		// No selection: qualified identifier (pkg.Func).
		fn, _ = info.Uses[fun.Sel].(*types.Func)
		return fn, false
	default:
		return nil, false
	}
}

// Reachable computes the set of nodes reachable from the entry
// functions, returning for each reached function the edge that first
// reached it (for "reachable from" diagnostics).
func (g *CallGraph) Reachable(entries []*types.Func) map[*types.Func]*types.Func {
	from := make(map[*types.Func]*types.Func, len(entries))
	queue := make([]*types.Func, 0, len(entries))
	for _, e := range entries {
		if g.Nodes[e] != nil {
			from[e] = nil
			queue = append(queue, e)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		for _, edge := range node.Callees {
			if _, ok := from[edge.Callee]; ok || g.Nodes[edge.Callee] == nil {
				continue
			}
			from[edge.Callee] = fn
			queue = append(queue, edge.Callee)
		}
	}
	return from
}

// Chain renders the call chain from an entry point to fn, e.g.
// "pe.Engine.Recover → pe.partition.execute → ee.Executor.Execute".
func Chain(from map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for f := fn; f != nil; f = from[f] {
		names = append(names, funcDisplayName(f))
		if from[f] == nil {
			break
		}
	}
	// reverse
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " → "
		}
		out += n
	}
	return out
}
