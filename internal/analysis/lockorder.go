package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// LockOrderConfig ranks the engine's named locks. Locks must be
// acquired in strictly increasing rank; acquiring a rank less than or
// equal to any held rank — directly or anywhere in the called
// function's transitive acquire set — is reported. Leaf ranks must not
// hold *any* tracked lock operation beneath them, ranked or not.
type LockOrderConfig struct {
	// Ranks maps "pkgpath.Type.field" lock identities to ranks.
	Ranks map[string]int
	// Leaf marks ranks under which no further lock may be taken.
	Leaf map[int]bool
	// OrderDoc names the documented order for diagnostics.
	OrderDoc string
}

// EngineLockOrder is the repo's documented acquisition order
// (internal/pe/readview.go): ddlMu → readMu → Executor.mu → Views.mu →
// Table.latch. Executor.mu is the executor's plan-cache lock, taken by
// worker goroutines preparing statements during a parallel wave; it is
// a leaf (its critical sections are map operations only), ranked under
// ddlMu because runtime DDL holds ddlMu while invalidating the cache.
// The table latch is the storage.Views read latch held across one
// statement's scan; taking anything under it other than the buffer
// pool's mutex can deadlock against the copy-on-write detach barrier.
// It stopped being a leaf when archive tables arrived: their row reads
// and writes pin pages, so bufferpool.Pool.mu is acquired under the
// latch. Pool.mu is the new leaf — its critical sections touch only
// the frame table and LRU state (a victim's write-back does file I/O
// under Pool.mu, but never takes another lock).
//
// The cluster transport's locks rank after the table latch: Peers.mu
// (the peer registry) may be taken from the dispatch path while no
// engine lock is held, and each peer.mu (one connection's send queue)
// nests strictly inside it. peer.mu is a leaf — its critical sections
// only touch the queue slice and the conn pointer; in particular no
// network write happens under it.
var EngineLockOrder = LockOrderConfig{
	Ranks: map[string]int{
		"sstore/internal/pe.partition.ddlMu":  1,
		"sstore/internal/pe.partition.readMu": 2,
		"sstore/internal/ee.Executor.mu":      3,
		"sstore/internal/storage.Views.mu":    4,
		"sstore/internal/storage.Table.latch": 5,
		"sstore/internal/cluster.Peers.mu":    6,
		"sstore/internal/cluster.peer.mu":     7,
		"sstore/internal/bufferpool.Pool.mu":  8,
	},
	Leaf:     map[int]bool{3: true, 7: true, 8: true},
	OrderDoc: "ddlMu → readMu → Executor.mu → Views.mu → Table.latch → Peers.mu → peer.mu → Pool.mu",
}

// LockOrder enforces EngineLockOrder over the module.
var LockOrder = NewLockOrder(EngineLockOrder)

// NewLockOrder builds a lock-order analyzer for a rank configuration
// (fixtures use their own).
func NewLockOrder(cfg LockOrderConfig) *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "enforces the documented lock acquisition order " + cfg.OrderDoc,
		Run:  func(pass *Pass) { runLockOrder(pass, cfg) },
	}
}

// lockOp is one syntactic lock operation.
type lockOp struct {
	key     string // lock identity ("pkg.Type.field" or a local description)
	rank    int    // 0 when unranked
	method  string // Lock, RLock, Unlock, RUnlock, TryLock, TryRLock
	acquire bool
}

func runLockOrder(pass *Pass, cfg LockOrderConfig) {
	// Pass 1: transitive may-acquire rank summaries per function.
	direct := make(map[*types.Func]map[int]bool)
	for fn, node := range pass.Graph.Nodes {
		ranks := make(map[int]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ok := lockOpOf(node.Pkg.Info, call); ok && op.acquire {
					if r := cfg.rankFor(op.key); r != 0 {
						ranks[r] = true
					}
				}
			}
			return true
		})
		direct[fn] = ranks
	}
	summary := make(map[*types.Func]map[int]bool, len(direct))
	for fn, ranks := range direct {
		s := make(map[int]bool, len(ranks))
		for r := range ranks {
			s[r] = true
		}
		summary[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range pass.Graph.Nodes {
			s := summary[fn]
			for _, e := range node.Callees {
				for r := range summary[e.Callee] {
					if !s[r] {
						s[r] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: abstract interpretation of each function's lock state.
	var fns []*types.Func
	for fn := range pass.Graph.Nodes {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		node := pass.Graph.Nodes[fn]
		sc := &lockScanner{pass: pass, cfg: cfg, info: node.Pkg.Info, summary: summary}
		sc.scanStmts(node.Decl.Body.List, map[string]lockOp{})
	}
}

type lockScanner struct {
	pass    *Pass
	cfg     LockOrderConfig
	info    *types.Info
	summary map[*types.Func]map[int]bool
}

// scanStmts walks a statement list tracking the held-lock set; branch
// arms are scanned with copies and merged by union (conservative).
func (s *lockScanner) scanStmts(stmts []ast.Stmt, held map[string]lockOp) map[string]lockOp {
	for _, st := range stmts {
		held = s.scanStmt(st, held)
	}
	return held
}

func copyHeld(held map[string]lockOp) map[string]lockOp {
	c := make(map[string]lockOp, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func mergeHeld(a, b map[string]lockOp) map[string]lockOp {
	for k, v := range b {
		a[k] = v
	}
	return a
}

func (s *lockScanner) scanStmt(st ast.Stmt, held map[string]lockOp) map[string]lockOp {
	switch st := st.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return s.scanStmts(st.List, held)
	case *ast.IfStmt:
		held = s.scanStmt(st.Init, held)
		s.scanExpr(st.Cond, held)
		after := s.scanStmts(st.Body.List, copyHeld(held))
		if st.Else != nil {
			return mergeHeld(after, s.scanStmt(st.Else, copyHeld(held)))
		}
		return mergeHeld(after, held)
	case *ast.ForStmt:
		held = s.scanStmt(st.Init, held)
		s.scanExpr(st.Cond, held)
		after := s.scanStmts(st.Body.List, copyHeld(held))
		s.scanStmt(st.Post, copyHeld(after))
		return mergeHeld(after, held)
	case *ast.RangeStmt:
		s.scanExpr(st.X, held)
		return mergeHeld(s.scanStmts(st.Body.List, copyHeld(held)), held)
	case *ast.SwitchStmt:
		held = s.scanStmt(st.Init, held)
		s.scanExpr(st.Tag, held)
		out := copyHeld(held)
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				out = mergeHeld(out, s.scanStmts(cc.Body, copyHeld(held)))
			}
		}
		return out
	case *ast.TypeSwitchStmt:
		held = s.scanStmt(st.Init, held)
		out := copyHeld(held)
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				out = mergeHeld(out, s.scanStmts(cc.Body, copyHeld(held)))
			}
		}
		return out
	case *ast.SelectStmt:
		out := copyHeld(held)
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				out = mergeHeld(out, s.scanStmts(cc.Body, copyHeld(held)))
			}
		}
		return out
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function exit, which
		// is the default in our model: simply don't release. Any other
		// deferred call is scanned for acquisitions under the current
		// held set.
		if op, ok := s.opOf(st.Call); ok {
			if op.acquire {
				return s.apply(op, st.Call, held)
			}
			return held
		}
		s.scanExpr(st.Call, held)
		return held
	case *ast.GoStmt:
		// A spawned goroutine starts with an empty lock set.
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.scanStmts(fl.Body.List, map[string]lockOp{})
		}
		return held
	case *ast.ExprStmt:
		return s.scanExprStmt(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = s.scanExprStmt(e, held)
		}
		for _, e := range st.Lhs {
			s.scanExpr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.scanExpr(e, held)
		}
		return held
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, held)
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.scanExpr(e, held)
				return false
			}
			return true
		})
		return held
	}
}

// scanExprStmt handles an expression in statement position, where lock
// operations take effect on the held set.
func (s *lockScanner) scanExprStmt(e ast.Expr, held map[string]lockOp) map[string]lockOp {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if op, ok := s.opOf(call); ok {
			return s.apply(op, call, held)
		}
	}
	s.scanExpr(e, held)
	return held
}

// scanExpr reports call-site violations inside an expression without
// changing the held set (nested calls, closures).
func (s *lockScanner) scanExpr(e ast.Expr, held map[string]lockOp) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures are scanned under the current held set: the
			// engine's closures (onPartition thunks, ForEachQueued
			// callbacks) run synchronously under their creator.
			s.scanStmts(n.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			if op, ok := s.opOf(n); ok {
				if op.acquire {
					s.apply(op, n, copyHeld(held))
				}
				return true
			}
			s.checkCall(n, held)
		}
		return true
	})
}

// apply checks one lock operation against the held set and updates it.
func (s *lockScanner) apply(op lockOp, call *ast.CallExpr, held map[string]lockOp) map[string]lockOp {
	if !op.acquire {
		delete(held, op.key)
		return held
	}
	for _, h := range sortedHeld(held) {
		switch {
		case h.rank != 0 && s.cfg.Leaf[h.rank]:
			s.pass.Reportf(call.Lparen, "%s of %s while holding leaf lock %s; nothing may be acquired under it",
				op.method, op.key, h.key)
		case op.rank != 0 && h.rank != 0 && op.rank <= h.rank:
			s.pass.Reportf(call.Lparen, "%s of %s (rank %d) while holding %s (rank %d) violates the lock order %s",
				op.method, op.key, op.rank, h.key, h.rank, s.cfg.OrderDoc)
		}
	}
	held[op.key] = op
	return held
}

// checkCall flags calls whose transitive acquire set conflicts with
// the locks currently held.
func (s *lockScanner) checkCall(call *ast.CallExpr, held map[string]lockOp) {
	if len(held) == 0 {
		return
	}
	callee, _ := resolveCallee(s.info, call)
	if callee == nil {
		return
	}
	acq := s.summary[callee]
	if len(acq) == 0 {
		return
	}
	var ranks []int
	for r := range acq {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, h := range sortedHeld(held) {
		if h.rank == 0 {
			continue
		}
		for _, r := range ranks {
			if r <= h.rank || s.cfg.Leaf[h.rank] {
				s.pass.Reportf(call.Lparen, "call to %s may acquire a rank-%d lock while holding %s (rank %d); order is %s",
					funcDisplayName(callee), r, h.key, h.rank, s.cfg.OrderDoc)
				break
			}
		}
	}
}

func sortedHeld(held map[string]lockOp) []lockOp {
	ops := make([]lockOp, 0, len(held))
	for _, op := range held {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].key < ops[j].key })
	return ops
}

// lockOpOf recognizes sync.Mutex/RWMutex method calls and identifies
// the lock instance.
func lockOpOf(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	method := sel.Sel.Name
	var acquire bool
	switch method {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return lockOp{}, false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return lockOp{}, false
	}
	m, _ := selection.Obj().(*types.Func)
	if m == nil || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	return lockOp{key: lockKeyOf(info, sel.X), method: method, acquire: acquire}, true
}

// lockKeyOf renders a lock instance identity. Struct fields become
// "pkgpath.Type.field" (the rankable form); everything else gets a
// descriptive unranked key.
func lockKeyOf(info *types.Info, x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		base := info.TypeOf(x.X)
		if base == nil {
			break
		}
		if p, ok := base.(*types.Pointer); ok {
			base = p.Elem()
		}
		if named, ok := base.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
		}
	case *ast.Ident:
		if t := info.TypeOf(x); t != nil {
			// An embedded mutex promoted to a named type's method set.
			base := t
			if p, ok := base.(*types.Pointer); ok {
				base = p.Elem()
			}
			if named, ok := base.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".<embedded>"
			}
		}
		return "local " + x.Name
	}
	return "<expr>"
}

// rankFor resolves a key's rank (0 = unranked) against a config.
func (cfg LockOrderConfig) rankFor(key string) int { return cfg.Ranks[key] }

// opOf recognizes a lock-method call and attaches its configured rank.
func (s *lockScanner) opOf(call *ast.CallExpr) (lockOp, bool) {
	op, ok := lockOpOf(s.info, call)
	if !ok {
		return lockOp{}, false
	}
	op.rank = s.cfg.rankFor(op.key)
	return op, true
}
