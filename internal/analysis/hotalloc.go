package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// HotAllocConfig parameterizes the hot-path allocation analyzer.
type HotAllocConfig struct {
	// BoxedTypes are named value types whose conversion to an interface
	// is called out explicitly (the classic hidden allocation: a
	// multi-word struct boxed into `any` escapes to the heap).
	BoxedTypes map[string]bool
}

// EngineHotAlloc names the repo's hot boxed type.
var EngineHotAlloc = HotAllocConfig{
	BoxedTypes: map[string]bool{"sstore/internal/types.Value": true},
}

// HotAlloc enforces allocation discipline in functions annotated
// //sstore:nomalloc: the Table.beginMutate fast path, scheduler deque
// operations, and wire encode/decode primitives. It reports the
// constructs that force heap allocations:
//
//   - composite and function literals, make, new;
//   - append outside the self-append idiom (x = append(x, ...), the
//     caller-owned amortized buffer — actual growth is bounded by the
//     package's //sstore:allocgate AllocsPerRun test);
//   - string ↔ []byte/[]rune conversions;
//   - boxing a concrete value into an interface (types.Value named
//     explicitly);
//   - calls to module functions not themselves //sstore:nomalloc or
//     //sstore:pooled (pooled get/put constructors hand out recycled
//     structs — amortized allocation-free, like self-append), and to
//     the allocating corners of the standard library.
//
// It also checks that //sstore:pooled annotations come in pairs per
// package: a lone pooled function recycles nothing.
//
// Deliberate slow paths (copy-on-write detach, deque growth, error
// construction) carry //lint:allow hotalloc suppressions that document
// why the allocation is acceptable there.
var HotAlloc = NewHotAlloc(EngineHotAlloc)

// NewHotAlloc builds the analyzer for a config (fixtures use their
// own boxed-type list).
func NewHotAlloc(cfg HotAllocConfig) *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "reports heap allocations in //sstore:nomalloc functions",
		Run:  func(pass *Pass) { runHotAlloc(pass, cfg) },
	}
}

// allocatingStdlib are standard-library packages whose every call is
// presumed to allocate (error/formatting machinery).
var allocatingStdlib = map[string]bool{"fmt": true, "errors": true, "sort": true}

func runHotAlloc(pass *Pass, cfg HotAllocConfig) {
	var fns []*types.Func
	for fn := range pass.Ann.NoMalloc {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		node := pass.Graph.Nodes[fn]
		if node == nil {
			continue
		}
		checkNoMalloc(pass, cfg, node)
	}
	checkPooledPairs(pass)
}

// checkPooledPairs reports packages annotating only one side of a
// get/put pool: recycling needs both a constructor that pops the free
// list and a recycler that pushes retired structs back.
func checkPooledPairs(pass *Pass) {
	byPkg := make(map[*types.Package][]*types.Func)
	for fn := range pass.Ann.Pooled {
		byPkg[fn.Pkg()] = append(byPkg[fn.Pkg()], fn)
	}
	var lone []*types.Func
	for _, fns := range byPkg {
		if len(fns) == 1 {
			lone = append(lone, fns[0])
		}
	}
	sort.Slice(lone, func(i, j int) bool { return lone[i].FullName() < lone[j].FullName() })
	for _, fn := range lone {
		node := pass.Graph.Nodes[fn]
		if node == nil {
			continue
		}
		pass.Reportf(node.Decl.Name.Pos(), "//sstore:pooled function %s has no pooled counterpart in its package; pools recycle through get/put pairs", funcDisplayName(fn))
	}
}

func checkNoMalloc(pass *Pass, cfg HotAllocConfig, node *CallNode) {
	info := node.Pkg.Info
	name := funcDisplayName(node.Fn)
	// Append calls in the self-append idiom are exempt.
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isBuiltin(info, call, "append") {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			selfAppend[call] = true
		}
		return true
	})
	// Append-style APIs — `return append(buf, …)` — hand growth back to
	// the caller, the same amortized contract as the self-append idiom.
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && len(call.Args) > 0 && isBuiltin(info, call, "append") {
				selfAppend[call] = true
			}
		}
		return true
	})

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(n.Lbrace, "composite literal allocates in //sstore:nomalloc function %s", name)
		case *ast.FuncLit:
			pass.Reportf(n.Type.Func, "function literal (closure) allocates in //sstore:nomalloc function %s", name)
			return false
		case *ast.CallExpr:
			checkNoMallocCall(pass, cfg, info, name, n, selfAppend)
		}
		return true
	})
}

func checkNoMallocCall(pass *Pass, cfg HotAllocConfig, info *types.Info, name string, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	// Conversions: only string ↔ byte/rune slice pairs allocate.
	if info.Types[call.Fun].IsType() {
		if len(call.Args) == 1 && stringSliceConversion(info, call) {
			pass.Reportf(call.Lparen, "string conversion copies its bytes in //sstore:nomalloc function %s", name)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Lparen, "%s allocates in //sstore:nomalloc function %s", b.Name(), name)
			case "append":
				if !selfAppend[call] {
					pass.Reportf(call.Lparen, "append outside the self-append idiom in //sstore:nomalloc function %s; write x = append(x, ...) over a caller-owned buffer or preallocate", name)
				}
			}
			return
		}
	}
	checkBoxing(pass, cfg, info, name, call)
	callee, _ := resolveCallee(info, call)
	if callee == nil {
		if !isFuncValueOnStack(info, call) {
			pass.Reportf(call.Lparen, "dynamic call in //sstore:nomalloc function %s cannot be verified allocation-free", name)
		}
		return
	}
	if callee.Pkg() == nil {
		return
	}
	if pass.Graph.Nodes[callee] != nil || strings.HasPrefix(callee.Pkg().Path(), "sstore") {
		// Pooled get/put constructors are allowed: they hand out
		// recycled structs, the pool's steady state allocation-free by
		// the same amortized contract as self-append.
		if !pass.Ann.NoMalloc[callee] && !pass.Ann.Pooled[callee] {
			pass.Reportf(call.Lparen, "call to %s, which is not //sstore:nomalloc, in //sstore:nomalloc function %s", funcDisplayName(callee), name)
		}
		return
	}
	if allocatingStdlib[callee.Pkg().Path()] {
		pass.Reportf(call.Lparen, "call to %s.%s allocates in //sstore:nomalloc function %s", callee.Pkg().Path(), callee.Name(), name)
	}
}

// checkBoxing flags concrete values passed where an interface is
// expected: the conversion heap-allocates the value's copy.
func checkBoxing(pass *Pass, cfg HotAllocConfig, info *types.Info, name string, call *ast.CallExpr) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		// Pointer-shaped values (pointers, channels, maps, funcs) are
		// stored directly in the interface word: no allocation.
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue
		}
		label := at.String()
		if named, ok := at.(*types.Named); ok && named.Obj().Pkg() != nil && cfg.BoxedTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()] {
			pass.Reportf(arg.Pos(), "boxing %s into %s allocates in //sstore:nomalloc function %s", label, pt.String(), name)
			continue
		}
		pass.Reportf(arg.Pos(), "boxing %s into interface %s allocates in //sstore:nomalloc function %s", label, pt.String(), name)
	}
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// stringSliceConversion reports string(b) / []byte(s) / []rune(s)
// style conversions, the ones that copy.
func stringSliceConversion(info *types.Info, call *ast.CallExpr) bool {
	to := info.TypeOf(call)
	from := info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isFuncValueOnStack reports method-value receivers like d.fail — the
// dynamic-call heuristic exempts calls through an identifier of
// function type held in a local variable that was never stored: too
// rare to model; keep nil (always verify). Currently always false.
func isFuncValueOnStack(info *types.Info, call *ast.CallExpr) bool { return false }

// AllocGate pairs every //sstore:nomalloc annotation with an
// //sstore:allocgate marker in the owning package's tests — the marker
// sits on the testing.AllocsPerRun gate that enforces the budget at
// run time — so the static annotation and the runtime gate cannot
// drift apart. A nomalloc function without a gate, or a gate marker
// naming no annotated function, is reported.
var AllocGate = &Analyzer{
	Name: "allocgate",
	Doc:  "pairs //sstore:nomalloc annotations with AllocsPerRun gate markers",
	Run:  runAllocGate,
}

func runAllocGate(pass *Pass) {
	covered := make(map[string]bool, len(pass.Ann.AllocGates))
	var fns []*types.Func
	for fn := range pass.Ann.NoMalloc {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		key := gateKey(fn)
		covered[key] = true
		if _, ok := pass.Ann.AllocGates[key]; !ok {
			pos := fn.Pos()
			if node := pass.Graph.Nodes[fn]; node != nil {
				pos = node.Decl.Name.Pos()
			}
			pass.Reportf(pos, "//sstore:nomalloc function %s has no //sstore:allocgate %s marker on an AllocsPerRun gate in its package's tests", funcDisplayName(fn), gateName(fn))
		}
	}
	var orphans []string
	for key := range pass.Ann.AllocGates {
		if !covered[key] {
			orphans = append(orphans, key)
		}
	}
	sort.Strings(orphans)
	for _, key := range orphans {
		pos := pass.Ann.AllocGates[key]
		pass.report(Diagnostic{
			Analyzer: "allocgate",
			Pos:      pos,
			Message:  "//sstore:allocgate marker names no //sstore:nomalloc function (" + key + "); update or remove the gate",
		})
	}
}

// gateName is the name used in a marker: Type.Func for methods, Func
// otherwise.
func gateName(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return name
}

// gateKey scopes a gate name to its package.
func gateKey(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + gateName(fn)
	}
	return gateName(fn)
}
