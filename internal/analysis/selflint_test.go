package analysis

import "testing"

// TestSelfLint runs the full invariant suite over the repository
// itself, so `go test ./...` fails on any violation even where CI's
// explicit sstore-lint step doesn't run. Testdata fixture trees are
// outside `go list ./...` and stay out of this pass.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(prog, []*Analyzer{ReplayDet, LockOrder, HotAlloc, ErrDrop, AllocGate})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
