// Package locks exercises the lock-order analyzer against a miniature
// of the engine's lock hierarchy: ddlMu (rank 1) → readMu (rank 2) →
// latch (rank 3, leaf).
package locks

import "sync"

type engine struct {
	ddlMu  sync.RWMutex
	readMu sync.Mutex
	st     *store
}

type store struct {
	latch sync.RWMutex
	rows  int
}

// goodOrder acquires in documented order: no findings.
func (e *engine) goodOrder() {
	e.ddlMu.RLock()
	e.readMu.Lock()
	e.st.latch.RLock()
	e.st.rows++
	e.st.latch.RUnlock()
	e.readMu.Unlock()
	e.ddlMu.RUnlock()
}

// badOrder inverts ddlMu and readMu.
func (e *engine) badOrder() {
	e.readMu.Lock()
	e.ddlMu.RLock() // want "RLock of locks.engine.ddlMu \\(rank 1\\) while holding locks.engine.readMu \\(rank 2\\)"
	e.ddlMu.RUnlock()
	e.readMu.Unlock()
}

// underLeaf acquires a lock while holding the leaf latch.
func (e *engine) underLeaf() {
	e.st.latch.RLock()
	e.readMu.Lock() // want "Lock of locks.engine.readMu while holding leaf lock locks.store.latch"
	e.readMu.Unlock()
	e.st.latch.RUnlock()
}

// lockDDL gives transitiveBad something to call.
func (e *engine) lockDDL() {
	e.ddlMu.Lock()
	e.ddlMu.Unlock()
}

// transitiveBad holds readMu across a call that acquires ddlMu.
func (e *engine) transitiveBad() {
	e.readMu.Lock()
	e.lockDDL() // want "call to locks.engine.lockDDL may acquire a rank-1 lock while holding locks.engine.readMu \\(rank 2\\)"
	e.readMu.Unlock()
}

// released drops readMu before taking ddlMu: no findings.
func (e *engine) released() {
	e.readMu.Lock()
	e.readMu.Unlock()
	e.ddlMu.Lock()
	e.ddlMu.Unlock()
}

// deferredHold keeps readMu held to exit via defer, so the helper call
// that re-acquires it is a self-deadlock.
func (e *engine) deferredHold() {
	e.readMu.Lock()
	defer e.readMu.Unlock()
	e.helperRead() // want "call to locks.engine.helperRead may acquire a rank-2 lock while holding locks.engine.readMu \\(rank 2\\)"
}

func (e *engine) helperRead() {
	e.readMu.Lock()
	e.readMu.Unlock()
}

// branches union held sets: the latch is held on only one arm, but a
// conservative checker must still flag the acquisition after the join.
func (e *engine) branches(cond bool) {
	if cond {
		e.st.latch.RLock()
	}
	e.readMu.Lock() // want "Lock of locks.engine.readMu while holding leaf lock locks.store.latch"
	e.readMu.Unlock()
	if cond {
		e.st.latch.RUnlock()
	}
}

// spawned goroutines start with an empty lock set: no findings.
func (e *engine) spawns() {
	e.readMu.Lock()
	go func() {
		e.ddlMu.Lock()
		e.ddlMu.Unlock()
	}()
	e.readMu.Unlock()
}
