package gate

import "testing"

//sstore:allocgate ring.covered
func TestCoveredAllocs(t *testing.T) {
	r := &ring{}
	if n := testing.AllocsPerRun(100, func() { _ = r.covered() }); n != 0 {
		t.Fatalf("covered allocates %v/op", n)
	}
}

//sstore:allocgate ghost // want "names no //sstore:nomalloc function"
func TestGhostAllocs(t *testing.T) {}
