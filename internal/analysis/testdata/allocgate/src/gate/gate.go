// Package gate exercises the annotation/gate parity check: every
// //sstore:nomalloc function needs an //sstore:allocgate marker on an
// AllocsPerRun test in its package, and every marker needs a function.
package gate

type ring struct{ buf []int }

// covered has a matching gate marker in gate_test.go: no findings.
//
//sstore:nomalloc
func (r *ring) covered() int {
	return len(r.buf)
}

//sstore:nomalloc
func uncovered() int { // want "has no //sstore:allocgate uncovered marker"
	return 0
}
