// Package border reproduces the PR-5 bug class: the engine's border
// picked a stream consumer by map-iteration order, so two replays of
// the same command log could route the same tuple to different
// consumers. replaydet must catch this shape.
package border

type consumer struct {
	name  string
	queue []int
}

type registry struct {
	consumers map[string]*consumer
}

// Dispatch routes a border tuple to the "first" downstream consumer —
// which, ranging over a map, is a different consumer on every run.
//
//sstore:deterministic
func (r *registry) Dispatch(tuple int) {
	for _, c := range r.consumers { // want "map iteration order escapes"
		c.queue = append(c.queue, tuple)
		break
	}
}
