package replay

import (
	"math/rand"
	"sort"
	"time"
)

type batch struct {
	id  int
	val int
}

type engine struct {
	out     []batch
	pending map[int]batch
	total   int
	seen    map[int]bool
}

// Replay is an annotated replay entry point.
//
//sstore:deterministic
func (e *engine) Replay() {
	for _, b := range e.pending { // want "map iteration order escapes"
		e.out = append(e.out, b)
	}
	for id, b := range e.pending { // order-insensitive: accumulation + keyed writes
		e.total += b.val
		e.seen[id] = true
	}
	ids := make([]int, 0, len(e.pending))
	for id := range e.pending { // collected then sorted: erased order, no finding
		ids = append(ids, id)
	}
	sort.Ints(ids)
	e.helper()
	e.total += int(stamp())
}

func (e *engine) helper() {
	if rand.Intn(2) == 0 { // want "global rand.Intn"
		e.total++
	}
}

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

// waitTwo blocks on whichever channel is ready first — the runtime
// picks pseudo-randomly when both are.
//
//sstore:deterministic
func waitTwo(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// notOnPath is unannotated and unreachable from any entry point, so its
// nondeterminism is not this analyzer's business.
func notOnPath(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v * int(time.Now().Unix())
	}
	return total
}
