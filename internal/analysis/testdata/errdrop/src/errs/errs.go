// Package errs exercises the engine-specific errcheck: Txn.Commit and
// Log.Append stand in for the configured must-use APIs.
package errs

import "errors"

type Txn struct{ open bool }

func (t *Txn) Commit() error {
	if !t.open {
		return errors.New("closed")
	}
	return nil
}

type Log struct{ seq int64 }

func (l *Log) Append(rec []byte) (int64, error) {
	l.seq++
	return l.seq, nil
}

func dropExpr(t *Txn) {
	t.Commit() // want "result of errs.Txn.Commit dropped"
}

func dropBlank(t *Txn) {
	_ = t.Commit() // want "error result of errs.Txn.Commit assigned to _"
}

func dropLast(l *Log) int64 {
	seq, _ := l.Append(nil) // want "error result of errs.Log.Append assigned to _"
	return seq
}

func dropGo(t *Txn) {
	go t.Commit() // want "result of errs.Txn.Commit dropped by go statement"
}

func dropDefer(t *Txn) {
	defer t.Commit() // want "result of errs.Txn.Commit dropped by defer"
}

func checked(t *Txn, l *Log) error {
	if err := t.Commit(); err != nil {
		return err
	}
	seq, err := l.Append(nil)
	_ = seq
	return err
}

func allowedDrop(t *Txn) {
	//lint:allow errdrop -- advisory on this teardown path
	t.Commit()
}
