// Package lonepool exercises the pooled-pair check: a package
// annotating only one side of a get/put pool recycles nothing.
package lonepool

type node struct{ next *node }

//sstore:pooled
func getOnly() *node { // want "has no pooled counterpart"
	return &node{}
}
