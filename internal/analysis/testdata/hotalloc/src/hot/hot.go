// Package hot exercises the hot-path allocation analyzer: //sstore:nomalloc
// functions mirror the engine's deque ops and wire primitives.
package hot

type value struct {
	k int
	i int64
	f float64
	s string
}

func sink(v interface{}) { _ = v }

type ring struct {
	buf  []value
	head int
	tail int
}

// push is the hot deque op; growth is a separate, allocating slow path.
//
//sstore:nomalloc
func (r *ring) push(v value) {
	if r.tail == len(r.buf) {
		r.grow() // want "call to hot.ring.grow, which is not //sstore:nomalloc"
	}
	r.buf[r.tail] = v
	r.tail++
}

// pop is allocation-free: no findings.
//
//sstore:nomalloc
func (r *ring) pop() value {
	v := r.buf[r.head]
	r.head++
	return v
}

func (r *ring) grow() {
	next := make([]value, 2*len(r.buf)+1)
	copy(next, r.buf)
	r.buf = next
}

//sstore:nomalloc
func build() *ring {
	return &ring{} // want "composite literal allocates"
}

//sstore:nomalloc
func makes() []value {
	return make([]value, 4) // want "make allocates"
}

//sstore:nomalloc
func closes(n int) func() int {
	return func() int { return n } // want "function literal \\(closure\\) allocates"
}

//sstore:nomalloc
func appendSelf(buf []value, v value) []value {
	buf = append(buf, v) // self-append idiom: caller-owned buffer, no finding
	return buf
}

//sstore:nomalloc
func appendReturn(buf []value, v value) []value {
	return append(buf, v) // append-style API: growth is the caller's contract
}

//sstore:nomalloc
func appendOther(dst, src []value, v value) []value {
	dst = append(src, v) // want "append outside the self-append idiom"
	return dst
}

//sstore:nomalloc
func toBytes(s string) int {
	b := []byte(s) // want "string conversion copies its bytes"
	return len(b)
}

//sstore:nomalloc
func boxValue(v value) {
	sink(v) // want "boxing hot.value into" "call to hot.sink, which is not //sstore:nomalloc"
}

//sstore:nomalloc
func boxInt(n int) {
	sink(n) // want "boxing int into" "call to hot.sink, which is not //sstore:nomalloc"
}

// allowed documents its deliberate slow path with a suppression.
//
//sstore:nomalloc
func allowed() *ring {
	//lint:allow hotalloc -- construction path, not the hot loop
	return &ring{}
}

// getNode / putNode form a pooled pair: calling them from nomalloc
// code is allowed even though a cold pool allocates inside.
//
//sstore:pooled
func getNode() *ring {
	//lint:allow hotalloc -- cold-pool miss; steady state recycles
	return &ring{}
}

//sstore:pooled
func putNode(r *ring) {
	_ = r
}

//sstore:nomalloc
func recycles() {
	r := getNode() // pooled callee: no finding
	putNode(r)     // pooled callee: no finding
}
