// Package pe is the partition engine: it owns partitions (one serial
// execution goroutine each, §3.1), the stored-procedure registry, the
// streaming scheduler with its PE-trigger fast path (§3.2.3–3.2.4),
// command logging per recovery mode, checkpointing, and crash recovery.
package pe

import (
	"sync"

	"sstore/internal/types"
	"sstore/internal/wal"
)

// task is one unit of work queued on a partition.
type task struct {
	// sp is the stored procedure to execute; empty for control
	// tasks.
	sp      string
	params  types.Row
	batchID int64
	// batch carries the atomic batch's tuples when the TE must place
	// them into its input stream itself: border TEs (the ingest path,
	// where arrival and processing commit atomically, §2.1) and
	// interior TEs whose batch was routed to this partition by the
	// cross-partition dispatch path (the rows move with the task).
	batch []types.Row
	// kind classifies the TE for command logging.
	kind wal.RecordKind
	// inputStream is the stream table this TE consumes; after commit
	// the engine garbage-collects the batch once every consumer ran
	// (§3.2.3).
	inputStream string
	// gcRefs, on an interior task that carries a relocated batch
	// (cross-partition dispatch), is the total number of consumers
	// sharing the batch; the carrying task registers the remaining
	// refcount on the destination partition after it commits.
	gcRefs int
	// nested, when non-nil, makes this task a nested transaction:
	// the children run as one isolation unit (§2.3).
	nested []nestedChild
	// control, when non-nil, runs inside the partition goroutine
	// with exclusive access to its catalog (checkpoints, recovery
	// helpers, barriers).
	control func(p *partition) error
	// reply, when non-nil, receives the outcome.
	reply chan callResult
	// noLog suppresses command logging for this TE (recovery
	// replay).
	noLog bool
}

type nestedChild struct {
	sp     string
	params types.Row
}

type callResult struct {
	res *Result
	err error
}

// Result is the client-visible outcome of a transaction execution.
type Result struct {
	// Rows and Columns carry the result set the procedure chose to
	// return (see ProcCtx.SetResult).
	Columns []string
	Rows    []types.Row
	// LastInsertBatch reports the batch ID processed, for streaming
	// TEs.
	LastInsertBatch int64
}

// scheduler is a partition's transaction request queue: FIFO for
// client-submitted work, with a front-of-queue fast path for
// PE-triggered TEs so a workflow's TEs for one batch execute without
// interleaving (§3.2.4). It is the only concurrency boundary between
// clients and the partition goroutine.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	front  []*task // triggered TEs, consumed before back
	back   []*task // FIFO client requests
	closed bool
	// track, when non-nil, is the engine-wide outstanding-work counter
	// backing the event-driven Drain: every successful enqueue
	// increments it; the partition goroutine releases it after the
	// task finishes executing.
	track *quiesce
}

func newScheduler() *scheduler {
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// PushBack appends a client request (FIFO order).
func (s *scheduler) PushBack(t *task) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.back = append(s.back, t)
	if s.track != nil {
		s.track.add(1)
	}
	s.cond.Signal()
	return true
}

// PushBackBatch appends several tasks atomically in the given order.
// The cross-partition dispatch path uses this: a committing TE hands a
// routed batch's consumer TEs to another partition's queue as one unit,
// so batches of a stream arrive at each partition in the producer's
// commit order (the per-(stream, partition) ordering guarantee) and no
// foreign task can land between the consumers of one batch.
func (s *scheduler) PushBackBatch(ts []*task) bool {
	if len(ts) == 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.back = append(s.back, ts...)
	if s.track != nil {
		s.track.add(len(ts))
	}
	s.cond.Signal()
	return true
}

// PushFrontBatch prepends triggered TEs, preserving the given order
// ahead of everything already queued. The partition goroutine calls
// this when a committing TE fires PE triggers, so the downstream TEs
// run immediately — the "short-circuit of H-Store's FIFO scheduler"
// (§3.2.4).
func (s *scheduler) PushFrontBatch(ts []*task) {
	if len(ts) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.front = append(append(make([]*task, 0, len(ts)+len(s.front)), ts...), s.front...)
	if s.track != nil {
		s.track.add(len(ts))
	}
	s.cond.Signal()
}

// Pop blocks for the next task, front queue first. ok=false means the
// scheduler is closed and drained.
func (s *scheduler) Pop() (*task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.front) == 0 && len(s.back) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.front) > 0 {
		t := s.front[0]
		s.front = s.front[1:]
		return t, true
	}
	if len(s.back) > 0 {
		t := s.back[0]
		s.back = s.back[1:]
		return t, true
	}
	return nil, false
}

// ForEachQueued visits every queued task (front queue first) under
// the scheduler lock; the checkpoint barrier uses it to ground
// batches traveling inside queued carrying tasks. fn must not call
// back into the scheduler.
func (s *scheduler) ForEachQueued(fn func(*task)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.front {
		fn(t)
	}
	for _, t := range s.back {
		fn(t)
	}
}

// Len returns the number of queued tasks.
func (s *scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.front) + len(s.back)
}

// Close wakes the partition loop for shutdown; queued tasks still
// drain.
func (s *scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}
