// Package pe is the partition engine: it owns partitions (one serial
// execution goroutine each, §3.1), the stored-procedure registry, the
// streaming scheduler with its PE-trigger fast path (§3.2.3–3.2.4),
// command logging per recovery mode, checkpointing, and crash recovery.
package pe

import (
	"sync"

	"sstore/internal/types"
	"sstore/internal/wal"
)

// task is one unit of work queued on a partition.
type task struct {
	// sp is the stored procedure to execute; empty for control
	// tasks.
	sp      string
	params  types.Row
	batchID int64
	// batch carries the atomic batch's tuples when the TE must place
	// them into its input stream itself: border TEs (the ingest path,
	// where arrival and processing commit atomically, §2.1) and
	// interior TEs whose batch was routed to this partition by the
	// cross-partition dispatch path (the rows move with the task).
	batch []types.Row
	// kind classifies the TE for command logging.
	kind wal.RecordKind
	// inputStream is the stream table this TE consumes; after commit
	// the engine garbage-collects the batch once every consumer ran
	// (§3.2.3).
	inputStream string
	// gcRefs, on an interior task that carries a relocated batch
	// (cross-partition dispatch), is the total number of consumers
	// sharing the batch; the carrying task registers the remaining
	// refcount on the destination partition after it commits.
	gcRefs int
	// nested, when non-nil, makes this task a nested transaction:
	// the children run as one isolation unit (§2.3).
	nested []nestedChild
	// control, when non-nil, runs inside the partition goroutine
	// with exclusive access to its catalog (checkpoints, recovery
	// helpers, barriers).
	control func(p *partition) error
	// reply, when non-nil, receives the outcome.
	reply chan callResult
	// noLog suppresses command logging for this TE (recovery
	// replay).
	noLog bool
}

type nestedChild struct {
	sp     string
	params types.Row
}

type callResult struct {
	res *Result
	err error
}

// Result is the client-visible outcome of a transaction execution.
type Result struct {
	// Rows and Columns carry the result set the procedure chose to
	// return (see ProcCtx.SetResult).
	Columns []string
	Rows    []types.Row
	// LastInsertBatch reports the batch ID processed, for streaming
	// TEs.
	LastInsertBatch int64
}

// deque is a ring-buffer double-ended task queue: push and pop at
// either end are amortized O(1), unlike the slice pair it replaced,
// where every front push re-allocated and copied the whole front queue
// — O(depth) per committing TE under load. Capacity is kept a power of
// two so index wrap is a mask. Not safe for concurrent use; the
// scheduler serializes access under its mutex.
type deque struct {
	buf  []*task
	head int // index of the first element
	n    int
}

func (d *deque) len() int { return d.n }

// grow doubles capacity until need more elements fit, re-linearizing
// the ring at index 0.
func (d *deque) grow(need int) {
	if d.n+need <= len(d.buf) {
		return
	}
	capNew := len(d.buf)
	if capNew == 0 {
		capNew = 8
	}
	for capNew < d.n+need {
		capNew *= 2
	}
	buf := make([]*task, capNew)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf = buf
	d.head = 0
}

//sstore:nomalloc
func (d *deque) pushBack(t *task) {
	//lint:allow hotalloc -- grow is the amortized slow path; steady-state pushes stay inside the ring
	d.grow(1)
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = t
	d.n++
}

//sstore:nomalloc
func (d *deque) pushFront(t *task) {
	//lint:allow hotalloc -- grow is the amortized slow path; steady-state pushes stay inside the ring
	d.grow(1)
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = t
	d.n++
}

//sstore:nomalloc
func (d *deque) popFront() *task {
	t := d.buf[d.head]
	d.buf[d.head] = nil // release for GC
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return t
}

// peekFront returns the first element without popping; the caller must
// have checked len() > 0.
func (d *deque) peekFront() *task { return d.buf[d.head] }

func (d *deque) forEach(fn func(*task)) {
	for i := 0; i < d.n; i++ {
		fn(d.buf[(d.head+i)&(len(d.buf)-1)])
	}
}

// scheduler is a partition's transaction request queue: FIFO for
// client-submitted work, with a front-of-queue fast path for
// PE-triggered TEs so a workflow's TEs for one batch execute without
// interleaving (§3.2.4). It is the only concurrency boundary between
// clients and the partition goroutine.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	front  deque // triggered TEs, consumed before back
	back   deque // FIFO client requests
	closed bool
	// bound, when positive, caps the queue depth seen by border
	// submissions (PushBackBounded): client Calls and ingested batches
	// are rejected with an overload signal once front+back reaches it.
	// Interior pushes (PushBack, PushBackBatch, PushFrontBatch) ignore
	// the bound — a committing TE must always be able to hand work to
	// the next partition, or cross-partition dispatch could deadlock.
	bound int
	// track, when non-nil, is the engine-wide outstanding-work counter
	// backing the event-driven Drain: every successful enqueue
	// increments it; the partition goroutine releases it after the
	// task finishes executing.
	track *quiesce
}

func newScheduler() *scheduler {
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// PushBack appends a client request (FIFO order), ignoring the depth
// bound; border paths use PushBackBounded instead.
func (s *scheduler) PushBack(t *task) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.back.pushBack(t)
	if s.track != nil {
		s.track.add(1)
	}
	s.cond.Signal()
	return true
}

// PushBackBounded appends a border submission (client Call or ingested
// batch) unless the queue is full. closed=false means the scheduler is
// shut down; otherwise full reports whether the depth bound rejected
// the task, with depth the queue depth observed under the lock (the
// basis for the retry-after hint).
func (s *scheduler) PushBackBounded(t *task) (ok, full bool, depth int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, false, 0
	}
	depth = s.front.len() + s.back.len()
	if s.bound > 0 && depth >= s.bound {
		return false, true, depth
	}
	s.back.pushBack(t)
	if s.track != nil {
		s.track.add(1)
	}
	s.cond.Signal()
	return true, false, depth
}

// PushBackBatch appends several tasks atomically in the given order.
// The cross-partition dispatch path uses this: a committing TE hands a
// routed batch's consumer TEs to another partition's queue as one unit,
// so batches of a stream arrive at each partition in the producer's
// commit order (the per-(stream, partition) ordering guarantee) and no
// foreign task can land between the consumers of one batch. The depth
// bound is deliberately not applied: rejecting an already-committed
// batch would lose it.
func (s *scheduler) PushBackBatch(ts []*task) bool {
	if len(ts) == 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.back.grow(len(ts))
	for _, t := range ts {
		s.back.pushBack(t)
	}
	if s.track != nil {
		s.track.add(len(ts))
	}
	s.cond.Signal()
	return true
}

// PushFrontBatch prepends triggered TEs, preserving the given order
// ahead of everything already queued. The partition goroutine calls
// this when a committing TE fires PE triggers, so the downstream TEs
// run immediately — the "short-circuit of H-Store's FIFO scheduler"
// (§3.2.4). Never bounded: the TEs continue an admitted batch's
// workflow.
func (s *scheduler) PushFrontBatch(ts []*task) {
	if len(ts) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.front.grow(len(ts))
	for i := len(ts) - 1; i >= 0; i-- {
		s.front.pushFront(ts[i])
	}
	if s.track != nil {
		s.track.add(len(ts))
	}
	s.cond.Signal()
}

// Pop blocks for the next task, front queue first. ok=false means the
// scheduler is closed and drained.
func (s *scheduler) Pop() (*task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.front.len() == 0 && s.back.len() == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.front.len() > 0 {
		return s.front.popFront(), true
	}
	if s.back.len() > 0 {
		return s.back.popFront(), true
	}
	return nil, false
}

// PopRun blocks like Pop for the first task, then — when that task is
// eligible — drains further immediately-available eligible tasks into
// buf (front queue first, the same order Pop would yield), stopping at
// the first ineligible task, which stays queued. It never waits for
// more work once it holds one task. Returns the number of tasks
// popped; wave=false means the single popped task was ineligible and
// must run serially. ok=false means closed and drained.
//
// The eligible callback runs under the scheduler lock and must not
// call back into the scheduler.
func (s *scheduler) PopRun(buf []*task, eligible func(*task) bool) (n int, wave, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.front.len() == 0 && s.back.len() == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.front.len() == 0 && s.back.len() == 0 {
		return 0, false, false
	}
	pop := func() *task {
		if s.front.len() > 0 {
			return s.front.popFront()
		}
		return s.back.popFront()
	}
	buf[0] = pop()
	n = 1
	if !eligible(buf[0]) {
		return n, false, true
	}
	for n < len(buf) && s.front.len()+s.back.len() > 0 {
		var next *task
		if s.front.len() > 0 {
			next = s.front.peekFront()
		} else {
			next = s.back.peekFront()
		}
		if !eligible(next) {
			break
		}
		buf[n] = pop()
		n++
	}
	return n, true, true
}

// ForEachQueued visits every queued task (front queue first) under
// the scheduler lock; the checkpoint barrier uses it to ground
// batches traveling inside queued carrying tasks. fn must not call
// back into the scheduler.
func (s *scheduler) ForEachQueued(fn func(*task)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.front.forEach(fn)
	s.back.forEach(fn)
}

// Len returns the number of queued tasks.
func (s *scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.front.len() + s.back.len()
}

// Close wakes the partition loop for shutdown; queued tasks still
// drain.
func (s *scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}
