package pe

import (
	"os"
	"testing"
	"time"

	"sstore/internal/recovery"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
	"sstore/internal/workflow"
)

// Sharded-command-log recovery tests: a multi-partition routed
// workflow crashes with one log file per partition; recovery
// merge-replays the shards in global commit order.

// routedLogOpts builds the standard 4-partition sharded-log options
// used by the tests below: logs live under dir as a directory layout.
func routedLogOpts(dir string, parts int, mode recovery.Mode) Options {
	return Options{
		Partitions:  parts,
		Recovery:    mode,
		LogPath:     dir,
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
		PartitionBy: routeByKey(parts),
	}
}

// ingestRouted pushes n keyed batches through the routed pipeline.
func ingestRouted(t *testing.T, e *Engine, from, n int64) {
	t.Helper()
	for i := from; i < from+n; i++ {
		b := &stream.Batch{ID: i + 1, Rows: []types.Row{{types.NewInt(i % 4), types.NewInt(i)}}}
		if err := e.IngestSync("jobs_in", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e.TriggerErr(); err != nil {
		t.Fatal(err)
	}
}

// resultsAcross collects the results table across all partitions,
// keyed by value (each ingested tuple lands on exactly one partition).
func resultsAcross(t *testing.T, e *Engine, parts int) map[int64]int64 {
	t.Helper()
	got := make(map[int64]int64)
	for pid := 0; pid < parts; pid++ {
		res, err := e.AdHoc(pid, "SELECT part, k, v FROM results")
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			if _, dup := got[row[2].Int()]; dup {
				t.Fatalf("value %d recovered onto two partitions", row[2].Int())
			}
			got[row[2].Int()] = row[0].Int()
		}
	}
	return got
}

// TestShardedRecoveryRoutedWorkflow is the acceptance scenario: a
// 4-partition routed workflow runs under strong logging, crashes, and
// a fresh engine merge-replays the four partition logs back to the
// same table state — every tuple on the partition that owned it.
func TestShardedRecoveryRoutedWorkflow(t *testing.T) {
	const parts = 4
	dir := t.TempDir()
	opts := routedLogOpts(dir, parts, recovery.ModeStrong)

	e1 := newEngine(t, opts)
	deployRoutedPipeline(t, e1)
	ingestRouted(t, e1, 0, 16)
	want := resultsAcross(t, e1, parts)
	e1.Close() // crash: memory gone, sharded logs durable

	// All four partition logs exist and carry records.
	for pid := 0; pid < parts; pid++ {
		recs, err := wal.ReadAll(wal.PartitionPath(dir, pid))
		if err != nil || len(recs) == 0 {
			t.Fatalf("partition %d log: %d records (%v)", pid, len(recs), err)
		}
	}

	e2 := newEngine(t, opts)
	deployRoutedPipeline(t, e2)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := resultsAcross(t, e2, parts)
	if len(got) != len(want) {
		t.Fatalf("recovered %d results, want %d", len(got), len(want))
	}
	for v, part := range want {
		if got[v] != part {
			t.Errorf("value %d recovered on partition %d, want %d", v, got[v], part)
		}
	}
	// The engine keeps working with the sequence re-armed past the
	// replayed records: new traffic logs fresh LSNs and lands cleanly.
	ingestRouted(t, e2, 16, 4)
	if n := len(resultsAcross(t, e2, parts)); n != len(want)+4 {
		t.Errorf("post-recovery results = %d, want %d", n, len(want)+4)
	}
}

// TestShardedRecoveryTornTailsOnTwoLogs crashes with torn tails on two
// *different* partition logs; each shard drops only its own tail and
// recovery replays the remaining records in global order.
func TestShardedRecoveryTornTailsOnTwoLogs(t *testing.T) {
	const parts = 4
	dir := t.TempDir()
	opts := routedLogOpts(dir, parts, recovery.ModeStrong)

	e1 := newEngine(t, opts)
	deployRoutedPipeline(t, e1)
	ingestRouted(t, e1, 0, 12)
	e1.Close()

	// Tear two shards differently: garbage appended to partition 1,
	// a half-written record on partition 2.
	for _, tear := range []struct {
		pid  int
		mode string
	}{{1, "garbage"}, {2, "truncate"}} {
		path := wal.PartitionPath(dir, tear.pid)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if tear.mode == "garbage" {
			data = append(data, 0xba, 0xad, 0xf0)
		} else {
			data = data[:len(data)-5]
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	e2 := newEngine(t, opts)
	deployRoutedPipeline(t, e2)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := resultsAcross(t, e2, parts)
	// Partition 2 lost its final interior record, so one value may be
	// missing or re-derived; everything intact must be present.
	// Partitions 0 and 3 are untouched: all their values survive.
	for v := int64(0); v < 12; v++ {
		pid := int(v % parts)
		if pid == 1 || pid == 2 {
			continue // torn shards may legitimately lose their tail
		}
		if _, ok := got[v]; !ok {
			t.Errorf("value %d (untorn partition %d) lost", v, pid)
		}
	}
	// The garbage-only tear on partition 1 lost no intact record.
	for v := int64(0); v < 12; v++ {
		if int(v%parts) == 1 {
			if _, ok := got[v]; !ok {
				t.Errorf("value %d lost to garbage-only tear", v)
			}
		}
	}
}

// TestShardedRecoveryCompactionThenReplay checkpoints mid-run (which
// truncates every shard against the snapshot stamp), keeps running,
// crashes, and recovers: snapshot plus compacted shards replay to the
// full pre-crash state in global order, and nothing replays twice.
func TestShardedRecoveryCompactionThenReplay(t *testing.T) {
	const parts = 4
	dir := t.TempDir()
	opts := routedLogOpts(dir, parts, recovery.ModeStrong)

	e1 := newEngine(t, opts)
	deployRoutedPipeline(t, e1)
	ingestRouted(t, e1, 0, 8)
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stamp := e1.logs.LastSeq()
	// Every shard is truncated against the snapshot stamp.
	for pid := 0; pid < parts; pid++ {
		recs, err := wal.ReadAll(wal.PartitionPath(dir, pid))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.LSN <= stamp {
				t.Fatalf("partition %d kept record %d at or below snapshot stamp %d", pid, r.LSN, stamp)
			}
		}
	}
	ingestRouted(t, e1, 8, 8)
	want := resultsAcross(t, e1, parts)
	if len(want) != 16 {
		t.Fatalf("pre-crash results = %d, want 16", len(want))
	}
	e1.Close()

	e2 := newEngine(t, opts)
	deployRoutedPipeline(t, e2)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := resultsAcross(t, e2, parts)
	if len(got) != len(want) {
		t.Fatalf("recovered %d results, want %d (snapshot + compacted shard replay)", len(got), len(want))
	}
	for v, part := range want {
		if got[v] != part {
			t.Errorf("value %d on partition %d, want %d", v, got[v], part)
		}
	}
	// Replay respected global order across shards: batch IDs per
	// partition's results arrived in increasing order is implied by
	// the per-value equality above; additionally the dedup ledger is
	// ahead, so a replayed batch is rejected.
	if err := e2.Ingest("jobs_in", &stream.Batch{ID: 16, Rows: []types.Row{{types.NewInt(0), types.NewInt(99)}}}); err == nil {
		t.Error("replayed batch should be deduplicated after recovery")
	}
}

// TestRecoverAfterCheckpointKeepsSequenceAhead: a checkpoint empties
// the logs (compaction), so a recovery right after must re-arm the
// commit sequence from the snapshot stamp — otherwise commits made
// after that recovery would be stamped at or below the stamp and the
// *next* recovery's replay filter would silently drop them.
func TestRecoverAfterCheckpointKeepsSequenceAhead(t *testing.T) {
	const parts = 4
	dir := t.TempDir()
	opts := routedLogOpts(dir, parts, recovery.ModeStrong)

	e1 := newEngine(t, opts)
	deployRoutedPipeline(t, e1)
	ingestRouted(t, e1, 0, 5)
	if err := e1.Checkpoint(); err != nil { // logs compacted empty
		t.Fatal(err)
	}
	e1.Close()

	e2 := newEngine(t, opts)
	deployRoutedPipeline(t, e2)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	ingestRouted(t, e2, 5, 3) // commits after a post-checkpoint recovery
	e2.Close()

	e3 := newEngine(t, opts)
	deployRoutedPipeline(t, e3)
	if err := e3.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := len(resultsAcross(t, e3, parts)); got != 8 {
		t.Errorf("recovered %d results, want 8 (post-checkpoint commits must replay)", got)
	}
}

// TestCheckpointGroundsInFlightRelocatedBatch: a batch relocated
// cross-partition can be sitting in the destination's queue — inside
// the carrying task, in no table — when a checkpoint cuts snapshots.
// The checkpoint barrier must ground it into the destination's stream
// table: its producer's log record is at or below the snapshot stamp
// and about to be compacted away, so an ungrounded batch would be
// durably committed yet unrecoverable.
func TestCheckpointGroundsInFlightRelocatedBatch(t *testing.T) {
	const parts = 2
	dir := t.TempDir()
	opts := routedLogOpts(dir, parts, recovery.ModeStrong)

	e1 := newEngine(t, opts)
	deployRoutedPipeline(t, e1)

	// Gate partition 0 so the border TE executes only after the
	// checkpoint has parked partition 1 — its dispatch then lands the
	// carrying task behind partition 1's barrier.
	gate := make(chan struct{})
	if !e1.parts[0].sched.PushBack(&task{control: func(p *partition) error {
		<-gate
		return nil
	}}) {
		t.Fatal("gate enqueue failed")
	}
	// Border batch whose interior consumer routes to partition 1.
	if err := e1.Ingest("jobs_in", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(1), types.NewInt(77)}}}); err != nil {
		t.Fatal(err)
	}
	ckpt := make(chan error, 1)
	go func() { ckpt <- e1.Checkpoint() }()
	// Give the checkpoint time to park partition 1 (if it has not
	// parked yet the carrying task is consumed live and the test
	// passes vacuously rather than flaking).
	time.Sleep(50 * time.Millisecond)
	close(gate)
	if err := <-ckpt; err != nil {
		t.Fatal(err)
	}
	if err := e1.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e1.TriggerErr(); err != nil {
		t.Fatal(err)
	}
	if got := resultsAcross(t, e1, parts); len(got) != 1 || got[77] != 1 {
		t.Fatalf("live results = %v, want value 77 on partition 1", got)
	}
	e1.Close()

	e2 := newEngine(t, opts)
	deployRoutedPipeline(t, e2)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := resultsAcross(t, e2, parts)
	if len(got) != 1 || got[77] != 1 {
		t.Fatalf("recovered results = %v, want exactly value 77 on partition 1 (in-flight batch grounded into the snapshot)", got)
	}
}

// TestShardedRecoveryWeakMode runs the same routed workflow under weak
// logging: only border records are logged (one per batch, on the
// ingest partition's shard), and per-partition replay re-derives the
// interior TEs, routing them across partitions again.
func TestShardedRecoveryWeakMode(t *testing.T) {
	const parts = 4
	dir := t.TempDir()
	opts := routedLogOpts(dir, parts, recovery.ModeWeak)

	e1 := newEngine(t, opts)
	deployRoutedPipeline(t, e1)
	ingestRouted(t, e1, 0, 12)
	want := resultsAcross(t, e1, parts)
	if appends := e1.Stats().LogAppends; appends != 12 {
		t.Fatalf("weak mode logged %d records, want 12 border TEs", appends)
	}
	e1.Close()

	e2 := newEngine(t, opts)
	deployRoutedPipeline(t, e2)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := resultsAcross(t, e2, parts)
	if len(got) != len(want) {
		t.Fatalf("recovered %d results, want %d", len(got), len(want))
	}
	for v, part := range want {
		if got[v] != part {
			t.Errorf("value %d re-derived on partition %d, want %d", v, got[v], part)
		}
	}
}

// TestShardedRecoveryFanOutStream: strong replay of a fan-out
// workflow (one stream, two consumers — each logged as its own
// interior TE) must hand the produced batch to *both* consumers'
// replays: the replay stash keeps the batch until every consumer's
// record has taken it.
func TestShardedRecoveryFanOutStream(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     dir,
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	build := func() *Engine {
		e := newEngine(t, opts)
		deployFanOutChain(t, e)
		return e
	}
	e1 := build()
	for b := int64(1); b <= 4; b++ {
		if err := e1.IngestSync("f_in", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b * 10)}}}); err != nil {
			t.Fatal(err)
		}
	}
	e1.Drain()
	if err := e1.TriggerErr(); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	e2 := build()
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"SELECT COUNT(*) FROM sink_a", "SELECT COUNT(*) FROM sink_b"} {
		res, err := e2.AdHoc(0, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 4 {
			t.Errorf("%s = %v after recovery, want 4 (every consumer replays every batch)", q, res.Rows[0][0])
		}
	}
	// The fan-out stream is fully consumed and GC'd.
	res, _ := e2.AdHoc(0, "SELECT COUNT(*) FROM f_mid")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("f_mid holds %v rows after recovery", res.Rows[0][0])
	}
}

// TestTornCheckpointLoadsCommittedGeneration: per-partition snapshot
// files are committed by the manifest; a crash between snapshot
// writes of a later checkpoint (simulated by a stray newer-generation
// file for one partition) must not mix stamps — recovery loads the
// manifest's complete generation and replays the logs from there.
func TestTornCheckpointLoadsCommittedGeneration(t *testing.T) {
	const parts = 2
	dir := t.TempDir()
	opts := routedLogOpts(dir, parts, recovery.ModeStrong)

	e1 := newEngine(t, opts)
	deployRoutedPipeline(t, e1)
	ingestRouted(t, e1, 0, 4)
	if err := e1.Checkpoint(); err != nil { // committed generation
		t.Fatal(err)
	}
	ingestRouted(t, e1, 4, 4) // logged past the checkpoint
	want := resultsAcross(t, e1, parts)
	e1.Close()

	// Simulate a second checkpoint torn mid-write: partition 0 got a
	// newer snapshot file, partition 1 did not, and the manifest was
	// never updated. The stray file must be ignored.
	stray := e1.genSnapshotPath(0, e1.logs.LastSeq()+100)
	src, err := os.ReadFile(findGenSnapshot(t, dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stray, src, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := newEngine(t, opts)
	deployRoutedPipeline(t, e2)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := resultsAcross(t, e2, parts)
	if len(got) != len(want) {
		t.Fatalf("recovered %d results, want %d (stray generation must be ignored)", len(got), len(want))
	}
}

// findGenSnapshot returns the generation snapshot file of a partition.
func findGenSnapshot(t *testing.T, dir string, pid int) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	prefix := "snapshot.p" + string(rune('0'+pid)) + ".g"
	for _, ent := range ents {
		if len(ent.Name()) > len(prefix) && ent.Name()[:len(prefix)] == prefix {
			return dir + "/" + ent.Name()
		}
	}
	t.Fatalf("no generation snapshot for partition %d", pid)
	return ""
}

// TestWeakRecoveryRoutesReFiredBatches: a batch parked in a producer's
// stream table at crash time re-fires through PartitionBy, so its
// consumer runs on (and writes to) the partition that owns the key —
// the placement live dispatch would have chosen.
func TestWeakRecoveryRoutesReFiredBatches(t *testing.T) {
	const parts = 2
	dir := t.TempDir()
	opts := routedLogOpts(dir, parts, recovery.ModeWeak)

	e1 := newEngine(t, opts)
	deployRoutedPipeline(t, e1)
	// Park the produced "jobs" batch on partition 0 by suppressing PE
	// triggers: the border TE commits (and logs) but the consumer
	// never fires. Key 1 routes the batch to partition 1.
	e1.SetPETriggersEnabled(false)
	if err := e1.IngestSync("jobs_in", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(1), types.NewInt(42)}}}); err != nil {
		t.Fatal(err)
	}
	e1.Drain()
	if err := e1.Checkpoint(); err != nil { // snapshot holds the parked batch
		t.Fatal(err)
	}
	e1.Close()

	e2 := newEngine(t, opts)
	deployRoutedPipeline(t, e2)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := resultsAcross(t, e2, parts)
	if len(got) != 1 || got[42] != 1 {
		t.Fatalf("re-fired batch landed as %v, want value 42 processed on partition 1", got)
	}
}

// truncateLastRecord drops the final framed record from a log file by
// walking the [u32 len | payload | u32 crc] frames.
func truncateLastRecord(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prev, off := 0, 0
	for off+8 <= len(data) {
		flen := 4 + int(uint32(data[off])|uint32(data[off+1])<<8|uint32(data[off+2])<<16|uint32(data[off+3])<<24) + 4
		if off+flen > len(data) {
			break
		}
		prev = off
		off += flen
	}
	if err := os.WriteFile(path, data[:prev], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRecoveryFanOutPartialCrash: the crash clipped the second
// consumer's record off the log (it never committed durably). Replay
// must re-execute ConsumerA from its record exactly once, then re-fire
// ONLY ConsumerB for the parked batch — re-firing both would
// double-apply ConsumerA.
func TestShardedRecoveryFanOutPartialCrash(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     dir,
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	e1 := newEngine(t, opts)
	deployFanOutChain(t, e1)
	if err := e1.IngestSync("f_in", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(10)}}}); err != nil {
		t.Fatal(err)
	}
	e1.Drain()
	e1.Close()
	// Log: border Produce, interior ConsumerA, interior ConsumerB.
	// Clip ConsumerB's record: it is as if its TE never committed.
	truncateLastRecord(t, wal.PartitionPath(dir, 0))
	recs, err := wal.ReadAll(wal.PartitionPath(dir, 0))
	if err != nil || len(recs) != 2 || recs[1].SP != "ConsumerA" {
		t.Fatalf("clipped log = %v (%v), want [Produce ConsumerA]", recs, err)
	}

	e2 := newEngine(t, opts)
	deployFanOutChain(t, e2)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"SELECT COUNT(*) FROM sink_a", "SELECT COUNT(*) FROM sink_b"} {
		res, err := e2.AdHoc(0, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 1 {
			t.Errorf("%s = %v after partial-crash recovery, want exactly 1", q, res.Rows[0][0])
		}
	}
}

// deployFanOutChain wires f_in -> Produce -> f_mid -> {ConsumerA -> sink_a,
// ConsumerB -> sink_b}.
func deployFanOutChain(t *testing.T, e *Engine) {
	t.Helper()
	for _, ddl := range []string{
		"CREATE STREAM f_in (v BIGINT)",
		"CREATE STREAM f_mid (v BIGINT)",
		"CREATE TABLE sink_a (v BIGINT)",
		"CREATE TABLE sink_b (v BIGINT)",
	} {
		if err := e.ExecDDL(ddl); err != nil {
			t.Fatal(err)
		}
	}
	e.RegisterProc(&StoredProc{Name: "Produce", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO f_mid SELECT v FROM f_in")
		return err
	}})
	e.RegisterProc(&StoredProc{Name: "ConsumerA", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO sink_a SELECT v FROM f_mid")
		return err
	}})
	e.RegisterProc(&StoredProc{Name: "ConsumerB", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO sink_b SELECT v FROM f_mid")
		return err
	}})
	w, err := workflow.New("fan", []workflow.Node{
		{SP: "Produce", Input: "f_in", Outputs: []string{"f_mid"}},
		{SP: "ConsumerA", Input: "f_mid"},
		{SP: "ConsumerB", Input: "f_mid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyUnshardedLogReplays: a log written pre-sharding (one file
// at exactly LogPath) still recovers on the sharded engine; new
// commits then go to the shards with LSNs continuing past the legacy
// records.
func TestLegacyUnshardedLogReplays(t *testing.T) {
	dir := t.TempDir()
	base := dir + "/cmd.log"
	// Hand-write a legacy single-file log holding two border records,
	// as the seed engine would have.
	l, err := wal.Open(wal.Options{Path: base, Policy: wal.SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(1); b <= 2; b++ {
		_, err := l.Append(&wal.Record{
			Kind:    wal.KindBorder,
			SP:      "SP1",
			BatchID: b,
			Params:  types.Row{types.NewInt(b)},
			Batch:   []types.Row{{types.NewInt(b * 10)}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	opts := Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     base,
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	e := newEngine(t, opts)
	deployChain(t, e, 2, nil)
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	res, _ := e.AdHoc(0, "SELECT COUNT(*) FROM sink")
	if res.Rows[0][0].Int() != 4 { // 2 batches × 2 SPs
		t.Fatalf("sink rows = %v, want 4", res.Rows[0][0])
	}
	// New traffic logs into the shard past the legacy LSNs.
	if err := e.IngestSync("s1", &stream.Batch{ID: 3, Rows: []types.Row{{types.NewInt(30)}}}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	recs, err := wal.ReadAll(wal.PartitionPath(base, 0))
	if err != nil || len(recs) == 0 {
		t.Fatalf("shard 0: %d records (%v)", len(recs), err)
	}
	for _, r := range recs {
		if r.LSN <= 2 {
			t.Errorf("shard record LSN %d collides with legacy log", r.LSN)
		}
	}
}
