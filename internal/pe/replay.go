package pe

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"sstore/internal/ee"
	"sstore/internal/recovery"
	"sstore/internal/storage"
	"sstore/internal/types"
	"sstore/internal/wal"
)

// This file is the engine's replay surface: the recovery.Engine
// implementation plus the machinery that lets serial replay of the
// sharded command logs reproduce a live schedule's state.
//
// During live execution a produced batch either travels inside its
// consumer task (cross-partition relocation) or sits briefly in the
// producer's stream table protected by front-of-queue scheduling —
// either way, a TE only ever sees its *own* batch in its input stream.
// Serial strong replay cannot reproduce that schedule: border records
// replay ahead of the interior records that consume them, so produced
// batches would pile up in stream tables and a replayed TE scanning
// its input stream would read its neighbors' tuples. The replayStash
// restores the invariant: while PE triggers are disabled, every stream
// append a replayed TE commits is swept out of the table into the
// stash, and handed back as traveling rows when the consumer's own log
// record replays.

// stashKey identifies a produced batch parked in the replay stash.
type stashKey struct {
	stream  string
	batchID int64
}

// stashedBatch remembers a batch's rows, the partition whose table
// they were extracted from, how many consumer records have yet to
// take the batch (a fan-out stream's batch is consumed by one logged
// TE per consumer, each of which needs the rows), and which consumers
// already took it — so a crash that logged only some of a fan-out's
// consumers re-fires exactly the missing ones.
type stashedBatch struct {
	rows  []types.Row
	pid   int
	refs  int
	taken map[string]bool
}

// replayStash holds batches produced during strong replay whose
// consumers have not replayed yet, plus the set of streams already
// swept out of the tables.
type replayStash struct {
	mu    sync.Mutex
	m     map[stashKey]stashedBatch
	swept map[string]bool
}

func newReplayStash() *replayStash {
	return &replayStash{m: make(map[stashKey]stashedBatch), swept: make(map[string]bool)}
}

func (s *replayStash) put(stream string, batchID int64, pid int, rows []types.Row, refs int) {
	if refs < 1 {
		refs = 1
	}
	s.mu.Lock()
	s.m[stashKey{stream: stream, batchID: batchID}] = stashedBatch{rows: rows, pid: pid, refs: refs, taken: make(map[string]bool)}
	s.mu.Unlock()
}

// take hands the batch's rows to one consumer's replay, recording
// which consumer took it; the entry is removed once every consumer
// has taken it.
func (s *replayStash) take(stream string, batchID int64, sp string) []types.Row {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := stashKey{stream: stream, batchID: batchID}
	b, ok := s.m[k]
	if !ok {
		return nil
	}
	b.refs--
	b.taken[sp] = true
	if b.refs <= 0 {
		delete(s.m, k)
	} else {
		s.m[k] = b
	}
	return b.rows
}

// sweepOnce reports whether the stream still needs its table sweep,
// marking it swept.
func (s *replayStash) sweepOnce(stream string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.swept[stream] {
		return false
	}
	s.swept[stream] = true
	return true
}

// drainedBatch is one stash entry surfaced by drain.
type drainedBatch struct {
	key   stashKey
	batch stashedBatch
}

// drain empties the stash, returning every parked batch in (stream,
// batchID) order: drain feeds replay's re-fire pass, and the stash
// map's iteration order must not leak into the replayed schedule.
func (s *replayStash) drain() []drainedBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]drainedBatch, 0, len(s.m))
	for k, b := range s.m {
		out = append(out, drainedBatch{key: k, batch: b})
	}
	s.m = make(map[stashKey]stashedBatch)
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.stream != out[j].key.stream {
			return out[i].key.stream < out[j].key.stream
		}
		return out[i].key.batchID < out[j].key.batchID
	})
	return out
}

// LoadSnapshot implements recovery.Engine: it restores the latest
// committed checkpoint generation into every partition, returning the
// generation's commit-sequence stamp. The manifest names the
// generation, so a checkpoint torn between per-partition snapshot
// writes can never load partitions at mixed stamps; without a
// manifest (pre-manifest checkpoints) the legacy plain files load as
// before.
//
//sstore:deterministic
func (e *Engine) LoadSnapshot() (uint64, error) {
	stamp, committed, err := wal.ReadSnapshotManifest(e.opts.SnapshotDir)
	if err != nil {
		return 0, err
	}
	var lastLSN uint64
	for _, p := range e.parts {
		path := e.snapshotPath(p.id)
		if committed {
			path = e.genSnapshotPath(p.id, stamp)
			if _, err := os.Stat(path); err != nil {
				// A committed generation is complete by construction;
				// a missing member means external damage, and loading
				// around it would silently drop that partition's
				// checkpointed state.
				return 0, fmt.Errorf("pe: snapshot generation %d missing %s: %w", stamp, path, err)
			}
		}
		var lsn uint64
		loadErr := e.onPartition(p, func(p *partition) error {
			var err error
			lsn, err = wal.LoadSnapshot(path, p.cat.Lookup)
			if err != nil {
				return err
			}
			// Archive tables' rows live in the generation's page-file
			// copies, not the row snapshot; restore them now so WAL
			// redo replays against complete state.
			return e.restoreArchives(p, stamp, committed)
		})
		if loadErr != nil {
			return 0, loadErr
		}
		if lsn > lastLSN {
			lastLSN = lsn
		}
	}
	// Remember the stamp for Recover: the commit sequence must re-arm
	// past it even when compaction has emptied the logs.
	e.snapLSN = lastLSN
	return lastLSN, nil
}

// SetPETriggersEnabled implements recovery.Engine.
func (e *Engine) SetPETriggersEnabled(enabled bool) { e.peTriggersOn.Store(enabled) }

// ReplayRecord implements recovery.Engine: it re-executes one logged
// TE synchronously without re-logging it. Replay is client-driven, as
// in H-Store: "the log is read by the client and transactions are
// submitted sequentially ... each transaction must be confirmed as
// committed before the next can be sent" (§4.4) — so each replayed
// record pays one client round trip. TEs re-derived inside the engine
// by PE triggers (weak recovery's interior work) pay none, which is
// why weak recovery also *recovers* faster (Figure 9b).
//
//sstore:deterministic
func (e *Engine) ReplayRecord(rec *wal.Record) error {
	if e.link != nil {
		e.link.RoundTrip()
	}
	pid := rec.Partition
	part := e.part(pid)
	if part == nil {
		return fmt.Errorf("pe: log record for partition %d, which this node does not own", pid)
	}
	// The reply channel stays in a local: the partition recycles the
	// task the moment it retires, so t must not be touched after push.
	reply := make(chan callResult, 1)
	t := getTask()
	t.sp = rec.SP
	t.params = rec.Params
	t.batchID = rec.BatchID
	t.kind = rec.Kind
	t.noLog = true
	t.reply = reply
	switch rec.Kind {
	case wal.KindBorder:
		t.batch = rec.Batch
		t.inputStream = e.spInput[rec.SP]
		e.dedup.Admit(pid, t.inputStream, rec.BatchID)
	case wal.KindHandoff:
		// A hand-off record is self-contained like a border record:
		// its rows were logged on THIS node (the upstream TE committed
		// on another node, whose log is not ours to read), and replay
		// re-admits the batch on the target partition's ledger shard so
		// the sending node's post-recovery re-delivery is suppressed.
		t.batch = rec.Batch
		t.inputStream = e.spInput[rec.SP]
		e.dedup.Admit(pid, t.inputStream, rec.BatchID)
	case wal.KindInterior:
		t.inputStream = e.spInput[rec.SP]
		// Under strong recovery the upstream TE replayed with PE
		// triggers disabled, so its output batch is parked in the
		// replay stash (or, if it predates the crash snapshot, in
		// some partition's stream table). Hand the rows to the
		// consumer task; it re-enters them at the logged execution
		// site inside the TE.
		if t.inputStream != "" {
			if rows := e.takeReplayBatch(t.inputStream, rec.BatchID, rec.SP); len(rows) > 0 {
				t.batch = rows
			}
		}
	}
	if !part.sched.PushBack(t) {
		putTask(t)
		return fmt.Errorf("pe: engine closed")
	}
	r := <-reply
	return r.err
}

// takeReplayBatch produces the traveling rows for a replayed interior
// TE. The stream's pending batches are first swept out of the tables
// (snapshot-recovered batches included), so the consuming TE sees its
// input stream holding nothing but its own batch — the invariant live
// scheduling maintains. The stash is created lazily so a recovery
// driver invoked directly on the engine (bypassing Engine.Recover)
// still replays correctly.
func (e *Engine) takeReplayBatch(streamKey string, batchID int64, sp string) []types.Row {
	if e.stash == nil {
		e.stash = newReplayStash()
	}
	e.sweepStreamToStash(streamKey)
	return e.stash.take(streamKey, batchID, sp)
}

// sweepStreamToStash moves every pending batch of one stream, on every
// partition, from the table into the replay stash. The sweep runs once
// per stream per recovery: with PE triggers disabled, nothing can
// repopulate the tables afterwards outside the stash path (stashed
// rows re-enter a table only inside a consuming TE, which garbage-
// collects them at commit).
func (e *Engine) sweepStreamToStash(streamKey string) {
	if !e.stash.sweepOnce(streamKey) {
		return
	}
	refs := len(e.consumers[streamKey])
	for _, p := range e.parts {
		_ = e.onPartition(p, func(p *partition) error {
			tbl, ok := p.cat.Lookup(streamKey)
			if !ok {
				return nil
			}
			for _, b := range storage.PendingBatches(tbl) {
				if rows := storage.BatchRows(tbl, b); len(rows) > 0 {
					storage.DeleteBatch(tbl, b, nil)
					e.stash.put(streamKey, b, p.id, rows, refs)
				}
			}
			return nil
		})
	}
}

// stashAppends parks a replayed TE's produced batches in the replay
// stash; the partition goroutine calls it from afterCommit in place of
// trigger dispatch while strong replay has PE triggers disabled.
func (p *partition) stashAppends(t *task, appends []ee.StreamAppend) {
	seen := make(map[gcKey]bool)
	for _, ap := range appends {
		if ap.Table == strings.ToLower(t.inputStream) {
			continue // the TE's own input: consumed, not produced
		}
		key := gcKey{stream: ap.Table, batchID: ap.BatchID}
		if seen[key] || len(p.eng.consumers[ap.Table]) == 0 {
			continue
		}
		seen[key] = true
		if tbl, ok := p.cat.Lookup(ap.Table); ok {
			if rows := storage.BatchRows(tbl, ap.BatchID); len(rows) > 0 {
				storage.DeleteBatch(tbl, ap.BatchID, nil)
				// One take per consumer: each consumer's logged TE
				// replays against the same batch.
				p.eng.stash.put(ap.Table, ap.BatchID, p.id, rows, len(p.eng.consumers[ap.Table]))
			}
		}
	}
}

// consumersOf resolves a stream's firing targets: its PE-trigger
// consumers, or (for a border stream) its border SP.
func (e *Engine) consumersOf(streamKey string) []string {
	if cs := e.consumers[streamKey]; len(cs) > 0 {
		return cs
	}
	if sp := e.borderConsumer(streamKey); sp != "" {
		return []string{sp}
	}
	return nil
}

// makeConsumerTasks builds the consumer TE group for one batch under
// the hand-off convention every dispatch path shares: one task per
// consumer, the first carrying the rows and the group's GC refcount.
func makeConsumerTasks(consumers []string, streamKey string, batchID int64, rows []types.Row) []*task {
	ts := make([]*task, 0, len(consumers))
	for i, c := range consumers {
		ct := getTask()
		ct.sp = c
		ct.params = types.Row{types.NewInt(batchID)}
		ct.batchID = batchID
		ct.kind = wal.KindInterior
		ct.inputStream = streamKey
		if i == 0 {
			ct.batch = rows
			ct.gcRefs = len(consumers)
		}
		ts = append(ts, ct)
	}
	return ts
}

// FirePendingStreamTriggers implements recovery.Engine: every batch
// still pending — parked in the replay stash (produced during replay,
// consumer never logged) or sitting in a stream table (recovered by
// the snapshot) — is re-fired through its consumers, run to
// completion. Batches are fired in ascending ID order per stream,
// routed by PartitionBy exactly like live dispatch, with the rows
// traveling inside the first consumer task — so consumers never see a
// neighbor batch in their input stream and keyed data lands on the
// partition that owns it. For a fan-out batch whose records partially
// survived the crash, only the consumers that did NOT already replay
// are fired; re-firing a replayed one would double-apply it.
//
//sstore:deterministic
func (e *Engine) FirePendingStreamTriggers() error {
	type pending struct {
		stream  string
		batchID int64
		rows    []types.Row
		pid     int // partition the rows were extracted from
		taken   map[string]bool
	}
	var all []pending
	if e.stash != nil {
		for _, d := range e.stash.drain() {
			all = append(all, pending{stream: d.key.stream, batchID: d.key.batchID, rows: d.batch.rows, pid: d.batch.pid, taken: d.batch.taken})
		}
	}
	for _, p := range e.parts {
		err := e.onPartition(p, func(p *partition) error {
			for _, tbl := range p.cat.StreamsWithData() {
				key := strings.ToLower(tbl.Name())
				if len(e.consumersOf(key)) == 0 {
					continue
				}
				for _, b := range storage.PendingBatches(tbl) {
					rows := storage.BatchRows(tbl, b)
					if len(rows) == 0 {
						continue
					}
					storage.DeleteBatch(tbl, b, nil)
					all = append(all, pending{stream: key, batchID: b, rows: rows, pid: p.id})
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].stream != all[j].stream {
			return all[i].stream < all[j].stream
		}
		return all[i].batchID < all[j].batchID
	})
	perPart := make(map[int][]*task)
	type ledgerKey struct {
		pid    int
		stream string
	}
	ledgerHi := make(map[ledgerKey]int64)
	for _, pb := range all {
		var remaining []string
		for _, c := range e.consumersOf(pb.stream) {
			if pb.taken == nil || !pb.taken[c] {
				remaining = append(remaining, c)
			}
		}
		target := pb.pid
		if e.opts.PartitionBy != nil && e.nglobal > 1 {
			target = wrapPartition(e.opts.PartitionBy(pb.stream, pb.rows), e.nglobal)
		}
		if len(remaining) == 0 {
			// Every consumer of this batch already replayed (possible
			// only with duplicate records): park the rows back in the
			// table rather than dropping them.
			pb := pb
			err := e.onPartition(e.part(pb.pid), func(p *partition) error {
				tbl, ok := p.cat.Lookup(pb.stream)
				if !ok {
					return fmt.Errorf("pe: pending batch for unknown stream %q", pb.stream)
				}
				for _, row := range pb.rows {
					if _, err := tbl.Insert(row, pb.batchID, nil); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			continue
		}
		if e.part(target) == nil {
			// The batch routes to a partition another node owns: the
			// remote re-dispatch path. Park the rows back in the source
			// partition's table — the sender-side retained copy — then
			// hand the batch to the transport with the re-fire hint.
			// The receiving node's ledger suppresses re-deliveries it
			// already committed (its ack deletes the parked copy), so a
			// restart loop cannot double-apply the batch.
			pb := pb
			err := e.onPartition(e.part(pb.pid), func(p *partition) error {
				tbl, ok := p.cat.Lookup(pb.stream)
				if !ok {
					return fmt.Errorf("pe: pending batch for unknown stream %q", pb.stream)
				}
				for _, row := range pb.rows {
					if _, err := tbl.Insert(row, pb.batchID, nil); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			if _, err := e.transport.Deliver(pb.pid, target, pb.stream, pb.batchID, pb.rows, true); err != nil {
				return err
			}
			continue
		}
		perPart[target] = append(perPart[target], makeConsumerTasks(remaining, pb.stream, pb.batchID, pb.rows)...)
		lk := ledgerKey{pid: target, stream: pb.stream}
		if pb.batchID > ledgerHi[lk] {
			ledgerHi[lk] = pb.batchID
		}
	}
	// Keep each destination's exactly-once ledger shard ahead of the
	// batches fired onto it. Ledger resets and task pushes happen in
	// sorted key / partition-index order: both loops sit on the replay
	// path, where map-iteration order must never reach an effect.
	lks := make([]ledgerKey, 0, len(ledgerHi))
	for lk := range ledgerHi {
		lks = append(lks, lk)
	}
	sort.Slice(lks, func(i, j int) bool {
		if lks[i].pid != lks[j].pid {
			return lks[i].pid < lks[j].pid
		}
		return lks[i].stream < lks[j].stream
	})
	for _, lk := range lks {
		if hi := ledgerHi[lk]; hi > e.dedup.High(lk.pid, lk.stream) {
			e.dedup.Reset(lk.pid, lk.stream)
			e.dedup.Admit(lk.pid, lk.stream, hi)
		}
	}
	for _, p := range e.parts {
		if ts := perPart[p.id]; len(ts) > 0 {
			p.sched.PushFrontBatch(ts)
		}
	}
	return e.Drain()
}

// Recover runs crash recovery per the configured mode over the
// sharded command logs, then re-arms the global commit sequence past
// everything already logged. Call before admitting traffic.
//
//sstore:deterministic
func (e *Engine) Recover() error {
	e.loggingOn.Store(false)
	e.stash = newReplayStash()
	defer func() {
		e.stash = nil
		e.loggingOn.Store(true)
	}()
	maxLSN, err := recovery.Recover(e.opts.Recovery, e.opts.LogPath, e)
	if err != nil {
		return err
	}
	if err := e.Drain(); err != nil {
		return err
	}
	if e.logs != nil {
		// Re-arm past both the highest sequence number the replay
		// observed in the logs (including records its filters
		// skipped) and the snapshot stamp: after a checkpoint
		// compacted the logs, the stamp alone records how far the
		// sequence had advanced, and a commit stamped at or below it
		// would be silently skipped by the next recovery.
		if e.snapLSN > maxLSN {
			maxLSN = e.snapLSN
		}
		e.logs.SetNextSeq(maxLSN + 1)
	}
	return nil
}
