package pe

import (
	"fmt"
	"sync"
	"testing"
)

func TestSchedulerFIFOOrder(t *testing.T) {
	s := newScheduler()
	for i := 0; i < 5; i++ {
		if !s.PushBack(&task{batchID: int64(i)}) {
			t.Fatal("push failed")
		}
	}
	for i := 0; i < 5; i++ {
		tk, ok := s.Pop()
		if !ok || tk.batchID != int64(i) {
			t.Fatalf("pop %d = %+v, %v", i, tk, ok)
		}
	}
}

func TestSchedulerFrontPreemptsBack(t *testing.T) {
	s := newScheduler()
	s.PushBack(&task{sp: "oltp1"})
	s.PushBack(&task{sp: "oltp2"})
	// A committing TE front-pushes its triggered children; they must
	// run before the queued OLTP work, in the given order.
	s.PushFrontBatch([]*task{{sp: "child1"}, {sp: "child2"}})
	want := []string{"child1", "child2", "oltp1", "oltp2"}
	for _, w := range want {
		tk, ok := s.Pop()
		if !ok || tk.sp != w {
			t.Fatalf("pop = %v (%v), want %s", tk.sp, ok, w)
		}
	}
}

func TestSchedulerNestedFrontBatches(t *testing.T) {
	s := newScheduler()
	s.PushFrontBatch([]*task{{sp: "a"}, {sp: "b"}})
	// A second front batch (deeper trigger cascade) goes ahead of the
	// first's remainder.
	s.PushFrontBatch([]*task{{sp: "x"}})
	want := []string{"x", "a", "b"}
	for _, w := range want {
		tk, _ := s.Pop()
		if tk.sp != w {
			t.Fatalf("pop = %s, want %s", tk.sp, w)
		}
	}
}

func TestSchedulerCloseDrains(t *testing.T) {
	s := newScheduler()
	s.PushBack(&task{sp: "pending"})
	s.Close()
	if s.PushBack(&task{sp: "late"}) {
		t.Error("push after close should fail")
	}
	tk, ok := s.Pop()
	if !ok || tk.sp != "pending" {
		t.Fatalf("queued task lost on close: %+v, %v", tk, ok)
	}
	if _, ok := s.Pop(); ok {
		t.Error("pop after drain should report closed")
	}
}

func TestSchedulerConcurrentProducers(t *testing.T) {
	s := newScheduler()
	const producers, each = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.PushBack(&task{})
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := s.Pop(); !ok {
				return
			}
			got++
		}
	}()
	wg.Wait()
	s.Close()
	<-done
	if got != producers*each {
		t.Errorf("consumed %d, want %d", got, producers*each)
	}
}

func TestSchedulerLen(t *testing.T) {
	s := newScheduler()
	if s.Len() != 0 {
		t.Error("fresh scheduler not empty")
	}
	s.PushBack(&task{})
	s.PushFrontBatch([]*task{{}, {}})
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
}

// TestDequeWrapAround exercises the ring buffer across many
// grow/shrink cycles so head wraps past the capacity boundary in both
// directions.
func TestDequeWrapAround(t *testing.T) {
	var d deque
	next := int64(0)
	expect := int64(0)
	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < 7; i++ {
			d.pushBack(&task{batchID: next})
			next++
		}
		for i := 0; i < 5; i++ {
			got := d.popFront()
			if got.batchID != expect {
				t.Fatalf("cycle %d: popped %d, want %d", cycle, got.batchID, expect)
			}
			expect++
		}
	}
	for d.len() > 0 {
		got := d.popFront()
		if got.batchID != expect {
			t.Fatalf("drain: popped %d, want %d", got.batchID, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, want %d", expect, next)
	}
}

// TestDequePushFrontOrder pins pushFront semantics under wrap: fronts
// come back LIFO relative to each other, before any back item.
func TestDequePushFrontOrder(t *testing.T) {
	var d deque
	d.pushBack(&task{sp: "back"})
	for i := 0; i < 20; i++ { // force several grows
		d.pushFront(&task{batchID: int64(i)})
	}
	for i := 19; i >= 0; i-- {
		if got := d.popFront(); got.batchID != int64(i) {
			t.Fatalf("popped %d, want %d", got.batchID, i)
		}
	}
	if got := d.popFront(); got.sp != "back" {
		t.Fatalf("popped %q, want back", got.sp)
	}
}

// TestSchedulerForEachQueuedOrder pins the visit order the checkpoint
// barrier relies on: front queue first, both in pop order — across
// ring wrap.
func TestSchedulerForEachQueuedOrder(t *testing.T) {
	s := newScheduler()
	for i := 0; i < 3; i++ {
		s.PushBack(&task{batchID: int64(100 + i)})
	}
	s.Pop() // move head so the ring has wrapped state
	s.PushBack(&task{batchID: 103})
	s.PushFrontBatch([]*task{{batchID: 1}, {batchID: 2}})
	var got []int64
	s.ForEachQueued(func(t *task) { got = append(got, t.batchID) })
	want := []int64{1, 2, 101, 102, 103}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
}

// TestSchedulerBoundedPush pins the border bound: full-queue
// rejections report full (not closed), interior pushes ignore the
// bound, and a drained queue admits again.
func TestSchedulerBoundedPush(t *testing.T) {
	s := newScheduler()
	s.bound = 2
	for i := 0; i < 2; i++ {
		if ok, full, _ := s.PushBackBounded(&task{}); !ok || full {
			t.Fatalf("push %d rejected below bound", i)
		}
	}
	ok, full, depth := s.PushBackBounded(&task{})
	if ok || !full || depth != 2 {
		t.Fatalf("push at bound: ok=%v full=%v depth=%d, want rejection at depth 2", ok, full, depth)
	}
	// Interior pushes are exempt.
	if !s.PushBack(&task{}) {
		t.Fatal("unbounded PushBack rejected")
	}
	if !s.PushBackBatch([]*task{{}, {}}) {
		t.Fatal("PushBackBatch rejected")
	}
	s.PushFrontBatch([]*task{{}})
	if s.Len() != 6 {
		t.Fatalf("len = %d, want 6", s.Len())
	}
	for i := 0; i < 5; i++ {
		s.Pop()
	}
	if ok, full, _ := s.PushBackBounded(&task{}); !ok || full {
		t.Fatal("drained queue still rejects border pushes")
	}
	s.Close()
	if ok, full, _ := s.PushBackBounded(&task{}); ok || full {
		t.Fatal("closed scheduler should reject as closed, not full")
	}
}

// BenchmarkPushFrontBatchDeepQueue is the satellite-2 fix's receipt:
// a committing TE front-pushes its triggered children while the back
// queue is deep. With the old slice pair every push re-allocated and
// copied the whole front queue — O(depth); the ring deque makes it
// O(children).
func BenchmarkPushFrontBatchDeepQueue(b *testing.B) {
	for _, depth := range []int{16, 1024, 65536} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s := newScheduler()
			for i := 0; i < depth; i++ {
				s.PushBack(&task{})
			}
			children := []*task{{}, {}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.PushFrontBatch(children)
				s.Pop()
				s.Pop()
			}
		})
	}
}
