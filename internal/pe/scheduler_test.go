package pe

import (
	"sync"
	"testing"
)

func TestSchedulerFIFOOrder(t *testing.T) {
	s := newScheduler()
	for i := 0; i < 5; i++ {
		if !s.PushBack(&task{batchID: int64(i)}) {
			t.Fatal("push failed")
		}
	}
	for i := 0; i < 5; i++ {
		tk, ok := s.Pop()
		if !ok || tk.batchID != int64(i) {
			t.Fatalf("pop %d = %+v, %v", i, tk, ok)
		}
	}
}

func TestSchedulerFrontPreemptsBack(t *testing.T) {
	s := newScheduler()
	s.PushBack(&task{sp: "oltp1"})
	s.PushBack(&task{sp: "oltp2"})
	// A committing TE front-pushes its triggered children; they must
	// run before the queued OLTP work, in the given order.
	s.PushFrontBatch([]*task{{sp: "child1"}, {sp: "child2"}})
	want := []string{"child1", "child2", "oltp1", "oltp2"}
	for _, w := range want {
		tk, ok := s.Pop()
		if !ok || tk.sp != w {
			t.Fatalf("pop = %v (%v), want %s", tk.sp, ok, w)
		}
	}
}

func TestSchedulerNestedFrontBatches(t *testing.T) {
	s := newScheduler()
	s.PushFrontBatch([]*task{{sp: "a"}, {sp: "b"}})
	// A second front batch (deeper trigger cascade) goes ahead of the
	// first's remainder.
	s.PushFrontBatch([]*task{{sp: "x"}})
	want := []string{"x", "a", "b"}
	for _, w := range want {
		tk, _ := s.Pop()
		if tk.sp != w {
			t.Fatalf("pop = %s, want %s", tk.sp, w)
		}
	}
}

func TestSchedulerCloseDrains(t *testing.T) {
	s := newScheduler()
	s.PushBack(&task{sp: "pending"})
	s.Close()
	if s.PushBack(&task{sp: "late"}) {
		t.Error("push after close should fail")
	}
	tk, ok := s.Pop()
	if !ok || tk.sp != "pending" {
		t.Fatalf("queued task lost on close: %+v, %v", tk, ok)
	}
	if _, ok := s.Pop(); ok {
		t.Error("pop after drain should report closed")
	}
}

func TestSchedulerConcurrentProducers(t *testing.T) {
	s := newScheduler()
	const producers, each = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.PushBack(&task{})
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := s.Pop(); !ok {
				return
			}
			got++
		}
	}()
	wg.Wait()
	s.Close()
	<-done
	if got != producers*each {
		t.Errorf("consumed %d, want %d", got, producers*each)
	}
}

func TestSchedulerLen(t *testing.T) {
	s := newScheduler()
	if s.Len() != 0 {
		t.Error("fresh scheduler not empty")
	}
	s.PushBack(&task{})
	s.PushFrontBatch([]*task{{}, {}})
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
}
