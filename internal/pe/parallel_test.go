package pe

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sstore/internal/recovery"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
	"sstore/internal/workflow"
)

// Equivalence property tests for the dependency-aware parallel
// dispatcher: with Workers > 1 a partition may execute non-conflicting
// TE bodies concurrently, but the committed state, the command-log
// record sequence, and the state recovered from that log must all be
// byte-identical to the serial (Workers=0) execution of the same
// admission order. The tests drive both engines with one seeded
// op sequence and compare everything observable.

// parallelMixDDL is the shared schema for the equivalence workload:
// four independently-writable tables (wave candidates), one shared
// table (all writers conflict), and a border→interior workflow (its
// SPs are serial-only: undeclared access plus PE-consumed streams).
func parallelMixSetup(t *testing.T, e *Engine) {
	t.Helper()
	ddls := []string{
		"CREATE TABLE shared (k BIGINT, v BIGINT)",
		"CREATE STREAM f_in (v BIGINT)",
		"CREATE STREAM f_mid (v BIGINT)",
		"CREATE TABLE sink_a (v BIGINT)",
	}
	for i := 0; i < 4; i++ {
		ddls = append(ddls, fmt.Sprintf("CREATE TABLE t%d (k BIGINT, v BIGINT)", i))
	}
	for _, ddl := range ddls {
		if err := e.ExecDDL(ddl); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		tbl := fmt.Sprintf("t%d", i)
		err := e.RegisterProc(&StoredProc{
			Name:   fmt.Sprintf("Upd%d", i),
			Access: &ProcAccess{Writes: []string{tbl}},
			Func: func(ctx *ProcCtx) error {
				if ctx.Params()[1].Int() < 0 {
					return fmt.Errorf("negative delta rejected")
				}
				_, err := ctx.Query(
					fmt.Sprintf("INSERT INTO %s VALUES (?, ?)", tbl),
					ctx.Params()[0], ctx.Params()[1])
				return err
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RegisterProc(&StoredProc{
		Name:   "Shared",
		Access: &ProcAccess{Reads: []string{"shared"}, Writes: []string{"shared"}},
		Func: func(ctx *ProcCtx) error {
			_, err := ctx.Query("INSERT INTO shared SELECT ?, 1 + COUNT(*) FROM shared",
				ctx.Params()[0])
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Mystery has no declared access set: the dispatcher must treat it
	// as serial-only even though its body only touches t0.
	if err := e.RegisterProc(&StoredProc{
		Name: "Mystery",
		Func: func(ctx *ProcCtx) error {
			_, err := ctx.Query("INSERT INTO t0 VALUES (?, ?)",
				ctx.Params()[0], ctx.Params()[1])
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProc(&StoredProc{Name: "Produce", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO f_mid SELECT v FROM f_in")
		return err
	}}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProc(&StoredProc{Name: "ConsumerA", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO sink_a SELECT v FROM f_mid")
		return err
	}}); err != nil {
		t.Fatal(err)
	}
	w, err := workflow.New("fan", []workflow.Node{
		{SP: "Produce", Input: "f_in", Outputs: []string{"f_mid"}},
		{SP: "ConsumerA", Input: "f_mid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
}

var parallelMixTables = []string{"t0", "t1", "t2", "t3", "shared", "sink_a"}

// tableDump renders a table's full contents in storage order; the
// committed row order must match between serial and parallel runs,
// not just the multiset of rows.
func tableDump(t *testing.T, e *Engine, tbl string) string {
	t.Helper()
	res, err := e.AdHoc(0, "SELECT * FROM "+tbl)
	if err != nil {
		t.Fatalf("dump %s: %v", tbl, err)
	}
	s := tbl + ":"
	for _, row := range res.Rows {
		s += fmt.Sprintf(" %v", row)
	}
	return s
}

func engineState(t *testing.T, e *Engine) []string {
	t.Helper()
	var out []string
	for _, tbl := range parallelMixTables {
		out = append(out, tableDump(t, e, tbl))
	}
	return out
}

// recordKey renders the replay-relevant fields of a log record. LSN is
// included: the commit sequence itself must be identical, not merely
// the order.
func recordKey(r *wal.Record) string {
	return fmt.Sprintf("lsn=%d kind=%d sp=%s batch=%d params=%v rows=%v",
		r.LSN, r.Kind, r.SP, r.BatchID, r.Params, r.Batch)
}

// driveParallelMix submits a seeded op sequence to the engine from a
// single goroutine, so admission order is a pure function of the seed.
// It returns the per-op error strings (empty string for success).
func driveParallelMix(t *testing.T, e *Engine, seed int64, nops int) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	chans := make([]<-chan CallResult, 0, nops)
	opOf := make([]int, 0, nops)
	errs := make([]string, nops)
	batchID := int64(0)
	for i := 0; i < nops; i++ {
		switch c := rng.Intn(10); {
		case c < 6: // non-conflicting declared writer, ~10% aborting
			tbl := rng.Intn(4)
			delta := int64(rng.Intn(100))
			if rng.Intn(10) == 0 {
				delta = -delta - 1
			}
			chans = append(chans, e.CallAsync(fmt.Sprintf("Upd%d", tbl),
				types.Row{types.NewInt(int64(i)), types.NewInt(delta)}))
			opOf = append(opOf, i)
		case c < 8: // all-conflicting declared writer
			chans = append(chans, e.CallAsync("Shared",
				types.Row{types.NewInt(int64(i))}))
			opOf = append(opOf, i)
		case c < 9: // undeclared: serial-only barrier
			chans = append(chans, e.CallAsync("Mystery",
				types.Row{types.NewInt(int64(i)), types.NewInt(int64(rng.Intn(100)))}))
			opOf = append(opOf, i)
		default: // border ingest through the workflow
			batchID++
			err := e.Ingest("f_in", &stream.Batch{
				ID:   batchID,
				Rows: []types.Row{{types.NewInt(int64(i))}},
			})
			if err != nil {
				errs[i] = err.Error()
			}
		}
	}
	for j, ch := range chans {
		if r := <-ch; r.Err != nil {
			errs[opOf[j]] = r.Err.Error()
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e.TriggerErr(); err != nil {
		t.Fatal(err)
	}
	return errs
}

// TestParallelSerialEquivalence runs the same seeded workload on a
// serial engine and a parallel one (Workers=4) under strong command
// logging, then asserts identical per-op outcomes, identical committed
// state, an identical command-log record sequence, and identical state
// after strong recovery from each log.
func TestParallelSerialEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const nops = 160
			dirs := [2]string{t.TempDir(), t.TempDir()}
			workers := [2]int{0, 4}
			var states [2][]string
			var errs [2][]string
			var recs [2][]*wal.Record
			for i := 0; i < 2; i++ {
				e, err := NewEngine(Options{
					Workers:   workers[i],
					Recovery:  recovery.ModeStrong,
					LogPath:   dirs[i] + "/cmd.log",
					LogPolicy: wal.SyncEachCommit,
				})
				if err != nil {
					t.Fatal(err)
				}
				parallelMixSetup(t, e)
				errs[i] = driveParallelMix(t, e, seed, nops)
				states[i] = engineState(t, e)
				if i == 1 {
					if s := e.Stats(); s.TasksParallel == 0 {
						t.Errorf("parallel engine never formed a wave (serial=%d)", s.TasksSerial)
					}
				}
				if err := e.Close(); err != nil {
					t.Fatal(err)
				}
				recs[i], err = wal.ReadSetMerged(dirs[i] + "/cmd.log")
				if err != nil {
					t.Fatal(err)
				}
			}
			for op := range errs[0] {
				if errs[0][op] != errs[1][op] {
					t.Errorf("op %d outcome diverged: serial=%q parallel=%q",
						op, errs[0][op], errs[1][op])
				}
			}
			for j, line := range states[0] {
				if line != states[1][j] {
					t.Errorf("state diverged:\nserial:   %s\nparallel: %s", line, states[1][j])
				}
			}
			if len(recs[0]) != len(recs[1]) {
				t.Fatalf("log length diverged: serial=%d parallel=%d", len(recs[0]), len(recs[1]))
			}
			for j := range recs[0] {
				if recordKey(recs[0][j]) != recordKey(recs[1][j]) {
					t.Errorf("log record %d diverged:\nserial:   %s\nparallel: %s",
						j, recordKey(recs[0][j]), recordKey(recs[1][j]))
				}
			}
			// Strong recovery from the parallel-produced log must land on
			// the same state as from the serial log (and as the live run).
			for i := 0; i < 2; i++ {
				r, err := NewEngine(Options{
					Workers:   workers[i],
					Recovery:  recovery.ModeStrong,
					LogPath:   dirs[i] + "/cmd.log",
					LogPolicy: wal.SyncEachCommit,
				})
				if err != nil {
					t.Fatal(err)
				}
				parallelMixSetup(t, r)
				if err := r.Recover(); err != nil {
					t.Fatalf("recover from %s log: %v", map[int]string{0: "serial", 1: "parallel"}[i], err)
				}
				got := engineState(t, r)
				for j, line := range got {
					if line != states[0][j] {
						t.Errorf("recovered state (workers=%d) diverged:\nlive:      %s\nrecovered: %s",
							workers[i], states[0][j], line)
					}
				}
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestParallelReadersRaceStress hammers a Workers=4 partition with
// non-conflicting calls while snapshot readers pin and query views
// concurrently. It exists for the race detector (CI runs the package
// under -race); the assertions are secondary.
func TestParallelReadersRaceStress(t *testing.T) {
	e := newEngine(t, Options{Workers: 4})
	for i := 0; i < 4; i++ {
		if err := e.ExecDDL(fmt.Sprintf("CREATE TABLE r%d (k BIGINT, v BIGINT)", i)); err != nil {
			t.Fatal(err)
		}
		tbl := fmt.Sprintf("r%d", i)
		if err := e.RegisterProc(&StoredProc{
			Name:   fmt.Sprintf("Put%d", i),
			Access: &ProcAccess{Writes: []string{tbl}},
			Func: func(ctx *ProcCtx) error {
				_, err := ctx.Query(fmt.Sprintf("INSERT INTO %s VALUES (?, ?)", tbl),
					ctx.Params()[0], ctx.Params()[1])
				return err
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			tbl := fmt.Sprintf("r%d", g)
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := e.Read(0, "SELECT COUNT(*) FROM "+tbl); err != nil {
					t.Errorf("Read: %v", err)
					return
				}
				v, err := e.ReadView(0)
				if err != nil {
					t.Errorf("ReadView: %v", err)
					return
				}
				if _, err := v.Query("SELECT COUNT(*) FROM " + tbl); err != nil {
					t.Errorf("view query: %v", err)
					v.Close()
					return
				}
				v.Close()
			}
		}(g)
	}
	const nops = 400
	chans := make([]<-chan CallResult, 0, nops)
	for i := 0; i < nops; i++ {
		chans = append(chans, e.CallAsync(fmt.Sprintf("Put%d", i%4),
			types.Row{types.NewInt(int64(i)), types.NewInt(int64(i * 3))}))
	}
	for _, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatalf("call: %v", r.Err)
		}
	}
	close(done)
	readers.Wait()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		res, err := e.AdHoc(0, fmt.Sprintf("SELECT COUNT(*) FROM r%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].Int(); got != nops/4 {
			t.Errorf("r%d has %d rows, want %d", i, got, nops/4)
		}
	}
	if s := e.Stats(); s.TasksParallel == 0 {
		t.Errorf("no parallel waves formed under stress (serial=%d)", s.TasksSerial)
	}
}
