package pe

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"sstore/internal/ee"
	"sstore/internal/storage"
	"sstore/internal/txn"
	"sstore/internal/types"
	"sstore/internal/wal"
)

// partition is one execution site: a catalog slice, an execution
// engine, and a scheduler drained by a single goroutine, so every
// transaction on the partition runs serially with no latching (§3.1).
type partition struct {
	id    int
	eng   *Engine
	cat   *storage.Catalog
	exec  *ee.Executor
	sched *scheduler
	// views is the snapshot read path's registry: the run loop
	// brackets every task so views pin on commit boundaries, and
	// tables detach copy-on-write images for pinned readers.
	views *storage.Views
	// readMu guards the off-loop read-plan cache.
	readMu    sync.Mutex
	readPlans map[string]*ee.ReadPlan
	// ddlMu serializes runtime DDL (and maintained-aggregate
	// registration) against off-loop plan compilation: compilation
	// reads table index lists and aggregate registrations from
	// arbitrary goroutines, which a CREATE INDEX / CREATE TABLE task
	// would otherwise mutate under its feet.
	ddlMu sync.RWMutex

	// par, when non-nil, holds the intra-partition worker pool and the
	// dispatcher's reusable buffers (Options.Workers > 1); nil keeps
	// the classic serial pop-execute loop.
	par *parallel
	// spAccess caches each SP's declared access set (nil entry =
	// cached "undeclared"); spWave caches wave eligibility. Both are
	// dispatcher-goroutine only.
	spAccess map[string]*ee.AccessSet
	spWave   map[string]bool

	nextTxn  uint64
	executed uint64
	aborted  uint64
	// txnFree/ectxFree/pcFree recycle partition-confined hot structs
	// (see pool.go); dispatcher-goroutine only.
	txnFree  []*txn.Txn
	ectxFree []*ee.ExecCtx
	pcFree   []*ProcCtx
	// lastTriggerErr remembers the most recent error of a TE that had
	// no reply channel (PE-triggered interior TEs); surfaced through
	// Engine.TriggerErr so workflow failures are not silent.
	// triggerErrs counts every such error cumulatively — TriggerErr
	// clears the last error on read, so intermediate failures would
	// otherwise vanish from the stats.
	lastTriggerErr error
	triggerErrs    atomic.Uint64
	// tasksParallel/tasksSerial split dispatcher-executed tasks by
	// path: wave members vs serial fallback (conflicting, serial-only,
	// control, or lone tasks). Zero on a classic serial partition.
	// peakConcurrent is the maximum number of TE bodies in flight at
	// once. All three are written by the dispatcher goroutine only but
	// are atomics because they tick after a task's reply is sent, so a
	// client reading Stats right after a Call would otherwise race.
	tasksParallel  atomic.Uint64
	tasksSerial    atomic.Uint64
	peakConcurrent atomic.Int64
	execBySP       map[string]uint64
	pendingGC      map[gcKey]int // (stream, batch) → consumers yet to commit

	insertSQL map[string]string // cached INSERT statement per stream

	// archSite is the partition's disk-backed heap site (buffer pool +
	// page-file directory), materialized by the engine on the first
	// CREATE ARCHIVE TABLE; nil until then. Guarded by Engine.archMu.
	archSite *storage.ArchiveSite

	done chan struct{}
}

// maxRun bounds how many queued tasks the dispatcher pops per run; it
// also sizes the preallocated spRun entries, so the no-conflict fast
// path allocates nothing per task beyond what serial execution does.
const maxRun = 32

// parallel is a partition's worker pool plus the dispatcher's
// preallocated run buffers.
type parallel struct {
	workers int
	// work feeds wave members to the worker goroutines; the dispatcher
	// blocks on wg until the whole wave's bodies finished.
	work chan *spRun
	wg   sync.WaitGroup

	runBuf  []*task         // PopRun destination, len maxRun
	accBuf  []*ee.AccessSet // access sets of the wave under construction
	entries []spRun         // per-wave execution state, len maxRun
}

// spRun is one transaction execution's state, split so a wave's bodies
// can run on workers while begin (txn-ID assignment) and retirement
// (log, commit, trigger dispatch, reply) stay on the dispatcher in
// admission order.
type spRun struct {
	t    *task
	sp   *StoredProc
	tx   *txn.Txn
	ectx *ee.ExecCtx
	pc   *ProcCtx
	err  error
}

type gcKey struct {
	stream  string
	batchID int64
}

func newPartition(id int, eng *Engine) *partition {
	cat := storage.NewCatalog()
	return &partition{
		id:        id,
		eng:       eng,
		cat:       cat,
		exec:      ee.NewExecutor(cat),
		sched:     newScheduler(),
		views:     storage.NewViews(cat),
		readPlans: make(map[string]*ee.ReadPlan),
		spAccess:  make(map[string]*ee.AccessSet),
		spWave:    make(map[string]bool),
		execBySP:  make(map[string]uint64),
		pendingGC: make(map[gcKey]int),
		insertSQL: make(map[string]string),
		done:      make(chan struct{}),
	}
}

// startWorkers arms the partition's parallel dispatcher with a worker
// pool of the given size.
func (p *partition) startWorkers(workers int) {
	p.par = &parallel{
		workers: workers,
		work:    make(chan *spRun, maxRun),
		runBuf:  make([]*task, maxRun),
		accBuf:  make([]*ee.AccessSet, 0, maxRun),
		entries: make([]spRun, maxRun),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
}

// worker executes wave members' bodies; everything else about the TE
// stays on the dispatcher goroutine.
func (p *partition) worker() {
	for r := range p.par.work {
		p.runSPBody(r)
		p.par.wg.Done()
	}
}

// run is the partition goroutine: pop, execute, repeat. Each task's
// slot in the engine-wide quiesce counter is released only after
// execute returns, i.e. after the TE committed (or aborted) and its
// triggered children were enqueued — so Drain cannot observe a
// momentarily-empty queue while a workflow is still unfolding.
//
// With Options.Workers > 1 the goroutine is a dispatcher instead: it
// pops a run of queued tasks, partitions the run into waves of
// mutually non-conflicting TEs (by declared access sets), executes
// each wave's bodies concurrently on the worker pool, and retires them
// in admission order — txn-ID assignment, command log, Commit, trigger
// dispatch, reply, and views bracketing all stay here, so the logged
// schedule, replay, and snapshot read views are identical to serial
// execution.
func (p *partition) run() {
	defer close(p.done)
	if p.par == nil {
		for {
			t, ok := p.sched.Pop()
			if !ok {
				return
			}
			// Bracket the task for the snapshot read path: views pin only
			// between tasks, so they never see a half-executed (or not yet
			// rolled back) transaction.
			p.views.BeginTask()
			p.execute(t)
			p.views.EndTask()
			if p.sched.track != nil {
				p.sched.track.done()
			}
			putTask(t)
		}
	}
	defer close(p.par.work)
	for {
		n, wave, ok := p.sched.PopRun(p.par.runBuf, p.waveEligible)
		if !ok {
			return
		}
		if !wave || n == 1 {
			p.runSerialTask(p.par.runBuf[0])
			continue
		}
		p.runParallel(p.par.runBuf[:n])
	}
}

// runSerialTask executes one task exactly as the classic serial loop
// does: the in-order fallback for conflicting, serial-only, control,
// and lone tasks.
func (p *partition) runSerialTask(t *task) {
	p.views.BeginTask()
	p.execute(t)
	p.views.EndTask()
	p.tasksSerial.Add(1)
	if p.sched.track != nil {
		p.sched.track.done()
	}
	putTask(t)
}

// runParallel executes a popped run: greedy consecutive waves of
// mutually non-conflicting TEs. A wave ends at the first task whose
// declared access set conflicts with any wave member — it starts the
// next wave — so tasks never reorder across a conflict and the commit
// order is exactly admission order.
func (p *partition) runParallel(ts []*task) {
	i := 0
	for i < len(ts) {
		accs := p.par.accBuf[:0]
		j := i
		for j < len(ts) {
			acc := p.declaredAccess(ts[j].sp)
			if conflictsAny(accs, acc) {
				break
			}
			accs = append(accs, acc)
			j++
		}
		if j-i == 1 {
			p.runSerialTask(ts[i])
		} else {
			p.executeWave(ts[i:j])
		}
		i = j
	}
}

// executeWave runs a wave of mutually non-conflicting TEs: bodies
// concurrent on the worker pool, everything else on the dispatcher in
// admission order. The whole wave sits inside one BeginTask/EndTask
// bracket with AdvanceTask between retirements, so snapshot reads can
// never pin an interior boundary (wave bodies interleave their
// mutations, so interior boundaries never exist as physical states)
// while the completed-task count stays identical to serial execution.
func (p *partition) executeWave(ts []*task) {
	// Prefill the INSERT statement cache on the dispatcher: workers
	// only read it. A miss here surfaces in the body, which fails with
	// the same error serial execution would report.
	for _, t := range ts {
		if len(t.batch) > 0 && t.inputStream != "" && t.kind != wal.KindInterior {
			_, _ = p.insertStmtFor(t.inputStream)
		}
	}
	p.views.BeginTask()
	entries := p.par.entries[:len(ts)]
	for i, t := range ts {
		// Txn IDs are assigned here, in admission order, exactly as the
		// serial loop would.
		p.beginSP(&entries[i], t, p.eng.procs[t.sp], p.declaredAccess(t.sp))
	}
	p.par.wg.Add(len(entries))
	for i := range entries {
		p.par.work <- &entries[i]
	}
	p.par.wg.Wait()
	if c := int64(min(len(entries), p.par.workers)); c > p.peakConcurrent.Load() {
		p.peakConcurrent.Store(c)
	}
	for i := range entries {
		p.retireSP(&entries[i])
		t := entries[i].t
		p.recycleRun(&entries[i]) // zeroes the entry, releasing references
		putTask(t)
		p.tasksParallel.Add(1)
		if p.sched.track != nil {
			p.sched.track.done()
		}
		if i < len(entries)-1 {
			p.views.AdvanceTask()
		}
	}
	p.views.EndTask()
}

// execute runs one queued task on the partition goroutine (or, for a
// parallel partition, on the dispatcher as the serial fallback).
// Everything below here — SP bodies, commit, trigger dispatch — must
// compute the same state on a live run and on a serial replay of the
// command log; that obligation extends to the beginSP / runSPBody /
// retireSP pieces executeSP splits into, because the parallel
// dispatcher runs the same pieces — bodies on workers, begin and
// retirement on the dispatcher in admission order — and its result
// must be byte-identical to this serial path. Control thunks
// (t.control) are engine plumbing that runs outside the logged
// schedule and carries its own obligations.
//
//sstore:deterministic
func (p *partition) execute(t *task) {
	switch {
	case t.control != nil:
		err := t.control(p)
		p.replyTo(t, nil, err)
	case len(t.nested) > 0:
		p.executeNested(t)
	default:
		p.executeSP(t)
	}
}

func (p *partition) replyTo(t *task, res *Result, err error) {
	if t.reply != nil {
		t.reply <- callResult{res: res, err: err}
		return
	}
	if err != nil {
		p.noteTriggerErr(err)
	}
}

// noteTriggerErr records a reply-less failure: the cumulative counter
// for stats, the last error for Engine.TriggerErr.
func (p *partition) noteTriggerErr(err error) {
	p.triggerErrs.Add(1)
	p.lastTriggerErr = err
}

// executeSP runs one transaction execution end to end: body, command
// log, commit, PE-trigger dispatch, stream GC. The pieces — beginSP,
// runSPBody, retireSP — are shared with the parallel dispatcher, which
// runs bodies of non-conflicting TEs concurrently; here they run
// back-to-back on the partition goroutine.
func (p *partition) executeSP(t *task) {
	sp, ok := p.eng.procs[t.sp]
	if !ok {
		p.replyTo(t, nil, fmt.Errorf("pe: unknown stored procedure %q", t.sp))
		return
	}
	var r spRun
	p.beginSP(&r, t, sp, p.declaredAccess(t.sp))
	p.runSPBody(&r)
	p.retireSP(&r)
	p.recycleRun(&r)
}

// beginSP assigns the transaction ID and builds the execution state.
// Dispatcher-goroutine only, in admission order — so txn IDs are
// identical to serial execution regardless of how bodies interleave.
func (p *partition) beginSP(r *spRun, t *task, sp *StoredProc, allowed *ee.AccessSet) {
	tx := p.beginTxn()
	ectx := p.getECtx()
	ectx.Reset(t.sp, t.batchID, tx, allowed)
	pc := p.getProcCtx()
	*pc = ProcCtx{part: p, ectx: ectx, params: t.params, batch: t.batch, batchID: t.batchID}
	*r = spRun{t: t, sp: sp, tx: tx, ectx: ectx, pc: pc}
}

// runSPBody executes the TE's body — batch placement plus the
// procedure function — recording the outcome in r.err. This is the
// only piece that runs off the dispatcher goroutine (on a worker, for
// wave members); it touches only tables inside the TE's declared
// access set, r's own state, and the executor's locked plan cache.
func (p *partition) runSPBody(r *spRun) {
	t := r.t
	r.err = func() error {
		// Border TEs ingest their batch: the tuples are appended to
		// the input stream inside the TE, so batch arrival and its
		// processing commit atomically (§2.1). Interior TEs whose
		// batch was relocated here by cross-partition dispatch — and
		// hand-off TEs, whose batch arrived from another node — place
		// the moved rows the same way, but without re-firing EE
		// triggers: the rows already entered the system once, at the
		// producing partition.
		if len(t.batch) > 0 && t.inputStream != "" {
			if t.kind == wal.KindInterior || t.kind == wal.KindHandoff {
				if err := p.placeMovedBatch(t.inputStream, t.batch, t.batchID, r.tx); err != nil {
					return err
				}
			} else if err := p.insertBatch(t.inputStream, t.batch, r.ectx); err != nil {
				return err
			}
		}
		return r.sp.Func(r.pc)
	}()
}

// retireSP finishes the TE in admission order on the dispatcher
// goroutine: rollback on failure, else command log, commit, trigger
// dispatch, GC, and reply. An aborted wave member rolls back here —
// safe after other bodies ran, because wave write sets are disjoint.
func (p *partition) retireSP(r *spRun) {
	t := r.t
	err := r.err
	if err != nil {
		p.aborted++
		if rbErr := r.tx.Rollback(); rbErr != nil {
			err = fmt.Errorf("%w (rollback: %v)", err, rbErr)
		}
		p.retainRelocatedBatch(t)
		p.releaseBorderAdmission(t)
		p.replyTo(t, nil, err)
		return
	}
	if err := p.logCommit(t); err != nil {
		p.aborted++
		if rbErr := r.tx.Rollback(); rbErr != nil {
			err = fmt.Errorf("%w (rollback: %v)", err, rbErr)
		}
		p.retainRelocatedBatch(t)
		// Deliberately no releaseBorderAdmission here: a log append
		// can fail after the record's bytes reached the file (fsync
		// error), so the batch may replay at recovery. Keeping the
		// admission rejects the retry as a duplicate — losing one
		// delivery attempt is recoverable; applying the batch twice is
		// not.
		p.replyTo(t, nil, fmt.Errorf("pe: command log: %w", err))
		return
	}
	if err := r.tx.Commit(); err != nil {
		p.replyTo(t, nil, err)
		return
	}
	p.executed++
	p.execBySP[t.sp]++
	p.afterCommit(t, r.ectx.Appends)
	res := r.pc.result
	if res == nil {
		res = &Result{}
	}
	res.LastInsertBatch = t.batchID
	p.replyTo(t, res, nil)
}

// insertStmtFor returns (caching on success) the INSERT statement for
// a stream. The cache is written only by the dispatcher goroutine; the
// parallel dispatcher prefills it before launching a wave, so worker
// bodies only read it.
func (p *partition) insertStmtFor(streamName string) (string, error) {
	if stmt, ok := p.insertSQL[streamName]; ok {
		return stmt, nil
	}
	tbl, err := p.cat.Get(streamName)
	if err != nil {
		return "", err
	}
	ph := make([]string, tbl.Schema().Len())
	for i := range ph {
		ph[i] = "?"
	}
	stmt := "INSERT INTO " + streamName + " VALUES (" + strings.Join(ph, ", ") + ")"
	p.insertSQL[streamName] = stmt
	return stmt, nil
}

// insertBatch appends a batch's tuples to a stream table through the
// executor so EE triggers fire exactly as they would for any insert.
func (p *partition) insertBatch(streamName string, rows []types.Row, ectx *ee.ExecCtx) error {
	stmt, err := p.insertStmtFor(streamName)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := p.exec.Execute(stmt, row, ectx); err != nil {
			return err
		}
	}
	return nil
}

// placeMovedBatch restores a relocated batch's tuples into this
// partition's copy of the stream table, transactionally when undo is
// given (the insert rolls back with the consuming TE). Unlike
// insertBatch it bypasses the executor: EE triggers fired when the
// producing TE appended the rows, and the move is pure relocation, not
// a second arrival.
func (p *partition) placeMovedBatch(streamName string, rows []types.Row, batchID int64, undo storage.Undo) error {
	tbl, err := p.cat.Get(streamName)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := tbl.Insert(row, batchID, undo); err != nil {
			return err
		}
	}
	return nil
}

// releaseBorderAdmission runs after a border TE's body aborted and
// rolled back, before logCommit was ever attempted: the rollback
// removed the batch's rows from the input stream and nothing reached
// the log, so the batch left no trace — but its admission still sits
// in the exactly-once ledger, where it would reject the client's retry
// of the very same batch as a duplicate. Releasing the admission
// restores the re-delivery contract: abort → retry → commit. The
// release happens on this partition's ledger shard, which is where
// ingest admitted the batch (the ledger travels with the routing).
//
// The ledger is a high-water mark, so only the shard's most recent
// admission can actually be released (stream.Dedup.Release): the
// retry guarantee holds for an injector that resolves each batch
// before admitting later IDs on the same (stream, shard) — the sync
// and retry-loop clients. A pipelined injector that runs past an
// abort cannot reclaim the hole. It does not run on a post-log commit
// failure: the record's bytes may have reached the file even when the
// append reported an error, and a replayed-plus-retried batch would
// apply twice.
// Hand-off TEs release the same way: their admission also lives on
// this partition's shard (keyed by the hand-off's target partition ==
// p.id), and releasing it lets the sending node's re-delivery retry
// the batch instead of being suppressed as a duplicate.
func (p *partition) releaseBorderAdmission(t *task) {
	if (t.kind != wal.KindBorder && t.kind != wal.KindHandoff) || t.inputStream == "" {
		return
	}
	p.eng.dedup.Release(p.id, t.inputStream, t.batchID)
}

// retainRelocatedBatch runs after an aborted TE rolled back: if the
// task carried a relocated batch, the rollback removed the rows from
// the stream table, which would lose the batch — they exist nowhere
// else. Re-placing them outside any transaction mirrors the
// local-dispatch abort semantics: the failed batch stays in the stream
// table (inspectable, never silently dropped) and later consumers of a
// multi-consumer batch still see it; the aborted consumer never
// releases its refcount share, so the batch is retained rather than
// GC'd.
func (p *partition) retainRelocatedBatch(t *task) {
	if t.kind != wal.KindInterior || len(t.batch) == 0 || t.inputStream == "" {
		return
	}
	if err := p.placeMovedBatch(t.inputStream, t.batch, t.batchID, nil); err != nil {
		p.noteTriggerErr(fmt.Errorf("pe: retain relocated batch %d on %s: %w", t.batchID, t.inputStream, err))
		return
	}
	if t.gcRefs > 1 {
		p.pendingGC[gcKey{stream: t.inputStream, batchID: t.batchID}] = t.gcRefs
	}
}

// groundQueuedBatches materializes batches traveling inside this
// partition's queued carrying tasks into its stream tables. The
// checkpoint barrier calls it with every partition parked: a batch
// relocated by a TE that committed behind another partition's barrier
// exists only in the carrying task, so without grounding the snapshot
// would miss a durably-committed (and soon compacted-away) batch. The
// GC refcount moves to pendingGC and the task sheds its payload — the
// consumer then finds the rows in the table, exactly as if the batch
// had been produced locally.
func (p *partition) groundQueuedBatches() error {
	var firstErr error
	p.sched.ForEachQueued(func(t *task) {
		if t.kind != wal.KindInterior || len(t.batch) == 0 || t.inputStream == "" {
			return
		}
		tbl, err := p.cat.Get(t.inputStream)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		for _, row := range t.batch {
			if _, err := tbl.Insert(row, t.batchID, nil); err != nil {
				// Roll the partial insert back out of the table: the
				// task keeps its payload, so the batch is neither
				// duplicated (when the consumer later places it) nor
				// lost (the checkpoint aborts on this error).
				storage.DeleteBatch(tbl, t.batchID, nil)
				if firstErr == nil {
					firstErr = err
				}
				return
			}
		}
		if t.gcRefs > 0 {
			p.pendingGC[gcKey{stream: t.inputStream, batchID: t.batchID}] = t.gcRefs
		}
		t.batch = nil
		t.gcRefs = 0
	})
	return firstErr
}

// logCommit appends the TE's command-log record to this partition's
// log per the recovery mode, blocking until durable. It runs before
// Commit so a logged transaction is always recoverable (write-ahead).
// Because each partition has its own log, concurrent commits on
// different partitions never contend on a shared mutex or fsync
// queue; the record's global sequence stamp preserves total commit
// order for replay.
func (p *partition) logCommit(t *task) error {
	e := p.eng
	if t.noLog || e.logs == nil || !e.loggingOn.Load() || !e.opts.Recovery.ShouldLog(t.kind) {
		return nil
	}
	rec := &wal.Record{
		Kind:      t.kind,
		Partition: p.id,
		SP:        t.sp,
		BatchID:   t.batchID,
		Params:    t.params,
	}
	// Only border and hand-off records carry tuples (upstream backup,
	// §3.2.5). An interior task may also hold rows when its batch was
	// relocated across partitions, but logging them would be pure log
	// volume: strong-recovery replay re-derives the rows from the
	// upstream record and hands them over through the replay stash. A
	// hand-off's upstream record lives on ANOTHER node's log, so its
	// rows must be logged here for this node's recovery to stay local.
	if t.kind == wal.KindBorder || t.kind == wal.KindHandoff {
		rec.Batch = t.batch
	}
	_, err := e.logs.Append(p.id, rec)
	return err
}

// afterCommit dispatches PE triggers for the TE's stream appends and
// garbage-collects the consumed input batch.
func (p *partition) afterCommit(t *task, appends []ee.StreamAppend) {
	if p.eng.peTriggersOn.Load() {
		p.dispatchTriggers(t, appends)
	} else if p.eng.stash != nil {
		// Strong replay: produced batches leave the table for the
		// replay stash instead of firing triggers, so later replayed
		// TEs never see a neighbor batch in their input stream.
		p.stashAppends(t, appends)
	}
	if t.inputStream == "" {
		return
	}
	if len(t.batch) > 0 {
		if t.gcRefs > 1 {
			// First consumer of a relocated multi-consumer batch: the
			// refcount follows the batch to this partition; the
			// remaining consumers decrement it below.
			p.pendingGC[gcKey{stream: t.inputStream, batchID: t.batchID}] = t.gcRefs - 1
			return
		}
		// Border TE or sole consumer of a relocated batch: GC now.
		p.gcBatch(t.inputStream, t.batchID)
		return
	}
	key := gcKey{stream: t.inputStream, batchID: t.batchID}
	if n, ok := p.pendingGC[key]; ok {
		if n <= 1 {
			delete(p.pendingGC, key)
			p.gcBatch(t.inputStream, t.batchID)
		} else {
			p.pendingGC[key] = n - 1
		}
	} else {
		// Recovery-fired TE with no registered refcount: single
		// consumer.
		p.gcBatch(t.inputStream, t.batchID)
	}
}

func (p *partition) gcBatch(streamName string, batchID int64) {
	if tbl, ok := p.cat.Lookup(streamName); ok {
		storage.DeleteBatch(tbl, batchID, nil)
	}
}

// dispatchTriggers turns the TE's stream appends into TEs for each
// downstream consumer, preserving append order (which is consistent
// with the workflow's topological order because appends happen in SP
// execution order).
//
// When the engine has a PartitionBy routing function and more than one
// partition, each appended batch is routed like an ingested one: a
// batch bound to this partition short-circuits to the front of the
// local queue (§3.2.4); a batch bound elsewhere is relocated through
// the partition transport — its rows are extracted from the local
// stream table and travel with the consumer tasks to the destination
// partition's FIFO (or across the wire to the owning node), together
// with the GC refcount. Because this partition dispatches serially in
// commit order and the transport appends each batch's tasks
// atomically, batches of one stream arrive at any given partition in
// increasing-ID order — the per-(stream, partition) ordering guarantee
// the paper's §2.2 constraints reduce to under data partitioning
// (§4.7).
func (p *partition) dispatchTriggers(t *task, appends []ee.StreamAppend) {
	var local []*task
	var remote []relocated // batches bound elsewhere, in append order
	seen := make(map[gcKey]bool)
	route := p.eng.opts.PartitionBy
	nparts := p.eng.nglobal
	for _, ap := range appends {
		if ap.Table == strings.ToLower(t.inputStream) {
			// The TE's own input: being consumed, not produced.
			continue
		}
		key := gcKey{stream: ap.Table, batchID: ap.BatchID}
		if seen[key] {
			continue
		}
		seen[key] = true
		consumers := p.eng.consumers[ap.Table]
		if len(consumers) == 0 {
			continue
		}
		target := p.id
		var rows []types.Row
		if route != nil && nparts > 1 {
			if tbl, ok := p.cat.Lookup(ap.Table); ok {
				rows = storage.BatchRows(tbl, ap.BatchID)
			}
			if len(rows) > 0 {
				target = wrapPartition(route(ap.Table, rows), nparts)
			}
		}
		if target == p.id {
			p.pendingGC[key] = len(consumers)
			for _, c := range consumers {
				ct := getTask()
				ct.sp = c
				ct.params = types.Row{types.NewInt(ap.BatchID)}
				ct.batchID = ap.BatchID
				ct.kind = wal.KindInterior
				ct.inputStream = ap.Table
				local = append(local, ct)
			}
			continue
		}
		remote = append(remote, relocated{stream: ap.Table, batchID: ap.BatchID, rows: rows, target: target})
	}
	p.sched.PushFrontBatch(local)
	for _, r := range remote {
		// Relocate through the transport: in-process delivery moves the
		// rows into the consumer tasks (retained=false — drop the local
		// copy); a cross-node delivery keeps the local copy retained
		// until the receiving node acknowledges the batch's commit
		// (handoffAcked deletes it then).
		retained, err := p.eng.transport.Deliver(p.id, r.target, r.stream, r.batchID, r.rows, false)
		if err != nil {
			// Destination closed mid-shutdown (or peer set torn down):
			// keep the committed batch in the local stream table rather
			// than dropping it, and surface the miss like any other
			// trigger failure.
			p.noteTriggerErr(fmt.Errorf("pe: batch %d on %s not dispatched to partition %d: %w",
				r.batchID, r.stream, r.target, err))
			continue
		}
		if !retained {
			if tbl, ok := p.cat.Lookup(r.stream); ok {
				storage.DeleteBatch(tbl, r.batchID, nil)
			}
		}
	}
}

// relocated is one committed batch bound to another partition, queued
// for transport delivery after the local front-push.
type relocated struct {
	stream  string
	batchID int64
	rows    []types.Row
	target  int
}

// executeNested runs a nested transaction (§2.3): children execute in
// order as one isolation unit; all commit or all roll back. Because the
// whole group occupies one scheduler slot, nothing can interleave.
func (p *partition) executeNested(t *task) {
	type childRun struct {
		tx   *txn.Txn
		ectx *ee.ExecCtx
	}
	var runs []childRun
	var lastResult *Result
	rollbackAll := func() {
		for i := len(runs) - 1; i >= 0; i-- {
			_ = runs[i].tx.Rollback()
		}
	}
	for _, child := range t.nested {
		sp, ok := p.eng.procs[child.sp]
		if !ok {
			rollbackAll()
			p.replyTo(t, nil, fmt.Errorf("pe: unknown stored procedure %q", child.sp))
			return
		}
		p.nextTxn++
		tx := txn.New(p.nextTxn)
		ectx := &ee.ExecCtx{SP: child.sp, BatchID: t.batchID, Txn: tx}
		pc := &ProcCtx{part: p, ectx: ectx, params: child.params, batchID: t.batchID}
		if err := sp.Func(pc); err != nil {
			_ = tx.Rollback()
			rollbackAll()
			p.aborted++
			p.replyTo(t, nil, fmt.Errorf("pe: nested child %s: %w", child.sp, err))
			return
		}
		runs = append(runs, childRun{tx: tx, ectx: ectx})
		if pc.result != nil {
			lastResult = pc.result
		}
	}
	// All children succeeded: log then commit each in order.
	if !t.noLog && p.eng.logs != nil && p.eng.loggingOn.Load() && p.eng.opts.Recovery.ShouldLog(t.kind) {
		for _, child := range t.nested {
			rec := &wal.Record{Kind: t.kind, Partition: p.id, SP: child.sp, Params: child.params}
			if _, err := p.eng.logs.Append(p.id, rec); err != nil {
				rollbackAll()
				p.replyTo(t, nil, fmt.Errorf("pe: command log: %w", err))
				return
			}
		}
	}
	var appends []ee.StreamAppend
	var commitErr error
	for _, r := range runs {
		if err := r.tx.Commit(); err != nil {
			// A child that fails to commit is not executed; the first
			// failure is reported to the caller. Children that already
			// committed stay committed (their effects are durable), so
			// their stream appends still dispatch below.
			if commitErr == nil {
				commitErr = fmt.Errorf("pe: nested child %s commit: %w", r.ectx.SP, err)
			}
			p.aborted++
			continue
		}
		p.executed++
		p.execBySP[r.ectx.SP]++
		appends = append(appends, r.ectx.Appends...)
	}
	p.afterCommit(t, appends)
	if commitErr != nil {
		p.replyTo(t, nil, commitErr)
		return
	}
	if lastResult == nil {
		lastResult = &Result{}
	}
	p.replyTo(t, lastResult, nil)
}
