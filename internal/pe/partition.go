package pe

import (
	"fmt"
	"strings"

	"sstore/internal/ee"
	"sstore/internal/storage"
	"sstore/internal/txn"
	"sstore/internal/types"
	"sstore/internal/wal"
)

// partition is one execution site: a catalog slice, an execution
// engine, and a scheduler drained by a single goroutine, so every
// transaction on the partition runs serially with no latching (§3.1).
type partition struct {
	id    int
	eng   *Engine
	cat   *storage.Catalog
	exec  *ee.Executor
	sched *scheduler

	nextTxn  uint64
	executed uint64
	aborted  uint64
	// lastTriggerErr remembers the most recent error of a TE that had
	// no reply channel (PE-triggered interior TEs); surfaced through
	// Engine.TriggerErr so workflow failures are not silent.
	lastTriggerErr error
	execBySP       map[string]uint64
	pendingGC      map[gcKey]int // (stream, batch) → consumers yet to commit

	insertSQL map[string]string // cached INSERT statement per stream

	done chan struct{}
}

type gcKey struct {
	stream  string
	batchID int64
}

func newPartition(id int, eng *Engine) *partition {
	cat := storage.NewCatalog()
	return &partition{
		id:        id,
		eng:       eng,
		cat:       cat,
		exec:      ee.NewExecutor(cat),
		sched:     newScheduler(),
		execBySP:  make(map[string]uint64),
		pendingGC: make(map[gcKey]int),
		insertSQL: make(map[string]string),
		done:      make(chan struct{}),
	}
}

// run is the partition goroutine: pop, execute, repeat.
func (p *partition) run() {
	defer close(p.done)
	for {
		t, ok := p.sched.Pop()
		if !ok {
			return
		}
		p.execute(t)
	}
}

func (p *partition) execute(t *task) {
	switch {
	case t.control != nil:
		err := t.control(p)
		p.replyTo(t, nil, err)
	case len(t.nested) > 0:
		p.executeNested(t)
	default:
		p.executeSP(t)
	}
}

func (p *partition) replyTo(t *task, res *Result, err error) {
	if t.reply != nil {
		t.reply <- callResult{res: res, err: err}
		return
	}
	if err != nil {
		p.lastTriggerErr = err
	}
}

// executeSP runs one transaction execution end to end: body, command
// log, commit, PE-trigger dispatch, stream GC.
func (p *partition) executeSP(t *task) {
	sp, ok := p.eng.procs[t.sp]
	if !ok {
		p.replyTo(t, nil, fmt.Errorf("pe: unknown stored procedure %q", t.sp))
		return
	}
	p.nextTxn++
	tx := txn.New(p.nextTxn)
	ectx := &ee.ExecCtx{SP: t.sp, BatchID: t.batchID, Txn: tx}
	pc := &ProcCtx{part: p, ectx: ectx, params: t.params, batch: t.batch, batchID: t.batchID}

	err := func() error {
		// Border TEs ingest their batch: the tuples are appended to
		// the input stream inside the TE, so batch arrival and its
		// processing commit atomically (§2.1).
		if len(t.batch) > 0 && t.inputStream != "" {
			if err := p.insertBatch(t.inputStream, t.batch, ectx); err != nil {
				return err
			}
		}
		return sp.Func(pc)
	}()
	if err != nil {
		p.aborted++
		if rbErr := tx.Rollback(); rbErr != nil {
			err = fmt.Errorf("%w (rollback: %v)", err, rbErr)
		}
		p.replyTo(t, nil, err)
		return
	}
	if err := p.logCommit(t); err != nil {
		p.aborted++
		if rbErr := tx.Rollback(); rbErr != nil {
			err = fmt.Errorf("%w (rollback: %v)", err, rbErr)
		}
		p.replyTo(t, nil, fmt.Errorf("pe: command log: %w", err))
		return
	}
	if err := tx.Commit(); err != nil {
		p.replyTo(t, nil, err)
		return
	}
	p.executed++
	p.execBySP[t.sp]++
	p.afterCommit(t, ectx.Appends)
	res := pc.result
	if res == nil {
		res = &Result{}
	}
	res.LastInsertBatch = t.batchID
	p.replyTo(t, res, nil)
}

// insertBatch appends a batch's tuples to a stream table through the
// executor so EE triggers fire exactly as they would for any insert.
func (p *partition) insertBatch(streamName string, rows []types.Row, ectx *ee.ExecCtx) error {
	stmt, ok := p.insertSQL[streamName]
	if !ok {
		tbl, err := p.cat.Get(streamName)
		if err != nil {
			return err
		}
		ph := make([]string, tbl.Schema().Len())
		for i := range ph {
			ph[i] = "?"
		}
		stmt = "INSERT INTO " + streamName + " VALUES (" + strings.Join(ph, ", ") + ")"
		p.insertSQL[streamName] = stmt
	}
	for _, row := range rows {
		if _, err := p.exec.Execute(stmt, row, ectx); err != nil {
			return err
		}
	}
	return nil
}

// logCommit appends the TE's command-log record per the recovery mode,
// blocking until durable. It runs before Commit so a logged transaction
// is always recoverable (write-ahead).
func (p *partition) logCommit(t *task) error {
	e := p.eng
	if t.noLog || e.logger == nil || !e.loggingOn.Load() || !e.opts.Recovery.ShouldLog(t.kind) {
		return nil
	}
	rec := &wal.Record{
		Kind:      t.kind,
		Partition: p.id,
		SP:        t.sp,
		BatchID:   t.batchID,
		Params:    t.params,
		Batch:     t.batch,
	}
	_, err := e.logger.Append(rec)
	return err
}

// afterCommit dispatches PE triggers for the TE's stream appends and
// garbage-collects the consumed input batch.
func (p *partition) afterCommit(t *task, appends []ee.StreamAppend) {
	if p.eng.peTriggersOn.Load() {
		p.dispatchTriggers(t, appends)
	}
	if t.inputStream == "" {
		return
	}
	if len(t.batch) > 0 {
		// Border TE: sole consumer of the batch it ingested.
		p.gcBatch(t.inputStream, t.batchID)
		return
	}
	key := gcKey{stream: t.inputStream, batchID: t.batchID}
	if n, ok := p.pendingGC[key]; ok {
		if n <= 1 {
			delete(p.pendingGC, key)
			p.gcBatch(t.inputStream, t.batchID)
		} else {
			p.pendingGC[key] = n - 1
		}
	} else {
		// Recovery-fired TE with no registered refcount: single
		// consumer.
		p.gcBatch(t.inputStream, t.batchID)
	}
}

func (p *partition) gcBatch(streamName string, batchID int64) {
	if tbl, ok := p.cat.Lookup(streamName); ok {
		storage.DeleteBatch(tbl, batchID, nil)
	}
}

// dispatchTriggers turns the TE's stream appends into front-of-queue
// TEs for each downstream consumer, preserving append order (which is
// consistent with the workflow's topological order because appends
// happen in SP execution order).
func (p *partition) dispatchTriggers(t *task, appends []ee.StreamAppend) {
	var children []*task
	seen := make(map[gcKey]bool)
	for _, ap := range appends {
		if ap.Table == strings.ToLower(t.inputStream) {
			// The TE's own input: being consumed, not produced.
			continue
		}
		key := gcKey{stream: ap.Table, batchID: ap.BatchID}
		if seen[key] {
			continue
		}
		seen[key] = true
		consumers := p.eng.consumers[ap.Table]
		if len(consumers) == 0 {
			continue
		}
		p.pendingGC[key] = len(consumers)
		for _, c := range consumers {
			children = append(children, &task{
				sp:          c,
				params:      types.Row{types.NewInt(ap.BatchID)},
				batchID:     ap.BatchID,
				kind:        wal.KindInterior,
				inputStream: ap.Table,
			})
		}
	}
	p.sched.PushFrontBatch(children)
}

// executeNested runs a nested transaction (§2.3): children execute in
// order as one isolation unit; all commit or all roll back. Because the
// whole group occupies one scheduler slot, nothing can interleave.
func (p *partition) executeNested(t *task) {
	type childRun struct {
		tx   *txn.Txn
		ectx *ee.ExecCtx
	}
	var runs []childRun
	var lastResult *Result
	rollbackAll := func() {
		for i := len(runs) - 1; i >= 0; i-- {
			_ = runs[i].tx.Rollback()
		}
	}
	for _, child := range t.nested {
		sp, ok := p.eng.procs[child.sp]
		if !ok {
			rollbackAll()
			p.replyTo(t, nil, fmt.Errorf("pe: unknown stored procedure %q", child.sp))
			return
		}
		p.nextTxn++
		tx := txn.New(p.nextTxn)
		ectx := &ee.ExecCtx{SP: child.sp, BatchID: t.batchID, Txn: tx}
		pc := &ProcCtx{part: p, ectx: ectx, params: child.params, batchID: t.batchID}
		if err := sp.Func(pc); err != nil {
			_ = tx.Rollback()
			rollbackAll()
			p.aborted++
			p.replyTo(t, nil, fmt.Errorf("pe: nested child %s: %w", child.sp, err))
			return
		}
		runs = append(runs, childRun{tx: tx, ectx: ectx})
		if pc.result != nil {
			lastResult = pc.result
		}
	}
	// All children succeeded: log then commit each in order.
	if !t.noLog && p.eng.logger != nil && p.eng.loggingOn.Load() && p.eng.opts.Recovery.ShouldLog(t.kind) {
		for _, child := range t.nested {
			rec := &wal.Record{Kind: t.kind, Partition: p.id, SP: child.sp, Params: child.params}
			if _, err := p.eng.logger.Append(rec); err != nil {
				rollbackAll()
				p.replyTo(t, nil, fmt.Errorf("pe: command log: %w", err))
				return
			}
		}
	}
	var appends []ee.StreamAppend
	for _, r := range runs {
		_ = r.tx.Commit()
		p.executed++
		p.execBySP[r.ectx.SP]++
		appends = append(appends, r.ectx.Appends...)
	}
	p.afterCommit(t, appends)
	if lastResult == nil {
		lastResult = &Result{}
	}
	p.replyTo(t, lastResult, nil)
}
