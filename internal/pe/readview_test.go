package pe

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstore/internal/ee"
	"sstore/internal/recovery"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
	"sstore/internal/workflow"
)

// deployCounter wires a one-SP workflow: border SP Inc consumes stream
// ev and adds each tuple's value into the single-row table counter.
func deployCounter(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.ExecDDL("CREATE STREAM ev (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.ExecDDL("CREATE TABLE counter (n BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.ExecDDL("INSERT INTO counter VALUES (0)"); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterProc(&StoredProc{Name: "Inc", Func: func(ctx *ProcCtx) error {
		sum, err := ctx.Query("SELECT COALESCE(SUM(v), 0) FROM ev")
		if err != nil {
			return err
		}
		_, err = ctx.Query("UPDATE counter SET n = n + ?", sum.Rows[0][0])
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workflow.New("count", []workflow.Node{{SP: "Inc", Input: "ev"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
}

// counterValue returns a closure so call sites can splat a
// (*ee.Result, error) pair directly: counterValue(t)(v.Query(...)).
func counterValue(t *testing.T) func(res *ee.Result, err error) int64 {
	return func(res *ee.Result, err error) int64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("want 1 row, got %d", len(res.Rows))
		}
		return res.Rows[0][0].Int()
	}
}

// TestReadViewDoesNotObservePostPinCommits is the core isolation
// property: a pinned view keeps returning the boundary state it pinned
// while later batches commit, and a fresh view sees them.
func TestReadViewDoesNotObservePostPinCommits(t *testing.T) {
	e := newEngine(t, Options{})
	deployCounter(t, e)

	if err := e.IngestSync("ev", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(5)}}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	v, err := e.ReadView(0)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if got := counterValue(t)(v.Query("SELECT n FROM counter")); got != 5 {
		t.Fatalf("pinned view reads %d, want 5", got)
	}

	// Commit more after the pin.
	if err := e.IngestSync("ev", &stream.Batch{ID: 2, Rows: []types.Row{{types.NewInt(7)}}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t)(v.Query("SELECT n FROM counter")); got != 5 {
		t.Errorf("pinned view observes post-pin commit: %d, want 5", got)
	}
	// Repeat reads stay stable (image retention, not a lucky race).
	if got := counterValue(t)(v.Query("SELECT n FROM counter")); got != 5 {
		t.Errorf("pinned view drifted: %d, want 5", got)
	}
	if got := counterValue(t)(e.Read(0, "SELECT n FROM counter")); got != 12 {
		t.Errorf("fresh read sees %d, want 12", got)
	}
}

// TestReadViewMaintainedAggregatePinned checks the O(1) aggregate
// path: maintained window aggregates are captured at pin time and do
// not move as later batches slide the window.
func TestReadViewMaintainedAggregatePinned(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE STREAM win_in (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.ExecDDL("CREATE WINDOW w (v BIGINT) SIZE 3 SLIDE 1"); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterProc(&StoredProc{Name: "Feed", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO w SELECT v FROM win_in")
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := workflow.New("feed", []workflow.Node{{SP: "Feed", Input: "win_in"}})
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	if err := e.MaintainWindowAggregate("w", "sum", "v"); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		if err := e.IngestSync("win_in", &stream.Batch{ID: i, Rows: []types.Row{{types.NewInt(i * 10)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	// Window is [20 30 40] → SUM 90.
	v, err := e.ReadView(0)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if got := counterValue(t)(v.Query("SELECT SUM(v) FROM w")); got != 90 {
		t.Fatalf("pinned sum %d, want 90", got)
	}
	for i := int64(5); i <= 8; i++ {
		if err := e.IngestSync("win_in", &stream.Batch{ID: i, Rows: []types.Row{{types.NewInt(i * 10)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t)(v.Query("SELECT SUM(v) FROM w")); got != 90 {
		t.Errorf("pinned view's maintained aggregate moved: %d, want 90", got)
	}
	if got := counterValue(t)(e.Read(0, "SELECT SUM(v) FROM w")); got != 60+70+80 {
		t.Errorf("fresh read sum %d, want %d", got, 60+70+80)
	}
	// The scanning form agrees with the maintained form on the same
	// fresh view (both pin the same boundary).
	v2, err := e.ReadView(0)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	maintained := counterValue(t)(v2.Query("SELECT SUM(v) FROM w"))
	scanned := counterValue(t)(v2.Query("SELECT SUM(v) FROM w WHERE v > -1"))
	if maintained != scanned {
		t.Errorf("maintained %d != scanned %d on one view", maintained, scanned)
	}
}

// TestReadViewNeverSeesAbortedRows hammers an aborting writer while a
// reader polls: every observed count must be a committed boundary
// (aborted inserts must never be visible, nor any mid-transaction
// partial state).
func TestReadViewNeverSeesAbortedRows(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE TABLE tt (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := e.RegisterProc(&StoredProc{Name: "Flaky", Func: func(ctx *ProcCtx) error {
		// Insert three rows, then abort or commit per the parameter:
		// an abort must roll all three back before any view can pin.
		for i := 0; i < 3; i++ {
			if _, err := ctx.Query("INSERT INTO tt VALUES (?)", ctx.Params()[0]); err != nil {
				return err
			}
		}
		if ctx.Params()[0].Int() == 0 {
			return boom
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Read(0, "SELECT COUNT(*) FROM tt")
				if err != nil {
					t.Error(err)
					return
				}
				if n := res.Rows[0][0].Int(); n%3 != 0 {
					bad.Store(n)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		commit := int64(0)
		if i%2 == 1 {
			commit = 1
		}
		_, err := e.Call("Flaky", types.Row{types.NewInt(commit)})
		if commit == 0 && !errors.Is(err, boom) {
			t.Fatalf("want abort, got %v", err)
		}
		if commit == 1 && err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("a view observed %d rows — not a commit boundary (aborted or partial state leaked)", n)
	}
	if got := counterValue(t)(e.Read(0, "SELECT COUNT(*) FROM tt")); got != 100*3 {
		t.Errorf("final count %d, want 300", got)
	}
}

// TestReadsDoNotEnterSchedulerQueue pins the off-loop property: with a
// deep backlog queued on the partition, a read completes while the
// backlog is still draining (it waits for at most the in-flight task),
// and read traffic never shows up in QueueDepth.
func TestReadsDoNotEnterSchedulerQueue(t *testing.T) {
	e := newEngine(t, Options{})
	deployCounter(t, e)
	release := make(chan struct{})
	started := make(chan struct{})
	// Park the partition inside a control task, then queue a backlog
	// behind it.
	go e.onPartition(e.parts[0], func(p *partition) error {
		close(started)
		<-release
		return nil
	})
	<-started
	for b := int64(1); b <= 50; b++ {
		if err := e.Ingest("ev", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(1)}}}); err != nil {
			t.Fatal(err)
		}
	}
	depthBefore, err := e.QueueDepth(0)
	if err != nil {
		t.Fatal(err)
	}
	if depthBefore < 50 {
		t.Fatalf("backlog not queued: depth %d", depthBefore)
	}
	done := make(chan int64, 1)
	go func() {
		res, err := e.Read(0, "SELECT n FROM counter")
		if err != nil {
			t.Error(err)
			done <- -1
			return
		}
		done <- res.Rows[0][0].Int()
	}()
	// The read must be blocked only by the parked control task, not by
	// the 50-batch backlog: release the task and expect the read to
	// return the pre-backlog state while the backlog still drains.
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("read completed while the partition was parked mid-task")
	default:
	}
	close(release)
	got := <-done
	if got != 0 {
		// The read pinned the boundary right after the control task;
		// some batches may already have committed on a fast machine,
		// but the queue cannot have fully drained: check QueueDepth.
		if d, _ := e.QueueDepth(0); d == 0 {
			t.Skip("scheduler drained 50 batches before the read returned; timing too coarse to assert")
		}
	}
	// Reads never occupy scheduler slots: after drain, depth returns
	// to zero and repeated reads keep it there.
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Read(0, "SELECT n FROM counter"); err != nil {
			t.Fatal(err)
		}
		if d, _ := e.QueueDepth(0); d != 0 {
			t.Fatalf("read traffic appeared in the scheduler queue: depth %d", d)
		}
	}
}

// TestReadViewConcurrentWithWrites stress-checks image detachment
// under the race detector: concurrent scans + pins against a hot
// writer, values always a committed multiple.
func TestReadViewConcurrentWithWrites(t *testing.T) {
	e := newEngine(t, Options{})
	deployCounter(t, e)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := e.ReadView(0)
				if err != nil {
					t.Error(err)
					return
				}
				a := counterValue(t)(v.Query("SELECT n FROM counter"))
				// A second read of the same view must agree even though
				// writes keep landing between the two queries.
				b := counterValue(t)(v.Query("SELECT n FROM counter"))
				v.Close()
				if a != b {
					t.Errorf("one view read %d then %d", a, b)
					return
				}
			}
		}()
	}
	for b := int64(1); b <= 300; b++ {
		if err := e.IngestSync("ev", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(1)}}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t)(e.Read(0, "SELECT n FROM counter")); got != 300 {
		t.Errorf("final counter %d, want 300", got)
	}
}

// TestAdHocRejectsNonReadOnly is the satellite regression: Engine.AdHoc
// used to commit writes without a command-log record, so a committed
// ad-hoc write silently vanished on strong recovery. Writes are now
// rejected while logging is enabled; reads and (unlogged-by-design)
// DDL still work, and recovery reproduces exactly the logged state.
func TestAdHocRejectsNonReadOnlyWhenLogging(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     filepath.Join(dir, "cmd.log"),
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	build := func() *Engine {
		e := newEngine(t, opts)
		deployCounter(t, e)
		return e
	}
	e := build()
	if err := e.IngestSync("ev", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(3)}}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	// The bug being fixed: this write would have committed in memory,
	// left no log record, and vanished on recovery.
	if _, err := e.AdHoc(0, "UPDATE counter SET n = n + 1000"); err == nil {
		t.Fatal("ad-hoc write accepted under command logging")
	} else if !strings.Contains(err.Error(), "logging") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
	if _, err := e.AdHoc(0, "INSERT INTO counter VALUES (9)"); err == nil {
		t.Fatal("ad-hoc insert accepted under command logging")
	}
	// Read-only ad-hoc statements still work.
	if got := counterValue(t)(e.AdHoc(0, "SELECT n FROM counter")); got != 3 {
		t.Fatalf("read sees %d, want 3", got)
	}
	// DDL stays allowed: it is setup state, re-issued at boot.
	if _, err := e.AdHoc(0, "CREATE TABLE scratch (x BIGINT)"); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Crash-recovery regression: the recovered state is exactly the
	// logged history — nothing more, nothing less.
	e2 := build()
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t)(e2.AdHoc(0, "SELECT n FROM counter")); got != 3 {
		t.Errorf("recovered counter %d, want 3", got)
	}
}

// TestAdHocWritesStillWorkUnlogged: without logging, ad-hoc writes
// keep their historical behavior.
func TestAdHocWritesStillWorkUnlogged(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE TABLE k (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AdHoc(0, "INSERT INTO k VALUES (41)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AdHoc(0, "UPDATE k SET v = v + 1"); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t)(e.AdHoc(0, "SELECT v FROM k")); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

// TestAmbiguousBorderConsumerRejected is the satellite for the
// nondeterministic borderConsumer: two workflows whose border SPs
// consume the same stream must be rejected at deploy time, naming
// both procedures.
func TestAmbiguousBorderConsumerRejected(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE STREAM shared (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.ExecDDL("CREATE TABLE sink (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	mk := func(sp string) {
		err := e.RegisterProc(&StoredProc{Name: sp, Func: func(ctx *ProcCtx) error {
			_, err := ctx.Query("INSERT INTO sink SELECT v FROM shared")
			return err
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk("First")
	mk("Second")
	w1, err := workflow.New("wf1", []workflow.Node{{SP: "First", Input: "shared"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w1); err != nil {
		t.Fatal(err)
	}
	w2, err := workflow.New("wf2", []workflow.Node{{SP: "Second", Input: "shared"}})
	if err != nil {
		t.Fatal(err)
	}
	err = e.DeployWorkflow(w2)
	if err == nil {
		t.Fatal("second border consumer on one stream deployed without error")
	}
	if !strings.Contains(err.Error(), "First") || !strings.Contains(err.Error(), "Second") {
		t.Errorf("error should name both SPs: %v", err)
	}
	// The rejected deploy left no trace: wf2 is not deployed and
	// ingest still routes deterministically to First.
	if err := e.IngestSync("shared", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(1)}}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := e.SPExecutions("First"); got != 1 {
		t.Errorf("First executed %d times, want 1", got)
	}
	if got := e.SPExecutions("Second"); got != 0 {
		t.Errorf("Second executed %d times, want 0", got)
	}
}

// TestQueueDepthBoundsChecked is the satellite for the out-of-range
// panic: QueueDepth now errors like its siblings.
func TestQueueDepthBoundsChecked(t *testing.T) {
	e := newEngine(t, Options{Partitions: 2})
	if _, err := e.QueueDepth(-1); err == nil {
		t.Error("QueueDepth(-1) should error")
	}
	if _, err := e.QueueDepth(2); err == nil {
		t.Error("QueueDepth(2) should error on a 2-partition engine")
	}
	if d, err := e.QueueDepth(1); err != nil || d != 0 {
		t.Errorf("QueueDepth(1) = %d, %v", d, err)
	}
}

// TestReadRejectsWrites: the read path refuses non-SELECT statements
// with an error matching ee.ErrNotReadOnly.
func TestReadRejectsWrites(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE TABLE t1 (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	v, err := e.ReadView(0)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if _, err := v.Query("INSERT INTO t1 VALUES (1)"); !errors.Is(err, ee.ErrNotReadOnly) {
		t.Errorf("want ErrNotReadOnly, got %v", err)
	}
	if _, err := e.ReadView(7); err == nil {
		t.Error("ReadView(7) on a 1-partition engine should error")
	}
	if _, err := e.Read(-1, "SELECT 1 FROM t1"); err == nil {
		t.Error("Read(-1) should error")
	}
}

// TestReadViewJoinAndIndexProbe: the resolved-catalog path supports
// index probes and joins against images (cloned indexes included).
func TestReadViewJoinAndIndexProbe(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE TABLE users (id BIGINT PRIMARY KEY, name VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if err := e.ExecDDL("CREATE TABLE scores (uid BIGINT, pts BIGINT)"); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if _, err := e.AdHoc(0, "INSERT INTO users VALUES (?, ?)", types.NewInt(i), types.NewText(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := e.AdHoc(0, "INSERT INTO scores VALUES (?, ?)", types.NewInt(i), types.NewInt(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := e.ReadView(0)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	// Mutate both tables after the pin so the view serves images (with
	// cloned indexes), not live tables.
	if _, err := e.AdHoc(0, "UPDATE users SET name = 'changed' WHERE id = 3"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AdHoc(0, "DELETE FROM scores WHERE uid = 3"); err != nil {
		t.Fatal(err)
	}
	res, err := v.Query("SELECT u.name, s.pts FROM users u JOIN scores s ON u.id = s.uid WHERE u.id = ?", types.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "u3" || res.Rows[0][1].Int() != 300 {
		t.Errorf("image join/probe read %v, want [u3 300]", res.Rows)
	}
}

// TestTablesReadsThroughView: the catalog listing reflects one commit
// boundary and works while traffic runs.
func TestTablesReadsThroughView(t *testing.T) {
	e := newEngine(t, Options{})
	deployCounter(t, e)
	for b := int64(1); b <= 3; b++ {
		if err := e.IngestSync("ev", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(1)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	infos, err := e.Tables(0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TableInfo{}
	for _, ti := range infos {
		byName[ti.Name] = ti
	}
	if ti, ok := byName["counter"]; !ok || ti.Rows != 1 || ti.Kind != "TABLE" {
		t.Errorf("counter info %+v", byName["counter"])
	}
	if ti, ok := byName["ev"]; !ok || ti.Rows != 0 || ti.Kind != "STREAM" {
		t.Errorf("ev info %+v (consumed batches should be GC'd)", byName["ev"])
	}
	if _, err := e.Tables(9); err == nil {
		t.Error("Tables(9) should error")
	}
}

// TestRuntimeDDLConcurrentWithReads is the regression for the catalog
// race: ad-hoc CREATE statements executing on the partition goroutine
// while readers resolve and compile against the catalog off-loop. Run
// under -race this flagged a map read/write race before the catalog
// mutex and the per-partition DDL exclusion.
func TestRuntimeDDLConcurrentWithReads(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE TABLE base (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AdHoc(0, "INSERT INTO base VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Distinct statement texts defeat the plan cache, so
				// every read recompiles against the live catalog.
				stmt := fmt.Sprintf("SELECT COUNT(*) FROM base WHERE v < %d", r*1000+i%7+2)
				if _, err := e.Read(0, stmt); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	for i := 0; i < 60; i++ {
		if _, err := e.AdHoc(0, fmt.Sprintf("CREATE TABLE ddl_t%d (v BIGINT)", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.AdHoc(0, fmt.Sprintf("CREATE INDEX ddl_i%d ON base (v)", i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	infos, err := e.Tables(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 61 {
		t.Errorf("catalog lists %d tables, want 61", len(infos))
	}
}
