package pe

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/workflow"
)

// deployBorderSink wires a one-SP workflow consuming streamName into a
// sink table through fn (or a default copy) and returns nothing; the
// sink rows are the commit evidence.
func deployBorderSink(t *testing.T, e *Engine, streamName, sp string, fn ProcFunc) {
	t.Helper()
	if err := e.ExecDDL(fmt.Sprintf("CREATE STREAM %s (v BIGINT)", streamName)); err != nil {
		t.Fatal(err)
	}
	if fn == nil {
		stmt := fmt.Sprintf("INSERT INTO sink SELECT v FROM %s", streamName)
		fn = func(ctx *ProcCtx) error {
			_, err := ctx.Query(stmt)
			return err
		}
	}
	if err := e.RegisterProc(&StoredProc{Name: sp, Func: fn}); err != nil {
		t.Fatal(err)
	}
	w, err := workflow.New("wf-"+sp, []workflow.Node{{SP: sp, Input: streamName}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
}

func sinkCount(t *testing.T, e *Engine, pid int) int {
	t.Helper()
	res, err := e.AdHoc(pid, "SELECT v FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Rows)
}

// TestBorderAbortReleasesAdmission is the satellite-1 regression: a
// border TE that aborts must not leave its batch admitted in the
// exactly-once ledger — the client's retry of the identical batch is
// the re-delivery the contract promises, and it must commit.
func TestBorderAbortReleasesAdmission(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE TABLE sink (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	var failures atomic.Int64
	failures.Store(1)
	deployBorderSink(t, e, "s1", "Flaky", func(ctx *ProcCtx) error {
		if failures.Add(-1) >= 0 {
			return ctx.Abort("transient failure")
		}
		_, err := ctx.Query("INSERT INTO sink SELECT v FROM s1")
		return err
	})

	b := &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(42)}}}
	if err := e.IngestSync("s1", b); err == nil {
		t.Fatal("first delivery should abort")
	}
	// The retry of the very same batch must be admitted — before the
	// fix the ledger still held the aborted batch and rejected it as a
	// duplicate.
	if err := e.IngestSync("s1", b); err != nil {
		t.Fatalf("abort → retry rejected: %v", err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sinkCount(t, e, 0); got != 1 {
		t.Errorf("sink has %d rows, want exactly 1 (abort→retry→commit)", got)
	}
	// A second delivery after the commit is a true duplicate.
	if err := e.IngestSync("s1", b); err == nil {
		t.Error("duplicate of a committed batch accepted")
	}
}

// TestBorderAbortReleasesAdmissionOnRoutedPartition repeats the
// regression with the batch routed off partition 0: the admission
// lives on the routed partition's ledger shard and must be released
// there.
func TestBorderAbortReleasesAdmissionOnRoutedPartition(t *testing.T) {
	e := newEngine(t, Options{
		Partitions: 2,
		PartitionBy: func(string, []types.Row) int {
			return 1
		},
	})
	if err := e.ExecDDL("CREATE TABLE sink (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	var failures atomic.Int64
	failures.Store(1)
	deployBorderSink(t, e, "s1", "Flaky", func(ctx *ProcCtx) error {
		if ctx.Partition() != 1 {
			return fmt.Errorf("batch routed to partition %d, want 1", ctx.Partition())
		}
		if failures.Add(-1) >= 0 {
			return ctx.Abort("transient failure")
		}
		_, err := ctx.Query("INSERT INTO sink SELECT v FROM s1")
		return err
	})
	b := &stream.Batch{ID: 7, Rows: []types.Row{{types.NewInt(1)}}}
	if err := e.IngestSync("s1", b); err == nil {
		t.Fatal("first delivery should abort")
	}
	if err := e.IngestSync("s1", b); err != nil {
		t.Fatalf("abort → retry rejected: %v", err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sinkCount(t, e, 1); got != 1 {
		t.Errorf("sink has %d rows on partition 1, want 1", got)
	}
}

// TestMaxQueueDepthRejectsBorder pins the border backpressure
// semantics with the partition deterministically wedged: rejections
// carry ErrOverloaded with a retry-after hint, count into
// Stats.Overloaded, and — crucially — release the ingested batch's
// exactly-once admission so the identical retry succeeds once the
// queue drains.
func TestMaxQueueDepthRejectsBorder(t *testing.T) {
	e := newEngine(t, Options{MaxQueueDepth: 1})
	if err := e.ExecDDL("CREATE TABLE sink (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	deployBorderSink(t, e, "s1", "Copy", nil)

	// Wedge the partition: one control task blocks execution while a
	// second keeps the queue at the bound.
	gate := make(chan struct{})
	entered := make(chan struct{})
	p := e.parts[0]
	p.sched.PushBack(&task{control: func(*partition) error {
		close(entered)
		<-gate
		return nil
	}})
	<-entered // the blocker is executing, not queued
	p.sched.PushBack(&task{control: func(*partition) error { return nil }})

	b := &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(5)}}}
	err := e.Ingest("s1", b)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("ingest into a full queue: %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("error is %T, want *OverloadedError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Error("overload rejection without retry-after hint")
	}
	if oe.Partition != 0 || oe.Depth < 1 {
		t.Errorf("overload detail = %+v", oe)
	}
	if _, err := e.Call("Copy", nil); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Call into a full queue: %v, want ErrOverloaded", err)
	}
	if st := e.Stats(); st.Overloaded < 2 {
		t.Errorf("Stats.Overloaded = %d, want >= 2", st.Overloaded)
	}

	// Un-wedge; the identical batch must now be admitted (the rejected
	// attempt released its admission) and commit.
	close(gate)
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestSync("s1", b); err != nil {
		t.Fatalf("retry after overload rejected: %v", err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sinkCount(t, e, 0); got != 1 {
		t.Errorf("sink has %d rows, want 1", got)
	}
}

// TestInteriorRoutingDeadlockFreeAtDepthOne is the acceptance
// criterion's worst case: MaxQueueDepth=1 with a workflow whose
// interior batches route to another partition. The border is
// throttled (the injector retries on ErrOverloaded), but interior
// dispatch is exempt from the bound — so the cross-partition hand-off
// can never deadlock, and every admitted batch's workflow completes.
func TestInteriorRoutingDeadlockFreeAtDepthOne(t *testing.T) {
	e := newEngine(t, Options{
		Partitions:    2,
		MaxQueueDepth: 1,
		PartitionBy: func(streamName string, batch []types.Row) int {
			if streamName == "jobs" {
				return 1 // interior stream lives on the other partition
			}
			return 0 // border stream ingests on partition 0
		},
	})
	for _, ddl := range []string{
		"CREATE STREAM intake (v BIGINT)",
		"CREATE STREAM jobs (v BIGINT)",
		"CREATE TABLE sink (v BIGINT)",
	} {
		if err := e.ExecDDL(ddl); err != nil {
			t.Fatal(err)
		}
	}
	err := e.RegisterProc(&StoredProc{Name: "Admit", Func: func(ctx *ProcCtx) error {
		time.Sleep(50 * time.Microsecond) // keep the border queue under pressure
		_, err := ctx.Query("INSERT INTO jobs SELECT v FROM intake")
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
	err = e.RegisterProc(&StoredProc{Name: "Work", Func: func(ctx *ProcCtx) error {
		if ctx.Partition() != 1 {
			return fmt.Errorf("interior TE on partition %d, want 1", ctx.Partition())
		}
		time.Sleep(100 * time.Microsecond) // back the interior queue up past the bound
		_, err := ctx.Query("INSERT INTO sink SELECT v FROM jobs")
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workflow.New("wf", []workflow.Node{
		{SP: "Admit", Input: "intake", Outputs: []string{"jobs"}},
		{SP: "Work", Input: "jobs"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}

	const batches = 200
	var overloads int
	for id := int64(1); id <= batches; id++ {
		b := &stream.Batch{ID: id, Rows: []types.Row{{types.NewInt(id)}}}
		for {
			err := e.Ingest("intake", b)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("batch %d: %v", id, err)
			}
			overloads++
			time.Sleep(time.Duration(overloads%5) * 20 * time.Microsecond)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e.TriggerErr(); err != nil {
		t.Fatal(err)
	}
	if got := sinkCount(t, e, 1); got != batches {
		t.Errorf("sink has %d rows, want %d (interior dispatch lost batches under backpressure)", got, batches)
	}
	if overloads == 0 {
		t.Log("note: border never hit the bound on this host (timing-dependent)")
	} else if st := e.Stats(); st.Overloaded == 0 {
		t.Error("injector saw overloads but Stats.Overloaded is 0")
	}
}

// TestIngestAsyncSubmissionOrderAdmission runs concurrent injectors —
// one per stream, racing each other and a concurrent OLTP caller —
// and asserts that IngestAsync's synchronous admission keeps every
// serially-submitted feed fully admitted: no batch is rejected as a
// duplicate because a later submission from the same caller overtook
// it. Run with -race.
func TestIngestAsyncSubmissionOrderAdmission(t *testing.T) {
	const streams, batches = 4, 200
	e := newEngine(t, Options{
		Partitions: 2,
		PartitionBy: func(streamName string, batch []types.Row) int {
			return int(streamName[len(streamName)-1]-'0') % 2
		},
	})
	if err := e.ExecDDL("CREATE TABLE sink (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProc(&StoredProc{Name: "Noop", Func: func(*ProcCtx) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < streams; s++ {
		deployBorderSink(t, e, fmt.Sprintf("as%d", s), fmt.Sprintf("Copy%d", s), nil)
	}

	stop := make(chan struct{})
	var callers sync.WaitGroup
	callers.Add(1)
	go func() { // OLTP traffic racing the injectors on the same partitions
		defer callers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Call("Noop", nil); err != nil {
				t.Errorf("Noop: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			name := fmt.Sprintf("as%d", s)
			acks := make([]<-chan error, 0, batches)
			for id := int64(1); id <= batches; id++ {
				ack, err := e.IngestAsync(name, &stream.Batch{
					ID:   id,
					Rows: []types.Row{{types.NewInt(id)}},
				})
				if err != nil {
					errs <- fmt.Errorf("%s batch %d: submission rejected: %w", name, id, err)
					return
				}
				acks = append(acks, ack)
			}
			for i, ack := range acks {
				if err := <-ack; err != nil {
					errs <- fmt.Errorf("%s batch %d: %w", name, i+1, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(stop)
	callers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for pid := 0; pid < 2; pid++ {
		total += sinkCount(t, e, pid)
	}
	if total != streams*batches {
		t.Errorf("sink has %d rows, want %d", total, streams*batches)
	}
}
