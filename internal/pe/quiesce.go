package pe

import "sync"

// quiesce counts work outstanding across every partition of an engine:
// each task is counted from the moment it is queued until its execution
// (including post-commit trigger dispatch) returns. Because a
// committing TE enqueues its triggered children before its own count is
// released, the counter can only reach zero when the engine is truly
// idle — no task queued anywhere and none in flight. Drain blocks on
// that condition instead of busy-polling the partitions, so a drain
// costs no CPU while streaming work runs down.
type quiesce struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int64
}

func newQuiesce() *quiesce {
	q := &quiesce{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// add accounts for newly queued tasks.
func (q *quiesce) add(delta int) {
	q.mu.Lock()
	q.n += int64(delta)
	q.mu.Unlock()
}

// done releases one task; the last release wakes every waiter.
func (q *quiesce) done() {
	q.mu.Lock()
	q.n--
	if q.n == 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// wait blocks until the outstanding count is zero.
func (q *quiesce) wait() {
	q.mu.Lock()
	for q.n != 0 {
		q.cond.Wait()
	}
	q.mu.Unlock()
}
