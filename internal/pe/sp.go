package pe

import (
	"fmt"

	"sstore/internal/ee"
	"sstore/internal/types"
)

// ProcFunc is the body of a stored procedure: the host-language half of
// H-Store's "SQL + Java" procedures (§3.1). It issues SQL through the
// context; returning an error aborts and rolls back the TE.
type ProcFunc func(ctx *ProcCtx) error

// ProcAccess declares a stored procedure's table-granularity access
// footprint: every table its body (including any EE trigger its
// statements fire) may read or write. The planner cannot see a Go
// body, so the declaration is the per-SP aggregation of statement
// access sets — and it is enforced: each statement's compiled access
// must be covered by the declaration or the statement errors, aborting
// the TE, so a wrong declaration fails loudly instead of racing.
// The consumed input stream is added automatically.
type ProcAccess struct {
	Reads  []string
	Writes []string
}

// StoredProc is a registered transaction definition (§2): procedures
// are defined once and instantiated many times, by client pull (OLTP)
// or data push (streaming).
type StoredProc struct {
	// Name identifies the procedure; case-sensitive.
	Name string
	// Func is the procedure body.
	Func ProcFunc
	// Access, when non-nil, declares the body's read/write footprint,
	// making the procedure a candidate for intra-partition parallel
	// execution (Options.Workers): TEs whose declared sets do not
	// conflict may run concurrently. Nil means the accesses are
	// unknown and the procedure is serial-only.
	Access *ProcAccess
}

// ProcCtx is a transaction execution's view of the engine: parameter
// access, SQL execution against the local partition, and result
// reporting. It is valid only for the duration of the ProcFunc call.
type ProcCtx struct {
	part    *partition
	ectx    *ee.ExecCtx
	params  types.Row
	batch   []types.Row
	batchID int64
	result  *Result
}

// Params returns the invocation parameters (client-supplied for OLTP,
// engine-supplied for streaming TEs).
func (c *ProcCtx) Params() types.Row { return c.params }

// BatchID returns the atomic batch being processed; 0 for OLTP.
func (c *ProcCtx) BatchID() int64 { return c.batchID }

// BatchRows returns the raw tuples of the input batch for border TEs
// (interior TEs read their input stream table instead).
func (c *ProcCtx) BatchRows() []types.Row { return c.batch }

// Partition returns the executing partition's index.
func (c *ProcCtx) Partition() int { return c.part.id }

// SP returns the executing stored procedure's name.
func (c *ProcCtx) SP() string { return c.ectx.SP }

// Query executes one SQL statement inside the current transaction.
// Each call crosses the PE→EE boundary once when boundary simulation
// is enabled — the cost EE triggers exist to avoid (§3.2.3): statements
// run by EE triggers execute inside the EE without re-crossing.
func (c *ProcCtx) Query(stmt string, params ...types.Value) (*ee.Result, error) {
	p := types.Row(params)
	if b := c.part.eng.boundary; b != nil {
		p = b.Cross(p)
	}
	return c.part.exec.Execute(stmt, p, c.ectx)
}

// SetResult records the result set returned to the caller of
// Engine.Call.
func (c *ProcCtx) SetResult(res *ee.Result) {
	if res == nil {
		return
	}
	c.result = &Result{Columns: res.Columns, Rows: res.Rows}
}

// Abort returns an error that aborts the TE with a descriptive reason;
// sugar for fmt.Errorf with a stable prefix the tests can match.
func (c *ProcCtx) Abort(format string, args ...any) error {
	return fmt.Errorf("abort: "+format, args...)
}
