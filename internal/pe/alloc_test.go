package pe

import (
	"testing"

	"sstore/internal/ee"
)

// The //sstore:allocgate markers below pair with //sstore:nomalloc
// annotations; the allocgate analyzer fails the build if either side
// exists without the other.

//sstore:allocgate deque.pushBack
//sstore:allocgate deque.pushFront
//sstore:allocgate deque.popFront
func TestDequeOpsAllocFree(t *testing.T) {
	var d deque
	// Grow once to steady-state capacity; the gate measures the ring
	// operations, not the amortized growth.
	for i := 0; i < 16; i++ {
		d.pushBack(&task{})
	}
	for d.len() > 0 {
		d.popFront()
	}
	probe := &task{}
	if n := testing.AllocsPerRun(1000, func() {
		d.pushBack(probe)
		d.pushFront(probe)
		d.popFront()
		d.popFront()
	}); n != 0 {
		t.Fatalf("deque ops allocate %v/op at steady state; the scheduler queues every TE through them", n)
	}
}

// TestTaskPoolSteadyState: the task pool and the per-partition free
// lists make the per-TE struct traffic allocation-free once warm
// (ISSUE 8 layer 2). No allocgate marker — sync.Pool internals are not
// //sstore:nomalloc territory — but the behavior is load-bearing: every
// queued TE passes through getTask/putTask.
func TestTaskPoolSteadyState(t *testing.T) {
	putTask(getTask()) // warm the per-P pool cache
	if n := testing.AllocsPerRun(1000, func() {
		putTask(getTask())
	}); n != 0 {
		t.Fatalf("steady-state task get/put allocates %v/op", n)
	}
	p := &partition{}
	tx := p.beginTxn()
	_ = tx.Commit()
	p.recycleTxn(tx)
	pc := p.getProcCtx()
	p.recycleProcCtx(pc)
	ec := p.getECtx()
	p.recycleECtx(ec)
	if n := testing.AllocsPerRun(1000, func() {
		tx := p.beginTxn()
		_ = tx.Commit()
		p.recycleTxn(tx)
		p.recycleProcCtx(p.getProcCtx())
		p.recycleECtx(p.getECtx())
	}); n != 0 {
		t.Fatalf("steady-state txn/ctx recycling allocates %v/op", n)
	}
}

//sstore:allocgate conflictsAny
func TestConflictOpsAllocFree(t *testing.T) {
	accs := []*ee.AccessSet{
		ee.NewAccessSet([]string{"a"}, []string{"b"}),
		ee.NewAccessSet(nil, []string{"c"}),
	}
	clash := ee.NewAccessSet(nil, []string{"b"})
	clear := ee.NewAccessSet([]string{"d"}, []string{"e"})
	if n := testing.AllocsPerRun(1000, func() {
		if !conflictsAny(accs, clash) || conflictsAny(accs, clear) {
			t.Fatal("conflict answers changed")
		}
	}); n != 0 {
		t.Fatalf("conflictsAny allocates %v/op; the dispatcher runs it per queued task", n)
	}
}
