package pe

import (
	"fmt"

	"sstore/internal/ee"
	"sstore/internal/storage"
	"sstore/internal/types"
)

// This file is the snapshot read path (ISSUE 5): read-only statements
// execute against a consistent per-partition read view without ever
// entering the partition scheduler queue. A view pins at a commit
// boundary (waiting out at most the task currently executing — never
// the queue behind it); reads then resolve each table to the live heap
// or a copy-on-write image (see internal/storage/views.go) and run the
// compiled plan off-loop. Maintained window aggregates are captured at
// pin time, so aggregate inspection is O(1) and steals nothing from
// the streaming write path.

// ReadView is a pinned, transaction-consistent snapshot of one
// partition. It is safe for concurrent Query calls; Close releases the
// copy-on-write images it pins. A view never observes rows committed
// after its pin, and never observes any aborted transaction's rows —
// pins land only on commit boundaries.
type ReadView struct {
	part *partition
	view *storage.ReadView
}

// ReadView pins a read view on a partition at the current commit
// boundary. The pin does not enqueue on the partition scheduler: it
// waits (off-queue) for the in-flight task only, so reads stay
// responsive even when thousands of writes are queued.
func (e *Engine) ReadView(pid int) (*ReadView, error) {
	p := e.part(pid)
	if p == nil {
		return nil, e.remoteErr(pid)
	}
	return &ReadView{part: p, view: p.views.Pin()}, nil
}

// Close releases the view. Idempotent.
func (v *ReadView) Close() { v.view.Close() }

// Epoch returns the commit boundary (completed-task count) the view is
// pinned at; later views on the same partition have equal or larger
// epochs.
func (v *ReadView) Epoch() uint64 { return v.view.Epoch() }

// Query executes one read-only statement against the view. Statements
// matching a maintained window aggregate are served from the values
// captured at pin time (O(1) in window size); everything else runs the
// compiled plan over the resolved tables. Non-SELECT statements fail
// with an error matching ee.ErrNotReadOnly.
func (v *ReadView) Query(stmt string, params ...types.Value) (*ee.Result, error) {
	plan, err := v.part.readPlan(stmt)
	if err != nil {
		return nil, err
	}
	if table, refs, ok := plan.Maintained(); ok {
		if t, exists := v.part.cat.Lookup(table); exists &&
			t.Kind() == storage.KindWindow && t.OwnerSP != "" {
			return nil, fmt.Errorf("ee: window %s is private to stored procedure %s (accessed from read view)", table, t.OwnerSP)
		}
		vals := make([]types.Value, len(refs))
		for i, r := range refs {
			val, ok := v.view.MaintainedValue(table, r.Fn, r.Col)
			if !ok {
				return nil, fmt.Errorf("pe: view captured no maintained %s over %s", r.Fn, table)
			}
			vals[i] = val
		}
		return plan.RunMaintained(vals, params)
	}
	// Resolve every referenced table to its boundary state and run the
	// plan over an ephemeral catalog of the resolved tables. Resolution
	// takes table read latches in sorted name order — see TablesSorted —
	// so concurrent multi-table readers cannot deadlock through a
	// writer's pending latch.
	cat := storage.NewCatalog()
	releases := make([]func(), 0, len(plan.Tables()))
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, name := range plan.TablesSorted() {
		t, release, err := v.view.Table(name)
		if err != nil {
			return nil, err
		}
		releases = append(releases, release)
		if err := cat.Create(t); err != nil {
			return nil, err
		}
	}
	return plan.Run(cat, params)
}

// Read pins a view, runs one read-only statement, and releases the
// view: the one-shot form of ReadView + Query + Close. It never enters
// the partition scheduler queue.
func (e *Engine) Read(pid int, stmt string, params ...types.Value) (*ee.Result, error) {
	v, err := e.ReadView(pid)
	if err != nil {
		return nil, err
	}
	defer v.Close()
	return v.Query(stmt, params...)
}

// readPlan compiles (or returns the cached) read-only plan for a
// statement. The cache is per partition and guarded by readMu; plans
// themselves are immutable and shared across concurrent readers.
// Compilation reads catalog schemas, which — like all DDL — are fixed
// before traffic starts.
func (p *partition) readPlan(text string) (*ee.ReadPlan, error) {
	// Lock order is ddlMu → readMu everywhere: the DDL paths hold
	// ddlMu exclusively and then invalidate this cache (readMu), so
	// taking them in the opposite order here would deadlock. Holding
	// ddlMu across the compile also excludes runtime DDL from mutating
	// index lists and aggregate registrations mid-compilation.
	p.ddlMu.RLock()
	defer p.ddlMu.RUnlock()
	p.readMu.Lock()
	defer p.readMu.Unlock()
	if pl, ok := p.readPlans[text]; ok {
		return pl, nil
	}
	pl, err := ee.CompileReadOnly(text, p.cat)
	if err != nil {
		return nil, err
	}
	// The cache is keyed by raw statement text and fed by network
	// clients (OpQuery): bound it so a client inlining literals cannot
	// grow it without limit. Plans are cheap to recompile, so a full
	// cache simply resets.
	if len(p.readPlans) >= maxReadPlans {
		p.readPlans = make(map[string]*ee.ReadPlan)
	}
	p.readPlans[text] = pl
	return pl, nil
}

// maxReadPlans bounds the per-partition read-plan cache.
const maxReadPlans = 4096

// invalidateReadPlans drops the read-plan cache; DDL and maintained-
// aggregate registration call it so stale probe/maintained decisions
// never outlive the catalog change.
func (p *partition) invalidateReadPlans() {
	p.readMu.Lock()
	p.readPlans = make(map[string]*ee.ReadPlan)
	p.readMu.Unlock()
}
