package pe

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sstore/internal/recovery"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
	"sstore/internal/workflow"
)

// schedLog records the execution schedule (SP name + batch) so tests
// can assert the §2.2 ordering constraints.
type schedLog struct {
	mu      sync.Mutex
	entries []schedEntry
}

type schedEntry struct {
	sp    string
	batch int64
}

func (l *schedLog) add(sp string, batch int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, schedEntry{sp: sp, batch: batch})
}

func (l *schedLog) list() []schedEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]schedEntry(nil), l.entries...)
}

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// deployChain builds an N-SP chain workflow: each SP copies its input
// batch to the next stream and counts into a sink table.
func deployChain(t *testing.T, e *Engine, n int, log *schedLog) {
	t.Helper()
	if err := e.ExecDDL("CREATE TABLE sink (sp VARCHAR, batch BIGINT, v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	var nodes []workflow.Node
	for i := 1; i <= n; i++ {
		if err := e.ExecDDL(fmt.Sprintf("CREATE STREAM s%d (v BIGINT)", i)); err != nil {
			t.Fatal(err)
		}
		sp := fmt.Sprintf("SP%d", i)
		in := fmt.Sprintf("s%d", i)
		out := fmt.Sprintf("s%d", i+1)
		node := workflow.Node{SP: sp, Input: in}
		if i < n {
			node.Outputs = []string{out}
		}
		nodes = append(nodes, node)
		last := i == n
		err := e.RegisterProc(&StoredProc{Name: sp, Func: func(ctx *ProcCtx) error {
			if log != nil {
				log.add(sp, ctx.BatchID())
			}
			if _, err := ctx.Query(
				"INSERT INTO sink SELECT ? , ?, v FROM "+in,
				types.NewText(sp), types.NewInt(ctx.BatchID()),
			); err != nil {
				return err
			}
			if !last {
				if _, err := ctx.Query("INSERT INTO " + out + " SELECT v + 1 FROM " + in); err != nil {
					return err
				}
			}
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	w, err := workflow.New("chain", nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
}

func TestOLTPCall(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterProc(&StoredProc{Name: "Put", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO t VALUES (?, ?)", ctx.Params()[0], ctx.Params()[1])
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
	err = e.RegisterProc(&StoredProc{Name: "Get", Func: func(ctx *ProcCtx) error {
		res, err := ctx.Query("SELECT v FROM t WHERE id = ?", ctx.Params()[0])
		if err != nil {
			return err
		}
		ctx.SetResult(res)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("Put", types.Row{types.NewInt(1), types.NewInt(42)}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Call("Get", types.Row{types.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := e.Call("Missing", nil); err == nil {
		t.Error("unknown SP should fail")
	}
}

func TestWorkflowChainExecution(t *testing.T) {
	log := &schedLog{}
	e := newEngine(t, Options{})
	deployChain(t, e, 3, log)
	for b := int64(1); b <= 5; b++ {
		if err := e.Ingest("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b * 100)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	// Every SP processed every batch exactly once.
	res, err := e.AdHoc(0, "SELECT sp, COUNT(*) FROM sink GROUP BY sp ORDER BY sp")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].Int() != 5 {
			t.Errorf("%s ran %d times, want 5", r[0].Text(), r[1].Int())
		}
	}
	// Values flowed: SP3 saw v+2.
	res, _ = e.AdHoc(0, "SELECT v FROM sink WHERE sp = 'SP3' AND batch = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 202 {
		t.Errorf("SP3 batch 2 = %v", res.Rows)
	}
	// All streams drained by GC.
	for i := 1; i <= 3; i++ {
		res, _ = e.AdHoc(0, fmt.Sprintf("SELECT COUNT(*) FROM s%d", i))
		if res.Rows[0][0].Int() != 0 {
			t.Errorf("s%d not garbage collected", i)
		}
	}
	assertCorrectSchedule(t, log.list(), []string{"SP1", "SP2", "SP3"})
}

// assertCorrectSchedule checks the two §2.2 constraints over a recorded
// schedule: workflow order within each batch round, and stream order
// (ascending batches) per SP.
func assertCorrectSchedule(t *testing.T, entries []schedEntry, topo []string) {
	t.Helper()
	pos := make(map[string]int, len(topo))
	for i, sp := range topo {
		pos[sp] = i
	}
	lastBatch := make(map[string]int64)
	lastStep := make(map[int64]int)
	for _, en := range entries {
		if en.batch <= lastBatch[en.sp] {
			t.Fatalf("stream order violated: %s saw batch %d after %d", en.sp, en.batch, lastBatch[en.sp])
		}
		lastBatch[en.sp] = en.batch
		step, ok := pos[en.sp]
		if !ok {
			continue
		}
		if prev, seen := lastStep[en.batch]; seen && step != prev+1 {
			t.Fatalf("workflow order violated for batch %d: %s at step %d after step %d", en.batch, en.sp, step, prev)
		} else if !seen && step != 0 {
			t.Fatalf("batch %d started at %s (step %d), not the border SP", en.batch, en.sp, step)
		}
		lastStep[en.batch] = step
	}
}

func TestWorkflowNoInterleavingWithinRound(t *testing.T) {
	// Mix OLTP calls with streaming rounds; TEs of one round must stay
	// contiguous (the streaming scheduler's fast path, §3.2.4).
	log := &schedLog{}
	e := newEngine(t, Options{})
	deployChain(t, e, 3, log)
	if err := e.RegisterProc(&StoredProc{Name: "Noop", Func: func(ctx *ProcCtx) error {
		log.add("OLTP", 0)
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for b := int64(1); b <= 50; b++ {
			if err := e.IngestSync("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b)}}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := e.Call("Noop", nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	// Within the recorded schedule, once a border TE for batch b runs,
	// the next two workflow entries must be SP2, SP3 for the same b.
	entries := log.list()
	for i, en := range entries {
		if en.sp != "SP1" {
			continue
		}
		var rest []schedEntry
		for _, e2 := range entries[i+1:] {
			if e2.sp == "OLTP" && len(rest) < 2 {
				t.Fatalf("OLTP interleaved into round for batch %d", en.batch)
			}
			if e2.sp != "OLTP" {
				rest = append(rest, e2)
				if len(rest) == 2 {
					break
				}
			}
		}
		if len(rest) == 2 {
			if rest[0].sp != "SP2" || rest[0].batch != en.batch || rest[1].sp != "SP3" || rest[1].batch != en.batch {
				t.Fatalf("round for batch %d broken: %v", en.batch, rest)
			}
		}
	}
}

func TestAbortRollsBackAndStopsWorkflow(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE STREAM s1 (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.ExecDDL("CREATE STREAM s2 (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.ExecDDL("CREATE TABLE sink (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	ran2 := false
	e.RegisterProc(&StoredProc{Name: "SP1", Func: func(ctx *ProcCtx) error {
		if _, err := ctx.Query("INSERT INTO s2 SELECT v FROM s1"); err != nil {
			return err
		}
		rows, _ := ctx.Query("SELECT v FROM s1")
		if len(rows.Rows) > 0 && rows.Rows[0][0].Int() < 0 {
			return ctx.Abort("negative value %d", rows.Rows[0][0].Int())
		}
		return nil
	}})
	e.RegisterProc(&StoredProc{Name: "SP2", Func: func(ctx *ProcCtx) error {
		ran2 = true
		_, err := ctx.Query("INSERT INTO sink SELECT v FROM s2")
		return err
	}})
	w, _ := workflow.New("wf", []workflow.Node{
		{SP: "SP1", Input: "s1", Outputs: []string{"s2"}},
		{SP: "SP2", Input: "s2"},
	})
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	// A bad batch aborts the border TE: nothing survives, downstream
	// never runs.
	err := e.IngestSync("s1", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(-5)}}})
	if err == nil || !strings.Contains(err.Error(), "abort") {
		t.Fatalf("expected abort, got %v", err)
	}
	e.Drain()
	if ran2 {
		t.Error("downstream SP ran after upstream abort")
	}
	for _, q := range []string{"SELECT COUNT(*) FROM s1", "SELECT COUNT(*) FROM s2", "SELECT COUNT(*) FROM sink"} {
		res, _ := e.AdHoc(0, q)
		if res.Rows[0][0].Int() != 0 {
			t.Errorf("%s = %v, want 0", q, res.Rows[0][0])
		}
	}
	// A good batch after the abort flows through.
	if err := e.IngestSync("s1", &stream.Batch{ID: 2, Rows: []types.Row{{types.NewInt(5)}}}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	res, _ := e.AdHoc(0, "SELECT COUNT(*) FROM sink")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("sink = %v", res.Rows[0][0])
	}
}

func TestIngestDedup(t *testing.T) {
	e := newEngine(t, Options{})
	deployChain(t, e, 1, nil)
	if err := e.Ingest("s1", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(1)}}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("s1", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(1)}}}); err == nil {
		t.Error("duplicate batch should be rejected")
	}
	if err := e.Ingest("nosuch", &stream.Batch{ID: 1}); err == nil {
		t.Error("unknown stream should be rejected")
	}
}

func TestNestedTransactionAtomicity(t *testing.T) {
	e := newEngine(t, Options{})
	e.ExecDDL("CREATE TABLE t (id BIGINT, v BIGINT)")
	e.RegisterProc(&StoredProc{Name: "Add", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO t VALUES (?, ?)", ctx.Params()[0], ctx.Params()[1])
		return err
	}})
	e.RegisterProc(&StoredProc{Name: "FailIfOdd", Func: func(ctx *ProcCtx) error {
		if ctx.Params()[0].Int()%2 == 1 {
			return ctx.Abort("odd")
		}
		return nil
	}})
	// Failing nested txn: first child's insert must roll back too.
	_, err := e.CallNested([]NestedCall{
		{SP: "Add", Params: types.Row{types.NewInt(1), types.NewInt(10)}},
		{SP: "FailIfOdd", Params: types.Row{types.NewInt(1)}},
	})
	if err == nil {
		t.Fatal("nested txn should abort")
	}
	res, _ := e.AdHoc(0, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("rows after nested abort = %v", res.Rows[0][0])
	}
	// Succeeding nested txn commits both children.
	_, err = e.CallNested([]NestedCall{
		{SP: "Add", Params: types.Row{types.NewInt(2), types.NewInt(20)}},
		{SP: "FailIfOdd", Params: types.Row{types.NewInt(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ = e.AdHoc(0, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("rows after nested commit = %v", res.Rows[0][0])
	}
}

func TestWindowOwnershipThroughEngine(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDLOwned("Owner", "CREATE WINDOW w (v BIGINT) SIZE 2 SLIDE 1"); err != nil {
		t.Fatal(err)
	}
	e.RegisterProc(&StoredProc{Name: "Owner", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO w VALUES (1)")
		return err
	}})
	e.RegisterProc(&StoredProc{Name: "Intruder", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("SELECT COUNT(*) FROM w")
		return err
	}})
	if _, err := e.Call("Owner", nil); err != nil {
		t.Errorf("owner blocked: %v", err)
	}
	if _, err := e.Call("Intruder", nil); err == nil {
		t.Error("foreign SP should be blocked from the window")
	}
}

func TestMultiPartitionRouting(t *testing.T) {
	e := newEngine(t, Options{
		Partitions: 2,
		PartitionBy: func(_ string, batch []types.Row) int {
			return int(batch[0][0].Int()) % 2
		},
	})
	deployChain(t, e, 2, nil)
	for b := int64(1); b <= 10; b++ {
		if err := e.Ingest("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	n0, _ := e.AdHoc(0, "SELECT COUNT(*) FROM sink")
	n1, _ := e.AdHoc(1, "SELECT COUNT(*) FROM sink")
	// 10 batches × 2 SPs = 20 sink rows split across partitions.
	if n0.Rows[0][0].Int()+n1.Rows[0][0].Int() != 20 {
		t.Errorf("sink rows = %v + %v, want 20", n0.Rows[0][0], n1.Rows[0][0])
	}
	if n0.Rows[0][0].Int() == 0 || n1.Rows[0][0].Int() == 0 {
		t.Errorf("both partitions should have work: %v / %v", n0.Rows[0][0], n1.Rows[0][0])
	}
}

func TestEngineStats(t *testing.T) {
	e := newEngine(t, Options{ClientRTT: 1, EEDispatch: 1})
	e.ExecDDL("CREATE TABLE t (v BIGINT)")
	e.RegisterProc(&StoredProc{Name: "P", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO t VALUES (1)")
		return err
	}})
	for i := 0; i < 3; i++ {
		if _, err := e.Call("P", nil); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Executed != 3 {
		t.Errorf("executed = %d", s.Executed)
	}
	if s.ClientTrips != 3 {
		t.Errorf("trips = %d", s.ClientTrips)
	}
	if s.EECrossings != 3 {
		t.Errorf("crossings = %d", s.EECrossings)
	}
}

func TestRecoveryStrongRestoresExactState(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     dir + "/cmd.log",
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	build := func() *Engine {
		e := newEngine(t, opts)
		deployChain(t, e, 3, nil)
		return e
	}
	e1 := build()
	for b := int64(1); b <= 4; b++ {
		if err := e1.IngestSync("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b * 10)}}}); err != nil {
			t.Fatal(err)
		}
	}
	e1.Drain()
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for b := int64(5); b <= 8; b++ {
		if err := e1.IngestSync("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b * 10)}}}); err != nil {
			t.Fatal(err)
		}
	}
	e1.Drain()
	want, _ := e1.AdHoc(0, "SELECT sp, batch, v FROM sink ORDER BY batch, sp")
	e1.Close() // "crash": log is durable, memory is lost

	e2 := build()
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := e2.AdHoc(0, "SELECT sp, batch, v FROM sink ORDER BY batch, sp")
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !got.Rows[i].Equal(want.Rows[i]) {
			t.Fatalf("row %d = %v, want %v", i, got.Rows[i], want.Rows[i])
		}
	}
	// The engine keeps working and the exactly-once ledger is ahead:
	// batch 8 is a duplicate, batch 9 is new.
	if err := e2.Ingest("s1", &stream.Batch{ID: 8, Rows: []types.Row{{types.NewInt(0)}}}); err == nil {
		t.Error("replayed batch should be deduplicated after recovery")
	}
	if err := e2.IngestSync("s1", &stream.Batch{ID: 9, Rows: []types.Row{{types.NewInt(90)}}}); err != nil {
		t.Fatal(err)
	}
	e2.Drain()
	res, _ := e2.AdHoc(0, "SELECT COUNT(*) FROM sink")
	if res.Rows[0][0].Int() != int64(len(want.Rows))+3 {
		t.Errorf("post-recovery sink = %v", res.Rows[0][0])
	}
}

func TestRecoveryWeakProducesLegalState(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Recovery:    recovery.ModeWeak,
		LogPath:     dir + "/cmd.log",
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	build := func() *Engine {
		e := newEngine(t, opts)
		deployChain(t, e, 3, nil)
		return e
	}
	e1 := build()
	for b := int64(1); b <= 6; b++ {
		if err := e1.IngestSync("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b * 10)}}}); err != nil {
			t.Fatal(err)
		}
	}
	e1.Drain()
	want, _ := e1.AdHoc(0, "SELECT sp, batch, v FROM sink ORDER BY batch, sp")
	// Weak mode logs only border TEs.
	appends, _ := e1.Stats().LogAppends, 0
	if appends != 6 {
		t.Errorf("weak mode logged %d records, want 6 border TEs", appends)
	}
	e1.Close()

	e2 := build()
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := e2.AdHoc(0, "SELECT sp, batch, v FROM sink ORDER BY batch, sp")
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !got.Rows[i].Equal(want.Rows[i]) {
			t.Fatalf("row %d = %v, want %v", i, got.Rows[i], want.Rows[i])
		}
	}
}

func TestRecoveryWeakReFiresSnapshotStreams(t *testing.T) {
	// Arrange a snapshot holding a non-empty interior stream: the
	// border TE committed but its downstream had not when the
	// checkpoint was cut. Weak recovery must re-derive the interior
	// work by firing PE triggers before log replay (§3.2.5).
	dir := t.TempDir()
	opts := Options{
		Recovery:    recovery.ModeWeak,
		LogPath:     dir + "/cmd.log",
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	build := func() *Engine {
		e := newEngine(t, opts)
		deployChain(t, e, 2, nil)
		return e
	}
	e1 := build()
	// Suppress PE triggers so the interior TE never runs, leaving the
	// batch parked in s2 — the snapshot then captures exactly the
	// "interior uncommitted" state.
	e1.SetPETriggersEnabled(false)
	if err := e1.IngestSync("s1", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(10)}}}); err != nil {
		t.Fatal(err)
	}
	e1.Drain()
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	e2 := build()
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	// SP2 must have processed batch 1 from the recovered s2.
	res, _ := e2.AdHoc(0, "SELECT COUNT(*) FROM sink WHERE sp = 'SP2'")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("interior TE not re-derived: %v", res.Rows[0][0])
	}
	res, _ = e2.AdHoc(0, "SELECT COUNT(*) FROM s2")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("s2 not drained: %v", res.Rows[0][0])
	}
}

func TestRecoveryModesLogVolume(t *testing.T) {
	// Weak logging writes one record per workflow; strong writes one
	// per TE — the Figure 9a mechanism.
	for _, tc := range []struct {
		mode recovery.Mode
		want uint64
	}{
		{recovery.ModeStrong, 30}, // 10 batches × 3 TEs
		{recovery.ModeWeak, 10},   // 10 border TEs
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			e := newEngine(t, Options{
				Recovery:    tc.mode,
				LogPath:     dir + "/cmd.log",
				LogPolicy:   wal.SyncEachCommit,
				SnapshotDir: dir,
			})
			deployChain(t, e, 3, nil)
			for b := int64(1); b <= 10; b++ {
				if err := e.IngestSync("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b)}}}); err != nil {
					t.Fatal(err)
				}
			}
			e.Drain()
			if got := e.Stats().LogAppends; got != tc.want {
				t.Errorf("log appends = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestRecoveryStrongAcrossLogSegments(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Recovery:        recovery.ModeStrong,
		LogPath:         dir + "/cmd.log",
		LogPolicy:       wal.SyncEachCommit,
		LogSegmentBytes: 256, // rotate every few records
		SnapshotDir:     dir,
	}
	build := func() *Engine {
		e := newEngine(t, opts)
		deployChain(t, e, 3, nil)
		return e
	}
	e1 := build()
	for b := int64(1); b <= 12; b++ {
		if err := e1.IngestSync("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b * 10)}}}); err != nil {
			t.Fatal(err)
		}
	}
	e1.Drain()
	want, _ := e1.AdHoc(0, "SELECT sp, batch, v FROM sink ORDER BY batch, sp")
	e1.Close()

	// The tiny threshold must actually have rotated the shard logs.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rotated := 0
	for _, ent := range ents {
		// shard segments are cmd.log.p<N>.s<k>
		if i := strings.LastIndex(ent.Name(), ".s"); i >= 0 {
			if _, err := strconv.Atoi(ent.Name()[i+2:]); err == nil {
				rotated++
			}
		}
	}
	if rotated == 0 {
		t.Fatalf("no rotated segments in %v", dir)
	}

	e2 := build()
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := e2.AdHoc(0, "SELECT sp, batch, v FROM sink ORDER BY batch, sp")
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !got.Rows[i].Equal(want.Rows[i]) {
			t.Fatalf("row %d = %v, want %v", i, got.Rows[i], want.Rows[i])
		}
	}
	// Checkpointing truncates the replayed log by dropping sealed
	// segments; the engine must keep working after.
	if err := e2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e2.IngestSync("s1", &stream.Batch{ID: 13, Rows: []types.Row{{types.NewInt(130)}}}); err != nil {
		t.Fatal(err)
	}
	e2.Drain()
	res, _ := e2.AdHoc(0, "SELECT COUNT(*) FROM sink")
	if res.Rows[0][0].Int() != int64(len(want.Rows))+3 {
		t.Errorf("post-checkpoint sink = %v", res.Rows[0][0])
	}
	e2.Close()
}
