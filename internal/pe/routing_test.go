package pe

import (
	"strings"
	"testing"

	"sstore/internal/stream"
	"sstore/internal/txn"
	"sstore/internal/types"
	"sstore/internal/workflow"
)

// deployRoutedPipeline wires the two-step workflow used by the routing
// tests: a border SP on the ingest partition copies each batch from
// "jobs_in" to "jobs", and an interior SP — routed by the batch's key —
// records (partition, key, value) into "results".
func deployRoutedPipeline(t *testing.T, e *Engine) {
	t.Helper()
	for _, ddl := range []string{
		"CREATE STREAM jobs_in (k BIGINT, v BIGINT)",
		"CREATE STREAM jobs (k BIGINT, v BIGINT)",
		"CREATE TABLE results (part BIGINT, k BIGINT, v BIGINT)",
	} {
		if err := e.ExecDDL(ddl); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RegisterProc(&StoredProc{Name: "Split", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO jobs SELECT k, v FROM jobs_in")
		return err
	}}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProc(&StoredProc{Name: "Work", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO results SELECT ?, k, v FROM jobs", types.NewInt(int64(ctx.Partition())))
		return err
	}}); err != nil {
		t.Fatal(err)
	}
	w, err := workflow.New("routed", []workflow.Node{
		{SP: "Split", Input: "jobs_in", Outputs: []string{"jobs"}},
		{SP: "Work", Input: "jobs"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
}

// routeByKey sends border batches to partition 0 and interior "jobs"
// batches to the partition owning the batch's key.
func routeByKey(parts int) func(string, []types.Row) int {
	return func(streamName string, batch []types.Row) int {
		if streamName != "jobs" || len(batch) == 0 {
			return 0
		}
		return int(batch[0][0].Int()) % parts
	}
}

// TestCrossPartitionInteriorRouting: with 4 partitions and a
// PartitionBy that spreads interior batches, a workflow fans out past
// its border partition while preserving batch order per (stream,
// partition) and garbage-collecting every consumed batch.
func TestCrossPartitionInteriorRouting(t *testing.T) {
	const parts = 4
	const batches = 32
	e := newEngine(t, Options{Partitions: parts, PartitionBy: routeByKey(parts)})
	deployRoutedPipeline(t, e)

	for i := int64(0); i < batches; i++ {
		b := &stream.Batch{ID: i + 1, Rows: []types.Row{{types.NewInt(i % parts), types.NewInt(i)}}}
		if err := e.Ingest("jobs_in", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e.TriggerErr(); err != nil {
		t.Fatal(err)
	}

	total := 0
	for p := 0; p < parts; p++ {
		res, err := e.AdHoc(p, "SELECT part, k, v FROM results")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("partition %d did no interior work", p)
		}
		prev := int64(-1)
		for _, r := range res.Rows {
			if r[0].Int() != int64(p) {
				t.Errorf("partition %d recorded row for partition %d", p, r[0].Int())
			}
			if int(r[1].Int())%parts != p {
				t.Errorf("key %d routed to partition %d, want %d", r[1].Int(), p, r[1].Int()%int64(parts))
			}
			if r[2].Int() <= prev {
				t.Errorf("partition %d processed batches out of order: v=%d after v=%d", p, r[2].Int(), prev)
			}
			prev = r[2].Int()
		}
		total += len(res.Rows)
	}
	if total != batches {
		t.Errorf("results rows = %d, want %d", total, batches)
	}

	// Every consumed batch is GC'd: no stream rows survive anywhere.
	for p := 0; p < parts; p++ {
		infos, err := e.Tables(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, ti := range infos {
			if ti.Kind == "STREAM" && ti.Rows != 0 {
				t.Errorf("partition %d: stream %s holds %d rows after Drain", p, ti.Name, ti.Rows)
			}
		}
	}
}

// TestCrossPartitionFanOutGC: a relocated batch with two consumers is
// visible to both on the destination partition and garbage-collected
// only after the second commits — the GC refcount follows the batch.
func TestCrossPartitionFanOutGC(t *testing.T) {
	e := newEngine(t, Options{Partitions: 2, PartitionBy: func(streamName string, _ []types.Row) int {
		if streamName == "s_mid" {
			return 1 // every interior batch relocates off the border partition
		}
		return 0
	}})
	for _, ddl := range []string{
		"CREATE STREAM s_in (v BIGINT)",
		"CREATE STREAM s_mid (v BIGINT)",
		"CREATE TABLE sink_a (part BIGINT, v BIGINT)",
		"CREATE TABLE sink_b (part BIGINT, v BIGINT)",
	} {
		if err := e.ExecDDL(ddl); err != nil {
			t.Fatal(err)
		}
	}
	e.RegisterProc(&StoredProc{Name: "Fan", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO s_mid SELECT v FROM s_in")
		return err
	}})
	mkConsumer := func(name, sink string) *StoredProc {
		return &StoredProc{Name: name, Func: func(ctx *ProcCtx) error {
			_, err := ctx.Query("INSERT INTO "+sink+" SELECT ?, v FROM s_mid", types.NewInt(int64(ctx.Partition())))
			return err
		}}
	}
	e.RegisterProc(mkConsumer("ConsumerA", "sink_a"))
	e.RegisterProc(mkConsumer("ConsumerB", "sink_b"))
	w, err := workflow.New("fan", []workflow.Node{
		{SP: "Fan", Input: "s_in", Outputs: []string{"s_mid"}},
		{SP: "ConsumerA", Input: "s_mid"},
		{SP: "ConsumerB", Input: "s_mid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	const batches = 5
	for b := int64(1); b <= batches; b++ {
		if err := e.Ingest("s_in", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e.TriggerErr(); err != nil {
		t.Fatal(err)
	}
	for _, sink := range []string{"sink_a", "sink_b"} {
		res, err := e.AdHoc(1, "SELECT part FROM "+sink)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != batches {
			t.Errorf("%s rows = %d, want %d", sink, len(res.Rows), batches)
		}
		for _, r := range res.Rows {
			if r[0].Int() != 1 {
				t.Errorf("%s consumer ran on partition %d, want 1", sink, r[0].Int())
			}
		}
	}
	for p := 0; p < 2; p++ {
		res, err := e.AdHoc(p, "SELECT COUNT(*) FROM s_mid")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 0 {
			t.Errorf("partition %d: s_mid holds %v rows after Drain", p, res.Rows[0][0])
		}
	}
}

// TestCrossPartitionAbortRetainsBatch: when the consumer of a
// relocated batch aborts, its rollback must not lose the batch — the
// rows exist only in the carrying task at that point. The failed batch
// stays in the destination's stream table, exactly like the
// local-dispatch abort semantics.
func TestCrossPartitionAbortRetainsBatch(t *testing.T) {
	e := newEngine(t, Options{Partitions: 2, PartitionBy: func(streamName string, _ []types.Row) int {
		if streamName == "s_mid" {
			return 1
		}
		return 0
	}})
	for _, ddl := range []string{
		"CREATE STREAM s_in (v BIGINT)",
		"CREATE STREAM s_mid (v BIGINT)",
		"CREATE TABLE sink (v BIGINT)",
	} {
		if err := e.ExecDDL(ddl); err != nil {
			t.Fatal(err)
		}
	}
	e.RegisterProc(&StoredProc{Name: "Fwd", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO s_mid SELECT v FROM s_in")
		return err
	}})
	e.RegisterProc(&StoredProc{Name: "Flaky", Func: func(ctx *ProcCtx) error {
		if _, err := ctx.Query("INSERT INTO sink SELECT v FROM s_mid"); err != nil {
			return err
		}
		if ctx.BatchID() == 2 {
			return ctx.Abort("batch 2 is poison")
		}
		return nil
	}})
	w, err := workflow.New("flaky", []workflow.Node{
		{SP: "Fwd", Input: "s_in", Outputs: []string{"s_mid"}},
		{SP: "Flaky", Input: "s_mid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	for b := int64(1); b <= 3; b++ {
		if err := e.Ingest("s_in", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e.TriggerErr(); err == nil {
		t.Fatal("poison batch's abort should surface via TriggerErr")
	}
	// Batch 2's own TE rolled back (its sink insert was undone), but
	// the batch is retained in the destination's stream table rather
	// than lost — so batch 3's consumer, which scans its whole input
	// stream like every SP here, sees rows 2 and 3. This matches the
	// local-dispatch retention semantics; before the retention fix the
	// sink read [1 3] and the batch existed nowhere.
	res, err := e.AdHoc(1, "SELECT v FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 || res.Rows[2][0].Int() != 3 {
		t.Errorf("sink rows = %v, want [1 2 3]", res.Rows)
	}
	mid, err := e.AdHoc(1, "SELECT v FROM s_mid")
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Rows) != 1 || mid.Rows[0][0].Int() != 2 {
		t.Errorf("s_mid rows = %v, want the retained poison batch [2]", mid.Rows)
	}
}

// TestIngestReleaseOnFailedEnqueue: an admission whose enqueue fails
// must be released so the client can retry; the seed burned the batch
// ID forever.
func TestIngestReleaseOnFailedEnqueue(t *testing.T) {
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ExecDDL("CREATE STREAM s1 (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	e.RegisterProc(&StoredProc{Name: "SP1", Func: func(ctx *ProcCtx) error { return nil }})
	w, err := workflow.New("w", []workflow.Node{{SP: "SP1", Input: "s1"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("s1", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(1)}}}); err == nil {
		t.Fatal("ingest after Close should fail")
	} else if strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("ingest after Close failed as duplicate: %v", err)
	}
	if hi := e.dedup.High(0, "s1"); hi != 0 {
		t.Errorf("failed enqueue left admission in the ledger: high = %d, want 0", hi)
	}
	// A second attempt must fail for the right reason (engine closed),
	// not as a duplicate.
	if err := e.Ingest("s1", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(1)}}}); err == nil || strings.Contains(err.Error(), "duplicate") {
		t.Errorf("retry after failed enqueue rejected as duplicate: %v", err)
	}
}

// TestNestedCommitErrorPropagates: a child whose commit fails must
// surface the error to the caller and must not count as executed.
func TestNestedCommitErrorPropagates(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDL("CREATE TABLE t (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	e.RegisterProc(&StoredProc{Name: "Good", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO t VALUES (1)")
		return err
	}})
	e.RegisterProc(&StoredProc{Name: "Sabotaged", Func: func(ctx *ProcCtx) error {
		// Commit the child's transaction from inside the body, so the
		// engine's own commit of this child fails afterwards.
		return ctx.ectx.Txn.(*txn.Txn).Commit()
	}})
	_, err := e.CallNested([]NestedCall{{SP: "Good"}, {SP: "Sabotaged"}})
	if err == nil {
		t.Fatal("commit failure must propagate to the caller")
	}
	if !strings.Contains(err.Error(), "commit") {
		t.Errorf("error should name the commit failure, got: %v", err)
	}
	if n := e.SPExecutions("Sabotaged"); n != 0 {
		t.Errorf("failed child counted as executed %d times", n)
	}
	if n := e.SPExecutions("Good"); n != 1 {
		t.Errorf("committed child executions = %d, want 1", n)
	}
}
