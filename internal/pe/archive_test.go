package pe

// Engine-level lifecycle tests for archive tables: DDL through the
// catalog's lazy archive provider, checkpoint generations carrying
// page-file copies, and recovery restoring the pages before WAL redo
// replays the post-checkpoint tail over them.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sstore/internal/recovery"
	"sstore/internal/types"
	"sstore/internal/wal"
)

// archiveOpts builds a strong-recovery engine config whose archive
// page files live under the test dir.
func archiveOpts(dir string) Options {
	return Options{
		Recovery:            recovery.ModeStrong,
		LogPath:             dir + "/cmd.log",
		LogPolicy:           wal.SyncEachCommit,
		SnapshotDir:         dir,
		ArchiveDir:          dir + "/arch",
		ArchiveMemoryBudget: 1 << 20,
	}
}

// buildArchiveApp re-issues the app's boot state: one archive table
// and an SP that appends a row to it.
func buildArchiveApp(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := newEngine(t, opts)
	if err := e.ExecDDL("CREATE ARCHIVE TABLE hist (id BIGINT PRIMARY KEY, v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterProc(&StoredProc{Name: "Put", Func: func(pc *ProcCtx) error {
		_, err := pc.Query("INSERT INTO hist VALUES (?, ?)", pc.Params()...)
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestArchiveTableCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := archiveOpts(dir)

	e1 := buildArchiveApp(t, opts)
	for i := int64(0); i < 50; i++ {
		if _, err := e1.Call("Put", types.Row{types.NewInt(i), types.NewInt(i * 7)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The generation must contain the archive page-file copy alongside
	// the row snapshot.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var pageGen string
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), "snapshot.p0.hist.pages.g") {
			pageGen = ent.Name()
		}
	}
	if pageGen == "" {
		t.Fatalf("no archive page generation in %v", ents)
	}
	// Post-checkpoint tail: recovery must replay these from the WAL on
	// top of the restored pages.
	for i := int64(50); i < 80; i++ {
		if _, err := e1.Call("Put", types.Row{types.NewInt(i), types.NewInt(i * 7)}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := e1.AdHoc(0, "SELECT id, v FROM hist ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 80 {
		t.Fatalf("pre-crash rows = %d", len(want.Rows))
	}
	e1.Close() // crash: log and checkpoint generation are durable

	e2 := buildArchiveApp(t, opts)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := e2.AdHoc(0, "SELECT id, v FROM hist ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("recovered rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !got.Rows[i].Equal(want.Rows[i]) {
			t.Fatalf("row %d = %v, want %v", i, got.Rows[i], want.Rows[i])
		}
	}
	// The recovered table keeps working: the primary key survived the
	// restore (a duplicate rejects) and new rows land.
	if _, err := e2.Call("Put", types.Row{types.NewInt(40), types.NewInt(0)}); err == nil {
		t.Error("duplicate id accepted after recovery")
	}
	if _, err := e2.Call("Put", types.Row{types.NewInt(80), types.NewInt(560)}); err != nil {
		t.Fatal(err)
	}
	res, err := e2.AdHoc(0, "SELECT COUNT(*) FROM hist")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 81 {
		t.Errorf("post-recovery count = %v", res.Rows[0][0])
	}
}

func TestArchiveTempDirRemovedOnClose(t *testing.T) {
	// No ArchiveDir: the engine auto-creates a temp dir on the first
	// CREATE ARCHIVE TABLE and removes it on Close.
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ExecDDL("CREATE ARCHIVE TABLE a (id BIGINT)"); err != nil {
		e.Close()
		t.Fatal(err)
	}
	tmp := e.archDir
	if tmp == "" || !e.archTmp {
		t.Fatalf("auto temp dir not created (dir=%q tmp=%v)", tmp, e.archTmp)
	}
	if _, err := os.Stat(filepath.Join(tmp, "archive.p0.a.pages")); err != nil {
		t.Fatalf("page file missing: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("temp archive dir survived Close: %v", err)
	}
}
