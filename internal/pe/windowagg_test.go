package pe

import (
	"path/filepath"
	"testing"

	"sstore/internal/recovery"
	"sstore/internal/types"
	"sstore/internal/wal"
)

// buildAggEngine creates an engine with a maintained-aggregate window
// fed by a stored procedure, re-issuing registration the way an
// application's boot sequence would before recovery.
func buildAggEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := newEngine(t, opts)
	if err := e.ExecDDL("CREATE WINDOW aw (v BIGINT) SIZE 4 SLIDE 2"); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProc(&StoredProc{Name: "AggFeed", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO aw VALUES (?)", ctx.Params()[0])
		return err
	}}); err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"count", "sum", "avg", "min", "max"} {
		if err := e.MaintainWindowAggregate("aw", fn, "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.MaintainWindowAggregate("aw", "count", "*"); err != nil {
		t.Fatal(err)
	}
	return e
}

const aggQuery = "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM aw"

// TestMaintainedAggregatesSurviveCheckpointRecovery: checkpoint a
// window with maintained aggregates, recover in a fresh engine, and
// the stored values — and all subsequent sliding — match exactly.
func TestMaintainedAggregatesSurviveCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     filepath.Join(dir, "cmd.log"),
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	e1 := buildAggEngine(t, opts)
	for _, v := range []int64{5, 1, 9, 2, 7, 3, 8} {
		if _, err := e1.Call("AggFeed", types.Row{types.NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := e1.AdHoc(0, aggQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	e2 := buildAggEngine(t, opts)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := e2.AdHoc(0, aggQuery)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Rows[0] {
		if !got.Rows[0][i].Equal(want.Rows[0][i]) {
			t.Errorf("col %d (%s): recovered %v, want %v", i, want.Columns[i], got.Rows[0][i], want.Rows[0][i])
		}
	}
	// The recovered window keeps sliding with correct aggregates.
	for _, v := range []int64{11, 4} {
		if _, err := e2.Call("AggFeed", types.Row{types.NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	got, _ = e2.AdHoc(0, aggQuery)
	ref, _ := e2.AdHoc(0, "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM aw WHERE v > -999999")
	for i := range ref.Rows[0] {
		if !got.Rows[0][i].Equal(ref.Rows[0][i]) {
			t.Errorf("post-recovery col %d: stored %v, scan %v", i, got.Rows[0][i], ref.Rows[0][i])
		}
	}
}

// TestMaintainedAggregateTriggerTE: an EE trigger reading a maintained
// aggregate fires on every slide inside the inserting TE.
func TestMaintainedAggregateTriggerTE(t *testing.T) {
	e := buildAggEngine(t, Options{})
	if err := e.ExecDDL("CREATE TABLE agg_log (total BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddEETrigger("aw", "INSERT INTO agg_log SELECT SUM(v) FROM aw"); err != nil {
		t.Fatal(err)
	}
	for v := int64(1); v <= 8; v++ {
		if _, err := e.Call("AggFeed", types.Row{types.NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	// Size 4 slide 2: windows {1..4}, {3..6}, {5..8} → sums 10, 18, 26.
	res, err := e.AdHoc(0, "SELECT total FROM agg_log")
	if err != nil {
		t.Fatal(err)
	}
	wantSums := []int64{10, 18, 26}
	if len(res.Rows) != len(wantSums) {
		t.Fatalf("trigger fired %d times (%v), want %d", len(res.Rows), res.Rows, len(wantSums))
	}
	for i, w := range wantSums {
		if res.Rows[i][0].Int() != w {
			t.Errorf("slide %d logged %v, want %d", i, res.Rows[i][0], w)
		}
	}
}
