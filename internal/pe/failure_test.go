package pe

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sstore/internal/recovery"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
	"sstore/internal/workflow"
)

// Failure-injection tests: crashes at awkward points, torn logs,
// mid-workflow aborts, and engine-shutdown behavior.

func TestCrashWithTornLogTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     filepath.Join(dir, "cmd.log"),
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	e1 := newEngine(t, opts)
	deployChain(t, e1, 2, nil)
	for b := int64(1); b <= 3; b++ {
		if err := e1.IngestSync("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b)}}}); err != nil {
			t.Fatal(err)
		}
	}
	e1.Drain()
	e1.Close()
	// Corrupt the tail of partition 0's log: a crash mid-append
	// leaves a torn record that recovery must ignore.
	logFile := wal.PartitionPath(opts.LogPath, 0)
	data, err := os.ReadFile(logFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logFile, append(data, 0xba, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, opts)
	deployChain(t, e2, 2, nil)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	res, _ := e2.AdHoc(0, "SELECT COUNT(*) FROM sink")
	if res.Rows[0][0].Int() != 6 { // 3 batches × 2 SPs
		t.Errorf("sink rows = %v, want 6", res.Rows[0][0])
	}
}

func TestRecoverIdempotent(t *testing.T) {
	// Recovering twice (e.g. a crash during recovery, then a retry
	// from the same snapshot+log) must not duplicate state under
	// strong mode.
	dir := t.TempDir()
	opts := Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     filepath.Join(dir, "cmd.log"),
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	e1 := newEngine(t, opts)
	deployChain(t, e1, 2, nil)
	for b := int64(1); b <= 3; b++ {
		e1.IngestSync("s1", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b)}}})
	}
	e1.Drain()
	e1.Close()

	e2 := newEngine(t, opts)
	deployChain(t, e2, 2, nil)
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2.Close()

	// Second recovery from the same artifacts (fresh engine again).
	e3 := newEngine(t, opts)
	deployChain(t, e3, 2, nil)
	if err := e3.Recover(); err != nil {
		t.Fatal(err)
	}
	res, _ := e3.AdHoc(0, "SELECT COUNT(*) FROM sink")
	if res.Rows[0][0].Int() != 6 {
		t.Errorf("sink rows after double recovery = %v, want 6", res.Rows[0][0])
	}
}

func TestMidWorkflowAbortLeavesUpstreamCommitted(t *testing.T) {
	// An interior TE abort must not undo the already-committed border
	// TE (workflows are ordered ACID transactions, not one giant
	// transaction — §2.2 "we make no ACID claims for the workflow as
	// a whole").
	e := newEngine(t, Options{})
	e.ExecDDL("CREATE STREAM s1 (v BIGINT)")
	e.ExecDDL("CREATE STREAM s2 (v BIGINT)")
	e.ExecDDL("CREATE TABLE border_log (v BIGINT)")
	e.RegisterProc(&StoredProc{Name: "SP1", Func: func(ctx *ProcCtx) error {
		if _, err := ctx.Query("INSERT INTO border_log SELECT v FROM s1"); err != nil {
			return err
		}
		_, err := ctx.Query("INSERT INTO s2 SELECT v FROM s1")
		return err
	}})
	e.RegisterProc(&StoredProc{Name: "SP2", Func: func(ctx *ProcCtx) error {
		return ctx.Abort("interior always fails")
	}})
	w, err := workflow.New("abortwf", []workflow.Node{
		{SP: "SP1", Input: "s1", Outputs: []string{"s2"}},
		{SP: "SP2", Input: "s2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestSync("s1", &stream.Batch{ID: 1, Rows: []types.Row{{types.NewInt(7)}}}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	// Border TE's writes persist.
	res, _ := e.AdHoc(0, "SELECT COUNT(*) FROM border_log")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("border writes lost: %v", res.Rows[0][0])
	}
	// Interior abort is observable.
	terr := e.TriggerErr()
	if terr == nil || !strings.Contains(terr.Error(), "interior always fails") {
		t.Errorf("TriggerErr = %v", terr)
	}
	// The failed batch stays in s2 (not consumed, not GC'd): recovery
	// could re-derive it.
	res, _ = e.AdHoc(0, "SELECT COUNT(*) FROM s2")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("s2 = %v, want failed batch retained", res.Rows[0][0])
	}
}

func TestEngineClosedRejectsWork(t *testing.T) {
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.ExecDDL("CREATE TABLE t (v BIGINT)")
	e.RegisterProc(&StoredProc{Name: "P", Func: func(ctx *ProcCtx) error { return nil }})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("P", nil); err == nil {
		t.Error("Call after Close should fail")
	}
	if err := e.Close(); err != nil {
		t.Error("double Close should be a no-op")
	}
}

func TestLoggerFailurePropagatesAsAbort(t *testing.T) {
	// If the command log cannot persist the record, the transaction
	// must abort rather than commit unlogged.
	dir := t.TempDir()
	logPath := filepath.Join(dir, "cmd.log")
	opts := Options{
		Recovery:    recovery.ModeStrong,
		LogPath:     logPath,
		LogPolicy:   wal.SyncEachCommit,
		SnapshotDir: dir,
	}
	e := newEngine(t, opts)
	e.ExecDDL("CREATE TABLE t (v BIGINT)")
	e.RegisterProc(&StoredProc{Name: "P", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO t VALUES (1)")
		return err
	}})
	// Sabotage the log file descriptor by closing the logger's file
	// out from under it via the filesystem: remove the directory's
	// write permission is insufficient for an open fd, so instead
	// close the engine's log set directly.
	if err := e.logs.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := e.Call("P", nil)
	if err == nil {
		t.Fatal("commit with broken log should fail")
	}
	res, qerr := e.AdHoc(0, "SELECT COUNT(*) FROM t")
	if qerr != nil {
		t.Fatal(qerr)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("unlogged transaction left state: %v", res.Rows[0][0])
	}
}

func TestDuplicateDeployAndRegistrationRejected(t *testing.T) {
	e := newEngine(t, Options{})
	e.ExecDDL("CREATE STREAM s1 (v BIGINT)")
	e.RegisterProc(&StoredProc{Name: "SP1", Func: func(ctx *ProcCtx) error { return nil }})
	if err := e.RegisterProc(&StoredProc{Name: "SP1", Func: func(ctx *ProcCtx) error { return nil }}); err == nil {
		t.Error("duplicate SP registration should fail")
	}
	if err := e.RegisterProc(&StoredProc{Name: ""}); err == nil {
		t.Error("empty SP should fail")
	}
	w, _ := workflow.New("single", []workflow.Node{{SP: "SP1", Input: "s1"}})
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err == nil {
		t.Error("duplicate workflow deploy should fail")
	}
	w2, _ := workflow.New("missing", []workflow.Node{{SP: "Missing", Input: "s1"}})
	e2 := newEngine(t, Options{})
	e2.ExecDDL("CREATE STREAM s1 (v BIGINT)")
	if err := e2.DeployWorkflow(w2); err == nil {
		t.Error("workflow with unregistered SP should fail")
	}
}

func TestRecoveryRequiresLogPath(t *testing.T) {
	if _, err := NewEngine(Options{Recovery: recovery.ModeWeak}); err == nil {
		t.Error("recovery mode without LogPath should be rejected")
	}
}

func TestEETriggerCascadeThroughEngine(t *testing.T) {
	// A deep EE trigger chain registered through the engine executes
	// within a single TE.
	e := newEngine(t, Options{})
	const depth = 20
	e.ExecDDL("CREATE TABLE deep_sink (v BIGINT)")
	for i := 1; i <= depth; i++ {
		if err := e.ExecDDL(fmt.Sprintf("CREATE STREAM d%d (v BIGINT)", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < depth; i++ {
		if err := e.AddEETrigger(fmt.Sprintf("d%d", i),
			fmt.Sprintf("INSERT INTO d%d SELECT v FROM d%d", i+1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddEETrigger(fmt.Sprintf("d%d", depth),
		fmt.Sprintf("INSERT INTO deep_sink SELECT v FROM d%d", depth)); err != nil {
		t.Fatal(err)
	}
	e.RegisterProc(&StoredProc{Name: "Feed", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO d1 VALUES (9)")
		return err
	}})
	if _, err := e.Call("Feed", nil); err != nil {
		t.Fatal(err)
	}
	res, _ := e.AdHoc(0, "SELECT v FROM deep_sink")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 9 {
		t.Fatalf("deep_sink = %v", res.Rows)
	}
	if s := e.Stats(); s.Executed != 1 {
		t.Errorf("cascade should be one TE, executed = %d", s.Executed)
	}
}
