package pe

import (
	"sstore/internal/ee"
)

// This file is the conflict-analysis half of intra-partition
// parallelism (Options.Workers): deciding which queued tasks may
// execute concurrently. The execution half lives in partition.go.
//
// A task is wave-eligible when its stored procedure declared an access
// set (StoredProc.Access) and none of its effective writes can fire a
// PE trigger. The second condition preserves the serial engine's
// schedule: a committing TE pushes its triggered children to the FRONT
// of the queue, ahead of everything queued behind it — but the
// dispatcher pops a run of tasks before executing any of them, so a
// run containing a trigger-producing TE would let later-queued tasks
// bypass the children. Keeping such TEs serial-only (popped one at a
// time) makes the dispatcher's admission order identical to the serial
// engine's execution order.

// declaredAccess resolves (and caches) a stored procedure's declared
// access set: the registration-time declaration plus the consumed
// input stream, which the engine itself writes on the procedure's
// behalf (batch placement and post-commit GC). Nil means undeclared —
// the procedure is serial-only and statement enforcement is off, the
// pre-parallelism behavior. Dispatcher-goroutine only.
func (p *partition) declaredAccess(name string) *ee.AccessSet {
	if acc, ok := p.spAccess[name]; ok {
		return acc
	}
	var acc *ee.AccessSet
	if sp := p.eng.procs[name]; sp != nil && sp.Access != nil {
		writes := sp.Access.Writes
		if in := p.eng.spInput[name]; in != "" {
			writes = append(append([]string(nil), writes...), in)
		}
		acc = ee.NewAccessSet(sp.Access.Reads, writes)
	}
	p.spAccess[name] = acc
	return acc
}

// waveSafe reports (and caches) whether a stored procedure's TEs may
// join a parallel wave: declared accesses, none of whose write tables
// is a PE-consumed stream. Dispatcher-goroutine only.
func (p *partition) waveSafe(name string) bool {
	if ok, cached := p.spWave[name]; cached {
		return ok
	}
	acc := p.declaredAccess(name)
	ok := acc != nil
	if ok {
		for _, w := range acc.Writes {
			if len(p.eng.consumers[w]) > 0 {
				ok = false
				break
			}
		}
	}
	p.spWave[name] = ok
	return ok
}

// waveEligible is the scheduler PopRun predicate: control tasks,
// nested transactions, unknown procedures, and serial-only procedures
// end a run. It must not call back into the scheduler (it runs under
// the scheduler lock); it only reads engine registration maps and the
// partition-local caches.
func (p *partition) waveEligible(t *task) bool {
	if t.control != nil || len(t.nested) > 0 || t.sp == "" {
		return false
	}
	if _, known := p.eng.procs[t.sp]; !known {
		return false
	}
	return p.waveSafe(t.sp)
}

// conflictsAny reports whether a candidate access set conflicts with
// any of the sets already admitted to the wave under construction.
// Runs once per queued task on the dispatcher's fast path.
//
//sstore:nomalloc
func conflictsAny(accs []*ee.AccessSet, cand *ee.AccessSet) bool {
	for _, a := range accs {
		if cand.ConflictsWith(a) {
			return true
		}
	}
	return false
}
