package pe

import (
	"sync"
	"testing"
	"time"

	"sstore/internal/recovery"
	"sstore/internal/stream"
	"sstore/internal/types"
	"sstore/internal/wal"
	"sstore/internal/workflow"
)

// TestFanOutStreamGC: a stream with two PE-triggered consumers is
// garbage-collected only after both consumers commit.
func TestFanOutStreamGC(t *testing.T) {
	e := newEngine(t, Options{})
	for _, ddl := range []string{
		"CREATE STREAM s_in (v BIGINT)",
		"CREATE STREAM s_mid (v BIGINT)",
		"CREATE TABLE sink_a (v BIGINT)",
		"CREATE TABLE sink_b (v BIGINT)",
	} {
		if err := e.ExecDDL(ddl); err != nil {
			t.Fatal(err)
		}
	}
	e.RegisterProc(&StoredProc{Name: "Fan", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO s_mid SELECT v FROM s_in")
		return err
	}})
	sawRows := make(map[string]int)
	var mu sync.Mutex
	mkConsumer := func(name, sink string) *StoredProc {
		return &StoredProc{Name: name, Func: func(ctx *ProcCtx) error {
			rows, err := ctx.Query("SELECT v FROM s_mid")
			if err != nil {
				return err
			}
			mu.Lock()
			sawRows[name] += len(rows.Rows)
			mu.Unlock()
			_, err = ctx.Query("INSERT INTO " + sink + " SELECT v FROM s_mid")
			return err
		}}
	}
	e.RegisterProc(mkConsumer("ConsumerA", "sink_a"))
	e.RegisterProc(mkConsumer("ConsumerB", "sink_b"))
	w, err := workflow.New("fan", []workflow.Node{
		{SP: "Fan", Input: "s_in", Outputs: []string{"s_mid"}},
		{SP: "ConsumerA", Input: "s_mid"},
		{SP: "ConsumerB", Input: "s_mid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	for b := int64(1); b <= 5; b++ {
		if err := e.IngestSync("s_in", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b)}}}); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if err := e.TriggerErr(); err != nil {
		t.Fatal(err)
	}
	// Both consumers saw every batch (the batch was not GC'd between
	// them), and the stream is empty afterwards.
	if sawRows["ConsumerA"] != 5 || sawRows["ConsumerB"] != 5 {
		t.Errorf("consumers saw %v, want 5 each", sawRows)
	}
	for _, q := range []string{"SELECT COUNT(*) FROM sink_a", "SELECT COUNT(*) FROM sink_b"} {
		res, _ := e.AdHoc(0, q)
		if res.Rows[0][0].Int() != 5 {
			t.Errorf("%s = %v, want 5", q, res.Rows[0][0])
		}
	}
	res, _ := e.AdHoc(0, "SELECT COUNT(*) FROM s_mid")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("fan-out stream not GC'd: %v rows", res.Rows[0][0])
	}
}

// TestGroupCommitEndToEnd: with SyncGroup over sharded logs, commits
// land in each partition's own log (parallel flushers, no shared fsync
// queue) and the merged view reconstructs total commit order with no
// record lost.
func TestGroupCommitEndToEnd(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t, Options{
		Partitions:  2,
		Recovery:    recovery.ModeStrong,
		LogPath:     dir + "/cmd.log",
		LogPolicy:   wal.SyncGroup,
		GroupWindow: time.Millisecond,
		SnapshotDir: dir,
		RouteCall: func(_ string, params types.Row) int {
			return int(params[0].Int()) % 2
		},
	})
	e.ExecDDL("CREATE TABLE t (v BIGINT)")
	e.RegisterProc(&StoredProc{Name: "P", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO t VALUES (?)", ctx.Params()[0])
		return err
	}})
	const n = 40
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Call("P", types.Row{types.NewInt(int64(i))})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	appends, syncs := e.Stats().LogAppends, e.Stats().LogSyncs
	if appends != n {
		t.Errorf("appends = %d, want %d", appends, n)
	}
	// Per-partition logs serve one serial commit at a time, so at the
	// engine level syncs tracks appends under SyncGroup (the win is
	// parallel, contention-free fsyncs, not within-log batching);
	// wal's TestGroupCommitReleasesWaiters asserts the batching of
	// concurrent waiters on a single log.
	if syncs == 0 || syncs > appends {
		t.Errorf("syncs = %d for %d appends", syncs, appends)
	}
	// Sharding is real: both partitions' logs hold records.
	for pid := 0; pid < 2; pid++ {
		recs, err := wal.ReadAll(wal.PartitionPath(dir+"/cmd.log", pid))
		if err != nil || len(recs) == 0 {
			t.Errorf("partition %d log: %d records (%v)", pid, len(recs), err)
		}
	}
	// All records durable and replayable, and the merged view of the
	// two partition logs reconstructs total commit order.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := wal.ReadSetMerged(dir + "/cmd.log")
	if err != nil || len(recs) != n {
		t.Fatalf("log has %d records (%v), want %d", len(recs), err, n)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("merged replay out of order: LSN %d after %d", recs[i].LSN, recs[i-1].LSN)
		}
	}
}

// TestTimeBasedWindowThroughEngine exercises CREATE WINDOW ... ON col
// plus an EE trigger firing on time-driven slides.
func TestTimeBasedWindowThroughEngine(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.ExecDDLOwned("Feed",
		"CREATE WINDOW tw (v BIGINT, ts TIMESTAMP) SIZE 10 SLIDE 5 ON ts"); err != nil {
		t.Fatal(err)
	}
	e.ExecDDL("CREATE TABLE slide_log (n BIGINT)")
	if err := e.AddEETrigger("tw", "INSERT INTO slide_log SELECT COUNT(*) FROM tw"); err != nil {
		t.Fatal(err)
	}
	e.RegisterProc(&StoredProc{Name: "Feed", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("INSERT INTO tw VALUES (?, ?)", ctx.Params()[0], ctx.Params()[1])
		return err
	}})
	// Timestamps 0..9 stay inside the first window; 12 slides it.
	for _, ts := range []int64{0, 3, 7, 9, 12} {
		if _, err := e.Call("Feed", types.Row{types.NewInt(ts), types.NewTimestamp(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := e.AdHoc(0, "SELECT COUNT(*) FROM slide_log")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("slide trigger fired %v times, want 1", res.Rows[0][0])
	}
}

// TestHybridOLTPAndStreamingShareTables runs OLTP writes and a
// streaming workflow against the same table concurrently and checks
// the final count is exact — serial partitions mean no lost updates.
func TestHybridOLTPAndStreamingShareTables(t *testing.T) {
	e := newEngine(t, Options{})
	e.ExecDDL("CREATE STREAM ev (v BIGINT)")
	e.ExecDDL("CREATE TABLE counter (n BIGINT)")
	if _, err := e.AdHoc(0, "INSERT INTO counter VALUES (0)"); err != nil {
		t.Fatal(err)
	}
	e.RegisterProc(&StoredProc{Name: "StreamInc", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("UPDATE counter SET n = n + 1")
		return err
	}})
	e.RegisterProc(&StoredProc{Name: "OLTPInc", Func: func(ctx *ProcCtx) error {
		_, err := ctx.Query("UPDATE counter SET n = n + 1")
		return err
	}})
	w, _ := workflow.New("inc", []workflow.Node{{SP: "StreamInc", Input: "ev"}})
	if err := e.DeployWorkflow(w); err != nil {
		t.Fatal(err)
	}
	const each = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for b := int64(1); b <= each; b++ {
			if err := e.IngestSync("ev", &stream.Batch{ID: b, Rows: []types.Row{{types.NewInt(b)}}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < each; i++ {
			if _, err := e.Call("OLTPInc", nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	e.Drain()
	res, _ := e.AdHoc(0, "SELECT n FROM counter")
	if res.Rows[0][0].Int() != 2*each {
		t.Errorf("counter = %v, want %d", res.Rows[0][0], 2*each)
	}
}
